(* Tracing: watch tainted data move through the machine with Flowtrace.

   Flowtrace is the observability layer over the NaT-bit taint
   machinery: every taint birth, register-to-register propagation,
   store, purge and check lands as a structured event in a ring
   buffer, and sink alerts carry a provenance chain naming the input
   bytes that reached them.

   (The older per-instruction hook [Cpu.trace] still exists for raw
   instruction streams; Flowtrace is the structured replacement.)

   Run with: dune exec examples/tracing.exe *)

open Shift_isa
module Cpu = Shift_machine.Cpu
module Flowtrace = Shift_machine.Flowtrace

(* -------- part 1: the deferred-exception lifecycle, hand-written ---- *)

let m ?qp op = Program.I (Instr.mk ?qp op)

let demo_program =
  Program.assemble
    [
      (* conjure a NaT the Figure-5 way: speculative load from a faked
         invalid address *)
      m (Instr.Movi (5, Int64.shift_left 1L 45));
      m (Instr.Ld { width = Instr.W8; dst = 5; addr = 5; spec = true; fill = false });
      (* propagate it through computation *)
      m (Instr.Movi (6, 41L));
      m (Instr.Arith (Instr.Add, 7, 6, Instr.R 5));
      (* test it, then purge it with the xor idiom *)
      m (Instr.Tnat { pt = 1; pf = 2; src = 7 });
      m (Instr.Arith (Instr.Xor, 7, 7, Instr.R 7));
      m (Instr.Tnat { pt = 3; pf = 4; src = 7 });
      m Instr.Halt;
    ]

let trace_nat () =
  print_endline "== NaT lifecycle as Flowtrace events ==";
  let cpu = Cpu.create demo_program in
  cpu.Cpu.flowtrace <- Flowtrace.create ();
  (match Cpu.run cpu with
  | Cpu.Exited _ -> ()
  | _ -> prerr_endline "unexpected outcome");
  let ft = cpu.Cpu.flowtrace in
  List.iter (Format.printf "  %a@." Flowtrace.pp_event) (Flowtrace.events ft);
  Format.printf "  %a@." Flowtrace.pp_summary (Flowtrace.summary ft);
  Format.printf
    "  final predicates: p1(tainted before xor)=%b p3(after xor)=%b@.@."
    cpu.Cpu.preds.(1) cpu.Cpu.preds.(3)

(* -------- part 2: an attack case, traced end to end ----------------- *)

let trace_attack () =
  print_endline "== GNU Tar directory traversal, traced end to end ==";
  match Shift_attacks.Attacks.find "gnu tar" with
  | None -> prerr_endline "tar case missing"
  | Some c ->
      let open Shift_attacks.Attack_case in
      let config =
        Shift.Session.Config.make ~policy:c.policy ~setup:c.exploit
          ~trace:{ Shift.Flowtrace.capacity = 64; only = None }
          ()
      in
      let image = Shift.Session.build ~mode:Shift.Mode.shift_byte c.program in
      let live = Shift.Session.start ~config image in
      (match Shift.Session.advance live ~budget:max_int with
      | `Finished _ | `Yielded -> ());
      let report = Shift.Session.report live in
      (match Shift.Session.flowtrace live with
      | Some ft -> Format.printf "%a@." Shift.Flow.pp ft
      | None -> ());
      (match Shift.Report.alert report with
      | Some a ->
          Format.printf "  alert %s, provenance chain:@." a.Shift.Alert.policy;
          List.iter (Format.printf "    %s@.") a.Shift.Alert.chain
      | None -> print_endline "  no alert (unexpected)");
      print_newline ()

(* -------- part 3: what the SHIFT pass inserts ----------------------- *)

open Build
open Build.Infix

let tiny =
  {
    Ir.globals = [];
    funcs =
      [
        func "main" ~params:[] ~locals:[ array "a" 8; scalar "x" ]
          [
            set "x" (load64 (v "a"));
            store64 (v "a") (v "x" +: i 1);
            ret (v "x");
          ];
      ];
  }

let show_listing mode =
  let image = Shift.Session.build ~with_runtime:false ~mode tiny in
  Format.printf "== main() compiled with mode %s (%d instructions) ==@."
    (Shift_compiler.Mode.to_string mode)
    (Shift_compiler.Image.code_size image);
  Format.printf "%a@." Program.pp_listing image.Shift_compiler.Image.program

let () =
  trace_nat ();
  trace_attack ();
  show_listing Shift_compiler.Mode.Uninstrumented;
  show_listing Shift_compiler.Mode.shift_word
