(* Figures 7-9 and Table 3: the SPEC-INT2000-like kernel experiments.

   Each experiment first warms the kernel memo for its (kernel, mode,
   tainted) grid through the domain pool — the runs are independent and
   pure — then prints its table from the cache, serially, so the output
   is byte-identical at any -j.  The returned JSON payload is the
   machine-readable version of the same cached numbers. *)

open Common
module Prov = Shift_isa.Prov
module Image = Shift_compiler.Image
module J = Shift.Results

let kernels = Spec.all

let baseline k = (k, Mode.Uninstrumented, false)

(* ---------- Figure 7 ---------- *)

let fig7_cells = [ (byte, true); (byte, false); (word, true); (word, false) ]

let fig7 () =
  header "Figure 7: SPEC-like kernel slowdown (byte/word x unsafe/safe inputs)";
  warm
    (List.concat_map
       (fun k -> baseline k :: List.map (fun (m, t) -> (k, m, t)) fig7_cells)
       kernels);
  let rows =
    List.map
      (fun k ->
        [
          k.Spec.name;
          f2 (slowdown ~tainted:true k byte);
          f2 (slowdown ~tainted:false k byte);
          f2 (slowdown ~tainted:true k word);
          f2 (slowdown ~tainted:false k word);
        ])
      kernels
  in
  let avg mode tainted = geomean (List.map (fun k -> slowdown ~tainted k mode) kernels) in
  table
    ~columns:[ "kernel"; "byte-unsafe"; "byte-safe"; "word-unsafe"; "word-safe" ]
    (rows
    @ [
        [
          "geo-mean";
          f2 (avg byte true);
          f2 (avg byte false);
          f2 (avg word true);
          f2 (avg word false);
        ];
      ]);
  note "paper: byte-level average 2.81X (range 1.32-4.73X), word-level average";
  note "2.27X (range 1.34-3.80X); byte >= word, unsafe >= safe, and memory-";
  note "bound mcf shows the smallest slowdown.";
  grid_json ~kernels ~cells:fig7_cells

(* ---------- Figure 8 ---------- *)

let fig8_cells =
  [ (byte, true); (byte_enh1, true); (byte_both, true);
    (word, true); (word_enh1, true); (word_both, true) ]

let fig8 () =
  header "Figure 8: impact of the minor architectural enhancements";
  warm
    (List.concat_map
       (fun k -> baseline k :: List.map (fun (m, t) -> (k, m, t)) fig8_cells)
       kernels);
  let rows =
    List.concat_map
      (fun k ->
        let base_b = slowdown k byte and base_w = slowdown k word in
        let sc_b = slowdown k byte_enh1 and sc_w = slowdown k word_enh1 in
        let both_b = slowdown k byte_both and both_w = slowdown k word_both in
        [
          [
            k.Spec.name ^ "/byte";
            f2 base_b;
            f2 sc_b;
            f2 both_b;
            pct (base_b -. both_b);
          ];
          [
            k.Spec.name ^ "/word";
            f2 base_w;
            f2 sc_w;
            f2 both_w;
            pct (base_w -. both_w);
          ];
        ])
      kernels
  in
  table
    ~columns:
      [ "kernel/gran"; "base slowdown"; "+set/clr NaT"; "+both (taint-aware cmp)";
        "slowdown reduction" ]
    rows;
  let red gran base enh =
    geomean (List.map (fun k -> slowdown k base) kernels)
    -. geomean (List.map (fun k -> slowdown k enh) kernels)
    |> fun d -> Printf.sprintf "%s: %.2f" gran d
  in
  note "average slowdown reduction with both enhancements: %s, %s"
    (red "byte" byte byte_both) (red "word" word word_both);
  note "paper: set/clear NaT alone reduces slowdown ~16%%; combining both";
  note "enhancements reduces it 49%%/47%% (byte/word), ranging 2%%-173%% per";
  note "benchmark with gcc gaining most and mcf least.";
  note "(reduction is the difference of slowdown factors, as in the paper)";
  let avg_red base enh =
    geomean (List.map (fun k -> slowdown k base) kernels)
    -. geomean (List.map (fun k -> slowdown k enh) kernels)
  in
  match grid_json ~kernels ~cells:fig8_cells with
  | J.Obj fields ->
      J.Obj
        (fields
        @ [
            ("avg_reduction_byte", J.Float (avg_red byte byte_both));
            ("avg_reduction_word", J.Float (avg_red word word_both));
          ])
  | j -> j

(* ---------- Figure 9 ---------- *)

let fig9 () =
  header "Figure 9: overhead breakdown (computation vs memory access, loads vs stores)";
  warm (List.concat_map (fun k -> [ (k, byte, true); (k, word, true) ]) kernels);
  let rows =
    List.concat_map
      (fun k ->
        List.map
          (fun (gran_name, mode) ->
            let run = run_kernel k mode in
            let stats = run.report.Shift.Report.stats in
            let slots p = Shift_machine.Stats.slots stats p in
            let ld_c = slots Prov.Ld_compute and ld_m = slots Prov.Ld_mem in
            let st_c = slots Prov.St_compute and st_m = slots Prov.St_mem in
            let relax = slots Prov.Cmp_relax and natgen = slots Prov.Nat_gen in
            let total = float_of_int (ld_c + ld_m + st_c + st_m + relax + natgen) in
            let share n = float_of_int n /. total in
            [
              Printf.sprintf "%s/%s" k.Spec.name gran_name;
              pct (share ld_c);
              pct (share ld_m);
              pct (share st_c);
              pct (share st_m);
              pct (share relax);
              pct (share natgen);
            ])
          [ ("byte", byte); ("word", word) ])
      kernels
  in
  table
    ~columns:
      [ "kernel/gran"; "ld-compute"; "ld-bitmap"; "st-compute"; "st-bitmap";
        "cmp-relax"; "nat-gen" ]
    rows;
  note "shares of instrumentation issue slots (the work SHIFT adds).  paper:";
  note "computation dominates memory access (tag-address arithmetic is the";
  note "expensive part; the bitmap mostly hits in L1), and load instrumentation";
  note "outweighs store instrumentation because loads are more frequent.";
  (* run_json's report embeds the full per-provenance slot breakdown *)
  J.Obj
    [
      ( "runs",
        J.List
          (List.concat_map
             (fun k -> [ run_json k byte; run_json k word ])
             kernels) );
    ]

(* ---------- Table 3 ---------- *)

let table3 () =
  header "Table 3: compiler instrumentation impact on code size";
  let modes = [ Mode.Uninstrumented; word; byte ] in
  let images =
    Pool.map
      (fun (k, mode) -> ((k.Spec.name, Mode.to_string mode), image_of_kernel k mode))
      (List.concat_map (fun k -> List.map (fun m -> (k, m)) modes) kernels)
  in
  let image_of k mode = List.assoc (k.Spec.name, Mode.to_string mode) images in
  let runtime_names = Shift_runtime.Runtime.names in
  let size_of image names =
    List.fold_left
      (fun acc (name, n) -> if List.mem name names then acc + n else acc)
      0 image.Image.func_sizes
  in
  let app_size image =
    List.fold_left
      (fun acc (name, n) ->
        if List.mem name runtime_names then acc else acc + n)
      0 image.Image.func_sizes
  in
  let glibc_sizes =
    (* measure the runtime library within any kernel image *)
    let k = List.hd kernels in
    ( size_of (image_of k Mode.Uninstrumented) runtime_names,
      size_of (image_of k word) runtime_names,
      size_of (image_of k byte) runtime_names )
  in
  let glibc_row =
    let orig, w, b = glibc_sizes in
    [
      "runtime (glibc)";
      string_of_int orig;
      string_of_int w;
      pct (float_of_int (w - orig) /. float_of_int orig);
      string_of_int b;
      pct (float_of_int (b - orig) /. float_of_int orig);
    ]
  in
  let kernel_sizes =
    List.map
      (fun k ->
        ( k.Spec.name,
          ( app_size (image_of k Mode.Uninstrumented),
            app_size (image_of k word),
            app_size (image_of k byte) ) ))
      kernels
  in
  let rows =
    List.map
      (fun (name, (orig, w, b)) ->
        [
          name;
          string_of_int orig;
          string_of_int w;
          pct (float_of_int (w - orig) /. float_of_int orig);
          string_of_int b;
          pct (float_of_int (b - orig) /. float_of_int orig);
        ])
      kernel_sizes
  in
  table
    ~columns:
      [ "unit"; "orig (instrs)"; "word"; "word ovh"; "byte"; "byte ovh" ]
    (glibc_row :: rows);
  note "paper: glibc grows 36%%/45%% (word/byte); the benchmarks grow more";
  note "(132%%-288%%) because a larger share of their code is loads, stores and";
  note "compares; byte-level needs more code than word-level everywhere.";
  let unit_json name (orig, w, b) =
    J.Obj
      [
        ("unit", J.String name);
        ("orig_instrs", J.Int orig);
        ("word_instrs", J.Int w);
        ("byte_instrs", J.Int b);
      ]
  in
  J.Obj
    [
      ( "units",
        J.List
          (unit_json "runtime" glibc_sizes
          :: List.map (fun (name, sizes) -> unit_json name sizes) kernel_sizes) );
    ]

(* ---------- LIFT comparison ---------- *)

let lift () =
  header "Software-DBT baseline (LIFT-like) vs SHIFT";
  warm
    (List.concat_map
       (fun k -> [ baseline k; (k, word, true); (k, dbt, true) ])
       kernels);
  let rows =
    List.map
      (fun k ->
        [
          k.Spec.name;
          f2 (slowdown k word);
          f2 (slowdown k dbt);
        ])
      kernels
  in
  table ~columns:[ "kernel"; "SHIFT word"; "software DBT" ] rows;
  note "geo-mean: SHIFT %s vs software %s" (f2 (geomean (List.map (fun k -> slowdown k word) kernels)))
    (f2 (geomean (List.map (fun k -> slowdown k dbt) kernels)));
  note "paper: software-based DIFT costs 4.6X (LIFT, heavily optimized) up to";
  note "37X, vs SHIFT's 2.27X at word level.  Our unoptimized DBT baseline lands";
  note "inside that software range; reusing the deferred-exception hardware";
  note "beats maintaining register tags in software by a wide margin.";
  grid_json ~kernels ~cells:[ (word, true); (dbt, true) ]

(* ---------- compiler-optimization ablations ---------- *)

let ablation () =
  header "Ablation: the SHIFT compiler's optimizations (word level, unsafe)";
  warm (List.concat_map (fun k -> [ baseline k; (k, word, true) ]) kernels);
  let fresh_slowdown k =
    (* bypass the cache: these knobs change generated code *)
    let image = Shift.Session.build ~mode:word k.Spec.program in
    let report =
      Shift.Session.run_image ~policy:Policy.default ~fuel
        ~setup:(Spec.setup ~tainted:true k) image
    in
    float_of_int report.Shift.Report.stats.Shift_machine.Stats.cycles
    /. float_of_int (cycles_of ~tainted:false k Mode.Uninstrumented)
  in
  (* The knob is written before the pool spawns and restored after it
     joins, so the domains all see one consistent setting. *)
  let under knob value =
    let old = !knob in
    knob := value;
    Fun.protect ~finally:(fun () -> knob := old) (fun () ->
        Pool.map fresh_slowdown kernels)
  in
  let optimized = List.map (fun k -> slowdown k word) kernels in
  let no_analysis = under Shift_compiler.Instrument.relax_all_compares true in
  let no_skip = under Shift_compiler.Instrument.skip_save_restore false in
  let per_use =
    under Shift_compiler.Instrument.nat_source_strategy
      Shift_compiler.Instrument.Per_use
  in
  let cols =
    List.map2
      (fun (k, o) (na, (ns, pu)) -> (k, o, na, ns, pu))
      (List.combine kernels optimized)
      (List.combine no_analysis (List.combine no_skip per_use))
  in
  let rows =
    List.map
      (fun (k, o, na, ns, pu) -> [ k.Spec.name; f2 o; f2 na; f2 ns; f2 pu ])
      cols
  in
  table
    ~columns:
      [ "kernel"; "optimized"; "relax all compares"; "instrument reg save/restore";
        "NaT source per use" ]
    rows;
  note "the static taint analysis (relax only possibly-tainted compares) and the";
  note "UNAT-carried register save/restore are the two compiler optimizations";
  note "DESIGN.md calls out; both are essential to SHIFT-level overheads.";
  note "\"NaT source per use\" regenerates the tag-source register at every";
  note "tainting site — the strategy the paper's §4.4 measured at ~3X the cost";
  note "of keeping it resident.  In this simulator the extra sequence hides in";
  note "spare issue slots, so the penalty is small: the paper's 3X was Itanium";
  note "scheduling pressure, which a 6-wide in-order model with free slots in";
  note "instrumented code does not reproduce.";
  J.Obj
    [
      ( "kernels",
        J.List
          (List.map
             (fun (k, o, na, ns, pu) ->
               J.Obj
                 [
                   ("kernel", J.String k.Spec.name);
                   ("optimized", J.Float o);
                   ("relax_all_compares", J.Float na);
                   ("instrument_save_restore", J.Float ns);
                   ("nat_source_per_use", J.Float pu);
                 ])
             cols) );
    ]
