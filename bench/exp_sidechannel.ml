(* Sidechannel: the observation channel and the leak detector.

   What DIFT cannot see, measured: the lookup-table AES toy kernel
   raises no taint alert (its table index is bounds-checked and
   untainted, the §3.3.2 pattern), yet its cache-set trace leaks the
   key — the detector flags a ct-seq divergence and names the key-file
   bytes that steered it.  The constant-time rewrite of the same
   computation must come back clean, and the blind ct-none clause must
   see nothing on either.

   The payload ends with the verdicts CI gates on:
   - "aes_table_leak_detected": the leaky kernel diverges under ct-seq
     and the divergence names the key file;
   - "constant_time_clean": the rewrite shows no divergence;
   - "hwtrace_superblock_identical": the observation digest of every
     case's baseline run is byte-identical with the superblock compiler
     on and off — the trace is architectural observation, not an
     artifact of how the host executes the guest. *)

open Common
module J = Shift.Results
module Leak = Shift.Leak
module Catalog = Shift_catalog.Catalog

let variants = 4
let cases = [ "aes-table"; "aes-ct" ]

let start ?(superblocks = true) case i =
  match Catalog.leak_start ~superblocks ~mode:word case with
  | Ok start -> start i
  | Error e -> failwith e

let detect ?clause ?superblocks case =
  Leak.detect ?clause ~count:variants ~start:(start ?superblocks case) ()

(* the baseline variant run to completion: its observation digest and
   report (for the cache hit rates the trace is made of) *)
let baseline ?superblocks case =
  let live = start ?superblocks case 0 in
  (match Shift.Session.advance live ~budget:max_int with
  | `Finished _ | `Yielded -> ());
  let hw =
    match Shift.Session.hwtrace live with
    | Some hw -> hw
    | None -> failwith "sidechannel: session has no hardware trace"
  in
  (Leak.observation_digest hw, Shift.Session.report live)

let sidechannel () =
  header "Sidechannel: cache-set traces under speculation contracts";
  let verdicts = List.map (fun case -> (case, detect case)) cases in
  let digests =
    List.map
      (fun case ->
        let on, report = baseline ~superblocks:true case in
        let off, _ = baseline ~superblocks:false case in
        (case, on, off, report))
      cases
  in
  table
    ~columns:[ "case"; "clause"; "accesses"; "verdict"; "diverging access" ]
    (List.map
       (fun (case, (v : Leak.verdict)) ->
         [
           case;
           Leak.clause_to_string v.Leak.v_clause;
           string_of_int v.Leak.v_accesses;
           (if v.Leak.v_leak then "LEAK" else "clean");
           (match v.Leak.v_divergence with
           | None -> "-"
           | Some d ->
               Printf.sprintf "#%d pc %d set %d vs %d" d.Leak.d_index
                 d.Leak.d_pc d.Leak.d_set_base d.Leak.d_set_variant);
         ])
       verdicts);
  List.iter
    (fun (case, (v : Leak.verdict)) ->
      match v.Leak.v_divergence with
      | Some d when d.Leak.d_tainted <> [] ->
          note "%s steered by %s" case (String.concat "; " d.Leak.d_tainted)
      | _ -> ())
    verdicts;
  List.iter
    (fun (case, on, off, (r : Shift.Report.t)) ->
      note "%s baseline: digest %s (superblocks off: %s), %d hits / %d misses (%.1f%% hit rate)"
        case on off r.Shift.Report.cache_hits r.Shift.Report.cache_misses
        (100.0 *. Shift.Report.cache_hit_rate r))
    digests;
  let leaky = List.assoc "aes-table" verdicts in
  let ct = List.assoc "aes-ct" verdicts in
  let named_key =
    match leaky.Leak.v_divergence with
    | Some d ->
        List.exists
          (fun h ->
            (* the hop must name the key file, not just any input *)
            let sub = "input file:key.bin[" in
            let n = String.length sub in
            let rec go i =
              i + n <= String.length h && (String.sub h i n = sub || go (i + 1))
            in
            go 0)
          d.Leak.d_tainted
    | None -> false
  in
  let leak_detected = leaky.Leak.v_leak && named_key in
  let ct_clean = not ct.Leak.v_leak && ct.Leak.v_accesses > 0 in
  let sb_identical =
    List.for_all (fun (_, on, off, _) -> on = off) digests
  in
  let blind = not (detect ~clause:Leak.Ct_none "aes-table").Leak.v_leak in
  note "aes-table leak detected (key bytes named): %b" leak_detected;
  note "constant-time twin clean: %b" ct_clean;
  note "hwtrace superblock-identical: %b" sb_identical;
  note "ct-none sees nothing: %b" blind;
  J.Obj
    [
      ("variants", J.Int variants);
      ( "cases",
        J.List
          (List.map
             (fun (case, v) ->
               J.Obj [ ("case", J.String case); ("verdict", Leak.verdict_to_json v) ])
             verdicts) );
      ( "digests",
        J.List
          (List.map
             (fun (case, on, off, (r : Shift.Report.t)) ->
               J.Obj
                 [
                   ("case", J.String case);
                   ("superblocks_on", J.String on);
                   ("superblocks_off", J.String off);
                   ( "cache",
                     J.Obj
                       [
                         ("hits", J.Int r.Shift.Report.cache_hits);
                         ("misses", J.Int r.Shift.Report.cache_misses);
                         ("hit_rate", J.Float (Shift.Report.cache_hit_rate r));
                       ] );
                 ])
             digests) );
      ("aes_table_leak_detected", J.Bool leak_detected);
      ("constant_time_clean", J.Bool ct_clean);
      ("hwtrace_superblock_identical", J.Bool sb_identical);
      ("ct_none_blind", J.Bool blind);
    ]
