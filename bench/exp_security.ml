(* Table 1 (policy catalogue) and Table 2 (security evaluation). *)

open Common
module Case = Shift_attacks.Attack_case
module J = Shift.Results

let policies =
  [
    ("H1", "Directory Traversal", "tainted data cannot be an absolute file path");
    ("H2", "Directory Traversal", "tainted path cannot traverse out of the document root");
    ("H3", "SQL Injection", "no tainted SQL meta-characters in a query");
    ("H4", "Command Injection", "no tainted shell meta-characters in system() arguments");
    ("H5", "Cross Site Scripting", "no tainted <script> tag in HTML output");
    ("L1", "Tainted pointer dereference", "tainted data cannot be a load address");
    ("L2", "Format string vulnerability", "tainted data cannot be a store address");
    ("L3", "Critical CPU state", "tainted data cannot enter control-transfer registers");
  ]

let table1 () =
  header "Table 1: security policies in SHIFT";
  table
    ~columns:[ "Policy"; "Attacks to detect"; "Description" ]
    (List.map (fun (p, a, d) -> [ p; a; d ]) policies);
  note "all eight policies are implemented; the low-level ones are the meaning";
  note "assigned to NaT-consumption faults, the high-level ones run at OS sinks.";
  J.Obj
    [
      ( "policies",
        J.List
          (List.map
             (fun (p, a, d) ->
               J.Obj
                 [
                   ("policy", J.String p);
                   ("attacks", J.String a);
                   ("description", J.String d);
                 ])
             policies) );
    ]

let run_case (c : Case.t) mode input =
  Shift.Session.run ~policy:c.Case.policy ~setup:input ~fuel:200_000_000 ~mode
    c.Case.program

let outcome_name (r : Shift.Report.t) =
  match r.Shift.Report.outcome with
  | Shift.Report.Alert a -> a.Shift_policy.Alert.policy
  | Shift.Report.Exited _ -> "clean"
  | Shift.Report.Fault f -> "fault:" ^ Shift_machine.Fault.to_string f
  | Shift.Report.Timeout -> "timeout"

let table2 () =
  header "Table 2: security evaluation (benign run, then exploit, at both granularities)";
  (* each case is one pool item: its five runs share nothing with the
     other cases, and per-case granularity keeps the rows in order *)
  let outcomes =
    Pool.map
      (fun (c : Case.t) ->
        ( outcome_name (run_case c word c.Case.benign),
          outcome_name (run_case c byte c.Case.benign),
          outcome_name (run_case c word c.Case.exploit),
          outcome_name (run_case c byte c.Case.exploit),
          outcome_name (run_case c Common.Mode.Uninstrumented c.Case.exploit) ))
      Shift_attacks.Attacks.all
  in
  let cases = List.combine Shift_attacks.Attacks.all outcomes in
  let rows =
    List.map
      (fun ((c : Case.t), (benign_w, benign_b, exploit_w, exploit_b, unprot)) ->
        let detected =
          if
            exploit_w = c.Case.expected_policy
            && exploit_b = c.Case.expected_policy
            && benign_w = "clean" && benign_b = "clean"
          then "Yes"
          else
            Printf.sprintf "NO (benign %s/%s exploit %s/%s)" benign_w benign_b exploit_w
              exploit_b
        in
        [
          c.Case.cve;
          c.Case.program_name;
          c.Case.language;
          c.Case.attack_type;
          c.Case.detection_policies;
          detected;
          (if unprot = "clean" then "succeeds" else "!" ^ unprot);
        ])
      cases
  in
  table
    ~columns:
      [ "CVE#"; "Program"; "Lang"; "Attack Type"; "Detection Policies"; "Detected?";
        "Without SHIFT" ]
    rows;
  note "paper: all eight detected, no false positives or negatives; without";
  note "SHIFT every attack succeeds.  \"Detected?\" above requires clean benign";
  note "runs and the listed policy firing on the exploit at byte AND word level.";
  Printf.printf "\n  Extension cases (Table-1 policies without a Table-2 row):\n";
  let ext_cases =
    List.concat_map
      (fun mode ->
        List.map (fun c -> (mode, c)) (Shift_attacks.Attacks.extended ~mode))
      [ word; byte ]
  in
  let ext_outcomes =
    Pool.map
      (fun (mode, (c : Case.t)) ->
        ( outcome_name (run_case c mode c.Case.benign),
          outcome_name (run_case c mode c.Case.exploit) ))
      ext_cases
  in
  let ext = List.combine ext_cases ext_outcomes in
  let ext_rows =
    List.map
      (fun ((mode, (c : Case.t)), (benign, exploit)) ->
        [
          c.Case.cve;
          c.Case.program_name;
          c.Case.attack_type;
          Common.Mode.to_string mode;
          (if benign = "clean" && exploit = c.Case.expected_policy then "Yes"
           else Printf.sprintf "NO (benign %s, exploit %s)" benign exploit);
        ])
      ext
  in
  table ~columns:[ "id"; "Program"; "Attack Type"; "mode"; "Detected?" ] ext_rows;
  let case_json ((c : Case.t), (benign_w, benign_b, exploit_w, exploit_b, unprot)) =
    J.Obj
      [
        ("cve", J.String c.Case.cve);
        ("program", J.String c.Case.program_name);
        ("attack_type", J.String c.Case.attack_type);
        ("expected_policy", J.String c.Case.expected_policy);
        ("benign_word", J.String benign_w);
        ("benign_byte", J.String benign_b);
        ("exploit_word", J.String exploit_w);
        ("exploit_byte", J.String exploit_b);
        ("unprotected", J.String unprot);
        ( "detected",
          J.Bool
            (exploit_w = c.Case.expected_policy
            && exploit_b = c.Case.expected_policy
            && benign_w = "clean" && benign_b = "clean") );
      ]
  in
  let ext_json ((mode, (c : Case.t)), (benign, exploit)) =
    J.Obj
      [
        ("id", J.String c.Case.cve);
        ("program", J.String c.Case.program_name);
        ("mode", J.String (Common.Mode.to_string mode));
        ("benign", J.String benign);
        ("exploit", J.String exploit);
        ("detected", J.Bool (benign = "clean" && exploit = c.Case.expected_policy));
      ]
  in
  J.Obj
    [
      ("cases", J.List (List.map case_json cases));
      ("extension_cases", J.List (List.map ext_json ext));
    ]
