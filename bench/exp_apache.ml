(* Figure 6: web-server overhead (latency and throughput) at four file
   sizes and both granularities.

   The twelve (mode, file-size) server runs are independent, so they go
   through the domain pool first; the table is then assembled serially
   from the collected cycle counts, keeping the printed output
   byte-identical to a serial run.  Each server run is driven through
   the resumable engine ([Httpd.serve]); slicing does not perturb the
   counters, so the table also stays byte-identical to the old
   monolithic-run harness. *)

open Common
module J = Shift.Results

let requests = 20

let run_server mode ~file_size =
  let r = Httpd.serve ~fuel ~mode ~file_size ~requests () in
  (match r.Shift.Report.outcome with
  | Shift.Report.Exited n when n = Int64.of_int requests -> ()
  | o ->
      Printf.eprintf "httpd run failed: %s\n%!"
        (Format.asprintf "%a" Shift.Report.pp_outcome o));
  Shift.Report.cycles r

(* Throughput is limited by server occupancy (cycles per request, with
   concurrency hiding the wire latency); client-observed latency also
   includes the round trip. *)
let metrics cycles =
  let per_request = float_of_int cycles /. float_of_int requests in
  let throughput = 1.0 /. per_request in
  let latency = per_request +. float_of_int Httpd.rtt_cycles in
  (throughput, latency)

let fig6 () =
  header "Figure 6: relative performance of SHIFT for the web server";
  let sizes = [ 4096; 8192; 16384; 524288 ] in
  let modes = [ Mode.Uninstrumented; word; byte ] in
  let grid =
    Pool.map
      (fun (mode, file_size) -> ((Mode.to_string mode, file_size), run_server mode ~file_size))
      (List.concat_map (fun s -> List.map (fun m -> (m, s)) modes) sizes)
  in
  let cycles_of mode file_size = List.assoc (Mode.to_string mode, file_size) grid in
  let rows = ref [] in
  let json_rows = ref [] in
  let lat_ovhs = ref [] and thr_ovhs = ref [] in
  List.iter
    (fun file_size ->
      let base = cycles_of Mode.Uninstrumented file_size in
      let tb, lb = metrics base in
      let row gran_name mode =
        let c = cycles_of mode file_size in
        let t, l = metrics c in
        let lat_ovh = (l /. lb) -. 1.0 in
        let thr_ovh = (tb /. t) -. 1.0 in
        lat_ovhs := lat_ovh :: !lat_ovhs;
        thr_ovhs := thr_ovh :: !thr_ovhs;
        json_rows :=
          J.Obj
            [
              ("file_size", J.Int file_size);
              ("mode", J.String (Mode.to_string mode));
              ("granularity", J.String gran_name);
              ("cycles", J.Int c);
              ("baseline_cycles", J.Int base);
              ("latency_overhead", J.Float lat_ovh);
              ("throughput_overhead", J.Float thr_ovh);
            ]
          :: !json_rows;
        (gran_name, lat_ovh, thr_ovh)
      in
      let _, wl, wt = row "word" word in
      let _, bl, bt = row "byte" byte in
      rows :=
        [
          Printf.sprintf "%d KB" (file_size / 1024);
          pct wl; pct wt; pct bl; pct bt;
        ]
        :: !rows)
    sizes;
  table
    ~columns:
      [ "File size"; "word latency ovh"; "word tput ovh"; "byte latency ovh"; "byte tput ovh" ]
    (List.rev !rows);
  let mean xs = geomean (List.map (fun x -> 1.0 +. x) xs) -. 1.0 in
  note "geometric-mean overhead: latency %s, throughput %s" (pct (mean !lat_ovhs))
    (pct (mean !thr_ovhs));
  note "paper: about 1%% overall; worst case ~4.2%% for the 4 KB file, byte a";
  note "bit above word; overhead shrinks as I/O time grows with file size.";
  J.Obj
    [
      ("requests", J.Int requests);
      ("rows", J.List (List.rev !json_rows));
      ("geomean_latency_overhead", J.Float (mean !lat_ovhs));
      ("geomean_throughput_overhead", J.Float (mean !thr_ovhs));
    ]
