(* Tracing-off vs tracing-on: the cost of the Flowtrace subsystem.

   Two claims are checked and recorded:

   - *tracing off is free in semantics*: with no trace configured the
     simulated counters (instructions, cycles, loads, stores) are
     identical to a traced run's — the trace is observation only — and
     the untraced run's counters match the pre-Flowtrace baseline by
     construction (one dead branch per instrumented op).  CI greps the
     JSON for the [tracing_off_consistent] verdict.

   - *tracing on has bounded cost*: the wall-clock/MIPS columns record
     what the hooks cost when live, so a regression in the tracing fast
     path shows in the bench trajectory (BENCH_trace.json).

   Like the throughput experiment this one is serial and its timing
   columns are host-dependent; counters and verdicts are exact.  The
   payload also records a traced attack case end to end (the tar
   directory traversal) with its flow summary and provenance chain —
   the observable artifact the subsystem exists for. *)

open Common
module J = Shift.Results
module Stats = Shift_machine.Stats
module Flowtrace = Shift_machine.Flowtrace

let kernels = List.filter_map Spec.find [ "gzip"; "mcf" ]
let modes = [ ("word", word); ("byte", byte) ]

let fresh_run ?trace k mode =
  let image = image_of_kernel k mode in
  let t0 = Unix.gettimeofday () in
  let report =
    Shift.Session.run_image ~policy:Policy.default ~fuel
      ~setup:(Spec.setup ~tainted:true k) ?trace image
  in
  let wall = Unix.gettimeofday () -. t0 in
  (report, wall)

let mips (s : Stats.t) wall =
  if wall <= 0. then 0. else float_of_int s.Stats.instructions /. wall /. 1e6

let counters (s : Stats.t) =
  (s.Stats.instructions, s.Stats.cycles, s.Stats.loads, s.Stats.stores)

let stats_json (s : Stats.t) =
  J.Obj
    [
      ("instructions", J.Int s.Stats.instructions);
      ("cycles", J.Int s.Stats.cycles);
      ("loads", J.Int s.Stats.loads);
      ("stores", J.Int s.Stats.stores);
    ]

(* the traced attack case: tar directory traversal, byte granularity so
   offsets are exact *)
let attack_trace () =
  match
    List.find_opt
      (fun (c : Shift_attacks.Attack_case.t) ->
        c.Shift_attacks.Attack_case.provenance <> None)
      Shift_attacks.Attacks.all
  with
  | None -> J.Null
  | Some c ->
      let open Shift_attacks.Attack_case in
      let config =
        Shift.Session.Config.make ~policy:c.policy ~setup:c.exploit
          ~trace:Shift.Flowtrace.default_options ()
      in
      let live =
        Shift.Session.start ~config (Shift.Session.build ~mode:byte c.program)
      in
      (match Shift.Session.advance live ~budget:max_int with
      | `Finished _ | `Yielded -> ());
      let report = Shift.Session.report live in
      let chain =
        match Shift.Report.alert report with
        | Some a -> a.Shift_policy.Alert.chain
        | None -> []
      in
      J.Obj
        [
          ("case", J.String c.program_name);
          ("outcome", J.of_outcome report.Shift.Report.outcome);
          ("chain", J.List (List.map (fun h -> J.String h) chain));
          ( "flow",
            match report.Shift.Report.flow with
            | Some f -> J.of_flow f
            | None -> J.Null );
        ]

let trace () =
  header "Flowtrace: tracing-off vs tracing-on cost (host-dependent timing)";
  let grid =
    List.concat_map
      (fun k ->
        List.map
          (fun (mode_name, mode) ->
            let off, off_wall = fresh_run k mode in
            let on, on_wall =
              fresh_run ~trace:Flowtrace.default_options k mode
            in
            (k.Spec.name, mode_name, off, off_wall, on, on_wall))
          modes)
      kernels
  in
  table
    ~columns:
      [ "kernel"; "mode"; "off MIPS"; "on MIPS"; "off ms"; "on ms"; "counters" ]
    (List.map
       (fun (kname, mode_name, off, off_wall, on, on_wall) ->
         [
           kname;
           mode_name;
           Printf.sprintf "%.2f" (mips off.Shift.Report.stats off_wall);
           Printf.sprintf "%.2f" (mips on.Shift.Report.stats on_wall);
           Printf.sprintf "%.1f" (off_wall *. 1000.);
           Printf.sprintf "%.1f" (on_wall *. 1000.);
           (if
              counters off.Shift.Report.stats = counters on.Shift.Report.stats
            then "identical"
            else "MISMATCH");
         ])
       grid);
  let off_consistent =
    List.for_all
      (fun (_, _, off, _, on, _) ->
        counters off.Shift.Report.stats = counters on.Shift.Report.stats
        && off.Shift.Report.flow = None
        && on.Shift.Report.flow <> None)
      grid
  in
  note "tracing is observation only: simulated counters must be identical";
  note "with and without a trace attached; verdict: %s"
    (if off_consistent then "ok" else "MISMATCH");
  J.Obj
    [
      ( "runs",
        J.List
          (List.map
             (fun (kname, mode_name, off, off_wall, on, on_wall) ->
               J.Obj
                 [
                   ("kernel", J.String kname);
                   ("mode", J.String mode_name);
                   ("off", stats_json off.Shift.Report.stats);
                   ("off_wall_s", J.Float off_wall);
                   ("off_mips", J.Float (mips off.Shift.Report.stats off_wall));
                   ("on", stats_json on.Shift.Report.stats);
                   ("on_wall_s", J.Float on_wall);
                   ("on_mips", J.Float (mips on.Shift.Report.stats on_wall));
                   ( "flow",
                     match on.Shift.Report.flow with
                     | Some f -> J.of_flow f
                     | None -> J.Null );
                 ])
             grid) );
      ("attack_trace", attack_trace ());
      ("tracing_off_consistent", J.Bool off_consistent);
    ]
