(* Shared machinery for the experiment harness. *)

module Mode = Shift_compiler.Mode
module Spec = Shift_workloads.Spec
module Httpd = Shift_workloads.Httpd
module Policy = Shift_policy.Policy
module Stats = Shift_machine.Stats
module Results = Shift.Results

(* the harness batches through the core library's pool directly (the
   old bench/pool.ml shim is gone) *)
module Pool = Shift.Pool

let fuel = 1_000_000_000

(* ---------- kernel runs, memoised across experiments ---------- *)

type krun = {
  report : Shift.Report.t;
  image : Shift_compiler.Image.t;
}

(* The memo is shared by every domain of the pool, so lookups and
   inserts are mutex-guarded; the runs themselves happen outside the
   lock so independent keys build and run concurrently.  Two domains
   racing on the same key at worst both compute it — the run is pure
   given (kernel, mode, tainted), so whichever insert lands last stores
   the same numbers. *)

let cache_lock = Mutex.create ()
let kernel_cache : (string, krun) Hashtbl.t = Hashtbl.create 64

let cache_key (k : Spec.kernel) mode tainted =
  Printf.sprintf "%s/%s/%b" k.Spec.name (Mode.to_string mode) tainted

let image_of_kernel (k : Spec.kernel) mode =
  Shift.Session.build ~mode k.Spec.program

let run_kernel ?(tainted = true) (k : Spec.kernel) mode =
  let key = cache_key k mode tainted in
  let cached = Mutex.protect cache_lock (fun () -> Hashtbl.find_opt kernel_cache key) in
  match cached with
  | Some r -> r
  | None ->
      let image = image_of_kernel k mode in
      let report =
        Shift.Session.run_image ~policy:Policy.default ~fuel
          ~setup:(Spec.setup ~tainted k) image
      in
      (match report.Shift.Report.outcome with
      | Shift.Report.Exited _ -> ()
      | o ->
          Printf.eprintf "kernel %s under %s did not finish: %s\n%!" k.Spec.name
            (Mode.to_string mode)
            (Format.asprintf "%a" Shift.Report.pp_outcome o));
      let r = { report; image } in
      Mutex.protect cache_lock (fun () -> Hashtbl.replace kernel_cache key r);
      r

let cycles_of ?tainted k mode = (run_kernel ?tainted k mode).report.Shift.Report.stats.Stats.cycles

let slowdown ?tainted k mode =
  float_of_int (cycles_of ?tainted k mode)
  /. float_of_int (cycles_of ~tainted:false k Mode.Uninstrumented)

(* Populate the memo for a (kernel, mode, tainted) grid through the
   domain pool, so the serial table-printing code below each experiment
   only ever hits the cache.  Already-cached combos cost a lookup. *)
let warm combos =
  ignore (Pool.map (fun (k, mode, tainted) -> ignore (run_kernel ~tainted k mode)) combos)

(* ---------- modes ---------- *)

let word = Mode.shift_word
let byte = Mode.shift_byte
let word_enh1 = Mode.Shift { granularity = Shift_mem.Granularity.Word; enh = Mode.enh1 }
let byte_enh1 = Mode.Shift { granularity = Shift_mem.Granularity.Byte; enh = Mode.enh1 }
let word_both = Mode.Shift { granularity = Shift_mem.Granularity.Word; enh = Mode.enh_both }
let byte_both = Mode.Shift { granularity = Shift_mem.Granularity.Byte; enh = Mode.enh_both }
let dbt = Mode.Software_dbt { granularity = Shift_mem.Granularity.Word }

(* ---------- output helpers ---------- *)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note fmt = Printf.printf ("  " ^^ fmt ^^ "\n")

let table ~columns rows =
  let widths =
    List.mapi
      (fun c title ->
        List.fold_left (fun w row -> max w (String.length (List.nth row c)))
          (String.length title) rows)
      columns
  in
  let print_row cells =
    let padded = List.map2 (fun w s -> Printf.sprintf "%-*s" w s) widths cells in
    Printf.printf "  %s\n" (String.concat "  " padded)
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let geomean values =
  exp (List.fold_left (fun acc v -> acc +. log v) 0. values /. float_of_int (List.length values))

let pct x = Printf.sprintf "%.1f%%" (x *. 100.)
let f2 x = Printf.sprintf "%.2f" x

(* ---------- JSON payload helpers ---------- *)

(* One cached run as a JSON record: identity, cycles and slot breakdown
   (via the report), and the slowdown against the uninstrumented
   baseline. *)
let run_json ?(tainted = true) k mode =
  let r = run_kernel ~tainted k mode in
  Results.Obj
    [
      ("kernel", Results.String k.Spec.name);
      ("mode", Results.String (Mode.to_string mode));
      ("tainted", Results.Bool tainted);
      ("slowdown", Results.Float (slowdown ~tainted k mode));
      ("report", Results.of_report r.report);
    ]

(* The generic grid payload: every (kernel, mode, tainted) run plus the
   per-(mode, tainted) geometric-mean slowdowns. *)
let grid_json ~kernels ~cells =
  let runs =
    List.concat_map
      (fun k -> List.map (fun (mode, tainted) -> run_json ~tainted k mode) cells)
      kernels
  in
  let means =
    List.map
      (fun (mode, tainted) ->
        Results.Obj
          [
            ("mode", Results.String (Mode.to_string mode));
            ("tainted", Results.Bool tainted);
            ( "geomean_slowdown",
              Results.Float (geomean (List.map (fun k -> slowdown ~tainted k mode) kernels)) );
          ])
      cells
  in
  Results.Obj [ ("runs", Results.List runs); ("geomeans", Results.List means) ]
