(* Promoted to lib/core/pool.ml so the core library and the CLI can
   batch sessions too; this shim keeps the harness's [Pool.*] call
   sites working unchanged. *)
include Shift.Pool
