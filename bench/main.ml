(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md section 4 for the index).

   Usage:
     main.exe [OPTIONS] [table1|table2|fig6|fig7|fig8|fig9|table3|lift|
               ablation|speculation|bechamel]...

   Options:
     -j N         run the experiment grids on N domains
                  (0 = Domain.recommended_domain_count, the default)
     --json       write one BENCH_<experiment>.json file per experiment
     --json-dir D write the JSON files under directory D (implies --json)

   With no experiment argument, everything runs.  Tables are printed to
   stdout and are byte-identical at every -j; progress and file notes go
   to stderr. *)

open Shift_bench
module Pool = Shift.Pool

let experiments =
  [
    ("table1", Exp_security.table1);
    ("table2", Exp_security.table2);
    ("fig6", Exp_apache.fig6);
    ("fig7", Exp_spec.fig7);
    ("fig8", Exp_spec.fig8);
    ("fig9", Exp_spec.fig9);
    ("table3", Exp_spec.table3);
    ("lift", Exp_spec.lift);
    ("ablation", Exp_spec.ablation);
    ("speculation", Exp_speculation.speculation);
    ("throughput", Exp_throughput.throughput);
    ("fleet", Exp_fleet.fleet);
    ("trace", Exp_trace.trace);
    ("serve", Exp_serve.serve);
    ("backends", Exp_backends.backends);
    ("sidechannel", Exp_sidechannel.sidechannel);
    ("bechamel", Bench_tables.run);
  ]

let usage () =
  Printf.eprintf
    "usage: main.exe [-j N] [--json] [--json-dir DIR] [experiment]...\n\
     available experiments: %s\n"
    (String.concat ", " (List.map fst experiments));
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let jobs = ref 0 in
  let json = ref false in
  let json_dir = ref "." in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | ("-j" | "--jobs") :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 0 -> jobs := v; parse rest
        | _ -> usage ())
    | [ "-j" ] | [ "--jobs" ] -> usage ()
    | "--json" :: rest -> json := true; parse rest
    | "--json-dir" :: dir :: rest -> json := true; json_dir := dir; parse rest
    | [ "--json-dir" ] -> usage ()
    | ("-h" | "--help") :: _ -> usage ()
    | name :: rest ->
        if List.mem_assoc name experiments then begin
          names := name :: !names;
          parse rest
        end
        else begin
          Printf.eprintf "unknown experiment %S\n" name;
          usage ()
        end
  in
  parse args;
  Pool.set_domains !jobs;
  let selected =
    match List.rev !names with
    | [] -> experiments
    | names -> List.map (fun name -> (name, List.assoc name experiments)) names
  in
  if !json && not (Sys.file_exists !json_dir) then Sys.mkdir !json_dir 0o755;
  print_endline "SHIFT reproduction harness (Chen et al., ISCA 2008)";
  print_endline "measured numbers come from the simulated Itanium-like machine;";
  print_endline "paper references are quoted under each table.";
  let domains = Pool.domains () in
  Printf.eprintf "running %d experiment(s) on %d domain(s)\n%!"
    (List.length selected) domains;
  let total0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      let t0 = Unix.gettimeofday () in
      let data = f () in
      let wall_clock_s = Unix.gettimeofday () -. t0 in
      Printf.eprintf "%-12s %.2fs\n%!" name wall_clock_s;
      if !json then begin
        let doc = Shift.Results.document ~experiment:name ~domains ~wall_clock_s data in
        let path = Filename.concat !json_dir (Printf.sprintf "BENCH_%s.json" name) in
        let oc = open_out path in
        output_string oc (Shift.Results.to_string doc);
        output_char oc '\n';
        close_out oc;
        Printf.eprintf "wrote %s\n%!" path
      end)
    selected;
  Printf.eprintf "total %.2fs\n%!" (Unix.gettimeofday () -. total0)
