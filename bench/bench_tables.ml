(* Bechamel micro-benchmarks: one Test.make per table/figure, measuring
   the wall-clock cost of (a scaled-down run of) each experiment's
   workload on the simulator. *)

open Bechamel
open Toolkit
open Common

let small k = { k with Spec.default_size = max 64 (k.Spec.default_size / 8) }

let run_small k mode =
  let image = Shift.Session.build ~mode k.Spec.program in
  fun () ->
    ignore
      (Shift.Session.run_image ~policy:Policy.default ~fuel
         ~setup:(Spec.setup ~tainted:true (small k)) image)

let run_attack () =
  let c = List.hd Shift_attacks.Attacks.all in
  ignore
    (Shift.Session.run
       ~policy:c.Shift_attacks.Attack_case.policy
       ~setup:c.Shift_attacks.Attack_case.exploit ~fuel ~mode:word
       c.Shift_attacks.Attack_case.program)

let run_httpd_small =
  let image = Shift.Session.build ~mode:word Httpd.program in
  fun () ->
    ignore
      (Shift.Session.run_image ~policy:Httpd.policy ~io_cost:Httpd.io_cost ~fuel
         ~setup:(Httpd.setup ~file_size:4096 ~requests:2)
         image)

let tests () =
  let gzip = List.hd Spec.all in
  let mcf = Option.get (Spec.find "mcf") in
  Test.make_grouped ~name:"experiments"
    [
      Test.make ~name:"table2-attack-detection" (Staged.stage run_attack);
      Test.make ~name:"fig6-httpd-request" (Staged.stage run_httpd_small);
      Test.make ~name:"fig7-gzip-word" (Staged.stage (run_small gzip word));
      Test.make ~name:"fig8-gzip-word-enhanced" (Staged.stage (run_small gzip word_both));
      Test.make ~name:"fig9-mcf-word" (Staged.stage (run_small mcf word));
      Test.make ~name:"table3-compile-instrument"
        (Staged.stage (fun () -> ignore (Shift.Session.build ~mode:byte gzip.Spec.program)));
      Test.make ~name:"lift-gzip-software-dbt" (Staged.stage (run_small gzip dbt));
    ]

let run () =
  header "Bechamel micro-benchmarks (simulator wall-clock per experiment unit)";
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimates = ref [] in
  Hashtbl.iter
    (fun name result ->
      let ns =
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Some est
        | _ -> None
      in
      estimates := (name, ns) :: !estimates)
    results;
  let rows =
    List.map
      (fun (name, ns) ->
        [
          name;
          (match ns with
          | Some est -> Printf.sprintf "%.3f ms" (est /. 1e6)
          | None -> "n/a");
        ])
      !estimates
  in
  table ~columns:[ "experiment unit"; "time per run" ] (List.sort compare rows);
  Shift.Results.Obj
    [
      ( "timings",
        Shift.Results.List
          (List.map
             (fun (name, ns) ->
               Shift.Results.Obj
                 [
                   ("name", Shift.Results.String name);
                   ( "ns_per_run",
                     match ns with
                     | Some est -> Shift.Results.Float est
                     | None -> Shift.Results.Null );
                 ])
             (List.sort compare !estimates)) );
    ]
