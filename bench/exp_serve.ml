(* Serve: the resident scheduler under open-loop load.

   Three measurements over Shift.Serve.Scheduler (the layer behind
   `shiftc serve`, driven in-process so the numbers are scheduler cost,
   not socket cost):

   - sustained throughput: kernel sessions submitted open-loop at a
     fixed interarrival, sessions/sec from first submission to drain;
   - slice latency: the host wall-clock cost of each Session.advance
     slice, p50/p95/p99/max — the grain at which the daemon can
     interleave tenants;
   - migration: the same arrival stream with every session checkpointed
     and handed to another worker every few slices, plus the
     throughput cost of that cadence.

   The payload ends with the determinism verdict CI gates on:
   "solo_vs_serve_consistent" is true iff each kernel's report JSON is
   byte-identical run solo (Session.exec), scheduled, and
   checkpoint-migrated between workers. *)

open Common
module J = Shift.Results
module Sched = Shift.Serve.Scheduler

let bench_size = 256
let arrival_jobs = 16
let interarrival_s = 0.002
let migrate_every = 2

let config_of (k : Spec.kernel) =
  Shift.Session.Config.make ~policy:Policy.default
    ~setup:(Spec.setup ~size:bench_size ~tainted:true k)
    ()

let job_of ~name (k : Spec.kernel) =
  Shift.Fleet.job ~name ~config:(config_of k) (fun () ->
      Shift.Session.build ~mode:word k.Spec.program)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

(* one open-loop arrival phase; returns (sessions/sec, wall_s,
   migrations, slice latencies in seconds) *)
let arrival_phase ?migrate_every () =
  let lock = Mutex.create () in
  let latencies = ref [] in
  let sched =
    Sched.create
      ~on_slice:(fun dt ->
        Mutex.protect lock (fun () -> latencies := dt :: !latencies))
      ()
  in
  let kernels = Array.of_list Spec.all in
  let t0 = Unix.gettimeofday () in
  for i = 0 to arrival_jobs - 1 do
    let k = kernels.(i mod Array.length kernels) in
    Sched.submit sched ?migrate_every
      ~id:(Printf.sprintf "%s-%d" k.Spec.name i)
      (job_of ~name:k.Spec.name k);
    Unix.sleepf interarrival_s
  done;
  Sched.drain sched;
  let wall = Unix.gettimeofday () -. t0 in
  let finished = Sched.take_finished sched in
  let crashed =
    List.length
      (List.filter
         (fun (d : Sched.done_job) ->
           match d.Sched.outcome with
           | Shift.Fleet.Crashed _ -> true
           | Shift.Fleet.Finished _ -> false)
         finished)
  in
  let migrations =
    List.fold_left
      (fun acc (d : Sched.done_job) -> acc + d.Sched.migrations)
      0 finished
  in
  Sched.shutdown sched;
  if crashed > 0 then note "WARNING: %d of %d jobs crashed" crashed arrival_jobs;
  (float_of_int arrival_jobs /. wall, wall, migrations, !latencies)

(* solo vs scheduled vs migrated, compared as serialised report JSON *)
let consistency () =
  let kernels =
    match Spec.all with a :: b :: c :: _ -> [ a; b; c ] | l -> l
  in
  let solo =
    List.map
      (fun (k : Spec.kernel) ->
        let image = Shift.Session.build ~mode:word k.Spec.program in
        J.to_string (J.of_report (Shift.Session.exec ~config:(config_of k) image)))
      kernels
  in
  let via_scheduler ?migrate_every ~workers () =
    let sched = Sched.create ~workers () in
    List.iteri
      (fun i (k : Spec.kernel) ->
        Sched.submit sched ?migrate_every ~id:(string_of_int i)
          (job_of ~name:k.Spec.name k))
      kernels;
    Sched.drain sched;
    let finished = Sched.take_finished sched in
    Sched.shutdown sched;
    List.map
      (fun i ->
        match
          List.find_opt (fun (d : Sched.done_job) -> d.Sched.job = string_of_int i) finished
        with
        | Some { Sched.outcome = Shift.Fleet.Finished r; _ } ->
            J.to_string (J.of_report r)
        | Some { Sched.outcome = Shift.Fleet.Crashed c; _ } ->
            "crashed: " ^ c.Shift.Fleet.exn
        | None -> "missing")
      (List.mapi (fun i _ -> i) kernels)
  in
  let scheduled = via_scheduler ~workers:2 () in
  let migrated = via_scheduler ~migrate_every ~workers:2 () in
  (solo = scheduled, solo = migrated)

let serve () =
  header "Serve: the resident scheduler under open-loop load";
  let rate, wall, _, lats = arrival_phase () in
  let mrate, mwall, migrations, _ = arrival_phase ~migrate_every () in
  let sorted = Array.of_list (List.map (fun s -> s *. 1e6) lats) in
  Array.sort compare sorted;
  let p50 = percentile sorted 0.50
  and p95 = percentile sorted 0.95
  and p99 = percentile sorted 0.99
  and pmax = percentile sorted 1.0 in
  table
    ~columns:[ "phase"; "jobs"; "wall s"; "sessions/s"; "migrations" ]
    [
      [ "plain"; string_of_int arrival_jobs; f2 wall; f2 rate; "0" ];
      [
        "migrated"; string_of_int arrival_jobs; f2 mwall; f2 mrate;
        string_of_int migrations;
      ];
    ];
  note "slice latency (us): p50 %.1f  p95 %.1f  p99 %.1f  max %.1f" p50 p95
    p99 pmax;
  let vs_sched, vs_migrated = consistency () in
  let consistent = vs_sched && vs_migrated in
  note "solo vs serve consistent: %b (migrated: %b)" vs_sched vs_migrated;
  J.Obj
    [
      ( "arrivals",
        J.Obj
          [
            ("jobs", J.Int arrival_jobs);
            ("interarrival_ms", J.Float (interarrival_s *. 1e3));
            ("input_bytes", J.Int bench_size);
            ("wall_s", J.Float wall);
            ("sessions_per_sec", J.Float rate);
          ] );
      ( "slice_latency_us",
        J.Obj
          [
            ("slices", J.Int (Array.length sorted));
            ("p50", J.Float p50);
            ("p95", J.Float p95);
            ("p99", J.Float p99);
            ("max", J.Float pmax);
          ] );
      ( "migration",
        J.Obj
          [
            ("migrate_every_slices", J.Int migrate_every);
            ("migrations", J.Int migrations);
            ("wall_s", J.Float mwall);
            ("sessions_per_sec", J.Float mrate);
          ] );
      ("solo_vs_serve_consistent", J.Bool consistent);
    ]
