(* §3.3.4: combining SHIFT with control speculation.

   The paper: speculative code regions keep using the exception token;
   a token that is really a taint just triggers the recovery path (a
   false positive), so "control speculation is effective only when
   there is little tainted data involved".

   This experiment measures that crossover.  A loop body needs a loaded
   value late; the speculative version hoists the load to the top so
   its latency overlaps the independent work, guarded by chk.s; the
   non-speculative version loads in place and stalls.  A configurable
   fraction of elements is tainted: each tainted element sends the
   speculative version through its recovery block. *)

open Common
open Shift_isa
module Cpu = Shift_machine.Cpu

let m ?qp op = Program.I (Instr.mk ?qp op)
let lbl l = Program.Label l

let elements = 4000
let data_base = Shift_mem.Addr.in_region 1 0x20000L
let flag_base = Shift_mem.Addr.in_region 1 0x40000L

(* registers: r10 data ptr, r11 flag ptr, r12 counter, r13 acc,
   r14 addr, r15 value, r16 result, r17..r19 filler work, r31 natsrc *)

let prologue =
  [
    m (Instr.Movi (31, Shift_compiler.Instrument.invalid_address));
    m (Instr.Ld { width = Instr.W8; dst = 31; addr = 31; spec = true; fill = false });
    m (Instr.Movi (10, data_base));
    m (Instr.Movi (11, flag_base));
    m (Instr.Movi (12, 0L));
    m (Instr.Movi (13, 0L));
    m (Instr.Movi (17, 3L));
  ]

(* load the element and taint it when its flag says so — the shape of
   an instrumented load whose data is tainted *)
let load_and_tag ~spec =
  [
    m (Instr.Arith (Instr.Shl, 14, 12, Instr.Imm 3L));
    m (Instr.Arith (Instr.Add, 14, 14, Instr.R 10));
    m (Instr.Ld { width = Instr.W8; dst = 15; addr = 14; spec; fill = false });
    m (Instr.Arith (Instr.Add, 20, 12, Instr.R 11));
    m (Instr.Ld { width = Instr.W1; dst = 21; addr = 20; spec = false; fill = false });
    m (Instr.Cmp { cond = Cond.Ne; pt = 6; pf = 7; src1 = 21; src2 = Instr.Imm 0L; taint_aware = false });
    m ~qp:6 (Instr.Arith (Instr.Add, 15, 15, Instr.R 31));
  ]

(* filler: a dependent chain long enough to hide a cache miss behind
   the hoisted load *)
let filler =
  m (Instr.Arith (Instr.Mul, 18, 17, Instr.R 17))
  :: List.concat
       (List.init 6
          (fun k ->
            [
              m (Instr.Arith (Instr.Add, 18, 18, Instr.Imm (Int64.of_int (k + 1))));
              m (Instr.Arith (Instr.Xor, 19, 18, Instr.Imm 99L));
            ]))
  @ [ m (Instr.Arith (Instr.Add, 19, 19, Instr.R 18)) ]

let epilogue_use =
  [
    (* consume the result; strip the tag so the accumulator compare
       stays clean (as SHIFT's relaxed code would) *)
    m (Instr.Movi (22, Int64.add flag_base 8192L));
    m (Instr.St { width = Instr.W8; addr = 22; src = 16; spill = true });
    m (Instr.Ld { width = Instr.W8; dst = 16; addr = 22; spec = false; fill = false });
    m (Instr.Arith (Instr.Add, 13, 13, Instr.R 16));
    m (Instr.Arith (Instr.Add, 12, 12, Instr.Imm 1L));
    m (Instr.Cmp { cond = Cond.Lt; pt = 1; pf = 2; src1 = 12; src2 = Instr.Imm (Int64.of_int elements); taint_aware = false });
    m ~qp:1 (Instr.Br "loop");
    m (Instr.Mov (Reg.ret, 13));
    m Instr.Halt;
  ]

let use = m (Instr.Arith (Instr.Add, 16, 15, Instr.Imm 1L))

let speculative_version =
  prologue
  @ [ lbl "loop" ]
  @ load_and_tag ~spec:true (* the load hoisted above the filler *)
  @ filler
  @ [ use; m (Instr.Chk_s { src = 16; recovery = "recovery" }); lbl "back" ]
  @ epilogue_use
  @ [ lbl "recovery" ]
  @ load_and_tag ~spec:false
  @ [ use; m (Instr.Br "back") ]

let nonspeculative_version =
  prologue
  @ [ lbl "loop" ]
  @ filler
  @ load_and_tag ~spec:false
  @ [ use ]
  @ epilogue_use

let run items ~taint_pct =
  let cpu = Cpu.create (Program.assemble items) in
  for k = 0 to elements - 1 do
    Shift_mem.Memory.write cpu.Cpu.mem
      (Int64.add data_base (Int64.of_int (k * 8)))
      ~width:8 (Int64.of_int k);
    (* deterministic spread of tainted elements *)
    let tainted = k mod 100 < taint_pct in
    Shift_mem.Memory.write_u8 cpu.Cpu.mem
      (Int64.add flag_base (Int64.of_int k))
      (if tainted then 1 else 0)
  done;
  match Cpu.run ~fuel:10_000_000 cpu with
  | Cpu.Exited v -> (v, cpu.Cpu.stats.cycles)
  | _ -> failwith "speculation bench did not finish"

let taint_pcts = [ 0; 1; 2; 5; 10; 25; 100 ]

let speculation () =
  header "Control speculation under SHIFT (paper section 3.3.4)";
  (* each taint fraction builds its own machines — independent, so one
     pool item per fraction; Pool.map keeps the sweep in order *)
  let sweep =
    Pool.map
      (fun taint_pct ->
        let vs, cs = run speculative_version ~taint_pct in
        let vn, cn = run nonspeculative_version ~taint_pct in
        assert (Int64.equal vs vn);
        (taint_pct, cs, cn))
      taint_pcts
  in
  let rows =
    List.map
      (fun (taint_pct, cs, cn) ->
        [
          Printf.sprintf "%d%%" taint_pct;
          string_of_int cs;
          string_of_int cn;
          (if cs < cn then "speculate" else "don't");
        ])
      sweep
  in
  table
    ~columns:[ "tainted elements"; "speculative cycles"; "in-place cycles"; "winner" ]
    rows;
  note "both versions compute the same sum; every tainted element sends the";
  note "speculative version through its chk.s recovery block.  paper: tainted";
  note "tokens are treated as speculation failures, so \"control speculation is";
  note "effective only when there is little tainted data involved\" — the";
  note "crossover above is that statement, measured.";
  Shift.Results.Obj
    [
      ("elements", Shift.Results.Int elements);
      ( "sweep",
        Shift.Results.List
          (List.map
             (fun (taint_pct, cs, cn) ->
               Shift.Results.Obj
                 [
                   ("tainted_pct", Shift.Results.Int taint_pct);
                   ("speculative_cycles", Shift.Results.Int cs);
                   ("in_place_cycles", Shift.Results.Int cn);
                   ("speculation_wins", Shift.Results.Bool (cs < cn));
                 ])
             sweep) );
    ]
