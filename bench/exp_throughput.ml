(* Throughput microbenchmark: simulated MIPS per workload x mode.

   Unlike the paper-reproduction experiments, this one measures the
   *simulator itself*: how many simulated instructions per host second
   the engine retires on each workload.  It exists so interpreter and
   superblock-compiler speedups (and regressions) show up in the
   recorded bench trajectory (BENCH_throughput.json) instead of only in
   anecdotes.

   Every cell is measured twice — once with the superblock compiler
   live (the default engine) and once pinned to the pure interpreter
   (--no-superblocks) — so the JSON records the speedup ratio on the
   same host, same process, same inputs.  Three verdicts are exact and
   CI-gated:

   - [fast_path_consistent]: the memory/taint fast paths produce
     counters identical to the byte-at-a-time reference paths;
   - [superblock_consistent]: a superblock run's full report is
     byte-identical to the interpreter run's (the compiler is a pure
     optimisation);
   - [superblock_speedup_ok]: the geometric-mean speedup over the grid
     clears the floor below.  The ratio of two wall-clocks on one host
     is host-independent enough to gate on, unlike the MIPS columns. *)

open Common
module J = Shift.Results
module Stats = Shift_machine.Stats
module Memory = Shift_mem.Memory

let kernels = List.filter_map Spec.find [ "gzip"; "gcc"; "mcf"; "bzip2" ]
let modes = [ ("uninstr", Mode.Uninstrumented); ("word", word); ("byte", byte) ]

(* the CI floor on the geometric-mean superblock speedup; measured
   ~1.5-1.6x on the grid (see EXPERIMENTS.md) — the on/off ratio
   understates the compiler because shared wins (the cache set mask,
   the memory fast paths) speed the interpreter column too.  The floor
   only catches the compiler being disabled or badly regressed. *)
let speedup_floor = 1.3

(* smoke kernels for the differential fast-vs-reference check *)
let smoke = List.filter_map Spec.find [ "gzip"; "mcf" ]

let fresh_run ?(superblocks = true) k mode =
  (* bypass the kernel memo: we time the run, so it must be fresh *)
  let image = image_of_kernel k mode in
  let config =
    Shift.Session.Config.make ~policy:Policy.default ~fuel
      ~setup:(Spec.setup ~tainted:true k) ~superblocks ()
  in
  let t0 = Unix.gettimeofday () in
  let live = Shift.Session.start ~config image in
  (match Shift.Session.advance live ~budget:max_int with
  | `Finished _ | `Yielded -> ());
  let wall = Unix.gettimeofday () -. t0 in
  (Shift.Session.report live, Shift.Session.superblock_stats live, wall)

let mips (stats : Stats.t) wall =
  if wall <= 0. then 0. else float_of_int stats.Stats.instructions /. wall /. 1e6

let counters (s : Stats.t) =
  (s.Stats.instructions, s.Stats.cycles, s.Stats.loads, s.Stats.stores)

let stats_json (s : Stats.t) =
  J.Obj
    [
      ("instructions", J.Int s.Stats.instructions);
      ("cycles", J.Int s.Stats.cycles);
      ("loads", J.Int s.Stats.loads);
      ("stores", J.Int s.Stats.stores);
    ]

let sb_json (sb : Stats.superblocks) =
  J.Obj
    [
      ("compiled", J.Int sb.Stats.sb_compiled);
      ("hits", J.Int sb.Stats.sb_hits);
      ("misses", J.Int sb.Stats.sb_misses);
      ("invalidations", J.Int sb.Stats.sb_invalidations);
      ("fallback", J.Int sb.Stats.sb_fallback);
    ]

let report_bytes r = J.to_string (J.of_report r)

type run = {
  kname : string;
  mode_name : string;
  report : Shift.Report.t;  (* the superblock run's *)
  sb : Stats.superblocks;
  wall : float;  (* superblocks on *)
  interp_wall : float;  (* superblocks off *)
  identical : bool;  (* full reports byte-identical on vs off *)
}

let speedup r = if r.wall <= 0. then 0. else r.interp_wall /. r.wall

let geomean = function
  | [] -> 0.
  | xs ->
      exp
        (List.fold_left (fun acc x -> acc +. log (max x 1e-9)) 0. xs
        /. float_of_int (List.length xs))

let throughput () =
  header "Throughput: simulated MIPS per workload x mode (host-dependent)";
  let runs =
    List.concat_map
      (fun k ->
        List.map
          (fun (mode_name, mode) ->
            let report, sb, wall = fresh_run k mode in
            let interp_report, _, interp_wall =
              fresh_run ~superblocks:false k mode
            in
            {
              kname = k.Spec.name;
              mode_name;
              report;
              sb;
              wall;
              interp_wall;
              identical = report_bytes report = report_bytes interp_report;
            })
          modes)
      kernels
  in
  table
    ~columns:
      [
        "kernel"; "mode"; "instructions"; "sim MIPS"; "interp MIPS"; "speedup";
        "report";
      ]
    (List.map
       (fun r ->
         let s = r.report.Shift.Report.stats in
         [
           r.kname;
           r.mode_name;
           string_of_int s.Stats.instructions;
           Printf.sprintf "%.2f" (mips s r.wall);
           Printf.sprintf "%.2f" (mips s r.interp_wall);
           Printf.sprintf "%.2fx" (speedup r);
           (if r.identical then "identical" else "MISMATCH");
         ])
       runs);
  note "simulated MIPS = simulated instructions / host wall-clock; like the";
  note "bechamel suite this experiment is serial and its timing columns are";
  note "host-dependent.  The simulated counters are exactly reproducible,";
  note "and the speedup column is a same-host ratio.";
  let sb_identical = List.for_all (fun r -> r.identical) runs in
  let mean_speedup = geomean (List.map speedup runs) in
  note "superblocks vs interpreter: reports %s, geomean speedup %.2fx (floor %.1fx)"
    (if sb_identical then "identical" else "MISMATCH")
    mean_speedup speedup_floor;
  (* differential check: fast paths vs the byte-at-a-time reference *)
  let consistency =
    List.concat_map
      (fun k ->
        List.map
          (fun (mode_name, mode) ->
            let was = !Memory.fast_path in
            let fast, refr =
              Fun.protect
                ~finally:(fun () -> Memory.fast_path := was)
                (fun () ->
                  Memory.fast_path := true;
                  let fast, _, _ = fresh_run k mode in
                  Memory.fast_path := false;
                  let refr, _, _ = fresh_run k mode in
                  (fast.Shift.Report.stats, refr.Shift.Report.stats))
            in
            let ok = counters fast = counters refr in
            (k.Spec.name, mode_name, fast, refr, ok))
          [ ("word", word); ("byte", byte) ])
      smoke
  in
  let all_ok = List.for_all (fun (_, _, _, _, ok) -> ok) consistency in
  List.iter
    (fun (kname, mode_name, fast, refr, ok) ->
      if not ok then begin
        let fi, fc, fl, fs = counters fast and ri, rc, rl, rs = counters refr in
        note
          "CONSISTENCY FAILURE %s/%s: fast %d instrs %d cycles %d loads %d \
           stores vs reference %d/%d/%d/%d"
          kname mode_name fi fc fl fs ri rc rl rs
      end)
    consistency;
  note "fast-path consistency on smoke kernels: %s"
    (if all_ok then "ok" else "MISMATCH");
  J.Obj
    [
      ( "runs",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("kernel", J.String r.kname);
                   ("mode", J.String r.mode_name);
                   ("stats", stats_json r.report.Shift.Report.stats);
                   ("wall_s", J.Float r.wall);
                   ("sim_mips", J.Float (mips r.report.Shift.Report.stats r.wall));
                   ("interp_wall_s", J.Float r.interp_wall);
                   ( "interp_mips",
                     J.Float (mips r.report.Shift.Report.stats r.interp_wall) );
                   ("superblock_speedup", J.Float (speedup r));
                   ("superblocks", sb_json r.sb);
                   ("report_identical", J.Bool r.identical);
                 ])
             runs) );
      ( "consistency",
        J.List
          (List.map
             (fun (kname, mode_name, fast, refr, ok) ->
               J.Obj
                 [
                   ("kernel", J.String kname);
                   ("mode", J.String mode_name);
                   ("ok", J.Bool ok);
                   ("fast", stats_json fast);
                   ("reference", stats_json refr);
                 ])
             consistency) );
      ("fast_path_consistent", J.Bool all_ok);
      ("superblock_consistent", J.Bool sb_identical);
      ("superblock_geomean_speedup", J.Float mean_speedup);
      ("superblock_speedup_ok", J.Bool (sb_identical && mean_speedup >= speedup_floor));
    ]
