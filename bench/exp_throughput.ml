(* Throughput microbenchmark: simulated MIPS per workload x mode.

   Unlike the paper-reproduction experiments, this one measures the
   *simulator itself*: how many simulated instructions per host second
   `Cpu.step` retires on each workload.  It exists so interpreter
   speedups (and regressions) show up in the recorded bench trajectory
   (BENCH_throughput.json) instead of only in anecdotes.

   Like the bechamel suite, it always runs serially and its MIPS /
   wall-clock columns are host-dependent; the simulated counters
   (instructions, cycles, loads, stores) are deterministic, and the
   fast-path consistency verdict is exact.  The consistency check runs
   the smoke kernels twice — once with the memory/taint fast paths
   enabled and once on the byte-at-a-time reference paths — and demands
   identical counters; CI greps the JSON for the verdict. *)

open Common
module J = Shift.Results
module Stats = Shift_machine.Stats
module Memory = Shift_mem.Memory

let kernels = List.filter_map Spec.find [ "gzip"; "gcc"; "mcf"; "bzip2" ]
let modes = [ ("uninstr", Mode.Uninstrumented); ("word", word); ("byte", byte) ]

(* smoke kernels for the differential fast-vs-reference check *)
let smoke = List.filter_map Spec.find [ "gzip"; "mcf" ]

let fresh_run k mode =
  (* bypass the kernel memo: we time the run, so it must be fresh *)
  let image = image_of_kernel k mode in
  let t0 = Unix.gettimeofday () in
  let report =
    Shift.Session.run_image ~policy:Policy.default ~fuel
      ~setup:(Spec.setup ~tainted:true k) image
  in
  let wall = Unix.gettimeofday () -. t0 in
  (report.Shift.Report.stats, wall)

let mips (stats : Stats.t) wall =
  if wall <= 0. then 0. else float_of_int stats.Stats.instructions /. wall /. 1e6

let counters (s : Stats.t) =
  (s.Stats.instructions, s.Stats.cycles, s.Stats.loads, s.Stats.stores)

let stats_json (s : Stats.t) =
  J.Obj
    [
      ("instructions", J.Int s.Stats.instructions);
      ("cycles", J.Int s.Stats.cycles);
      ("loads", J.Int s.Stats.loads);
      ("stores", J.Int s.Stats.stores);
    ]

let throughput () =
  header "Throughput: simulated MIPS per workload x mode (host-dependent)";
  let runs =
    List.concat_map
      (fun k ->
        List.map
          (fun (mode_name, mode) ->
            let stats, wall = fresh_run k mode in
            (k.Spec.name, mode_name, stats, wall))
          modes)
      kernels
  in
  table
    ~columns:[ "kernel"; "mode"; "instructions"; "cycles"; "sim MIPS"; "wall ms" ]
    (List.map
       (fun (kname, mode_name, stats, wall) ->
         [
           kname;
           mode_name;
           string_of_int stats.Stats.instructions;
           string_of_int stats.Stats.cycles;
           Printf.sprintf "%.2f" (mips stats wall);
           Printf.sprintf "%.1f" (wall *. 1000.);
         ])
       runs);
  note "simulated MIPS = simulated instructions / host wall-clock; like the";
  note "bechamel suite this experiment is serial and its timing columns are";
  note "host-dependent.  The simulated counters are exactly reproducible.";
  (* differential check: fast paths vs the byte-at-a-time reference *)
  let consistency =
    List.concat_map
      (fun k ->
        List.map
          (fun (mode_name, mode) ->
            let was = !Memory.fast_path in
            let fast, refr =
              Fun.protect
                ~finally:(fun () -> Memory.fast_path := was)
                (fun () ->
                  Memory.fast_path := true;
                  let fast, _ = fresh_run k mode in
                  Memory.fast_path := false;
                  let refr, _ = fresh_run k mode in
                  (fast, refr))
            in
            let ok = counters fast = counters refr in
            (k.Spec.name, mode_name, fast, refr, ok))
          [ ("word", word); ("byte", byte) ])
      smoke
  in
  let all_ok = List.for_all (fun (_, _, _, _, ok) -> ok) consistency in
  List.iter
    (fun (kname, mode_name, fast, refr, ok) ->
      if not ok then begin
        let fi, fc, fl, fs = counters fast and ri, rc, rl, rs = counters refr in
        note
          "CONSISTENCY FAILURE %s/%s: fast %d instrs %d cycles %d loads %d \
           stores vs reference %d/%d/%d/%d"
          kname mode_name fi fc fl fs ri rc rl rs
      end)
    consistency;
  note "fast-path consistency on smoke kernels: %s"
    (if all_ok then "ok" else "MISMATCH");
  J.Obj
    [
      ( "runs",
        J.List
          (List.map
             (fun (kname, mode_name, stats, wall) ->
               J.Obj
                 [
                   ("kernel", J.String kname);
                   ("mode", J.String mode_name);
                   ("stats", stats_json stats);
                   ("wall_s", J.Float wall);
                   ("sim_mips", J.Float (mips stats wall));
                 ])
             runs) );
      ( "consistency",
        J.List
          (List.map
             (fun (kname, mode_name, fast, refr, ok) ->
               J.Obj
                 [
                   ("kernel", J.String kname);
                   ("mode", J.String mode_name);
                   ("ok", J.Bool ok);
                   ("fast", stats_json fast);
                   ("reference", stats_json refr);
                 ])
             consistency) );
      ("fast_path_consistent", J.Bool all_ok);
    ]
