(* Backend cost model: SHIFT's on-core nat tracking vs its successors.

   The tracking-backend refactor (lib/tracking) lets one session run
   under three architectures: [none] (uninstrumented baseline), [nat]
   (the paper's design — taint rides the NaT bits, propagation is
   instrumentation in the guest itself) and [coproc] (a decoupled tag
   coprocessor draining a bounded asynchronous tag queue, the
   architecture of SHIFT's successors — see PAPERS.md).  This
   experiment costs the three against each other on the SPEC-like
   kernel grid plus the Httpd workload, and records two exact,
   CI-gated verdicts:

   - [nat_identical_to_seed]: a run under [--backend nat] produces a
     report byte-identical to the default run path that predates the
     backend interface, with the superblock compiler both on and off —
     the refactor is invisible to the paper numbers;
   - [coproc_detects_all_attacks]: every Table-2 exploit still raises
     an alert when checks resolve asynchronously at queue-drain time,
     and every benign input stays clean.  The per-case drain lag (in
     retired instructions) is the detection-lag cost of decoupling. *)

open Common
module J = Shift.Results
module Stats = Shift_machine.Stats
module Tracking = Shift.Tracking
module Backend = Shift.Backend
module Case = Shift_attacks.Attack_case

let kernels = Spec.all
let all_backends = [ Backend.Off; Backend.Nat; Backend.Coproc ]

(* the requested mode; non-nat backends map it to Uninstrumented *)
let requested_mode = word

(* copy the coprocessor's mutable counters before the live session is
   dropped *)
type qstats = {
  enqueued : int;
  drained : int;
  stalls : int;
  stall_cycles : int;
  qchecks : int;
  qalerts : int;
  max_lag : int;
  last_alert_lag : int;
}

let qstats_of (s : Tracking.stats) =
  {
    enqueued = s.Tracking.enqueued;
    drained = s.Tracking.drained;
    stalls = s.Tracking.stalls;
    stall_cycles = s.Tracking.stall_cycles;
    qchecks = s.Tracking.checks;
    qalerts = s.Tracking.alerts;
    max_lag = s.Tracking.max_lag;
    last_alert_lag = s.Tracking.last_alert_lag;
  }

let qstats_json q =
  J.Obj
    [
      ("enqueued", J.Int q.enqueued);
      ("drained", J.Int q.drained);
      ("stalls", J.Int q.stalls);
      ("stall_cycles", J.Int q.stall_cycles);
      ("checks", J.Int q.qchecks);
      ("alerts", J.Int q.qalerts);
      ("max_lag", J.Int q.max_lag);
      ("last_alert_lag", J.Int q.last_alert_lag);
    ]

let run_backend ?(superblocks = true) ~backend (k : Spec.kernel) =
  let mode = Shift.Session.effective_mode ~backend requested_mode in
  let config =
    Shift.Session.Config.make ~policy:Policy.default ~fuel
      ~setup:(Spec.setup ~tainted:true k) ~superblocks ~backend ()
  in
  let live =
    Shift.Session.start ~config (Shift.Session.build ~backend ~mode k.Spec.program)
  in
  (match Shift.Session.advance live ~budget:max_int with
  | `Finished _ | `Yielded -> ());
  let q =
    match backend with
    | Backend.Coproc -> Some (qstats_of (Tracking.stats (Shift.Session.tracking live)))
    | Backend.Nat | Backend.Off -> None
  in
  (Shift.Session.report live, q)

(* the pre-backend run path: Session.run_image with no backend
   argument, exactly what the harness called before lib/tracking
   existed *)
let run_seed ?(superblocks = true) (k : Spec.kernel) =
  Shift.Session.run_image ~policy:Policy.default ~fuel
    ~setup:(Spec.setup ~tainted:true k) ~superblocks
    (image_of_kernel k requested_mode)

let report_bytes r = J.to_string (J.of_report r)

(* ---------- the attack suite under the coprocessor ---------- *)

let attack_coproc ~benign (c : Case.t) =
  let backend = Backend.Coproc in
  let mode = Shift.Session.effective_mode ~backend requested_mode in
  let setup = if benign then c.Case.benign else c.Case.exploit in
  let config =
    Shift.Session.Config.make ~policy:c.Case.policy ~setup ~backend ()
  in
  let live =
    Shift.Session.start ~config (Shift.Session.build ~backend ~mode c.Case.program)
  in
  (match Shift.Session.advance live ~budget:max_int with
  | `Finished _ | `Yielded -> ());
  let report = Shift.Session.report live in
  let alerted =
    match report.Shift.Report.outcome with
    | Shift.Report.Alert _ -> true
    | _ -> false
  in
  (alerted, report, qstats_of (Tracking.stats (Shift.Session.tracking live)))

(* ---------- the queue-knob sweep ---------- *)

(* one coproc run with explicit queue knobs; [None] = model default *)
let run_coproc_knobs ?capacity ?drain_rate ?stall_penalty (k : Spec.kernel) =
  let backend = Backend.Coproc in
  let mode = Shift.Session.effective_mode ~backend requested_mode in
  let config =
    Shift.Session.Config.make ~policy:Policy.default ~fuel
      ~setup:(Spec.setup ~tainted:true k) ~backend ?coproc_capacity:capacity
      ?coproc_drain_rate:drain_rate ?coproc_stall_penalty:stall_penalty ()
  in
  let live =
    Shift.Session.start ~config (Shift.Session.build ~backend ~mode k.Spec.program)
  in
  (match Shift.Session.advance live ~budget:max_int with
  | `Finished _ | `Yielded -> ());
  (Shift.Session.report live, qstats_of (Tracking.stats (Shift.Session.tracking live)))

type sweep_point = {
  axis : string;  (* which knob this point varies *)
  capacity : int;
  drain_rate : int;
  stall_penalty : int;
  cycles : int;
  q : qstats;
}

(* Shrink the queue until the core stalls (the knee), vary the drain
   rate at the default capacity, and price the stalls once the queue is
   too small to hide them. *)
let capacities = [ 4; 8; 16; 32; 64; 128; Tracking.default_capacity ]
let drain_rates = [ 1; Tracking.default_drain_rate; 4; 8 ]
let stall_penalties = [ 1; Tracking.default_stall_penalty; 16; 64 ]

let sweep_points () =
  (* at the default drain rate the coprocessor keeps up with retirement
     and every capacity is equally invisible, so the capacity axis is
     swept at drain rate 1 — the regime where the queue is under
     pressure and its depth decides whether bursts stall the core *)
  List.map (fun c -> ("capacity", Some c, Some 1, None)) capacities
  @ List.map (fun d -> ("drain_rate", None, Some d, None)) drain_rates
  (* penalty only matters while stalling: pin the pressured drain rate *)
  @ List.map (fun p -> ("stall_penalty", None, Some 1, Some p)) stall_penalties

let run_sweep k =
  Pool.map
    (fun (axis, cap, dr, sp) ->
      let r, q = run_coproc_knobs ?capacity:cap ?drain_rate:dr ?stall_penalty:sp k in
      {
        axis;
        capacity = Option.value cap ~default:Tracking.default_capacity;
        drain_rate = Option.value dr ~default:Tracking.default_drain_rate;
        stall_penalty = Option.value sp ~default:Tracking.default_stall_penalty;
        cycles = r.Shift.Report.stats.Stats.cycles;
        q;
      })
    (sweep_points ())

(* The stall knee: the smallest swept capacity whose stall cycles are
   within 1% of the deepest queue's.  Below it the shallow queue turns
   propagation bursts into extra force-drain stalls; past it a deeper
   queue buys the core nothing (under sustained overload the residual
   stalls are the enqueue-drain rate gap, which no capacity absorbs). *)
let knee_of sweep =
  let caps = List.filter (fun p -> p.axis = "capacity") sweep in
  let floor_cycles = (List.nth caps (List.length caps - 1)).q.stall_cycles in
  match
    List.find_opt
      (fun p -> p.q.stall_cycles <= floor_cycles + (floor_cycles / 100))
      caps
  with
  | Some p -> p
  | None -> List.nth caps (List.length caps - 1)

let sweep_point_json p =
  J.Obj
    [
      ("axis", J.String p.axis);
      ("capacity", J.Int p.capacity);
      ("drain_rate", J.Int p.drain_rate);
      ("stall_penalty", J.Int p.stall_penalty);
      ("cycles", J.Int p.cycles);
      ("stalls", J.Int p.q.stalls);
      ("stall_cycles", J.Int p.q.stall_cycles);
      ("max_lag", J.Int p.q.max_lag);
    ]

(* ---------- the experiment ---------- *)

let backend_name = Backend.to_string

let backends () =
  header "Backends: uninstrumented vs SHIFT (nat) vs tag coprocessor";
  (* the kernel grid, every (kernel, backend) cell through the pool *)
  let grid =
    Pool.map
      (fun ((k : Spec.kernel), backend) ->
        let report, q = run_backend ~backend k in
        (k.Spec.name, backend, report, q))
      (List.concat_map
         (fun k -> List.map (fun b -> (k, b)) all_backends)
         kernels)
  in
  (* the Httpd workload row (serial: it drives its own slices) *)
  let httpd =
    List.map
      (fun backend ->
        let r =
          Httpd.serve ~mode:requested_mode ~file_size:4096 ~requests:10
            ~backend ()
        in
        ("httpd", backend, r, None))
      all_backends
  in
  let rows = grid @ httpd in
  let cycles_of_cell workload backend =
    match
      List.find_opt (fun (w, b, _, _) -> w = workload && b = backend) rows
    with
    | Some (_, _, r, _) -> r.Shift.Report.stats.Stats.cycles
    | None -> 0
  in
  let overhead workload backend =
    let base = cycles_of_cell workload Backend.Off in
    if base = 0 then 0.
    else float_of_int (cycles_of_cell workload backend) /. float_of_int base
  in
  table
    ~columns:[ "workload"; "backend"; "cycles"; "overhead"; "queue (max lag)" ]
    (List.map
       (fun (w, b, (r : Shift.Report.t), q) ->
         [
           w;
           backend_name b;
           string_of_int r.Shift.Report.stats.Stats.cycles;
           Printf.sprintf "%.2fx" (overhead w b);
           (match q with
           | Some q ->
               Printf.sprintf "%d recs, lag <= %d, %d stalls" q.enqueued
                 q.max_lag q.stalls
           | None -> "-");
         ])
       rows);
  let workloads = List.map (fun (k : Spec.kernel) -> k.Spec.name) kernels in
  let mean b = geomean (List.map (fun w -> overhead w b) workloads) in
  note "geomean kernel overhead vs none: nat %.2fx, coproc %.2fx" (mean Backend.Nat)
    (mean Backend.Coproc);
  note "nat pays instrumented guest code; coproc runs the guest";
  note "uninstrumented and pays only queue-full stalls, trading detection";
  note "latency (the drain lag) for throughput.";
  (* identity verdict: nat == the pre-backend run path, superblocks on
     for the whole grid and off for the interpreter smoke pair *)
  let identity_cells =
    List.map (fun k -> (k, true)) kernels
    @ List.filter_map
        (fun name -> Option.map (fun k -> (k, false)) (Spec.find name))
        [ "gzip"; "mcf" ]
  in
  let identity =
    Pool.map
      (fun ((k : Spec.kernel), superblocks) ->
        let nat, _ = run_backend ~superblocks ~backend:Backend.Nat k in
        let seed = run_seed ~superblocks k in
        (k.Spec.name, superblocks, report_bytes nat = report_bytes seed))
      identity_cells
  in
  let nat_identical = List.for_all (fun (_, _, ok) -> ok) identity in
  List.iter
    (fun (name, sb, ok) ->
      if not ok then
        note "IDENTITY FAILURE: %s (superblocks %b) nat report differs" name sb)
    identity;
  note "nat vs pre-backend run path: %s"
    (if nat_identical then "byte-identical" else "MISMATCH");
  (* security verdict: the whole Table-2 suite under the coprocessor *)
  let attacks =
    Pool.map
      (fun (c : Case.t) ->
        let detected, _, exploit_q = attack_coproc ~benign:false c in
        let benign_alerted, _, _ = attack_coproc ~benign:true c in
        (c.Case.program_name, detected, not benign_alerted, exploit_q))
      Shift_attacks.Attacks.all
  in
  let coproc_detects =
    List.for_all (fun (_, det, clean, _) -> det && clean) attacks
  in
  table
    ~columns:[ "attack case"; "exploit"; "benign"; "alert lag"; "max lag" ]
    (List.map
       (fun (name, det, clean, q) ->
         [
           name;
           (if det then "detected" else "MISSED");
           (if clean then "clean" else "FALSE ALARM");
           string_of_int q.last_alert_lag;
           string_of_int q.max_lag;
         ])
       attacks);
  note "coproc detection: %s; the lag columns are drain lags in retired"
    (if coproc_detects then "all detected, no false alarms" else "FAILURE");
  note "instructions (bounded by the %d-record queue)."
    Tracking.default_capacity;
  (* queue-knob sweep on one kernel: capacity, drain rate, stall penalty *)
  let sweep_kernel =
    match Spec.find "gzip" with Some k -> k | None -> List.hd kernels
  in
  let sweep = run_sweep sweep_kernel in
  let knee = knee_of sweep in
  table
    ~columns:
      [ "axis"; "capacity"; "drain"; "penalty"; "cycles"; "stalls";
        "stall cycles"; "max lag" ]
    (List.map
       (fun p ->
         [
           p.axis;
           string_of_int p.capacity;
           string_of_int p.drain_rate;
           string_of_int p.stall_penalty;
           string_of_int p.cycles;
           string_of_int p.q.stalls;
           string_of_int p.q.stall_cycles;
           string_of_int p.q.max_lag;
         ])
       sweep);
  note "queue sweep on %s: the stall knee is capacity %d (%d stall cycles) —"
    sweep_kernel.Spec.name knee.capacity knee.q.stall_cycles;
  note "shallower queues turn propagation bursts into extra force-drain";
  note "stalls; deeper ones buy nothing the drain rate doesn't already.";
  J.Obj
    [
      ( "rows",
        J.List
          (List.map
             (fun (w, b, (r : Shift.Report.t), q) ->
               J.Obj
                 ([
                    ("workload", J.String w);
                    ("backend", J.String (backend_name b));
                    ("cycles", J.Int r.Shift.Report.stats.Stats.cycles);
                    ("instructions", J.Int r.Shift.Report.stats.Stats.instructions);
                    ("overhead_vs_none", J.Float (overhead w b));
                  ]
                 @ match q with Some q -> [ ("coproc", qstats_json q) ] | None -> []))
             rows) );
      ( "geomeans",
        J.List
          (List.map
             (fun b ->
               J.Obj
                 [
                   ("backend", J.String (backend_name b));
                   ("geomean_overhead_vs_none", J.Float (mean b));
                 ])
             all_backends) );
      ( "identity",
        J.List
          (List.map
             (fun (name, sb, ok) ->
               J.Obj
                 [
                   ("kernel", J.String name);
                   ("superblocks", J.Bool sb);
                   ("identical", J.Bool ok);
                 ])
             identity) );
      ( "attacks",
        J.List
          (List.map
             (fun (name, det, clean, q) ->
               J.Obj
                 [
                   ("case", J.String name);
                   ("exploit_detected", J.Bool det);
                   ("benign_clean", J.Bool clean);
                   ("coproc", qstats_json q);
                 ])
             attacks) );
      ( "coproc_sweep",
        J.Obj
          [
            ("workload", J.String sweep_kernel.Spec.name);
            ("points", J.List (List.map sweep_point_json sweep));
            ("stall_knee", sweep_point_json knee);
          ] );
      ("nat_identical_to_seed", J.Bool nat_identical);
      ("coproc_detects_all_attacks", J.Bool coproc_detects);
    ]
