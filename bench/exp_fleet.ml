(* Fleet: the kernel grid as a batch of independent sessions through
   the core batch-session layer (Shift.Fleet) rather than the harness's
   own plumbing.

   Every (kernel, mode) cell compiles and runs inside a pool worker;
   the aggregate — and its JSON — is byte-identical at any -j, which
   the test suite pins (test/test_engine.ml).  This experiment is the
   harness-side exercise of the same layer `shiftc batch` exposes. *)

open Common
module J = Shift.Results
module Stats = Shift_machine.Stats

let cells =
  List.concat_map
    (fun (k : Spec.kernel) ->
      List.map (fun (mode_name, mode) -> (k, mode_name, mode))
        [ ("uninstr", Mode.Uninstrumented); ("word", word) ])
    Spec.all

let jobs =
  List.map
    (fun ((k : Spec.kernel), mode_name, mode) ->
      Shift.Fleet.job
        ~name:(Printf.sprintf "%s/%s" k.Spec.name mode_name)
        ~config:
          (Shift.Session.Config.make ~policy:Policy.default ~fuel
             ~setup:(Spec.setup ~tainted:true k) ())
        (fun () -> Shift.Session.build ~mode k.Spec.program))
    cells

let fleet () =
  header "Fleet: the kernel grid as batch sessions (Shift.Fleet)";
  let fleet = Shift.Fleet.run jobs in
  table
    ~columns:[ "session"; "outcome"; "instructions"; "cycles" ]
    (List.map
       (fun (r : Shift.Fleet.result) ->
         match r.Shift.Fleet.outcome with
         | Shift.Fleet.Finished report ->
             [
               r.Shift.Fleet.name;
               Format.asprintf "%a" Shift.Report.pp_outcome
                 report.Shift.Report.outcome;
               string_of_int report.Shift.Report.stats.Stats.instructions;
               string_of_int report.Shift.Report.stats.Stats.cycles;
             ]
         | Shift.Fleet.Crashed c ->
             [ r.Shift.Fleet.name; "crashed: " ^ c.Shift.Fleet.exn; "-"; "-" ])
       fleet.Shift.Fleet.results);
  note "%d sessions: %d exited, %d alerted, %d faulted, %d timed out"
    (List.length fleet.Shift.Fleet.results)
    fleet.Shift.Fleet.exited fleet.Shift.Fleet.alerted fleet.Shift.Fleet.faulted
    fleet.Shift.Fleet.timed_out;
  note "totals: %d instructions, %d cycles"
    fleet.Shift.Fleet.stats.Stats.instructions fleet.Shift.Fleet.stats.Stats.cycles;
  Shift.Fleet.to_json fleet
