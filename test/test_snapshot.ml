(* Checkpoint/restore: a session frozen mid-flight, serialised, parsed
   back and restored in a fresh machine must finish with a report
   byte-identical to the unbroken run's — across single-hart, SMP and
   traced shapes, at byte and word granularity.  Plus the fleet
   supervisor built on top: crashes are contained, retries counted,
   deadlines enforced. *)

open Build
open Build.Infix
module Mode = Shift_compiler.Mode
module Policy = Shift_policy.Policy
module Memory = Shift_mem.Memory
module Addr = Shift_mem.Addr
module Spec = Shift_workloads.Spec

let tc = Util.tc
let fuel = 100_000_000

let report_json (r : Shift.Report.t) =
  Shift.Results.to_string (Shift.Results.of_report r)

let finish live =
  let rec loop () =
    match Shift.Session.advance live ~budget:max_int with
    | `Yielded -> loop ()
    | `Finished _ -> ()
  in
  loop ()

(* the straight run, through the same sliced driver as everything else *)
let straight ~config image =
  let live = Shift.Session.start ~config image in
  finish live;
  live

(* advance [yields] slices of [budget], checkpoint, serialise to JSON
   text, parse back, restore, and run the restored session to
   completion *)
let broken ~config ~budget ~yields image =
  let live = Shift.Session.start ~config image in
  for _ = 1 to yields do
    match Shift.Session.advance live ~budget with
    | `Yielded -> ()
    | `Finished _ -> Alcotest.fail "run finished before the checkpoint point"
  done;
  let snap = Shift.Session.checkpoint ~meta:[ ("origin", "test") ] live in
  let text = Shift.Results.to_string (Shift.Snapshot.to_json snap) in
  let snap =
    match Shift.Results.of_string text with
    | Error e -> Alcotest.failf "snapshot JSON did not parse: %s" e
    | Ok j -> (
        match Shift.Snapshot.of_json j with
        | Error e -> Alcotest.failf "snapshot did not decode: %s" e
        | Ok s -> s)
  in
  let live = Shift.Session.restore snap in
  finish live;
  live

let kernel name =
  match Spec.find name with
  | Some k -> k
  | None -> Alcotest.failf "kernel %s missing" name

let kernel_config ?threading ?trace k =
  Shift.Session.Config.make ~policy:Policy.default ~fuel
    ~setup:(Spec.setup ~size:256 ~tainted:true k)
    ?threading ?trace ()

let check_roundtrip ?threading ?trace ~mode ~budget ~yields name =
  let k = kernel name in
  let config = kernel_config ?threading ?trace k in
  let image = Shift.Session.build ~mode k.Spec.program in
  let reference = straight ~config image in
  let resumed = broken ~config ~budget ~yields image in
  Util.check_string "byte-identical report"
    (report_json (Shift.Session.report reference))
    (report_json (Shift.Session.report resumed));
  (reference, resumed)

let spawn_prog =
  {
    Ir.globals = [];
    funcs =
      [
        func "worker" ~params:[ "x" ] ~locals:[] [ ret (v "x" *: v "x") ];
        func "main" ~params:[] ~locals:[ scalar "t1"; scalar "t2" ]
          [
            set "t1" (call "sys_spawn" [ fnptr "worker"; i 5 ]);
            set "t2" (call "sys_spawn" [ fnptr "worker"; i 6 ]);
            ret (call "sys_join" [ v "t1" ] +: call "sys_join" [ v "t2" ]);
          ];
      ];
  }

let roundtrip_tests =
  [
    tc "single hart, word granularity" (fun () ->
        ignore
          (check_roundtrip ~mode:Mode.shift_word ~budget:5000 ~yields:3 "gzip"));
    tc "single hart, byte granularity" (fun () ->
        ignore
          (check_roundtrip ~mode:Mode.shift_byte ~budget:5000 ~yields:3 "gzip"));
    tc "single hart, uninstrumented" (fun () ->
        ignore
          (check_roundtrip ~mode:Mode.Uninstrumented ~budget:3000 ~yields:2
             "mcf"));
    tc "traced run: flow events and ring survive the round trip" (fun () ->
        (* a 64-event ring wraps many times over a tainted gzip run, so
           this exercises re-seating a wrapped ring, interned sources
           and the provenance shadow pages *)
        let trace = { Shift.Flowtrace.capacity = 64; only = None } in
        let reference, resumed =
          check_roundtrip ~trace ~mode:Mode.shift_word ~budget:5000 ~yields:3
            "gzip"
        in
        let jsonl live =
          match Shift.Session.flowtrace live with
          | Some ft -> Shift.Flow.jsonl ft
          | None -> Alcotest.fail "traced session lost its flow trace"
        in
        Util.check_string "byte-identical flow JSONL" (jsonl reference)
          (jsonl resumed));
    tc "SMP: checkpoint lands mid-quantum and resumes exactly" (fun () ->
        (* quantum 7 with budget 13 suspends inside a hart's turn; the
           restored scheduler must resume the identical interleaving *)
        let threading = Shift.Session.Config.Threads { quantum = Some 7 } in
        let config =
          Shift.Session.Config.make ~policy:Policy.default ~fuel ~threading ()
        in
        let image = Shift.Session.build ~mode:Mode.shift_word spawn_prog in
        let reference = straight ~config image in
        let resumed = broken ~config ~budget:13 ~yields:5 image in
        Util.check_string "byte-identical report"
          (report_json (Shift.Session.report reference))
          (report_json (Shift.Session.report resumed)));
    tc "SMP + trace: shared ring and per-hart shadows round-trip" (fun () ->
        let threading = Shift.Session.Config.Threads { quantum = Some 7 } in
        let trace = { Shift.Flowtrace.capacity = 128; only = None } in
        let config =
          Shift.Session.Config.make ~policy:Policy.default ~fuel ~threading
            ~trace ()
        in
        let image = Shift.Session.build ~mode:Mode.shift_word spawn_prog in
        let reference = straight ~config image in
        let resumed = broken ~config ~budget:13 ~yields:4 image in
        Util.check_string "byte-identical report"
          (report_json (Shift.Session.report reference))
          (report_json (Shift.Session.report resumed)));
    tc "a finished session checkpoints and restores its outcome" (fun () ->
        let k = kernel "mcf" in
        let config = kernel_config k in
        let image = Shift.Session.build ~mode:Mode.shift_word k.Spec.program in
        let live = straight ~config image in
        let snap = Shift.Session.checkpoint live in
        let restored = Shift.Session.restore snap in
        finish restored;
        Util.check_string "same report"
          (report_json (Shift.Session.report live))
          (report_json (Shift.Session.report restored)));
    tc "save/load: the on-disk file restores byte-identically" (fun () ->
        let k = kernel "gzip" in
        let config = kernel_config k in
        let image = Shift.Session.build ~mode:Mode.shift_word k.Spec.program in
        let reference = straight ~config image in
        let live = Shift.Session.start ~config image in
        (match Shift.Session.advance live ~budget:10_000 with
        | `Yielded -> ()
        | `Finished _ -> Alcotest.fail "finished too early");
        let path = Filename.temp_file "shift-snap" ".json" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            Shift.Snapshot.save path
              (Shift.Session.checkpoint ~meta:[ ("kernel", "gzip") ] live);
            match Shift.Snapshot.load path with
            | Error e -> Alcotest.failf "load: %s" e
            | Ok snap ->
                Util.check_string "meta survives" "gzip"
                  (List.assoc "kernel" snap.Shift.Snapshot.meta);
                let resumed = Shift.Session.restore snap in
                finish resumed;
                Util.check_string "byte-identical report"
                  (report_json (Shift.Session.report reference))
                  (report_json (Shift.Session.report resumed))));
  ]

(* ---------- memory page dump/load ---------- *)

let page = Memory.page_size

let page_tests =
  [
    tc "a write spanning a page boundary dumps and reloads" (fun () ->
        let m = Memory.create () in
        let addr = Addr.in_region 1 (Int64.of_int ((2 * page) - 3)) in
        Memory.write_bytes m addr "boundary";
        let pages =
          Memory.fold_pages m ~init:[] ~f:(fun acc key data ->
              (key, Bytes.to_string data) :: acc)
          |> List.rev
        in
        Util.check_int "two pages touched" 2 (List.length pages);
        let m2 = Memory.create () in
        List.iter (fun (key, data) -> Memory.load_page m2 key data) pages;
        Util.check_string "bytes cross the boundary intact" "boundary"
          (Memory.read_bytes m2 addr ~len:8));
    tc "all-zero pages are elided from the dump" (fun () ->
        let m = Memory.create () in
        Memory.write_u8 m (Addr.in_region 1 0x2100L) 7;
        (* touch a second page but leave it all-zero again *)
        Memory.write_u8 m (Addr.in_region 1 (Int64.of_int (page * 5))) 1;
        Memory.write_u8 m (Addr.in_region 1 (Int64.of_int (page * 5))) 0;
        let keys =
          Memory.fold_pages m ~init:[] ~f:(fun acc key _ -> key :: acc)
        in
        Util.check_int "only the non-zero page" 1 (List.length keys);
        Util.check_int "pages allocated" 2 (Memory.allocated_pages m));
    tc "load_page rejects a short page" (fun () ->
        let m = Memory.create () in
        Alcotest.check_raises "size mismatch"
          (Invalid_argument
             "Memory.load_page: page data must be exactly page_size bytes")
          (fun () -> Memory.load_page m 0L "short"));
    tc "pages fold in ascending key order" (fun () ->
        let m = Memory.create () in
        List.iter
          (fun p -> Memory.write_u8 m (Addr.in_region 1 (Int64.of_int (p * page))) 1)
          [ 9; 2; 5 ];
        let keys =
          Memory.fold_pages m ~init:[] ~f:(fun acc key _ -> key :: acc)
          |> List.rev
        in
        Util.check_bool "sorted" true (keys = List.sort compare keys);
        Util.check_int "three pages" 3 (List.length keys));
  ]

(* ---------- the fleet supervisor ---------- *)

let good_job name kernel_name =
  let k = kernel kernel_name in
  Shift.Fleet.job ~name
    ~config:(kernel_config k)
    (fun () -> Shift.Session.build ~mode:Mode.shift_word k.Spec.program)

let fleet_json f = Shift.Results.to_string (Shift.Fleet.to_json f)

let fleet_tests =
  [
    tc "a poisoned job is contained; siblings still finish" (fun () ->
        let jobs =
          [
            good_job "a" "gzip";
            Shift.Fleet.job ~name:"boom" (fun () -> failwith "poisoned image");
            good_job "b" "mcf";
          ]
        in
        let fleet = Shift.Fleet.run ~domains:2 jobs in
        Util.check_int "exited" 2 fleet.Shift.Fleet.exited;
        Util.check_int "crashed" 1 fleet.Shift.Fleet.crashed;
        (match fleet.Shift.Fleet.results with
        | [ a; boom; b ] ->
            Util.check_string "order" "a" a.Shift.Fleet.name;
            Util.check_string "order" "boom" boom.Shift.Fleet.name;
            Util.check_string "order" "b" b.Shift.Fleet.name;
            (match boom.Shift.Fleet.outcome with
            | Shift.Fleet.Crashed c ->
                Util.check_int "single attempt" 1 c.Shift.Fleet.attempts;
                Util.check_bool "exception text" true
                  (String.length c.Shift.Fleet.exn > 0)
            | Shift.Fleet.Finished _ -> Alcotest.fail "poisoned job finished")
        | _ -> Alcotest.fail "result list lost entries");
        (* a raising setup closure is contained the same way *)
        let bad_setup =
          Shift.Fleet.job ~name:"setup"
            ~config:
              (Shift.Session.Config.make
                 ~setup:(fun _ -> failwith "poisoned setup")
                 ())
            (fun () ->
              Shift.Session.build ~mode:Mode.shift_word
                (Util.main_returning [ ret (i 0) ]))
        in
        let fleet = Shift.Fleet.run [ bad_setup ] in
        Util.check_int "crashed" 1 fleet.Shift.Fleet.crashed);
    tc "retries rerun a crashing job the configured number of times"
      (fun () ->
        let jobs =
          [ Shift.Fleet.job ~name:"boom" (fun () -> failwith "always") ]
        in
        let fleet = Shift.Fleet.run ~retries:2 jobs in
        match fleet.Shift.Fleet.results with
        | [ { Shift.Fleet.outcome = Shift.Fleet.Crashed c; _ } ] ->
            Util.check_int "attempts" 3 c.Shift.Fleet.attempts
        | _ -> Alcotest.fail "expected one crashed result");
    tc "a per-job deadline times the session out" (fun () ->
        let k = kernel "gzip" in
        let job =
          Shift.Fleet.job ~name:"slow" ~deadline:1000
            ~config:(kernel_config k)
            (fun () -> Shift.Session.build ~mode:Mode.shift_word k.Spec.program)
        in
        let fleet = Shift.Fleet.run [ job ] in
        Util.check_int "timed out" 1 fleet.Shift.Fleet.timed_out);
    tc "checkpointed driving never changes the aggregate" (fun () ->
        let jobs = [ good_job "a" "gzip"; good_job "b" "mcf" ] in
        let plain = fleet_json (Shift.Fleet.run ~domains:2 jobs) in
        let sliced =
          fleet_json
            (Shift.Fleet.run ~domains:2 ~retries:1 ~checkpoint_every:4096 jobs)
        in
        Util.check_string "byte-identical fleet JSON" plain sliced);
  ]

let suites =
  [
    ("snapshot.roundtrip", roundtrip_tests);
    ("snapshot.pages", page_tests);
    ("snapshot.fleet", fleet_tests);
  ]
