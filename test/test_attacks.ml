(* Security evaluation (paper Table 2): every attack is detected at
   both tracking granularities with the listed policy, benign inputs
   raise no false positives, and without SHIFT the attacks succeed. *)

module Mode = Shift_compiler.Mode
module Case = Shift_attacks.Attack_case

let tc = Util.tc

let run_case (c : Case.t) ~mode ~input =
  Shift.Session.run ~policy:c.Case.policy ~setup:input ~fuel:200_000_000 ~mode c.Case.program

let granularities = [ Mode.shift_word; Mode.shift_byte ]

let benign_tests =
  List.concat_map
    (fun (c : Case.t) ->
      List.map
        (fun mode ->
          tc
            (Printf.sprintf "%s benign is clean (%s)" c.Case.program_name (Mode.to_string mode))
            (fun () ->
              let r = run_case c ~mode ~input:c.Case.benign in
              (match r.Shift.Report.outcome with
              | Shift.Report.Exited _ -> ()
              | o ->
                  Alcotest.failf "false positive or crash: %a" Shift.Report.pp_outcome o);
              Util.check_bool "no logged alerts" true (r.Shift.Report.logged = [])))
        granularities)
    Shift_attacks.Attacks.all

let exploit_tests =
  List.concat_map
    (fun (c : Case.t) ->
      List.map
        (fun mode ->
          tc
            (Printf.sprintf "%s exploit detected (%s)" c.Case.program_name (Mode.to_string mode))
            (fun () ->
              let r = run_case c ~mode ~input:c.Case.exploit in
              match r.Shift.Report.outcome with
              | Shift.Report.Alert a ->
                  Alcotest.(check string)
                    "policy" c.Case.expected_policy a.Shift_policy.Alert.policy
              | o -> Alcotest.failf "undetected: %a" Shift.Report.pp_outcome o))
        granularities)
    Shift_attacks.Attacks.all

let unprotected_tests =
  List.map
    (fun (c : Case.t) ->
      tc
        (Printf.sprintf "%s exploit succeeds without SHIFT" c.Case.program_name)
        (fun () ->
          let r = run_case c ~mode:Mode.Uninstrumented ~input:c.Case.exploit in
          match r.Shift.Report.outcome with
          | Shift.Report.Exited _ -> ()
          | o -> Alcotest.failf "expected the attack to succeed, got %a" Shift.Report.pp_outcome o))
    Shift_attacks.Attacks.all

let qwik_tests =
  let module Q = Shift_attacks.Qwik_smtpd in
  let run ~mode helo =
    Shift.Session.run
      ~policy:Shift_policy.Policy.default
      ~setup:(fun w -> Shift_os.World.queue_request w helo)
      ~fuel:200_000_000 ~mode Q.program
  in
  [
    tc "qwik-smtpd benign HELO is accepted" (fun () ->
        let r = run ~mode:Mode.shift_word Q.benign_helo in
        Util.check_i64 "clean exit" 0L (Util.exit_code r);
        Util.check_bool "relay denied" true
          (Str_exists.contains r.Shift.Report.output "550"));
    tc "qwik-smtpd overflow is caught by the Figure-1 rule" (fun () ->
        let r = run ~mode:Mode.shift_word Q.exploit_helo in
        Util.check_i64 "alert path" 255L (Util.exit_code r);
        Util.check_bool "alert printed" true
          (Str_exists.contains r.Shift.Report.output "ALERT"));
    tc "qwik-smtpd overflow succeeds without SHIFT" (fun () ->
        let r = run ~mode:Mode.Uninstrumented Q.exploit_helo in
        Util.check_i64 "relay granted" 0L (Util.exit_code r);
        Util.check_bool "relaying" true (Str_exists.contains r.Shift.Report.output "250"));
  ]

(* extension cases: H4 command injection and L3 control-flow hijack *)
let extended_tests =
  List.concat_map
    (fun mode ->
      List.concat_map
        (fun (c : Case.t) ->
          [
            tc
              (Printf.sprintf "%s benign is clean (%s)" c.Case.program_name
                 (Mode.to_string mode))
              (fun () ->
                match (run_case c ~mode ~input:c.Case.benign).outcome with
                | Shift.Report.Exited _ -> ()
                | o -> Alcotest.failf "false positive: %a" Shift.Report.pp_outcome o);
            tc
              (Printf.sprintf "%s exploit detected (%s)" c.Case.program_name
                 (Mode.to_string mode))
              (fun () ->
                match (run_case c ~mode ~input:c.Case.exploit).outcome with
                | Shift.Report.Alert a ->
                    Alcotest.(check string)
                      "policy" c.Case.expected_policy a.Shift_policy.Alert.policy
                | o -> Alcotest.failf "undetected: %a" Shift.Report.pp_outcome o);
          ])
        (Shift_attacks.Attacks.extended ~mode))
    granularities
  @ [
      tc "plugin-host hijack reaches the backdoor without SHIFT" (fun () ->
          let mode = Mode.Uninstrumented in
          let c = List.nth (Shift_attacks.Attacks.extended ~mode) 1 in
          let r = run_case c ~mode ~input:c.Case.exploit in
          Util.check_i64 "backdoor return value" 99L (Util.exit_code r);
          Util.check_bool "backdoor output" true
            (Str_exists.contains r.Shift.Report.output "PWNED"));
      tc "plugin-host benign dispatch works under SHIFT" (fun () ->
          let c = List.nth (Shift_attacks.Attacks.extended ~mode:Mode.shift_word) 1 in
          let r = run_case c ~mode:Mode.shift_word ~input:c.Case.benign in
          Util.check_i64 "handler ran" 10L (Util.exit_code r);
          Util.check_bool "status output" true
            (Str_exists.contains r.Shift.Report.output "status: ok"));
    ]

(* cross-process scenarios: the exploit must be detected in the forked
   (and exec'd) child with the alert naming that process, benign input
   stays clean, and the chain spans the fork/exec/pipe hops back to the
   parent's input bytes *)
let multiproc_tests =
  let contains = Str_exists.contains in
  List.concat_map
    (fun (c : Case.t) ->
      List.map
        (fun mode ->
          tc
            (Printf.sprintf "%s benign is clean (%s)" c.Case.program_name
               (Mode.to_string mode))
            (fun () ->
              let r = Case.run c ~mode ~input:c.Case.benign in
              (match r.Shift.Report.outcome with
              | Shift.Report.Exited code -> Util.check_i64 "clean exit" 0L code
              | o ->
                  Alcotest.failf "false positive or crash: %a"
                    Shift.Report.pp_outcome o);
              Util.check_bool "no logged alerts" true (r.Shift.Report.logged = [])))
        granularities
      @ List.map
          (fun mode ->
            tc
              (Printf.sprintf "%s exploit detected in the child (%s)"
                 c.Case.program_name (Mode.to_string mode))
              (fun () ->
                let r = Case.run c ~mode ~input:c.Case.exploit in
                match r.Shift.Report.outcome with
                | Shift.Report.Alert a ->
                    Alcotest.(check string)
                      "policy" c.Case.expected_policy a.Shift_policy.Alert.policy;
                    (* the alert names the process it fired in: the
                       forked child, not pid 1 *)
                    Util.check_bool "alert names pid 2" true
                      (contains a.Shift_policy.Alert.message "[pid 2, ")
                | o -> Alcotest.failf "undetected: %a" Shift.Report.pp_outcome o))
          granularities
      @ [
          tc
            (Printf.sprintf "%s exploit succeeds without SHIFT"
               c.Case.program_name)
            (fun () ->
              let r = Case.run c ~mode:Mode.Uninstrumented ~input:c.Case.exploit in
              match r.Shift.Report.outcome with
              | Shift.Report.Exited _ -> ()
              | o ->
                  Alcotest.failf "expected the attack to succeed, got %a"
                    Shift.Report.pp_outcome o);
          tc
            (Printf.sprintf "%s chain spans fork/exec/pipe" c.Case.program_name)
            (fun () ->
              let channel, lo, hi =
                match c.Case.provenance with
                | Some p -> p
                | None -> Alcotest.fail "multiproc case must declare provenance"
              in
              let r =
                Case.run c ~mode:Mode.shift_byte
                  ~trace:Shift_machine.Flowtrace.default_options
                  ~input:c.Case.exploit
              in
              match Shift.Report.alert r with
              | None -> Alcotest.fail "expected an alert"
              | Some a ->
                  let chain = a.Shift_policy.Alert.chain in
                  let input_hop =
                    Printf.sprintf "input %s[%d..%d] via " channel lo hi
                  in
                  Util.check_bool
                    (Printf.sprintf "chain has %S hop naming pid 1" input_hop)
                    true
                    (List.exists
                       (fun h ->
                         String.length h >= String.length input_hop
                         && String.sub h 0 (String.length input_hop) = input_hop
                         && contains h "(pid 1, ")
                       chain);
                  (* the cross-process hop: exec argv or a pipe transfer,
                     recorded in the child *)
                  Util.check_bool "chain has a cross-process hop" true
                    (List.exists
                       (fun h ->
                         contains h "exec argv (pid 2, "
                         || contains h "-> pid 2, ")
                       chain);
                  Util.check_bool "chain ends at the child's sink" true
                    (match List.rev chain with
                    | last :: _ ->
                        contains last
                          (Printf.sprintf "sink %s via " c.Case.expected_policy)
                        && contains last "(pid 2, "
                    | [] -> false));
        ])
    Shift_attacks.Attacks.multiproc

(* cases that declare an expected provenance span: run them traced at
   byte granularity and check the alert's chain names exactly the
   attacker-controlled input bytes *)
let provenance_tests =
  List.filter_map
    (fun (c : Case.t) ->
      match c.Case.provenance with
      | None -> None
      | Some (channel, lo, hi) ->
          Some
            (tc
               (Printf.sprintf "%s chain names input bytes %d..%d"
                  c.Case.program_name lo hi)
               (fun () ->
                 let r =
                   Shift.Session.run ~policy:c.Case.policy
                     ~setup:c.Case.exploit ~fuel:200_000_000
                     ~trace:Shift_machine.Flowtrace.default_options
                     ~mode:Mode.shift_byte c.Case.program
                 in
                 match Shift.Report.alert r with
                 | Some a ->
                     let input_hop =
                       Printf.sprintf "input %s[%d..%d] via " channel lo hi
                     in
                     Util.check_bool
                       (Printf.sprintf "chain has %S hop" input_hop)
                       true
                       (List.exists
                          (fun h ->
                            String.length h >= String.length input_hop
                            && String.sub h 0 (String.length input_hop)
                               = input_hop)
                          a.Shift_policy.Alert.chain);
                     Util.check_bool "chain ends at the sink" true
                       (match List.rev a.Shift_policy.Alert.chain with
                       | last :: _ ->
                           Str_exists.contains last
                             (Printf.sprintf "sink %s via "
                                c.Case.expected_policy)
                       | [] -> false);
                     Util.check_bool "flow summary present" true
                       (r.Shift.Report.flow <> None)
                 | None -> Alcotest.fail "expected an alert")))
    Shift_attacks.Attacks.all

let suites =
  [
    ("attacks.benign", benign_tests);
    ("attacks.exploits", exploit_tests);
    ("attacks.unprotected", unprotected_tests);
    ("attacks.qwik-smtpd", qwik_tests);
    ("attacks.extended", extended_tests);
    ("attacks.multiproc", multiproc_tests);
    ("attacks.provenance", provenance_tests);
  ]
