(* The workload suite: kernels must behave identically under every
   compilation mode (instrumentation is semantically transparent), and
   the server must serve while H2 still guards its document root. *)

module Mode = Shift_compiler.Mode
module Spec = Shift_workloads.Spec
module Httpd = Shift_workloads.Httpd
module World = Shift_os.World

let tc = Util.tc

(* small inputs keep the whole matrix fast *)
let small_size (k : Spec.kernel) = max 64 (k.Spec.default_size / 8)

let run_kernel ?(tainted = true) ~mode (k : Spec.kernel) =
  Shift.Session.run ~policy:Shift_policy.Policy.default
    ~setup:(Spec.setup ~size:(small_size k) ~tainted k)
    ~fuel:100_000_000 ~mode k.Spec.program

let kernel_modes =
  [
    Mode.Uninstrumented;
    Mode.shift_word;
    Mode.shift_byte;
    Mode.Shift { granularity = Shift_mem.Granularity.Word; enh = Mode.enh1 };
    Mode.Shift { granularity = Shift_mem.Granularity.Byte; enh = Mode.enh_both };
    Mode.Software_dbt { granularity = Shift_mem.Granularity.Word };
  ]

let semantics_tests =
  List.map
    (fun (k : Spec.kernel) ->
      tc (Printf.sprintf "%s: same result under every mode" k.Spec.name) (fun () ->
          let reference = Util.exit_code (run_kernel ~mode:Mode.Uninstrumented k) in
          List.iter
            (fun mode ->
              Util.check_i64
                (Printf.sprintf "%s/%s" k.Spec.name (Mode.to_string mode))
                reference
                (Util.exit_code (run_kernel ~mode k)))
            kernel_modes))
    Spec.all

let safe_unsafe_tests =
  List.map
    (fun (k : Spec.kernel) ->
      tc (Printf.sprintf "%s: tainted input does not change the result" k.Spec.name)
        (fun () ->
          Util.check_i64 k.Spec.name
            (Util.exit_code (run_kernel ~tainted:false ~mode:Mode.shift_word k))
            (Util.exit_code (run_kernel ~tainted:true ~mode:Mode.shift_word k))))
    Spec.all

let overhead_tests =
  [
    tc "every kernel slows down under instrumentation" (fun () ->
        List.iter
          (fun (k : Spec.kernel) ->
            let base = Shift.Report.cycles (run_kernel ~mode:Mode.Uninstrumented k) in
            let word = Shift.Report.cycles (run_kernel ~mode:Mode.shift_word k) in
            Util.check_bool (k.Spec.name ^ " word > base") true (word > base))
          Spec.all);
    tc "enhancements never hurt" (fun () ->
        List.iter
          (fun (k : Spec.kernel) ->
            let base = Shift.Report.cycles (run_kernel ~mode:Mode.shift_word k) in
            let both =
              Shift.Report.cycles
                (run_kernel
                   ~mode:(Mode.Shift { granularity = Shift_mem.Granularity.Word; enh = Mode.enh_both })
                   k)
            in
            Util.check_bool (k.Spec.name ^ " enh <= base") true (both <= base))
          Spec.all);
  ]

let run_httpd ~mode ~file_size ~requests =
  Shift.Session.run ~policy:Httpd.policy ~io_cost:Httpd.io_cost
    ~setup:(Httpd.setup ~file_size ~requests)
    ~fuel:100_000_000 ~mode Httpd.program

let httpd_tests =
  [
    tc "serves every request and ships the bytes" (fun () ->
        let r = run_httpd ~mode:Mode.shift_word ~file_size:4096 ~requests:5 in
        Util.check_i64 "5 served" 5L (Util.exit_code r);
        Util.check_bool "bodies shipped" true
          (String.length r.Shift.Report.output > 5 * 4096));
    tc "missing file gets a 404" (fun () ->
        let r =
          Shift.Session.run ~policy:Httpd.policy ~io_cost:Httpd.io_cost
            ~setup:(fun w -> World.queue_request w "GET /nothing HTTP/1.0\r\n\r\n")
            ~fuel:100_000_000 ~mode:Mode.shift_word Httpd.program
        in
        Util.check_i64 "0 served" 0L (Util.exit_code r);
        Util.check_bool "404 sent" true (Str_exists.contains r.Shift.Report.output "404"));
    tc "directory traversal request trips H2" (fun () ->
        let r =
          Shift.Session.run ~policy:Httpd.policy ~io_cost:Httpd.io_cost
            ~setup:(fun w ->
              World.queue_request w "GET /../../etc/passwd HTTP/1.0\r\n\r\n")
            ~fuel:100_000_000 ~mode:Mode.shift_word Httpd.program
        in
        match r.Shift.Report.outcome with
        | Shift.Report.Alert a ->
            Alcotest.(check string) "H2" "H2" a.Shift_policy.Alert.policy
        | o -> Alcotest.failf "expected H2, got %a" Shift.Report.pp_outcome o);
    tc "server overhead is small (I/O dominates)" (fun () ->
        let base = run_httpd ~mode:Mode.Uninstrumented ~file_size:16384 ~requests:10 in
        let word = run_httpd ~mode:Mode.shift_word ~file_size:16384 ~requests:10 in
        let slowdown =
          float_of_int (Shift.Report.cycles word) /. float_of_int (Shift.Report.cycles base)
        in
        Util.check_bool
          (Printf.sprintf "slowdown %.3f < 1.10" slowdown)
          true
          (slowdown < 1.10 && slowdown >= 1.0));
    tc "request parsing is deterministic across granularities" (fun () ->
        let a = run_httpd ~mode:Mode.shift_word ~file_size:4096 ~requests:3 in
        let b = run_httpd ~mode:Mode.shift_byte ~file_size:4096 ~requests:3 in
        Util.check_string "same bytes" a.Shift.Report.output b.Shift.Report.output);
  ]

(* the worker-process personality: forked workers drain the shared
   request queue, the master reaps them and exits with the total *)
let worker_tests =
  let serve ?slice ~workers ~requests () =
    Httpd.serve ?slice ~mode:Mode.shift_word ~file_size:4096 ~requests ~workers
      ()
  in
  [
    tc "3 workers serve every request between them" (fun () ->
        let r = serve ~workers:3 ~requests:9 () in
        Util.check_i64 "9 served in total" 9L (Util.exit_code r);
        Util.check_bool "bodies shipped" true
          (String.length r.Shift.Report.output > 9 * 4096));
    tc "worker fleet matches the single-process server's output" (fun () ->
        let solo = run_httpd ~mode:Mode.shift_word ~file_size:4096 ~requests:6 in
        let fleet = serve ~workers:2 ~requests:6 () in
        Util.check_i64 "same served count" (Util.exit_code solo)
          (Util.exit_code fleet);
        Util.check_bool "same bytes on the wire" true
          (String.length solo.Shift.Report.output
          = String.length fleet.Shift.Report.output));
    tc "worker report is byte-identical at any slice" (fun () ->
        let bytes r = Shift.Results.to_string (Shift.Results.of_report r) in
        let a = serve ~workers:3 ~requests:9 () in
        let b = serve ~slice:977 ~workers:3 ~requests:9 () in
        Util.check_string "same report" (bytes a) (bytes b));
    tc "traversal request trips H2 inside a worker, naming it" (fun () ->
        let r =
          Shift.Session.exec
            ~config:
              (Shift.Session.Config.make ~policy:Httpd.policy
                 ~io_cost:Httpd.io_cost
                 ~setup:(fun w ->
                   World.queue_request w "GET /../../etc/passwd HTTP/1.0\r\n\r\n")
                 ~threading:
                   (Shift.Session.Config.Processes
                      { quantum = None; comm = Some "httpd" })
                 ())
            (Shift.Session.build ~mode:Mode.shift_word
               (Httpd.worker_program ~workers:2))
        in
        match r.Shift.Report.outcome with
        | Shift.Report.Alert a ->
            Alcotest.(check string) "H2" "H2" a.Shift_policy.Alert.policy;
            Util.check_bool "alert names a worker process" true
              (Str_exists.contains a.Shift_policy.Alert.message ", httpd]")
        | o -> Alcotest.failf "expected H2, got %a" Shift.Report.pp_outcome o);
  ]

let suites =
  [
    ("workloads.semantics", semantics_tests);
    ("workloads.safe-unsafe", safe_unsafe_tests);
    ("workloads.overhead", overhead_tests);
    ("workloads.httpd", httpd_tests);
    ("workloads.httpd-workers", worker_tests);
  ]
