(* Superblock compiler: counter identity and the directed corner cases.

   The contract under test is the one DESIGN.md states: with the
   superblock compiler live, every piece of simulated state — the
   Stats counters, pipeline cycles, cache state, the Flowtrace ring,
   alerts, snapshots — is byte-identical to a pure-interpreter run.
   The compiler may only shed host-side work whose absence cannot be
   observed.

   Three corners get directed tests because they are where the
   invariant is easiest to break: guest stores into the watched code
   region (block invalidation), fuel slices expiring mid-block
   (interpreter fallback with exact accounting), and checkpoint/restore
   landing both on block boundaries and mid-interpretation (the block
   cache is derived state and must never leak into a snapshot). *)

open Build
open Build.Infix
module Mode = Shift_compiler.Mode
module Policy = Shift_policy.Policy
module Stats = Shift_machine.Stats
module Superblock = Shift_machine.Superblock
module Spec = Shift_workloads.Spec

let tc = Util.tc
let fuel = 200_000_000

let report_json (r : Shift.Report.t) =
  Shift.Results.to_string (Shift.Results.of_report r)

(* run to completion in [budget]-instruction slices and return the
   live session (so stats / flowtrace stay inspectable) *)
let run_sliced ?trace ?(superblocks = true) ?(budget = max_int) ~mode prog =
  let image = Shift.Session.build ~mode prog in
  let config =
    Shift.Session.Config.make ~policy:Policy.default ~fuel ?trace ~superblocks
      ()
  in
  let live = Shift.Session.start ~config image in
  let rec go () =
    match Shift.Session.advance live ~budget with
    | `Yielded -> go ()
    | `Finished _ -> ()
  in
  go ();
  live

let flow_jsonl live =
  match Shift.Session.flowtrace live with
  | Some ft -> Shift.Flow.jsonl ft
  | None -> ""

(* ---------- directed: self-modifying stores invalidate blocks ---------- *)

(* The code region is region 2, 8 bytes per instruction slot, and the
   null guard keeps guest stores below offset 4096 invalid — so a
   program must span more than 512 slots before it can write over its
   own code.  [padding] supplies those slots; they run once. *)
let code_slot_addr = Build.i64 (Superblock.code_addr 0)

let self_modifying_prog =
  let padding =
    List.concat
      (List.init 300 (fun n -> [ set "pad" (v "pad" +: i (n land 7)) ]))
  in
  let hot_loop =
    (* hot well past the compile threshold, so blocks exist to kill *)
    for_up "j" (i 0) (i 64) [ set "acc" ((v "acc" *: i 3) +: v "j") ]
  in
  let overwrite =
    (* sweep stores across slots 512..4511 — the image (program plus
       linked runtime) is smaller than that, and the null guard makes
       slots below 512 unwritable — so whichever slots the hot loop
       landed on, its compiled blocks get invalidated *)
    for_up "k" (i 0) (i 4000)
      [ store64 (code_slot_addr +: i 4096 +: (v "k" *: i 8)) (i 0) ]
  in
  Util.main_returning
    ~locals:[ scalar "pad"; scalar "acc"; scalar "j"; scalar "k" ]
    ([ set "pad" (i 0); set "acc" (i 1) ]
    @ padding @ hot_loop @ overwrite @ hot_loop
    @ [ ret (v "acc" &: i64 0x3fffffffL) ])

let self_modifying_tests =
  [
    tc "stores over live code invalidate blocks, reports stay identical"
      (fun () ->
        let live = run_sliced ~mode:Mode.shift_word self_modifying_prog in
        let interp =
          run_sliced ~superblocks:false ~mode:Mode.shift_word
            self_modifying_prog
        in
        Util.check_string "byte-identical report"
          (report_json (Shift.Session.report interp))
          (report_json (Shift.Session.report live));
        let sb = Shift.Session.superblock_stats live in
        Util.check_bool "blocks were compiled" true (sb.Stats.sb_compiled > 0);
        Util.check_bool "the overwrite invalidated blocks" true
          (sb.Stats.sb_invalidations > 0);
        let off = Shift.Session.superblock_stats interp in
        Util.check_int "interpreter run compiled nothing" 0
          off.Stats.sb_compiled);
  ]

(* ---------- directed: fuel slices expiring mid-block ---------- *)

let slice_tests =
  [
    tc "tiny uneven slices retire exactly like one big slice" (fun () ->
        (* budget 7 is smaller than most compiled blocks, so nearly
           every slice ends mid-block and must fall back to exact
           per-instruction interpretation *)
        let sliced =
          run_sliced ~budget:7 ~mode:Mode.shift_word self_modifying_prog
        in
        let whole = run_sliced ~mode:Mode.shift_word self_modifying_prog in
        let interp =
          run_sliced ~superblocks:false ~budget:7 ~mode:Mode.shift_word
            self_modifying_prog
        in
        let r = report_json (Shift.Session.report sliced) in
        Util.check_string "sliced = whole" (report_json (Shift.Session.report whole)) r;
        Util.check_string "sliced = interpreter" (report_json (Shift.Session.report interp)) r);
  ]

(* ---------- directed: checkpoint/restore ---------- *)

let kernel name =
  match Spec.find name with
  | Some k -> k
  | None -> Alcotest.failf "kernel %s missing" name

(* checkpoint after [yields] slices of [budget], serialise to JSON and
   back, restore, finish — the round trip from test_snapshot, with the
   superblock compiler live on both sides of the break *)
let roundtrip ~budget ~yields name =
  let k = kernel name in
  let config =
    Shift.Session.Config.make ~policy:Policy.default ~fuel
      ~setup:(Spec.setup ~size:256 ~tainted:true k)
      ()
  in
  let image = Shift.Session.build ~mode:Mode.shift_word k.Spec.program in
  let live = Shift.Session.start ~config image in
  for _ = 1 to yields do
    match Shift.Session.advance live ~budget with
    | `Yielded -> ()
    | `Finished _ -> Alcotest.fail "run finished before the checkpoint point"
  done;
  let snap = Shift.Session.checkpoint live in
  let text = Shift.Results.to_string (Shift.Snapshot.to_json snap) in
  let snap =
    match Shift.Results.of_string text with
    | Error e -> Alcotest.failf "snapshot JSON did not parse: %s" e
    | Ok j -> (
        match Shift.Snapshot.of_json j with
        | Error e -> Alcotest.failf "snapshot did not decode: %s" e
        | Ok s -> s)
  in
  let resumed = Shift.Session.restore snap in
  let rec go () =
    match Shift.Session.advance resumed ~budget:max_int with
    | `Yielded -> go ()
    | `Finished _ -> ()
  in
  go ();
  (* the unbroken reference runs on the pure interpreter: a restored
     superblock machine must match it even though its block cache
     starts cold *)
  let interp_config =
    Shift.Session.Config.make ~policy:Policy.default ~fuel
      ~setup:(Spec.setup ~size:256 ~tainted:true k)
      ~superblocks:false ()
  in
  let reference = Shift.Session.start ~config:interp_config image in
  let rec fin () =
    match Shift.Session.advance reference ~budget:max_int with
    | `Yielded -> fin ()
    | `Finished _ -> ()
  in
  fin ();
  Util.check_string "byte-identical report"
    (report_json (Shift.Session.report reference))
    (report_json (Shift.Session.report resumed))

let snapshot_tests =
  [
    tc "restore at a block-boundary break matches the interpreter" (fun () ->
        (* 5000-instruction slices: breaks land between compiled-block
           executions on the fast path *)
        roundtrip ~budget:5000 ~yields:3 "gzip");
    tc "restore at a mid-interpretation break matches the interpreter"
      (fun () ->
        (* 7-instruction slices: breaks land inside what would be a
           compiled block, on the per-instruction fallback *)
        roundtrip ~budget:7 ~yields:40 "gzip");
  ]

(* ---------- property: on vs off identical for random programs ---------- *)

let identity_test =
  QCheck.Test.make ~count:25
    ~name:"superblocks on = off: report and flow ring, random programs"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let prog = Test_random.gen_program seed in
      (* a small ring wraps, so event order and eviction are covered *)
      let trace = { Shift.Flowtrace.capacity = 32; only = None } in
      let on = run_sliced ~trace ~mode:Mode.shift_word prog in
      let off =
        run_sliced ~trace ~superblocks:false ~mode:Mode.shift_word prog
      in
      report_json (Shift.Session.report on)
      = report_json (Shift.Session.report off)
      && flow_jsonl on = flow_jsonl off)

let sliced_identity_test =
  QCheck.Test.make ~count:15
    ~name:"superblocks on = off under hostile slicing, random programs"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let prog = Test_random.gen_program seed in
      let on = run_sliced ~budget:13 ~mode:Mode.shift_word prog in
      let off = run_sliced ~superblocks:false ~mode:Mode.shift_word prog in
      report_json (Shift.Session.report on)
      = report_json (Shift.Session.report off))

let suites =
  [
    ( "superblock.identity",
      List.map QCheck_alcotest.to_alcotest
        [ identity_test; sliced_identity_test ] );
    ("superblock.self_modifying", self_modifying_tests);
    ("superblock.slices", slice_tests);
    ("superblock.snapshot", snapshot_tests);
  ]
