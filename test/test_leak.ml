(* The observation channel and the speculation-contract leak detector.

   Three contracts under test: the cache model rejects degenerate
   geometry instead of deferring a crash (or silently mislabelling
   lines); the hardware trace is an architectural observation —
   byte-identical with superblocks on or off and across mid-trace
   checkpoint/restore; and the detector flags the lookup-table AES
   kernel (naming the key bytes that steered the diverging access)
   while passing its constant-time twin. *)

module Cache = Shift_machine.Cache
module Hw = Shift_machine.Hwtrace
module Leak = Shift.Leak
module Catalog = Shift_catalog.Catalog
module Mode = Shift_compiler.Mode

let tc = Util.tc

let prop name ?(count = 20) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* ---------- cache geometry validation ---------- *)

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let geometry_cases =
  [
    tc "zero size_kb rejected" (fun () ->
        expect_invalid "size_kb:0" (fun () -> Cache.create ~size_kb:0 ()));
    tc "negative size_kb rejected" (fun () ->
        expect_invalid "size_kb:-1" (fun () -> Cache.create ~size_kb:(-1) ()));
    tc "zero line_bytes rejected" (fun () ->
        expect_invalid "line_bytes:0" (fun () -> Cache.create ~line_bytes:0 ()));
    tc "non-power-of-two line_bytes rejected" (fun () ->
        expect_invalid "line_bytes:48" (fun () ->
            Cache.create ~line_bytes:48 ()));
    tc "line larger than the cache rejected" (fun () ->
        expect_invalid "line_bytes:32k" (fun () ->
            Cache.create ~size_kb:16 ~line_bytes:(32 * 1024) ()));
    tc "valid geometry still accepted" (fun () ->
        ignore (Cache.create ~size_kb:8 ~line_bytes:32 ()));
    tc "import rejects a line-size mismatch" (fun () ->
        (* same set count (256), different line size: without the
           line_shift check this import would silently diverge the
           hit/miss sequence *)
        let a = Cache.create ~size_kb:16 ~line_bytes:64 () in
        let b = Cache.create ~size_kb:8 ~line_bytes:32 () in
        expect_invalid "line mismatch" (fun () -> Cache.import b (Cache.export a)));
  ]

(* ---------- trace identity ---------- *)

let start_variant ?(superblocks = true) case i =
  match Catalog.leak_start ~superblocks ~mode:Mode.shift_word case with
  | Ok start -> start i
  | Error e -> Alcotest.fail e

let run_to_end live =
  match Shift.Session.advance live ~budget:max_int with
  | `Finished _ | `Yielded -> live

let entries live =
  match Shift.Session.hwtrace live with
  | Some hw -> Hw.entries hw
  | None -> Alcotest.fail "session has no hardware trace"

(* observable projection: what ct-seq sees, plus pc and the hit bit,
   which must also be identical (same accesses, same cache state) *)
let obs live =
  Array.to_list
    (Array.map
       (fun (e : Hw.entry) -> (e.Hw.e_pc, e.Hw.e_set, e.Hw.e_hit, e.Hw.e_store))
       (entries live))

let identity_cases =
  [
    prop "hwtrace identical superblocks on/off" ~count:8
      QCheck.(int_bound 7)
      (fun i ->
        obs (run_to_end (start_variant ~superblocks:true "aes-table" i))
        = obs (run_to_end (start_variant ~superblocks:false "aes-table" i)));
    prop "hwtrace identical across mid-trace checkpoint/restore" ~count:6
      QCheck.(pair (int_bound 7) (int_bound 30_000))
      (fun (i, budget) ->
        let unbroken = obs (run_to_end (start_variant "aes-table" i)) in
        let live = start_variant "aes-table" i in
        (match Shift.Session.advance live ~budget:(budget + 1) with
        | `Yielded | `Finished _ -> ());
        (* the trace buffer is observation, not machine state: a restore
           starts an empty buffer, and the full observation is the
           prefix recorded before the checkpoint plus the restored run's
           suffix *)
        let prefix = obs live in
        let snap = Shift.Session.checkpoint live in
        let resumed = run_to_end (Shift.Session.restore snap) in
        prefix @ obs resumed = unbroken);
  ]

(* ---------- the detector ---------- *)

let detect ?clause ?(superblocks = true) ~count case =
  match Catalog.leak_start ~superblocks ~mode:Mode.shift_word case with
  | Ok start -> Leak.detect ?clause ~count ~start ()
  | Error e -> Alcotest.fail e

let detector_cases =
  [
    tc "aes-table leaks under ct-seq, key bytes named" (fun () ->
        let v = detect ~count:3 "aes-table" in
        Alcotest.(check bool) "leak" true v.Leak.v_leak;
        match v.Leak.v_divergence with
        | None -> Alcotest.fail "leak verdict must carry a divergence"
        | Some d ->
            Alcotest.(check bool) "sets differ" true (d.Leak.d_set_base <> d.Leak.d_set_variant);
            let hops = String.concat "; " d.Leak.d_tainted in
            if d.Leak.d_tainted = [] then
              Alcotest.fail "divergence must name the tainted bytes";
            Alcotest.(check bool)
              (Printf.sprintf "hop names the key file (%s)" hops)
              true
              (List.exists
                 (fun h -> Str_exists.contains h "input file:key.bin[")
                 d.Leak.d_tainted));
    tc "constant-time twin is clean under ct-seq" (fun () ->
        let v = detect ~count:3 "aes-ct" in
        Alcotest.(check bool) "clean" false v.Leak.v_leak;
        Alcotest.(check bool) "accesses observed" true (v.Leak.v_accesses > 0));
    tc "ct-none observes nothing" (fun () ->
        let v = detect ~clause:Leak.Ct_none ~count:3 "aes-table" in
        Alcotest.(check bool) "clean" false v.Leak.v_leak;
        Alcotest.(check int) "no observable accesses" 0 v.Leak.v_accesses);
    tc "verdict JSON is deterministic across runs" (fun () ->
        let json () =
          Shift.Results.to_string (Leak.verdict_to_json (detect ~count:3 "aes-table"))
        in
        Alcotest.(check string) "byte-identical" (json ()) (json ()));
    tc "cases carry no taint alert of their own" (fun () ->
        (* the whole point: DIFT alone sees nothing here *)
        let r = Shift.Session.report (run_to_end (start_variant "aes-table" 0)) in
        match r.Shift.Report.outcome with
        | Shift.Report.Exited _ -> ()
        | o -> Alcotest.failf "expected clean exit, got %a" Shift.Report.pp_outcome o);
    tc "detect requires at least two variants" (fun () ->
        expect_invalid "count:1" (fun () -> detect ~count:1 "aes-table"));
  ]

let suites =
  [
    ("leak:geometry", geometry_cases);
    ("leak:identity", identity_cases);
    ("leak:detector", detector_cases);
  ]
