(* The machine-readable results layer (Shift.Results) and the bench
   domain pool: JSON round-trips, the schema envelope, and the
   parallel-equals-serial guarantee the harness's tables rest on. *)

module R = Shift.Results
module Pool = Shift.Pool
module Common = Shift_bench.Common
module Spec = Shift_workloads.Spec
module Mode = Shift_compiler.Mode

let tc = Util.tc

let check_roundtrip msg j =
  match R.of_string (R.to_string j) with
  | Ok j' -> Util.check_bool msg true (j = j')
  | Error e -> Alcotest.failf "%s: parse error %s" msg e

let json_tests =
  [
    tc "scalar and container round-trips" (fun () ->
        check_roundtrip "null" R.Null;
        check_roundtrip "bools" (R.List [ R.Bool true; R.Bool false ]);
        check_roundtrip "ints" (R.List [ R.Int 0; R.Int (-42); R.Int max_int ]);
        check_roundtrip "floats"
          (R.List [ R.Float 1.5; R.Float 0.1; R.Float (-3.25e-7); R.Float 2.0 ]);
        check_roundtrip "nested"
          (R.Obj
             [
               ("a", R.List [ R.Obj [ ("b", R.Int 1) ]; R.Null ]);
               ("c", R.Obj []);
               ("d", R.List []);
             ]));
    tc "string escaping round-trips" (fun () ->
        check_roundtrip "quotes/backslash" (R.String {|say "hi" \ bye|});
        check_roundtrip "control chars" (R.String "a\nb\tc\rd\x01e");
        check_roundtrip "utf8 passthrough" (R.String "§3.3.4 — done"));
    tc "minified output parses too" (fun () ->
        let j = R.Obj [ ("xs", R.List [ R.Int 1; R.Int 2 ]); ("f", R.Float 0.5) ] in
        match R.of_string (R.to_string ~minify:true j) with
        | Ok j' -> Util.check_bool "minified" true (j = j')
        | Error e -> Alcotest.failf "minified parse error %s" e);
    tc "parse errors are reported, not raised" (fun () ->
        List.iter
          (fun s ->
            match R.of_string s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "expected parse failure on %S" s)
          [ ""; "{"; "[1,"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated" ]);
    tc "non-finite floats degrade to null" (fun () ->
        Util.check_bool "nan" true
          (R.to_string ~minify:true (R.Float Float.nan) = "null"));
  ]

let stats_tests =
  [
    tc "of_stats carries every counter and slot bucket" (fun () ->
        let s = Shift_machine.Stats.create () in
        s.Shift_machine.Stats.instructions <- 123;
        s.Shift_machine.Stats.cycles <- 456;
        s.Shift_machine.Stats.io_cycles <- 7;
        let j = R.of_stats s in
        check_roundtrip "stats json" j;
        Util.check_bool "cycles" true (R.member "cycles" j = Some (R.Int 456));
        Util.check_bool "instructions" true
          (R.member "instructions" j = Some (R.Int 123));
        match R.member "slots" j with
        | Some (R.Obj slots) ->
            Util.check_int "slot buckets" Shift_isa.Prov.card (List.length slots)
        | _ -> Alcotest.fail "no slots object");
    tc "of_report reflects the run" (fun () ->
        let r = Util.run_prog (Util.main_returning [ Build.ret (Build.i 3) ]) in
        let j = R.of_report r in
        check_roundtrip "report json" j;
        (match R.member "outcome" j with
        | Some o ->
            Util.check_bool "exited" true
              (R.member "kind" o = Some (R.String "exited"));
            Util.check_bool "status" true
              (R.member "status" o = Some (R.String "3"))
        | None -> Alcotest.fail "no outcome");
        Util.check_bool "not detected" true
          (R.member "detected" j = Some (R.Bool false)));
    tc "document carries the schema version" (fun () ->
        let doc =
          R.document ~experiment:"fig7" ~domains:4 ~wall_clock_s:1.25
            (R.Obj [ ("runs", R.List []) ])
        in
        check_roundtrip "document" doc;
        Util.check_bool "version present" true
          (R.member "schema_version" doc = Some (R.Int R.schema_version));
        Util.check_bool "experiment" true
          (R.member "experiment" doc = Some (R.String "fig7"));
        Util.check_bool "domains" true (R.member "domains" doc = Some (R.Int 4)));
  ]

let pool_tests =
  [
    tc "map preserves input order at any width" (fun () ->
        let xs = List.init 100 Fun.id in
        let expect = List.map (fun x -> x * x) xs in
        List.iter
          (fun domains ->
            Util.check_bool
              (Printf.sprintf "order at %d domains" domains)
              true
              (Pool.map ~domains (fun x -> x * x) xs = expect))
          [ 1; 2; 4; 7 ]);
    tc "map re-raises a worker failure" (fun () ->
        match Pool.map ~domains:3 (fun x -> if x = 5 then failwith "boom" else x)
                (List.init 8 Fun.id)
        with
        | _ -> Alcotest.fail "expected Failure"
        | exception Failure m -> Util.check_string "message" "boom" m);
    tc "parallel kernel grid equals the serial path" (fun () ->
        (* two kernels x two modes, shrunk for test time; the pool must
           produce cycle counts identical to direct serial runs *)
        let small k = { k with Spec.default_size = max 64 (k.Spec.default_size / 8) } in
        let kernels =
          [ small (List.hd Spec.all); small (Option.get (Spec.find "mcf")) ]
        in
        let modes = [ Mode.shift_word; Mode.shift_byte ] in
        let grid = List.concat_map (fun k -> List.map (fun m -> (k, m)) modes) kernels in
        let cycles_of (k, mode) =
          let image = Shift.Session.build ~mode k.Spec.program in
          let report =
            Shift.Session.run_image ~policy:Shift_policy.Policy.default
              ~fuel:1_000_000_000
              ~setup:(Spec.setup ~tainted:true k)
              image
          in
          report.Shift.Report.stats.Shift_machine.Stats.cycles
        in
        let serial = List.map cycles_of grid in
        let parallel = Pool.map ~domains:2 cycles_of grid in
        List.iteri
          (fun i ((k, mode), (s, p)) ->
            Util.check_int
              (Printf.sprintf "cycles %d %s/%s" i k.Spec.name (Mode.to_string mode))
              s p)
          (List.combine grid (List.combine serial parallel)));
    tc "the shared kernel memo survives concurrent warming" (fun () ->
        (* warm the same (kernel, mode) from several domains at once,
           then check the cached cycle count against a direct run *)
        let k = { (List.hd Spec.all) with Spec.default_size = 64 } in
        Common.warm
          (List.concat_map
             (fun m -> [ (k, m, true); (k, m, true); (k, m, true) ])
             [ Mode.shift_word; Mode.shift_byte ]);
        let direct mode =
          let image = Shift.Session.build ~mode k.Spec.program in
          (Shift.Session.run_image ~policy:Shift_policy.Policy.default
             ~fuel:1_000_000_000
             ~setup:(Spec.setup ~tainted:true k)
             image)
            .Shift.Report.stats
            .Shift_machine.Stats.cycles
        in
        Util.check_int "word cycles" (direct Mode.shift_word)
          (Common.cycles_of k Mode.shift_word);
        Util.check_int "byte cycles" (direct Mode.shift_byte)
          (Common.cycles_of k Mode.shift_byte));
  ]

let suites =
  [
    ("results-json", json_tests);
    ("results-converters", stats_tests);
    ("bench-pool", pool_tests);
  ]
