open Build
open Build.Infix
module Mode = Shift_compiler.Mode
module Policy = Shift_policy.Policy
module World = Shift_os.World

let tc = Util.tc

let run ?policy ?setup ?(mode = Mode.shift_word) ?locals body =
  Util.run_prog ?policy ?setup ~mode (Util.main_returning ?locals body)

let file_tests =
  [
    tc "open and read a file" (fun () ->
        let r =
          run
            ~setup:(fun w -> World.add_file w "hello.txt" "file-contents")
            ~locals:[ scalar "fd"; array "buf" 64; scalar "n" ]
            [
              set "fd" (call "sys_open" [ str "hello.txt" ]);
              set "n" (call "sys_read" [ v "fd"; v "buf"; i 64 ]);
              Ir.Expr (call "sys_write" [ i 1; v "buf"; v "n" ]);
              ret (v "n");
            ]
        in
        Util.check_i64 "bytes" 13L (Util.exit_code r);
        Util.check_string "echoed" "file-contents" r.Shift.Report.output);
    tc "open of a missing file returns -1" (fun () ->
        Util.check_i64 "-1" (-1L)
          (Util.exit_code (run [ ret (call "sys_open" [ str "nope" ]) ])));
    tc "read past the end returns 0" (fun () ->
        let r =
          run
            ~setup:(fun w -> World.add_file w "f" "ab")
            ~locals:[ scalar "fd"; array "buf" 16; scalar "a"; scalar "b" ]
            [
              set "fd" (call "sys_open" [ str "f" ]);
              set "a" (call "sys_read" [ v "fd"; v "buf"; i 16 ]);
              set "b" (call "sys_read" [ v "fd"; v "buf"; i 16 ]);
              ret ((v "a" *: i 100) +: v "b");
            ]
        in
        Util.check_i64 "2 then 0" 200L (Util.exit_code r));
    tc "tainted file marks the buffer" (fun () ->
        let r =
          run
            ~setup:(fun w -> World.add_file w ~tainted:true "evil" "xyz")
            ~locals:[ scalar "fd"; array "buf" 16 ]
            [
              set "fd" (call "sys_open" [ str "evil" ]);
              Ir.Expr (call "sys_read" [ v "fd"; v "buf"; i 16 ]);
              ret (call "sys_taint_chk" [ v "buf"; i 3 ]);
            ]
        in
        Util.check_i64 "3 tainted" 3L (Util.exit_code r));
    tc "clean file read clears stale taint" (fun () ->
        let r =
          run
            ~setup:(fun w -> World.add_file w ~tainted:false "ok" "abcd")
            ~locals:[ scalar "fd"; array "buf" 16 ]
            [
              Ir.Expr (call "sys_taint_set" [ v "buf"; i 16; i 1 ]);
              set "fd" (call "sys_open" [ str "ok" ]);
              Ir.Expr (call "sys_read" [ v "fd"; v "buf"; i 16 ]);
              ret (call "sys_taint_chk" [ v "buf"; i 4 ]);
            ]
        in
        Util.check_i64 "cleared" 0L (Util.exit_code r));
  ]

let net_tests =
  [
    tc "accept/recv taints network data" (fun () ->
        let r =
          run
            ~setup:(fun w -> World.queue_request w "GET /x")
            ~locals:[ scalar "s"; array "buf" 64; scalar "n" ]
            [
              set "s" (call "sys_accept" []);
              set "n" (call "sys_recv" [ v "s"; v "buf"; i 64 ]);
              ret (call "sys_taint_chk" [ v "buf"; v "n" ]);
            ]
        in
        Util.check_i64 "all tainted" 6L (Util.exit_code r));
    tc "accept with no pending connection returns -1" (fun () ->
        Util.check_i64 "-1" (-1L) (Util.exit_code (run [ ret (call "sys_accept" []) ])));
    tc "multiple queued requests arrive in order" (fun () ->
        let r =
          run
            ~setup:(fun w ->
              World.queue_request w "first";
              World.queue_request w "second!")
            ~locals:[ scalar "s"; array "buf" 64; scalar "total" ]
            [
              set "total" (i 0);
              set "s" (call "sys_accept" []);
              set "total" (v "total" +: call "sys_recv" [ v "s"; v "buf"; i 64 ]);
              set "s" (call "sys_accept" []);
              set "total" (v "total" +: call "sys_recv" [ v "s"; v "buf"; i 64 ]);
              ret (v "total");
            ]
        in
        Util.check_i64 "5+7" 12L (Util.exit_code r));
    tc "sendfile moves bytes without guest copies" (fun () ->
        let r =
          run
            ~setup:(fun w -> World.add_file w "big" (String.make 100 'z'))
            ~locals:[ scalar "fd"; scalar "n" ]
            [
              set "fd" (call "sys_open" [ str "big" ]);
              set "n" (call "sys_sendfile" [ i 1; v "fd"; i 100 ]);
              ret (v "n");
            ]
        in
        Util.check_i64 "100" 100L (Util.exit_code r);
        Util.check_int "output" 100 (String.length r.Shift.Report.output));
  ]

let sink_tests =
  let all = Policy.all_on ~document_root:"/www" in
  let exploit_open =
    [
      Ir.Expr (call "sys_taint_set" [ str "/etc/passwd"; i 11; i 1 ]);
      Ir.Expr (call "sys_open" [ str "/etc/passwd" ]);
      ret (i 0);
    ]
  in
  [
    tc "H1 alert stops the program" (fun () ->
        let r = run ~policy:all exploit_open in
        match r.Shift.Report.outcome with
        | Shift.Report.Alert a -> Alcotest.(check string) "policy" "H1" a.Shift_policy.Alert.policy
        | o -> Alcotest.failf "expected alert, got %a" Shift.Report.pp_outcome o);
    tc "Log_only records the alert and continues" (fun () ->
        let r = run ~policy:{ all with Policy.action = Policy.Log_only } exploit_open in
        (match r.Shift.Report.outcome with
        | Shift.Report.Exited _ -> ()
        | o -> Alcotest.failf "expected exit, got %a" Shift.Report.pp_outcome o);
        Util.check_int "one alert" 1 (List.length r.Shift.Report.logged));
    tc "sql sink records queries" (fun () ->
        let r = run [ Ir.Expr (call "sys_sql_exec" [ str "SELECT 1" ]); ret (i 0) ] in
        Util.check_bool "recorded" true (r.Shift.Report.sql = [ "SELECT 1" ]));
    tc "system sink records commands" (fun () ->
        let r = run [ Ir.Expr (call "sys_system" [ str "ls" ]); ret (i 0) ] in
        Util.check_bool "recorded" true (r.Shift.Report.commands = [ "ls" ]));
    tc "html sink collects output" (fun () ->
        let r = run [ Ir.Expr (call "sys_html_out" [ str "<b>hi</b>"; i 9 ]); ret (i 0) ] in
        Util.check_string "html" "<b>hi</b>" r.Shift.Report.html);
  ]

let cost_tests =
  [
    tc "io cycles are charged" (fun () ->
        let r =
          run
            ~setup:(fun w -> World.add_file w "f" (String.make 1000 'a'))
            ~locals:[ scalar "fd"; array "buf" 1024 ]
            [
              set "fd" (call "sys_open" [ str "f" ]);
              Ir.Expr (call "sys_read" [ v "fd"; v "buf"; i 1024 ]);
              ret (i 0);
            ]
        in
        Util.check_bool "io cycles" true (r.Shift.Report.stats.Shift_machine.Stats.io_cycles > 2000));
    tc "sbrk returns increasing breaks" (fun () ->
        let r =
          run ~locals:[ scalar "p"; scalar "q" ]
            [
              set "p" (call "sys_sbrk" [ i 64 ]);
              set "q" (call "sys_sbrk" [ i 0 ]);
              ret (v "q" -: v "p");
            ]
        in
        Util.check_i64 "64" 64L (Util.exit_code r));
  ]

(* descriptor lifecycle: close removes the entry, numbering is
   deterministic and never reuses a freed number *)
let fd_tests =
  [
    tc "read after close returns -1" (fun () ->
        let r =
          run
            ~setup:(fun w -> World.add_file w "f" "abcdef")
            ~locals:[ scalar "fd"; array "buf" 16 ]
            [
              set "fd" (call "sys_open" [ str "f" ]);
              Ir.Expr (call "sys_close" [ v "fd" ]);
              ret (call "sys_read" [ v "fd"; v "buf"; i 16 ]);
            ]
        in
        Util.check_i64 "-1" (-1L) (Util.exit_code r));
    tc "close returns 0 and -1 for an unknown fd" (fun () ->
        let r =
          run
            ~setup:(fun w -> World.add_file w "f" "x")
            ~locals:[ scalar "fd"; scalar "a"; scalar "b" ]
            [
              set "fd" (call "sys_open" [ str "f" ]);
              set "a" (call "sys_close" [ v "fd" ]);
              set "b" (call "sys_close" [ i 99 ]);
              ret ((v "a" *: i 100) +: v "b");
            ]
        in
        Util.check_i64 "0 then -1" (-1L) (Util.exit_code r));
    tc "fd numbering is deterministic and never reused" (fun () ->
        (* first open gets 3, second 4; after closing 3 the next open
           gets 5 — freed numbers are not recycled *)
        let r =
          run
            ~setup:(fun w ->
              World.add_file w "f" "x";
              World.add_file w "g" "y")
            ~locals:[ scalar "a"; scalar "b"; scalar "c" ]
            [
              set "a" (call "sys_open" [ str "f" ]);
              set "b" (call "sys_open" [ str "g" ]);
              Ir.Expr (call "sys_close" [ v "a" ]);
              set "c" (call "sys_open" [ str "f" ]);
              ret ((v "a" *: i 10000) +: (v "b" *: i 100) +: v "c");
            ]
        in
        Util.check_i64 "3,4,5" 30405L (Util.exit_code r));
    tc "closed descriptors leave the table" (fun () ->
        let image =
          Shift.Session.build ~mode:Mode.shift_word
            (Util.main_returning
               ~locals:[ scalar "a"; scalar "b" ]
               [
                 set "a" (call "sys_open" [ str "f" ]);
                 set "b" (call "sys_open" [ str "g" ]);
                 Ir.Expr (call "sys_close" [ v "a" ]);
                 ret (i 0);
               ])
        in
        let config =
          Shift.Session.Config.make
            ~setup:(fun w ->
              World.add_file w "f" "x";
              World.add_file w "g" "y")
            ()
        in
        let live = Shift.Session.start ~config image in
        let rec drive () =
          match Shift.Session.advance live ~budget:max_int with
          | `Yielded -> drive ()
          | `Finished _ -> ()
        in
        drive ();
        let d = World.dump (Shift.Session.world live) in
        let fds = d.World.d_ctx.World.cx_fds in
        Util.check_int "one live fd" 1 (List.length fds);
        (match fds with
        | [ (fd, World.Fstream oid) ] -> (
            Util.check_int "fd 4 survives" 4 fd;
            match List.find_opt (fun (o, _, _) -> o = oid) d.World.d_objs with
            | Some (_, refs, World.Os_stream st) ->
                Util.check_int "sole reference" 1 refs;
                Util.check_string "backed by g" "y" st.World.fd_content
            | _ -> Alcotest.fail "fd 4 should point at a live stream")
        | _ -> Alcotest.fail "expected exactly one stream fd");
        Util.check_int "next_fd advanced past both" 5
          d.World.d_ctx.World.cx_next_fd);
    (* descriptor inheritance semantics at the World level: dup'd fds
       alias one kernel object (shared offset, shared refcount) and
       taint rides the object, not the descriptor number *)
    tc "taint rides a pipe through a dup'd descriptor" (fun () ->
        let r =
          run
            ~locals:
              [ array "fds" 16; array "src" 8; array "out" 8; scalar "rfd2" ]
            [
              Ir.Expr (call "sys_pipe" [ v "fds" ]);
              Ir.Expr (call "sys_taint_set" [ v "src"; i 4; i 1 ]);
              Ir.Expr (call "sys_write" [ load64 (v "fds" +: i 8); v "src"; i 4 ]);
              set "rfd2" (call "sys_dup" [ load64 (v "fds") ]);
              Ir.Expr (call "sys_close" [ load64 (v "fds") ]);
              Ir.Expr (call "sys_read" [ v "rfd2"; v "out"; i 4 ]);
              ret (call "sys_taint_chk" [ v "out"; i 4 ]);
            ]
        in
        Util.check_i64 "4 bytes tainted through pipe+dup" 4L (Util.exit_code r));
    tc "closing every write end makes a drained pipe read EOF" (fun () ->
        let r =
          run
            ~locals:[ array "fds" 16; array "buf" 8; scalar "n" ]
            [
              Ir.Expr (call "sys_pipe" [ v "fds" ]);
              Ir.Expr (call "sys_write" [ load64 (v "fds" +: i 8); str "hi"; i 2 ]);
              Ir.Expr (call "sys_close" [ load64 (v "fds" +: i 8) ]);
              set "n" (call "sys_read" [ load64 (v "fds"); v "buf"; i 8 ]);
              (* the buffered bytes drain first; only then EOF *)
              ret
                ((v "n" *: i 100)
                +: call "sys_read" [ load64 (v "fds"); v "buf"; i 8 ]);
            ]
        in
        Util.check_i64 "2 buffered bytes, then EOF 0" 200L (Util.exit_code r));
    tc "a dup shares the stream offset and survives the original's close"
      (fun () ->
        let r =
          run
            ~setup:(fun w -> World.add_file w "f" "abcdef")
            ~locals:
              [ scalar "fd"; scalar "d"; array "a" 8; array "b" 8; array "c" 8 ]
            [
              set "fd" (call "sys_open" [ str "f" ]);
              set "d" (call "sys_dup" [ v "fd" ]);
              Ir.Expr (call "sys_read" [ v "fd"; v "a"; i 2 ]);
              Ir.Expr (call "sys_read" [ v "d"; v "b"; i 2 ]);
              Ir.Expr (call "sys_close" [ v "fd" ]);
              Ir.Expr (call "sys_read" [ v "d"; v "c"; i 2 ]);
              (* b starts at offset 2 ('c'), c at offset 4 ('e') *)
              ret ((load8 (v "b") *: i 1000) +: load8 (v "c"));
            ]
        in
        Util.check_i64 "offsets 2 and 4 seen" 99101L (Util.exit_code r));
  ]

(* sbrk argument validation: shrinking below the heap base or growing
   past the heap limit fails with -1 and leaves the break untouched *)
let sbrk_tests =
  [
    tc "shrinking below the heap base returns -1" (fun () ->
        let r =
          run ~locals:[ scalar "a"; scalar "b"; scalar "c" ]
            [
              set "a" (call "sys_sbrk" [ i 0 ]);
              set "b" (call "sys_sbrk" [ i (-8) ]);
              set "c" (call "sys_sbrk" [ i 0 ]);
              (* b = -1 and the break did not move: c - a = 0 *)
              ret (v "b" +: (v "c" -: v "a"));
            ]
        in
        Util.check_i64 "-1, break untouched" (-1L) (Util.exit_code r));
    tc "growing past the heap limit returns -1" (fun () ->
        let r =
          run ~locals:[ scalar "a"; scalar "b"; scalar "c" ]
            [
              set "a" (call "sys_sbrk" [ i 0 ]);
              set "b" (call "sys_sbrk" [ i 0x1000_0000_0000_000 ]);
              set "c" (call "sys_sbrk" [ i 0 ]);
              ret (v "b" +: (v "c" -: v "a"));
            ]
        in
        Util.check_i64 "-1, break untouched" (-1L) (Util.exit_code r));
    tc "a valid grow then shrink round-trips the break" (fun () ->
        let r =
          run ~locals:[ scalar "a"; scalar "b"; scalar "c" ]
            [
              set "a" (call "sys_sbrk" [ i 128 ]);
              set "b" (call "sys_sbrk" [ i (-128) ]);
              set "c" (call "sys_sbrk" [ i 0 ]);
              (* b is the pre-shrink break (a+128); c is back to a *)
              ret ((v "b" -: v "a") +: (v "c" -: v "a"));
            ]
        in
        Util.check_i64 "128 and back" 128L (Util.exit_code r));
  ]

let suites =
  [
    ("os.files", file_tests);
    ("os.network", net_tests);
    ("os.sinks", sink_tests);
    ("os.costs", cost_tests);
    ("os.fds", fd_tests);
    ("os.sbrk", sbrk_tests);
  ]
