(* The pipeline timing model and the cache model, in isolation. *)

module Pipeline = Shift_machine.Pipeline
module Cache = Shift_machine.Cache

let tc = Util.tc

let issue ?(executing = true) ?(reads = []) ?(writes = []) ?(pred_writes = [])
    ?(qp = Shift_isa.Pred.p0) ?(is_mem = false) ?(latency = 1) p =
  Pipeline.issue p ~executing ~reads:(Array.of_list reads)
    ~writes:(Array.of_list writes)
    ~pred_writes:(Array.of_list pred_writes)
    ~qp ~is_mem ~latency

let pipeline_tests =
  [
    tc "six independent instructions fit in one cycle" (fun () ->
        let p = Pipeline.create () in
        for k = 1 to 6 do
          issue p ~writes:[ k ]
        done;
        Util.check_int "one group" 0 (Pipeline.cycles p));
    tc "the seventh instruction starts a new cycle" (fun () ->
        let p = Pipeline.create () in
        for k = 1 to 7 do
          issue p ~writes:[ k ]
        done;
        Util.check_int "second group" 1 (Pipeline.cycles p));
    tc "a RAW dependency stalls the consumer" (fun () ->
        let p = Pipeline.create () in
        issue p ~writes:[ 5 ] ~latency:1;
        issue p ~reads:[ 5 ] ~writes:[ 6 ];
        Util.check_int "one cycle later" 1 (Pipeline.cycles p));
    tc "load-use latency is visible" (fun () ->
        let p = Pipeline.create () in
        issue p ~writes:[ 5 ] ~is_mem:true ~latency:2;
        issue p ~reads:[ 5 ] ~writes:[ 6 ];
        Util.check_int "two cycles later" 2 (Pipeline.cycles p));
    tc "only two memory operations per cycle" (fun () ->
        let p = Pipeline.create () in
        issue p ~is_mem:true ~writes:[ 1 ] ~latency:2;
        issue p ~is_mem:true ~writes:[ 2 ] ~latency:2;
        issue p ~is_mem:true ~writes:[ 3 ] ~latency:2;
        Util.check_int "third port use spills over" 1 (Pipeline.cycles p));
    tc "predicated-off instructions skip their source stalls" (fun () ->
        let p = Pipeline.create () in
        issue p ~writes:[ 5 ] ~is_mem:true ~latency:14;
        (* a squashed consumer must not wait 14 cycles for r5 *)
        issue p ~executing:false ~reads:[ 5 ] ~writes:[ 6 ] ~qp:1;
        Util.check_bool "no stall" true (Pipeline.cycles p < 2));
    tc "predicate producers gate predicated consumers" (fun () ->
        let p = Pipeline.create () in
        issue p ~pred_writes:[ 3 ];
        issue p ~executing:true ~qp:3 ~writes:[ 6 ];
        Util.check_int "waits for p3" 1 (Pipeline.cycles p));
    tc "r0 never creates dependencies" (fun () ->
        let p = Pipeline.create () in
        issue p ~writes:[ Shift_isa.Reg.zero ] ~latency:5;
        issue p ~reads:[ Shift_isa.Reg.zero ] ~writes:[ 6 ];
        Util.check_int "no stall through r0" 0 (Pipeline.cycles p));
    tc "redirect closes the issue group" (fun () ->
        let p = Pipeline.create () in
        issue p ~writes:[ 1 ];
        Pipeline.redirect p ~penalty:1;
        issue p ~writes:[ 2 ];
        Util.check_int "penalty applied" 1 (Pipeline.cycles p));
    tc "stall charges dead cycles" (fun () ->
        let p = Pipeline.create () in
        Pipeline.stall p 100;
        Util.check_int "hundred" 100 (Pipeline.cycles p));
  ]

let addr k = Int64.of_int (0x10000 + k)

let cache_tests =
  [
    tc "first access misses, second hits" (fun () ->
        let c = Cache.create () in
        Util.check_bool "miss" false (Cache.access c (addr 0));
        Util.check_bool "hit" true (Cache.access c (addr 0));
        Util.check_int "counts" 1 (Cache.hits c);
        Util.check_int "counts" 1 (Cache.misses c));
    tc "same line hits" (fun () ->
        let c = Cache.create () in
        ignore (Cache.access c (addr 0));
        Util.check_bool "same 64B line" true (Cache.access c (addr 63));
        Util.check_bool "next line misses" false (Cache.access c (addr 64)));
    tc "direct-mapped conflict evicts" (fun () ->
        let c = Cache.create ~size_kb:16 ~line_bytes:64 () in
        (* 16KB direct mapped: addresses 16KB apart conflict *)
        ignore (Cache.access c (addr 0));
        ignore (Cache.access c (Int64.add (addr 0) (Int64.of_int (16 * 1024))));
        Util.check_bool "evicted" false (Cache.access c (addr 0)));
    tc "working set under the capacity stays resident" (fun () ->
        let c = Cache.create ~size_kb:16 ~line_bytes:64 () in
        for k = 0 to 127 do
          ignore (Cache.access c (Int64.of_int (0x40000 + (k * 64))))
        done;
        let before = Cache.hits c in
        for k = 0 to 127 do
          ignore (Cache.access c (Int64.of_int (0x40000 + (k * 64))))
        done;
        Util.check_int "all hits on the second pass" (before + 128) (Cache.hits c));
    tc "larger footprint misses more (byte-vs-word bitmap effect)" (fun () ->
        let sweep stride count =
          let c = Cache.create () in
          for round = 1 to 2 do
            ignore round;
            for k = 0 to count - 1 do
              ignore (Cache.access c (Int64.of_int (0x80000 + (k * stride))))
            done
          done;
          Cache.misses c
        in
        (* same number of accesses: 8 KB footprint fits, 64 KB thrashes *)
        Util.check_bool "8x footprint misses more" true (sweep 512 128 > sweep 64 128));
  ]

let suites = [ ("timing.pipeline", pipeline_tests); ("timing.cache", cache_tests) ]
