module Policy = Shift_policy.Policy
module Alert = Shift_policy.Alert

let tc = Util.tc

let policy_name = function None -> "none" | Some (a : Alert.t) -> a.Alert.policy

let check_policy msg expected actual =
  Alcotest.(check string) msg expected (policy_name actual)

let norm_tests =
  [
    tc "normalize_path" (fun () ->
        let cases =
          [
            ("/a/b/c", "/a/b/c");
            ("/a/./b", "/a/b");
            ("/a/b/../c", "/a/c");
            ("a/../../b", "../b");
            ("/../x", "/x");
            ("a//b/", "a/b");
            (".", ".");
            ("..", "..");
            ("/", "/");
          ]
        in
        List.iter
          (fun (input, expected) ->
            Alcotest.(check string) input expected (Policy.normalize_path input))
          cases);
  ]

let h2_policy = { Policy.default with h2 = Some "/var/www" }
let h1_policy = { Policy.default with h1 = true }

let open_tests =
  [
    tc "H1 fires on tainted absolute path" (fun () ->
        check_policy "h1" "H1"
          (Policy.check_open h1_policy ~path:"/etc/passwd" ~tainted:[ 0; 1 ]));
    tc "H1 quiet on clean absolute path" (fun () ->
        check_policy "clean" "none" (Policy.check_open h1_policy ~path:"/etc/passwd" ~tainted:[]));
    tc "H1 quiet on tainted relative path" (fun () ->
        check_policy "relative" "none"
          (Policy.check_open h1_policy ~path:"notes.txt" ~tainted:[ 0 ]));
    tc "H2 fires on traversal out of the document root" (fun () ->
        check_policy "h2" "H2"
          (Policy.check_open h2_policy ~path:"../../etc/passwd" ~tainted:[ 0; 1; 2 ]));
    tc "H2 quiet inside the document root" (fun () ->
        check_policy "inside" "none"
          (Policy.check_open h2_policy ~path:"pages/index.html" ~tainted:[ 3 ]));
    tc "H2 quiet on dotdot that stays inside" (fun () ->
        check_policy "stays" "none"
          (Policy.check_open h2_policy ~path:"a/../index.html" ~tainted:[ 1 ]));
    tc "H2 quiet without taint" (fun () ->
        check_policy "clean" "none"
          (Policy.check_open h2_policy ~path:"../../etc/passwd" ~tainted:[]));
  ]

let sink_tests =
  let p = Policy.all_on ~document_root:"/www" in
  [
    tc "H4 fires on tainted shell metacharacter" (fun () ->
        check_policy "h4" "H4"
          (Policy.check_system p ~cmd:"ls; rm -rf /" ~tainted:[ 2; 3; 4 ]));
    tc "H4 quiet when metacharacters are program-supplied" (fun () ->
        check_policy "clean meta" "none"
          (Policy.check_system p ~cmd:"ls; rm" ~tainted:[ 0; 1 ]));
    tc "H3 fires on tainted quote" (fun () ->
        check_policy "h3" "H3"
          (Policy.check_sql p ~query:"SELECT * FROM t WHERE n='x' OR '1'='1'"
             ~tainted:(List.init 16 (fun k -> 23 + k))));
    tc "H3 fires on tainted comment" (fun () ->
        check_policy "comment" "H3"
          (Policy.check_sql p ~query:"SELECT 1 -- hidden" ~tainted:[ 9; 10 ]));
    tc "H3 quiet on benign tainted text" (fun () ->
        check_policy "benign" "none"
          (Policy.check_sql p ~query:"SELECT * FROM t WHERE n='bob'" ~tainted:[ 25; 26; 27 ]));
    tc "H5 fires on tainted script tag" (fun () ->
        check_policy "h5" "H5"
          (Policy.check_html p ~html:"<p>hi</p><script>evil()</script>"
             ~tainted:(List.init 23 (fun k -> 9 + k))));
    tc "H5 matches case-insensitively" (fun () ->
        check_policy "case" "H5"
          (Policy.check_html p ~html:"<ScRiPt>" ~tainted:[ 0; 1; 2; 3; 4; 5; 6; 7 ]));
    tc "H5 quiet on program-authored script tag" (fun () ->
        check_policy "own tag" "none"
          (Policy.check_html p ~html:"<script>menu()</script><b>name</b>" ~tainted:[ 26; 27 ]));
    tc "disabled policies never fire" (fun () ->
        let off = Policy.default in
        check_policy "h3 off" "none" (Policy.check_sql off ~query:"'" ~tainted:[ 0 ]);
        check_policy "h4 off" "none" (Policy.check_system off ~cmd:";" ~tainted:[ 0 ]);
        check_policy "h5 off" "none"
          (Policy.check_html off ~html:"<script>" ~tainted:[ 0; 1 ]));
  ]

let fault_tests =
  [
    tc "fault mapping covers L1-L3" (fun () ->
        check_policy "l1" "L1" (Policy.alert_of_fault "load address");
        check_policy "l2" "L2" (Policy.alert_of_fault "store address");
        check_policy "l2-val" "L2" (Policy.alert_of_fault "store value");
        check_policy "l3-br" "L3" (Policy.alert_of_fault "branch target");
        check_policy "l3-call" "L3" (Policy.alert_of_fault "call target");
        check_policy "other" "none" (Policy.alert_of_fault "nonsense"));
    tc "describe lists enabled policies" (fun () ->
        let lines = Policy.describe (Policy.all_on ~document_root:"/www") in
        Util.check_int "eight lines" 8 (List.length lines));
  ]

(* signature feedback: the maximal tainted fragment at the sink (the
   paper's intrusion-prevention-signature use case, §1) *)
let signature_tests =
  [
    tc "extract_signature finds the maximal tainted run" (fun () ->
        let s = "SELECT x WHERE id='0'OR'1'" in
        let tainted = List.init 8 (fun k -> 18 + k) in
        Alcotest.(check (option string))
          "fragment" (Some "'0'OR'1'")
          (Alert.extract_signature s ~tainted ~around:20));
    tc "extract_signature is None off the tainted run" (fun () ->
        Alcotest.(check (option string))
          "none" None
          (Alert.extract_signature "abcdef" ~tainted:[ 1; 2 ] ~around:4));
    tc "extract_signature at the string's edges" (fun () ->
        Alcotest.(check (option string))
          "run at position 0" (Some "ab")
          (Alert.extract_signature "abcdef" ~tainted:[ 0; 1 ] ~around:0);
        Alcotest.(check (option string))
          "run at the end" (Some "ef")
          (Alert.extract_signature "abcdef" ~tainted:[ 4; 5 ] ~around:5));
    tc "extract_signature snaps to an adjacent run only" (fun () ->
        (* around itself untainted: the run one position left or right
           is accepted, anything further is not *)
        Alcotest.(check (option string))
          "left neighbour" (Some "AA")
          (Alert.extract_signature "xxAAxyyyy" ~tainted:[ 2; 3 ] ~around:4);
        Alcotest.(check (option string))
          "right neighbour" (Some "BB")
          (Alert.extract_signature "xxxxxBBxx" ~tainted:[ 5; 6 ] ~around:4);
        Alcotest.(check (option string))
          "two away" None
          (Alert.extract_signature "xxAAxxxxx" ~tainted:[ 2; 3 ] ~around:5));
    tc "extract_signature on an empty string" (fun () ->
        Alcotest.(check (option string))
          "empty" None
          (Alert.extract_signature "" ~tainted:[ 0 ] ~around:0));
    tc "extract_signature clamps around to the string" (fun () ->
        Alcotest.(check (option string))
          "past the end" (Some "ef")
          (Alert.extract_signature "abcdef" ~tainted:[ 4; 5 ] ~around:100);
        Alcotest.(check (option string))
          "negative" (Some "ab")
          (Alert.extract_signature "abcdef" ~tainted:[ 0; 1 ] ~around:(-3)));
    tc "sink alerts carry the attacking fragment" (fun () ->
        let p = Policy.all_on ~document_root:"/www" in
        match
          Policy.check_sql p ~query:"SELECT 1 WHERE a='x' OR 'b'"
            ~tainted:(List.init 10 (fun k -> 17 + k))
        with
        | Some a ->
            Alcotest.(check (option string)) "signature" (Some "'x' OR 'b'")
              a.Alert.signature
        | None -> Alcotest.fail "expected H3");
    tc "end-to-end: the phpMyFAQ exploit yields its injection string" (fun () ->
        let c = List.nth Shift_attacks.Attacks.all 6 in
        let r =
          Shift.Session.run ~policy:c.Shift_attacks.Attack_case.policy
            ~setup:c.Shift_attacks.Attack_case.exploit
            ~mode:Shift_compiler.Mode.shift_byte c.Shift_attacks.Attack_case.program
        in
        match Shift.Report.alert r with
        | Some { Alert.signature = Some s; _ } ->
            Util.check_bool
              (Printf.sprintf "signature %S contains the injection" s)
              true
              (Str_exists.contains s "OR")
        | _ -> Alcotest.fail "expected an alert with a signature");
  ]

let suites =
  [
    ("policy.paths", norm_tests);
    ("policy.open", open_tests);
    ("policy.sinks", sink_tests);
    ("policy.faults", fault_tests);
    ("policy.signatures", signature_tests);
  ]
