open Shift_isa
module Cpu = Shift_machine.Cpu
module Fault = Shift_machine.Fault

let tc = Util.tc
let m ?qp op = Program.I (Instr.mk ?qp op)
let lbl l = Program.Label l

let valid_addr = Shift_mem.Addr.in_region 1 0x10000L
let invalid_addr = Int64.shift_left 1L 45

let build items = Program.assemble items

let run ?(fuel = 100_000) items =
  let cpu = Cpu.create (build items) in
  let outcome = Cpu.run ~fuel cpu in
  (cpu, outcome)

let expect_exit msg code (_, outcome) =
  match outcome with
  | Cpu.Exited v -> Util.check_i64 msg code v
  | Cpu.Faulted (f, ip) -> Alcotest.failf "%s: fault %s at %d" msg (Fault.to_string f) ip
  | Cpu.Out_of_fuel -> Alcotest.failf "%s: out of fuel" msg

let expect_fault msg fault (_, outcome) =
  match outcome with
  | Cpu.Faulted (f, _) ->
      Alcotest.(check string) msg (Fault.to_string fault) (Fault.to_string f)
  | Cpu.Exited v -> Alcotest.failf "%s: exited %Ld" msg v
  | Cpu.Out_of_fuel -> Alcotest.failf "%s: out of fuel" msg

(* conjure a register with a set NaT bit, the Figure-5 way *)
let make_nat r =
  [ m (Instr.Movi (r, invalid_addr));
    m (Instr.Ld { width = Instr.W8; dst = r; addr = r; spec = true; fill = false }) ]

let arith_tests =
  [
    tc "arithmetic and halt" (fun () ->
        run
          [
            m (Instr.Movi (1, 6L));
            m (Instr.Movi (2, 7L));
            m (Instr.Arith (Instr.Mul, Reg.ret, 1, Instr.R 2));
            m Instr.Halt;
          ]
        |> expect_exit "6*7" 42L);
    tc "immediate operands" (fun () ->
        run
          [
            m (Instr.Movi (1, 10L));
            m (Instr.Arith (Instr.Sub, Reg.ret, 1, Instr.Imm 3L));
            m Instr.Halt;
          ]
        |> expect_exit "10-3" 7L);
    tc "shifts" (fun () ->
        run
          [
            m (Instr.Movi (1, -8L));
            m (Instr.Arith (Instr.Shr, 2, 1, Instr.Imm 60L));
            m (Instr.Arith (Instr.Sar, 3, 1, Instr.Imm 2L));
            m (Instr.Arith (Instr.Add, Reg.ret, 2, Instr.R 3));
            m Instr.Halt;
          ]
        |> expect_exit "logical+arith shift" (Int64.add 15L (-2L)));
    tc "division semantics" (fun () ->
        run
          [
            m (Instr.Movi (1, -7L));
            m (Instr.Arith (Instr.Div, Reg.ret, 1, Instr.Imm 2L));
            m Instr.Halt;
          ]
        |> expect_exit "-7/2 truncates" (-3L));
    tc "division by zero faults" (fun () ->
        run
          [ m (Instr.Movi (1, 7L)); m (Instr.Arith (Instr.Div, 2, 1, Instr.Imm 0L)); m Instr.Halt ]
        |> expect_fault "div0" Fault.Div_by_zero);
    tc "r0 is immutable" (fun () ->
        run
          [
            m (Instr.Movi (Reg.zero, 99L));
            m (Instr.Arith (Instr.Add, Reg.ret, Reg.zero, Instr.Imm 1L));
            m Instr.Halt;
          ]
        |> expect_exit "r0 stays zero" 1L);
    tc "extr masks the field width" (fun () ->
        run
          [
            m (Instr.Movi (1, 0x0123_4567_89ab_cdefL));
            m (Instr.Extr { dst = Reg.ret; src = 1; pos = 8; len = 12 });
            m Instr.Halt;
          ]
        |> expect_exit "12-bit field" 0xbcdL);
    tc "extr with len=64 keeps the full word" (fun () ->
        (* regression: 1 lsl (64 land 63) = 1 gave a zero mask, so a
           full-width extract returned 0 instead of the source *)
        run
          [
            m (Instr.Movi (1, -2L));
            m (Instr.Extr { dst = Reg.ret; src = 1; pos = 0; len = 64 });
            m Instr.Halt;
          ]
        |> expect_exit "full width, sign bit intact" (-2L));
  ]

let nat_tests =
  [
    tc "speculative load from invalid address sets NaT" (fun () ->
        let cpu, outcome =
          run (make_nat 5 @ [ m Instr.Halt ])
        in
        (match outcome with Cpu.Exited _ -> () | _ -> Alcotest.fail "should halt");
        Util.check_bool "nat set" true (Cpu.get_nat cpu 5);
        Util.check_i64 "value zeroed" 0L (Cpu.get_value cpu 5));
    tc "NaT propagates through arithmetic" (fun () ->
        let cpu, _ =
          run
            (make_nat 5
            @ [
                m (Instr.Movi (6, 10L));
                m (Instr.Arith (Instr.Add, 7, 6, Instr.R 5));
                m Instr.Halt;
              ])
        in
        Util.check_bool "propagated" true (Cpu.get_nat cpu 7);
        Util.check_i64 "value still computed" 10L (Cpu.get_value cpu 7));
    tc "xor r, r clears the NaT (clear idiom)" (fun () ->
        let cpu, _ =
          run (make_nat 5 @ [ m (Instr.Arith (Instr.Xor, 5, 5, Instr.R 5)); m Instr.Halt ])
        in
        Util.check_bool "cleared" false (Cpu.get_nat cpu 5);
        Util.check_i64 "zero" 0L (Cpu.get_value cpu 5));
    tc "plain load clears NaT" (fun () ->
        let cpu, _ =
          run
            (make_nat 5
            @ [
                m (Instr.Movi (6, valid_addr));
                m (Instr.Ld { width = Instr.W8; dst = 5; addr = 6; spec = false; fill = false });
                m Instr.Halt;
              ])
        in
        Util.check_bool "cleared" false (Cpu.get_nat cpu 5));
    tc "mov copies the NaT" (fun () ->
        let cpu, _ = run (make_nat 5 @ [ m (Instr.Mov (6, 5)); m Instr.Halt ]) in
        Util.check_bool "copied" true (Cpu.get_nat cpu 6));
    tc "tnat discriminates" (fun () ->
        let cpu, _ =
          run
            (make_nat 5
            @ [
                m (Instr.Tnat { pt = 1; pf = 2; src = 5 });
                m (Instr.Movi (Reg.ret, 0L));
                m ~qp:1 (Instr.Movi (Reg.ret, 1L));
                m Instr.Halt;
              ])
        in
        Util.check_i64 "detected" 1L (Cpu.get_value cpu Reg.ret));
    tc "baseline cmp with NaT clears both predicates" (fun () ->
        let cpu, _ =
          run
            (make_nat 5
            @ [
                (* make p1 and p2 true beforehand to observe the clear *)
                m (Instr.Cmp { cond = Cond.Eq; pt = 1; pf = 2; src1 = Reg.zero; src2 = Instr.Imm 0L; taint_aware = false });
                m (Instr.Cmp { cond = Cond.Eq; pt = 1; pf = 2; src1 = 5; src2 = Instr.Imm 0L; taint_aware = false });
                m (Instr.Movi (Reg.ret, 0L));
                m ~qp:1 (Instr.Movi (Reg.ret, 1L));
                m ~qp:2 (Instr.Movi (Reg.ret, 2L));
                m Instr.Halt;
              ])
        in
        Util.check_i64 "both cleared" 0L (Cpu.get_value cpu Reg.ret));
    tc "taint-aware cmp compares the values" (fun () ->
        let cpu, _ =
          run
            (make_nat 5
            @ [
                m (Instr.Cmp { cond = Cond.Eq; pt = 1; pf = 2; src1 = 5; src2 = Instr.Imm 0L; taint_aware = true });
                m (Instr.Movi (Reg.ret, 0L));
                m ~qp:1 (Instr.Movi (Reg.ret, 1L));
                m Instr.Halt;
              ])
        in
        (* the NaT source's value is 0, so eq 0 holds *)
        Util.check_i64 "compared" 1L (Cpu.get_value cpu Reg.ret));
    tc "setnat/clrnat" (fun () ->
        let cpu, _ =
          run
            [
              m (Instr.Movi (5, 42L));
              m (Instr.Setnat 5);
              m (Instr.Mov (6, 5));
              m (Instr.Clrnat 5);
              m Instr.Halt;
            ]
        in
        Util.check_bool "set propagated" true (Cpu.get_nat cpu 6);
        Util.check_bool "cleared" false (Cpu.get_nat cpu 5);
        Util.check_i64 "value preserved" 42L (Cpu.get_value cpu 5));
  ]

let nat_fault_tests =
  [
    tc "load through NaT address faults (L1)" (fun () ->
        run
          (make_nat 5
          @ [ m (Instr.Ld { width = Instr.W8; dst = 6; addr = 5; spec = false; fill = false }); m Instr.Halt ])
        |> expect_fault "L1" (Fault.Nat_consumption Fault.Load_address));
    tc "store through NaT address faults (L2)" (fun () ->
        run
          (make_nat 5
          @ [ m (Instr.St { width = Instr.W8; addr = 5; src = Reg.zero; spill = false }); m Instr.Halt ])
        |> expect_fault "L2" (Fault.Nat_consumption Fault.Store_address));
    tc "plain store of a NaT register faults" (fun () ->
        run
          (make_nat 5
          @ [
              m (Instr.Movi (6, valid_addr));
              m (Instr.St { width = Instr.W8; addr = 6; src = 5; spill = false });
              m Instr.Halt;
            ])
        |> expect_fault "store value" (Fault.Nat_consumption Fault.Store_value));
    tc "indirect branch through NaT faults (L3)" (fun () ->
        run (make_nat 5 @ [ m (Instr.Br_reg 5); m Instr.Halt ])
        |> expect_fault "L3" (Fault.Nat_consumption Fault.Branch_target));
    tc "indirect call through NaT faults (L3)" (fun () ->
        run (make_nat 5 @ [ m (Instr.Call_reg 5); m Instr.Halt ])
        |> expect_fault "L3" (Fault.Nat_consumption Fault.Call_target));
    tc "non-speculative load from invalid address faults" (fun () ->
        run
          [
            m (Instr.Movi (5, invalid_addr));
            m (Instr.Ld { width = Instr.W8; dst = 6; addr = 5; spec = false; fill = false });
            m Instr.Halt;
          ]
        |> expect_fault "invalid" (Fault.Invalid_address invalid_addr));
    tc "null dereference faults" (fun () ->
        run
          [
            m (Instr.Movi (5, 0L));
            m (Instr.Ld { width = Instr.W8; dst = 6; addr = 5; spec = false; fill = false });
            m Instr.Halt;
          ]
        |> expect_fault "null" (Fault.Invalid_address 0L));
  ]

let spill_tests =
  [
    tc "spill/fill round-trips the NaT through UNAT" (fun () ->
        let cpu, _ =
          run
            (make_nat 5
            @ [
                m (Instr.Movi (6, valid_addr));
                m (Instr.St { width = Instr.W8; addr = 6; src = 5; spill = true });
                m (Instr.Ld { width = Instr.W8; dst = 7; addr = 6; spec = false; fill = true });
                m (Instr.Ld { width = Instr.W8; dst = 8; addr = 6; spec = false; fill = false });
                m Instr.Halt;
              ])
        in
        Util.check_bool "fill restores NaT" true (Cpu.get_nat cpu 7);
        Util.check_bool "plain load strips NaT" false (Cpu.get_nat cpu 8));
    tc "spill of a clean register clears the UNAT bit" (fun () ->
        let cpu, _ =
          run
            (make_nat 5
            @ [
                m (Instr.Movi (6, valid_addr));
                m (Instr.St { width = Instr.W8; addr = 6; src = 5; spill = true });
                m (Instr.Movi (7, 9L));
                m (Instr.St { width = Instr.W8; addr = 6; src = 7; spill = true });
                m (Instr.Ld { width = Instr.W8; dst = 8; addr = 6; spec = false; fill = true });
                m Instr.Halt;
              ])
        in
        Util.check_bool "clean now" false (Cpu.get_nat cpu 8);
        Util.check_i64 "value" 9L (Cpu.get_value cpu 8));
    tc "UNAT is preserved across calls" (fun () ->
        (* caller spills a NaT reg, callee clobbers the same UNAT bit
           via its own spill at a colliding address, caller's fill must
           still restore the NaT *)
        let collide = Int64.add valid_addr 512L in
        let cpu, _ =
          run
            (make_nat 5
            @ [
                m (Instr.Movi (6, valid_addr));
                m (Instr.St { width = Instr.W8; addr = 6; src = 5; spill = true });
                m (Instr.Call "callee");
                m (Instr.Ld { width = Instr.W8; dst = 7; addr = 6; spec = false; fill = true });
                m Instr.Halt;
                lbl "callee";
                m (Instr.Movi (9, collide));
                m (Instr.Movi (10, 1L));
                m (Instr.St { width = Instr.W8; addr = 9; src = 10; spill = true });
                m Instr.Ret;
              ])
        in
        Util.check_bool "NaT survives the call" true (Cpu.get_nat cpu 7));
  ]

let control_tests =
  [
    tc "chk.s branches to recovery on NaT" (fun () ->
        run
          (make_nat 5
          @ [
              m (Instr.Chk_s { src = 5; recovery = "recover" });
              m (Instr.Movi (Reg.ret, 1L));
              m Instr.Halt;
              lbl "recover";
              m (Instr.Movi (Reg.ret, 2L));
              m Instr.Halt;
            ])
        |> expect_exit "recovered" 2L);
    tc "chk.s falls through when clean" (fun () ->
        run
          [
            m (Instr.Movi (5, 3L));
            m (Instr.Chk_s { src = 5; recovery = "recover" });
            m (Instr.Movi (Reg.ret, 1L));
            m Instr.Halt;
            lbl "recover";
            m (Instr.Movi (Reg.ret, 2L));
            m Instr.Halt;
          ]
        |> expect_exit "fell through" 1L);
    tc "call and ret" (fun () ->
        run
          [
            m (Instr.Call "double");
            m Instr.Halt;
            lbl "double";
            m (Instr.Movi (1, 21L));
            m (Instr.Arith (Instr.Add, Reg.ret, 1, Instr.R 1));
            m Instr.Ret;
          ]
        |> expect_exit "callret" 42L);
    tc "indirect call through lea" (fun () ->
        run
          [
            m (Instr.Lea (5, "target"));
            m (Instr.Call_reg 5);
            m Instr.Halt;
            lbl "target";
            m (Instr.Movi (Reg.ret, 7L));
            m Instr.Ret;
          ]
        |> expect_exit "indirect" 7L);
    tc "predication skips instructions" (fun () ->
        run
          [
            m (Instr.Movi (1, 5L));
            m (Instr.Cmp { cond = Cond.Lt; pt = 1; pf = 2; src1 = 1; src2 = Instr.Imm 10L; taint_aware = false });
            m (Instr.Movi (Reg.ret, 0L));
            m ~qp:1 (Instr.Movi (Reg.ret, 11L));
            m ~qp:2 (Instr.Movi (Reg.ret, 22L));
            m Instr.Halt;
          ]
        |> expect_exit "predicated" 11L);
    tc "ret with empty stack faults" (fun () ->
        run [ m Instr.Ret ] |> expect_fault "underflow" Fault.Call_stack_underflow);
    tc "runaway loop runs out of fuel" (fun () ->
        let _, outcome = run ~fuel:1000 [ lbl "spin"; m (Instr.Br "spin") ] in
        match outcome with
        | Cpu.Out_of_fuel -> ()
        | _ -> Alcotest.fail "expected fuel exhaustion");
    tc "indirect branch outside code faults" (fun () ->
        run [ m (Instr.Movi (5, 1234L)); m (Instr.Br_reg 5) ]
        |> expect_fault "bad target" (Fault.Invalid_branch 1234L));
  ]

let pipeline_tests =
  [
    tc "independent instructions co-issue" (fun () ->
        let cpu_indep, _ =
          run (List.init 6 (fun k -> m (Instr.Movi (1 + k, 1L))) @ [ m Instr.Halt ])
        in
        let cpu_dep, _ =
          run
            (m (Instr.Movi (1, 1L))
             :: List.init 6 (fun _ -> m (Instr.Arith (Instr.Add, 1, 1, Instr.Imm 1L)))
            @ [ m Instr.Halt ])
        in
        Util.check_bool "dependent chain is slower" true
          (cpu_dep.Cpu.stats.cycles > cpu_indep.Cpu.stats.cycles));
    tc "memory ports limit throughput" (fun () ->
        let loads n =
          m (Instr.Movi (1, valid_addr))
          :: List.init n (fun k ->
                 m (Instr.Ld { width = Instr.W8; dst = 2 + (k mod 20); addr = 1; spec = false; fill = false }))
          @ [ m Instr.Halt ]
        in
        let cpu8, _ = run (loads 8) in
        let cpu32, _ = run (loads 32) in
        (* 2 ports -> ~n/2 cycles; the gap should be ~12 cycles *)
        Util.check_bool "port limited" true
          (cpu32.Cpu.stats.cycles - cpu8.Cpu.stats.cycles >= 10));
    tc "statistics count instructions and loads" (fun () ->
        let cpu, _ =
          run
            [
              m (Instr.Movi (1, valid_addr));
              m (Instr.Ld { width = Instr.W8; dst = 2; addr = 1; spec = false; fill = false });
              m (Instr.St { width = Instr.W8; addr = 1; src = 2; spill = false });
              m Instr.Halt;
            ]
        in
        Util.check_int "instructions" 4 cpu.Cpu.stats.instructions;
        Util.check_int "loads" 1 cpu.Cpu.stats.loads;
        Util.check_int "stores" 1 cpu.Cpu.stats.stores);
    tc "syscall handler runs and sets r8" (fun () ->
        let program =
          build [ m (Instr.Movi (Reg.sysnum, 99L)); m Instr.Syscall; m Instr.Halt ]
        in
        let cpu = Cpu.create program in
        cpu.Cpu.syscall_handler <- Some (fun c -> Cpu.set_value c Reg.ret 1234L);
        (match Cpu.run cpu with
        | Cpu.Exited v -> Util.check_i64 "handler result" 1234L v
        | _ -> Alcotest.fail "expected exit");
        Util.check_int "syscalls" 1 cpu.Cpu.stats.syscalls);
  ]

(* the budgeted stepping primitive behind Exec (PR 3) *)
let engine_tests =
  [
    tc "fuel 0 is immediate fuel exhaustion" (fun () ->
        let _, outcome =
          run ~fuel:0 [ m (Instr.Movi (Reg.ret, 1L)); m Instr.Halt ]
        in
        match outcome with
        | Cpu.Out_of_fuel -> ()
        | _ -> Alcotest.fail "expected fuel exhaustion");
    tc "run_for with budget 0 yields without stepping" (fun () ->
        let cpu = Cpu.create (build [ m Instr.Halt ]) in
        (match Cpu.run_for cpu ~budget:0 with
        | `Yielded -> ()
        | `Finished _ -> Alcotest.fail "expected yield");
        Util.check_int "no instructions ran" 0 cpu.Cpu.stats.instructions);
    tc "slicing run_for does not perturb the counters" (fun () ->
        let prog =
          build
            [
              m (Instr.Movi (1, 0L));
              lbl "loop";
              m (Instr.Arith (Instr.Add, 1, 1, Instr.Imm 1L));
              m (Instr.Cmp { cond = Cond.Lt; pt = 1; pf = 0; src1 = 1;
                             src2 = Instr.Imm 100L; taint_aware = false });
              m ~qp:1 (Instr.Br "loop");
              m (Instr.Arith (Instr.Add, Reg.ret, 1, Instr.Imm 0L));
              m Instr.Halt;
            ]
        in
        let reference = Cpu.create prog in
        let ref_outcome = Cpu.run reference in
        let sliced = Cpu.create prog in
        let rec drive () =
          match Cpu.run_for sliced ~budget:3 with
          | `Yielded -> drive ()
          | `Finished o -> o
        in
        let sliced_outcome = drive () in
        (match (ref_outcome, sliced_outcome) with
        | Cpu.Exited a, Cpu.Exited b -> Util.check_i64 "exit" a b
        | _ -> Alcotest.fail "expected both to exit");
        Util.check_string "counters"
          (Format.asprintf "%a" Shift_machine.Stats.pp reference.Cpu.stats)
          (Format.asprintf "%a" Shift_machine.Stats.pp sliced.Cpu.stats));
    tc "Stats.total sums cycles, Stats.concurrent maxes them" (fun () ->
        let a = Shift_machine.Stats.create ()
        and b = Shift_machine.Stats.create () in
        a.instructions <- 10; a.cycles <- 100; a.loads <- 3;
        b.instructions <- 5; b.cycles <- 40; b.loads <- 4;
        let t = Shift_machine.Stats.total [ a; b ]
        and c = Shift_machine.Stats.concurrent [ a; b ] in
        Util.check_int "total instructions" 15 t.instructions;
        Util.check_int "total cycles" 140 t.cycles;
        Util.check_int "total loads" 7 t.loads;
        Util.check_int "concurrent instructions" 15 c.instructions;
        Util.check_int "concurrent cycles" 100 c.cycles);
    tc "Stats.total and Stats.concurrent of the empty list" (fun () ->
        let t = Shift_machine.Stats.total []
        and c = Shift_machine.Stats.concurrent [] in
        Util.check_int "total instructions" 0 t.instructions;
        Util.check_int "total cycles" 0 t.cycles;
        Util.check_int "total slots" 0 (Shift_machine.Stats.total_slots t);
        Util.check_int "concurrent cycles" 0 c.cycles);
    tc "Stats aggregation of a singleton equals the element" (fun () ->
        let a = Shift_machine.Stats.create () in
        a.instructions <- 7; a.cycles <- 30; a.stores <- 2;
        let t = Shift_machine.Stats.total [ a ]
        and c = Shift_machine.Stats.concurrent [ a ] in
        Util.check_string "total"
          (Format.asprintf "%a" Shift_machine.Stats.pp a)
          (Format.asprintf "%a" Shift_machine.Stats.pp t);
        Util.check_string "concurrent"
          (Format.asprintf "%a" Shift_machine.Stats.pp a)
          (Format.asprintf "%a" Shift_machine.Stats.pp c));
    tc "Stats aggregates do not share slot arrays with inputs" (fun () ->
        let a = Shift_machine.Stats.create () in
        a.slots_by_prov.(0) <- 5;
        let t = Shift_machine.Stats.total [ a ]
        and c = Shift_machine.Stats.concurrent [ a ] in
        a.slots_by_prov.(0) <- 99;
        Util.check_int "total unaffected" 5 (Shift_machine.Stats.total_slots t);
        Util.check_int "concurrent unaffected" 5
          (Shift_machine.Stats.total_slots c);
        Util.check_bool "copy too" true
          (let s = Shift_machine.Stats.copy a in
           a.slots_by_prov.(0) <- 7;
           Shift_machine.Stats.total_slots s = 99));
  ]

let suites =
  [
    ("machine.arith", arith_tests);
    ("machine.nat", nat_tests);
    ("machine.nat-faults", nat_fault_tests);
    ("machine.spill", spill_tests);
    ("machine.control", control_tests);
    ("machine.pipeline", pipeline_tests);
    ("machine.engine", engine_tests);
  ]
