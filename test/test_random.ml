(* Differential testing: random structured guest programs must behave
   identically under every compilation mode — instrumentation is
   semantically transparent, whatever the program does.

   Programs are generated from a PRNG seed: straight-line arithmetic
   over four scalars, bounded loops, byte/word stores into a scratch
   array with masked indices, taint-source calls sprinkled in.  The
   result folds the scalars and the array together, so divergence
   anywhere shows up in the exit code. *)

open Build
open Build.Infix
module Mode = Shift_compiler.Mode

let tc = Util.tc

let scalars = [| "x0"; "x1"; "x2"; "x3" |]

type gen = { rng : Random.State.t; mutable loops : int }

let pick g arr = arr.(Random.State.int g.rng (Array.length arr))
let chance g pct = Random.State.int g.rng 100 < pct

let rec gen_expr g depth =
  if depth = 0 || chance g 30 then
    if chance g 50 then i (Random.State.int g.rng 2000 - 1000) else v (pick g scalars)
  else
    match Random.State.int g.rng 10 with
    | 0 -> gen_expr g (depth - 1) +: gen_expr g (depth - 1)
    | 1 -> gen_expr g (depth - 1) -: gen_expr g (depth - 1)
    | 2 -> gen_expr g (depth - 1) *: gen_expr g (depth - 1)
    | 3 ->
        (* divisor forced nonzero *)
        gen_expr g (depth - 1) /: ((gen_expr g (depth - 1) &: i 15) +: i 1)
    | 4 -> gen_expr g (depth - 1) &: gen_expr g (depth - 1)
    | 5 -> gen_expr g (depth - 1) |: gen_expr g (depth - 1)
    | 6 -> gen_expr g (depth - 1) ^: gen_expr g (depth - 1)
    | 7 -> gen_expr g (depth - 1) <<: (gen_expr g (depth - 1) &: i 7)
    | 8 ->
        (* masked and untainted index: the bounds-check pattern, so a
           tainted value never becomes an address (which would be a
           legitimate detection, not a divergence) *)
        load64 (v "arr" +: (call "untaint" [ gen_expr g (depth - 1) &: i 7 ] *: i 8))
    | _ -> Ir.Binop ((if chance g 50 then Ir.Lt else Ir.Eq), gen_expr g (depth - 1), gen_expr g (depth - 1))

let rec gen_stmt g depth =
  match Random.State.int g.rng (if depth = 0 then 4 else 7) with
  | 0 | 1 -> [ set (pick g scalars) (gen_expr g 2) ]
  | 2 ->
      [ store64 (v "arr" +: (call "untaint" [ gen_expr g 2 &: i 7 ] *: i 8)) (gen_expr g 2) ]
  | 3 -> [ store8 (v "arr" +: call "untaint" [ gen_expr g 2 &: i 63 ]) (gen_expr g 2) ]
  | 4 ->
      [
        if_ (gen_expr g 2) (gen_block g (depth - 1)) (gen_block g (depth - 1));
      ]
  | 5 ->
      (* bounded loop over its own counter (sharing one would let an
         inner loop reset the outer's progress) *)
      let n = 1 + Random.State.int g.rng 6 in
      let counter = Printf.sprintf "k%d" g.loops in
      g.loops <- (g.loops + 1) mod 10;
      for_up counter (i 0) (i n) (gen_block g (depth - 1))
  | _ ->
      [
        ecall "sys_taint_set"
          [ v "arr" +: i (8 * Random.State.int g.rng 7);
            i (1 + Random.State.int g.rng 16);
            i (Random.State.int g.rng 2) ];
      ]

and gen_block g depth =
  List.concat (List.init (1 + Random.State.int g.rng 3) (fun _ -> gen_stmt g depth))

let gen_program seed =
  let g = { rng = Random.State.make [| seed |]; loops = 0 } in
  let inits =
    Array.to_list scalars
    |> List.map (fun x -> set x (i (Random.State.int g.rng 100)))
  in
  let body = List.concat (List.init 6 (fun _ -> gen_stmt g 2)) in
  let fold =
    [ set "x0" (v "x0" +: (v "x1" *: i 3) +: (v "x2" *: i 5) +: (v "x3" *: i 7)) ]
    @ for_up "k" (i 0) (i 64)
        [ set "x0" ((v "x0" *: i 31) +: load8 (v "arr" +: v "k")) ]
    @ [ ret (v "x0" &: i64 0x3fffffffL) ]
  in
  Util.main_returning
    ~locals:
      (array "arr" 64 :: scalar "k"
      :: List.init 10 (fun n -> scalar (Printf.sprintf "k%d" n))
      @ List.map scalar (Array.to_list scalars))
    (inits @ body @ fold)

let modes =
  [
    Mode.shift_word;
    Mode.shift_byte;
    Mode.Shift { granularity = Shift_mem.Granularity.Word; enh = Mode.enh1 };
    Mode.Shift { granularity = Shift_mem.Granularity.Byte; enh = Mode.enh_both };
    Mode.Software_dbt { granularity = Shift_mem.Granularity.Word };
  ]

let differential_test =
  QCheck.Test.make ~count:60 ~name:"random programs agree across all modes"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let prog = gen_program seed in
      let reference = Util.exit_code (Util.run_prog ~mode:Mode.Uninstrumented prog) in
      List.for_all
        (fun mode -> Util.exit_code (Util.run_prog ~mode prog) = reference)
        modes)

let determinism_test =
  QCheck.Test.make ~count:20 ~name:"random programs are cycle-deterministic"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let prog = gen_program seed in
      let c1 = Shift.Report.cycles (Util.run_prog ~mode:Mode.shift_word prog) in
      let c2 = Shift.Report.cycles (Util.run_prog ~mode:Mode.shift_word prog) in
      c1 = c2)

(* the memory/taint fast paths must be invisible: same exit code and
   the same performance counters as the byte-at-a-time reference *)
let fast_path_test =
  let signature report =
    let s = report.Shift.Report.stats in
    ( Util.exit_code report,
      Shift_machine.Stats.
        (s.instructions, s.cycles, s.loads, s.stores, s.branches) )
  in
  QCheck.Test.make ~count:20 ~name:"memory fast path preserves counters"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let prog = gen_program seed in
      let run_with fast mode =
        let was = !Shift_mem.Memory.fast_path in
        Shift_mem.Memory.fast_path := fast;
        Fun.protect
          ~finally:(fun () -> Shift_mem.Memory.fast_path := was)
          (fun () -> signature (Util.run_prog ~mode prog))
      in
      List.for_all
        (fun mode -> run_with true mode = run_with false mode)
        [ Mode.Uninstrumented; Mode.shift_word; Mode.shift_byte ])

let overhead_test =
  QCheck.Test.make ~count:20 ~name:"instrumentation never speeds programs up"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let prog = gen_program seed in
      let base = Shift.Report.cycles (Util.run_prog ~mode:Mode.Uninstrumented prog) in
      let word = Shift.Report.cycles (Util.run_prog ~mode:Mode.shift_word prog) in
      word >= base)

let suites =
  [
    ( "random.differential",
      List.map QCheck_alcotest.to_alcotest
        [ differential_test; determinism_test; fast_path_test; overhead_test ] );
  ]
