(* The resumable execution engine: the monolithic stepping loop and
   [run_for] must produce byte-identical counters however a run is
   sliced, on one hart or many — and the fleet layer built on top must
   serialise identically at any domain count. *)

open Build
open Build.Infix
module Cpu = Shift_machine.Cpu
module Pipeline = Shift_machine.Pipeline
module Stats = Shift_machine.Stats
module Mode = Shift_compiler.Mode
module Policy = Shift_policy.Policy
module World = Shift_os.World
module Spec = Shift_workloads.Spec

let tc = Util.tc
let fuel = 100_000_000
let size = 512

(* everything a run counted, as one comparable string: [Stats.pp]
   renders every counter including the per-provenance slot table *)
let stats_sig (s : Stats.t) = Format.asprintf "%a" Stats.pp s

let report_sig (r : Shift.Report.t) =
  Format.asprintf "%a@ %a" Shift.Report.pp_outcome r.Shift.Report.outcome
    Stats.pp r.Shift.Report.stats

(* A faithful replica of the pre-engine [Cpu.run]: step until done,
   then pull cycles out of the pipeline model.  The differential tests
   below hold the new engine to this loop's exact counters. *)
let monolithic_run ~fuel cpu =
  let rec go fuel =
    if fuel <= 0 then Cpu.Out_of_fuel
    else match Cpu.step cpu with Some o -> o | None -> go (fuel - 1)
  in
  Fun.protect
    ~finally:(fun () ->
      cpu.Cpu.stats.Stats.cycles <- Pipeline.cycles cpu.Cpu.pipe)
    (fun () -> go fuel)

(* ... and of the pre-engine [Session.run_image]: machine + world,
   monolithic loop, raw stats *)
let monolithic_stats image ~setup =
  let cpu = Shift.Session.load image in
  let world =
    World.create ~policy:Policy.default
      ~gran:(Shift.Session.gran_of_mode image.Shift_compiler.Image.mode)
      ()
  in
  setup world;
  cpu.Cpu.syscall_handler <- Some (World.handler world);
  match monolithic_run ~fuel cpu with
  | Cpu.Exited _ -> stats_sig cpu.Cpu.stats
  | o ->
      Alcotest.failf "monolithic reference run did not exit: %s"
        (match o with
        | Cpu.Out_of_fuel -> "out of fuel"
        | Cpu.Faulted (f, ip) ->
            Printf.sprintf "fault %s at %d" (Shift_machine.Fault.to_string f) ip
        | Cpu.Exited _ -> assert false)

let sliced_stats ?threading image ~setup ~budget =
  let config =
    Shift.Session.Config.make ~policy:Policy.default ~fuel ~setup ?threading ()
  in
  let live = Shift.Session.start ~config image in
  let rec drive () =
    match Shift.Session.advance live ~budget with
    | `Yielded -> drive ()
    | `Finished (Shift.Report.Exited _) -> ()
    | `Finished o ->
        Alcotest.failf "sliced run did not exit: %a" Shift.Report.pp_outcome o
  in
  drive ();
  stats_sig (Shift.Session.report live).Shift.Report.stats

let grid_kernels =
  List.filter_map Spec.find [ "gzip"; "gcc"; "mcf"; "bzip2" ]

let grid_modes =
  [ ("uninstr", Mode.Uninstrumented);
    ("word", Mode.shift_word);
    ("byte", Mode.shift_byte) ]

(* the differential acceptance test: for every throughput-grid cell,
   the monolithic loop, the one-shot engine, a finely sliced engine,
   and the single-hart SMP engine agree on every counter *)
let differential_tests =
  List.concat_map
    (fun (k : Spec.kernel) ->
      List.map
        (fun (mode_name, mode) ->
          tc (Printf.sprintf "%s/%s: engine == monolithic loop" k.Spec.name mode_name)
            (fun () ->
              let image = Shift.Session.build ~mode k.Spec.program in
              let setup = Spec.setup ~size ~tainted:true k in
              let reference = monolithic_stats image ~setup in
              let one_shot =
                stats_sig
                  (Shift.Session.run_image ~policy:Policy.default ~fuel ~setup
                     image)
                    .Shift.Report.stats
              in
              Util.check_string "one-shot engine" reference one_shot;
              Util.check_string "sliced engine (budget 4096)" reference
                (sliced_stats image ~setup ~budget:4096);
              Util.check_string "sliced engine (budget 1000)" reference
                (sliced_stats image ~setup ~budget:1000);
              let smp =
                stats_sig
                  (Shift.Session.run_image_mt ~policy:Policy.default ~fuel
                     ~setup image)
                    .Shift.Report.stats
              in
              Util.check_string "single-hart SMP engine" reference smp))
        grid_modes)
    grid_kernels

(* spawn/join program for the SMP slicing tests *)
let spawn_prog =
  {
    Ir.globals = [];
    funcs =
      [
        func "worker" ~params:[ "x" ] ~locals:[] [ ret (v "x" *: v "x") ];
        func "main" ~params:[] ~locals:[ scalar "t1"; scalar "t2" ]
          [
            set "t1" (call "sys_spawn" [ fnptr "worker"; i 5 ]);
            set "t2" (call "sys_spawn" [ fnptr "worker"; i 6 ]);
            ret (call "sys_join" [ v "t1" ] +: call "sys_join" [ v "t2" ]);
          ];
      ];
  }

let smp_slicing_tests =
  [
    tc "SMP run is invariant under slicing" (fun () ->
        (* budget boundaries land mid-quantum; the scheduler must resume
           the exact same interleaving *)
        let image = Shift.Session.build ~mode:Mode.shift_word spawn_prog in
        let threading = Shift.Session.Config.Threads { quantum = Some 7 } in
        let reference =
          report_sig
            (Shift.Session.run_image_mt ~policy:Policy.default ~fuel ~quantum:7
               image)
        in
        List.iter
          (fun budget ->
            let config =
              Shift.Session.Config.make ~policy:Policy.default ~fuel ~threading
                ()
            in
            let live = Shift.Session.start ~config image in
            let rec drive () =
              match Shift.Session.advance live ~budget with
              | `Yielded -> drive ()
              | `Finished _ -> ()
            in
            drive ();
            Util.check_string
              (Printf.sprintf "budget %d" budget)
              reference
              (report_sig (Shift.Session.report live)))
          [ 1; 7; 13; 1000 ]);
    tc "engine memoises the finished outcome" (fun () ->
        let image = Shift.Session.build ~mode:Mode.shift_word spawn_prog in
        let config =
          Shift.Session.Config.make ~policy:Policy.default ~fuel
            ~threading:(Shift.Session.Config.Threads { quantum = None })
            ()
        in
        let live = Shift.Session.start ~config image in
        let rec drive () =
          match Shift.Session.advance live ~budget:1000 with
          | `Yielded -> drive ()
          | `Finished o -> o
        in
        let first = drive () in
        let again =
          match Shift.Session.advance live ~budget:1000 with
          | `Finished o -> o
          | `Yielded -> Alcotest.fail "finished session yielded"
        in
        Util.check_string "same outcome"
          (Format.asprintf "%a" Shift.Report.pp_outcome first)
          (Format.asprintf "%a" Shift.Report.pp_outcome again));
  ]

(* the fleet layer: deterministic ordered results at any domain count *)
let fleet_jobs =
  List.concat_map
    (fun name ->
      let k = Option.get (Spec.find name) in
      List.map
        (fun (mode_name, mode) ->
          Shift.Fleet.job
            ~name:(Printf.sprintf "%s/%s" name mode_name)
            ~config:
              (Shift.Session.Config.make ~policy:Policy.default ~fuel
                 ~setup:(Spec.setup ~size:256 ~tainted:true k)
                 ())
            (fun () -> Shift.Session.build ~mode k.Spec.program))
        [ ("uninstr", Mode.Uninstrumented); ("word", Mode.shift_word) ])
    [ "gzip"; "mcf" ]

let fleet_tests =
  [
    tc "fleet results keep job order and all exit" (fun () ->
        let fleet = Shift.Fleet.run ~domains:2 fleet_jobs in
        Util.check_int "sessions" (List.length fleet_jobs)
          (List.length fleet.Shift.Fleet.results);
        Util.check_int "exited" (List.length fleet_jobs) fleet.Shift.Fleet.exited;
        List.iter2
          (fun expected (r : Shift.Fleet.result) ->
            Util.check_string "order" expected r.Shift.Fleet.name)
          [ "gzip/uninstr"; "gzip/word"; "mcf/uninstr"; "mcf/word" ]
          fleet.Shift.Fleet.results);
    tc "fleet JSON is byte-identical at -j1 and -j4" (fun () ->
        let render f = Shift.Results.to_string (Shift.Fleet.to_json f) in
        let j1 = render (Shift.Fleet.run ~domains:1 fleet_jobs) in
        let j4 = render (Shift.Fleet.run ~domains:4 fleet_jobs) in
        Util.check_string "serialised fleet" j1 j4);
    tc "fleet totals are the element-wise sum of the runs" (fun () ->
        let fleet = Shift.Fleet.run ~domains:2 fleet_jobs in
        let expect =
          Stats.total
            (List.filter_map
               (fun (r : Shift.Fleet.result) ->
                 match r.Shift.Fleet.outcome with
                 | Shift.Fleet.Finished report ->
                     Some report.Shift.Report.stats
                 | Shift.Fleet.Crashed _ -> None)
               fleet.Shift.Fleet.results)
        in
        Util.check_string "totals" (stats_sig expect)
          (stats_sig fleet.Shift.Fleet.stats));
  ]

let suites =
  [
    ("engine.differential", differential_tests);
    ("engine.smp", smp_slicing_tests);
    ("engine.fleet", fleet_tests);
  ]
