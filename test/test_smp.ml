(* Multi-threaded guests (the paper's future work, §4.4/§8): spawn and
   join, fetchadd-based ticket locks, taint flowing between threads
   through shared memory — and a demonstration of the very bitmap race
   the paper gives as the reason its prototype is single-threaded. *)

open Build
open Build.Infix
module Mode = Shift_compiler.Mode

let tc = Util.tc

let run_mt ?(mode = Mode.shift_word) ?quantum prog =
  Shift.Session.run_mt ?quantum ~fuel:50_000_000 ~mode prog

let basics_prog =
  {
    Ir.globals = [];
    funcs =
      [
        func "worker" ~params:[ "x" ] ~locals:[] [ ret (v "x" *: v "x") ];
        func "main" ~params:[] ~locals:[ scalar "t1"; scalar "t2" ]
          [
            set "t1" (call "sys_spawn" [ fnptr "worker"; i 5 ]);
            set "t2" (call "sys_spawn" [ fnptr "worker"; i 6 ]);
            ret (call "sys_join" [ v "t1" ] +: call "sys_join" [ v "t2" ]);
          ];
      ];
  }

let shared_counter_prog ~locked =
  let bump =
    if locked then
      [
        ecall "mutex_lock" [ v "lock" ];
        store64 (v "counter") (load64 (v "counter") +: i 1);
        ecall "mutex_unlock" [ v "lock" ];
      ]
    else [ store64 (v "counter") (load64 (v "counter") +: i 1) ]
  in
  {
    Ir.globals = [ global_zeros "counter" 8; global_zeros "lock" 16 ];
    funcs =
      [
        func "worker" ~params:[ "n" ] ~locals:[ scalar "k" ]
          (for_up "k" (i 0) (v "n") bump @ [ ret (i 0) ]);
        func "main" ~params:[] ~locals:[ scalar "t1"; scalar "t2" ]
          [
            set "t1" (call "sys_spawn" [ fnptr "worker"; i 200 ]);
            set "t2" (call "sys_spawn" [ fnptr "worker"; i 200 ]);
            Ir.Expr (call "sys_join" [ v "t1" ]);
            Ir.Expr (call "sys_join" [ v "t2" ]);
            ret (load64 (v "counter"));
          ];
      ];
  }

let basics_tests =
  [
    tc "spawn and join return thread results" (fun () ->
        Util.check_i64 "25+36" 61L (Util.exit_code (run_mt basics_prog)));
    tc "threads work under every instrumentation mode" (fun () ->
        List.iter
          (fun mode ->
            Util.check_i64 (Mode.to_string mode) 61L
              (Util.exit_code (run_mt ~mode basics_prog)))
          Util.all_modes);
    tc "spawn without SMP support fails gracefully" (fun () ->
        (* the single-threaded runner has no spawn hook *)
        let r = Util.run_prog ~mode:Mode.shift_word basics_prog in
        Util.check_bool "joins of -1 give -2" true
          (Util.exit_code r = -2L));
    tc "join of an unknown tid returns -1" (fun () ->
        let prog = Util.main_returning [ ret (call "sys_join" [ i 42 ]) ] in
        Util.check_i64 "-1" (-1L) (Util.exit_code (run_mt prog)));
    tc "unsynchronised increments lose updates" (fun () ->
        (* the classic read-modify-write race; quantum 7 interleaves
           mid-sequence deterministically *)
        let v = Util.exit_code (run_mt ~quantum:7 (shared_counter_prog ~locked:false)) in
        Util.check_bool (Printf.sprintf "lost updates (%Ld < 400)" v) true (v < 400L));
    tc "the fetchadd ticket lock makes them exact" (fun () ->
        Util.check_i64 "400" 400L
          (Util.exit_code (run_mt ~quantum:7 (shared_counter_prog ~locked:true))));
    tc "fetchadd returns the old value and is atomic" (fun () ->
        let prog =
          Util.main_returning ~locals:[ array "cell" 8; scalar "old" ]
            [
              store64 (v "cell") (i 40);
              set "old" (call "fetchadd" [ v "cell"; i 2 ]);
              ret ((v "old" *: i 1000) +: load64 (v "cell"));
            ]
        in
        Util.check_i64 "40 then 42" 40042L (Util.exit_code (run_mt prog)));
  ]

(* taint crossing threads through shared memory: the producer reads
   tainted input and publishes it; the consumer dereferences it *)
let cross_thread_prog =
  {
    Ir.globals = [ global_zeros "slot" 8; global_zeros "ready" 8 ];
    funcs =
      [
        func "producer" ~params:[ "unused" ] ~locals:[ array "buf" 16 ]
          [
            Ir.Expr (call "sys_read" [ i 0; v "buf"; i 8 ]);
            store64 (v "slot") (load64 (v "buf"));
            store64 (v "ready") (i 1);
            ret (i 0);
          ];
        func "main" ~params:[] ~locals:[ scalar "t"; scalar "p" ]
          [
            set "t" (call "sys_spawn" [ fnptr "producer"; i 0 ]);
            while_ (load64 (v "ready") ==: i 0) [];
            set "p" (load64 (v "slot"));
            Ir.Expr (call "sys_join" [ v "t" ]);
            ret (load64 (v "p"));
          ];
      ];
  }

let taint_tests =
  [
    tc "taint crosses threads through the shared bitmap" (fun () ->
        let payload =
          let b = Buffer.create 8 in
          Buffer.add_int64_le b (Shift_mem.Addr.in_region 1 0x10000L);
          Buffer.contents b
        in
        let r =
          Shift.Session.run_mt ~fuel:50_000_000 ~mode:Mode.shift_word
            ~setup:(fun w -> Shift_os.World.set_stdin w payload)
            cross_thread_prog
        in
        match r.Shift.Report.outcome with
        | Shift.Report.Alert a ->
            Alcotest.(check string) "L1 in the consumer" "L1" a.Shift_policy.Alert.policy
        | o -> Alcotest.failf "expected L1, got %a" Shift.Report.pp_outcome o);
  ]

(* The §4.4 hazard, demonstrated: two harts' bitmap read-modify-write
   sequences interleave on a shared bitmap byte and one update is lost.
   At word granularity one bitmap byte covers 64 bytes of data, so
   stores 32 bytes apart contend; at byte granularity the same stores
   use different bitmap bytes and stay correct. *)
let race_prog =
  {
    Ir.globals = [ global_zeros "shared" 64 ];
    funcs =
      [
        (* repeatedly store a tainted byte to shared[0] and immediately
           verify its tag.  A concurrent read-modify-write of another
           location sharing the bitmap byte preserves this bit — only a
           torn (raced) update can clear it, so any zero observed here
           is a lost tag *)
        func "tainter" ~params:[ "n" ]
          ~locals:[ array "src" 8; scalar "k"; scalar "x"; scalar "lost" ]
          ([ Ir.Expr (call "sys_taint_set" [ v "src"; i 8; i 1 ]); set "lost" (i 0) ]
          @ for_up "k" (i 0) (v "n")
              [
                set "x" (load64 (v "src"));
                (* tainted full-word store: sets the tag bit *)
                store64 (v "shared") (v "x");
                when_ (call "sys_taint_chk" [ v "shared"; i 1 ] ==: i 0)
                  [ set "lost" (v "lost" +: i 1) ];
                (* clean full-word store: clears it again, so the bit
                   toggles and every iteration reopens the race window *)
                store64 (v "shared") (i 0);
              ]
          @ [ ret (v "lost") ]);
        (* repeatedly store clean full words to shared[32]: at word
           granularity this RMWs the same bitmap byte *)
        func "cleaner" ~params:[ "n" ] ~locals:[ scalar "k" ]
          (for_up "k" (i 0) (v "n") [ store64 (v "shared" +: i 32) (v "k") ] @ [ ret (i 0) ]);
        func "main" ~params:[] ~locals:[ scalar "t1"; scalar "t2" ]
          [
            set "t1" (call "sys_spawn" [ fnptr "tainter"; i 300 ]);
            set "t2" (call "sys_spawn" [ fnptr "cleaner"; i 1200 ]);
            set "t1" (call "sys_join" [ v "t1" ]);
            Ir.Expr (call "sys_join" [ v "t2" ]);
            ret (v "t1");
          ];
      ];
  }

let race_tests =
  [
    tc "word-level bitmap updates race across harts (the paper's caveat)" (fun () ->
        (* small quanta split the instrumentation's bitmap RMW
           sequences; the schedules are deterministic, so sweep a few
           and require that some interleaving loses tags *)
        let losses =
          List.map
            (fun q -> Util.exit_code (run_mt ~quantum:q ~mode:Mode.shift_word race_prog))
            [ 1; 2; 3; 5; 7; 11; 13 ]
        in
        Util.check_bool
          (Printf.sprintf "some interleaving loses tags (%s)"
             (String.concat "," (List.map Int64.to_string losses)))
          true
          (List.exists (fun v -> v > 0L) losses));
    tc "byte-level tags use distinct bitmap bytes here and survive" (fun () ->
        let v = Util.exit_code (run_mt ~quantum:3 ~mode:Mode.shift_byte race_prog) in
        Util.check_i64 "no tag lost" 0L v);
    tc "without interleaving the word-level tags survive too" (fun () ->
        (* a huge quantum makes the threads effectively sequential *)
        let v = Util.exit_code (run_mt ~quantum:1_000_000 ~mode:Mode.shift_word race_prog) in
        Util.check_i64 "no tag lost" 0L v);
  ]

(* a worker that spins forever while main busy-waits in join *)
let runaway_prog =
  {
    Ir.globals = [];
    funcs =
      [
        func "worker" ~params:[ "x" ] ~locals:[]
          [ while_ (i 0 ==: i 0) []; ret (i 0) ];
        func "main" ~params:[] ~locals:[ scalar "t" ]
          [
            set "t" (call "sys_spawn" [ fnptr "worker"; i 0 ]);
            ret (call "sys_join" [ v "t" ]);
          ];
      ];
  }

let fuel_tests =
  [
    tc "fuel 0 times out before any instruction" (fun () ->
        let r = Shift.Session.run_mt ~fuel:0 ~mode:Mode.shift_word basics_prog in
        (match r.Shift.Report.outcome with
        | Shift.Report.Timeout -> ()
        | o -> Alcotest.failf "expected timeout, got %a" Shift.Report.pp_outcome o);
        Util.check_int "no instructions ran" 0
          r.Shift.Report.stats.Shift_machine.Stats.instructions);
    tc "fuel is a strict cap across harts" (fun () ->
        (* the engine charges every hart's steps against one budget and
           suspends exactly at the boundary *)
        let r =
          Shift.Session.run_mt ~fuel:1000 ~quantum:7 ~mode:Mode.shift_word
            runaway_prog
        in
        (match r.Shift.Report.outcome with
        | Shift.Report.Timeout -> ()
        | o -> Alcotest.failf "expected timeout, got %a" Shift.Report.pp_outcome o);
        Util.check_bool "at most 1000 instructions" true
          (r.Shift.Report.stats.Shift_machine.Stats.instructions <= 1000));
    tc "spawned-hart work shows up in the report" (fun () ->
        (* 2x200 locked increments happen on worker harts; the report
           used to show only hart 0's counters *)
        let r = run_mt ~quantum:7 (shared_counter_prog ~locked:true) in
        Util.check_i64 "exact count" 400L (Util.exit_code r);
        Util.check_bool "worker stores aggregated" true
          (r.Shift.Report.stats.Shift_machine.Stats.stores >= 400));
  ]

let suites =
  [
    ("smp.basics", basics_tests);
    ("smp.taint", taint_tests);
    ("smp.bitmap-race", race_tests);
    ("smp.fuel", fuel_tests);
  ]
