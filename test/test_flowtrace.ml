(* The Flowtrace subsystem: provenance shadow map, CPU hooks, chains,
   JSONL export, and the tracing-off transparency guarantee. *)

open Shift_isa
open Shift_mem
module Cpu = Shift_machine.Cpu
module Flowtrace = Shift_machine.Flowtrace

let tc = Util.tc
let a1 off = Addr.in_region 1 off

(* ---------------- the provenance shadow map ------------------------- *)

let prov_tests =
  [
    tc "reads of missing pages return 0 without allocating" (fun () ->
        let p = Provenance.create () in
        Util.check_int "get" 0 (Provenance.get p (a1 0x5000L));
        Util.check_int "first_id" 0
          (Provenance.first_id p ~addr:(a1 0x5000L) ~len:64);
        Util.check_int "pages" 0 (Provenance.allocated_pages p));
    tc "set / get roundtrip" (fun () ->
        let p = Provenance.create () in
        Provenance.set p (a1 0x5003L) 42;
        Util.check_int "hit" 42 (Provenance.get p (a1 0x5003L));
        Util.check_int "miss" 0 (Provenance.get p (a1 0x5004L));
        Util.check_int "pages" 1 (Provenance.allocated_pages p));
    tc "set_range crosses a page boundary" (fun () ->
        let p = Provenance.create () in
        (* 8 bytes before the 4 KiB boundary, 8 after *)
        Provenance.set_range p ~addr:(a1 0x1FF8L) ~len:16 ~id:7;
        for i = 0 to 15 do
          Util.check_int "in range" 7
            (Provenance.get p (a1 (Int64.of_int (0x1FF8 + i))))
        done;
        Util.check_int "before" 0 (Provenance.get p (a1 0x1FF7L));
        Util.check_int "after" 0 (Provenance.get p (a1 0x2008L));
        Util.check_int "pages" 2 (Provenance.allocated_pages p));
    tc "set_span assigns consecutive ids" (fun () ->
        let p = Provenance.create () in
        Provenance.set_span p ~addr:(a1 0x1FFEL) ~len:4 ~first:10;
        Util.check_int "b0" 10 (Provenance.get p (a1 0x1FFEL));
        Util.check_int "b1" 11 (Provenance.get p (a1 0x1FFFL));
        Util.check_int "b2" 12 (Provenance.get p (a1 0x2000L));
        Util.check_int "b3" 13 (Provenance.get p (a1 0x2001L)));
    tc "first_id finds the first non-zero id" (fun () ->
        let p = Provenance.create () in
        Provenance.set p (a1 0x3005L) 9;
        Provenance.set p (a1 0x3007L) 4;
        Util.check_int "first" 9 (Provenance.first_id p ~addr:(a1 0x3000L) ~len:16);
        Util.check_int "skips zeros" 4
          (Provenance.first_id p ~addr:(a1 0x3006L) ~len:4));
    tc "first_id skips missing pages" (fun () ->
        let p = Provenance.create () in
        Provenance.set p (a1 0x2001L) 5;
        (* range starts on a never-written page, ends on the written one *)
        Util.check_int "across" 5
          (Provenance.first_id p ~addr:(a1 0x1FF0L) ~len:32);
        Util.check_int "pages" 1 (Provenance.allocated_pages p));
    tc "clearing an unallocated page is free" (fun () ->
        let p = Provenance.create () in
        Provenance.set_range p ~addr:(a1 0x8000L) ~len:4096 ~id:0;
        Util.check_int "pages" 0 (Provenance.allocated_pages p));
    tc "overwrite with 0 clears" (fun () ->
        let p = Provenance.create () in
        Provenance.set_range p ~addr:(a1 0x4000L) ~len:8 ~id:3;
        Provenance.set_range p ~addr:(a1 0x4002L) ~len:4 ~id:0;
        Util.check_int "left" 3 (Provenance.get p (a1 0x4001L));
        Util.check_int "cleared" 0 (Provenance.get p (a1 0x4003L));
        Util.check_int "right" 3 (Provenance.get p (a1 0x4006L)));
  ]

(* ---------------- CPU hooks on a hand-built program ----------------- *)

(* the Figure-5 lifecycle: speculative-load birth, add propagation, tnat
   check, xor purge, tnat again (clean) *)
let lifecycle =
  let m ?qp op = Program.I (Instr.mk ?qp op) in
  Program.assemble
    [
      m (Instr.Movi (5, Int64.shift_left 1L 45));
      m (Instr.Ld { width = Instr.W8; dst = 5; addr = 5; spec = true; fill = false });
      m (Instr.Movi (6, 41L));
      m (Instr.Arith (Instr.Add, 7, 6, Instr.R 5));
      m (Instr.Tnat { pt = 1; pf = 2; src = 7 });
      m (Instr.Arith (Instr.Xor, 7, 7, Instr.R 7));
      m (Instr.Tnat { pt = 3; pf = 4; src = 7 });
      m Instr.Halt;
    ]

let run_lifecycle options =
  let cpu = Cpu.create lifecycle in
  cpu.Cpu.flowtrace <- Flowtrace.create ~options ();
  (match Cpu.run cpu with
  | Cpu.Exited _ -> ()
  | _ -> Alcotest.fail "lifecycle program should halt");
  cpu.Cpu.flowtrace

let kinds ft =
  List.map (fun (e : Flowtrace.event) -> Flowtrace.kind_of e.ev)
    (Flowtrace.events ft)

let hook_tests =
  [
    tc "NaT lifecycle emits birth / prop / check / purge" (fun () ->
        let ft = run_lifecycle Flowtrace.default_options in
        Alcotest.(check (list string))
          "event kinds"
          [ "birth"; "prop"; "check"; "purge" ]
          (List.map Flowtrace.kind_to_string (kinds ft));
        let s = Flowtrace.summary ft in
        Util.check_int "births" 1 s.Flowtrace.s_births;
        Util.check_int "propagations" 1 s.Flowtrace.s_propagations;
        Util.check_int "purges" 1 s.Flowtrace.s_purges;
        (* both tnats count, only the tainted one emits an event *)
        Util.check_int "checks" 2 s.Flowtrace.s_checks;
        Util.check_int "max depth" 2 s.Flowtrace.s_max_depth;
        Util.check_int "dropped" 0 s.Flowtrace.s_dropped;
        Util.check_int "sources" 1 s.Flowtrace.s_sources);
    tc "speculative births are interned once per ip" (fun () ->
        let ft = run_lifecycle Flowtrace.default_options in
        match Flowtrace.sources ft with
        | [ s ] ->
            Util.check_string "channel" "spec" s.Flowtrace.channel;
            Util.check_int "sid" 1 s.Flowtrace.sid
        | l -> Alcotest.failf "expected 1 source, got %d" (List.length l));
    tc "kind filter keeps only the requested events" (fun () ->
        let ft =
          run_lifecycle
            { Flowtrace.capacity = 64; only = Some [ Flowtrace.Birth; Flowtrace.Check ] }
        in
        Alcotest.(check (list string))
          "filtered" [ "birth"; "check" ]
          (List.map Flowtrace.kind_to_string (kinds ft));
        (* counters are not filtered *)
        Util.check_int "propagations still counted" 1
          (Flowtrace.summary ft).Flowtrace.s_propagations);
    tc "a tiny ring drops the oldest events" (fun () ->
        let ft = run_lifecycle { Flowtrace.capacity = 2; only = None } in
        Util.check_int "dropped" 2 (Flowtrace.dropped ft);
        Alcotest.(check (list string))
          "newest survive" [ "check"; "purge" ]
          (List.map Flowtrace.kind_to_string (kinds ft)));
    tc "chain collapses a consecutive input span" (fun () ->
        let ft = Flowtrace.create () in
        Flowtrace.on_input ft ~ip:0 ~channel:"socket" ~origin:"sys_recv"
          ~offset:100 ~addr:(a1 0x6000L) ~len:8 ~tainted:true;
        Alcotest.(check (list string))
          "one hop"
          [ "input socket[102..105] via sys_recv" ]
          (Flowtrace.chain ft ~addr:(a1 0x6000L) ~positions:[ 2; 3; 4; 5 ]));
    tc "clean input clears stale provenance" (fun () ->
        let ft = Flowtrace.create () in
        Flowtrace.on_input ft ~ip:0 ~channel:"socket" ~origin:"sys_recv"
          ~offset:0 ~addr:(a1 0x6000L) ~len:8 ~tainted:true;
        Flowtrace.on_input ft ~ip:0 ~channel:"file:f" ~origin:"sys_read"
          ~offset:0 ~addr:(a1 0x6000L) ~len:8 ~tainted:false;
        Util.check_int "cleared" 0 (Flowtrace.byte_id ft (a1 0x6002L)));
  ]

(* ---------------- end to end: traced attack sessions ---------------- *)

let tar () =
  match Shift_attacks.Attacks.find "gnu tar" with
  | Some c -> c
  | None -> Alcotest.fail "tar case missing"

let run_tar ?trace () =
  let c = tar () in
  let open Shift_attacks.Attack_case in
  Shift.Session.run ~policy:c.policy ~setup:c.exploit ?trace
    ~mode:Shift_compiler.Mode.shift_byte c.program

let traced_tar options =
  let c = tar () in
  let open Shift_attacks.Attack_case in
  let config = Shift.Session.Config.make ~policy:c.policy ~setup:c.exploit ~trace:options () in
  let live =
    Shift.Session.start ~config
      (Shift.Session.build ~mode:Shift_compiler.Mode.shift_byte c.program)
  in
  (match Shift.Session.advance live ~budget:max_int with
  | `Finished _ | `Yielded -> ());
  live

let session_tests =
  [
    tc "tar alert carries the input-byte provenance chain" (fun () ->
        let r = run_tar ~trace:Flowtrace.default_options () in
        match Shift.Report.alert r with
        | Some a ->
            Alcotest.(check (list string))
              "chain"
              [
                "input file:archive.tar[28..38] via sys_read";
                "sink H1 via sys_open";
              ]
              a.Shift.Alert.chain
        | None -> Alcotest.fail "expected an alert");
    tc "tracing off: counters identical, no flow, no chain" (fun () ->
        let plain = run_tar () in
        let traced = run_tar ~trace:Flowtrace.default_options () in
        let c (r : Shift.Report.t) =
          let s = r.stats in
          Shift_machine.Stats.
            (s.instructions, s.cycles, s.loads, s.stores)
        in
        Util.check_bool "counters" true (c plain = c traced);
        Util.check_bool "no flow" true (plain.Shift.Report.flow = None);
        Util.check_bool "flow" true (traced.Shift.Report.flow <> None);
        (match Shift.Report.alert plain with
        | Some a -> Util.check_bool "no chain" true (a.Shift.Alert.chain = [])
        | None -> Alcotest.fail "expected an alert"));
    tc "JSONL export is deterministic" (fun () ->
        let doc () =
          let live = traced_tar Flowtrace.default_options in
          let report = Shift.Session.report live in
          match Shift.Session.flowtrace live with
          | Some ft -> Shift.Flow.jsonl ~outcome:report.Shift.Report.outcome ft
          | None -> Alcotest.fail "trace missing"
        in
        Util.check_string "byte-identical" (doc ()) (doc ()));
    tc "JSONL lines are tagged and versioned" (fun () ->
        let live = traced_tar Flowtrace.default_options in
        (match Shift.Session.flowtrace live with
        | Some ft ->
            let lines =
              String.split_on_char '\n' (Shift.Flow.jsonl ft)
              |> List.filter (fun l -> l <> "")
            in
            let meta = List.hd lines in
            Util.check_bool "meta line" true
              (Str_exists.contains meta "\"line\":\"meta\"");
            Util.check_bool "versioned" true
              (Str_exists.contains meta
                 (Printf.sprintf "\"v\":%d" Shift.Results.schema_version));
            Util.check_bool "summary line" true
              (List.exists
                 (fun l -> Str_exists.contains l "\"line\":\"summary\"")
                 lines)
        | None -> Alcotest.fail "trace missing"));
  ]

let suites =
  [
    ("flowtrace.provenance", prov_tests);
    ("flowtrace.hooks", hook_tests);
    ("flowtrace.session", session_tests);
  ]
