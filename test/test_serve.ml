(* The resident service: the wire protocol's full grammar (no daemon
   needed — Protocol is pure data), the scheduler's determinism under
   slicing, migration and crash-retry, and the socket server end to end
   over a real Unix-domain socket: version negotiation, protocol
   errors, client disconnect mid-job, drain with in-flight sessions,
   and the headline invariant — a served (and migrated) report is
   byte-identical to a solo run's. *)

module Mode = Shift_compiler.Mode
module Policy = Shift_policy.Policy
module Spec = Shift_workloads.Spec
module Protocol = Shift.Protocol
module Serve = Shift.Serve
module Sched = Shift.Serve.Scheduler

let tc = Util.tc

let report_json (r : Shift.Report.t) =
  Shift.Results.to_string (Shift.Results.of_report r)

let kernel name =
  match Spec.find name with
  | Some k -> k
  | None -> Alcotest.failf "no %s kernel" name

let kernel_config k =
  Shift.Session.Config.make ~policy:Policy.default
    ~setup:(Spec.setup ~size:256 ~tainted:true k)
    ()

let kernel_job ?deadline name =
  let k = kernel name in
  Shift.Fleet.job ?deadline ~name ~config:(kernel_config k) (fun () ->
      Shift.Session.build ~mode:Mode.shift_word k.Spec.program)

let solo_json name =
  let k = kernel name in
  report_json
    (Shift.Session.exec ~config:(kernel_config k)
       (Shift.Session.build ~mode:Mode.shift_word k.Spec.program))

(* ---------- the wire protocol ---------- *)

let parse_error line =
  match Protocol.of_line line with
  | Error e -> e
  | Ok _ -> Alcotest.failf "line %S parsed" line

let protocol_tests =
  [
    tc "hello round-trips and carries the version" (fun () ->
        match Protocol.hello_of_json Protocol.hello with
        | Ok v -> Util.check_int "version" Protocol.version v
        | Error e -> Alcotest.fail e);
    tc "a non-JSON line is bad_json" (fun () ->
        Util.check_string "code" "bad_json"
          (Protocol.error_code_to_string (parse_error "not json").Protocol.code));
    tc "an unknown kind is refused and keeps the id" (fun () ->
        let e = parse_error {|{"id":"x7","kind":"frobnicate"}|} in
        Util.check_string "code" "unknown_kind"
          (Protocol.error_code_to_string e.Protocol.code);
        Util.check_string "id recovered" "x7"
          (Option.value ~default:"?" e.Protocol.error_id));
    tc "a request without a kind is bad_request" (fun () ->
        Util.check_string "code" "bad_request"
          (Protocol.error_code_to_string
             (parse_error {|{"id":"a"}|}).Protocol.code));
    tc "a line beyond max_bytes is oversized" (fun () ->
        let line = {|{"kind":"run","kernel":"gzip"}|} in
        match Protocol.of_line ~max_bytes:8 line with
        | Error { Protocol.code = Protocol.Oversized; _ } -> ()
        | Error e -> Alcotest.fail (Protocol.error_code_to_string e.Protocol.code)
        | Ok _ -> Alcotest.fail "oversized line parsed");
    tc "run requires a kernel; field types are checked" (fun () ->
        let missing = parse_error {|{"kind":"run"}|} in
        Util.check_string "code" "bad_request"
          (Protocol.error_code_to_string missing.Protocol.code);
        let ill_typed = parse_error {|{"kind":"run","kernel":"gzip","size":"big"}|} in
        Util.check_string "code" "bad_request"
          (Protocol.error_code_to_string ill_typed.Protocol.code);
        let negative = parse_error {|{"kind":"run","kernel":"gzip","size":-4}|} in
        Util.check_string "code" "bad_request"
          (Protocol.error_code_to_string negative.Protocol.code));
    tc "a bad mode name is bad_request" (fun () ->
        Util.check_string "code" "bad_request"
          (Protocol.error_code_to_string
             (parse_error {|{"kind":"run","kernel":"gzip","mode":"sideways"}|})
               .Protocol.code));
    tc "every request kind round-trips through its JSON" (fun () ->
        let envs =
          [
            {
              Protocol.id = Some "r1";
              tenant = Some "t";
              deadline = Some 1000;
              migrate_every = Some 3;
              request =
                Protocol.Run
                  {
                    kernel = "gzip";
                    mode = Mode.shift_byte;
                    size = Some 64;
                    safe = true;
                    superblocks = false;
                    backend = Shift.Backend.Coproc;
                  };
            };
            {
              Protocol.id = Some "a1";
              tenant = None;
              deadline = None;
              migrate_every = None;
              request =
                Protocol.Attack
                  {
                    case = "gnu tar";
                    mode = Mode.shift_word;
                    benign = true;
                    superblocks = true;
                    backend = Shift.Backend.Off;
                  };
            };
            {
              Protocol.id = Some "t1";
              tenant = None;
              deadline = None;
              migrate_every = None;
              request =
                Protocol.Trace
                  {
                    image = "qwikiwiki";
                    mode = Mode.shift_word;
                    benign = false;
                    ring = 128;
                    only = Some "birth,sink";
                    superblocks = true;
                    backend = Shift.Backend.Nat;
                  };
            };
            {
              Protocol.id = Some "b1";
              tenant = None;
              deadline = None;
              migrate_every = None;
              request =
                Protocol.Batch
                  {
                    kernels = [ "gzip"; "mcf" ];
                    mode = Mode.shift_word;
                    size = None;
                    safe = false;
                    retries = 2;
                    superblocks = true;
                    backend = Shift.Backend.Nat;
                  };
            };
            {
              Protocol.id = None;
              tenant = None;
              deadline = None;
              migrate_every = None;
              request = Protocol.Status;
            };
          ]
        in
        List.iter
          (fun env ->
            match Protocol.request_of_json (Protocol.request_to_json env) with
            | Ok back ->
                Util.check_bool
                  ("round-trip of " ^ Protocol.kind_of_request env.Protocol.request)
                  true (env = back)
            | Error e -> Alcotest.fail e.Protocol.message)
          envs);
    tc "every mode spelling Mode.to_string emits parses back" (fun () ->
        List.iter
          (fun m ->
            match Mode.of_string (Mode.to_string m) with
            | Ok back -> Util.check_bool (Mode.to_string m) true (m = back)
            | Error e -> Alcotest.fail e)
          Util.all_modes;
        List.iter
          (fun (s, m) ->
            match Mode.of_string s with
            | Ok back -> Util.check_bool s true (m = back)
            | Error e -> Alcotest.fail e)
          [
            ("none", Mode.Uninstrumented);
            ("word", Mode.shift_word);
            ("byte", Mode.shift_byte);
            ("dbt", Mode.Software_dbt { granularity = Shift_mem.Granularity.Word });
          ];
        match Mode.of_string "word+bogus" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "word+bogus parsed");
    tc "responses carry id and ok; to_line is one line" (fun () ->
        let ok = Protocol.ok_response ~tenant:"t" ~id:"j1" (Shift.Results.Int 3) in
        Util.check_string "id" "j1" (Option.get (Protocol.response_id ok));
        Util.check_bool "ok" true (Protocol.response_ok ok);
        let err =
          Protocol.error_response
            { Protocol.code = Protocol.Draining; message = "m"; error_id = Some "j2" }
        in
        Util.check_bool "not ok" false (Protocol.response_ok err);
        Util.check_string "error id" "j2" (Option.get (Protocol.response_id err));
        Util.check_bool "single line" false
          (String.contains (Protocol.to_line ok) '\n'));
    tc "the kind and error-code catalogues are complete" (fun () ->
        Util.check_int "kinds" 7 (List.length Protocol.kinds);
        List.iter
          (fun env ->
            Util.check_bool "kind listed" true
              (List.mem (Protocol.kind_of_request env) Protocol.kinds))
          [ Protocol.Status; Protocol.Drain ];
        Util.check_int "codes" 8 (List.length Protocol.error_codes));
  ]

(* ---------- the scheduler ---------- *)

let submit_and_collect sched specs =
  List.iter (fun (id, mig, retries, job) ->
      Sched.submit sched ?migrate_every:mig ~retries ~id job)
    specs;
  Sched.drain sched;
  let finished = Sched.take_finished sched in
  Sched.shutdown sched;
  finished

let outcome_of finished id =
  match List.find_opt (fun (d : Sched.done_job) -> d.Sched.job = id) finished with
  | Some d -> d
  | None -> Alcotest.failf "job %s never finished" id

let scheduler_tests =
  [
    tc "a scheduled session's report equals the solo run's" (fun () ->
        let finished =
          submit_and_collect (Sched.create ~workers:2 ())
            [ ("g", None, 0, kernel_job "gzip") ]
        in
        match (outcome_of finished "g").Sched.outcome with
        | Shift.Fleet.Finished r ->
            Util.check_string "byte-identical" (solo_json "gzip") (report_json r)
        | Shift.Fleet.Crashed c -> Alcotest.fail c.Shift.Fleet.exn);
    tc "migration between workers never changes the report" (fun () ->
        let finished =
          submit_and_collect (Sched.create ~workers:3 ())
            [
              ("g", Some 2, 0, kernel_job "gzip");
              ("m", Some 3, 0, kernel_job "mcf");
            ]
        in
        let g = outcome_of finished "g" and m = outcome_of finished "m" in
        Util.check_bool "gzip migrated" true (g.Sched.migrations > 0);
        Util.check_bool "mcf migrated" true (m.Sched.migrations > 0);
        (match (g.Sched.outcome, m.Sched.outcome) with
        | Shift.Fleet.Finished rg, Shift.Fleet.Finished rm ->
            Util.check_string "gzip byte-identical" (solo_json "gzip")
              (report_json rg);
            Util.check_string "mcf byte-identical" (solo_json "mcf")
              (report_json rm)
        | _ -> Alcotest.fail "a job crashed"));
    tc "a crashing job is retried then contained" (fun () ->
        let poisoned =
          Shift.Fleet.job ~name:"poisoned" (fun () -> failwith "bad image")
        in
        let finished =
          submit_and_collect (Sched.create ~workers:1 ())
            [ ("p", None, 2, poisoned); ("g", None, 0, kernel_job "gzip") ]
        in
        (match (outcome_of finished "p").Sched.outcome with
        | Shift.Fleet.Crashed c ->
            Util.check_int "attempts" 3 c.Shift.Fleet.attempts
        | Shift.Fleet.Finished _ -> Alcotest.fail "poisoned job finished");
        match (outcome_of finished "g").Sched.outcome with
        | Shift.Fleet.Finished _ -> ()
        | Shift.Fleet.Crashed _ -> Alcotest.fail "sibling disturbed by the crash");
    tc "a submit-time deadline times the session out" (fun () ->
        let finished =
          submit_and_collect (Sched.create ~workers:1 ())
            [ ("slow", None, 0, Shift.Fleet.with_deadline 1000 (kernel_job "gzip")) ]
        in
        match (outcome_of finished "slow").Sched.outcome with
        | Shift.Fleet.Finished { Shift.Report.outcome = Shift.Report.Timeout; _ } ->
            ()
        | _ -> Alcotest.fail "expected a timeout");
    tc "drain waits for every in-flight session" (fun () ->
        let sched = Sched.create ~workers:2 () in
        List.iter
          (fun i ->
            Sched.submit sched ~migrate_every:2 ~id:(string_of_int i)
              (kernel_job "gzip"))
          [ 1; 2; 3; 4 ];
        Sched.drain sched;
        Util.check_int "in_flight after drain" 0 (Sched.in_flight sched);
        Util.check_int "all finished" 4 (List.length (Sched.take_finished sched));
        Util.check_int "completed stat" 4
          (List.assoc "completed" (Sched.stats sched));
        Sched.shutdown sched);
    tc "parked snapshots spill to the checkpoint dir and are reaped" (fun () ->
        let dir = Filename.temp_file "serve-ckpt" "" in
        Sys.remove dir;
        let sched = Sched.create ~workers:1 ~checkpoint_dir:dir () in
        Sched.submit sched ~migrate_every:1 ~id:"g" (kernel_job "gzip");
        Sched.drain sched;
        Sched.shutdown sched;
        Util.check_bool "dir created" true (Sys.file_exists dir);
        Util.check_int "spill reaped on completion" 0
          (Array.length (Sys.readdir dir)));
  ]

(* ---------- the server, end to end over a real socket ---------- *)

let with_server ?(config_of = fun c -> c) f =
  let path = Filename.temp_file "shiftc-serve" ".sock" in
  Sys.remove path;
  let config =
    config_of
      { Serve.Server.default_config with Serve.Server.socket_path = path; workers = 2 }
  in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Server.run ~catalog:Shift_catalog.Catalog.standard config)
  in
  let rec connect tries =
    match Serve.Client.connect path with
    | Ok c -> c
    | Error e ->
        if tries = 0 then Alcotest.failf "cannot reach the daemon: %s" e
        else begin
          Unix.sleepf 0.05;
          connect (tries - 1)
        end
  in
  let finally () =
    (* make sure the daemon exits even if the test failed mid-way *)
    (match Serve.Client.connect path with
    | Ok c ->
        ignore
          (Serve.Client.request c
             {
               Protocol.id = Some "cleanup-drain";
               tenant = None;
               deadline = None;
               migrate_every = None;
               request = Protocol.Drain;
             });
        Serve.Client.close c
    | Error _ -> ());
    Domain.join daemon
  in
  Fun.protect ~finally (fun () -> f (connect 100) path)

let plain_env ?id ?migrate_every request =
  { Protocol.id; tenant = None; deadline = None; migrate_every; request }

let request_exn c env =
  match Serve.Client.request c env with
  | Ok json -> json
  | Error e -> Alcotest.fail e

let report_of_response json =
  match Shift.Results.member "result" json with
  | Some result -> (
      match Shift.Results.member "report" result with
      | Some report -> Shift.Results.to_string report
      | None -> Alcotest.fail "response without a report")
  | None -> Alcotest.failf "not an ok response: %s" (Protocol.to_line json)

let error_code_of json =
  match Shift.Results.member "error" json with
  | Some err -> (
      match Shift.Results.member "code" err with
      | Some (Shift.Results.String c) -> c
      | _ -> Alcotest.fail "error without a code")
  | None -> Alcotest.failf "not an error response: %s" (Protocol.to_line json)

let server_tests =
  [
    tc "a served and a migrated run are byte-identical to solo" (fun () ->
        with_server (fun c _path ->
            let run id migrate_every =
              report_of_response
                (request_exn c
                   (plain_env ~id ?migrate_every
                      (Protocol.Run
                         {
                           kernel = "gzip";
                           mode = Mode.shift_word;
                           size = Some 256;
                           safe = false;
                           superblocks = true;
                           backend = Shift.Backend.Nat;
                         })))
            in
            let solo = solo_json "gzip" in
            Util.check_string "served" solo (run "s" None);
            Util.check_string "migrated" solo (run "m" (Some 2))));
    tc "a wrong hello version is refused and the connection closed" (fun () ->
        with_server (fun c path ->
            (* [c] holds the daemon open; hand-shake a second, bad client *)
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX path);
            let line = {|{"proto_version":99}|} ^ "\n" in
            ignore (Unix.write_substring fd line 0 (String.length line));
            let buf = Bytes.create 4096 in
            let n = Unix.read fd buf 0 4096 in
            let response = Bytes.sub_string buf 0 n in
            Util.check_bool "refused" true
              (Str_exists.contains response "unsupported_version");
            Util.check_int "then closed" 0 (Unix.read fd buf 0 4096);
            Unix.close fd;
            ignore (request_exn c (plain_env ~id:"st" Protocol.Status))));
    tc "protocol errors answer without killing the connection" (fun () ->
        with_server (fun c _path ->
            (match Serve.Client.send_line c "}{ nonsense" with
            | Ok () -> ()
            | Error e -> Alcotest.fail e);
            (match Serve.Client.read_line c with
            | Some line ->
                Util.check_bool "bad_json" true (Str_exists.contains line "bad_json")
            | None -> Alcotest.fail "no error response");
            let unknown =
              request_exn c
                (plain_env ~id:"u"
                   (Protocol.Run
                      {
                        kernel = "no-such-kernel";
                        mode = Mode.shift_word;
                        size = None;
                        safe = false;
                        superblocks = true;
                        backend = Shift.Backend.Nat;
                      }))
            in
            Util.check_string "unknown_name" "unknown_name" (error_code_of unknown);
            let idless =
              request_exn c
                (plain_env
                   (Protocol.Run
                      {
                        kernel = "gzip";
                        mode = Mode.shift_word;
                        size = None;
                        safe = false;
                        superblocks = true;
                        backend = Shift.Backend.Nat;
                      }))
            in
            Util.check_string "id required" "bad_request" (error_code_of idless);
            (* the connection still works *)
            ignore (request_exn c (plain_env ~id:"st" Protocol.Status))));
    tc "a client disconnecting mid-job never disturbs the job" (fun () ->
        with_server (fun c path ->
            (* second client submits a job and vanishes immediately *)
            (match Serve.Client.connect path with
            | Error e -> Alcotest.fail e
            | Ok c2 ->
                (match
                   Serve.Client.send_line c2
                     (Protocol.to_line
                        (Protocol.request_to_json
                           (plain_env ~id:"orphan" ~migrate_every:2
                              (Protocol.Run
                                 {
                                   kernel = "gzip";
                                   mode = Mode.shift_word;
                                   size = Some 256;
                                   safe = false;
                                   superblocks = true;
                                   backend = Shift.Backend.Nat;
                                 }))))
                 with
                | Ok () -> ()
                | Error e -> Alcotest.fail e);
                Serve.Client.close c2);
            (* the server must stay up and complete the orphaned job;
               its result is simply dropped *)
            let rec wait tries =
              if tries = 0 then Alcotest.fail "orphaned job never completed"
              else
                let status =
                  request_exn c (plain_env ~id:"st" Protocol.Status)
                in
                let counter name =
                  match Shift.Results.member "result" status with
                  | Some r -> (
                      match Shift.Results.member name r with
                      | Some (Shift.Results.Int n) -> n
                      | _ -> Alcotest.failf "status without %s" name)
                  | None -> Alcotest.fail "status refused"
                in
                if counter "completed" >= 1 && counter "in_flight" = 0 then ()
                else begin
                  Unix.sleepf 0.05;
                  wait (tries - 1)
                end
            in
            wait 200));
    tc "drain with in-flight sessions finishes them first" (fun () ->
        with_server (fun c _path ->
            (* submit a job, then drain, without reading in between: the
               job's response must arrive before the drain's *)
            let send env =
              match
                Serve.Client.send_line c
                  (Protocol.to_line (Protocol.request_to_json env))
              with
              | Ok () -> ()
              | Error e -> Alcotest.fail e
            in
            send
              (plain_env ~id:"slow" ~migrate_every:2
                 (Protocol.Run
                    {
                      kernel = "mcf";
                      mode = Mode.shift_word;
                      size = Some 256;
                      safe = false;
                      superblocks = true;
                      backend = Shift.Backend.Nat;
                    }));
            send (plain_env ~id:"bye" Protocol.Drain);
            let next () =
              match Serve.Client.read_line c with
              | Some line -> (
                  match Shift.Results.of_string line with
                  | Ok json -> json
                  | Error e -> Alcotest.fail e)
              | None -> Alcotest.fail "connection closed early"
            in
            let first = next () in
            Util.check_string "job responds before the drain" "slow"
              (Option.value ~default:"?" (Protocol.response_id first));
            Util.check_string "in-flight job byte-identical" (solo_json "mcf")
              (report_of_response first);
            let second = next () in
            Util.check_string "then the drain completes" "bye"
              (Option.value ~default:"?" (Protocol.response_id second));
            match Shift.Results.member "result" second with
            | Some result -> (
                match Shift.Results.member "completed" result with
                | Some (Shift.Results.Int n) ->
                    Util.check_bool "drain counted the job" true (n >= 1)
                | _ -> Alcotest.fail "drain result without completed count")
            | None -> Alcotest.failf "drain failed: %s" (Protocol.to_line second)));
    tc "a draining server refuses new jobs" (fun () ->
        with_server (fun c path ->
            (* keep a job in flight so the drain parks instead of
               completing instantly, then a late job must be refused; a
               big input keeps the job running well past the drain *)
            (match
               Serve.Client.send_line c
                 (Protocol.to_line
                    (Protocol.request_to_json
                       (plain_env ~id:"slow" ~migrate_every:2
                          (Protocol.Run
                             {
                               kernel = "gzip";
                               mode = Mode.shift_word;
                               size = Some 16384;
                               safe = false;
                               superblocks = true;
                               backend = Shift.Backend.Nat;
                             }))))
             with
            | Ok () -> ()
            | Error e -> Alcotest.fail e);
            match Serve.Client.connect path with
            | Error e -> Alcotest.fail e
            | Ok c2 ->
                (match
                   Serve.Client.send_line c2
                     (Protocol.to_line
                        (Protocol.request_to_json
                           (plain_env ~id:"bye" Protocol.Drain)))
                 with
                | Ok () -> ()
                | Error e -> Alcotest.fail e);
                Unix.sleepf 0.05;
                let refused =
                  request_exn c
                    (plain_env ~id:"late"
                       (Protocol.Run
                          {
                            kernel = "gzip";
                            mode = Mode.shift_word;
                            size = None;
                            safe = false;
                            superblocks = true;
                            backend = Shift.Backend.Nat;
                          }))
                in
                Util.check_string "draining" "draining" (error_code_of refused);
                Serve.Client.close c2));
  ]

let suites =
  [
    ("serve.protocol", protocol_tests);
    ("serve.scheduler", scheduler_tests);
    ("serve.server", server_tests);
  ]
