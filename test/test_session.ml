open Build
open Build.Infix
module Mode = Shift_compiler.Mode
module Policy = Shift_policy.Policy

let tc = Util.tc

(* End-to-end detection: a program that loads through a pointer value it
   obtained from tainted input.  Under SHIFT the pointer register
   carries a NaT bit and the dereference trips policy L1; uninstrumented
   it sails through. *)
let tainted_pointer_prog =
  Util.main_returning ~locals:[ array "input" 16; scalar "p" ]
    [
      (* a "network-supplied" pointer value *)
      store64 (v "input") (i64 (Shift_mem.Addr.in_region 1 0x10000L));
      Ir.Expr (call "sys_taint_set" [ v "input"; i 8; i 1 ]);
      set "p" (load64 (v "input"));
      ret (load64 (v "p"));
    ]

let tainted_store_prog =
  Util.main_returning ~locals:[ array "input" 16; scalar "p" ]
    [
      store64 (v "input") (i64 (Shift_mem.Addr.in_region 1 0x10000L));
      Ir.Expr (call "sys_taint_set" [ v "input"; i 8; i 1 ]);
      set "p" (load64 (v "input"));
      store64 (v "p") (i 999);
      ret (i 0);
    ]

let expect_alert msg policy r =
  match r.Shift.Report.outcome with
  | Shift.Report.Alert a -> Alcotest.(check string) msg policy a.Shift_policy.Alert.policy
  | o -> Alcotest.failf "%s: expected alert, got %a" msg Shift.Report.pp_outcome o

let detection_tests =
  [
    tc "tainted pointer dereference raises L1 (shift-word)" (fun () ->
        expect_alert "L1" "L1" (Util.run_prog ~mode:Mode.shift_word tainted_pointer_prog));
    tc "tainted pointer dereference raises L1 (shift-byte)" (fun () ->
        expect_alert "L1" "L1" (Util.run_prog ~mode:Mode.shift_byte tainted_pointer_prog));
    tc "tainted store address raises L2" (fun () ->
        expect_alert "L2" "L2" (Util.run_prog ~mode:Mode.shift_word tainted_store_prog));
    tc "software DBT also detects the dereference" (fun () ->
        expect_alert "L1" "L1"
          (Util.run_prog
             ~mode:(Mode.Software_dbt { granularity = Shift_mem.Granularity.Word })
             tainted_pointer_prog));
    tc "uninstrumented code misses the attack" (fun () ->
        match (Util.run_prog ~mode:Mode.Uninstrumented tainted_pointer_prog).outcome with
        | Shift.Report.Exited _ -> ()
        | o -> Alcotest.failf "expected clean exit, got %a" Shift.Report.pp_outcome o);
    tc "enhanced modes detect it too" (fun () ->
        List.iter
          (fun enh ->
            expect_alert "L1" "L1"
              (Util.run_prog
                 ~mode:(Mode.Shift { granularity = Shift_mem.Granularity.Word; enh })
                 tainted_pointer_prog))
          [ Mode.enh1; Mode.enh_both ]);
    tc "disabling low-level policies reports a plain fault" (fun () ->
        let r =
          Util.run_prog
            ~policy:{ Policy.default with Policy.low_level = false }
            ~mode:Mode.shift_word tainted_pointer_prog
        in
        match r.Shift.Report.outcome with
        | Shift.Report.Fault _ -> ()
        | o -> Alcotest.failf "expected fault, got %a" Shift.Report.pp_outcome o);
  ]

let overhead_tests =
  (* sanity on the performance machinery the benchmarks rely on *)
  let work =
    Util.main_returning ~locals:[ array "a" 800; scalar "k"; scalar "acc" ]
      ([ set "acc" (i 0) ]
      @ for_up "k" (i 0) (i 100) [ store64 (v "a" +: (v "k" %: i 100 *: i 8)) (v "k") ]
      @ for_up "k" (i 0) (i 100)
          [ set "acc" (v "acc" +: load64 (v "a" +: (v "k" %: i 100 *: i 8))) ]
      @ [ ret (v "acc") ])
  in
  let cycles mode = Shift.Report.cycles (Util.run_prog ~mode work) in
  [
    tc "instrumented runs are slower than baseline" (fun () ->
        let base = cycles Mode.Uninstrumented in
        let word = cycles Mode.shift_word in
        let byte = cycles Mode.shift_byte in
        Util.check_bool "word > base" true (word > base);
        Util.check_bool "byte >= word" true (byte >= word));
    tc "enhancements reduce the slowdown" (fun () ->
        let base = cycles Mode.shift_word in
        let enh =
          cycles (Mode.Shift { granularity = Shift_mem.Granularity.Word; enh = Mode.enh_both })
        in
        Util.check_bool "enh faster" true (enh < base));
    tc "software DBT is slower than SHIFT" (fun () ->
        let hw = cycles Mode.shift_word in
        let sw = cycles (Mode.Software_dbt { granularity = Shift_mem.Granularity.Word }) in
        Util.check_bool "sw slower" true (sw > hw));
    tc "identical runs are deterministic" (fun () ->
        Util.check_int "cycles equal" (cycles Mode.shift_word) (cycles Mode.shift_word));
  ]

let timeout_tests =
  (* fuel exhaustion surfaces as Report.Timeout through every entry
     point — single-hart and SMP alike (PR 3 satellite) *)
  let spin = Util.main_returning [ while_ (i 0 ==: i 0) []; ret (i 0) ] in
  let expect_timeout msg (r : Shift.Report.t) =
    match r.Shift.Report.outcome with
    | Shift.Report.Timeout -> ()
    | o -> Alcotest.failf "%s: expected timeout, got %a" msg Shift.Report.pp_outcome o
  in
  [
    tc "fuel 0 is an immediate timeout" (fun () ->
        expect_timeout "single"
          (Shift.Session.run ~fuel:0 ~mode:Mode.shift_word spin);
        expect_timeout "mt" (Shift.Session.run_mt ~fuel:0 ~mode:Mode.shift_word spin));
    tc "a spinning guest times out with its counters intact" (fun () ->
        let r = Shift.Session.run ~fuel:5000 ~mode:Mode.shift_word spin in
        expect_timeout "single" r;
        Util.check_int "all fuel consumed" 5000
          r.Shift.Report.stats.Shift_machine.Stats.instructions;
        Util.check_bool "cycles advanced" true
          (r.Shift.Report.stats.Shift_machine.Stats.cycles > 0));
    tc "a finished session reports the same outcome forever" (fun () ->
        let image = Shift.Session.build ~mode:Mode.shift_word spin in
        let config = Shift.Session.Config.make ~fuel:100 () in
        let live = Shift.Session.start ~config image in
        (match Shift.Session.advance live ~budget:1000 with
        | `Finished Shift.Report.Timeout -> ()
        | _ -> Alcotest.fail "expected timeout");
        match (Shift.Session.outcome live, Shift.Session.advance live ~budget:1) with
        | Some Shift.Report.Timeout, `Finished Shift.Report.Timeout -> ()
        | _ -> Alcotest.fail "timeout not sticky");
  ]

let suites =
  [
    ("session.detection", detection_tests);
    ("session.overhead", overhead_tests);
    ("session.timeout", timeout_tests);
  ]
