let () =
  Alcotest.run "shift"
    (Test_isa.suites @ Test_mem.suites @ Test_machine.suites @ Test_ir.suites
   @ Test_compiler.suites @ Test_runtime.suites @ Test_policy.suites
   @ Test_os.suites @ Test_session.suites @ Test_engine.suites @ Test_attacks.suites @ Test_workloads.suites @ Test_features.suites @ Test_speculation.suites @ Test_parse.suites @ Test_timing.suites @ Test_analysis.suites @ Test_random.suites @ Test_sources.suites @ Test_smp.suites @ Test_misc.suites @ Test_results.suites
   @ Test_procs.suites
   @ Test_flowtrace.suites @ Test_snapshot.suites @ Test_serve.suites
   @ Test_superblock.suites @ Test_tracking.suites @ Test_leak.suites)
