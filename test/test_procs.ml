(* The multi-process OS personality: fork/exec/wait, pipes and fd
   inheritance with cross-process taint and provenance, scheduler
   determinism under budget slicing, and mid-fork checkpoint/restore. *)

open Build
open Build.Infix
module Mode = Shift_compiler.Mode
module Policy = Shift_policy.Policy
module World = Shift_os.World

let tc = Util.tc
let fuel = 100_000_000

let procs_config ?policy ?setup ?trace ?(images = []) ?comm () =
  Shift.Session.Config.make ?policy ?setup ?trace ~images ~fuel
    ~threading:(Shift.Session.Config.Processes { quantum = None; comm })
    ()

(* run a one-image multi-process program to completion *)
let run ?policy ?setup ?images ?comm ?(mode = Mode.shift_word) ?locals body =
  let image = Shift.Session.build ~mode (Util.main_returning ?locals body) in
  let images =
    Option.map
      (List.map (fun (name, prog) -> (name, Shift.Session.build ~mode prog)))
      images
  in
  Shift.Session.exec ~config:(procs_config ?policy ?setup ?images ?comm ()) image

let fork_tests =
  [
    tc "fork returns the child pid in the parent and 0 in the child"
      (fun () ->
        let r =
          run
            ~locals:[ scalar "pid"; scalar "st" ]
            [
              set "pid" (call "sys_fork" []);
              when_ (v "pid" ==: i 0) [ ret (i 7) ];
              set "st" (call "sys_wait" [ v "pid" ]);
              ret ((v "pid" *: i 100) +: v "st");
            ]
        in
        (* child is pid 2, exits with 7 *)
        Util.check_i64 "pid*100+status" 207L (Util.exit_code r));
    tc "fork copies memory: the child's writes stay private" (fun () ->
        let r =
          run
            ~locals:[ array "slot" 8; scalar "pid"; scalar "st" ]
            [
              store64 (v "slot") (i 5);
              set "pid" (call "sys_fork" []);
              when_ (v "pid" ==: i 0)
                [ store64 (v "slot") (i 40); ret (load64 (v "slot")) ];
              set "st" (call "sys_wait" [ i 0 ]);
              (* parent still sees 5; child exited with its own 40 *)
              ret ((v "st" *: i 10) +: load64 (v "slot"));
            ]
        in
        Util.check_i64 "child 40, parent 5" 405L (Util.exit_code r));
    tc "getpid tells processes apart" (fun () ->
        let r =
          run
            ~locals:[ scalar "pid"; scalar "st" ]
            [
              set "pid" (call "sys_fork" []);
              when_ (v "pid" ==: i 0) [ ret (call "sys_getpid" []) ];
              set "st" (call "sys_wait" [ i 0 ]);
              ret ((call "sys_getpid" [] *: i 100) +: v "st");
            ]
        in
        Util.check_i64 "parent 1, child 2" 102L (Util.exit_code r));
    tc "wait blocks until the child exits" (fun () ->
        let r =
          run
            ~locals:[ scalar "pid"; scalar "k"; scalar "acc" ]
            [
              set "pid" (call "sys_fork" []);
              when_ (v "pid" ==: i 0)
                [
                  (* outlive several parent quanta before exiting *)
                  set "k" (i 0);
                  set "acc" (i 0);
                  while_ (v "k" <: i 500)
                    [
                      set "acc" (v "acc" +: v "k");
                      set "k" (v "k" +: i 1);
                    ];
                  ret (i 9);
                ];
              ret (call "sys_wait" [ v "pid" ]);
            ]
        in
        Util.check_i64 "child status" 9L (Util.exit_code r));
    tc "wait with no children returns -1" (fun () ->
        let r = run [ ret (call "sys_wait" [ i 0 ]) ] in
        Util.check_i64 "-1" (-1L) (Util.exit_code r));
    tc "a zombie is reaped exactly once" (fun () ->
        let r =
          run
            ~locals:[ scalar "pid"; scalar "a"; scalar "b" ]
            [
              set "pid" (call "sys_fork" []);
              when_ (v "pid" ==: i 0) [ ret (i 3) ];
              set "a" (call "sys_wait" [ v "pid" ]);
              set "b" (call "sys_wait" [ v "pid" ]);
              ret ((v "a" *: i 10) +: v "b");
            ]
        in
        (* 3 then -1: the second wait has nothing left to reap *)
        Util.check_i64 "3 then -1" 29L (Util.exit_code r));
    tc "fork fails with -1 on a single-process session" (fun () ->
        let r =
          Util.run_prog ~mode:Mode.shift_word
            (Util.main_returning [ ret (call "sys_fork" []) ])
        in
        Util.check_i64 "-1" (-1L) (Util.exit_code r));
  ]

let pipe_tests =
  [
    tc "a pipe carries bytes from child to parent" (fun () ->
        let r =
          run
            ~locals:[ array "fds" 16; scalar "pid"; array "buf" 32; scalar "n" ]
            [
              Ir.Expr (call "sys_pipe" [ v "fds" ]);
              set "pid" (call "sys_fork" []);
              when_ (v "pid" ==: i 0)
                [
                  Ir.Expr (call "sys_close" [ load64 (v "fds") ]);
                  Ir.Expr
                    (call "sys_write" [ load64 (v "fds" +: i 8); str "ping"; i 4 ]);
                  ret (i 0);
                ];
              Ir.Expr (call "sys_close" [ load64 (v "fds" +: i 8) ]);
              (* blocks until the child has written *)
              set "n" (call "sys_read" [ load64 (v "fds"); v "buf"; i 32 ]);
              Ir.Expr (call "sys_write" [ i 1; v "buf"; v "n" ]);
              Ir.Expr (call "sys_wait" [ i 0 ]);
              ret (v "n");
            ]
        in
        Util.check_i64 "4 bytes" 4L (Util.exit_code r);
        Util.check_string "payload" "ping" r.Shift.Report.output);
    tc "reading a pipe whose writers are gone returns EOF" (fun () ->
        let r =
          run
            ~locals:[ array "fds" 16; array "buf" 8 ]
            [
              Ir.Expr (call "sys_pipe" [ v "fds" ]);
              Ir.Expr (call "sys_close" [ load64 (v "fds" +: i 8) ]);
              ret (call "sys_read" [ load64 (v "fds"); v "buf"; i 8 ]);
            ]
        in
        Util.check_i64 "0 = EOF" 0L (Util.exit_code r));
    tc "child exit closes its write end: the parent sees EOF" (fun () ->
        let r =
          run
            ~locals:
              [ array "fds" 16; scalar "pid"; array "buf" 32; scalar "n";
                scalar "eof" ]
            [
              Ir.Expr (call "sys_pipe" [ v "fds" ]);
              set "pid" (call "sys_fork" []);
              when_ (v "pid" ==: i 0)
                [
                  Ir.Expr
                    (call "sys_write" [ load64 (v "fds" +: i 8); str "xy"; i 2 ]);
                  (* exits without closing anything: process death must
                     release the descriptors *)
                  ret (i 0);
                ];
              Ir.Expr (call "sys_close" [ load64 (v "fds" +: i 8) ]);
              set "n" (call "sys_read" [ load64 (v "fds"); v "buf"; i 32 ]);
              set "eof" (call "sys_read" [ load64 (v "fds"); v "buf"; i 32 ]);
              Ir.Expr (call "sys_wait" [ i 0 ]);
              ret ((v "n" *: i 10) +: v "eof");
            ]
        in
        Util.check_i64 "2 bytes then EOF" 20L (Util.exit_code r));
    tc "writing a pipe with no readers fails" (fun () ->
        let r =
          run
            ~locals:[ array "fds" 16 ]
            [
              Ir.Expr (call "sys_pipe" [ v "fds" ]);
              Ir.Expr (call "sys_close" [ load64 (v "fds") ]);
              ret (call "sys_write" [ load64 (v "fds" +: i 8); str "x"; i 1 ]);
            ]
        in
        Util.check_i64 "-1" (-1L) (Util.exit_code r));
    tc "taint rides the pipe across the fork" (fun () ->
        let r =
          run
            ~setup:(fun w -> World.add_file w ~tainted:true "evil" "abc")
            ~locals:
              [ array "fds" 16; scalar "pid"; scalar "fd"; array "buf" 16;
                array "got" 16; scalar "n" ]
            [
              Ir.Expr (call "sys_pipe" [ v "fds" ]);
              set "pid" (call "sys_fork" []);
              when_ (v "pid" ==: i 0)
                [
                  set "fd" (call "sys_open" [ str "evil" ]);
                  Ir.Expr (call "sys_read" [ v "fd"; v "buf"; i 3 ]);
                  Ir.Expr
                    (call "sys_write" [ load64 (v "fds" +: i 8); v "buf"; i 3 ]);
                  ret (i 0);
                ];
              Ir.Expr (call "sys_close" [ load64 (v "fds" +: i 8) ]);
              set "n" (call "sys_read" [ load64 (v "fds"); v "got"; i 16 ]);
              Ir.Expr (call "sys_wait" [ i 0 ]);
              ret ((v "n" *: i 10) +: call "sys_taint_chk" [ v "got"; i 3 ]);
            ]
        in
        (* 3 bytes arrived, all 3 tainted in the parent's bitmap *)
        Util.check_i64 "3 bytes, 3 tainted" 33L (Util.exit_code r));
    tc "dup'd descriptors alias the same pipe end" (fun () ->
        let r =
          run
            ~locals:
              [ array "fds" 16; scalar "d"; array "buf" 8; scalar "n" ]
            [
              Ir.Expr (call "sys_pipe" [ v "fds" ]);
              set "d" (call "sys_dup" [ load64 (v "fds") ]);
              Ir.Expr (call "sys_close" [ load64 (v "fds") ]);
              Ir.Expr (call "sys_write" [ load64 (v "fds" +: i 8); str "ok"; i 2 ]);
              (* the original read fd is closed; the dup still reads *)
              set "n" (call "sys_read" [ v "d"; v "buf"; i 8 ]);
              ret (v "n");
            ]
        in
        Util.check_i64 "read through the dup" 2L (Util.exit_code r));
    tc "forked children share stream offsets (fd inheritance)" (fun () ->
        let r =
          run
            ~setup:(fun w -> World.add_file w "f" "abcdef")
            ~locals:[ scalar "fd"; array "buf" 8; scalar "pid" ]
            [
              set "fd" (call "sys_open" [ str "f" ]);
              Ir.Expr (call "sys_read" [ v "fd"; v "buf"; i 2 ]);
              Ir.Expr (call "sys_write" [ i 1; v "buf"; i 2 ]);
              set "pid" (call "sys_fork" []);
              when_ (v "pid" ==: i 0)
                [
                  (* inherited fd continues at the shared offset *)
                  Ir.Expr (call "sys_read" [ v "fd"; v "buf"; i 2 ]);
                  Ir.Expr (call "sys_write" [ i 1; v "buf"; i 2 ]);
                  ret (i 0);
                ];
              Ir.Expr (call "sys_wait" [ i 0 ]);
              Ir.Expr (call "sys_read" [ v "fd"; v "buf"; i 2 ]);
              Ir.Expr (call "sys_write" [ i 1; v "buf"; i 2 ]);
              ret (i 0);
            ]
        in
        Util.check_string "ab / cd / ef in order" "abcdef" r.Shift.Report.output);
    tc "closing an inherited fd in the child leaves the parent's alive"
      (fun () ->
        let r =
          run
            ~setup:(fun w -> World.add_file w "f" "xyz")
            ~locals:[ scalar "fd"; array "buf" 8; scalar "pid" ]
            [
              set "fd" (call "sys_open" [ str "f" ]);
              set "pid" (call "sys_fork" []);
              when_ (v "pid" ==: i 0)
                [ ret (call "sys_close" [ v "fd" ]) ];
              Ir.Expr (call "sys_wait" [ i 0 ]);
              (* parent's descriptor must still be readable *)
              ret (call "sys_read" [ v "fd"; v "buf"; i 8 ]);
            ]
        in
        Util.check_i64 "3 bytes still readable" 3L (Util.exit_code r));
  ]

(* a trivial aux image: fetch argv[0] and report how many of its bytes
   are tainted *)
let echo_image =
  Util.main_returning
    ~locals:[ array "buf" 64; scalar "n" ]
    [
      set "n" (call "sys_getarg" [ i 0; v "buf" ]);
      Ir.Expr (call "sys_write" [ i 1; v "buf"; v "n" ]);
      ret (call "sys_taint_chk" [ v "buf"; v "n" ]);
    ]

let exec_tests =
  [
    tc "fork clones the taint bitmap" (fun () ->
        let r =
          run
            ~setup:(fun w -> World.add_file w ~tainted:true "evil" "abc")
            ~locals:[ scalar "pid"; scalar "fd"; array "buf" 16; scalar "st" ]
            [
              set "fd" (call "sys_open" [ str "evil" ]);
              Ir.Expr (call "sys_read" [ v "fd"; v "buf"; i 3 ]);
              set "pid" (call "sys_fork" []);
              when_ (v "pid" ==: i 0)
                [ ret (call "sys_taint_chk" [ v "buf"; i 3 ]) ];
              set "st" (call "sys_wait" [ v "pid" ]);
              ret ((call "sys_taint_chk" [ v "buf"; i 3 ] *: i 10) +: v "st");
            ]
        in
        Util.check_i64 "parent 3, child 3" 33L (Util.exit_code r));
    tc "exec replaces the image and argv taint flows in" (fun () ->
        let r =
          run
            ~images:[ ("echo", echo_image) ]
            ~setup:(fun w -> World.add_file w ~tainted:true "evil" "abc")
            ~locals:
              [ scalar "pid"; scalar "fd"; array "buf" 16; scalar "st" ]
            [
              set "fd" (call "sys_open" [ str "evil" ]);
              Ir.Expr (call "sys_read" [ v "fd"; v "buf"; i 3 ]);
              set "pid" (call "sys_fork" []);
              when_ (v "pid" ==: i 0)
                [
                  Ir.Expr (call "sys_exec" [ str "echo"; v "buf" ]);
                  ret (i 127);
                ];
              set "st" (call "sys_wait" [ v "pid" ]);
              ret (v "st");
            ]
        in
        (* the child's exit status is echo's taint count over argv *)
        Util.check_i64 "3 tainted argv bytes" 3L (Util.exit_code r);
        Util.check_string "argv echoed from the new image" "abc"
          r.Shift.Report.output);
    tc "exec of an unknown image returns -1" (fun () ->
        let r =
          run
            ~locals:[ scalar "pid"; scalar "st" ]
            [
              set "pid" (call "sys_fork" []);
              when_ (v "pid" ==: i 0)
                [
                  when_ (call "sys_exec" [ str "nope"; i 0 ] <: i 0)
                    [ ret (i 42) ];
                  ret (i 0);
                ];
              set "st" (call "sys_wait" [ i 0 ]);
              ret (v "st");
            ]
        in
        Util.check_i64 "child saw the failure" 42L (Util.exit_code r));
    tc "getarg outside an exec'd image returns -1" (fun () ->
        let r = run ~locals:[ array "buf" 8 ]
            [ ret (call "sys_getarg" [ i 0; v "buf" ]) ] in
        Util.check_i64 "-1" (-1L) (Util.exit_code r));
  ]

(* the cross-process program used for determinism and checkpointing:
   tainted bytes travel child -> pipe -> parent while both sides also
   burn cycles, so any slicing lands mid-flight *)
let busy_pipeline =
  Util.main_returning
    ~locals:
      [ array "fds" 16; scalar "pid"; scalar "fd"; array "buf" 16;
        array "got" 16; scalar "n"; scalar "k"; scalar "acc" ]
    [
      Ir.Expr (call "sys_pipe" [ v "fds" ]);
      set "pid" (call "sys_fork" []);
      when_ (v "pid" ==: i 0)
        [
          set "fd" (call "sys_open" [ str "evil" ]);
          Ir.Expr (call "sys_read" [ v "fd"; v "buf"; i 3 ]);
          set "k" (i 0);
          while_ (v "k" <: i 400) [ set "k" (v "k" +: i 1) ];
          Ir.Expr (call "sys_write" [ load64 (v "fds" +: i 8); v "buf"; i 3 ]);
          ret (i 0);
        ];
      Ir.Expr (call "sys_close" [ load64 (v "fds" +: i 8) ]);
      set "acc" (i 0);
      set "k" (i 0);
      while_ (v "k" <: i 300)
        [ set "acc" (v "acc" +: v "k"); set "k" (v "k" +: i 1) ];
      set "n" (call "sys_read" [ load64 (v "fds"); v "got"; i 16 ]);
      Ir.Expr (call "sys_write" [ i 1; v "got"; v "n" ]);
      Ir.Expr (call "sys_wait" [ i 0 ]);
      ret ((v "n" *: i 10) +: call "sys_taint_chk" [ v "got"; i 3 ]);
    ]

let pipeline_config ?trace () =
  procs_config ?trace
    ~setup:(fun w -> World.add_file w ~tainted:true "evil" "abc")
    ~comm:"parent" ()

let report_json (r : Shift.Report.t) =
  Shift.Results.to_string (Shift.Results.of_report r)

let finish live =
  let rec loop () =
    match Shift.Session.advance live ~budget:max_int with
    | `Yielded -> loop ()
    | `Finished _ -> ()
  in
  loop ()

let sliced ~config ~budget image =
  let live = Shift.Session.start ~config image in
  let rec loop () =
    match Shift.Session.advance live ~budget with
    | `Yielded -> loop ()
    | `Finished _ -> ()
  in
  loop ();
  live

let determinism_tests =
  [
    tc "reports are byte-identical however the run is sliced" (fun () ->
        let image = Shift.Session.build ~mode:Mode.shift_word busy_pipeline in
        let straight = sliced ~config:(pipeline_config ()) ~budget:max_int image in
        let fine = sliced ~config:(pipeline_config ()) ~budget:97 image in
        let finer = sliced ~config:(pipeline_config ()) ~budget:13 image in
        let want = report_json (Shift.Session.report straight) in
        Util.check_i64 "scenario detects the taint" 33L
          (Util.exit_code (Shift.Session.report straight));
        Util.check_string "budget 97" want
          (report_json (Shift.Session.report fine));
        Util.check_string "budget 13" want
          (report_json (Shift.Session.report finer)));
    tc "the coproc backend rejects the multi-process personality" (fun () ->
        let image =
          Shift.Session.build ~backend:Shift_tracking.Backend.Coproc
            ~mode:Mode.shift_word busy_pipeline
        in
        let config =
          Shift.Session.Config.make
            ~threading:(Shift.Session.Config.Processes { quantum = None; comm = None })
            ~backend:Shift_tracking.Backend.Coproc ()
        in
        match Shift.Session.start ~config image with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

(* drive a fresh session [yields] slices of [budget], checkpoint,
   serialise, parse back, restore, finish *)
let broken ~config ~budget ~yields image =
  let live = Shift.Session.start ~config image in
  for _ = 1 to yields do
    match Shift.Session.advance live ~budget with
    | `Yielded -> ()
    | `Finished _ -> Alcotest.fail "run finished before the checkpoint point"
  done;
  let snap = Shift.Session.checkpoint live in
  let text = Shift.Results.to_string (Shift.Snapshot.to_json snap) in
  (match snap.Shift.Snapshot.machine with
  | Shift.Snapshot.M_procs { pm_procs; _ } ->
      Util.check_bool "checkpoint caught both processes alive" true
        (List.length pm_procs >= 2)
  | _ -> Alcotest.fail "expected a multi-process machine shape");
  let snap =
    match Shift.Results.of_string text with
    | Error e -> Alcotest.failf "snapshot JSON did not parse: %s" e
    | Ok j -> (
        match Shift.Snapshot.of_json j with
        | Error e -> Alcotest.failf "snapshot did not decode: %s" e
        | Ok s -> s)
  in
  let live = Shift.Session.restore snap in
  (live, text)

let snapshot_tests =
  [
    tc "mid-fork checkpoint resumes byte-identically" (fun () ->
        let image = Shift.Session.build ~mode:Mode.shift_word busy_pipeline in
        let reference = sliced ~config:(pipeline_config ()) ~budget:max_int image in
        let resumed, _ = broken ~config:(pipeline_config ()) ~budget:64 ~yields:12 image in
        finish resumed;
        Util.check_string "byte-identical report"
          (report_json (Shift.Session.report reference))
          (report_json (Shift.Session.report resumed)));
    tc "a restored table re-checkpoints byte-identically" (fun () ->
        let image = Shift.Session.build ~mode:Mode.shift_word busy_pipeline in
        let resumed, text =
          broken ~config:(pipeline_config ()) ~budget:64 ~yields:12 image
        in
        let again =
          Shift.Results.to_string
            (Shift.Snapshot.to_json (Shift.Session.checkpoint resumed))
        in
        Util.check_string "snapshot of the restored session" text again);
    tc "a traced mid-fork checkpoint keeps provenance chains" (fun () ->
        let trace = Shift_machine.Flowtrace.default_options in
        let image = Shift.Session.build ~mode:Mode.shift_byte busy_pipeline in
        let reference =
          sliced ~config:(pipeline_config ~trace ()) ~budget:max_int image
        in
        let resumed, _ =
          broken ~config:(pipeline_config ~trace ()) ~budget:64 ~yields:12 image
        in
        finish resumed;
        Util.check_string "byte-identical traced report"
          (report_json (Shift.Session.report reference))
          (report_json (Shift.Session.report resumed));
        Util.check_bool "flow summary survived" true
          ((Shift.Session.report resumed).Shift.Report.flow <> None));
  ]

let suites =
  [
    ("procs.fork", fork_tests);
    ("procs.pipes", pipe_tests);
    ("procs.exec", exec_tests);
    ("procs.determinism", determinism_tests);
    ("procs.snapshot", snapshot_tests);
  ]
