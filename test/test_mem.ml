open Shift_mem

let tc = Util.tc

let prop name ?(count = 300) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* a valid region-1 address with room above the null guard *)
let arb_addr =
  QCheck.map
    (fun n -> Addr.in_region 1 (Int64.of_int (4096 + abs n mod 1_000_000)))
    QCheck.int

let addr_tests =
  [
    tc "region extraction" (fun () ->
        Util.check_int "r1" 1 (Addr.region (Addr.in_region 1 0x1234L));
        Util.check_int "r7" 7 (Addr.region (Addr.in_region 7 0x1234L));
        Util.check_int "r0" 0 (Addr.region 0x42L));
    tc "offset extraction" (fun () ->
        Util.check_i64 "off" 0x1234L (Addr.offset (Addr.in_region 3 0x1234L)));
    tc "canonical addresses" (fun () ->
        Util.check_bool "plain" true (Addr.is_canonical (Addr.in_region 1 0x1000L));
        Util.check_bool "unimplemented bit" false
          (Addr.is_canonical (Int64.shift_left 1L 45));
        Util.check_bool "region bits alone ok" true
          (Addr.is_canonical (Addr.in_region 5 0L)));
    tc "null guard" (fun () ->
        Util.check_bool "null" false (Addr.is_valid (Addr.in_region 1 0L));
        Util.check_bool "4095" false (Addr.is_valid (Addr.in_region 1 4095L));
        Util.check_bool "4096" true (Addr.is_valid (Addr.in_region 1 4096L)));
    prop "tag addresses live in region 0" arb_addr (fun a ->
        Addr.region (Addr.tag_addr Granularity.Byte a) = 0
        && Addr.region (Addr.tag_addr Granularity.Word a) = 0);
    prop "tag bit in range" arb_addr (fun a ->
        let b1 = Addr.tag_bit Granularity.Byte a in
        let b2 = Addr.tag_bit Granularity.Word a in
        b1 >= 0 && b1 < 8 && b2 >= 0 && b2 < 8);
    prop "adjacent bytes share a bitmap byte at byte granularity" arb_addr (fun a ->
        let a' = Int64.add (Int64.logand a (Int64.lognot 7L)) 3L in
        Addr.tag_addr Granularity.Byte a' = Addr.tag_addr Granularity.Byte (Int64.add a' 1L))
    ;
    tc "different regions map to disjoint tag bytes" (fun () ->
        let a1 = Addr.in_region 1 0x5000L and a2 = Addr.in_region 2 0x5000L in
        Util.check_bool "disjoint" true
          (Addr.tag_addr Granularity.Byte a1 <> Addr.tag_addr Granularity.Byte a2));
    tc "word mask is a single bit" (fun () ->
        let a = Addr.in_region 1 0x5008L in
        Util.check_i64 "mask" 2L (Addr.tag_mask Granularity.Word ~width:8 a));
    tc "byte mask covers the access width" (fun () ->
        let a = Addr.in_region 1 0x5000L in
        Util.check_i64 "w8" 0xFFL (Addr.tag_mask Granularity.Byte ~width:8 a);
        Util.check_i64 "w1" 0x1L (Addr.tag_mask Granularity.Byte ~width:1 a);
        let a3 = Int64.add a 3L in
        Util.check_i64 "w1@3" 0x8L (Addr.tag_mask Granularity.Byte ~width:1 a3));
  ]

let memory_tests =
  [
    tc "zero-initialised" (fun () ->
        let m = Memory.create () in
        Util.check_i64 "fresh" 0L (Memory.read m (Addr.in_region 1 0x9999L) ~width:8));
    prop "u8 roundtrip" QCheck.(pair arb_addr (int_bound 255)) (fun (a, b) ->
        let m = Memory.create () in
        Memory.write_u8 m a b;
        Memory.read_u8 m a = b);
    prop "u64 little-endian roundtrip" QCheck.(pair arb_addr (map Int64.of_int int))
      (fun (a, value) ->
        let m = Memory.create () in
        Memory.write m a ~width:8 value;
        Memory.read m a ~width:8 = value
        && Memory.read_u8 m a = Int64.to_int (Int64.logand value 0xffL));
    prop "narrow writes zero-extend on read" QCheck.(pair arb_addr (map Int64.of_int int))
      (fun (a, value) ->
        let m = Memory.create () in
        Memory.write m a ~width:2 value;
        Memory.read m a ~width:2 = Int64.logand value 0xffffL);
    tc "cross-page access" (fun () ->
        let m = Memory.create () in
        let a = Addr.in_region 1 (Int64.of_int (8192 - 4)) in
        Memory.write m a ~width:8 0x1122334455667788L;
        Util.check_i64 "crosses" 0x1122334455667788L (Memory.read m a ~width:8));
    tc "cstring roundtrip" (fun () ->
        let m = Memory.create () in
        let a = Addr.in_region 1 0x8000L in
        Memory.write_cstring m a "hello world";
        Util.check_string "read" "hello world" (Memory.read_cstring m a));
    tc "bytes roundtrip" (fun () ->
        let m = Memory.create () in
        let a = Addr.in_region 1 0x8100L in
        Memory.write_bytes m a "\x00\x01\x02binary\xff";
        Util.check_string "read" "\x00\x01\x02binary\xff" (Memory.read_bytes m a ~len:10));
  ]

(* ---------- fast path vs byte-at-a-time reference ---------- *)

let with_fast_path v f =
  let was = !Memory.fast_path in
  Memory.fast_path := v;
  Fun.protect ~finally:(fun () -> Memory.fast_path := was) f

let fastpath_tests =
  let widths = [ 1; 2; 4; 8 ] in
  [
    tc "page-boundary-crossing stores and loads (every width)" (fun () ->
        List.iter
          (fun width ->
            List.iter
              (fun back ->
                (* straddle the page boundary at offset 8192 by [back] bytes *)
                let a = Addr.in_region 1 (Int64.of_int (8192 - back)) in
                let m = Memory.create () in
                let v = 0x1122334455667788L in
                Memory.write m a ~width v;
                let expect =
                  if width = 8 then v
                  else Int64.logand v (Int64.sub (Int64.shift_left 1L (8 * width)) 1L)
                in
                Util.check_i64
                  (Printf.sprintf "w%d back %d" width back)
                  expect (Memory.read m a ~width);
                Util.check_i64
                  (Printf.sprintf "w%d back %d (reference)" width back)
                  expect (Memory.read_ref m a ~width))
              (List.init width Fun.id))
          widths);
    tc "reference write read back by fast path and vice versa" (fun () ->
        let m = Memory.create () in
        let a = Addr.in_region 2 (Int64.of_int (4096 * 3 - 5)) in
        Memory.write_ref m a ~width:8 0x0807060504030201L;
        Util.check_i64 "ref write, fast read" 0x0807060504030201L (Memory.read m a ~width:8);
        Memory.write m a ~width:8 0x1817161514131211L;
        Util.check_i64 "fast write, ref read" 0x1817161514131211L (Memory.read_ref m a ~width:8));
    tc "TLB stays consistent across conflicting pages after writes" (fun () ->
        (* 200 pages map onto the 64-entry direct-mapped TLB with
           conflicts; every page must still read back its own byte *)
        let m = Memory.create () in
        let page_addr k = Addr.in_region 1 (Int64.of_int (4096 * (1 + k))) in
        for k = 0 to 199 do
          Memory.write_u8 m (page_addr k) (k land 0xff)
        done;
        for k = 0 to 199 do
          Util.check_int (Printf.sprintf "page %d" k) (k land 0xff)
            (Memory.read_u8 m (page_addr k))
        done;
        (* rewrite through TLB hits, then check via the reference path *)
        for k = 0 to 199 do
          Memory.write m (page_addr k) ~width:2 (Int64.of_int (0x100 + k))
        done;
        for k = 0 to 199 do
          Util.check_i64
            (Printf.sprintf "page %d after write" k)
            (Int64.of_int (0x100 + k))
            (Memory.read_ref m (page_addr k) ~width:2)
        done);
    prop "random accesses: fast path = reference" ~count:500
      QCheck.(triple arb_addr (int_bound 3) (map Int64.of_int int))
      (fun (a, wexp, v) ->
        let width = 1 lsl wexp in
        (* bias some addresses onto a page boundary *)
        let a = if Int64.to_int v land 1 = 0 then
            Addr.in_region 1 (Int64.of_int (8192 - (Int64.to_int v land 7))) else a in
        let m_fast = Memory.create () in
        let m_ref = Memory.create () in
        Memory.write m_fast a ~width v;
        Memory.write_ref m_ref a ~width v;
        Memory.read m_fast a ~width = Memory.read_ref m_fast a ~width
        && Memory.read m_fast a ~width = Memory.read_ref m_ref a ~width
        && Memory.read_bytes m_fast a ~len:width = Memory.read_bytes m_ref a ~len:width);
    prop "string transfers: fast path = per-byte reference" ~count:200
      QCheck.(pair (int_bound 4090) small_string)
      (fun (off, s) ->
        (* place the string so some cases straddle the page boundary *)
        let a = Addr.in_region 1 (Int64.of_int (4096 + off)) in
        let m_fast = Memory.create () in
        let m_ref = Memory.create () in
        Memory.write_bytes m_fast a s;
        with_fast_path false (fun () -> Memory.write_bytes m_ref a s);
        let len = String.length s in
        Memory.read_bytes m_fast a ~len = Memory.read_bytes m_ref a ~len
        && with_fast_path false (fun () ->
               Memory.read_bytes m_fast a ~len = Memory.read_bytes m_ref a ~len));
    prop "cstrings: fast path = per-byte reference" ~count:200
      QCheck.(pair (int_bound 4090) small_printable_string)
      (fun (off, s) ->
        let s = String.concat "" (String.split_on_char '\000' s) in
        let a = Addr.in_region 1 (Int64.of_int (4096 + off)) in
        let m = Memory.create () in
        Memory.write_cstring m a s;
        Memory.read_cstring m a = s
        && with_fast_path false (fun () -> Memory.read_cstring m a = s)
        && Memory.read_cstring ~max:3 m a = String.sub s 0 (min 3 (String.length s)));
  ]

let taint_tests =
  let gran = [ Granularity.Byte; Granularity.Word ] in
  [
    tc "fresh memory is clean" (fun () ->
        let m = Memory.create () in
        List.iter
          (fun g ->
            Util.check_bool "clean" false (Taint.is_tainted m g (Addr.in_region 1 0x7000L)))
          gran);
    prop "set then get" QCheck.(pair arb_addr (int_bound 64)) (fun (a, len) ->
        let len = len + 1 in
        List.for_all
          (fun g ->
            let m = Memory.create () in
            Taint.set_range m g ~addr:a ~len ~tainted:true;
            Taint.count_tainted m g ~addr:a ~len = len)
          gran);
    prop "set then clear" QCheck.(pair arb_addr (int_bound 64)) (fun (a, len) ->
        let len = len + 1 in
        List.for_all
          (fun g ->
            let m = Memory.create () in
            Taint.set_range m g ~addr:a ~len ~tainted:true;
            Taint.set_range m g ~addr:a ~len ~tainted:false;
            Taint.count_tainted m g ~addr:a ~len = 0)
          gran);
    tc "byte granularity is precise" (fun () ->
        let m = Memory.create () in
        let a = Addr.in_region 1 0x7100L in
        Taint.set_range m Granularity.Byte ~addr:(Int64.add a 1L) ~len:1 ~tainted:true;
        Util.check_bool "left clean" false (Taint.is_tainted m Granularity.Byte a);
        Util.check_bool "hit" true (Taint.is_tainted m Granularity.Byte (Int64.add a 1L));
        Util.check_bool "right clean" false
          (Taint.is_tainted m Granularity.Byte (Int64.add a 2L)));
    tc "word granularity is conservative" (fun () ->
        let m = Memory.create () in
        let a = Addr.in_region 1 0x7200L in
        Taint.set_range m Granularity.Word ~addr:(Int64.add a 1L) ~len:1 ~tainted:true;
        Util.check_bool "whole word tainted" true (Taint.is_tainted m Granularity.Word a);
        Util.check_bool "next word clean" false
          (Taint.is_tainted m Granularity.Word (Int64.add a 8L)));
    tc "first_tainted and positions" (fun () ->
        let m = Memory.create () in
        let a = Addr.in_region 1 0x7300L in
        Taint.set_range m Granularity.Byte ~addr:(Int64.add a 5L) ~len:2 ~tainted:true;
        Util.check_bool "first" true
          (Taint.first_tainted m Granularity.Byte ~addr:a ~len:16 = Some 5);
        Util.check_bool "any" true (Taint.any_tainted m Granularity.Byte ~addr:a ~len:16);
        Memory.write_cstring m a "0123456789";
        Util.check_bool "positions" true
          (Taint.tainted_string_positions m Granularity.Byte a "0123456789" = [ 5; 6 ]));
    (* random set_range programs must leave identical bitmaps and query
       results whether or not the word-width span fast path is used *)
    prop "set_range fast path = bit-at-a-time reference" ~count:300
      QCheck.(
        pair (int_bound 1)
          (small_list (triple (int_bound 200) (int_bound 100) bool)))
      (fun (gi, ops) ->
        let g = if gi = 0 then Granularity.Byte else Granularity.Word in
        let base = Addr.in_region 1 0x9000L in
        let m_fast = Memory.create () in
        let m_ref = Memory.create () in
        List.iter
          (fun (off, len, tainted) ->
            let addr = Int64.add base (Int64.of_int off) in
            Taint.set_range m_fast g ~addr ~len ~tainted;
            with_fast_path false (fun () -> Taint.set_range m_ref g ~addr ~len ~tainted))
          ops;
        let same_bit k =
          let a = Int64.add base (Int64.of_int k) in
          Taint.is_tainted m_fast g a = Taint.is_tainted m_ref g a
        in
        let queries_agree ~addr ~len =
          Taint.count_tainted m_fast g ~addr ~len = Taint.count_tainted m_ref g ~addr ~len
          && Taint.any_tainted m_fast g ~addr ~len = Taint.any_tainted m_ref g ~addr ~len
          && with_fast_path false (fun () ->
                 Taint.count_tainted m_fast g ~addr ~len
                 = Taint.count_tainted m_ref g ~addr ~len
                 && Taint.any_tainted m_fast g ~addr ~len
                   = Taint.any_tainted m_ref g ~addr ~len)
        in
        List.init 310 same_bit |> List.for_all Fun.id
        && queries_agree ~addr:base ~len:310
        && queries_agree ~addr:(Int64.add base 3L) ~len:61
        && queries_agree ~addr:(Int64.add base 17L) ~len:1);
  ]

let suites =
  [
    ("mem.addr", addr_tests);
    ("mem.memory", memory_tests);
    ("mem.fastpath", fastpath_tests);
    ("mem.taint", taint_tests);
  ]
