(* The tracking-backend interface (lib/tracking).

   Three claims, matching the backends experiment's CI verdicts:

   - the [nat] backend is invisible: a session run with an explicit
     [--backend nat] is byte-identical (report JSON and flow JSONL) to
     one run through the default path, superblocks on or off;
   - the [coproc] backend is sound on the Table-2 suite: every exploit
     alerts at queue-drain time (the alert names its drain lag), every
     benign input stays clean, and random benign programs exit with the
     uninstrumented exit code (the taint markers kept in the
     uninstrumented stream feed the mirror, not the NaT file);
   - the lag model honours its bounds: drain lag never exceeds the
     queue capacity, and a full queue charges stall cycles. *)

open Build
module Mode = Shift_compiler.Mode
module Policy = Shift_policy.Policy
module Backend = Shift.Backend
module Tracking = Shift.Tracking
module Case = Shift_attacks.Attack_case

let tc = Util.tc
let fuel = 200_000_000

let report_bytes r = Shift.Results.to_string (Shift.Results.of_report r)

(* ---------- Backend names ---------- *)

let name_tests =
  [
    tc "to_string/of_string round-trips" (fun () ->
        List.iter
          (fun b ->
            match Backend.of_string (Backend.to_string b) with
            | Ok b' -> Alcotest.(check bool) (Backend.to_string b) true (b = b')
            | Error e -> Alcotest.fail e)
          [ Backend.Nat; Backend.Coproc; Backend.Off ]);
    tc "aliases parse" (fun () ->
        List.iter
          (fun (s, b) ->
            match Backend.of_string s with
            | Ok b' -> Alcotest.(check bool) s true (b = b')
            | Error e -> Alcotest.fail e)
          [
            ("shift", Backend.Nat);
            ("NAT", Backend.Nat);
            ("coprocessor", Backend.Coproc);
            ("off", Backend.Off);
            ("baseline", Backend.Off);
          ]);
    tc "an unknown backend is an error naming the choices" (fun () ->
        match Backend.of_string "fpga" with
        | Ok _ -> Alcotest.fail "parsed nonsense"
        | Error e ->
            Alcotest.(check bool) "mentions nat" true (Str_exists.contains e "nat"));
  ]

(* ---------- nat identity (QCheck, sb on and off) ---------- *)

(* the default path: no backend argument anywhere — exactly what every
   caller wrote before lib/tracking existed *)
let run_default ~superblocks prog =
  Shift.Session.run ~fuel ~superblocks ~mode:Mode.shift_word prog

let run_nat ~superblocks prog =
  Shift.Session.run ~fuel ~superblocks ~backend:Backend.Nat
    ~mode:Mode.shift_word prog

let identity_test =
  QCheck.Test.make ~count:30
    ~name:"backend nat is byte-identical to the default path (sb on/off)"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let prog = Test_random.gen_program seed in
      List.for_all
        (fun superblocks ->
          report_bytes (run_default ~superblocks prog)
          = report_bytes (run_nat ~superblocks prog))
        [ true; false ])

(* coproc runs the guest uninstrumented; on programs whose addresses
   stay clean it must reach the very exit code the baseline reaches —
   this is the differential that catches a dropped [untaint] marker
   (a stale mirror tag would fault some masked index as an L1) *)
let coproc_differential_test =
  QCheck.Test.make ~count:30
    ~name:"random benign programs under coproc match the baseline exit code"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let prog = Test_random.gen_program seed in
      let base =
        Util.exit_code
          (Shift.Session.run ~fuel ~backend:Backend.Off ~mode:Mode.shift_word
             prog)
      in
      Util.exit_code
        (Shift.Session.run ~fuel ~backend:Backend.Coproc ~mode:Mode.shift_word
           prog)
      = base)

let flow_jsonl ?backend prog =
  let image = Shift.Session.build ?backend ~mode:Mode.shift_word prog in
  let config =
    Shift.Session.Config.make ~fuel
      ~trace:{ Shift.Flowtrace.capacity = 4096; only = None }
      ?backend ()
  in
  let live = Shift.Session.start ~config image in
  (match Shift.Session.advance live ~budget:max_int with
  | `Finished _ | `Yielded -> ());
  match Shift.Session.flowtrace live with
  | Some ft ->
      Shift.Flow.jsonl ~outcome:(Shift.Session.report live).Shift.Report.outcome ft
  | None -> Alcotest.fail "trace was requested but absent"

let identity_tests =
  [
    QCheck_alcotest.to_alcotest identity_test;
    QCheck_alcotest.to_alcotest coproc_differential_test;
    tc "flow JSONL is byte-identical under an explicit nat backend" (fun () ->
        let prog = Test_random.gen_program 7 in
        Util.check_string "flow JSONL" (flow_jsonl prog)
          (flow_jsonl ~backend:Backend.Nat prog));
    tc "backend none runs the guest with sources and checks off" (fun () ->
        let prog = Test_random.gen_program 11 in
        let off =
          Shift.Session.run ~fuel ~backend:Backend.Off ~mode:Mode.shift_word
            prog
        in
        let unins = Shift.Session.run ~fuel ~mode:Mode.Uninstrumented prog in
        Util.check_i64 "exit code" (Util.exit_code unins) (Util.exit_code off);
        Util.check_int "cycles" (Shift.Report.cycles unins)
          (Shift.Report.cycles off));
  ]

(* ---------- coproc detection and lag semantics ---------- *)

(* tainted input value used as a load address: L1 under nat, and — one
   drain later — under the coprocessor *)
let tainted_pointer_prog =
  Util.main_returning ~locals:[ array "input" 16; scalar "p" ]
    [
      store64 (v "input") (i64 (Shift_mem.Addr.in_region 1 0x10000L));
      Ir.Expr (call "sys_taint_set" [ v "input"; i 8; i 1 ]);
      set "p" (load64 (v "input"));
      ret (load64 (v "p"));
    ]

let run_coproc ?policy ?setup prog =
  let backend = Backend.Coproc in
  let image = Shift.Session.build ~backend ~mode:Mode.shift_word prog in
  let config =
    Shift.Session.Config.make ?policy ?setup ~fuel ~backend ()
  in
  let live = Shift.Session.start ~config image in
  (match Shift.Session.advance live ~budget:max_int with
  | `Finished _ | `Yielded -> ());
  (Shift.Session.report live, Tracking.stats (Shift.Session.tracking live))

let attack_coproc ~benign (c : Case.t) =
  let backend = Backend.Coproc in
  let image = Shift.Session.build ~backend ~mode:Mode.shift_word c.Case.program in
  let setup = if benign then c.Case.benign else c.Case.exploit in
  let config =
    Shift.Session.Config.make ~policy:c.Case.policy ~setup ~backend ()
  in
  let live = Shift.Session.start ~config image in
  (match Shift.Session.advance live ~budget:max_int with
  | `Finished _ | `Yielded -> ());
  (Shift.Session.report live, Tracking.stats (Shift.Session.tracking live))

let coproc_tests =
  [
    tc "a tainted pointer dereference alerts, naming its drain lag" (fun () ->
        let report, stats = run_coproc tainted_pointer_prog in
        match report.Shift.Report.outcome with
        | Shift.Report.Alert a ->
            Util.check_string "policy" "L1" a.Shift_policy.Alert.policy;
            Alcotest.(check bool)
              "message names the coprocessor" true
              (Str_exists.contains a.Shift_policy.Alert.message "drain lag");
            Alcotest.(check bool)
              "alert lag within the queue bound" true
              (stats.Tracking.last_alert_lag <= Tracking.default_capacity)
        | o ->
            Alcotest.failf "expected an alert, got %a" Shift.Report.pp_outcome o);
    tc "every Table-2 exploit alerts; every benign input is clean" (fun () ->
        List.iter
          (fun (c : Case.t) ->
            (let report, stats = attack_coproc ~benign:false c in
             (match report.Shift.Report.outcome with
             | Shift.Report.Alert _ -> ()
             | o ->
                 Alcotest.failf "%s: exploit not detected (%a)"
                   c.Case.program_name Shift.Report.pp_outcome o);
             Alcotest.(check bool)
               (c.Case.program_name ^ ": lag bounded") true
               (stats.Tracking.last_alert_lag <= Tracking.default_capacity
               && stats.Tracking.max_lag <= Tracking.default_capacity));
            let benign_report, _ = attack_coproc ~benign:true c in
            match benign_report.Shift.Report.outcome with
            | Shift.Report.Alert a ->
                Alcotest.failf "%s: false alarm on benign input (%s)"
                  c.Case.program_name a.Shift_policy.Alert.message
            | _ -> ())
          Shift_attacks.Attacks.all);
    tc "the queue is fully drained when a run finishes" (fun () ->
        let prog = Test_random.gen_program 23 in
        let _, stats = run_coproc prog in
        Util.check_int "enqueued = drained" stats.Tracking.enqueued
          stats.Tracking.drained);
  ]

(* ---------- the queue unit model ---------- *)

let queue_tests =
  [
    tc "a full queue force-drains and charges the stall penalty" (fun () ->
        let t = Tracking.create ~backend:Backend.Coproc ~capacity:2 () in
        for r = 1 to 5 do
          Tracking.push t (Tracking.Set { dst = r; tainted = true })
        done;
        let stats = Tracking.stats t in
        Util.check_int "stalls" 3 stats.Tracking.stalls;
        Util.check_int "stall cycles handed to the pipeline"
          (3 * Tracking.default_stall_penalty)
          (Tracking.take_stall t);
        Util.check_int "taking the stall resets it" 0 (Tracking.take_stall t);
        Util.check_int "queue holds capacity records" 2 (Tracking.queue_length t));
    tc "drain applies records in program order" (fun () ->
        let t = Tracking.create ~backend:Backend.Coproc ~capacity:8 () in
        Tracking.push t (Tracking.Set { dst = 4; tainted = true });
        Tracking.push t (Tracking.Move { dst = 5; src = 4 });
        Tracking.push t (Tracking.Set { dst = 4; tainted = false });
        Tracking.flush t;
        Alcotest.(check bool) "r5 took r4's old tag" true (Tracking.reg_tag t 5);
        Alcotest.(check bool) "r4 was cleared last" false (Tracking.reg_tag t 4));
    tc "nat and none handles are inert" (fun () ->
        List.iter
          (fun backend ->
            let t = Tracking.create ~backend () in
            Alcotest.(check bool) "no per-instr hook" false (Tracking.per_instr t);
            Tracking.tick t;
            Util.check_int "nothing enqueued" 0 (Tracking.queue_length t))
          [ Backend.Nat; Backend.Off ]);
  ]

(* ---------- snapshots ---------- *)

let snapshot_tests =
  [
    tc "a coproc session checkpoints mid-flight and resumes identically"
      (fun () ->
        let backend = Backend.Coproc in
        let prog = Test_random.gen_program 42 in
        let image = Shift.Session.build ~backend ~mode:Mode.shift_word prog in
        let config = Shift.Session.Config.make ~fuel ~backend () in
        let finish live =
          (match Shift.Session.advance live ~budget:max_int with
          | `Finished _ | `Yielded -> ());
          Shift.Session.report live
        in
        let reference = finish (Shift.Session.start ~config image) in
        let live = Shift.Session.start ~config image in
        (match Shift.Session.advance live ~budget:500 with
        | `Yielded -> ()
        | `Finished _ -> Alcotest.fail "finished before the checkpoint");
        let snap = Shift.Session.checkpoint live in
        let text = Shift.Results.to_string (Shift.Snapshot.to_json snap) in
        let snap =
          match Shift.Results.of_string text with
          | Error e -> Alcotest.failf "snapshot JSON did not parse: %s" e
          | Ok j -> (
              match Shift.Snapshot.of_json j with
              | Error e -> Alcotest.failf "snapshot did not decode: %s" e
              | Ok s -> s)
        in
        let resumed = finish (Shift.Session.restore snap) in
        Util.check_string "byte-identical report" (report_bytes reference)
          (report_bytes resumed));
    tc "export/import round-trips the queue and tag file" (fun () ->
        let t = Tracking.create ~backend:Backend.Coproc ~capacity:8 () in
        Tracking.push t (Tracking.Set { dst = 3; tainted = true });
        Tracking.tick t;
        Tracking.push t (Tracking.Union { dst = 6; s1 = 3; s2 = 0 });
        let dump = Tracking.export t in
        let t' = Tracking.create ~backend:Backend.Coproc ~capacity:8 () in
        Tracking.import t' dump;
        Util.check_int "queue length" (Tracking.queue_length t)
          (Tracking.queue_length t');
        Tracking.flush t';
        Alcotest.(check bool) "r3 tag survives" true (Tracking.reg_tag t' 3);
        Alcotest.(check bool) "r6 unions from r3" true (Tracking.reg_tag t' 6));
  ]

let suites =
  [
    ("tracking.backend", name_tests);
    ("tracking.identity", identity_tests);
    ("tracking.coproc", coproc_tests);
    ("tracking.queue", queue_tests);
    ("tracking.snapshot", snapshot_tests);
  ]
