(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md section 4 for the index).

   Usage: main.exe [table1|table2|fig6|fig7|fig8|fig9|table3|lift|ablation|bechamel]...
   With no argument, everything runs. *)

let experiments =
  [
    ("table1", Exp_security.table1);
    ("table2", Exp_security.table2);
    ("fig6", Exp_apache.fig6);
    ("fig7", Exp_spec.fig7);
    ("fig8", Exp_spec.fig8);
    ("fig9", Exp_spec.fig9);
    ("table3", Exp_spec.table3);
    ("lift", Exp_spec.lift);
    ("ablation", Exp_spec.ablation);
    ("speculation", Exp_speculation.speculation);
    ("bechamel", Bech.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected =
    match args with
    | [] -> experiments
    | names ->
        List.map
          (fun name ->
            match List.assoc_opt name experiments with
            | Some f -> (name, f)
            | None ->
                Printf.eprintf "unknown experiment %S; available: %s\n" name
                  (String.concat ", " (List.map fst experiments));
                exit 2)
          names
  in
  print_endline "SHIFT reproduction harness (Chen et al., ISCA 2008)";
  print_endline "measured numbers come from the simulated Itanium-like machine;";
  print_endline "paper references are quoted under each table.";
  List.iter (fun (_, f) -> f ()) selected
