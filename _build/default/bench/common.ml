(* Shared machinery for the experiment harness. *)

module Mode = Shift_compiler.Mode
module Spec = Shift_workloads.Spec
module Httpd = Shift_workloads.Httpd
module Policy = Shift_policy.Policy
module Stats = Shift_machine.Stats

let fuel = 1_000_000_000

(* ---------- kernel runs, memoised across experiments ---------- *)

type krun = {
  report : Shift.Report.t;
  image : Shift_compiler.Image.t;
}

let kernel_cache : (string, krun) Hashtbl.t = Hashtbl.create 64

let image_of_kernel (k : Spec.kernel) mode =
  Shift.Session.build ~mode k.Spec.program

let run_kernel ?(tainted = true) (k : Spec.kernel) mode =
  let key =
    Printf.sprintf "%s/%s/%b" k.Spec.name (Mode.to_string mode) tainted
  in
  match Hashtbl.find_opt kernel_cache key with
  | Some r -> r
  | None ->
      let image = image_of_kernel k mode in
      let report =
        Shift.Session.run_image ~policy:Policy.default ~fuel
          ~setup:(Spec.setup ~tainted k) image
      in
      (match report.Shift.Report.outcome with
      | Shift.Report.Exited _ -> ()
      | o ->
          Printf.eprintf "kernel %s under %s did not finish: %s\n%!" k.Spec.name
            (Mode.to_string mode)
            (Format.asprintf "%a" Shift.Report.pp_outcome o));
      let r = { report; image } in
      Hashtbl.replace kernel_cache key r;
      r

let cycles_of ?tainted k mode = (run_kernel ?tainted k mode).report.Shift.Report.stats.Stats.cycles

let slowdown ?tainted k mode =
  float_of_int (cycles_of ?tainted k mode)
  /. float_of_int (cycles_of ~tainted:false k Mode.Uninstrumented)

(* ---------- modes ---------- *)

let word = Mode.shift_word
let byte = Mode.shift_byte
let word_enh1 = Mode.Shift { granularity = Shift_mem.Granularity.Word; enh = Mode.enh1 }
let byte_enh1 = Mode.Shift { granularity = Shift_mem.Granularity.Byte; enh = Mode.enh1 }
let word_both = Mode.Shift { granularity = Shift_mem.Granularity.Word; enh = Mode.enh_both }
let byte_both = Mode.Shift { granularity = Shift_mem.Granularity.Byte; enh = Mode.enh_both }
let dbt = Mode.Software_dbt { granularity = Shift_mem.Granularity.Word }

(* ---------- output helpers ---------- *)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note fmt = Printf.printf ("  " ^^ fmt ^^ "\n")

let table ~columns rows =
  let widths =
    List.mapi
      (fun c title ->
        List.fold_left (fun w row -> max w (String.length (List.nth row c)))
          (String.length title) rows)
      columns
  in
  let print_row cells =
    let padded = List.map2 (fun w s -> Printf.sprintf "%-*s" w s) widths cells in
    Printf.printf "  %s\n" (String.concat "  " padded)
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let geomean values =
  exp (List.fold_left (fun acc v -> acc +. log v) 0. values /. float_of_int (List.length values))

let pct x = Printf.sprintf "%.1f%%" (x *. 100.)
let f2 x = Printf.sprintf "%.2f" x
