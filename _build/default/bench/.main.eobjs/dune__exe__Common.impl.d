bench/common.ml: Format Hashtbl List Printf Shift Shift_compiler Shift_machine Shift_mem Shift_policy Shift_workloads String
