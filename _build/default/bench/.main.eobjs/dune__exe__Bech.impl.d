bench/bech.ml: Analyze Bechamel Benchmark Common Hashtbl Httpd Instance List Measure Option Policy Printf Shift Shift_attacks Spec Staged Test Time Toolkit
