bench/exp_apache.ml: Common Format Httpd Int64 List Mode Printf Shift
