bench/exp_speculation.ml: Common Cond Instr Int64 List Printf Program Reg Shift_compiler Shift_isa Shift_machine Shift_mem
