bench/exp_security.ml: Common List Printf Shift Shift_attacks Shift_machine Shift_policy
