bench/main.ml: Array Bech Exp_apache Exp_security Exp_spec Exp_speculation List Printf String Sys
