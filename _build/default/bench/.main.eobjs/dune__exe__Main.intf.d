bench/main.mli:
