bench/exp_spec.ml: Common Fun List Mode Policy Printf Shift Shift_compiler Shift_isa Shift_machine Shift_runtime Spec
