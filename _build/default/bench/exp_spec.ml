(* Figures 7-9 and Table 3: the SPEC-INT2000-like kernel experiments. *)

open Common
module Prov = Shift_isa.Prov
module Image = Shift_compiler.Image

let kernels = Spec.all

(* ---------- Figure 7 ---------- *)

let fig7 () =
  header "Figure 7: SPEC-like kernel slowdown (byte/word x unsafe/safe inputs)";
  let rows =
    List.map
      (fun k ->
        [
          k.Spec.name;
          f2 (slowdown ~tainted:true k byte);
          f2 (slowdown ~tainted:false k byte);
          f2 (slowdown ~tainted:true k word);
          f2 (slowdown ~tainted:false k word);
        ])
      kernels
  in
  let avg mode tainted = geomean (List.map (fun k -> slowdown ~tainted k mode) kernels) in
  table
    ~columns:[ "kernel"; "byte-unsafe"; "byte-safe"; "word-unsafe"; "word-safe" ]
    (rows
    @ [
        [
          "geo-mean";
          f2 (avg byte true);
          f2 (avg byte false);
          f2 (avg word true);
          f2 (avg word false);
        ];
      ]);
  note "paper: byte-level average 2.81X (range 1.32-4.73X), word-level average";
  note "2.27X (range 1.34-3.80X); byte >= word, unsafe >= safe, and memory-";
  note "bound mcf shows the smallest slowdown."

(* ---------- Figure 8 ---------- *)

let fig8 () =
  header "Figure 8: impact of the minor architectural enhancements";
  let rows =
    List.concat_map
      (fun k ->
        let base_b = slowdown k byte and base_w = slowdown k word in
        let sc_b = slowdown k byte_enh1 and sc_w = slowdown k word_enh1 in
        let both_b = slowdown k byte_both and both_w = slowdown k word_both in
        [
          [
            k.Spec.name ^ "/byte";
            f2 base_b;
            f2 sc_b;
            f2 both_b;
            pct (base_b -. both_b);
          ];
          [
            k.Spec.name ^ "/word";
            f2 base_w;
            f2 sc_w;
            f2 both_w;
            pct (base_w -. both_w);
          ];
        ])
      kernels
  in
  table
    ~columns:
      [ "kernel/gran"; "base slowdown"; "+set/clr NaT"; "+both (taint-aware cmp)";
        "slowdown reduction" ]
    rows;
  let red gran base enh =
    geomean (List.map (fun k -> slowdown k base) kernels)
    -. geomean (List.map (fun k -> slowdown k enh) kernels)
    |> fun d -> Printf.sprintf "%s: %.2f" gran d
  in
  note "average slowdown reduction with both enhancements: %s, %s"
    (red "byte" byte byte_both) (red "word" word word_both);
  note "paper: set/clear NaT alone reduces slowdown ~16%%; combining both";
  note "enhancements reduces it 49%%/47%% (byte/word), ranging 2%%-173%% per";
  note "benchmark with gcc gaining most and mcf least.";
  note "(reduction is the difference of slowdown factors, as in the paper)"

(* ---------- Figure 9 ---------- *)

let fig9 () =
  header "Figure 9: overhead breakdown (computation vs memory access, loads vs stores)";
  let rows =
    List.concat_map
      (fun k ->
        List.map
          (fun (gran_name, mode) ->
            let run = run_kernel k mode in
            let stats = run.report.Shift.Report.stats in
            let slots p = Shift_machine.Stats.slots stats p in
            let ld_c = slots Prov.Ld_compute and ld_m = slots Prov.Ld_mem in
            let st_c = slots Prov.St_compute and st_m = slots Prov.St_mem in
            let relax = slots Prov.Cmp_relax and natgen = slots Prov.Nat_gen in
            let total = float_of_int (ld_c + ld_m + st_c + st_m + relax + natgen) in
            let share n = float_of_int n /. total in
            [
              Printf.sprintf "%s/%s" k.Spec.name gran_name;
              pct (share ld_c);
              pct (share ld_m);
              pct (share st_c);
              pct (share st_m);
              pct (share relax);
              pct (share natgen);
            ])
          [ ("byte", byte); ("word", word) ])
      kernels
  in
  table
    ~columns:
      [ "kernel/gran"; "ld-compute"; "ld-bitmap"; "st-compute"; "st-bitmap";
        "cmp-relax"; "nat-gen" ]
    rows;
  note "shares of instrumentation issue slots (the work SHIFT adds).  paper:";
  note "computation dominates memory access (tag-address arithmetic is the";
  note "expensive part; the bitmap mostly hits in L1), and load instrumentation";
  note "outweighs store instrumentation because loads are more frequent."

(* ---------- Table 3 ---------- *)

let table3 () =
  header "Table 3: compiler instrumentation impact on code size";
  let runtime_names = Shift_runtime.Runtime.names in
  let size_of image names =
    List.fold_left
      (fun acc (name, n) -> if List.mem name names then acc + n else acc)
      0 image.Image.func_sizes
  in
  let app_size image =
    List.fold_left
      (fun acc (name, n) ->
        if List.mem name runtime_names then acc else acc + n)
      0 image.Image.func_sizes
  in
  let glibc_row =
    (* measure the runtime library within any kernel image *)
    let k = List.hd kernels in
    let orig = size_of (image_of_kernel k Mode.Uninstrumented) runtime_names in
    let w = size_of (image_of_kernel k word) runtime_names in
    let b = size_of (image_of_kernel k byte) runtime_names in
    [
      "runtime (glibc)";
      string_of_int orig;
      string_of_int w;
      pct (float_of_int (w - orig) /. float_of_int orig);
      string_of_int b;
      pct (float_of_int (b - orig) /. float_of_int orig);
    ]
  in
  let rows =
    List.map
      (fun k ->
        let orig = app_size (image_of_kernel k Mode.Uninstrumented) in
        let w = app_size (image_of_kernel k word) in
        let b = app_size (image_of_kernel k byte) in
        [
          k.Spec.name;
          string_of_int orig;
          string_of_int w;
          pct (float_of_int (w - orig) /. float_of_int orig);
          string_of_int b;
          pct (float_of_int (b - orig) /. float_of_int orig);
        ])
      kernels
  in
  table
    ~columns:
      [ "unit"; "orig (instrs)"; "word"; "word ovh"; "byte"; "byte ovh" ]
    (glibc_row :: rows);
  note "paper: glibc grows 36%%/45%% (word/byte); the benchmarks grow more";
  note "(132%%-288%%) because a larger share of their code is loads, stores and";
  note "compares; byte-level needs more code than word-level everywhere."

(* ---------- LIFT comparison ---------- *)

let lift () =
  header "Software-DBT baseline (LIFT-like) vs SHIFT";
  let rows =
    List.map
      (fun k ->
        [
          k.Spec.name;
          f2 (slowdown k word);
          f2 (slowdown k dbt);
        ])
      kernels
  in
  table ~columns:[ "kernel"; "SHIFT word"; "software DBT" ] rows;
  note "geo-mean: SHIFT %s vs software %s" (f2 (geomean (List.map (fun k -> slowdown k word) kernels)))
    (f2 (geomean (List.map (fun k -> slowdown k dbt) kernels)));
  note "paper: software-based DIFT costs 4.6X (LIFT, heavily optimized) up to";
  note "37X, vs SHIFT's 2.27X at word level.  Our unoptimized DBT baseline lands";
  note "inside that software range; reusing the deferred-exception hardware";
  note "beats maintaining register tags in software by a wide margin."

(* ---------- compiler-optimization ablations ---------- *)

let ablation () =
  header "Ablation: the SHIFT compiler's optimizations (word level, unsafe)";
  let with_knob knob value f =
    let old = !knob in
    knob := value;
    Fun.protect ~finally:(fun () -> knob := old) f
  in
  let fresh_slowdown k =
    (* bypass the cache: these knobs change generated code *)
    let image = Shift.Session.build ~mode:word k.Spec.program in
    let report =
      Shift.Session.run_image ~policy:Policy.default ~fuel
        ~setup:(Spec.setup ~tainted:true k) image
    in
    float_of_int report.Shift.Report.stats.Shift_machine.Stats.cycles
    /. float_of_int (cycles_of ~tainted:false k Mode.Uninstrumented)
  in
  let rows =
    List.map
      (fun k ->
        let optimized = slowdown k word in
        let no_analysis =
          with_knob Shift_compiler.Instrument.relax_all_compares true (fun () ->
              fresh_slowdown k)
        in
        let no_skip =
          with_knob Shift_compiler.Instrument.skip_save_restore false (fun () ->
              fresh_slowdown k)
        in
        let per_use =
          with_knob Shift_compiler.Instrument.nat_source_strategy
            Shift_compiler.Instrument.Per_use (fun () -> fresh_slowdown k)
        in
        [ k.Spec.name; f2 optimized; f2 no_analysis; f2 no_skip; f2 per_use ])
      kernels
  in
  table
    ~columns:
      [ "kernel"; "optimized"; "relax all compares"; "instrument reg save/restore";
        "NaT source per use" ]
    rows;
  note "the static taint analysis (relax only possibly-tainted compares) and the";
  note "UNAT-carried register save/restore are the two compiler optimizations";
  note "DESIGN.md calls out; both are essential to SHIFT-level overheads.";
  note "\"NaT source per use\" regenerates the tag-source register at every";
  note "tainting site — the strategy the paper's §4.4 measured at ~3X the cost";
  note "of keeping it resident.  In this simulator the extra sequence hides in";
  note "spare issue slots, so the penalty is small: the paper's 3X was Itanium";
  note "scheduling pressure, which a 6-wide in-order model with free slots in";
  note "instrumented code does not reproduce."
