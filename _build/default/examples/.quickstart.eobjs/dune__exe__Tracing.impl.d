examples/tracing.ml: Array Build Format Instr Int64 Ir List Program Reg Shift Shift_compiler Shift_isa Shift_machine String
