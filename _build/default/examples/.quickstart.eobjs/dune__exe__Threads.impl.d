examples/threads.ml: Build Char Format Ir List Shift Shift_compiler Shift_os String
