examples/threads.mli:
