examples/attack_demo.ml: Format List Shift Shift_attacks Shift_compiler Shift_os Shift_policy String
