examples/quickstart.ml: Buffer Build Format Ir List Shift Shift_compiler Shift_machine Shift_mem Shift_os Shift_policy
