examples/tracing.mli:
