examples/quickstart.mli:
