examples/policy_lab.ml: Format Lazy List Shift Shift_compiler Shift_os Shift_policy Shift_workloads String
