(* Tracing: watch NaT bits move through the pipeline, and read the
   SHIFT instrumentation the compiler inserts.

   Run with: dune exec examples/tracing.exe *)

open Shift_isa
module Cpu = Shift_machine.Cpu

(* -------- part 1: the deferred-exception lifecycle, hand-written ---- *)

let m ?qp op = Program.I (Instr.mk ?qp op)

let demo_program =
  Program.assemble
    [
      (* conjure a NaT the Figure-5 way: speculative load from a faked
         invalid address *)
      m (Instr.Movi (5, Int64.shift_left 1L 45));
      m (Instr.Ld { width = Instr.W8; dst = 5; addr = 5; spec = true; fill = false });
      (* propagate it through computation *)
      m (Instr.Movi (6, 41L));
      m (Instr.Arith (Instr.Add, 7, 6, Instr.R 5));
      (* test it, then purge it with the xor idiom *)
      m (Instr.Tnat { pt = 1; pf = 2; src = 7 });
      m (Instr.Arith (Instr.Xor, 7, 7, Instr.R 7));
      m (Instr.Tnat { pt = 3; pf = 4; src = 7 });
      m Instr.Halt;
    ]

let trace_nat () =
  print_endline "== NaT propagation, instruction by instruction ==";
  let cpu = Cpu.create demo_program in
  cpu.Cpu.trace <-
    Some
      (fun t ip i ->
        let nats =
          List.filter (Cpu.get_nat t) [ 5; 6; 7 ]
          |> List.map (fun r -> Reg.to_string r)
          |> String.concat ","
        in
        Format.printf "  %2d  %-28s NaT:{%s}@." ip (Instr.to_string i) nats);
  (match Cpu.run cpu with
  | Cpu.Exited _ -> ()
  | _ -> prerr_endline "unexpected outcome");
  Format.printf "  final predicates: p1(tainted before xor)=%b p3(after xor)=%b@.@."
    cpu.Cpu.preds.(1) cpu.Cpu.preds.(3)

(* -------- part 2: what the SHIFT pass inserts ----------------------- *)

open Build
open Build.Infix

let tiny =
  {
    Ir.globals = [];
    funcs =
      [
        func "main" ~params:[] ~locals:[ array "a" 8; scalar "x" ]
          [
            set "x" (load64 (v "a"));
            store64 (v "a") (v "x" +: i 1);
            ret (v "x");
          ];
      ];
  }

let show_listing mode =
  let image = Shift.Session.build ~with_runtime:false ~mode tiny in
  Format.printf "== main() compiled with mode %s (%d instructions) ==@."
    (Shift_compiler.Mode.to_string mode)
    (Shift_compiler.Image.code_size image);
  Format.printf "%a@." Program.pp_listing image.Shift_compiler.Image.program

let () =
  trace_nat ();
  show_listing Shift_compiler.Mode.Uninstrumented;
  show_listing Shift_compiler.Mode.shift_word
