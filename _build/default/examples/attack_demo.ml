(* The paper's Figure-1 walk-through: the qwik-smtpd 0.3 buffer
   overflow, exploited with and without SHIFT, plus the full Table-2
   attack suite.

   Run with: dune exec examples/attack_demo.exe *)

module Mode = Shift_compiler.Mode
module Q = Shift_attacks.Qwik_smtpd
module Case = Shift_attacks.Attack_case

let run_qwik ~mode helo =
  Shift.Session.run ~policy:Shift_policy.Policy.default
    ~setup:(fun w -> Shift_os.World.queue_request w helo)
    ~mode Q.program

let show title (r : Shift.Report.t) =
  Format.printf "  %-42s %a@." title Shift.Report.pp_outcome r.Shift.Report.outcome;
  String.split_on_char '\n' (String.trim r.Shift.Report.output)
  |> List.iter (fun line -> if line <> "" then Format.printf "      server: %s@." line)

let () =
  print_endline "== qwik-smtpd 0.3 (paper Figure 1) ==";
  print_endline "clienthelo[32] sits right below localip[64]; HELO is copied with";
  print_endline "an unchecked strcpy.  A long argument rewrites localip so the";
  print_endline "relay check compares attacker data against attacker data.";
  print_newline ();
  show "benign HELO, with SHIFT:" (run_qwik ~mode:Mode.shift_word Q.benign_helo);
  show "overflowing HELO, no SHIFT:" (run_qwik ~mode:Mode.Uninstrumented Q.exploit_helo);
  show "overflowing HELO, with SHIFT:" (run_qwik ~mode:Mode.shift_word Q.exploit_helo);
  print_newline ();
  print_endline "== the Table-2 suite, exploits under SHIFT (word level) ==";
  List.iter
    (fun (c : Case.t) ->
      let r =
        Shift.Session.run ~policy:c.Case.policy ~setup:c.Case.exploit
          ~mode:Mode.shift_word c.Case.program
      in
      Format.printf "  %-22s %-22s -> %a@." c.Case.program_name c.Case.attack_type
        Shift.Report.pp_outcome r.Shift.Report.outcome)
    Shift_attacks.Attacks.all
