(* Policy lab: the same guest binary under different security policies.

   SHIFT decouples the tracking mechanism from policy (paper §3): the
   hardware propagates tags either way; what counts as a violation is a
   software decision.  This example serves one malicious HTTP request
   to the web server under four policy configurations.

   Run with: dune exec examples/policy_lab.exe *)

module Mode = Shift_compiler.Mode
module Policy = Shift_policy.Policy
module World = Shift_os.World
module Httpd = Shift_workloads.Httpd

let evil_request = "GET /../../root/secrets.txt HTTP/1.0\r\n\r\n"

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let image = lazy (Shift.Session.build ~mode:Mode.shift_word Httpd.program)

let serve policy =
  Shift.Session.run_image ~policy ~io_cost:Httpd.io_cost
    ~setup:(fun w ->
      World.add_file w ~tainted:false "root/secrets.txt" "THE-SECRET";
      World.queue_request w evil_request)
    (Lazy.force image)

let show title (r : Shift.Report.t) =
  Format.printf "  %-34s -> %a" title Shift.Report.pp_outcome r.Shift.Report.outcome;
  List.iter
    (fun a -> Format.printf " [logged: %s]" (Shift_policy.Alert.to_string a))
    r.Shift.Report.logged;
  if contains r.Shift.Report.output "THE-SECRET" then
    Format.printf "  !! secret leaked";
  Format.printf "@."

let () =
  print_endline "One traversal request, four policies (same compiled image):";
  print_newline ();
  show "H2 over the document root" (serve Httpd.policy);
  show "H2, but log-and-continue" (serve { Httpd.policy with Policy.action = Policy.Log_only });
  show "low-level policies only" (serve Policy.default);
  show "tracking without any policy"
    (serve { Policy.default with Policy.low_level = false });
  print_newline ();
  print_endline "The mechanism never changed - only the configuration file did";
  print_endline "(paper section 3: policies are decoupled from tracking).";
  print_newline ();
  print_endline "Enabled policies in the strict configuration:";
  List.iter (fun l -> print_endline ("  - " ^ l)) (Policy.describe Httpd.policy)
