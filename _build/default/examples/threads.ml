(* Threads: the paper's future-work item, working.

   Two workers hash halves of a tainted file into a shared table under
   a ticket lock; the taint follows the data across harts because the
   bitmap lives in the shared memory.  A third run shows the §4.4
   caveat: with an adversarial scheduling quantum, unserialised bitmap
   updates can tear.

   Run with: dune exec examples/threads.exe *)

open Build
open Build.Infix
module Mode = Shift_compiler.Mode
module World = Shift_os.World

let program =
  {
    Ir.globals = [ global_zeros "table" 64; global_zeros "tablelock" 16 ];
    funcs =
      [
        (* arg packs (offset << 16) | length; data lives in the shared
           heap buffer published through the table's last slot *)
        func "worker" ~params:[ "arg" ]
          ~locals:[ scalar "base"; scalar "k"; scalar "h"; scalar "off"; scalar "len" ]
          [
            set "base" (load64 (v "table" +: i 48));
            set "off" (v "arg" >>: i 16);
            set "len" (v "arg" &: i 0xffff);
            set "h" (i 5381);
            Ir.Expr (call "mutex_lock" [ v "tablelock" ]);
            Ir.Expr
              (call "mutex_unlock" [ v "tablelock" ]) (* exercise the lock *);
            set "k" (i 0);
            while_ (v "k" <: v "len")
              [
                set "h" ((v "h" *: i 33) ^: load8 (v "base" +: v "off" +: v "k"));
                set "k" (v "k" +: i 1);
              ];
            (* publish the (tainted) hash under the lock *)
            Ir.Expr (call "mutex_lock" [ v "tablelock" ]);
            store64 (v "table" +: ((v "off" /: i 1024) *: i 8)) (v "h");
            Ir.Expr (call "mutex_unlock" [ v "tablelock" ]);
            ret (v "h");
          ];
        func "main" ~params:[]
          ~locals:[ scalar "fd"; scalar "buf"; scalar "n"; scalar "t1"; scalar "t2" ]
          [
            set "fd" (call "sys_open" [ str "input.dat" ]);
            when_ (v "fd" <: i 0) [ ret (i 1) ];
            set "buf" (call "malloc" [ i 4096 ]);
            set "n" (call "sys_read" [ v "fd"; v "buf"; i 2048 ]);
            store64 (v "table" +: i 48) (v "buf");
            set "t1" (call "sys_spawn" [ fnptr "worker"; i 1024 ]);
            set "t2" (call "sys_spawn" [ fnptr "worker"; (i 1024 <<: i 16) |: i 1024 ]);
            Ir.Expr (call "sys_join" [ v "t1" ]);
            Ir.Expr (call "sys_join" [ v "t2" ]);
            (* both hashes were computed from tainted bytes *)
            ret (call "sys_taint_chk" [ v "table"; i 16 ] );
          ];
      ];
  }

let () =
  let input = String.init 2048 (fun k -> Char.chr (k * 31 mod 251)) in
  let run quantum =
    Shift.Session.run_mt ~quantum ~mode:Mode.shift_word
      ~policy:{ Shift.Policy.default with Shift.Policy.taint_files = true }
      ~setup:(fun w -> World.add_file w "input.dat" input)
      program
  in
  print_endline "Two harts hash halves of a tainted file into a shared table";
  print_endline "under a fetchadd ticket lock.  The taint crosses threads through";
  print_endline "the shared bitmap: the published hashes' table slots are tainted.";
  print_newline ();
  List.iter
    (fun quantum ->
      let r = run quantum in
      Format.printf "  quantum %-6d -> %a (tainted table bytes: the exit code)@."
        quantum Shift.Report.pp_outcome r.Shift.Report.outcome)
    [ 50; 7; 3 ];
  print_newline ();
  print_endline "(The paper's prototype stays single-threaded because these bitmap";
  print_endline " updates are not serialised; test/test_smp.ml shows the tearing.)"
