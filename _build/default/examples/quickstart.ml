(* Quickstart: write a tiny guest program in the IR, run it under SHIFT
   and watch taint flow from a file into a pointer dereference.

   Run with: dune exec examples/quickstart.exe *)

open Build
open Build.Infix
module Mode = Shift_compiler.Mode
module Policy = Shift_policy.Policy
module World = Shift_os.World

(* A program with a classic bug: it reads 8 bytes from a file and uses
   them as an address. *)
let program =
  {
    Ir.globals = [];
    funcs =
      [
        func "main" ~params:[] ~locals:[ scalar "fd"; array "buf" 16; scalar "p" ]
          [
            set "fd" (call "sys_open" [ str "config.bin" ]);
            when_ (v "fd" <: i 0) [ ret (i 1) ];
            Ir.Expr (call "sys_read" [ v "fd"; v "buf"; i 16 ]);
            ecall "println" [ str "config loaded, dereferencing stored pointer..." ];
            set "p" (load64 (v "buf"));
            ret (load64 (v "p"));
          ];
      ];
  }

(* the "attacker-controlled" file: its first 8 bytes are a pointer *)
let config =
  let b = Buffer.create 16 in
  Buffer.add_int64_le b (Shift_mem.Addr.in_region 1 0x10000L);
  Buffer.add_string b "padding!";
  Buffer.contents b

let policy = { Policy.default with Policy.taint_files = true }

let run mode =
  let report =
    Shift.Session.run ~policy
      ~setup:(fun w -> World.add_file w "config.bin" config)
      ~mode program
  in
  Format.printf "  mode %-12s -> %a  (%d instructions, %d cycles)@."
    (Mode.to_string mode) Shift.Report.pp_outcome report.Shift.Report.outcome
    report.Shift.Report.stats.Shift_machine.Stats.instructions
    report.Shift.Report.stats.Shift_machine.Stats.cycles

let () =
  print_endline "The guest dereferences a pointer it read from an untrusted file.";
  print_endline "Uninstrumented, the bug is invisible; under SHIFT the loaded";
  print_endline "pointer carries a NaT bit and policy L1 stops the dereference:";
  print_newline ();
  List.iter run
    [ Mode.Uninstrumented; Mode.shift_word; Mode.shift_byte;
      Mode.Shift { granularity = Shift_mem.Granularity.Word; enh = Mode.enh_both } ]
