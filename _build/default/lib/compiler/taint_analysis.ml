open Shift_isa

(* 128-bit register set as two int64 words *)
module Set128 = struct
  type t = { lo : int64; hi : int64 }

  let empty = { lo = 0L; hi = 0L }

  let mem t r =
    if r < 64 then Int64.logand (Int64.shift_right_logical t.lo r) 1L = 1L
    else Int64.logand (Int64.shift_right_logical t.hi (r - 64)) 1L = 1L

  let add t r =
    if r < 64 then { t with lo = Int64.logor t.lo (Int64.shift_left 1L r) }
    else { t with hi = Int64.logor t.hi (Int64.shift_left 1L (r - 64)) }

  let remove t r =
    if r < 64 then { t with lo = Int64.logand t.lo (Int64.lognot (Int64.shift_left 1L r)) }
    else { t with hi = Int64.logand t.hi (Int64.lognot (Int64.shift_left 1L (r - 64))) }

  let union a b = { lo = Int64.logor a.lo b.lo; hi = Int64.logor a.hi b.hi }
  let equal a b = Int64.equal a.lo b.lo && Int64.equal a.hi b.hi
end

type t = { before : Set128.t array }

let operand_tainted s = function
  | Instr.R r -> Set128.mem s r
  | Instr.Imm _ -> false

(* strong updates only for unpredicated instructions; a predicated-off
   write leaves the old value (and its tag) in place *)
let assign ~strong s d v =
  if v then Set128.add s d
  else if strong && d <> Reg.zero then Set128.remove s d
  else s

let transfer (i : Instr.t) s =
  let strong = i.qp = Pred.p0 in
  match i.op with
  | Instr.Movi (d, _) | Instr.Lea (d, _) -> assign ~strong s d false
  | Instr.Mov (d, src) -> assign ~strong s d (Set128.mem s src)
  | Instr.Arith (a, d, s1, o) ->
      let clear_idiom =
        match (a, o) with
        | (Instr.Xor | Instr.Sub), Instr.R s2 -> s1 = s2
        | _ -> false
      in
      let v = (not clear_idiom) && (Set128.mem s s1 || operand_tainted s o) in
      assign ~strong s d v
  | Instr.Extr { dst; src; _ } -> assign ~strong s dst (Set128.mem s src)
  | Instr.Fetchadd { dst; _ } ->
      (* the machine clears the result's NaT: sync variables untracked *)
      assign ~strong s dst false
  | Instr.Ld { dst; _ } ->
      (* anything loaded from memory may be tainted *)
      assign ~strong s dst true
  | Instr.Call _ | Instr.Call_reg _ -> assign ~strong s Reg.ret true
  | Instr.Syscall ->
      (* the OS writes r8 with a clear NaT *)
      assign ~strong s Reg.ret false
  | Instr.Setnat r -> assign ~strong s r true
  | Instr.Clrnat r -> assign ~strong s r false
  | Instr.Nop | Instr.Cmp _ | Instr.Tnat _ | Instr.St _ | Instr.Chk_s _
  | Instr.Br _ | Instr.Br_reg _ | Instr.Ret | Instr.Halt ->
      s

let analyse items =
  let instrs = Array.of_list (List.filter_map (function Program.I i -> Some i | Program.Label _ -> None) items) in
  let n = Array.length instrs in
  let label_index = Hashtbl.create 16 in
  let all_labels = ref [] in
  let idx = ref 0 in
  List.iter
    (function
      | Program.Label l ->
          Hashtbl.replace label_index l !idx;
          all_labels := !idx :: !all_labels
      | Program.I _ -> incr idx)
    items;
  let target l = match Hashtbl.find_opt label_index l with Some k -> [ k ] | None -> [] in
  let successors k (i : Instr.t) =
    let fallthrough = if k + 1 <= n then [ k + 1 ] else [] in
    match i.op with
    | Instr.Br l -> if i.qp = Pred.p0 then target l else target l @ fallthrough
    | Instr.Br_reg _ -> !all_labels (* unknown target: every label *)
    | Instr.Chk_s { recovery; _ } -> target recovery @ fallthrough
    | Instr.Ret | Instr.Halt -> if i.qp = Pred.p0 then [] else fallthrough
    | _ -> fallthrough
  in
  let before = Array.make (n + 1) Set128.empty in
  (* entry: arguments and the return register may be tainted *)
  let entry =
    List.fold_left Set128.add Set128.empty (Reg.ret :: List.init Reg.max_args Reg.arg)
  in
  before.(0) <- entry;
  let changed = ref true in
  while !changed do
    changed := false;
    for k = 0 to n - 1 do
      let out = transfer instrs.(k) before.(k) in
      List.iter
        (fun succ ->
          if succ <= n then begin
            let merged = Set128.union before.(succ) out in
            if not (Set128.equal merged before.(succ)) then begin
              before.(succ) <- merged;
              changed := true
            end
          end)
        (successors k instrs.(k))
    done
  done;
  { before }

let may_be_tainted t ~index r =
  if index < 0 || index >= Array.length t.before then true
  else Set128.mem t.before.(index) r
