(** Lowering from the IR to the simulated ISA (uninstrumented).

    Calling convention:
    - arguments in r16-r23, return value in r8, stack pointer r12;
    - scalar locals live in r40-r63 (overflow spills to the frame);
    - expression temporaries in r64-r120, stack-disciplined;
    - r121-r127, p6, p7 are reserved for the instrumentation pass;
    - r29/r30/r31 are the instrumentation's global constants.

    Every function is emitted as an independent unit starting with its
    entry label; the SHIFT pass then rewrites each unit.  All memory
    accesses are emitted as plain loads/stores; conversion of stores to
    [st.spill] is the instrumentation pass's job (paper Figure 5). *)

exception Codegen_error of string

val intrinsics : (string * (int * int)) list
(** Compiler intrinsics: IR function name -> (syscall number, arity). *)

val externals : string list
(** Intrinsic names, for {!Ir.validate}. *)

val gen_func :
  Layout.Dataseg.t -> Ir.func -> Shift_isa.Program.item list
(** Compile one function into an item list beginning with its label. *)

val gen_start : unit -> Shift_isa.Program.item list
(** The [_start] unit: set up the stack, call [main], halt. *)
