lib/compiler/compile.mli: Image Ir Mode
