lib/compiler/image.ml: List Mode Shift_isa String
