lib/compiler/mode.mli: Format Shift_mem
