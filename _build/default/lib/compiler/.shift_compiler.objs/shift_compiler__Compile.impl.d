lib/compiler/compile.ml: Codegen Image Instrument Ir Layout List Mode Shift_isa
