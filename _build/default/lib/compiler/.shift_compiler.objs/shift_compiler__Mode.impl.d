lib/compiler/mode.ml: Format Printf Shift_mem
