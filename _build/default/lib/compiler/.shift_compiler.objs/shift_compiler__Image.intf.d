lib/compiler/image.mli: Mode Shift_isa
