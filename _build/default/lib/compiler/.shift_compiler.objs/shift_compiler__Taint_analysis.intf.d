lib/compiler/taint_analysis.mli: Shift_isa
