lib/compiler/instrument.ml: Cond Instr Int64 Layout List Mode Pred Program Prov Reg Shift_isa Shift_mem Sysno Taint_analysis
