lib/compiler/layout.ml: Buffer Hashtbl Int64 Ir List Printf Shift_mem String
