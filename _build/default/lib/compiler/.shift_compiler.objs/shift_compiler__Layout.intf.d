lib/compiler/layout.mli: Ir
