lib/compiler/taint_analysis.ml: Array Hashtbl Instr Int64 List Pred Program Reg Shift_isa
