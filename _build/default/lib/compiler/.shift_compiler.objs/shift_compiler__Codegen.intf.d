lib/compiler/codegen.mli: Ir Layout Shift_isa
