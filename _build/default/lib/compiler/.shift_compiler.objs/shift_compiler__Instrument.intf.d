lib/compiler/instrument.mli: Mode Shift_isa
