lib/compiler/codegen.ml: Cond Hashtbl Instr Int64 Ir Layout List Option Printf Program Reg Shift_isa Sysno
