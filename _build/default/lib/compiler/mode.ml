type enhancements = { set_clear_nat : bool; nat_aware_cmp : bool }

type t =
  | Uninstrumented
  | Shift of { granularity : Shift_mem.Granularity.t; enh : enhancements }
  | Software_dbt of { granularity : Shift_mem.Granularity.t }

let no_enh = { set_clear_nat = false; nat_aware_cmp = false }
let enh1 = { set_clear_nat = true; nat_aware_cmp = false }
let enh_both = { set_clear_nat = true; nat_aware_cmp = true }

let shift_byte = Shift { granularity = Shift_mem.Granularity.Byte; enh = no_enh }
let shift_word = Shift { granularity = Shift_mem.Granularity.Word; enh = no_enh }

let uses_nat = function
  | Uninstrumented | Software_dbt _ -> false
  | Shift _ -> true

let to_string = function
  | Uninstrumented -> "uninstrumented"
  | Shift { granularity; enh } ->
      Printf.sprintf "shift-%s%s%s"
        (Shift_mem.Granularity.to_string granularity)
        (if enh.set_clear_nat then "+setclr" else "")
        (if enh.nat_aware_cmp then "+tacmp" else "")
  | Software_dbt { granularity } ->
      Printf.sprintf "software-dbt-%s" (Shift_mem.Granularity.to_string granularity)

let pp ppf m = Format.pp_print_string ppf (to_string m)
