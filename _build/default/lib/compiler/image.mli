(** A compiled, linked, instrumented executable image. *)

type t = {
  program : Shift_isa.Program.t;
  data : (int64 * string) list;     (** initialised data chunks *)
  symbols : (string * int64) list;  (** data symbols *)
  mode : Mode.t;
  func_sizes : (string * int) list;
      (** static instruction count per compilation unit (function),
          after instrumentation — the Table-3 measurement *)
}

val code_size : t -> int
(** Total static instructions. *)

val size_of_funcs : t -> prefix:string -> int
(** Combined size of all units whose name starts with [prefix] (used to
    separate the runtime library, whose functions are prefixed, from
    application code). *)

val symbol : t -> string -> int64
(** @raise Not_found *)
