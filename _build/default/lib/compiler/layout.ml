let region1 off = Shift_mem.Addr.in_region 1 off
let data_base = region1 0x10000L
let heap_base = region1 0x2000_0000L
let stack_top = region1 0x4000_0000L
let shadow_base = Shift_mem.Addr.in_region 3 0x10000L
let scratch_symbol = "__scratch"

module Dataseg = struct
  type t = {
    mutable next : int64;
    mutable chunks : (int64 * string) list;
    symbols : (string, int64) Hashtbl.t;
    strings : (string, int64) Hashtbl.t;
  }

  let align8 n = Int64.logand (Int64.add n 7L) (Int64.lognot 7L)

  let create () =
    let t =
      {
        next = data_base;
        chunks = [];
        symbols = Hashtbl.create 64;
        strings = Hashtbl.create 64;
      }
    in
    (* the NaT-stripping scratch slot exists in every program *)
    Hashtbl.add t.symbols scratch_symbol t.next;
    t.next <- Int64.add t.next 8L;
    t

  let alloc t name bytes_opt size =
    let addr = t.next in
    if Hashtbl.mem t.symbols name then
      invalid_arg (Printf.sprintf "Dataseg.alloc: duplicate symbol %S" name);
    Hashtbl.add t.symbols name addr;
    (match bytes_opt with
    | Some b -> t.chunks <- (addr, b) :: t.chunks
    | None -> ());
    t.next <- align8 (Int64.add addr (Int64.of_int size));
    addr

  let bytes_of_words ws =
    let b = Buffer.create (8 * List.length ws) in
    List.iter (fun w -> Buffer.add_int64_le b w) ws;
    Buffer.contents b

  let add_global t (g : Ir.global) =
    match g.datum with
    | Ir.Bytes s ->
        ignore (alloc t g.gname (Some (s ^ "\000")) (String.length s + 1))
    | Ir.Zeros n -> ignore (alloc t g.gname None n)
    | Ir.Words ws ->
        let b = bytes_of_words ws in
        ignore (alloc t g.gname (Some b) (String.length b))

  let string_counter = ref 0

  let intern_string t s =
    match Hashtbl.find_opt t.strings s with
    | Some a -> a
    | None ->
        incr string_counter;
        let name = Printf.sprintf "__str%d" !string_counter in
        let a = alloc t name (Some (s ^ "\000")) (String.length s + 1) in
        Hashtbl.add t.strings s a;
        a

  let symbol t name = Hashtbl.find t.symbols name
  let chunks t = List.rev t.chunks
  let symbols t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.symbols []
end
