(** Memory layout of compiled guest programs.

    Applications live in region 1 (data, heap, stack); region 0 is the
    tag space (paper §4.1); region 3 holds the register shadow table of
    the software-DBT baseline mode. *)

val data_base : int64
val heap_base : int64
val stack_top : int64
val shadow_base : int64
(** Base of the per-register shadow-tag table (software-DBT mode). *)

val scratch_symbol : string
(** Name of the 8-byte scratch slot used by NaT-stripping spill/fill
    sequences; every data segment contains it. *)

(** Mutable data-segment builder: bump-allocates globals and interned
    string literals, accumulating initialised chunks and a symbol
    table. *)
module Dataseg : sig
  type t

  val create : unit -> t
  val add_global : t -> Ir.global -> unit
  val intern_string : t -> string -> int64
  (** Address of a NUL-terminated copy of the literal (deduplicated). *)

  val symbol : t -> string -> int64
  (** @raise Not_found for an unknown symbol. *)

  val chunks : t -> (int64 * string) list
  (** Initialised data as (address, bytes) pairs. *)

  val symbols : t -> (string * int64) list
end
