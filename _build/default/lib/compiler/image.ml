type t = {
  program : Shift_isa.Program.t;
  data : (int64 * string) list;
  symbols : (string * int64) list;
  mode : Mode.t;
  func_sizes : (string * int) list;
}

let code_size t = Shift_isa.Program.size t.program

let size_of_funcs t ~prefix =
  List.fold_left
    (fun acc (name, n) ->
      if String.length name >= String.length prefix
         && String.sub name 0 (String.length prefix) = prefix
      then acc + n
      else acc)
    0 t.func_sizes

let symbol t name = List.assoc name t.symbols
