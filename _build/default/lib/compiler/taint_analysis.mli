(** Static may-taint analysis over a compiled function.

    A forward dataflow fixpoint computing, for every instruction, the
    set of registers that may carry a taint (NaT) when it executes.
    The instrumentation pass uses it to relax only the compares whose
    operands may actually be tainted — the paper's observation that the
    compiler "has program semantics" and that simple analysis removes
    unnecessary tracking code (§3.3.2, §4.4).

    Sources of taint: function arguments and returned values of guest
    calls, every value loaded from memory, [setnat].  System calls
    return clean values (the OS writes r8 with a clear NaT), and
    [clrnat] (the untaint builtin) scrubs its register.  Predicated
    writes merge with the incoming state, so the result over-
    approximates: a register reported clean can never hold a NaT at
    run time. *)

type t

val analyse : Shift_isa.Program.item list -> t
(** Run the fixpoint over one function unit. *)

val may_be_tainted : t -> index:int -> Shift_isa.Reg.t -> bool
(** Whether the register may be tainted just before the [index]-th
    instruction ([Program.I] items counted only, in order). *)
