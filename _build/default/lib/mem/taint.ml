let get_bit mem g a =
  let byte = Memory.read_u8 mem (Addr.tag_addr g a) in
  byte lsr Addr.tag_bit g a land 1 = 1

let set_bit mem g a v =
  let ta = Addr.tag_addr g a in
  let bit = Addr.tag_bit g a in
  let byte = Memory.read_u8 mem ta in
  let byte = if v then byte lor (1 lsl bit) else byte land lnot (1 lsl bit) in
  Memory.write_u8 mem ta byte

let grain = function Granularity.Byte -> 1 | Granularity.Word -> 8

let set_range mem g ~addr ~len ~tainted =
  if len > 0 then begin
    let step = grain g in
    (* align the walk to the grain so every covered unit is touched *)
    let first = Int64.logand addr (Int64.of_int (lnot (step - 1))) in
    let last = Int64.add addr (Int64.of_int (len - 1)) in
    let a = ref first in
    while Int64.unsigned_compare !a last <= 0 do
      set_bit mem g !a tainted;
      a := Int64.add !a (Int64.of_int step)
    done
  end

let is_tainted mem g a = get_bit mem g a

let fold_range mem g ~addr ~len f init =
  let acc = ref init in
  for i = 0 to len - 1 do
    let a = Int64.add addr (Int64.of_int i) in
    acc := f !acc i (get_bit mem g a)
  done;
  !acc

let any_tainted mem g ~addr ~len =
  fold_range mem g ~addr ~len (fun acc _ b -> acc || b) false

let count_tainted mem g ~addr ~len =
  fold_range mem g ~addr ~len (fun acc _ b -> if b then acc + 1 else acc) 0

let first_tainted mem g ~addr ~len =
  fold_range mem g ~addr ~len
    (fun acc i b -> match acc with Some _ -> acc | None -> if b then Some i else None)
    None

let tainted_string_positions mem g addr s =
  let out = ref [] in
  String.iteri
    (fun i _ ->
      if get_bit mem g (Int64.add addr (Int64.of_int i)) then out := i :: !out)
    s;
  List.rev !out
