(** Host-side access to the in-memory taint bitmap.

    The bitmap lives inside guest memory (region 0), exactly where the
    instrumented code reads and updates it; this module is how the OS
    layer (taint sources, paper §3.3.1) and the policy engine (sinks)
    manipulate the same bits from outside the guest. *)

val set_range :
  Memory.t -> Granularity.t -> addr:int64 -> len:int -> tainted:bool -> unit
(** Mark [len] bytes starting at [addr] tainted or clean.  With word
    granularity this conservatively covers every 8-byte word the range
    touches, as real word-level SHIFT does. *)

val is_tainted : Memory.t -> Granularity.t -> int64 -> bool
(** Whether the byte at the address is tainted (at word granularity:
    whether its enclosing word is). *)

val any_tainted : Memory.t -> Granularity.t -> addr:int64 -> len:int -> bool

val count_tainted : Memory.t -> Granularity.t -> addr:int64 -> len:int -> int
(** Number of tainted bytes in the range. *)

val first_tainted : Memory.t -> Granularity.t -> addr:int64 -> len:int -> int option
(** Offset within the range of the first tainted byte, if any. *)

val tainted_string_positions : Memory.t -> Granularity.t -> int64 -> string -> int list
(** For a NUL-terminated guest string already read out as [s], the
    positions of its tainted bytes. *)
