(** Virtual-address arithmetic for the simulated Itanium-like machine.

    As on Itanium (paper §4.1), the 64-bit virtual address space is
    partitioned into eight regions selected by the top three address
    bits.  Region 0 is reserved (Itanium keeps it for IA-32 support);
    SHIFT reuses it as the {e tag space} holding the taint bitmap.

    Itanium implements fewer than 61 offset bits; the unimplemented bits
    create holes, so a tag address cannot be obtained with a plain shift.
    Instead, the translation keeps the implemented offset bits and drops
    the region into region 0 — Figure 4 of the paper.  We implement
    [impl_bits] = 40 implemented offset bits. *)

val region_shift : int
(** Bit position of the region number (61). *)

val impl_bits : int
(** Number of implemented offset bits (40). *)

val impl_mask : int64
(** [(1 << impl_bits) - 1]: mask of the implemented offset bits.  The
    instrumentation keeps this constant in a reserved register. *)

val null_guard : int64
(** Offsets below this value are invalid in every region (the null
    page), so that null-pointer dereferences fault. *)

val region : int64 -> int
(** Region number (top three bits) of an address. *)

val offset : int64 -> int64
(** Implemented offset bits of an address. *)

val in_region : int -> int64 -> int64
(** [in_region r off] builds the canonical address of offset [off] in
    region [r]. *)

val is_canonical : int64 -> bool
(** True when all bits between [impl_bits] and [region_shift] are
    clear (no unimplemented bit set). *)

val is_valid : int64 -> bool
(** Canonical and outside the null guard page. *)

(** {1 Tag-space translation (Figure 4)} *)

val tag_addr : Granularity.t -> int64 -> int64
(** Address (in region 0) of the bitmap byte holding the tag bit(s) for
    the given data address. *)

val tag_bit : Granularity.t -> int64 -> int
(** Bit index within that bitmap byte of the data address's tag bit. *)

val tag_mask : Granularity.t -> width:int -> int64 -> int64
(** Bit mask within the bitmap byte covering an aligned access of
    [width] bytes at the address.  With byte granularity an 8-byte
    access covers eight bits; with word granularity any aligned access
    of at most 8 bytes covers one bit. *)

val pp : Format.formatter -> int64 -> unit
(** Prints as [rN:0x...]. *)
