lib/mem/granularity.mli: Format
