lib/mem/addr.mli: Format Granularity
