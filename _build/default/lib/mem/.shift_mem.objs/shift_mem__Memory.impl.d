lib/mem/memory.ml: Buffer Bytes Char Hashtbl Int64 String
