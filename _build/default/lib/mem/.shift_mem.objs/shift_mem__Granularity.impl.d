lib/mem/granularity.ml: Format
