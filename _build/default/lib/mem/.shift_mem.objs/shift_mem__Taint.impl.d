lib/mem/taint.ml: Addr Granularity Int64 List Memory String
