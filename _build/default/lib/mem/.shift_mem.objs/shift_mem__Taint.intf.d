lib/mem/taint.mli: Granularity Memory
