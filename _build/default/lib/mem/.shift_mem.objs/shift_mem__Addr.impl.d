lib/mem/addr.ml: Format Granularity Int64
