lib/mem/memory.mli:
