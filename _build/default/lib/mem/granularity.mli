(** Taint-tracking granularity.

    The paper evaluates SHIFT at byte level (one tag bit per byte of
    memory) and word level (one tag bit per 8-byte word, the paper's
    definition of a word). *)

type t = Byte | Word

val all : t list
val to_string : t -> string
val pp : Format.formatter -> t -> unit
