let region_shift = 61
let impl_bits = 40
let impl_mask = Int64.sub (Int64.shift_left 1L impl_bits) 1L
let null_guard = 4096L

let region a = Int64.to_int (Int64.logand (Int64.shift_right_logical a region_shift) 7L)
let offset a = Int64.logand a impl_mask

let in_region r off =
  if r < 0 || r > 7 then invalid_arg "Addr.in_region";
  Int64.logor (Int64.shift_left (Int64.of_int r) region_shift) (Int64.logand off impl_mask)

let unimplemented_mask =
  (* bits [impl_bits, region_shift) must be zero *)
  Int64.logxor
    (Int64.sub (Int64.shift_left 1L region_shift) 1L)
    impl_mask

let is_canonical a = Int64.equal (Int64.logand a unimplemented_mask) 0L
let is_valid a = is_canonical a && Int64.unsigned_compare (offset a) null_guard >= 0

(* Figure 4: move the region number down and recombine with the
   implemented bits.  One tag bit per byte means the bitmap byte index is
   offset >> 3; one tag bit per 8-byte word means offset >> 6.  The
   resulting offsets of distinct regions are kept disjoint by folding the
   region number into high offset bits of the tag space. *)
let region_fold a =
  Int64.shift_left (Int64.of_int (region a)) (impl_bits - 3)

let tag_addr g a =
  let shift = match g with Granularity.Byte -> 3 | Granularity.Word -> 6 in
  let folded = Int64.logor (Int64.shift_right_logical (offset a) shift) (region_fold a) in
  in_region 0 folded

let tag_bit g a =
  match g with
  | Granularity.Byte -> Int64.to_int (Int64.logand a 7L)
  | Granularity.Word -> Int64.to_int (Int64.logand (Int64.shift_right_logical a 3) 7L)

let tag_mask g ~width a =
  let bit = tag_bit g a in
  match g with
  | Granularity.Byte ->
      let n = min width (8 - bit) in
      Int64.shift_left (Int64.sub (Int64.shift_left 1L n) 1L) bit
  | Granularity.Word -> Int64.shift_left 1L bit

let pp ppf a = Format.fprintf ppf "r%d:0x%Lx" (region a) (offset a)
