type t = { pages : (int64, bytes) Hashtbl.t }

let page_size = 4096
let page_shift = 12
let page_mask = Int64.of_int (page_size - 1)

let create () = { pages = Hashtbl.create 1024 }

let page t a =
  let key = Int64.shift_right_logical a page_shift in
  match Hashtbl.find_opt t.pages key with
  | Some p -> p
  | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.add t.pages key p;
      p

let read_u8 t a =
  let p = page t a in
  Char.code (Bytes.get p (Int64.to_int (Int64.logand a page_mask)))

let write_u8 t a v =
  let p = page t a in
  Bytes.set p (Int64.to_int (Int64.logand a page_mask)) (Char.chr (v land 0xff))

let read t a ~width =
  let rec go i acc =
    if i >= width then acc
    else
      let b = read_u8 t (Int64.add a (Int64.of_int i)) in
      go (i + 1) (Int64.logor acc (Int64.shift_left (Int64.of_int b) (8 * i)))
  in
  go 0 0L

let write t a ~width v =
  for i = 0 to width - 1 do
    let b = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL) in
    write_u8 t (Int64.add a (Int64.of_int i)) b
  done

let read_bytes t a ~len =
  String.init len (fun i -> Char.chr (read_u8 t (Int64.add a (Int64.of_int i))))

let write_bytes t a s =
  String.iteri (fun i c -> write_u8 t (Int64.add a (Int64.of_int i)) (Char.code c)) s

let read_cstring ?(max = 65536) t a =
  let buf = Buffer.create 32 in
  let rec go i =
    if i >= max then ()
    else
      let b = read_u8 t (Int64.add a (Int64.of_int i)) in
      if b = 0 then ()
      else begin
        Buffer.add_char buf (Char.chr b);
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let write_cstring t a s =
  write_bytes t a s;
  write_u8 t (Int64.add a (Int64.of_int (String.length s))) 0

let allocated_pages t = Hashtbl.length t.pages
