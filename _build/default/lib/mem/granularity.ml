type t = Byte | Word

let all = [ Byte; Word ]
let to_string = function Byte -> "byte" | Word -> "word"
let pp ppf g = Format.pp_print_string ppf (to_string g)
