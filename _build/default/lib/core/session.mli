(** The public entry point: compile a guest program, run it under a
    policy, and report what happened.

    {[
      let report =
        Session.run ~mode:Shift_compiler.Mode.shift_word
          ~policy:Shift_policy.Policy.default
          ~setup:(fun world -> Shift_os.World.queue_request world payload)
          my_program
    ]} *)

val gran_of_mode : Shift_compiler.Mode.t -> Shift_mem.Granularity.t
(** The taint granularity a mode tracks at ([Word] for
    [Uninstrumented], whose bitmap is unused). *)

val build :
  ?with_runtime:bool ->
  ?taint_returns:string list ->
  mode:Shift_compiler.Mode.t ->
  Ir.program ->
  Shift_compiler.Image.t
(** Compile and link.  [with_runtime] (default true) merges in the
    {!Shift_runtime.Runtime} library.  [taint_returns] lists functions
    whose return values are taint sources (paper §3.3.1, source 4).
    @raise Shift_compiler.Compile.Error on invalid programs. *)

val load : Shift_compiler.Image.t -> Shift_machine.Cpu.t
(** Fresh machine with the image's initialised data written to
    memory. *)

val run_image :
  ?policy:Shift_policy.Policy.t ->
  ?io_cost:Shift_os.World.io_cost ->
  ?fuel:int ->
  ?setup:(Shift_os.World.t -> unit) ->
  Shift_compiler.Image.t ->
  Report.t
(** Run a compiled image on a fresh machine and OS world.  [setup] is
    called before execution to populate files and network requests. *)

val run :
  ?with_runtime:bool ->
  ?taint_returns:string list ->
  ?policy:Shift_policy.Policy.t ->
  ?io_cost:Shift_os.World.io_cost ->
  ?fuel:int ->
  ?setup:(Shift_os.World.t -> unit) ->
  mode:Shift_compiler.Mode.t ->
  Ir.program ->
  Report.t
(** [build] followed by [run_image]. *)

(** {1 Multi-threaded runs}

    The paper's future-work item (§4.4, §8): guest programs may call
    [sys_spawn(&f, arg)] and [sys_join(tid)]; harts share memory — and
    with it the taint bitmap, whose unserialised updates are the
    documented hazard (see test/test_smp.ml). *)

val run_image_mt :
  ?policy:Shift_policy.Policy.t ->
  ?io_cost:Shift_os.World.io_cost ->
  ?fuel:int ->
  ?setup:(Shift_os.World.t -> unit) ->
  ?quantum:int ->
  Shift_compiler.Image.t ->
  Report.t
(** Like {!run_image} with thread support enabled.  [quantum] is the
    round-robin scheduling quantum in instructions (default 50).  The
    report reflects hart 0. *)

val run_mt :
  ?with_runtime:bool ->
  ?taint_returns:string list ->
  ?policy:Shift_policy.Policy.t ->
  ?io_cost:Shift_os.World.io_cost ->
  ?fuel:int ->
  ?setup:(Shift_os.World.t -> unit) ->
  ?quantum:int ->
  mode:Shift_compiler.Mode.t ->
  Ir.program ->
  Report.t
(** [build] followed by {!run_image_mt}. *)
