lib/core/shift.ml: Report Session Shift_compiler Shift_mem Shift_os Shift_policy
