lib/core/session.mli: Ir Report Shift_compiler Shift_machine Shift_mem Shift_os Shift_policy
