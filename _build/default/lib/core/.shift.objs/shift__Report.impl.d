lib/core/report.ml: Format Shift_machine Shift_policy
