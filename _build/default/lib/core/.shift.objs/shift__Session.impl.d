lib/core/session.ml: Array Int64 Ir List Report Shift_compiler Shift_isa Shift_machine Shift_mem Shift_os Shift_policy Shift_runtime
