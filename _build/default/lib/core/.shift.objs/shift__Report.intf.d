lib/core/report.mli: Format Shift_machine Shift_policy
