module Mode = Shift_compiler.Mode
module Compile = Shift_compiler.Compile
module Image = Shift_compiler.Image
module Cpu = Shift_machine.Cpu
module Fault = Shift_machine.Fault
module Prov = Shift_isa.Prov
module Policy = Shift_policy.Policy
module Alert = Shift_policy.Alert
module World = Shift_os.World

let gran_of_mode = function
  | Mode.Uninstrumented -> Shift_mem.Granularity.Word
  | Mode.Shift { granularity; _ } | Mode.Software_dbt { granularity } -> granularity

let build ?(with_runtime = true) ?taint_returns ~mode prog =
  let prog = if with_runtime then Ir.merge Shift_runtime.Runtime.program prog else prog in
  Compile.compile ~mode ?taint_returns prog

let load (image : Image.t) =
  let cpu = Cpu.create image.program in
  List.iter
    (fun (addr, bytes) -> Shift_mem.Memory.write_bytes cpu.Cpu.mem addr bytes)
    image.data;
  cpu

(* A NaT-consumption fault raised by store-instrumentation code means
   the *store* address was tainted: the bitmap lookup (a load) faulted
   while computing the tag address of a store (Figure 5).  Reattribute
   it so the alert carries the right policy number (L2, not L1). *)
let effective_nat_use (image : Image.t) ip use =
  match use with
  | Fault.Load_address -> (
      if ip < 0 || ip >= Shift_isa.Program.size image.program then use
      else
        match (image.program.code.(ip)).Shift_isa.Instr.prov with
        | Prov.St_compute | Prov.St_mem -> Fault.Store_address
        | _ -> use)
  | _ -> use

let outcome_of image policy (res : Cpu.outcome) : Report.outcome =
  match res with
  | Cpu.Exited code -> Report.Exited code
  | Cpu.Out_of_fuel -> Report.Timeout
  | Cpu.Faulted (Fault.Nat_consumption use, ip) when policy.Policy.low_level -> (
      let use = effective_nat_use image ip use in
      match Policy.alert_of_fault (Fault.nat_use_to_string use) with
      | Some a -> Report.Alert a
      | None -> Report.Fault (Fault.Nat_consumption use))
  | Cpu.Faulted (f, _) -> Report.Fault f

let run_image ?(policy = Policy.default) ?(io_cost = World.default_io_cost)
    ?(fuel = 2_000_000_000) ?(setup = fun _ -> ()) (image : Image.t) =
  let cpu = load image in
  let world = World.create ~policy ~gran:(gran_of_mode image.mode) ~io_cost () in
  setup world;
  cpu.Cpu.syscall_handler <- Some (World.handler world);
  let outcome =
    match Cpu.run ~fuel cpu with
    | res -> outcome_of image policy res
    | exception Alert.Violation a -> Report.Alert a
  in
  {
    Report.outcome;
    stats = cpu.Cpu.stats;
    logged = World.alerts world;
    output = World.output world;
    html = World.html_output world;
    sql = World.sql_queries world;
    commands = World.system_commands world;
  }

let run ?with_runtime ?taint_returns ?policy ?io_cost ?fuel ?setup ~mode prog =
  run_image ?policy ?io_cost ?fuel ?setup (build ?with_runtime ?taint_returns ~mode prog)

(* ---------- multi-threaded runs (the paper's future work) ---------- *)

module Smp = Shift_machine.Smp

let run_image_mt ?(policy = Policy.default) ?(io_cost = World.default_io_cost)
    ?(fuel = 2_000_000_000) ?(setup = fun _ -> ()) ?quantum (image : Image.t) =
  let cpu = load image in
  let world = World.create ~policy ~gran:(gran_of_mode image.mode) ~io_cost () in
  setup world;
  cpu.Cpu.syscall_handler <- Some (World.handler world);
  let smp =
    Smp.create ?quantum ~stack_top:Shift_compiler.Layout.stack_top
      ~stack_stride:(Int64.of_int (1 lsl 20))
      cpu
  in
  World.set_threads world
    ~spawn:(fun parent ~entry ~arg -> Smp.spawn smp ~parent ~entry ~arg)
    ~join:(fun tid ->
      match Smp.state_of smp tid with
      | Some Smp.Running -> None
      | Some (Smp.Done v) -> Some v
      | Some (Smp.Crashed _) | None -> Some (-1L));
  let outcome =
    match Smp.run ~fuel smp with
    | res -> outcome_of image policy res
    | exception Alert.Violation a -> Report.Alert a
  in
  {
    Report.outcome;
    stats = cpu.Cpu.stats;
    logged = World.alerts world;
    output = World.output world;
    html = World.html_output world;
    sql = World.sql_queries world;
    commands = World.system_commands world;
  }

let run_mt ?with_runtime ?taint_returns ?policy ?io_cost ?fuel ?setup ?quantum ~mode prog =
  run_image_mt ?policy ?io_cost ?fuel ?setup ?quantum
    (build ?with_runtime ?taint_returns ~mode prog)
