(** The result of running a guest program under SHIFT. *)

type outcome =
  | Exited of int64
      (** normal termination with the given exit status *)
  | Alert of Shift_policy.Alert.t
      (** a security policy stopped the program *)
  | Fault of Shift_machine.Fault.t
      (** a machine fault not attributable to a policy *)
  | Timeout
      (** fuel exhausted *)

type t = {
  outcome : outcome;
  stats : Shift_machine.Stats.t;
  logged : Shift_policy.Alert.t list;
      (** alerts recorded under the [Log_only] action *)
  output : string;       (** bytes written to stdout / the network *)
  html : string;         (** bytes emitted through the HTML sink *)
  sql : string list;     (** queries the guest executed *)
  commands : string list;(** shell commands the guest executed *)
}

val detected : t -> bool
(** Whether any policy fired (a stopping alert or a logged one). *)

val alert : t -> Shift_policy.Alert.t option
(** The stopping alert, if the outcome is [Alert]. *)

val cycles : t -> int

val pp_outcome : Format.formatter -> outcome -> unit
val pp : Format.formatter -> t -> unit
