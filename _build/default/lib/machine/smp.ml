type state =
  | Running
  | Done of int64
  | Crashed of Fault.t * int

type hart = { id : int; cpu : Cpu.t; mutable state : state }

type t = {
  quantum : int;
  stack_top : int64;
  stack_stride : int64;
  mutable harts : hart list; (* kept in id order *)
}

let create ?(quantum = 50) ~stack_top ~stack_stride cpu =
  { quantum; stack_top; stack_stride; harts = [ { id = 0; cpu; state = Running } ] }

let spawn t ~parent ~entry ~arg =
  let id = List.length t.harts in
  let cpu = Cpu.create ~mem:parent.Cpu.mem parent.Cpu.program in
  (* inherit the register file: the reserved instrumentation constants
     (implemented-bits mask, scratch slot, NaT source) must be live in
     the child too *)
  Array.blit parent.Cpu.values 0 cpu.Cpu.values 0 (Array.length parent.Cpu.values);
  Array.blit parent.Cpu.nats 0 cpu.Cpu.nats 0 (Array.length parent.Cpu.nats);
  cpu.Cpu.syscall_handler <- parent.Cpu.syscall_handler;
  Cpu.set_value cpu Shift_isa.Reg.sp
    (Int64.sub t.stack_top (Int64.mul (Int64.of_int id) t.stack_stride));
  Cpu.set_nat cpu Shift_isa.Reg.sp false;
  Cpu.set_value cpu (Shift_isa.Reg.arg 0) arg;
  Cpu.set_nat cpu (Shift_isa.Reg.arg 0) false;
  cpu.Cpu.ip <- Int64.to_int entry;
  t.harts <- t.harts @ [ { id; cpu; state = Running } ];
  id

let state_of t id =
  List.find_opt (fun h -> h.id = id) t.harts |> Option.map (fun h -> h.state)

let cpu_of t id =
  List.find_opt (fun h -> h.id = id) t.harts |> Option.map (fun h -> h.cpu)

(* run one quantum on a hart; returns the instructions actually spent *)
let run_quantum t hart =
  let spent = ref 0 in
  (try
     while !spent < t.quantum && hart.state = Running do
       incr spent;
       match Cpu.step hart.cpu with
       | None -> ()
       | Some (Cpu.Exited v) -> hart.state <- Done v
       | Some (Cpu.Faulted (Fault.Call_stack_underflow, _)) when hart.id > 0 ->
           (* a secondary hart returning from its entry function is a
              normal thread exit; its result is in r8 *)
           hart.state <- Done (Cpu.get_value hart.cpu Shift_isa.Reg.ret)
       | Some (Cpu.Faulted (f, ip)) -> hart.state <- Crashed (f, ip)
       | Some Cpu.Out_of_fuel -> assert false
     done
   with Cpu.Exit_requested v -> hart.state <- Done v);
  !spent

let run ?(fuel = 2_000_000_000) t =
  let remaining = ref fuel in
  let outcome = ref None in
  while !outcome = None && !remaining > 0 do
    let progressed = ref false in
    List.iter
      (fun hart ->
        if hart.state = Running && !outcome = None then begin
          let spent = run_quantum t hart in
          if spent > 0 then progressed := true;
          remaining := !remaining - spent
        end;
        if hart.id = 0 then
          match hart.state with
          | Done v -> outcome := Some (Cpu.Exited v)
          | Crashed (f, ip) -> outcome := Some (Cpu.Faulted (f, ip))
          | Running -> ())
      t.harts;
    if not !progressed && !outcome = None then
      (* every hart is finished or crashed but hart 0 was not: cannot
         happen (hart 0 Running always progresses), but stay safe *)
      outcome := Some Cpu.Out_of_fuel
  done;
  match !outcome with Some o -> o | None -> Cpu.Out_of_fuel
