(** A small direct-mapped L1 data cache model.

    Only load latency depends on it (stores are assumed write-buffered
    but allocate their line).  Its role in the reproduction: the
    byte-level taint bitmap has 8x the footprint of the word-level one
    (one bit per byte vs. one bit per 8-byte word), so byte-level
    tracking suffers more bitmap misses — one of the reasons byte-level
    SHIFT is slower in the paper's Figure 7. *)

type t

val create : ?size_kb:int -> ?line_bytes:int -> unit -> t
(** Defaults: 16 KB, 64-byte lines (Itanium-2-like L1D). *)

val access : t -> int64 -> bool
(** Look up the line containing the address and allocate it; [true] on
    hit. *)

val hits : t -> int
val misses : t -> int

val miss_penalty : int
(** Extra load-use latency on a miss (cycles). *)
