(** Machine faults.

    NaT-consumption faults are the hardware half of SHIFT's low-level
    policies: using tainted (NaT) data as a load address is policy L1,
    as a store address L2, and as a control-transfer target L3
    (paper Table 1 and §3.3.3). *)

type nat_use =
  | Load_address    (** tainted register used as a load address (L1) *)
  | Store_address   (** tainted register used as a store address (L2) *)
  | Store_value     (** non-spill store of a NaT register *)
  | Branch_target   (** tainted indirect branch target (L3) *)
  | Call_target     (** tainted indirect call target (L3) *)

type t =
  | Nat_consumption of nat_use
  | Invalid_address of int64  (** non-canonical or null-guard access *)
  | Invalid_branch of int64   (** indirect transfer outside the code *)
  | Div_by_zero
  | Call_stack_overflow
  | Call_stack_underflow

val nat_use_to_string : nat_use -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
