lib/machine/smp.ml: Array Cpu Fault Int64 List Option Shift_isa
