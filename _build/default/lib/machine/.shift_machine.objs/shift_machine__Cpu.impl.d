lib/machine/cpu.ml: Array Cache Cond Fault Fun Instr Int64 Pipeline Pred Program Prov Reg Shift_isa Shift_mem Stack Stats
