lib/machine/cache.mli:
