lib/machine/pipeline.mli: Shift_isa
