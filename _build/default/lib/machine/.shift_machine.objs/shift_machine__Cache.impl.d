lib/machine/cache.ml: Array Int64
