lib/machine/stats.ml: Array Format Fun List Shift_isa
