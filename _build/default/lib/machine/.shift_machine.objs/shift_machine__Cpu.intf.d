lib/machine/cpu.mli: Cache Fault Pipeline Shift_isa Shift_mem Stack Stats
