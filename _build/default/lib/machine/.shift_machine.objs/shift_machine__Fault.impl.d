lib/machine/fault.ml: Format Printf
