lib/machine/stats.mli: Format Shift_isa
