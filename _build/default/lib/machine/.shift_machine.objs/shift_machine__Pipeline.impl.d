lib/machine/pipeline.ml: Array List Shift_isa
