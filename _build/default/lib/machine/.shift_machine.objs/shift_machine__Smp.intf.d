lib/machine/smp.mli: Cpu Fault
