type nat_use =
  | Load_address
  | Store_address
  | Store_value
  | Branch_target
  | Call_target

type t =
  | Nat_consumption of nat_use
  | Invalid_address of int64
  | Invalid_branch of int64
  | Div_by_zero
  | Call_stack_overflow
  | Call_stack_underflow

let nat_use_to_string = function
  | Load_address -> "load address"
  | Store_address -> "store address"
  | Store_value -> "store value"
  | Branch_target -> "branch target"
  | Call_target -> "call target"

let to_string = function
  | Nat_consumption u ->
      Printf.sprintf "NaT consumption fault (%s)" (nat_use_to_string u)
  | Invalid_address a -> Printf.sprintf "invalid address 0x%Lx" a
  | Invalid_branch a -> Printf.sprintf "invalid branch target %Ld" a
  | Div_by_zero -> "division by zero"
  | Call_stack_overflow -> "call stack overflow"
  | Call_stack_underflow -> "call stack underflow"

let pp ppf f = Format.pp_print_string ppf (to_string f)
