lib/os/world.ml: Array Buffer Hashtbl Int64 List Option Reg Shift_isa Shift_machine Shift_mem Shift_policy String Sysno
