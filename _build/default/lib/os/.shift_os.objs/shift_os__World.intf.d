lib/os/world.mli: Shift_machine Shift_mem Shift_policy
