lib/attacks/attacks.mli: Attack_case Shift_compiler
