lib/attacks/attack_case.ml: Ir Shift_os Shift_policy
