lib/attacks/phpmyfaq_sqli.ml: Attack_case Build Char Ir Shift_os Shift_policy
