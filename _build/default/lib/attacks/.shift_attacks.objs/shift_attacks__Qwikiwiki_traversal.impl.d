lib/attacks/qwikiwiki_traversal.ml: Attack_case Build Char Ir Shift_os Shift_policy
