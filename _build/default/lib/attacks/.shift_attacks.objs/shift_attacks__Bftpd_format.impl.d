lib/attacks/bftpd_format.ml: Attack_case Buffer Build Int64 Ir Shift_mem Shift_os Shift_policy
