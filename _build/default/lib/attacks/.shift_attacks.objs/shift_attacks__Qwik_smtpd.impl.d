lib/attacks/qwik_smtpd.ml: Build Ir String
