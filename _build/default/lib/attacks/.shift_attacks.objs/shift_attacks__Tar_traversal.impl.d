lib/attacks/tar_traversal.ml: Attack_case Build Char Ir List Printf Shift_os Shift_policy String
