lib/attacks/gzip_traversal.ml: Attack_case Buffer Build Char Ir List Shift_os Shift_policy
