lib/attacks/plugin_host.ml: Attack_case Buffer Build Int64 Ir Shift Shift_compiler Shift_isa Shift_os Shift_policy
