lib/attacks/attack_case.mli: Ir Shift_os Shift_policy
