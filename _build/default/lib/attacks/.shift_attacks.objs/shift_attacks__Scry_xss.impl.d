lib/attacks/scry_xss.ml: Attack_case Build Char Ir Shift_os Shift_policy
