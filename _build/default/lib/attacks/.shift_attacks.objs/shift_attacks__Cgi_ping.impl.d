lib/attacks/cgi_ping.ml: Attack_case Build Char Ir Shift_os Shift_policy
