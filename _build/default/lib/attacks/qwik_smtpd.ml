(* The paper's motivating example (Figure 1): the qwik-smtpd 0.3 buffer
   overflow.

   [clienthelo] (32 bytes) sits directly below [localip] (64 bytes).
   The HELO argument is copied with an unchecked strcpy, so a long
   argument overflows into [localip]; the relay check then compares the
   client IP against attacker-controlled data and the attacker can
   relay mail.  With SHIFT, the overflowing bytes are tainted, so
   [localip] becomes tainted and the Figure-1 detection rule
   — "if (Tainted(localip)) alert" — fires.  The guard is expressed
   with the taint-inspection syscall, the same application-level check
   the paper implements with [chk.s]. *)

open Build
open Build.Infix

let program =
  {
    Ir.globals =
      [
        (* adjacency is the vulnerability: helo first, then localip *)
        global_zeros "clienthelo" 32;
        global_bytes "localip" "127.0.0.1";
        global_bytes "clientip" "10.9.8.7";
      ];
    funcs =
      [
        (* returns 1 when relaying is allowed *)
        func "relay_allowed" ~params:[] ~locals:[]
          [
            when_ (call "strcasecmp" [ v "clientip"; str "127.0.0.1" ] ==: i 0) [ ret (i 1) ];
            when_ (call "strcasecmp" [ v "clientip"; v "localip" ] ==: i 0) [ ret (i 1) ];
            ret (i 0);
          ];
        func "main" ~params:[]
          ~locals:[ scalar "sock"; array "line" 256; scalar "arg" ]
          [
            set "sock" (call "sys_accept" []);
            when_ (v "sock" <: i 0) [ ret (i 1) ];
            Ir.Expr (call "sys_recv" [ v "sock"; v "line"; i 256 ]);
            when_ (call "strncmp" [ v "line"; str "HELO "; i 5 ] <>: i 0) [ ret (i 2) ];
            set "arg" (v "line" +: i 5);
            (* no check for the length of the argument! *)
            Ir.Expr (call "strcpy" [ v "clienthelo"; v "arg" ]);
            (* Figure-1 exploit detection, via the paper's §3.3.3
               user-level check: a chk.s guard on the critical data
               redirects to the alert handler when it carries a tag *)
            guard (load64 (v "localip"))
              [ ecall "println" [ str "ALERT: localip is tainted" ]; ret (i 255) ];
            if_ (call "relay_allowed" [] ==: i 1)
              [ ecall "println" [ str "250 relaying" ] ]
              [ ecall "println" [ str "550 relay denied" ] ];
            ret (i 0);
          ];
      ];
  }

let benign_helo = "HELO mail.example.org"

(* 32 bytes fill clienthelo, the rest lands in localip: the attacker
   rewrites it to match their own address *)
let exploit_helo = "HELO " ^ String.make 32 'A' ^ "10.9.8.7"
