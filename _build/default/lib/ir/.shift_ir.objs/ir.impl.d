lib/ir/ir.ml: Format Hashtbl Int64 List Printf Set String
