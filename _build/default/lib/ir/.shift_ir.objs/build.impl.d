lib/ir/build.ml: Int64 Ir
