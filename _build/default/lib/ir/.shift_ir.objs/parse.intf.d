lib/ir/parse.mli: Ir
