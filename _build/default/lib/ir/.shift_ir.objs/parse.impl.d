lib/ir/parse.ml: Buffer Char Int64 Ir List Option Printf String
