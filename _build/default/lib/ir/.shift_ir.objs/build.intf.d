lib/ir/build.mli: Ir
