(** Combinators for constructing IR programs concisely.

    Guest programs (runtime, attacks, workloads) are written with these;
    open {!Infix} locally for operator syntax. *)

val i : int -> Ir.expr
(** Integer literal. *)

val i64 : int64 -> Ir.expr
val str : string -> Ir.expr
val v : string -> Ir.expr

val load8 : Ir.expr -> Ir.expr
(** 1-byte load ([u8]). *)

val load64 : Ir.expr -> Ir.expr
(** 8-byte load ([u64]). *)

val store8 : Ir.expr -> Ir.expr -> Ir.stmt
val store64 : Ir.expr -> Ir.expr -> Ir.stmt

val call : string -> Ir.expr list -> Ir.expr
val ecall : string -> Ir.expr list -> Ir.stmt

val set : string -> Ir.expr -> Ir.stmt
val if_ : Ir.expr -> Ir.block -> Ir.block -> Ir.stmt
val when_ : Ir.expr -> Ir.block -> Ir.stmt
val while_ : Ir.expr -> Ir.block -> Ir.stmt

val for_up : string -> Ir.expr -> Ir.expr -> Ir.block -> Ir.block
(** [for_up x lo hi body] — [for (x = lo; x < hi; x++) body].  The body
    may use [Continue]/[Break] with C semantics {e except} that
    [Continue] skips the increment, so prefer plain loops when
    continuing. *)

val ret : Ir.expr -> Ir.stmt
val ret0 : Ir.stmt

val scalar : string -> Ir.local
val array : string -> int -> Ir.local

val func : string -> params:string list -> locals:Ir.local list -> Ir.block -> Ir.func

val global_bytes : string -> string -> Ir.global
val global_zeros : string -> int -> Ir.global
val global_words : string -> int64 list -> Ir.global

val not_ : Ir.expr -> Ir.expr

val fnptr : string -> Ir.expr
(** Function pointer (the code address of a named function). *)

val icall : Ir.expr -> Ir.expr list -> Ir.expr
(** Indirect call through a function-pointer value. *)

val guard : Ir.expr -> Ir.block -> Ir.stmt
(** [guard e handler] — the paper's user-level violation handling
    (§3.3.3): run [handler] when [e]'s value carries a taint tag. *)

(** Infix operators: arithmetic, comparison and logical connectives on
    expressions.  All operate on 64-bit values. *)
module Infix : sig
  val ( +: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( -: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( *: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( /: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( %: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( &: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( |: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( ^: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( <<: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( >>: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( ==: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( <>: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( <: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( <=: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( >: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( >=: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ult : Ir.expr -> Ir.expr -> Ir.expr
  val uge : Ir.expr -> Ir.expr -> Ir.expr
  val ( &&: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( ||: ) : Ir.expr -> Ir.expr -> Ir.expr
end
