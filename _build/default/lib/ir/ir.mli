(** The source IR compiled by the SHIFT compiler.

    A small C-like imperative language: 64-bit integer scalars, byte
    arrays, explicit loads and stores, functions.  Guest programs (the
    attack suite, the SPEC-like kernels, the HTTP server and the runtime
    library itself) are written in this IR; the compiler lowers it to the
    simulated ISA and the SHIFT pass instruments the result.

    Variable semantics:
    - a {e scalar} local or parameter is register-allocated and denoted
      by [Var];
    - an {e array} local denotes (decays to) its stack address;
    - a global denotes its data-segment address;
    - memory is accessed only through explicit [Load]/[Store].

    There is no address-of on scalars; declare a 8-byte array when a
    value needs an address. *)

type width = W1 | W2 | W4 | W8

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr | Sar
  | Eq | Ne | Lt | Le | Gt | Ge
  | Ltu | Geu
  | Land | Lor  (** short-circuit *)

type unop = Neg | Lnot | Bnot

type expr =
  | Int of int64
  | Str of string     (** address of an interned NUL-terminated literal *)
  | Var of string     (** scalar value, or array/global address *)
  | Fnptr of string   (** code address of a function (a function pointer) *)
  | Load of width * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Icall of expr * expr list
      (** indirect call through a function-pointer value; a tainted
          pointer trips policy L3 at the control transfer *)

type stmt =
  | Assign of string * expr   (** scalar local/param only *)
  | Store of width * expr * expr  (** address, value *)
  | If of expr * block * block
  | While of expr * block
  | Return of expr option
  | Expr of expr
  | Break
  | Continue
  | Guard of expr * block
      (** The paper's §3.3.3 user-level violation handling: evaluate
          the expression and, when the resulting value carries a taint
          tag, branch ([chk.s]) to the out-of-line handler block.  When
          the handler falls through, execution resumes after the guard.
          Only the SHIFT modes can fire it (the tag is the NaT bit). *)

and block = stmt list

type local = { lname : string; array : int option }
(** [array = Some n]: an [n]-byte stack array; [None]: a scalar. *)

type datum =
  | Bytes of string     (** initialised bytes, NUL appended *)
  | Zeros of int
  | Words of int64 list

type global = { gname : string; datum : datum }

type func = {
  fname : string;
  params : string list;
  locals : local list;
  body : block;
}

type program = { globals : global list; funcs : func list }

val empty : program

val merge : program -> program -> program
(** Concatenate globals and functions (used to link the runtime
    library with application code). *)

val find_func : program -> string -> func option

exception Invalid of string

val validate : externals:string list -> program -> unit
(** Well-formedness: no duplicate definitions, every variable reference
    resolves, assignments target scalars, [Break]/[Continue] appear
    inside loops, and every called function is defined in the program or
    listed in [externals] (compiler intrinsics).
    @raise Invalid with a message naming the offending construct. *)

val pp_program : Format.formatter -> program -> unit
(** C-like listing, for documentation and debugging. *)
