(** Parser for the IR's concrete syntax, so guest programs can be kept
    in source files and run with [shiftc exec].

    The language ("tinyc"):

    {[
      // a comment
      global banner = "hi";          // NUL-terminated bytes
      global table  = zeros(64);    // zero-filled region
      global pair   = words(1, 2);  // 64-bit little-endian words

      func classify(ch) {
        var k;                      // scalar (64-bit)
        var buf[32];                // byte array, stack-allocated
        k = ch + 1;
        u8[buf + k] = ch;           // store (u8/u16/u32/u64)
        if (ch == 'x' || k <u 10) { return u8[buf]; } else { k = k - 1; }
        while (k > 0) { k = k - 1; if (k == 2) { break; } }
        guard (k) { return -1; }    // §3.3.3 taint guard
        p = &classify;              // function pointer
        return strlen("abc") + (p)(0);   // (expr)(args) calls indirectly
      }

      func main() { return classify(7); }
    ]}

    Operators, loosest to tightest: [||] [&&] [|] [^] [&] [== !=]
    [< <= > >= <u >=u] [<< >> >>a] [+ -] [* / %], unary [- ! ~ &].
    Integer literals are decimal, hex ([0x..]) or characters (['a']).

    Declarations ([var]) must precede statements in a function body. *)

exception Parse_error of { line : int; message : string }

val program : string -> Ir.program
(** Parse a whole compilation unit.  @raise Parse_error *)

val program_of_file : string -> Ir.program
(** Read and parse a file.  @raise Parse_error and [Sys_error]. *)
