let i n = Ir.Int (Int64.of_int n)
let i64 n = Ir.Int n
let str s = Ir.Str s
let v name = Ir.Var name
let load8 a = Ir.Load (Ir.W1, a)
let load64 a = Ir.Load (Ir.W8, a)
let store8 a x = Ir.Store (Ir.W1, a, x)
let store64 a x = Ir.Store (Ir.W8, a, x)
let call f args = Ir.Call (f, args)
let ecall f args = Ir.Expr (Ir.Call (f, args))
let set name e = Ir.Assign (name, e)
let if_ c bt bf = Ir.If (c, bt, bf)
let when_ c bt = Ir.If (c, bt, [])
let while_ c b = Ir.While (c, b)

let for_up x lo hi body =
  [
    Ir.Assign (x, lo);
    Ir.While
      (Ir.Binop (Ir.Lt, Ir.Var x, hi),
       body @ [ Ir.Assign (x, Ir.Binop (Ir.Add, Ir.Var x, Ir.Int 1L)) ]);
  ]

let ret e = Ir.Return (Some e)
let ret0 = Ir.Return None
let scalar name = { Ir.lname = name; array = None }
let array name n = { Ir.lname = name; array = Some n }
let func name ~params ~locals body = { Ir.fname = name; params; locals; body }
let global_bytes name s = { Ir.gname = name; datum = Ir.Bytes s }
let global_zeros name n = { Ir.gname = name; datum = Ir.Zeros n }
let global_words name ws = { Ir.gname = name; datum = Ir.Words ws }
let not_ e = Ir.Unop (Ir.Lnot, e)
let fnptr f = Ir.Fnptr f
let icall f args = Ir.Icall (f, args)
let guard e handler = Ir.Guard (e, handler)

module Infix = struct
  let bin op a b = Ir.Binop (op, a, b)
  let ( +: ) a b = bin Ir.Add a b
  let ( -: ) a b = bin Ir.Sub a b
  let ( *: ) a b = bin Ir.Mul a b
  let ( /: ) a b = bin Ir.Div a b
  let ( %: ) a b = bin Ir.Rem a b
  let ( &: ) a b = bin Ir.Band a b
  let ( |: ) a b = bin Ir.Bor a b
  let ( ^: ) a b = bin Ir.Bxor a b
  let ( <<: ) a b = bin Ir.Shl a b
  let ( >>: ) a b = bin Ir.Shr a b
  let ( ==: ) a b = bin Ir.Eq a b
  let ( <>: ) a b = bin Ir.Ne a b
  let ( <: ) a b = bin Ir.Lt a b
  let ( <=: ) a b = bin Ir.Le a b
  let ( >: ) a b = bin Ir.Gt a b
  let ( >=: ) a b = bin Ir.Ge a b
  let ult a b = bin Ir.Ltu a b
  let uge a b = bin Ir.Geu a b
  let ( &&: ) a b = bin Ir.Land a b
  let ( ||: ) a b = bin Ir.Lor a b
end
