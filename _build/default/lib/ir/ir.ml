type width = W1 | W2 | W4 | W8

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr | Sar
  | Eq | Ne | Lt | Le | Gt | Ge
  | Ltu | Geu
  | Land | Lor

type unop = Neg | Lnot | Bnot

type expr =
  | Int of int64
  | Str of string
  | Var of string
  | Fnptr of string
  | Load of width * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Icall of expr * expr list

type stmt =
  | Assign of string * expr
  | Store of width * expr * expr
  | If of expr * block * block
  | While of expr * block
  | Return of expr option
  | Expr of expr
  | Break
  | Continue
  | Guard of expr * block

and block = stmt list

type local = { lname : string; array : int option }

type datum =
  | Bytes of string
  | Zeros of int
  | Words of int64 list

type global = { gname : string; datum : datum }

type func = {
  fname : string;
  params : string list;
  locals : local list;
  body : block;
}

type program = { globals : global list; funcs : func list }

let empty = { globals = []; funcs = [] }

let merge a b = { globals = a.globals @ b.globals; funcs = a.funcs @ b.funcs }

let find_func p name = List.find_opt (fun f -> f.fname = name) p.funcs

exception Invalid of string

let err fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

type binding = Scalar | Array | Global_addr

let validate ~externals p =
  let module S = Set.Make (String) in
  let add_unique what seen name =
    if S.mem name seen then err "duplicate %s %S" what name;
    S.add name seen
  in
  let globals =
    List.fold_left (fun s (g : global) -> add_unique "global" s g.gname) S.empty p.globals
  in
  let fnames =
    List.fold_left (fun s (f : func) -> add_unique "function" s f.fname) S.empty p.funcs
  in
  let callable name = S.mem name fnames || List.mem name externals in
  let check_func (f : func) =
    let ctx what = Printf.sprintf "%s in function %S" what f.fname in
    let env = Hashtbl.create 16 in
    let declare name binding =
      if Hashtbl.mem env name then err "%s" (ctx (Printf.sprintf "duplicate variable %S" name));
      if S.mem name globals then
        err "%s" (ctx (Printf.sprintf "variable %S shadows a global" name));
      Hashtbl.add env name binding
    in
    List.iter (fun name -> declare name Scalar) f.params;
    List.iter
      (fun (l : local) ->
        (match l.array with
        | Some n when n <= 0 -> err "%s" (ctx (Printf.sprintf "array %S has size %d" l.lname n))
        | _ -> ());
        declare l.lname (match l.array with Some _ -> Array | None -> Scalar))
      f.locals;
    let binding_of name =
      match Hashtbl.find_opt env name with
      | Some b -> b
      | None ->
          if S.mem name globals then Global_addr
          else err "%s" (ctx (Printf.sprintf "unbound variable %S" name))
    in
    let rec check_expr = function
      | Int _ | Str _ -> ()
      | Var name -> ignore (binding_of name)
      | Fnptr name ->
          if not (S.mem name fnames) then
            err "%s" (ctx (Printf.sprintf "function pointer to unknown function %S" name))
      | Icall (f, args) ->
          check_expr f;
          List.iter check_expr args
      | Load (_, e) -> check_expr e
      | Unop (_, e) -> check_expr e
      | Binop (_, a, b) ->
          check_expr a;
          check_expr b
      | Call (name, args) ->
          if not (callable name) then
            err "%s" (ctx (Printf.sprintf "call to unknown function %S" name));
          (match find_func p name with
          | Some callee ->
              if List.length callee.params <> List.length args then
                err "%s"
                  (ctx
                     (Printf.sprintf "call to %S with %d arguments, expected %d" name
                        (List.length args) (List.length callee.params)))
          | None -> ());
          List.iter check_expr args
    in
    let rec check_stmt ~in_loop = function
      | Assign (name, e) ->
          (match binding_of name with
          | Scalar -> ()
          | Array | Global_addr ->
              err "%s" (ctx (Printf.sprintf "assignment to non-scalar %S" name)));
          check_expr e
      | Store (_, a, v) ->
          check_expr a;
          check_expr v
      | If (c, bt, bf) ->
          check_expr c;
          check_block ~in_loop bt;
          check_block ~in_loop bf
      | While (c, b) ->
          check_expr c;
          check_block ~in_loop:true b
      | Return (Some e) -> check_expr e
      | Return None -> ()
      | Expr e -> check_expr e
      | Break | Continue ->
          if not in_loop then err "%s" (ctx "break/continue outside a loop")
      | Guard (e, handler) ->
          check_expr e;
          check_block ~in_loop handler
    and check_block ~in_loop b = List.iter (check_stmt ~in_loop) b in
    check_block ~in_loop:false f.body
  in
  List.iter check_func p.funcs

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Sar -> ">>a"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Ltu -> "<u"
  | Geu -> ">=u"
  | Land -> "&&"
  | Lor -> "||"

let unop_to_string = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"

let width_to_string = function W1 -> "u8" | W2 -> "u16" | W4 -> "u32" | W8 -> "u64"

let rec pp_expr ppf = function
  | Int i -> Format.fprintf ppf "%Ld" i
  | Str s -> Format.fprintf ppf "%S" s
  | Var v -> Format.pp_print_string ppf v
  | Fnptr f -> Format.fprintf ppf "&%s" f
  | Load (w, e) -> Format.fprintf ppf "*(%s*)(%a)" (width_to_string w) pp_expr e
  | Unop (u, e) -> Format.fprintf ppf "%s(%a)" (unop_to_string u) pp_expr e
  | Binop (b, x, y) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr x (binop_to_string b) pp_expr y
  | Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_expr)
        args
  | Icall (f, args) ->
      Format.fprintf ppf "(*%a)(%a)" pp_expr f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_expr)
        args

let rec pp_stmt ppf = function
  | Assign (v, e) -> Format.fprintf ppf "@[<h>%s = %a;@]" v pp_expr e
  | Store (w, a, v) ->
      Format.fprintf ppf "@[<h>*(%s*)(%a) = %a;@]" (width_to_string w) pp_expr a pp_expr v
  | If (c, bt, []) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@ %a@]@ }" pp_expr c pp_block bt
  | If (c, bt, bf) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@ %a@]@ @[<v 2>} else {@ %a@]@ }" pp_expr c
        pp_block bt pp_block bf
  | While (c, b) ->
      Format.fprintf ppf "@[<v 2>while (%a) {@ %a@]@ }" pp_expr c pp_block b
  | Return (Some e) -> Format.fprintf ppf "return %a;" pp_expr e
  | Return None -> Format.pp_print_string ppf "return;"
  | Expr e -> Format.fprintf ppf "%a;" pp_expr e
  | Break -> Format.pp_print_string ppf "break;"
  | Continue -> Format.pp_print_string ppf "continue;"
  | Guard (e, handler) ->
      Format.fprintf ppf "@[<v 2>guard (%a) {@ %a@]@ }" pp_expr e pp_block handler

and pp_block ppf b =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf b

let pp_local ppf (l : local) =
  match l.array with
  | Some n -> Format.fprintf ppf "u8 %s[%d];" l.lname n
  | None -> Format.fprintf ppf "u64 %s;" l.lname

let pp_func ppf (f : func) =
  Format.fprintf ppf "@[<v 2>func %s(%s) {@ %a%s%a@]@ }@ " f.fname
    (String.concat ", " f.params)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_local)
    f.locals
    (if f.locals = [] then "" else " ")
    pp_block f.body

let pp_global ppf (g : global) =
  match g.datum with
  | Bytes s -> Format.fprintf ppf "global %s = %S;@ " g.gname s
  | Zeros n -> Format.fprintf ppf "global %s = zeros(%d);@ " g.gname n
  | Words ws ->
      Format.fprintf ppf "global %s = words(%s);@ " g.gname
        (String.concat ", " (List.map Int64.to_string ws))

let pp_program ppf (p : program) =
  Format.fprintf ppf "@[<v>%a%a@]"
    (Format.pp_print_list ~pp_sep:(fun _ () -> ()) pp_global)
    p.globals
    (Format.pp_print_list ~pp_sep:(fun _ () -> ()) pp_func)
    p.funcs
