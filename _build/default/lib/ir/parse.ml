exception Parse_error of { line : int; message : string }

(* ------------------------------ lexer ------------------------------ *)

type token =
  | INT of int64
  | STRING of string
  | IDENT of string
  | KW of string      (* keywords: global func var if else while return ... *)
  | PUNCT of string   (* operators and punctuation *)
  | EOF

let keywords =
  [ "global"; "func"; "var"; "if"; "else"; "while"; "return"; "break";
    "continue"; "guard"; "zeros"; "words"; "u8"; "u16"; "u32"; "u64" ]

(* multi-character operators, longest first *)
let operators =
  [ ">>a"; "<u"; ">=u"; "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>";
    "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "=";
    "("; ")"; "{"; "}"; "["; "]"; ";"; "," ]

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
}

let error lx fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line = lx.line; message })) fmt

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek_char lx with Some '\n' -> lx.line <- lx.line + 1 | _ -> ());
  lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
      while peek_char lx <> None && peek_char lx <> Some '\n' do
        advance lx
      done;
      skip_ws lx
  | _ -> ()

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let lex_escape lx =
  advance lx;
  match peek_char lx with
  | Some 'n' -> advance lx; '\n'
  | Some 'r' -> advance lx; '\r'
  | Some 't' -> advance lx; '\t'
  | Some '0' -> advance lx; '\000'
  | Some '\\' -> advance lx; '\\'
  | Some '\'' -> advance lx; '\''
  | Some '"' -> advance lx; '"'
  | Some 'x' ->
      advance lx;
      let hex c =
        if is_digit c then Char.code c - Char.code '0'
        else if c >= 'a' && c <= 'f' then Char.code c - Char.code 'a' + 10
        else if c >= 'A' && c <= 'F' then Char.code c - Char.code 'A' + 10
        else error lx "invalid hex escape"
      in
      let h1 = match peek_char lx with Some c -> hex c | None -> error lx "truncated escape" in
      advance lx;
      let h2 = match peek_char lx with Some c -> hex c | None -> error lx "truncated escape" in
      advance lx;
      Char.chr ((h1 * 16) + h2)
  | Some c -> error lx "unknown escape '\\%c'" c
  | None -> error lx "truncated escape"

let next_token lx =
  skip_ws lx;
  match peek_char lx with
  | None -> EOF
  | Some c when is_digit c ->
      let start = lx.pos in
      if
        c = '0'
        && lx.pos + 1 < String.length lx.src
        && (lx.src.[lx.pos + 1] = 'x' || lx.src.[lx.pos + 1] = 'X')
      then begin
        advance lx;
        advance lx;
        let hstart = lx.pos in
        while
          match peek_char lx with
          | Some c -> is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
          | None -> false
        do
          advance lx
        done;
        if lx.pos = hstart then error lx "empty hex literal";
        let lit = "0x" ^ String.sub lx.src hstart (lx.pos - hstart) in
        (try INT (Int64.of_string lit)
         with Failure _ -> error lx "integer literal %s out of range" lit)
      end
      else begin
        while match peek_char lx with Some c -> is_digit c | None -> false do
          advance lx
        done;
        let lit = String.sub lx.src start (lx.pos - start) in
        (try INT (Int64.of_string lit)
         with Failure _ -> error lx "integer literal %s out of range" lit)
      end
  | Some '\'' ->
      advance lx;
      let c =
        match peek_char lx with
        | Some '\\' -> lex_escape lx
        | Some c ->
            advance lx;
            c
        | None -> error lx "truncated character literal"
      in
      (match peek_char lx with
      | Some '\'' -> advance lx
      | _ -> error lx "unterminated character literal");
      INT (Int64.of_int (Char.code c))
  | Some '"' ->
      advance lx;
      let b = Buffer.create 16 in
      let rec go () =
        match peek_char lx with
        | Some '"' -> advance lx
        | Some '\\' ->
            Buffer.add_char b (lex_escape lx);
            go ()
        | Some c ->
            advance lx;
            Buffer.add_char b c;
            go ()
        | None -> error lx "unterminated string literal"
      in
      go ();
      STRING (Buffer.contents b)
  | Some c when is_ident_start c ->
      let start = lx.pos in
      while match peek_char lx with Some c -> is_ident_char c | None -> false do
        advance lx
      done;
      let word = String.sub lx.src start (lx.pos - start) in
      if List.mem word keywords then KW word else IDENT word
  | Some _ -> (
      let matches op =
        let n = String.length op in
        lx.pos + n <= String.length lx.src && String.sub lx.src lx.pos n = op
      in
      match List.find_opt matches operators with
      | Some op ->
          for _ = 1 to String.length op do
            advance lx
          done;
          PUNCT op
      | None -> error lx "unexpected character %C" lx.src.[lx.pos])

(* ------------------------------ parser ----------------------------- *)

type parser_state = {
  lx : lexer;
  mutable tok : token;
}

let perror ps fmt =
  Printf.ksprintf
    (fun message -> raise (Parse_error { line = ps.lx.line; message }))
    fmt

let token_name = function
  | INT v -> Printf.sprintf "integer %Ld" v
  | STRING _ -> "string literal"
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW s -> Printf.sprintf "keyword %S" s
  | PUNCT s -> Printf.sprintf "%S" s
  | EOF -> "end of input"

let bump ps = ps.tok <- next_token ps.lx

let expect_punct ps p =
  match ps.tok with
  | PUNCT q when q = p -> bump ps
  | t -> perror ps "expected %S, found %s" p (token_name t)

let expect_ident ps =
  match ps.tok with
  | IDENT name ->
      bump ps;
      name
  | t -> perror ps "expected an identifier, found %s" (token_name t)

let accept_punct ps p =
  match ps.tok with
  | PUNCT q when q = p ->
      bump ps;
      true
  | _ -> false

let width_of_kw = function
  | "u8" -> Some Ir.W1
  | "u16" -> Some Ir.W2
  | "u32" -> Some Ir.W4
  | "u64" -> Some Ir.W8
  | _ -> None

(* precedence climbing; level 0 is loosest *)
let binop_levels =
  [
    [ ("||", Ir.Lor) ];
    [ ("&&", Ir.Land) ];
    [ ("|", Ir.Bor) ];
    [ ("^", Ir.Bxor) ];
    [ ("&", Ir.Band) ];
    [ ("==", Ir.Eq); ("!=", Ir.Ne) ];
    [ ("<u", Ir.Ltu); (">=u", Ir.Geu); ("<=", Ir.Le); (">=", Ir.Ge);
      ("<", Ir.Lt); (">", Ir.Gt) ];
    [ ("<<", Ir.Shl); (">>a", Ir.Sar); (">>", Ir.Shr) ];
    [ ("+", Ir.Add); ("-", Ir.Sub) ];
    [ ("*", Ir.Mul); ("/", Ir.Div); ("%", Ir.Rem) ];
  ]

let rec parse_expr ps = parse_level ps 0

and parse_level ps level =
  if level >= List.length binop_levels then parse_unary ps
  else begin
    let ops = List.nth binop_levels level in
    let lhs = ref (parse_level ps (level + 1)) in
    let rec go () =
      match ps.tok with
      | PUNCT p -> (
          match List.assoc_opt p ops with
          | Some op ->
              bump ps;
              let rhs = parse_level ps (level + 1) in
              lhs := Ir.Binop (op, !lhs, rhs);
              go ()
          | None -> ())
      | _ -> ()
    in
    go ();
    !lhs
  end

and parse_unary ps =
  match ps.tok with
  | PUNCT "-" ->
      bump ps;
      Ir.Unop (Ir.Neg, parse_unary ps)
  | PUNCT "!" ->
      bump ps;
      Ir.Unop (Ir.Lnot, parse_unary ps)
  | PUNCT "~" ->
      bump ps;
      Ir.Unop (Ir.Bnot, parse_unary ps)
  | PUNCT "&" ->
      bump ps;
      Ir.Fnptr (expect_ident ps)
  | _ -> parse_postfix ps

and parse_args ps =
  expect_punct ps "(";
  if accept_punct ps ")" then []
  else begin
    let rec go acc =
      let e = parse_expr ps in
      if accept_punct ps "," then go (e :: acc)
      else begin
        expect_punct ps ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_postfix ps =
  match ps.tok with
  | IDENT name -> (
      bump ps;
      match ps.tok with
      | PUNCT "(" -> postfix_calls ps (Ir.Call (name, parse_args ps))
      | _ -> Ir.Var name)
  | _ -> postfix_calls ps (parse_primary ps)

(* a parenthesised expression (or a call's result) followed by an
   argument list is an indirect call: (f)(x) *)
and postfix_calls ps e =
  match ps.tok with
  | PUNCT "(" -> postfix_calls ps (Ir.Icall (e, parse_args ps))
  | _ -> e

and parse_primary ps =
  match ps.tok with
  | INT v ->
      bump ps;
      Ir.Int v
  | STRING s ->
      bump ps;
      Ir.Str s
  | IDENT name ->
      bump ps;
      Ir.Var name
  | KW kw when width_of_kw kw <> None ->
      let w = Option.get (width_of_kw kw) in
      bump ps;
      expect_punct ps "[";
      let a = parse_expr ps in
      expect_punct ps "]";
      Ir.Load (w, a)
  | PUNCT "(" ->
      bump ps;
      let e = parse_expr ps in
      expect_punct ps ")";
      e
  | t -> perror ps "expected an expression, found %s" (token_name t)

let rec parse_stmt ps =
  match ps.tok with
  | KW "if" ->
      bump ps;
      expect_punct ps "(";
      let c = parse_expr ps in
      expect_punct ps ")";
      let bt = parse_block ps in
      let bf =
        match ps.tok with
        | KW "else" ->
            bump ps;
            (match ps.tok with
            | KW "if" -> [ parse_stmt ps ]
            | _ -> parse_block ps)
        | _ -> []
      in
      Ir.If (c, bt, bf)
  | KW "while" ->
      bump ps;
      expect_punct ps "(";
      let c = parse_expr ps in
      expect_punct ps ")";
      Ir.While (c, parse_block ps)
  | KW "guard" ->
      bump ps;
      expect_punct ps "(";
      let e = parse_expr ps in
      expect_punct ps ")";
      Ir.Guard (e, parse_block ps)
  | KW "return" ->
      bump ps;
      if accept_punct ps ";" then Ir.Return None
      else begin
        let e = parse_expr ps in
        expect_punct ps ";";
        Ir.Return (Some e)
      end
  | KW "break" ->
      bump ps;
      expect_punct ps ";";
      Ir.Break
  | KW "continue" ->
      bump ps;
      expect_punct ps ";";
      Ir.Continue
  | KW kw when width_of_kw kw <> None ->
      let w = Option.get (width_of_kw kw) in
      bump ps;
      expect_punct ps "[";
      let a = parse_expr ps in
      expect_punct ps "]";
      expect_punct ps "=";
      let value = parse_expr ps in
      expect_punct ps ";";
      Ir.Store (w, a, value)
  | IDENT name -> (
      bump ps;
      match ps.tok with
      | PUNCT "=" ->
          bump ps;
          let e = parse_expr ps in
          expect_punct ps ";";
          Ir.Assign (name, e)
      | PUNCT "(" ->
          let call = Ir.Call (name, parse_args ps) in
          (* a call may itself be called (a returned function pointer) *)
          let e = if (match ps.tok with PUNCT "(" -> true | _ -> false)
                  then Ir.Icall (call, parse_args ps) else call in
          expect_punct ps ";";
          Ir.Expr e
      | t -> perror ps "expected '=' or '(' after identifier, found %s" (token_name t))
  | _ ->
      let e = parse_expr ps in
      expect_punct ps ";";
      Ir.Expr e

and parse_block ps =
  expect_punct ps "{";
  let rec go acc =
    if accept_punct ps "}" then List.rev acc else go (parse_stmt ps :: acc)
  in
  go []

let parse_locals ps =
  let rec go acc =
    match ps.tok with
    | KW "var" ->
        bump ps;
        let name = expect_ident ps in
        let local =
          if accept_punct ps "[" then begin
            let size =
              match ps.tok with
              | INT v ->
                  bump ps;
                  Int64.to_int v
              | t -> perror ps "expected an array size, found %s" (token_name t)
            in
            expect_punct ps "]";
            { Ir.lname = name; array = Some size }
          end
          else { Ir.lname = name; array = None }
        in
        expect_punct ps ";";
        go (local :: acc)
    | _ -> List.rev acc
  in
  go []

let parse_func ps =
  let name = expect_ident ps in
  expect_punct ps "(";
  let params =
    if accept_punct ps ")" then []
    else begin
      let rec go acc =
        let p = expect_ident ps in
        if accept_punct ps "," then go (p :: acc)
        else begin
          expect_punct ps ")";
          List.rev (p :: acc)
        end
      in
      go []
    end
  in
  expect_punct ps "{";
  let locals = parse_locals ps in
  let rec go acc =
    if accept_punct ps "}" then List.rev acc else go (parse_stmt ps :: acc)
  in
  let body = go [] in
  { Ir.fname = name; params; locals; body }

let parse_global ps =
  let name = expect_ident ps in
  expect_punct ps "=";
  let datum =
    match ps.tok with
    | STRING s ->
        bump ps;
        Ir.Bytes s
    | KW "zeros" ->
        bump ps;
        expect_punct ps "(";
        let n =
          match ps.tok with
          | INT v ->
              bump ps;
              Int64.to_int v
          | t -> perror ps "expected a size, found %s" (token_name t)
        in
        expect_punct ps ")";
        Ir.Zeros n
    | KW "words" ->
        bump ps;
        expect_punct ps "(";
        let rec go acc =
          match ps.tok with
          | INT v ->
              bump ps;
              let neg = false in
              ignore neg;
              if accept_punct ps "," then go (v :: acc)
              else begin
                expect_punct ps ")";
                List.rev (v :: acc)
              end
          | PUNCT "-" ->
              bump ps;
              (match ps.tok with
              | INT v ->
                  bump ps;
                  let v = Int64.neg v in
                  if accept_punct ps "," then go (v :: acc)
                  else begin
                    expect_punct ps ")";
                    List.rev (v :: acc)
                  end
              | t -> perror ps "expected an integer, found %s" (token_name t))
          | t -> perror ps "expected an integer, found %s" (token_name t)
        in
        Ir.Words (go [])
    | t -> perror ps "expected a global initialiser, found %s" (token_name t)
  in
  expect_punct ps ";";
  { Ir.gname = name; datum }

let program src =
  let ps = { lx = { src; pos = 0; line = 1 }; tok = EOF } in
  bump ps;
  let globals = ref [] and funcs = ref [] in
  let rec go () =
    match ps.tok with
    | EOF -> ()
    | KW "global" ->
        bump ps;
        globals := parse_global ps :: !globals;
        go ()
    | KW "func" ->
        bump ps;
        funcs := parse_func ps :: !funcs;
        go ()
    | t -> perror ps "expected 'global' or 'func', found %s" (token_name t)
  in
  go ();
  { Ir.globals = List.rev !globals; funcs = List.rev !funcs }

let program_of_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  program src
