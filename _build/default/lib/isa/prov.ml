type t =
  | Orig
  | Ld_compute
  | Ld_mem
  | St_compute
  | St_mem
  | Cmp_relax
  | Nat_gen
  | Shadow

let is_instrumentation = function Orig -> false | _ -> true

let index = function
  | Orig -> 0
  | Ld_compute -> 1
  | Ld_mem -> 2
  | St_compute -> 3
  | St_mem -> 4
  | Cmp_relax -> 5
  | Nat_gen -> 6
  | Shadow -> 7

let card = 8

let of_index = function
  | 0 -> Orig
  | 1 -> Ld_compute
  | 2 -> Ld_mem
  | 3 -> St_compute
  | 4 -> St_mem
  | 5 -> Cmp_relax
  | 6 -> Nat_gen
  | 7 -> Shadow
  | _ -> invalid_arg "Prov.of_index"

let to_string = function
  | Orig -> "orig"
  | Ld_compute -> "ld-compute"
  | Ld_mem -> "ld-mem"
  | St_compute -> "st-compute"
  | St_mem -> "st-mem"
  | Cmp_relax -> "cmp-relax"
  | Nat_gen -> "nat-gen"
  | Shadow -> "shadow"

let pp ppf p = Format.pp_print_string ppf (to_string p)
