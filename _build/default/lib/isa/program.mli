(** Assembled programs: a flat instruction array plus a label table.

    The compiler emits a list of items (labels interleaved with
    instructions); [assemble] flattens it, resolves every label to an
    instruction index and checks that all branch targets exist. *)

type item = Label of string | I of Instr.t

type t = private {
  code : Instr.t array;
  labels : (string, int) Hashtbl.t;
}

exception Assembly_error of string

val assemble : item list -> t
(** Flattens and checks.  @raise Assembly_error on a duplicate label or a
    branch/call/check targeting an unknown label. *)

val target : t -> string -> int
(** Instruction index of a label.  @raise Assembly_error if unknown. *)

val has_label : t -> string -> bool

val size : t -> int
(** Number of instructions (the static code size the paper's Table 3
    measures). *)

val count_prov : t -> Prov.t -> int
(** Number of instructions with the given provenance. *)

val pp_listing : Format.formatter -> t -> unit
(** Disassembly listing with labels, for debugging and the trace
    example. *)
