(** General-purpose registers of the simulated IA-64-like ISA.

    The machine has 128 general registers, each extended with a NaT
    ("Not a Thing") bit that records a deferred exception.  SHIFT reuses
    the NaT bit as the taint tag for register state. *)

type t = int
(** A register number in [0, count). *)

val count : int
(** Number of general registers (128, as on Itanium). *)

val zero : t
(** [r0], hard-wired to the value 0 with a clear NaT bit. *)

val ret : t
(** [r8], the function return-value register. *)

val sp : t
(** [r12], the stack pointer by software convention. *)

val sysnum : t
(** [r15], the system-call number register. *)

val impl_mask : t
(** [r29], reserved: holds the implemented-address-bits mask used by the
    instrumentation to translate data addresses to tag addresses. *)

val scratch_slot : t
(** [r30], reserved: holds the address of the per-program scratch memory
    slot used by NaT-stripping (spill/fill) sequences. *)

val nat_src : t
(** [r31], reserved: the NaT source register.  Its value is 0 and its NaT
    bit is set; adding it to a register taints that register without
    changing its value (Figure 5 of the paper). *)

val arg : int -> t
(** [arg i] is the register carrying the [i]-th function argument
    (r16 + i, for i in [0, 8)). *)

val sysarg : int -> t
(** [sysarg i] is the register carrying the [i]-th system-call argument
    (r32 + i, for i in [0, 6)). *)

val max_args : int
(** Maximum number of function arguments passed in registers. *)

val is_valid : t -> bool
(** Whether the register number is in range. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
