type item = Label of string | I of Instr.t

type t = {
  code : Instr.t array;
  labels : (string, int) Hashtbl.t;
}

exception Assembly_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Assembly_error s)) fmt

let referenced_labels (i : Instr.t) =
  match i.op with
  | Instr.Br l | Instr.Call l | Instr.Lea (_, l) -> [ l ]
  | Instr.Chk_s { recovery; _ } -> [ recovery ]
  | _ -> []

let assemble items =
  let labels = Hashtbl.create 64 in
  let code = ref [] in
  let n = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Label l ->
          if Hashtbl.mem labels l then err "duplicate label %S" l;
          Hashtbl.add labels l !n
      | I i ->
          code := i :: !code;
          incr n)
    items;
  let code = Array.of_list (List.rev !code) in
  Array.iter
    (fun i ->
      List.iter
        (fun l ->
          if not (Hashtbl.mem labels l) then err "unknown label %S" l)
        (referenced_labels i))
    code;
  { code; labels }

let target t l =
  match Hashtbl.find_opt t.labels l with
  | Some n -> n
  | None -> err "unknown label %S" l

let has_label t l = Hashtbl.mem t.labels l
let size t = Array.length t.code

let count_prov t p =
  Array.fold_left (fun acc (i : Instr.t) -> if i.prov = p then acc + 1 else acc) 0 t.code

let pp_listing ppf t =
  let at = Hashtbl.create 64 in
  Hashtbl.iter
    (fun l n ->
      let existing = try Hashtbl.find at n with Not_found -> [] in
      Hashtbl.replace at n (l :: existing))
    t.labels;
  Array.iteri
    (fun n i ->
      (match Hashtbl.find_opt at n with
      | Some ls -> List.iter (fun l -> Format.fprintf ppf "%s:@." l) (List.sort compare ls)
      | None -> ());
      Format.fprintf ppf "  %4d  %s@." n (Instr.to_string i))
    t.code
