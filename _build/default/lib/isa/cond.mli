(** Comparison conditions for [cmp] instructions. *)

type t =
  | Eq   (** equal *)
  | Ne   (** not equal *)
  | Lt   (** signed less-than *)
  | Le   (** signed less-or-equal *)
  | Gt   (** signed greater-than *)
  | Ge   (** signed greater-or-equal *)
  | Ltu  (** unsigned less-than *)
  | Leu  (** unsigned less-or-equal *)
  | Gtu  (** unsigned greater-than *)
  | Geu  (** unsigned greater-or-equal *)

val eval : t -> int64 -> int64 -> bool
(** [eval c a b] evaluates [a c b]. *)

val negate : t -> t
(** The condition with the opposite truth value. *)

val swap : t -> t
(** The condition [c'] such that [a c b = b c' a]. *)

val all : t list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
