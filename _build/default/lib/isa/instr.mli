(** Instructions of the simulated IA-64-like ISA.

    The subset models what SHIFT needs (paper §2.2, §4.1):
    - speculative loads ([ld.s]) that defer exceptions into the target
      register's NaT bit instead of faulting;
    - speculation checks ([chk.s]) that branch to recovery code when a
      NaT bit reaches them;
    - spill/fill forms ([st.spill]/[ld.fill]) that move a register's NaT
      bit to and from the UNAT application register;
    - [tnat], which tests a register's NaT bit into two predicates;
    - ordinary ALU operations that propagate NaT bits OR-wise.

    It also models the three architectural enhancements the paper
    proposes in §6.3: [setnat], [clrnat] and the taint-aware compare
    ([Cmp] with [taint_aware = true]).  The baseline Itanium ISA does
    not have them; the compiler only emits them in enhanced modes. *)

type width = W1 | W2 | W4 | W8  (** memory access width, in bytes: 1/2/4/8 *)

val bytes_of_width : width -> int

type arith =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor
  | Andcm  (** [a AND (NOT b)] — used to clear bitmap bits *)
  | Shl | Shr  (** logical shifts *)
  | Sar        (** arithmetic right shift *)

type operand = R of Reg.t | Imm of int64

type op =
  | Nop
  | Movi of Reg.t * int64     (** load a 64-bit immediate; clears NaT *)
  | Mov of Reg.t * Reg.t      (** copy value and NaT bit *)
  | Arith of arith * Reg.t * Reg.t * operand
      (** [dst = src1 op operand]; NaT bits of register sources OR into
          the destination.  [xor r, r, r] and [sub r, r, r] clear it. *)
  | Cmp of {
      cond : Cond.t;
      pt : Pred.t;  (** set to the comparison outcome *)
      pf : Pred.t;  (** set to its complement *)
      src1 : Reg.t;
      src2 : operand;
      taint_aware : bool;
          (** Baseline ISA behaviour ([false]): a NaT in either source
              clears {e both} predicates (the behaviour SHIFT must relax
              around).  The §6.3 enhanced compare ([true]) ignores NaT
              bits and compares the values. *)
    }
  | Tnat of { pt : Pred.t; pf : Pred.t; src : Reg.t }
      (** [pt = NaT(src)], [pf = not NaT(src)] *)
  | Extr of { dst : Reg.t; src : Reg.t; pos : int; len : int }
      (** IA-64 bit-field extract: [dst = (src >> pos) & ((1 << len) - 1)];
          propagates the source's NaT bit. *)
  | Ld of { width : width; dst : Reg.t; addr : Reg.t; spec : bool; fill : bool }
      (** Load, zero-extended.  [spec]: a speculative load ([ld.s]) sets
          the target's NaT bit on an invalid address instead of faulting.
          [fill]: [ld8.fill] additionally restores the NaT bit from UNAT.
          A plain load clears the target's NaT bit. *)
  | St of { width : width; addr : Reg.t; src : Reg.t; spill : bool }
      (** Store.  A plain store of a register whose NaT bit is set raises
          a NaT-consumption fault; [st.spill] instead records the NaT bit
          in UNAT and stores the value. *)
  | Chk_s of { src : Reg.t; recovery : string }
      (** Branch to [recovery] if the register's NaT bit is set. *)
  | Lea of Reg.t * string
      (** Materialise the code address of a label (used for function
          pointers, e.g. GOT-style tables); clears NaT. *)
  | Br of string              (** unconditional (or predicated) branch *)
  | Br_reg of Reg.t           (** indirect branch; NaT address faults *)
  | Call of string
  | Call_reg of Reg.t         (** indirect call; NaT address faults *)
  | Ret
  | Fetchadd of { dst : Reg.t; addr : Reg.t; inc : Reg.t }
      (** IA-64 [fetchadd]: atomically [dst = mem64[addr]];
          [mem64[addr] += inc].  Atomic with respect to other harts
          (instructions never interleave mid-operation).  The result's
          NaT is clear; synchronisation variables are not tracked. *)
  | Setnat of Reg.t           (** enhanced ISA: set the NaT bit *)
  | Clrnat of Reg.t           (** enhanced ISA: clear the NaT bit *)
  | Syscall                   (** number in r15, arguments in r32.. *)
  | Halt                      (** stop; exit status in r8 *)

type t = { qp : Pred.t; op : op; prov : Prov.t }
(** An instruction qualified by predicate [qp] (p0 = always execute) and
    tagged with its provenance. *)

val mk : ?qp:Pred.t -> ?prov:Prov.t -> op -> t
(** [mk op] builds an instruction with default [qp = p0],
    [prov = Orig]. *)

val is_mem : op -> bool
(** Whether the operation uses a memory port (loads and stores). *)

val is_branch : op -> bool
(** Whether the operation may redirect control flow. *)

val reads : op -> Reg.t list
(** Register sources (value or NaT consumed). *)

val writes : op -> Reg.t list
(** Register destinations. *)

val reads_preds : op -> Pred.t list
val writes_preds : op -> Pred.t list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
