type width = W1 | W2 | W4 | W8

let bytes_of_width = function W1 -> 1 | W2 -> 2 | W4 -> 4 | W8 -> 8

type arith =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor
  | Andcm
  | Shl | Shr
  | Sar

type operand = R of Reg.t | Imm of int64

type op =
  | Nop
  | Movi of Reg.t * int64
  | Mov of Reg.t * Reg.t
  | Arith of arith * Reg.t * Reg.t * operand
  | Cmp of {
      cond : Cond.t;
      pt : Pred.t;
      pf : Pred.t;
      src1 : Reg.t;
      src2 : operand;
      taint_aware : bool;
    }
  | Tnat of { pt : Pred.t; pf : Pred.t; src : Reg.t }
  | Extr of { dst : Reg.t; src : Reg.t; pos : int; len : int }
  | Ld of { width : width; dst : Reg.t; addr : Reg.t; spec : bool; fill : bool }
  | St of { width : width; addr : Reg.t; src : Reg.t; spill : bool }
  | Chk_s of { src : Reg.t; recovery : string }
  | Lea of Reg.t * string
  | Br of string
  | Br_reg of Reg.t
  | Call of string
  | Call_reg of Reg.t
  | Ret
  | Fetchadd of { dst : Reg.t; addr : Reg.t; inc : Reg.t }
  | Setnat of Reg.t
  | Clrnat of Reg.t
  | Syscall
  | Halt

type t = { qp : Pred.t; op : op; prov : Prov.t }

let mk ?(qp = Pred.p0) ?(prov = Prov.Orig) op = { qp; op; prov }

let is_mem = function Ld _ | St _ | Fetchadd _ -> true | _ -> false

let is_branch = function
  | Br _ | Br_reg _ | Call _ | Call_reg _ | Ret | Chk_s _ -> true
  | _ -> false

let operand_reads = function R r -> [ r ] | Imm _ -> []

let reads = function
  | Nop | Movi _ | Lea _ | Br _ | Call _ | Halt -> []
  | Mov (_, s) -> [ s ]
  | Arith (_, _, s1, o) -> s1 :: operand_reads o
  | Cmp { src1; src2; _ } -> src1 :: operand_reads src2
  | Tnat { src; _ } -> [ src ]
  | Extr { src; _ } -> [ src ]
  | Ld { addr; _ } -> [ addr ]
  | St { addr; src; _ } -> [ addr; src ]
  | Fetchadd { addr; inc; _ } -> [ addr; inc ]
  | Chk_s { src; _ } -> [ src ]
  | Br_reg r | Call_reg r -> [ r ]
  | Ret -> []
  | Setnat r | Clrnat r -> [ r ]
  | Syscall ->
      Reg.sysnum :: List.init 6 Reg.sysarg

let writes = function
  | Nop | Br _ | Br_reg _ | Ret | Halt | Chk_s _ | Cmp _ | Tnat _ | St _ -> []
  | Movi (d, _) | Mov (d, _) | Lea (d, _) | Arith (_, d, _, _) | Ld { dst = d; _ }
  | Extr { dst = d; _ } | Fetchadd { dst = d; _ } -> [ d ]
  | Setnat r | Clrnat r -> [ r ]
  | Call _ | Call_reg _ -> [ Reg.ret ]
  | Syscall -> [ Reg.ret ]

let reads_preds _ = []
let writes_preds = function
  | Cmp { pt; pf; _ } | Tnat { pt; pf; _ } -> [ pt; pf ]
  | _ -> []

let arith_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Andcm -> "andcm"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sar -> "sar"

let width_to_string = function W1 -> "1" | W2 -> "2" | W4 -> "4" | W8 -> "8"

let operand_to_string = function
  | R r -> Reg.to_string r
  | Imm i -> Int64.to_string i

let op_to_string = function
  | Nop -> "nop"
  | Movi (d, i) -> Printf.sprintf "movl %s = %Ld" (Reg.to_string d) i
  | Mov (d, s) -> Printf.sprintf "mov %s = %s" (Reg.to_string d) (Reg.to_string s)
  | Arith (a, d, s1, o) ->
      Printf.sprintf "%s %s = %s, %s" (arith_to_string a) (Reg.to_string d)
        (Reg.to_string s1) (operand_to_string o)
  | Cmp { cond; pt; pf; src1; src2; taint_aware } ->
      Printf.sprintf "cmp%s.%s %s, %s = %s, %s"
        (if taint_aware then ".ta" else "")
        (Cond.to_string cond) (Pred.to_string pt) (Pred.to_string pf)
        (Reg.to_string src1) (operand_to_string src2)
  | Tnat { pt; pf; src } ->
      Printf.sprintf "tnat %s, %s = %s" (Pred.to_string pt) (Pred.to_string pf)
        (Reg.to_string src)
  | Extr { dst; src; pos; len } ->
      Printf.sprintf "extr %s = %s, %d, %d" (Reg.to_string dst) (Reg.to_string src) pos len
  | Ld { width; dst; addr; spec; fill } ->
      Printf.sprintf "ld%s%s %s = [%s]" (width_to_string width)
        (if fill then ".fill" else if spec then ".s" else "")
        (Reg.to_string dst) (Reg.to_string addr)
  | St { width; addr; src; spill } ->
      Printf.sprintf "st%s%s [%s] = %s" (width_to_string width)
        (if spill then ".spill" else "")
        (Reg.to_string addr) (Reg.to_string src)
  | Chk_s { src; recovery } ->
      Printf.sprintf "chk.s %s, %s" (Reg.to_string src) recovery
  | Lea (d, l) -> Printf.sprintf "lea %s = %s" (Reg.to_string d) l
  | Br l -> Printf.sprintf "br %s" l
  | Br_reg r -> Printf.sprintf "br %s" (Reg.to_string r)
  | Call l -> Printf.sprintf "br.call %s" l
  | Call_reg r -> Printf.sprintf "br.call %s" (Reg.to_string r)
  | Ret -> "br.ret"
  | Fetchadd { dst; addr; inc } ->
      Printf.sprintf "fetchadd8 %s = [%s], %s" (Reg.to_string dst) (Reg.to_string addr)
        (Reg.to_string inc)
  | Setnat r -> Printf.sprintf "setnat %s" (Reg.to_string r)
  | Clrnat r -> Printf.sprintf "clrnat %s" (Reg.to_string r)
  | Syscall -> "syscall"
  | Halt -> "halt"

let to_string { qp; op; prov } =
  let qps = if qp = Pred.p0 then "      " else Printf.sprintf "(%s) " (Pred.to_string qp) in
  let base = qps ^ op_to_string op in
  match prov with
  | Prov.Orig -> base
  | p -> Printf.sprintf "%-40s ;; %s" base (Prov.to_string p)

let pp ppf i = Format.pp_print_string ppf (to_string i)
