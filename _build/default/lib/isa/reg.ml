type t = int

let count = 128
let zero = 0
let ret = 8
let sp = 12
let sysnum = 15
let impl_mask = 29
let scratch_slot = 30
let nat_src = 31
let max_args = 8

let arg i =
  if i < 0 || i >= max_args then invalid_arg "Reg.arg";
  16 + i

let sysarg i =
  if i < 0 || i >= 6 then invalid_arg "Reg.sysarg";
  32 + i

let is_valid r = r >= 0 && r < count
let to_string r = Printf.sprintf "r%d" r
let pp ppf r = Format.pp_print_string ppf (to_string r)
