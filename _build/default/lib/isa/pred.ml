type t = int

let count = 64
let p0 = 0
let is_valid p = p >= 0 && p < count
let to_string p = Printf.sprintf "p%d" p
let pp ppf p = Format.pp_print_string ppf (to_string p)
