(** Predicate registers.

    Every instruction is qualified by a predicate register; the
    instruction only takes effect when the predicate is true.  [p0] is
    hard-wired to true, so unpredicated instructions are encoded with
    qualifying predicate [p0]. *)

type t = int

val count : int
(** Number of predicate registers (64, as on Itanium). *)

val p0 : t
(** The always-true predicate. *)

val is_valid : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
