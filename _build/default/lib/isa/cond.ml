type t = Eq | Ne | Lt | Le | Gt | Ge | Ltu | Leu | Gtu | Geu

let eval c a b =
  match c with
  | Eq -> Int64.equal a b
  | Ne -> not (Int64.equal a b)
  | Lt -> Int64.compare a b < 0
  | Le -> Int64.compare a b <= 0
  | Gt -> Int64.compare a b > 0
  | Ge -> Int64.compare a b >= 0
  | Ltu -> Int64.unsigned_compare a b < 0
  | Leu -> Int64.unsigned_compare a b <= 0
  | Gtu -> Int64.unsigned_compare a b > 0
  | Geu -> Int64.unsigned_compare a b >= 0

let negate = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt
  | Ltu -> Geu
  | Leu -> Gtu
  | Gtu -> Leu
  | Geu -> Ltu

let swap = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
  | Ltu -> Gtu
  | Leu -> Geu
  | Gtu -> Ltu
  | Geu -> Leu

let all = [ Eq; Ne; Lt; Le; Gt; Ge; Ltu; Leu; Gtu; Geu ]

let to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Ltu -> "ltu"
  | Leu -> "leu"
  | Gtu -> "gtu"
  | Geu -> "geu"

let pp ppf c = Format.pp_print_string ppf (to_string c)
