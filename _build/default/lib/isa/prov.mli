(** Instruction provenance.

    Every instruction is tagged with where it came from: the original
    program, or one of the instrumentation categories the SHIFT compiler
    pass inserts.  The machine accounts issue slots per provenance, which
    is how the Figure-9 overhead breakdown (computation vs. memory access
    in load and store instrumentation) is regenerated. *)

type t =
  | Orig        (** an instruction of the original program *)
  | Ld_compute  (** load instrumentation: tag-address computation and tests *)
  | Ld_mem      (** load instrumentation: bitmap memory access *)
  | St_compute  (** store instrumentation: tag computation and NaT test *)
  | St_mem      (** store instrumentation: bitmap memory access *)
  | Cmp_relax   (** compare-relaxation code (NaT stripping around [cmp]) *)
  | Nat_gen     (** NaT-source generation and reserved-register setup *)
  | Shadow      (** software-DBT baseline shadow-tag propagation code *)

val is_instrumentation : t -> bool
(** True for everything except [Orig]. *)

val index : t -> int
(** A dense index in [0, card). *)

val card : int
val of_index : int -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
