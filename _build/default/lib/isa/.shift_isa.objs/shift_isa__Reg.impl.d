lib/isa/reg.ml: Format Printf
