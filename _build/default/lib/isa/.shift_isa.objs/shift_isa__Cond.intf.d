lib/isa/cond.mli: Format
