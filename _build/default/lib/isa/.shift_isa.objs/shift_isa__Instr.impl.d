lib/isa/instr.ml: Cond Format Int64 List Pred Printf Prov Reg
