lib/isa/cond.ml: Format Int64
