lib/isa/sysno.ml: Printf
