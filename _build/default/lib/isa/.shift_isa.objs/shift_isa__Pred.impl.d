lib/isa/pred.ml: Format Printf
