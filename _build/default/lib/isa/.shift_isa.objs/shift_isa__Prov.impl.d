lib/isa/prov.ml: Format
