lib/isa/instr.mli: Cond Format Pred Prov Reg
