lib/isa/pred.mli: Format
