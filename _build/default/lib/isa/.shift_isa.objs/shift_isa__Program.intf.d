lib/isa/program.mli: Format Hashtbl Instr Prov
