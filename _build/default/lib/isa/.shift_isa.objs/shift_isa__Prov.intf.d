lib/isa/prov.mli: Format
