lib/isa/sysno.mli:
