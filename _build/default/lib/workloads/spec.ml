type kernel = {
  name : string;
  description : string;
  program : Ir.program;
  input : size:int -> string;
  default_size : int;
}

let k name description program input default_size =
  { name; description; program; input; default_size }

let all =
  [
    k Kgzip.name Kgzip.description Kgzip.program Kgzip.input Kgzip.default_size;
    k Kgcc.name Kgcc.description Kgcc.program Kgcc.input Kgcc.default_size;
    k Kcrafty.name Kcrafty.description Kcrafty.program Kcrafty.input Kcrafty.default_size;
    k Kbzip2.name Kbzip2.description Kbzip2.program Kbzip2.input Kbzip2.default_size;
    k Kvpr.name Kvpr.description Kvpr.program Kvpr.input Kvpr.default_size;
    k Kmcf.name Kmcf.description Kmcf.program Kmcf.input Kmcf.default_size;
    k Kparser.name Kparser.description Kparser.program Kparser.input Kparser.default_size;
    k Ktwolf.name Ktwolf.description Ktwolf.program Ktwolf.input Ktwolf.default_size;
  ]

let find name = List.find_opt (fun kr -> kr.name = name) all

let setup ?size ~tainted kernel world =
  let size = Option.value size ~default:kernel.default_size in
  Shift_os.World.add_file world ~tainted "input.dat" (kernel.input ~size)
