(* Shared guest-code fragments for the SPEC-like kernels. *)

open Build
open Build.Infix

(* Opens "input.dat" into a fresh heap buffer.  Expects scalar locals
   "fd", "buf" and "n" in the enclosing function. *)
let read_input ~bufsize =
  [
    set "fd" (call "sys_open" [ str "input.dat" ]);
    when_ (v "fd" <: i 0) [ ret (i 0 -: i 1) ];
    set "buf" (call "malloc" [ i bufsize ]);
    set "n" (call "sys_read" [ v "fd"; v "buf"; i bufsize ]);
  ]

(* |x| without a branch-free idiom: the kernels are ordinary C-style
   code *)
let abs_func =
  func "k_abs" ~params:[ "x" ] ~locals:[]
    [ when_ (v "x" <: i 0) [ ret (i 0 -: v "x") ]; ret (v "x") ]

(* the classic 64-bit LCG the placement kernels use for their annealing
   schedules; state is kept by the caller *)
let lcg_func =
  func "k_lcg" ~params:[ "state_ptr" ] ~locals:[ scalar "s" ]
    [
      set "s" (load64 (v "state_ptr"));
      set "s" ((v "s" *: i64 6364136223846793005L) +: i64 1442695040888963407L);
      store64 (v "state_ptr") (v "s");
      ret (v "s" >>: i 33);
    ]
