(* "crafty" kernel: bitboard move generation, the 64-bit-word profile of
   186.crafty — precomputed attack tables indexed by square, occupancy
   masks and population counts.  Occupancies come from the input file,
   so in the unsafe configuration nearly every intermediate is tainted
   and both the load instrumentation and the compare-relaxation cost
   show. *)

open Build
open Build.Infix

(* attack tables computed once, host-side, exactly as crafty's
   initialisation does *)
let on_board file rank = file >= 0 && file < 8 && rank >= 0 && rank < 8

let attacks deltas sq =
  let file = sq mod 8 and rank = sq / 8 in
  List.fold_left
    (fun acc (df, dr) ->
      if on_board (file + df) (rank + dr) then
        Int64.logor acc (Int64.shift_left 1L (((rank + dr) * 8) + file + df))
      else acc)
    0L deltas

let knight_deltas =
  [ (1, 2); (2, 1); (2, -1); (1, -2); (-1, -2); (-2, -1); (-2, 1); (-1, 2) ]

let king_deltas =
  [ (1, 0); (1, 1); (0, 1); (-1, 1); (-1, 0); (-1, -1); (0, -1); (1, -1) ]

let tables =
  [
    global_words "knight_tab" (List.init 64 (attacks knight_deltas));
    global_words "king_tab" (List.init 64 (attacks king_deltas));
  ]

let program =
  {
    Ir.globals = tables;
    funcs =
      [
        (* Kernighan popcount: one tainted compare per set bit *)
        func "popcount" ~params:[ "x" ] ~locals:[ scalar "count" ]
          [
            set "count" (i 0);
            while_ (v "x" <>: i 0)
              [ set "x" (v "x" &: (v "x" -: i 1)); set "count" (v "count" +: i 1) ];
            ret (v "count");
          ];
        (* score one position: for every friendly piece, count the
           squares it attacks that are empty or hold an enemy *)
        func "score_position" ~params:[ "own"; "enemy" ]
          ~locals:[ scalar "sq"; scalar "piece"; scalar "targets"; scalar "total" ]
          [
            set "total" (i 0);
            set "sq" (i 0);
            while_ (v "sq" <: i 64)
              [
                set "piece" ((v "own" >>: v "sq") &: i 1);
                when_ (v "piece" <>: i 0)
                  [
                    (* alternate piece types by square colour *)
                    if_ (((v "sq" +: (v "sq" >>: i 3)) &: i 1) ==: i 0)
                      [ set "targets" (load64 (v "knight_tab" +: (v "sq" *: i 8))) ]
                      [ set "targets" (load64 (v "king_tab" +: (v "sq" *: i 8))) ];
                    set "targets" (v "targets" &: Ir.Unop (Ir.Bnot, v "own"));
                    set "total" (v "total" +: call "popcount" [ v "targets" ]);
                    (* captures are worth double *)
                    set "total" (v "total" +: call "popcount" [ v "targets" &: v "enemy" ]);
                  ];
                set "sq" (v "sq" +: i 1);
              ];
            ret (v "total");
          ];
        func "main" ~params:[]
          ~locals:
            [ scalar "fd"; scalar "buf"; scalar "n"; scalar "k"; scalar "own";
              scalar "enemy"; scalar "sum" ]
          (Kernel_util.read_input ~bufsize:65536
          @ [
              set "sum" (i 0);
              set "k" (i 0);
              while_ (v "k" +: i 16 <=: v "n")
                [
                  set "own" (load64 (v "buf" +: v "k"));
                  set "enemy" (load64 (v "buf" +: v "k" +: i 8) &: Ir.Unop (Ir.Bnot, v "own"));
                  set "sum" (v "sum" +: call "score_position" [ v "own"; v "enemy" ]);
                  set "k" (v "k" +: i 16);
                ];
              ret (v "sum" &: i 0xffffff);
            ]);
      ];
  }

let input ~size = Inputs.bytes ~seed:186 size
let default_size = 4096
let name = "crafty"
let description = "bitboard attack tables with population counts"
