(** The SPEC-INT2000-like kernel suite (paper §6.2).

    Eight kernels mirror the computational character of the eight
    benchmarks the paper measures (gzip, gcc, crafty, bzip2, vpr, mcf,
    parser, twolf).  Each reads its input from the file "input.dat";
    taint the file to reproduce the paper's "unsafe" configuration,
    leave it clean for "safe". *)

type kernel = {
  name : string;
  description : string;
  program : Ir.program;
  input : size:int -> string;
  default_size : int;
}

val all : kernel list
(** In the paper's Figure-7 order. *)

val find : string -> kernel option

val setup : ?size:int -> tainted:bool -> kernel -> Shift_os.World.t -> unit
(** Install the kernel's input file into a world. *)
