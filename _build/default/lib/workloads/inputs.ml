(* xorshift64* PRNG, deterministic across platforms *)
type rng = { mutable state : int64 }

let make_rng seed = { state = Int64.of_int (seed * 2654435761 + 88172645463325252) }

let next r =
  let x = r.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let int r bound =
  let v = Int64.to_int (Int64.shift_right_logical (next r) 17) in
  v mod bound

let bytes ~seed n =
  let r = make_rng seed in
  (* skewed distribution so compression has something to find *)
  String.init n (fun _ ->
      if int r 4 = 0 then Char.chr (int r 256) else Char.chr (97 + int r 6))

let text ~seed n =
  let r = make_rng seed in
  let b = Buffer.create n in
  let vocabulary =
    [| "the"; "linking"; "parser"; "grammar"; "costs"; "worked"; "running";
       "taints"; "flowed"; "checked"; "moves"; "data"; "table"; "edges";
       "words"; "timing"; "caches"; "loads" |]
  in
  while Buffer.length b < n do
    if int r 10 = 0 then
      (* occasional novel word *)
      for _ = 0 to 3 + int r 5 do
        Buffer.add_char b (Char.chr (97 + int r 26))
      done
    else Buffer.add_string b vocabulary.(int r (Array.length vocabulary));
    Buffer.add_char b (if int r 8 = 0 then '\n' else ' ')
  done;
  Buffer.sub b 0 n

let expressions ~seed n =
  let r = make_rng seed in
  let b = Buffer.create n in
  let rec expr depth =
    if depth = 0 || int r 3 = 0 then Buffer.add_string b (string_of_int (int r 1000))
    else begin
      let paren = int r 3 = 0 in
      if paren then Buffer.add_char b '(';
      expr (depth - 1);
      Buffer.add_char b [| '+'; '-'; '*' |].(int r 3);
      expr (depth - 1);
      if paren then Buffer.add_char b ')'
    end
  in
  while Buffer.length b < n do
    expr 3;
    Buffer.add_char b ';'
  done;
  Buffer.contents b

let pairs ~seed ~count ~max =
  let r = make_rng seed in
  let b = Buffer.create (count * 4) in
  for _ = 1 to count do
    let a = int r max and c = int r max in
    Buffer.add_char b (Char.chr (a land 0xff));
    Buffer.add_char b (Char.chr (a lsr 8));
    Buffer.add_char b (Char.chr (c land 0xff));
    Buffer.add_char b (Char.chr (c lsr 8))
  done;
  Buffer.contents b
