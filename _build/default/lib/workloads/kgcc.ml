(* "gcc" kernel: a compiler front end in miniature, mirroring 176.gcc's
   profile — character-class table lookups, recursive-descent parsing,
   bytecode emission and a constant-folding evaluator.  Every input
   character indexes the class table (an untainted-after-bounds-check
   lookup, §3.3.2) and steers compare-heavy control flow, which is why
   the real gcc gains the most from the §6.3 enhancements. *)

open Build
open Build.Infix

(* character classes: 1 digit, 2 operator, 3 parenthesis, 4 terminator *)
let class_table =
  String.init 256 (fun c ->
      if c >= Char.code '0' && c <= Char.code '9' then '\001'
      else if c = Char.code '+' || c = Char.code '-' || c = Char.code '*' then '\002'
      else if c = Char.code '(' || c = Char.code ')' then '\003'
      else if c = Char.code ';' then '\004'
      else '\000')

(* bytecode: 1 push-imm (8-byte le operand), 2 add, 3 sub, 4 mul *)
let program =
  {
    Ir.globals =
      [
        { Ir.gname = "classtab"; datum = Ir.Bytes class_table };
        Build.global_zeros "g_src" 8;
        Build.global_zeros "g_pos" 8;
        Build.global_zeros "g_code" 8;
        Build.global_zeros "g_ci" 8;
      ];
    funcs =
      [
        func "class_of" ~params:[ "ch" ] ~locals:[]
          [ ret (load8 (v "classtab" +: call "untaint" [ v "ch" &: i 255 ])) ];
        func "peek" ~params:[] ~locals:[]
          [ ret (load8 (load64 (v "g_src") +: load64 (v "g_pos"))) ];
        func "advance" ~params:[] ~locals:[]
          [ store64 (v "g_pos") (load64 (v "g_pos") +: i 1); ret0 ];
        func "emit8" ~params:[ "b" ] ~locals:[ scalar "ci" ]
          [
            set "ci" (load64 (v "g_ci"));
            store8 (load64 (v "g_code") +: v "ci") (v "b");
            store64 (v "g_ci") (v "ci" +: i 1);
            ret0;
          ];
        func "emit_push" ~params:[ "value" ] ~locals:[ scalar "ci" ]
          [
            ecall "emit8" [ i 1 ];
            set "ci" (load64 (v "g_ci"));
            store64 (load64 (v "g_code") +: v "ci") (v "value");
            store64 (v "g_ci") (v "ci" +: i 8);
            ret0;
          ];
        func "parse_factor" ~params:[] ~locals:[ scalar "ch"; scalar "acc" ]
          [
            set "ch" (call "peek" []);
            if_ (v "ch" ==: i (Char.code '('))
              [
                ecall "advance" [];
                ecall "parse_expr" [];
                ecall "advance" [] (* the ')' *);
              ]
              [
                set "acc" (i 0);
                while_ (call "class_of" [ v "ch" ] ==: i 1)
                  [
                    set "acc" ((v "acc" *: i 10) +: (v "ch" -: i (Char.code '0')));
                    ecall "advance" [];
                    set "ch" (call "peek" []);
                  ];
                ecall "emit_push" [ v "acc" ];
              ];
            ret0;
          ];
        func "parse_term" ~params:[] ~locals:[ scalar "ch" ]
          [
            ecall "parse_factor" [];
            set "ch" (call "peek" []);
            while_ (v "ch" ==: i (Char.code '*'))
              [
                ecall "advance" [];
                ecall "parse_factor" [];
                ecall "emit8" [ i 4 ];
                set "ch" (call "peek" []);
              ];
            ret0;
          ];
        func "parse_expr" ~params:[] ~locals:[ scalar "ch" ]
          [
            ecall "parse_term" [];
            set "ch" (call "peek" []);
            while_ ((v "ch" ==: i (Char.code '+')) ||: (v "ch" ==: i (Char.code '-')))
              [
                ecall "advance" [];
                ecall "parse_term" [];
                if_ (v "ch" ==: i (Char.code '+')) [ ecall "emit8" [ i 2 ] ] [ ecall "emit8" [ i 3 ] ];
                set "ch" (call "peek" []);
              ];
            ret0;
          ];
        (* the constant folder: evaluate the bytecode on a small stack *)
        func "fold" ~params:[ "code"; "len" ]
          ~locals:[ array "stack" 256; scalar "sp"; scalar "k"; scalar "op"; scalar "a"; scalar "b" ]
          [
            set "sp" (i 0);
            set "k" (i 0);
            while_ (v "k" <: v "len")
              [
                set "op" (load8 (v "code" +: v "k"));
                set "k" (v "k" +: i 1);
                if_ (v "op" ==: i 1)
                  [
                    store64 (v "stack" +: (v "sp" *: i 8)) (load64 (v "code" +: v "k"));
                    set "k" (v "k" +: i 8);
                    set "sp" (v "sp" +: i 1);
                  ]
                  [
                    set "b" (load64 (v "stack" +: ((v "sp" -: i 1) *: i 8)));
                    set "a" (load64 (v "stack" +: ((v "sp" -: i 2) *: i 8)));
                    set "sp" (v "sp" -: i 1);
                    if_ (v "op" ==: i 2)
                      [ store64 (v "stack" +: ((v "sp" -: i 1) *: i 8)) (v "a" +: v "b") ]
                      [
                        if_ (v "op" ==: i 3)
                          [ store64 (v "stack" +: ((v "sp" -: i 1) *: i 8)) (v "a" -: v "b") ]
                          [ store64 (v "stack" +: ((v "sp" -: i 1) *: i 8)) (v "a" *: v "b") ];
                      ];
                  ];
              ];
            when_ (v "sp" >: i 0) [ ret (load64 (v "stack")) ];
            ret (i 0);
          ];
        func "main" ~params:[]
          ~locals:
            [ scalar "fd"; scalar "buf"; scalar "n"; scalar "sum"; scalar "start";
              scalar "value"; scalar "ch" ]
          (Kernel_util.read_input ~bufsize:65536
          @ [
              store64 (v "g_src") (v "buf");
              store64 (v "g_pos") (i 0);
              store64 (v "g_code") (call "malloc" [ i 262144 ]);
              set "sum" (i 0);
              while_ (load64 (v "g_pos") <: v "n")
                [
                  set "ch" (call "peek" []);
                  when_ (call "class_of" [ v "ch" ] ==: i 0) [ Ir.Break ];
                  set "start" (load64 (v "g_ci"));
                  ecall "parse_expr" [];
                  set "value"
                    (call "fold"
                       [ load64 (v "g_code") +: v "start"; load64 (v "g_ci") -: v "start" ]);
                  set "sum" ((v "sum" *: i 7) ^: v "value");
                  (* the ';' *)
                  ecall "advance" [];
                ];
              ret (v "sum" &: i 0xffffff);
            ]);
      ];
  }

let input ~size = Inputs.expressions ~seed:176 size
let default_size = 2600
let name = "gcc"
let description = "expression compiler: tokenize, parse, emit, constant-fold"
