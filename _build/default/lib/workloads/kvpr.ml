(* "vpr" kernel: FPGA-style placement by simulated annealing on a 2-D
   grid, 175.vpr's profile — net-list scans, coordinate arithmetic and
   data-dependent swaps driven by a deterministic LCG.  Net endpoints
   come from the input (masked and untainted at build time, like vpr's
   own bounds-checked indices). *)

open Build
open Build.Infix

let grid = 16
let cells = grid * grid

let program =
  {
    Ir.globals = [ global_zeros "rng_state" 8 ];
    funcs =
      [
        Kernel_util.abs_func;
        Kernel_util.lcg_func;
        (* total wirelength: sum of manhattan distances over all nets *)
        func "wirelength" ~params:[ "na"; "nb"; "nets"; "cx"; "cy" ]
          ~locals:[ scalar "k"; scalar "a"; scalar "b"; scalar "total" ]
          [
            set "total" (i 0);
            set "k" (i 0);
            while_ (v "k" <: v "nets")
              [
                set "a" (load64 (v "na" +: (v "k" *: i 8)));
                set "b" (load64 (v "nb" +: (v "k" *: i 8)));
                set "total"
                  (v "total"
                  +: call "k_abs"
                       [ load64 (v "cx" +: (v "a" *: i 8)) -: load64 (v "cx" +: (v "b" *: i 8)) ]
                  +: call "k_abs"
                       [ load64 (v "cy" +: (v "a" *: i 8)) -: load64 (v "cy" +: (v "b" *: i 8)) ]);
                set "k" (v "k" +: i 1);
              ];
            ret (v "total");
          ];
        func "swap_cells" ~params:[ "cx"; "cy"; "ca"; "cb" ]
          ~locals:[ scalar "tx"; scalar "ty" ]
          [
            set "tx" (load64 (v "cx" +: (v "ca" *: i 8)));
            store64 (v "cx" +: (v "ca" *: i 8)) (load64 (v "cx" +: (v "cb" *: i 8)));
            store64 (v "cx" +: (v "cb" *: i 8)) (v "tx");
            set "ty" (load64 (v "cy" +: (v "ca" *: i 8)));
            store64 (v "cy" +: (v "ca" *: i 8)) (load64 (v "cy" +: (v "cb" *: i 8)));
            store64 (v "cy" +: (v "cb" *: i 8)) (v "ty");
            ret0;
          ];
        func "main" ~params:[]
          ~locals:
            [ scalar "fd"; scalar "buf"; scalar "n"; scalar "nets"; scalar "na"; scalar "nb";
              scalar "cx"; scalar "cy"; scalar "k"; scalar "cost"; scalar "trial";
              scalar "ca"; scalar "cb"; scalar "newcost"; scalar "iters" ]
          (Kernel_util.read_input ~bufsize:65536
          @ [
              set "nets" (v "n" /: i 4);
              when_ (v "nets" >: i 400) [ set "nets" (i 400) ];
              set "na" (call "malloc" [ v "nets" *: i 8 ]);
              set "nb" (call "malloc" [ v "nets" *: i 8 ]);
              set "cx" (call "malloc" [ i (cells * 8) ]);
              set "cy" (call "malloc" [ i (cells * 8) ]);
            ]
          (* initial placement: row-major *)
          @ for_up "k" (i 0) (i cells)
              [
                store64 (v "cx" +: (v "k" *: i 8)) (v "k" %: i grid);
                store64 (v "cy" +: (v "k" *: i 8)) (v "k" /: i grid);
              ]
          (* build the net list from input pairs; endpoints are masked
             to the cell count and untainted (bounds-checked indices) *)
          @ for_up "k" (i 0) (v "nets")
              [
                store64
                  (v "na" +: (v "k" *: i 8))
                  (call "untaint"
                     [ (load8 (v "buf" +: (v "k" *: i 4))
                       |: (load8 (v "buf" +: (v "k" *: i 4) +: i 1) <<: i 8))
                       %: i cells ]);
                store64
                  (v "nb" +: (v "k" *: i 8))
                  (call "untaint"
                     [ (load8 (v "buf" +: (v "k" *: i 4) +: i 2)
                       |: (load8 (v "buf" +: (v "k" *: i 4) +: i 3) <<: i 8))
                       %: i cells ]);
              ]
          @ [
              store64 (v "rng_state") (i 175);
              set "cost" (call "wirelength" [ v "na"; v "nb"; v "nets"; v "cx"; v "cy" ]);
              set "iters" (i 120);
              set "trial" (i 0);
              while_ (v "trial" <: v "iters")
                [
                  set "ca" (call "k_lcg" [ v "rng_state" ] %: i cells);
                  set "cb" (call "k_lcg" [ v "rng_state" ] %: i cells);
                  ecall "swap_cells" [ v "cx"; v "cy"; v "ca"; v "cb" ];
                  set "newcost" (call "wirelength" [ v "na"; v "nb"; v "nets"; v "cx"; v "cy" ]);
                  if_
                    ((v "newcost" <: v "cost")
                    ||: ((call "k_lcg" [ v "rng_state" ] &: i 7) ==: i 0))
                    [ set "cost" (v "newcost") ]
                    [ ecall "swap_cells" [ v "cx"; v "cy"; v "ca"; v "cb" ] ];
                  set "trial" (v "trial" +: i 1);
                ];
              ret (v "cost" &: i 0xffffff);
            ]);
      ];
  }

let input ~size = Inputs.pairs ~seed:175 ~count:(size / 4) ~max:cells
let default_size = 1600
let name = "vpr"
let description = "grid placement annealing over a net list"
