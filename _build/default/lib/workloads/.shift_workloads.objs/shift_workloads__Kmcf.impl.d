lib/workloads/kmcf.ml: Build Inputs Ir Kernel_util
