lib/workloads/inputs.ml: Array Buffer Char Int64 String
