lib/workloads/kernel_util.ml: Build
