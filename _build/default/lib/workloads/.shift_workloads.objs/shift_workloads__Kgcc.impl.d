lib/workloads/kgcc.ml: Build Char Inputs Ir Kernel_util String
