lib/workloads/httpd.mli: Ir Shift_os Shift_policy
