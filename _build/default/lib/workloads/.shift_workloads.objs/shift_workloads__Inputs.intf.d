lib/workloads/inputs.mli:
