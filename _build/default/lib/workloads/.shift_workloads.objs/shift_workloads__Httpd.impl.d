lib/workloads/httpd.ml: Build Char Inputs Ir Printf Shift_os Shift_policy
