lib/workloads/ktwolf.ml: Build Inputs Ir Kernel_util
