lib/workloads/spec.mli: Ir Shift_os
