lib/workloads/kvpr.ml: Build Inputs Ir Kernel_util
