lib/workloads/kbzip2.ml: Build Inputs Ir Kernel_util
