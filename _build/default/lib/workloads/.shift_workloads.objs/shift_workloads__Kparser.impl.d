lib/workloads/kparser.ml: Build Char Inputs Ir Kernel_util
