lib/workloads/kgzip.ml: Build Inputs Ir Kernel_util
