lib/workloads/kcrafty.ml: Build Inputs Int64 Ir Kernel_util List
