lib/workloads/spec.ml: Ir Kbzip2 Kcrafty Kgcc Kgzip Kmcf Kparser Ktwolf Kvpr List Option Shift_os
