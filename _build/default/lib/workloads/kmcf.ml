(* "mcf" kernel: Bellman-Ford relaxation over a sparse random graph —
   181.mcf's memory-bound profile.  The distance array is larger than
   the L1 cache and arcs arrive in random order, so performance is
   dominated by cache misses and the instrumentation hides behind them:
   mcf shows both the lowest slowdown and the smallest enhancement gain
   in the paper. *)

open Build
open Build.Infix

let nodes = 4096
let inf = 1 lsl 40

let program =
  {
    Ir.globals = [];
    funcs =
      [
        func "relax_round" ~params:[ "tails"; "heads"; "costs"; "dist"; "arcs" ]
          ~locals:[ scalar "k"; scalar "u"; scalar "w"; scalar "d"; scalar "improved" ]
          [
            set "improved" (i 0);
            set "k" (i 0);
            while_ (v "k" <: v "arcs")
              [
                set "u" (load64 (v "tails" +: (v "k" *: i 8)));
                set "w" (load64 (v "heads" +: (v "k" *: i 8)));
                set "d" (load64 (v "dist" +: (v "u" *: i 8)) +: load64 (v "costs" +: (v "k" *: i 8)));
                when_ (v "d" <: load64 (v "dist" +: (v "w" *: i 8)))
                  [
                    store64 (v "dist" +: (v "w" *: i 8)) (v "d");
                    set "improved" (v "improved" +: i 1);
                  ];
                set "k" (v "k" +: i 1);
              ];
            ret (v "improved");
          ];
        func "main" ~params:[]
          ~locals:
            [ scalar "fd"; scalar "buf"; scalar "n"; scalar "arcs"; scalar "tails";
              scalar "heads"; scalar "costs"; scalar "dist"; scalar "k"; scalar "round";
              scalar "sum"; scalar "improved" ]
          (Kernel_util.read_input ~bufsize:131072
          @ [
              set "arcs" (v "n" /: i 4);
              set "tails" (call "malloc" [ v "arcs" *: i 8 ]);
              set "heads" (call "malloc" [ v "arcs" *: i 8 ]);
              set "costs" (call "malloc" [ v "arcs" *: i 8 ]);
              set "dist" (call "malloc" [ i (nodes * 8) ]);
            ]
          (* arc endpoints are array indices: masked and untainted at
             build time (§3.3.2); costs stay tainted *)
          @ for_up "k" (i 0) (v "arcs")
              [
                store64
                  (v "tails" +: (v "k" *: i 8))
                  (call "untaint"
                     [ (load8 (v "buf" +: (v "k" *: i 4))
                       |: (load8 (v "buf" +: (v "k" *: i 4) +: i 1) <<: i 8))
                       %: i nodes ]);
                store64
                  (v "heads" +: (v "k" *: i 8))
                  (call "untaint"
                     [ (load8 (v "buf" +: (v "k" *: i 4) +: i 2)
                       |: (load8 (v "buf" +: (v "k" *: i 4) +: i 3) <<: i 8))
                       %: i nodes ]);
                store64
                  (v "costs" +: (v "k" *: i 8))
                  ((load8 (v "buf" +: (v "k" *: i 4)) &: i 63) +: i 1);
              ]
          @ for_up "k" (i 0) (i nodes) [ store64 (v "dist" +: (v "k" *: i 8)) (i inf) ]
          @ [
              store64 (v "dist") (i 0);
              set "round" (i 0);
              while_ (v "round" <: i 10)
                [
                  set "improved"
                    (call "relax_round" [ v "tails"; v "heads"; v "costs"; v "dist"; v "arcs" ]);
                  when_ (v "improved" ==: i 0) [ Ir.Break ];
                  set "round" (v "round" +: i 1);
                ];
              set "sum" (i 0);
            ]
          @ for_up "k" (i 0) (i nodes)
              [
                when_ (load64 (v "dist" +: (v "k" *: i 8)) <>: i inf)
                  [ set "sum" ((v "sum" *: i 17) ^: load64 (v "dist" +: (v "k" *: i 8))) ];
              ]
          @ [ ret (v "sum" &: i 0xffffff) ]);
      ];
  }

let input ~size = Inputs.pairs ~seed:181 ~count:(size / 4) ~max:65536
let default_size = 65536
let name = "mcf"
let description = "Bellman-Ford relaxations over a cache-hostile graph"
