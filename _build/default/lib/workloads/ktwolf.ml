(* "twolf" kernel: standard-cell row ordering by annealing, 300.twolf's
   profile.  Unlike the vpr kernel this one is 1-D, keeps an inverse
   permutation, and its cost mixes wirelength with cell-width overlap
   penalties whose widths stay tainted, so more tainted data flows
   through the arithmetic. *)

open Build
open Build.Infix

let ncells = 96

let program =
  {
    Ir.globals = [ global_zeros "rng2_state" 8 ];
    funcs =
      [
        Kernel_util.abs_func;
        Kernel_util.lcg_func;
        (* wire cost over nets plus pairwise overlap penalty between
           row neighbours *)
        func "row_cost" ~params:[ "na"; "nb"; "nets"; "posof"; "widths" ]
          ~locals:[ scalar "k"; scalar "total"; scalar "a"; scalar "b" ]
          [
            set "total" (i 0);
            set "k" (i 0);
            while_ (v "k" <: v "nets")
              [
                set "a" (load64 (v "na" +: (v "k" *: i 8)));
                set "b" (load64 (v "nb" +: (v "k" *: i 8)));
                set "total"
                  (v "total"
                  +: call "k_abs"
                       [ load64 (v "posof" +: (v "a" *: i 8))
                         -: load64 (v "posof" +: (v "b" *: i 8)) ]
                  +: ((load64 (v "widths" +: (v "a" *: i 8))
                      +: load64 (v "widths" +: (v "b" *: i 8)))
                     >>: i 4));
                set "k" (v "k" +: i 1);
              ];
            ret (v "total");
          ];
        func "main" ~params:[]
          ~locals:
            [ scalar "fd"; scalar "buf"; scalar "n"; scalar "nets"; scalar "na"; scalar "nb";
              scalar "order"; scalar "posof"; scalar "widths"; scalar "k"; scalar "cost";
              scalar "trial"; scalar "p"; scalar "q"; scalar "cp"; scalar "cq";
              scalar "newcost" ]
          (Kernel_util.read_input ~bufsize:65536
          @ [
              set "nets" (v "n" /: i 4);
              when_ (v "nets" >: i 320) [ set "nets" (i 320) ];
              set "na" (call "malloc" [ v "nets" *: i 8 ]);
              set "nb" (call "malloc" [ v "nets" *: i 8 ]);
              set "order" (call "malloc" [ i (ncells * 8) ]);
              set "posof" (call "malloc" [ i (ncells * 8) ]);
              set "widths" (call "malloc" [ i (ncells * 8) ]);
            ]
          @ for_up "k" (i 0) (i ncells)
              [
                store64 (v "order" +: (v "k" *: i 8)) (v "k");
                store64 (v "posof" +: (v "k" *: i 8)) (v "k");
                (* widths from input bytes: tainted data in the cost *)
                store64 (v "widths" +: (v "k" *: i 8)) (load8 (v "buf" +: v "k") &: i 31);
              ]
          @ for_up "k" (i 0) (v "nets")
              [
                store64
                  (v "na" +: (v "k" *: i 8))
                  (call "untaint"
                     [ (load8 (v "buf" +: (v "k" *: i 4))
                       |: (load8 (v "buf" +: (v "k" *: i 4) +: i 1) <<: i 8))
                       %: i ncells ]);
                store64
                  (v "nb" +: (v "k" *: i 8))
                  (call "untaint"
                     [ (load8 (v "buf" +: (v "k" *: i 4) +: i 2)
                       |: (load8 (v "buf" +: (v "k" *: i 4) +: i 3) <<: i 8))
                       %: i ncells ]);
              ]
          @ [
              store64 (v "rng2_state") (i 300);
              set "cost" (call "row_cost" [ v "na"; v "nb"; v "nets"; v "posof"; v "widths" ]);
              set "trial" (i 0);
              while_ (v "trial" <: i 100)
                [
                  set "p" (call "k_lcg" [ v "rng2_state" ] %: i ncells);
                  set "q" (call "k_lcg" [ v "rng2_state" ] %: i ncells);
                  (* swap the cells sitting at row positions p and q *)
                  set "cp" (load64 (v "order" +: (v "p" *: i 8)));
                  set "cq" (load64 (v "order" +: (v "q" *: i 8)));
                  store64 (v "order" +: (v "p" *: i 8)) (v "cq");
                  store64 (v "order" +: (v "q" *: i 8)) (v "cp");
                  store64 (v "posof" +: (v "cp" *: i 8)) (v "q");
                  store64 (v "posof" +: (v "cq" *: i 8)) (v "p");
                  set "newcost" (call "row_cost" [ v "na"; v "nb"; v "nets"; v "posof"; v "widths" ]);
                  if_
                    ((v "newcost" <: v "cost")
                    ||: ((call "k_lcg" [ v "rng2_state" ] &: i 15) ==: i 0))
                    [ set "cost" (v "newcost") ]
                    [
                      store64 (v "order" +: (v "p" *: i 8)) (v "cp");
                      store64 (v "order" +: (v "q" *: i 8)) (v "cq");
                      store64 (v "posof" +: (v "cp" *: i 8)) (v "p");
                      store64 (v "posof" +: (v "cq" *: i 8)) (v "q");
                    ];
                  set "trial" (v "trial" +: i 1);
                ];
              ret (v "cost" &: i 0xffffff);
            ]);
      ];
  }

let input ~size = Inputs.pairs ~seed:300 ~count:(size / 4) ~max:ncells
let default_size = 1280
let name = "twolf"
let description = "row ordering annealing with overlap penalties"
