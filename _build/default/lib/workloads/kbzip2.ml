(* "bzip2" kernel: block-wise byte-frequency sort, move-to-front coding
   and run-length encoding — the transform pipeline character of
   256.bzip2.  The frequency counters are indexed by input bytes (a
   bounds-checked table access, untainted per the §3.3.2 rules) and the
   MTF search scans a table with tainted compares. *)

open Build
open Build.Infix

let block = 256

let program =
  {
    Ir.globals = [];
    funcs =
      [
        (* frequency-count a block and return a checksum of the
           cumulative histogram (the "sorting" phase) *)
        func "freq_block" ~params:[ "buf"; "len"; "counts" ]
          ~locals:[ scalar "k"; scalar "idx"; scalar "run"; scalar "sum" ]
          (for_up "k" (i 0) (i 256) [ store64 (v "counts" +: (v "k" *: i 8)) (i 0) ]
          @ for_up "k" (i 0) (v "len")
              [
                set "idx" (call "untaint" [ load8 (v "buf" +: v "k") &: i 255 ]);
                store64
                  (v "counts" +: (v "idx" *: i 8))
                  (load64 (v "counts" +: (v "idx" *: i 8)) +: i 1);
              ]
          @ [ set "run" (i 0); set "sum" (i 0) ]
          @ for_up "k" (i 0) (i 256)
              [
                set "run" (v "run" +: load64 (v "counts" +: (v "k" *: i 8)));
                set "sum" ((v "sum" *: i 13) ^: v "run");
              ]
          @ [ ret (v "sum") ]);
        (* move-to-front transform of one block into out *)
        func "mtf_block" ~params:[ "buf"; "len"; "out"; "mtf" ]
          ~locals:[ scalar "k"; scalar "b"; scalar "j"; scalar "m" ]
          (for_up "k" (i 0) (i 256) [ store8 (v "mtf" +: v "k") (v "k") ]
          @ for_up "k" (i 0) (v "len")
              [
                set "b" (load8 (v "buf" +: v "k"));
                set "j" (i 0);
                while_ (load8 (v "mtf" +: v "j") <>: v "b") [ set "j" (v "j" +: i 1) ];
                store8 (v "out" +: v "k") (v "j");
                (* slide [0, j) up by one and put b at the front *)
                set "m" (v "j");
                while_ (v "m" >: i 0)
                  [
                    store8 (v "mtf" +: v "m") (load8 (v "mtf" +: v "m" -: i 1));
                    set "m" (v "m" -: i 1);
                  ];
                store8 (v "mtf") (v "b");
              ]
          @ [ ret (i 0) ]);
        (* run-length encode: returns encoded length *)
        func "rle_block" ~params:[ "src"; "len"; "out" ]
          ~locals:[ scalar "k"; scalar "oi"; scalar "b"; scalar "run" ]
          [
            set "k" (i 0);
            set "oi" (i 0);
            while_ (v "k" <: v "len")
              [
                set "b" (load8 (v "src" +: v "k"));
                set "run" (i 1);
                while_
                  ((v "k" +: v "run" <: v "len") &&: (v "run" <: i 255)
                  &&: (load8 (v "src" +: v "k" +: v "run") ==: v "b"))
                  [ set "run" (v "run" +: i 1) ];
                store8 (v "out" +: v "oi") (v "b");
                store8 (v "out" +: v "oi" +: i 1) (v "run");
                set "oi" (v "oi" +: i 2);
                set "k" (v "k" +: v "run");
              ];
            ret (v "oi");
          ];
        func "main" ~params:[]
          ~locals:
            [ scalar "fd"; scalar "buf"; scalar "n"; scalar "counts"; scalar "mtfbuf";
              scalar "mtf"; scalar "rle"; scalar "pos"; scalar "len"; scalar "sum";
              scalar "rlen"; scalar "k" ]
          (Kernel_util.read_input ~bufsize:65536
          @ [
              set "counts" (call "malloc" [ i 2048 ]);
              set "mtfbuf" (call "malloc" [ i block ]);
              set "mtf" (call "malloc" [ i 256 ]);
              set "rle" (call "malloc" [ i (2 * block) ]);
              set "sum" (i 0);
              set "pos" (i 0);
              while_ (v "pos" <: v "n")
                [
                  set "len" (v "n" -: v "pos");
                  when_ (v "len" >: i block) [ set "len" (i block) ];
                  set "sum" (v "sum" ^: call "freq_block" [ v "buf" +: v "pos"; v "len"; v "counts" ]);
                  Ir.Expr (call "mtf_block" [ v "buf" +: v "pos"; v "len"; v "mtfbuf"; v "mtf" ]);
                  set "rlen" (call "rle_block" [ v "mtfbuf"; v "len"; v "rle" ]);
                  set "k" (i 0);
                  while_ (v "k" <: v "rlen")
                    [
                      set "sum" ((v "sum" *: i 31) +: load8 (v "rle" +: v "k"));
                      set "k" (v "k" +: i 1);
                    ];
                  set "pos" (v "pos" +: v "len");
                ];
              ret (v "sum" &: i 0xffffff);
            ]);
      ];
  }

let input ~size = Inputs.bytes ~seed:256 size
let default_size = 1536
let name = "bzip2"
let description = "frequency sort + move-to-front + run-length coding"
