(** The Apache-stand-in web server (paper §6.1, Figure 6).

    A static-file HTTP server: accept, parse the request line, open the
    file under the document root (policy H2 sink), send a header built
    with the instrumented [sprintf], and ship the body with [sendfile]
    (kernel copy — as for real Apache, the bytes never cross user
    space).  Instrumented CPU work is confined to request parsing, so
    the overhead is diluted by I/O time, most at small file sizes. *)

val program : Ir.program

val document_root : string

val policy : Shift_policy.Policy.t
(** Network tainted, H2 over the document root, low-level policies. *)

val io_cost : Shift_os.World.io_cost
(** Network-server cost model: expensive kernel crossings. *)

val rtt_cycles : int
(** Client round-trip latency added to per-request latency. *)

val setup : file_size:int -> requests:int -> Shift_os.World.t -> unit
(** Install a static file of [file_size] bytes and queue [requests]
    GETs for it. *)

val request_path : file_size:int -> string
