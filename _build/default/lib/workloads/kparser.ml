(* "parser" kernel: word tokenisation, dictionary hashing with open
   addressing and suffix-rule classification — 197.parser's profile of
   byte scanning plus hash-table probing.  Word hashes are tainted; the
   probe index is masked to the table size and untainted (§3.3.2). *)

open Build
open Build.Infix

let table_size = 1024

let program =
  {
    Ir.globals = [];
    funcs =
      [
        (* djb2 over [len] bytes *)
        func "hash_word" ~params:[ "s"; "len" ] ~locals:[ scalar "h"; scalar "k" ]
          [
            set "h" (i 5381);
            set "k" (i 0);
            while_ (v "k" <: v "len")
              [
                set "h" ((v "h" *: i 33) ^: load8 (v "s" +: v "k"));
                set "k" (v "k" +: i 1);
              ];
            ret (v "h" &: i64 0x7fffffffL);
          ];
        (* insert-or-count: returns 1 for a new word, 0 for a repeat *)
        func "dict_add" ~params:[ "table"; "h" ] ~locals:[ scalar "idx"; scalar "cur" ]
          [
            set "idx" (call "untaint" [ v "h" %: i table_size ]);
            while_ (i 1)
              [
                set "cur" (load64 (v "table" +: (v "idx" *: i 8)));
                when_ (v "cur" ==: i 0)
                  [ store64 (v "table" +: (v "idx" *: i 8)) (v "h" |: i 1); ret (i 1) ];
                when_ (v "cur" ==: (v "h" |: i 1)) [ ret (i 0) ];
                set "idx" ((v "idx" +: i 1) %: i table_size);
              ];
            ret (i 0);
          ];
        (* crude part-of-speech guess from suffixes *)
        func "classify" ~params:[ "s"; "len" ] ~locals:[]
          [
            when_
              ((v "len" >: i 3)
              &&: (load8 (v "s" +: v "len" -: i 3) ==: i (Char.code 'i'))
              &&: (load8 (v "s" +: v "len" -: i 2) ==: i (Char.code 'n'))
              &&: (load8 (v "s" +: v "len" -: i 1) ==: i (Char.code 'g')))
              [ ret (i 1) (* gerund *) ];
            when_
              ((v "len" >: i 2)
              &&: (load8 (v "s" +: v "len" -: i 2) ==: i (Char.code 'e'))
              &&: (load8 (v "s" +: v "len" -: i 1) ==: i (Char.code 'd')))
              [ ret (i 2) (* past tense *) ];
            when_ ((v "len" >: i 1) &&: (load8 (v "s" +: v "len" -: i 1) ==: i (Char.code 's')))
              [ ret (i 3) (* plural *) ];
            ret (i 0);
          ];
        func "is_letter" ~params:[ "ch" ] ~locals:[]
          [ ret ((v "ch" >=: i (Char.code 'a')) &&: (v "ch" <=: i (Char.code 'z'))) ];
        func "main" ~params:[]
          ~locals:
            [ scalar "fd"; scalar "buf"; scalar "n"; scalar "table"; scalar "pos";
              scalar "start"; scalar "len"; scalar "h"; scalar "fresh"; scalar "classes";
              scalar "uniques"; scalar "words" ]
          (Kernel_util.read_input ~bufsize:65536
          @ [
              set "table" (call "malloc" [ i (table_size * 8) ]);
              set "pos" (i 0);
              set "uniques" (i 0);
              set "words" (i 0);
              set "classes" (i 0);
              while_ (v "pos" <: v "n")
                [
                  (* skip separators *)
                  while_
                    ((v "pos" <: v "n")
                    &&: (call "is_letter" [ load8 (v "buf" +: v "pos") ] ==: i 0))
                    [ set "pos" (v "pos" +: i 1) ];
                  when_ (v "pos" >=: v "n") [ Ir.Break ];
                  set "start" (v "pos");
                  while_
                    ((v "pos" <: v "n")
                    &&: (call "is_letter" [ load8 (v "buf" +: v "pos") ] <>: i 0))
                    [ set "pos" (v "pos" +: i 1) ];
                  set "len" (v "pos" -: v "start");
                  set "h" (call "hash_word" [ v "buf" +: v "start"; v "len" ]);
                  set "fresh" (call "dict_add" [ v "table"; v "h" ]);
                  set "uniques" (v "uniques" +: v "fresh");
                  set "words" (v "words" +: i 1);
                  set "classes"
                    (v "classes" +: call "classify" [ v "buf" +: v "start"; v "len" ]);
                ];
              ret (((v "uniques" <<: i 20) +: (v "classes" <<: i 8) +: v "words") &: i 0xffffff);
            ]);
      ];
  }

let input ~size = Inputs.text ~seed:197 size
let default_size = 9000
let name = "parser"
let description = "tokenizer + hashed dictionary + suffix classification"
