(** Deterministic input generators for the workload suite.

    Everything is seeded and reproducible: the same size always yields
    the same bytes, so cycle counts are exactly repeatable across runs
    and modes. *)

val bytes : seed:int -> int -> string
(** Pseudo-random bytes (xorshift64 star). *)

val text : seed:int -> int -> string
(** Pseudo-random lowercase words separated by spaces and newlines,
    roughly [n] bytes. *)

val expressions : seed:int -> int -> string
(** Arithmetic expressions ("12+3*(45-6);") totalling roughly [n]
    bytes — the "gcc" kernel's source input. *)

val pairs : seed:int -> count:int -> max:int -> string
(** [count] little-endian u16 pairs with both members < [max] — net
    lists and graph arcs. *)
