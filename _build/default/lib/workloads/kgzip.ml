(* "gzip" kernel: greedy LZ77 compression with a 64-byte sliding window
   and escape-coded literals, the byte-crunching profile of
   164.gzip.  Every input byte is loaded (tainted in the unsafe
   configuration), match candidates are compared byte-by-byte, and the
   compressed stream is stored back — a dense mix of instrumented loads,
   stores and compares. *)

open Build
open Build.Infix

let window = 64
let min_match = 4

let program =
  {
    Ir.globals = [];
    funcs =
      [
        (* longest common prefix of buf[a..] and buf[b..], capped *)
        func "match_len" ~params:[ "buf"; "a"; "b"; "limit" ] ~locals:[ scalar "len" ]
          [
            set "len" (i 0);
            while_
              ((v "len" <: v "limit")
              &&: (load8 (v "buf" +: v "a" +: v "len") ==: load8 (v "buf" +: v "b" +: v "len")))
              [ set "len" (v "len" +: i 1) ];
            ret (v "len");
          ];
        func "compress" ~params:[ "buf"; "n"; "out" ]
          ~locals:
            [ scalar "pos"; scalar "oi"; scalar "cand"; scalar "start"; scalar "len";
              scalar "best_len"; scalar "best_dist"; scalar "cap"; scalar "ch" ]
          [
            set "pos" (i 0);
            set "oi" (i 0);
            while_ (v "pos" <: v "n")
              [
                set "best_len" (i 0);
                set "best_dist" (i 0);
                set "start" (v "pos" -: i window);
                when_ (v "start" <: i 0) [ set "start" (i 0) ];
                set "cap" (v "n" -: v "pos");
                when_ (v "cap" >: i 63) [ set "cap" (i 63) ];
                set "cand" (v "start");
                while_ (v "cand" <: v "pos")
                  [
                    set "len" (call "match_len" [ v "buf"; v "cand"; v "pos"; v "cap" ]);
                    when_ (v "len" >: v "best_len")
                      [ set "best_len" (v "len"); set "best_dist" (v "pos" -: v "cand") ];
                    set "cand" (v "cand" +: i 1);
                  ];
                if_ (v "best_len" >=: i min_match)
                  [
                    store8 (v "out" +: v "oi") (i 255);
                    store8 (v "out" +: v "oi" +: i 1) (v "best_dist");
                    store8 (v "out" +: v "oi" +: i 2) (v "best_len");
                    set "oi" (v "oi" +: i 3);
                    set "pos" (v "pos" +: v "best_len");
                  ]
                  [
                    set "ch" (load8 (v "buf" +: v "pos"));
                    if_ (v "ch" ==: i 255)
                      [
                        store8 (v "out" +: v "oi") (i 255);
                        store8 (v "out" +: v "oi" +: i 1) (i 0);
                        set "oi" (v "oi" +: i 2);
                      ]
                      [ store8 (v "out" +: v "oi") (v "ch"); set "oi" (v "oi" +: i 1) ];
                    set "pos" (v "pos" +: i 1);
                  ];
              ];
            ret (v "oi");
          ];
        func "main" ~params:[]
          ~locals:
            [ scalar "fd"; scalar "buf"; scalar "n"; scalar "out"; scalar "oi";
              scalar "sum"; scalar "k" ]
          (Kernel_util.read_input ~bufsize:65536
          @ [
              set "out" (call "malloc" [ i 131072 ]);
              set "oi" (call "compress" [ v "buf"; v "n"; v "out" ]);
              set "sum" (v "oi");
            ]
          @ for_up "k" (i 0) (v "oi")
              [ set "sum" ((v "sum" *: i 31) +: load8 (v "out" +: v "k")) ]
          @ [ ret (v "sum" &: i 0xffffff) ]);
      ];
  }

let input ~size = Inputs.bytes ~seed:164 size
let default_size = 1600
let name = "gzip"
let description = "greedy LZ77 compressor, 64-byte window"
