(** The guest runtime library: a libc subset written in the IR.

    Because these functions are compiled — and therefore instrumented —
    exactly like application code, taint flows through [strcpy],
    [memcpy], [sprintf] and friends with no special cases, just as the
    paper's instrumented glibc (§4.2; the paper needed wrap functions
    only for assembly routines, which we do not have).

    Functions follow C semantics unless noted:
    - [strncpy dst src n] copies at most [n-1] bytes and always
      NUL-terminates (i.e. BSD [strlcpy]);
    - [malloc] is a bump allocator over [sbrk]; [free] is a no-op;
    - [vformat out fmt args] is the [printf] core.  [args] points to an
      array of u64 slots.  Supported: [%d %s %c %x %%] and the dangerous
      [%n], which stores the output length through a pointer argument —
      the format-string attack vector (Table 2, Bftpd);
    - [sprintf1]/[sprintf2]/[sprintf3] are fixed-arity conveniences over
      [vformat]. *)

val program : Ir.program
(** All runtime functions, to be merged with application code. *)

val names : string list
(** Names of the runtime functions (the "glibc" row of Table 3). *)
