open Build
open Build.Infix

let c ch = i (Char.code ch)

let strlen =
  func "strlen" ~params:[ "s" ] ~locals:[ scalar "n" ]
    [
      set "n" (i 0);
      while_ (load8 (v "s" +: v "n") <>: i 0) [ set "n" (v "n" +: i 1) ];
      ret (v "n");
    ]

let strcpy =
  func "strcpy" ~params:[ "dst"; "src" ] ~locals:[ scalar "n"; scalar "ch" ]
    [
      set "n" (i 0);
      set "ch" (load8 (v "src"));
      while_ (v "ch" <>: i 0)
        [
          store8 (v "dst" +: v "n") (v "ch");
          set "n" (v "n" +: i 1);
          set "ch" (load8 (v "src" +: v "n"));
        ];
      store8 (v "dst" +: v "n") (i 0);
      ret (v "dst");
    ]

let strncpy =
  func "strncpy" ~params:[ "dst"; "src"; "n" ] ~locals:[ scalar "k"; scalar "ch" ]
    [
      set "k" (i 0);
      while_ (v "k" <: v "n" -: i 1)
        [
          set "ch" (load8 (v "src" +: v "k"));
          when_ (v "ch" ==: i 0) [ Ir.Break ];
          store8 (v "dst" +: v "k") (v "ch");
          set "k" (v "k" +: i 1);
        ];
      store8 (v "dst" +: v "k") (i 0);
      ret (v "dst");
    ]

let strcat =
  func "strcat" ~params:[ "dst"; "src" ] ~locals:[]
    [
      Ir.Expr (call "strcpy" [ v "dst" +: call "strlen" [ v "dst" ]; v "src" ]);
      ret (v "dst");
    ]

let strcmp =
  func "strcmp" ~params:[ "a"; "b" ] ~locals:[ scalar "k"; scalar "ca"; scalar "cb" ]
    [
      set "k" (i 0);
      while_ (i 1)
        [
          set "ca" (load8 (v "a" +: v "k"));
          set "cb" (load8 (v "b" +: v "k"));
          when_ (v "ca" <>: v "cb") [ ret (v "ca" -: v "cb") ];
          when_ (v "ca" ==: i 0) [ ret (i 0) ];
          set "k" (v "k" +: i 1);
        ];
      ret (i 0);
    ]

let strncmp =
  func "strncmp" ~params:[ "a"; "b"; "n" ]
    ~locals:[ scalar "k"; scalar "ca"; scalar "cb" ]
    [
      set "k" (i 0);
      while_ (v "k" <: v "n")
        [
          set "ca" (load8 (v "a" +: v "k"));
          set "cb" (load8 (v "b" +: v "k"));
          when_ (v "ca" <>: v "cb") [ ret (v "ca" -: v "cb") ];
          when_ (v "ca" ==: i 0) [ ret (i 0) ];
          set "k" (v "k" +: i 1);
        ];
      ret (i 0);
    ]

let tolower =
  func "tolower" ~params:[ "ch" ] ~locals:[]
    [
      when_ ((v "ch" >=: c 'A') &&: (v "ch" <=: c 'Z')) [ ret (v "ch" +: i 32) ];
      ret (v "ch");
    ]

let strcasecmp =
  func "strcasecmp" ~params:[ "a"; "b" ]
    ~locals:[ scalar "k"; scalar "ca"; scalar "cb" ]
    [
      set "k" (i 0);
      while_ (i 1)
        [
          set "ca" (call "tolower" [ load8 (v "a" +: v "k") ]);
          set "cb" (call "tolower" [ load8 (v "b" +: v "k") ]);
          when_ (v "ca" <>: v "cb") [ ret (v "ca" -: v "cb") ];
          when_ (v "ca" ==: i 0) [ ret (i 0) ];
          set "k" (v "k" +: i 1);
        ];
      ret (i 0);
    ]

let strchr =
  func "strchr" ~params:[ "s"; "ch" ] ~locals:[ scalar "k"; scalar "cur" ]
    [
      set "k" (i 0);
      while_ (i 1)
        [
          set "cur" (load8 (v "s" +: v "k"));
          when_ (v "cur" ==: v "ch") [ ret (v "s" +: v "k") ];
          when_ (v "cur" ==: i 0) [ ret (i 0) ];
          set "k" (v "k" +: i 1);
        ];
      ret (i 0);
    ]

let strstr =
  func "strstr" ~params:[ "hay"; "needle" ] ~locals:[ scalar "k"; scalar "j" ]
    [
      when_ (load8 (v "needle") ==: i 0) [ ret (v "hay") ];
      set "k" (i 0);
      while_ (load8 (v "hay" +: v "k") <>: i 0)
        [
          set "j" (i 0);
          while_
            ((load8 (v "needle" +: v "j") <>: i 0)
            &&: (load8 (v "hay" +: v "k" +: v "j") ==: load8 (v "needle" +: v "j")))
            [ set "j" (v "j" +: i 1) ];
          when_ (load8 (v "needle" +: v "j") ==: i 0) [ ret (v "hay" +: v "k") ];
          set "k" (v "k" +: i 1);
        ];
      ret (i 0);
    ]

let memcpy =
  func "memcpy" ~params:[ "dst"; "src"; "n" ] ~locals:[ scalar "k" ]
    (for_up "k" (i 0) (v "n") [ store8 (v "dst" +: v "k") (load8 (v "src" +: v "k")) ]
    @ [ ret (v "dst") ])

let memset =
  func "memset" ~params:[ "dst"; "ch"; "n" ] ~locals:[ scalar "k" ]
    (for_up "k" (i 0) (v "n") [ store8 (v "dst" +: v "k") (v "ch") ]
    @ [ ret (v "dst") ])

let memcmp =
  func "memcmp" ~params:[ "a"; "b"; "n" ] ~locals:[ scalar "k"; scalar "d" ]
    [
      set "k" (i 0);
      while_ (v "k" <: v "n")
        [
          set "d" (load8 (v "a" +: v "k") -: load8 (v "b" +: v "k"));
          when_ (v "d" <>: i 0) [ ret (v "d") ];
          set "k" (v "k" +: i 1);
        ];
      ret (i 0);
    ]

let memchr =
  func "memchr" ~params:[ "p"; "ch"; "n" ] ~locals:[ scalar "k" ]
    [
      set "k" (i 0);
      while_ (v "k" <: v "n")
        [
          when_ (load8 (v "p" +: v "k") ==: v "ch") [ ret (v "p" +: v "k") ];
          set "k" (v "k" +: i 1);
        ];
      ret (i 0);
    ]

let atoi =
  func "atoi" ~params:[ "s" ]
    ~locals:[ scalar "k"; scalar "neg"; scalar "acc"; scalar "ch" ]
    [
      set "k" (i 0);
      while_ (load8 (v "s" +: v "k") ==: c ' ') [ set "k" (v "k" +: i 1) ];
      set "neg" (i 0);
      if_
        (load8 (v "s" +: v "k") ==: c '-')
        [ set "neg" (i 1); set "k" (v "k" +: i 1) ]
        [ when_ (load8 (v "s" +: v "k") ==: c '+') [ set "k" (v "k" +: i 1) ] ];
      set "acc" (i 0);
      set "ch" (load8 (v "s" +: v "k"));
      while_ ((v "ch" >=: c '0') &&: (v "ch" <=: c '9'))
        [
          set "acc" ((v "acc" *: i 10) +: (v "ch" -: c '0'));
          set "k" (v "k" +: i 1);
          set "ch" (load8 (v "s" +: v "k"));
        ];
      when_ (v "neg" <>: i 0) [ set "acc" (i 0 -: v "acc") ];
      ret (v "acc");
    ]

(* decimal rendering; returns the number of bytes written (excluding the
   NUL terminator) *)
let itoa =
  func "itoa" ~params:[ "val"; "buf" ]
    ~locals:[ array "tmp" 32; scalar "n"; scalar "j"; scalar "neg"; scalar "x" ]
    [
      set "x" (v "val");
      when_ (v "x" ==: i 0)
        [ store8 (v "buf") (c '0'); store8 (v "buf" +: i 1) (i 0); ret (i 1) ];
      set "neg" (i 0);
      when_ (v "x" <: i 0) [ set "neg" (i 1); set "x" (i 0 -: v "x") ];
      set "n" (i 0);
      while_ (v "x" >: i 0)
        [
          store8 (v "tmp" +: v "n") (c '0' +: (v "x" %: i 10));
          set "x" (v "x" /: i 10);
          set "n" (v "n" +: i 1);
        ];
      set "j" (i 0);
      when_ (v "neg" <>: i 0) [ store8 (v "buf") (c '-'); set "j" (i 1) ];
      set "x" (i 0);
      while_ (v "x" <: v "n")
        [
          store8 (v "buf" +: v "j" +: v "x") (load8 (v "tmp" +: v "n" -: i 1 -: v "x"));
          set "x" (v "x" +: i 1);
        ];
      store8 (v "buf" +: v "j" +: v "n") (i 0);
      ret (v "j" +: v "n");
    ]

(* hexadecimal rendering of an unsigned value *)
let utox =
  func "utox" ~params:[ "val"; "buf" ]
    ~locals:[ array "tmp" 32; scalar "n"; scalar "x"; scalar "d"; scalar "k" ]
    [
      set "x" (v "val");
      when_ (v "x" ==: i 0)
        [ store8 (v "buf") (c '0'); store8 (v "buf" +: i 1) (i 0); ret (i 1) ];
      set "n" (i 0);
      while_ (v "x" <>: i 0)
        [
          set "d" (v "x" &: i 15);
          if_ (v "d" <: i 10)
            [ store8 (v "tmp" +: v "n") (c '0' +: v "d") ]
            [ store8 (v "tmp" +: v "n") (c 'a' +: v "d" -: i 10) ];
          set "x" (v "x" >>: i 4);
          set "n" (v "n" +: i 1);
        ];
      set "k" (i 0);
      while_ (v "k" <: v "n")
        [
          store8 (v "buf" +: v "k") (load8 (v "tmp" +: v "n" -: i 1 -: v "k"));
          set "k" (v "k" +: i 1);
        ];
      store8 (v "buf" +: v "n") (i 0);
      ret (v "n");
    ]

let malloc =
  func "malloc" ~params:[ "n" ] ~locals:[]
    [ ret (call "sys_sbrk" [ (v "n" +: i 7) &: Ir.Unop (Ir.Bnot, i 7) ]) ]

let free = func "free" ~params:[ "p" ] ~locals:[] [ ret0 ]

let print =
  func "print" ~params:[ "s" ] ~locals:[]
    [ Ir.Expr (call "sys_write" [ i 1; v "s"; call "strlen" [ v "s" ] ]); ret0 ]

let println =
  func "println" ~params:[ "s" ] ~locals:[]
    [
      ecall "print" [ v "s" ];
      Ir.Expr (call "sys_write" [ i 1; str "\n"; i 1 ]);
      ret0;
    ]

let print_int =
  func "print_int" ~params:[ "val" ] ~locals:[ array "buf" 32; scalar "n" ]
    [
      set "n" (call "itoa" [ v "val"; v "buf" ]);
      Ir.Expr (call "sys_write" [ i 1; v "buf"; v "n" ]);
      ret0;
    ]

(* printf core; see the interface comment.  %n is the format-string
   attack vector: it stores through a pointer taken from the argument
   array. *)
let vformat =
  func "vformat" ~params:[ "out"; "fmt"; "args" ]
    ~locals:[ scalar "oi"; scalar "fi"; scalar "ai"; scalar "ch"; scalar "a"; scalar "len" ]
    [
      set "oi" (i 0);
      set "fi" (i 0);
      set "ai" (i 0);
      set "ch" (load8 (v "fmt"));
      while_ (v "ch" <>: i 0)
        [
          if_ (v "ch" ==: c '%')
            [
              set "fi" (v "fi" +: i 1);
              set "ch" (load8 (v "fmt" +: v "fi"));
              if_ (v "ch" ==: c 'd')
                [
                  set "a" (load64 (v "args" +: (v "ai" *: i 8)));
                  set "ai" (v "ai" +: i 1);
                  set "oi" (v "oi" +: call "itoa" [ v "a"; v "out" +: v "oi" ]);
                ]
                [
                  if_ (v "ch" ==: c 's')
                    [
                      set "a" (load64 (v "args" +: (v "ai" *: i 8)));
                      set "ai" (v "ai" +: i 1);
                      set "len" (call "strlen" [ v "a" ]);
                      Ir.Expr (call "memcpy" [ v "out" +: v "oi"; v "a"; v "len" ]);
                      set "oi" (v "oi" +: v "len");
                    ]
                    [
                      if_ (v "ch" ==: c 'x')
                        [
                          set "a" (load64 (v "args" +: (v "ai" *: i 8)));
                          set "ai" (v "ai" +: i 1);
                          set "oi" (v "oi" +: call "utox" [ v "a"; v "out" +: v "oi" ]);
                        ]
                        [
                          if_ (v "ch" ==: c 'c')
                            [
                              set "a" (load64 (v "args" +: (v "ai" *: i 8)));
                              set "ai" (v "ai" +: i 1);
                              store8 (v "out" +: v "oi") (v "a");
                              set "oi" (v "oi" +: i 1);
                            ]
                            [
                              if_ (v "ch" ==: c 'n')
                                [
                                  set "a" (load64 (v "args" +: (v "ai" *: i 8)));
                                  set "ai" (v "ai" +: i 1);
                                  store64 (v "a") (v "oi");
                                ]
                                [
                                  store8 (v "out" +: v "oi") (v "ch");
                                  set "oi" (v "oi" +: i 1);
                                ];
                            ];
                        ];
                    ];
                ];
            ]
            [ store8 (v "out" +: v "oi") (v "ch"); set "oi" (v "oi" +: i 1) ];
          set "fi" (v "fi" +: i 1);
          set "ch" (load8 (v "fmt" +: v "fi"));
        ];
      store8 (v "out" +: v "oi") (i 0);
      ret (v "oi");
    ]

let sprintf1 =
  func "sprintf1" ~params:[ "out"; "fmt"; "a0" ] ~locals:[ array "args" 8 ]
    [ store64 (v "args") (v "a0"); ret (call "vformat" [ v "out"; v "fmt"; v "args" ]) ]

let sprintf2 =
  func "sprintf2" ~params:[ "out"; "fmt"; "a0"; "a1" ] ~locals:[ array "args" 16 ]
    [
      store64 (v "args") (v "a0");
      store64 (v "args" +: i 8) (v "a1");
      ret (call "vformat" [ v "out"; v "fmt"; v "args" ]);
    ]

let sprintf3 =
  func "sprintf3" ~params:[ "out"; "fmt"; "a0"; "a1"; "a2" ] ~locals:[ array "args" 24 ]
    [
      store64 (v "args") (v "a0");
      store64 (v "args" +: i 8) (v "a1");
      store64 (v "args" +: i 16) (v "a2");
      ret (call "vformat" [ v "out"; v "fmt"; v "args" ]);
    ]

(* A ticket lock over a 16-byte structure: [next] at +0, [serving] at
   +8.  fetchadd is atomic across harts, so acquisition order is FIFO
   and exactly one hart holds the lock. *)
let mutex_lock =
  func "mutex_lock" ~params:[ "m" ] ~locals:[ scalar "ticket" ]
    [
      set "ticket" (call "fetchadd" [ v "m"; i 1 ]);
      while_ (load64 (v "m" +: i 8) <>: v "ticket") [];
      ret0;
    ]

let mutex_unlock =
  func "mutex_unlock" ~params:[ "m" ] ~locals:[]
    [
      store64 (v "m" +: i 8) (load64 (v "m" +: i 8) +: i 1);
      ret0;
    ]

let funcs =
  [
    strlen; strcpy; strncpy; strcat; strcmp; strncmp; tolower; strcasecmp;
    strchr; strstr; memcpy; memset; memcmp; memchr; atoi; itoa; utox; malloc;
    free; print; println; print_int; vformat; sprintf1; sprintf2; sprintf3;
    mutex_lock; mutex_unlock;
  ]

let program = { Ir.globals = []; funcs }
let names = List.map (fun (f : Ir.func) -> f.fname) funcs
