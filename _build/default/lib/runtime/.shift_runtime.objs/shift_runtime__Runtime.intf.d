lib/runtime/runtime.mli: Ir
