lib/runtime/runtime.ml: Build Char Ir List
