(** Security-policy configuration (paper Table 1).

    SHIFT decouples the taint-tracking mechanism from policy: taint
    sources and sinks are configured here in software while the hardware
    (NaT propagation) does the tracking.  High-level policies are
    checked at the OS boundary; low-level policies are the meaning
    assigned to NaT-consumption faults.

    {ul
    {- H1: tainted data cannot be an absolute file path}
    {- H2: tainted data cannot traverse out of the document root}
    {- H3: tainted data cannot contribute SQL meta-characters}
    {- H4: tainted data cannot contribute shell meta-characters}
    {- H5: no tainted <script> tag in HTML output}
    {- L1: tainted data cannot be a load address}
    {- L2: tainted data cannot be a store address}
    {- L3: tainted data cannot reach special registers / control flow}} *)

type action =
  | Halt_program  (** raise {!Alert.Violation} and stop the guest *)
  | Log_only      (** record the alert and let the guest continue *)

type t = {
  taint_network : bool;  (** network input (recv) is a taint source *)
  taint_files : bool;    (** file reads are taint sources by default *)
  h1 : bool;
  h2 : string option;    (** document root; [Some root] enables H2 *)
  h3 : bool;
  h4 : bool;
  h5 : bool;
  low_level : bool;      (** interpret NaT-consumption faults as L1-L3 *)
  action : action;
}

val default : t
(** Low-level policies on, network taint source, everything else off. *)

val all_on : document_root:string -> t

val describe : t -> string list
(** One line per enabled policy, for reports. *)

(** {1 Sink checks}

    Each check receives the string a sink consumed and the positions of
    its tainted bytes, and returns the alert to raise, if any. *)

val check_open : t -> path:string -> tainted:int list -> Alert.t option
val check_system : t -> cmd:string -> tainted:int list -> Alert.t option
val check_sql : t -> query:string -> tainted:int list -> Alert.t option
val check_html : t -> html:string -> tainted:int list -> Alert.t option

val alert_of_fault : string -> Alert.t option
(** Map a NaT-consumption fault description (one of the
    {!Shift_machine.Fault.nat_use} strings) to its L-policy alert.
    Returns [None] for non-taint faults. *)

val normalize_path : string -> string
(** Lexical path normalisation (resolves [.] and [..]), exposed for
    tests. *)
