type action = Halt_program | Log_only

type t = {
  taint_network : bool;
  taint_files : bool;
  h1 : bool;
  h2 : string option;
  h3 : bool;
  h4 : bool;
  h5 : bool;
  low_level : bool;
  action : action;
}

let default =
  {
    taint_network = true;
    taint_files = false;
    h1 = false;
    h2 = None;
    h3 = false;
    h4 = false;
    h5 = false;
    low_level = true;
    action = Halt_program;
  }

let all_on ~document_root =
  {
    taint_network = true;
    taint_files = true;
    h1 = true;
    h2 = Some document_root;
    h3 = true;
    h4 = true;
    h5 = true;
    low_level = true;
    action = Halt_program;
  }

let describe t =
  List.filter_map Fun.id
    [
      (if t.taint_network then Some "source: network input is tainted" else None);
      (if t.taint_files then Some "source: file reads are tainted" else None);
      (if t.h1 then Some "H1: no tainted absolute file path" else None);
      Option.map
        (fun root -> Printf.sprintf "H2: no tainted traversal out of %S" root)
        t.h2;
      (if t.h3 then Some "H3: no tainted SQL meta-characters" else None);
      (if t.h4 then Some "H4: no tainted shell meta-characters" else None);
      (if t.h5 then Some "H5: no tainted <script> tag in HTML output" else None);
      (if t.low_level then Some "L1-L3: NaT-consumption faults are violations" else None);
    ]

let normalize_path p =
  let absolute = String.length p > 0 && p.[0] = '/' in
  let parts = String.split_on_char '/' p in
  let stack =
    List.fold_left
      (fun acc part ->
        match part with
        | "" | "." -> acc
        | ".." -> (
            match acc with
            | _ :: rest when acc <> [] && List.hd acc <> ".." -> rest
            | _ -> if absolute then acc else ".." :: acc)
        | _ -> part :: acc)
      [] parts
  in
  let body = String.concat "/" (List.rev stack) in
  if absolute then "/" ^ body else if body = "" then "." else body

let check_open t ~path ~tainted =
  if tainted = [] then None
  else
    let signature =
      match tainted with
      | p :: _ -> Alert.extract_signature path ~tainted ~around:p
      | [] -> None
    in
    let absolute = String.length path > 0 && path.[0] = '/' in
    if t.h1 && absolute then
      Some
        (Alert.make ?signature ~policy:"H1"
           (Printf.sprintf "tainted data used as absolute file path %S" path))
    else
      match t.h2 with
      | None -> None
      | Some root ->
          let full = if absolute then path else root ^ "/" ^ path in
          let norm = normalize_path full in
          let root_norm = normalize_path root in
          let escapes =
            not
              (String.length norm >= String.length root_norm
              && String.sub norm 0 (String.length root_norm) = root_norm)
          in
          if escapes then
            Some
              (Alert.make ?signature ~policy:"H2"
                 (Printf.sprintf "tainted file path %S escapes document root %S" path root))
          else None

let shell_meta = [ ';'; '|'; '&'; '`'; '$'; '<'; '>' ]
let sql_meta = [ '\''; '"'; ';' ]

let tainted_meta metas s tainted =
  List.find_opt (fun i -> i < String.length s && List.mem s.[i] metas) tainted

let check_system t ~cmd ~tainted =
  if not t.h4 then None
  else
    match tainted_meta shell_meta cmd tainted with
    | Some i ->
        Some
          (Alert.make
             ?signature:(Alert.extract_signature cmd ~tainted ~around:i)
             ~policy:"H4"
             (Printf.sprintf "tainted shell meta-character %C at %d in system(%S)" cmd.[i] i cmd))
    | None -> None

(* "--" comment injection counts even though '-' alone is not a meta
   character *)
let tainted_sql_comment q tainted =
  List.find_opt
    (fun i -> i + 1 < String.length q && q.[i] = '-' && q.[i + 1] = '-')
    tainted

let check_sql t ~query ~tainted =
  if not t.h3 then None
  else
    match tainted_meta sql_meta query tainted with
    | Some i ->
        Some
          (Alert.make
             ?signature:(Alert.extract_signature query ~tainted ~around:i)
             ~policy:"H3"
             (Printf.sprintf "tainted SQL meta-character %C at %d in query %S" query.[i] i query))
    | None -> (
        match tainted_sql_comment query tainted with
        | Some i ->
            Some
              (Alert.make
                 ?signature:(Alert.extract_signature query ~tainted ~around:i)
                 ~policy:"H3"
                 (Printf.sprintf "tainted SQL comment at %d in query %S" i query))
        | None -> None)

let lowercase_contains_at s sub i =
  i + String.length sub <= String.length s
  && String.lowercase_ascii (String.sub s i (String.length sub)) = sub

let check_html t ~html ~tainted =
  if not t.h5 then None
  else
    let tag = "<script" in
    let tainted_set = List.sort_uniq compare tainted in
    let rec scan i =
      if i + String.length tag > String.length html then None
      else if
        lowercase_contains_at html tag i
        && List.exists (fun p -> p >= i && p < i + String.length tag) tainted_set
      then
        let around =
          List.find_opt (fun p -> p >= i && p < i + String.length tag) tainted_set
        in
        Some
          (Alert.make
             ?signature:
               (Option.bind around (fun p ->
                    Alert.extract_signature html ~tainted ~around:p))
             ~policy:"H5"
             (Printf.sprintf "tainted <script> tag at offset %d in HTML output" i))
      else scan (i + 1)
    in
    scan 0

let alert_of_fault use =
  match use with
  | "load address" ->
      Some (Alert.make ~policy:"L1" "tainted data used as a load address")
  | "store address" ->
      Some (Alert.make ~policy:"L2" "tainted data used as a store address")
  | "store value" ->
      Some (Alert.make ~policy:"L2" "tainted data stored through a non-spill store")
  | "branch target" | "call target" ->
      Some (Alert.make ~policy:"L3" "tainted data moved into a control-transfer register")
  | _ -> None
