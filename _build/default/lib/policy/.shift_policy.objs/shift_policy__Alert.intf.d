lib/policy/alert.mli: Format
