lib/policy/policy.ml: Alert Fun List Option Printf String
