lib/policy/policy.mli: Alert
