lib/policy/alert.ml: Array Format List Printf String
