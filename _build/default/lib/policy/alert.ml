type t = { policy : string; message : string; signature : string option }

exception Violation of t

let make ?signature ~policy message = { policy; message; signature }

let to_string a =
  match a.signature with
  | None -> Printf.sprintf "[%s] %s" a.policy a.message
  | Some s -> Printf.sprintf "[%s] %s (signature: %S)" a.policy a.message s

let pp ppf a = Format.pp_print_string ppf (to_string a)

let extract_signature s ~tainted ~around =
  let n = String.length s in
  if around < 0 || around >= n then None
  else begin
    let is_tainted = Array.make n false in
    List.iter (fun p -> if p >= 0 && p < n then is_tainted.(p) <- true) tainted;
    if not is_tainted.(around) then None
    else begin
      let lo = ref around and hi = ref around in
      while !lo > 0 && is_tainted.(!lo - 1) do
        decr lo
      done;
      while !hi < n - 1 && is_tainted.(!hi + 1) do
        incr hi
      done;
      Some (String.sub s !lo (!hi - !lo + 1))
    end
  end
