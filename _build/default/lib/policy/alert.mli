(** Security alerts raised when a policy detects misuse of tainted
    data. *)

type t = {
  policy : string;   (** e.g. "H1", "L2" *)
  message : string;  (** human-readable description *)
  signature : string option;
      (** For sink alerts: the maximal tainted fragment around the
          violation — the attacker-controlled bytes that made the sink
          dangerous.  This is the paper's intrusion-prevention-signature
          feedback (§1): a filter matching this fragment blocks the
          attack class at the input. *)
}

exception Violation of t
(** Raised out of the running guest when the configured action is to
    stop the program. *)

val make : ?signature:string -> policy:string -> string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val extract_signature : string -> tainted:int list -> around:int -> string option
(** The maximal run of tainted bytes containing (or adjacent to)
    position [around] in the sink string — [None] if [around] is not
    tainted. *)
