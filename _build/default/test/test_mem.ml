open Shift_mem

let tc = Util.tc

let prop name ?(count = 300) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* a valid region-1 address with room above the null guard *)
let arb_addr =
  QCheck.map
    (fun n -> Addr.in_region 1 (Int64.of_int (4096 + abs n mod 1_000_000)))
    QCheck.int

let addr_tests =
  [
    tc "region extraction" (fun () ->
        Util.check_int "r1" 1 (Addr.region (Addr.in_region 1 0x1234L));
        Util.check_int "r7" 7 (Addr.region (Addr.in_region 7 0x1234L));
        Util.check_int "r0" 0 (Addr.region 0x42L));
    tc "offset extraction" (fun () ->
        Util.check_i64 "off" 0x1234L (Addr.offset (Addr.in_region 3 0x1234L)));
    tc "canonical addresses" (fun () ->
        Util.check_bool "plain" true (Addr.is_canonical (Addr.in_region 1 0x1000L));
        Util.check_bool "unimplemented bit" false
          (Addr.is_canonical (Int64.shift_left 1L 45));
        Util.check_bool "region bits alone ok" true
          (Addr.is_canonical (Addr.in_region 5 0L)));
    tc "null guard" (fun () ->
        Util.check_bool "null" false (Addr.is_valid (Addr.in_region 1 0L));
        Util.check_bool "4095" false (Addr.is_valid (Addr.in_region 1 4095L));
        Util.check_bool "4096" true (Addr.is_valid (Addr.in_region 1 4096L)));
    prop "tag addresses live in region 0" arb_addr (fun a ->
        Addr.region (Addr.tag_addr Granularity.Byte a) = 0
        && Addr.region (Addr.tag_addr Granularity.Word a) = 0);
    prop "tag bit in range" arb_addr (fun a ->
        let b1 = Addr.tag_bit Granularity.Byte a in
        let b2 = Addr.tag_bit Granularity.Word a in
        b1 >= 0 && b1 < 8 && b2 >= 0 && b2 < 8);
    prop "adjacent bytes share a bitmap byte at byte granularity" arb_addr (fun a ->
        let a' = Int64.add (Int64.logand a (Int64.lognot 7L)) 3L in
        Addr.tag_addr Granularity.Byte a' = Addr.tag_addr Granularity.Byte (Int64.add a' 1L))
    ;
    tc "different regions map to disjoint tag bytes" (fun () ->
        let a1 = Addr.in_region 1 0x5000L and a2 = Addr.in_region 2 0x5000L in
        Util.check_bool "disjoint" true
          (Addr.tag_addr Granularity.Byte a1 <> Addr.tag_addr Granularity.Byte a2));
    tc "word mask is a single bit" (fun () ->
        let a = Addr.in_region 1 0x5008L in
        Util.check_i64 "mask" 2L (Addr.tag_mask Granularity.Word ~width:8 a));
    tc "byte mask covers the access width" (fun () ->
        let a = Addr.in_region 1 0x5000L in
        Util.check_i64 "w8" 0xFFL (Addr.tag_mask Granularity.Byte ~width:8 a);
        Util.check_i64 "w1" 0x1L (Addr.tag_mask Granularity.Byte ~width:1 a);
        let a3 = Int64.add a 3L in
        Util.check_i64 "w1@3" 0x8L (Addr.tag_mask Granularity.Byte ~width:1 a3));
  ]

let memory_tests =
  [
    tc "zero-initialised" (fun () ->
        let m = Memory.create () in
        Util.check_i64 "fresh" 0L (Memory.read m (Addr.in_region 1 0x9999L) ~width:8));
    prop "u8 roundtrip" QCheck.(pair arb_addr (int_bound 255)) (fun (a, b) ->
        let m = Memory.create () in
        Memory.write_u8 m a b;
        Memory.read_u8 m a = b);
    prop "u64 little-endian roundtrip" QCheck.(pair arb_addr (map Int64.of_int int))
      (fun (a, value) ->
        let m = Memory.create () in
        Memory.write m a ~width:8 value;
        Memory.read m a ~width:8 = value
        && Memory.read_u8 m a = Int64.to_int (Int64.logand value 0xffL));
    prop "narrow writes zero-extend on read" QCheck.(pair arb_addr (map Int64.of_int int))
      (fun (a, value) ->
        let m = Memory.create () in
        Memory.write m a ~width:2 value;
        Memory.read m a ~width:2 = Int64.logand value 0xffffL);
    tc "cross-page access" (fun () ->
        let m = Memory.create () in
        let a = Addr.in_region 1 (Int64.of_int (8192 - 4)) in
        Memory.write m a ~width:8 0x1122334455667788L;
        Util.check_i64 "crosses" 0x1122334455667788L (Memory.read m a ~width:8));
    tc "cstring roundtrip" (fun () ->
        let m = Memory.create () in
        let a = Addr.in_region 1 0x8000L in
        Memory.write_cstring m a "hello world";
        Util.check_string "read" "hello world" (Memory.read_cstring m a));
    tc "bytes roundtrip" (fun () ->
        let m = Memory.create () in
        let a = Addr.in_region 1 0x8100L in
        Memory.write_bytes m a "\x00\x01\x02binary\xff";
        Util.check_string "read" "\x00\x01\x02binary\xff" (Memory.read_bytes m a ~len:10));
  ]

let taint_tests =
  let gran = [ Granularity.Byte; Granularity.Word ] in
  [
    tc "fresh memory is clean" (fun () ->
        let m = Memory.create () in
        List.iter
          (fun g ->
            Util.check_bool "clean" false (Taint.is_tainted m g (Addr.in_region 1 0x7000L)))
          gran);
    prop "set then get" QCheck.(pair arb_addr (int_bound 64)) (fun (a, len) ->
        let len = len + 1 in
        List.for_all
          (fun g ->
            let m = Memory.create () in
            Taint.set_range m g ~addr:a ~len ~tainted:true;
            Taint.count_tainted m g ~addr:a ~len = len)
          gran);
    prop "set then clear" QCheck.(pair arb_addr (int_bound 64)) (fun (a, len) ->
        let len = len + 1 in
        List.for_all
          (fun g ->
            let m = Memory.create () in
            Taint.set_range m g ~addr:a ~len ~tainted:true;
            Taint.set_range m g ~addr:a ~len ~tainted:false;
            Taint.count_tainted m g ~addr:a ~len = 0)
          gran);
    tc "byte granularity is precise" (fun () ->
        let m = Memory.create () in
        let a = Addr.in_region 1 0x7100L in
        Taint.set_range m Granularity.Byte ~addr:(Int64.add a 1L) ~len:1 ~tainted:true;
        Util.check_bool "left clean" false (Taint.is_tainted m Granularity.Byte a);
        Util.check_bool "hit" true (Taint.is_tainted m Granularity.Byte (Int64.add a 1L));
        Util.check_bool "right clean" false
          (Taint.is_tainted m Granularity.Byte (Int64.add a 2L)));
    tc "word granularity is conservative" (fun () ->
        let m = Memory.create () in
        let a = Addr.in_region 1 0x7200L in
        Taint.set_range m Granularity.Word ~addr:(Int64.add a 1L) ~len:1 ~tainted:true;
        Util.check_bool "whole word tainted" true (Taint.is_tainted m Granularity.Word a);
        Util.check_bool "next word clean" false
          (Taint.is_tainted m Granularity.Word (Int64.add a 8L)));
    tc "first_tainted and positions" (fun () ->
        let m = Memory.create () in
        let a = Addr.in_region 1 0x7300L in
        Taint.set_range m Granularity.Byte ~addr:(Int64.add a 5L) ~len:2 ~tainted:true;
        Util.check_bool "first" true
          (Taint.first_tainted m Granularity.Byte ~addr:a ~len:16 = Some 5);
        Util.check_bool "any" true (Taint.any_tainted m Granularity.Byte ~addr:a ~len:16);
        Memory.write_cstring m a "0123456789";
        Util.check_bool "positions" true
          (Taint.tainted_string_positions m Granularity.Byte a "0123456789" = [ 5; 6 ]));
  ]

let suites =
  [ ("mem.addr", addr_tests); ("mem.memory", memory_tests); ("mem.taint", taint_tests) ]
