(* The tinyc parser: syntax, semantics of parsed programs, and error
   reporting. *)

module Mode = Shift_compiler.Mode

let tc = Util.tc

let run ?mode src = Util.exit_code (Util.run_prog ?mode (Parse.program src))

let expect_error src =
  match Parse.program src with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Parse.Parse_error _ -> ()

let syntax_tests =
  [
    tc "minimal program" (fun () ->
        Util.check_i64 "42" 42L (run "func main() { return 42; }"));
    tc "hex, char and negative literals" (fun () ->
        Util.check_i64 "mix" (Int64.of_int ((0x10 + Char.code 'A') * -1))
          (run "func main() { return -(0x10 + 'A'); }"));
    tc "string escapes" (fun () ->
        Util.check_i64 "len" 4L (run {|func main() { return strlen("a\n\x41\\"); }|}));
    tc "operator precedence" (fun () ->
        Util.check_i64 "1+2*3" 7L (run "func main() { return 1 + 2 * 3; }");
        Util.check_i64 "(1+2)*3" 9L (run "func main() { return (1 + 2) * 3; }");
        Util.check_i64 "shift binds tighter than compare" 1L
          (run "func main() { return 1 << 3 > 7; }");
        Util.check_i64 "and/or" 1L (run "func main() { return 0 && 1 || 1; }"));
    tc "unsigned comparisons" (fun () ->
        Util.check_i64 "-1 <u 0 is false" 0L (run "func main() { return -1 <u 0; }");
        Util.check_i64 "-1 >=u 0 is true" 1L (run "func main() { return -1 >=u 0; }"));
    tc "shift flavours" (fun () ->
        Util.check_i64 "logical" 1L (run "func main() { return (-8 >> 60) == 15; }");
        Util.check_i64 "arithmetic" 1L (run "func main() { return (-8 >>a 2) == -2; }"));
    tc "locals, arrays, loads and stores" (fun () ->
        Util.check_i64 "sum" 30L
          (run
             {|func main() {
                 var a[16];
                 var k;
                 var sum;
                 k = 0;
                 while (k < 4) { u64[a + k * 8] = k * 5; k = k + 1; }
                 sum = 0;
                 k = 0;
                 while (k < 4) { sum = sum + u64[a + k * 8]; k = k + 1; }
                 return sum;
               }|}));
    tc "widths load zero-extended" (fun () ->
        Util.check_i64 "u16" 0xBBAAL
          (run
             {|func main() {
                 var a[8];
                 u64[a] = 0x11223344CCBBAA;
                 return u16[a];
               }|}));
    tc "if / else if / else" (fun () ->
        let prog k =
          Printf.sprintf
            {|func pick(x) {
                if (x == 0) { return 10; }
                else if (x == 1) { return 20; }
                else { return 30; }
              }
              func main() { return pick(%d); }|}
            k
        in
        Util.check_i64 "0" 10L (run (prog 0));
        Util.check_i64 "1" 20L (run (prog 1));
        Util.check_i64 "2" 30L (run (prog 2)));
    tc "break and continue" (fun () ->
        Util.check_i64 "sum of odds below 8" 16L
          (run
             {|func main() {
                 var k; var sum;
                 k = 0; sum = 0;
                 while (1) {
                   k = k + 1;
                   if (k >= 8) { break; }
                   if (k % 2 == 0) { continue; }
                   sum = sum + k;
                 }
                 return sum;
               }|}));
    tc "globals of all three kinds" (fun () ->
        Util.check_i64 "mix" (Int64.of_int (5 + 64 + 7))
          (run
             {|global banner = "hello";
               global gbuf = zeros(1);
               global ws = words(64, -7);
               func main() {
                 u8[gbuf] = 1;
                 return strlen(banner) + u64[ws] - u64[ws + 8] + u8[gbuf] - 1;
               }|}));
    tc "function pointers and indirect calls" (fun () ->
        Util.check_i64 "indirect" 12L
          (run
             {|func triple(x) { return x * 3; }
               func main() { var f; f = &triple; return (f)(4); }|}));
    tc "guard syntax parses and fires" (fun () ->
        let src =
          {|func main() {
              var a[8];
              var x;
              u64[a] = 3;
              sys_taint_set(a, 8, 1);
              x = u64[a];
              guard (x) { return 77; }
              return x;
            }|}
        in
        Util.check_i64 "fired" 77L (run ~mode:Mode.shift_word src);
        Util.check_i64 "silent uninstrumented" 3L (run ~mode:Mode.Uninstrumented src));
    tc "comments are skipped" (fun () ->
        Util.check_i64 "comments" 1L
          (run "// leading\nfunc main() { // inline\n return 1; }"));
  ]

let error_tests =
  [
    tc "missing semicolon" (fun () -> expect_error "func main() { return 1 }");
    tc "integer literal out of range" (fun () ->
        expect_error "func main() { return 99999999999999999999; }");
    tc "unterminated string" (fun () -> expect_error {|func main() { return strlen("x; }|});
    tc "unterminated block" (fun () -> expect_error "func main() { return 1;");
    tc "garbage at top level" (fun () -> expect_error "int main() { return 0; }");
    tc "var after statements" (fun () ->
        expect_error "func main() { return 1; var x; }");
    tc "error carries a line number" (fun () ->
        match Parse.program "func main() {\n\n  return @;\n}" with
        | _ -> Alcotest.fail "expected Parse_error"
        | exception Parse.Parse_error { line; _ } -> Util.check_int "line" 3 line);
    tc "parsed programs still validate" (fun () ->
        (* parse succeeds, the compiler's validator rejects the unknown
           callee *)
        let prog = Parse.program "func main() { return mystery(); }" in
        match Shift.Session.build ~mode:Mode.Uninstrumented prog with
        | _ -> Alcotest.fail "expected a validation error"
        | exception Shift_compiler.Compile.Error _ -> ());
  ]

let suites = [ ("parse.syntax", syntax_tests); ("parse.errors", error_tests) ]
