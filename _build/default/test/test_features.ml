(* Extension features: Guard (§3.3.3), function pointers / Icall,
   untaint (§3.3.2) and the configurable tainted-pointer policy. *)

open Build
open Build.Infix
module Mode = Shift_compiler.Mode
module Instrument = Shift_compiler.Instrument

let tc = Util.tc

(* ---------- Guard ---------- *)

let guard_prog =
  Util.main_returning ~locals:[ array "buf" 16; scalar "x" ]
    [
      store64 (v "buf") (i 7);
      Ir.Expr (call "sys_taint_set" [ v "buf"; i 8; i 1 ]);
      set "x" (load64 (v "buf"));
      guard (v "x") [ ret (i 100) ];
      ret (v "x");
    ]

let guard_clean_prog =
  Util.main_returning ~locals:[ array "buf" 16; scalar "x" ]
    [
      store64 (v "buf") (i 7);
      set "x" (load64 (v "buf"));
      guard (v "x") [ ret (i 100) ];
      ret (v "x");
    ]

let guard_fallthrough_prog =
  Util.main_returning ~locals:[ array "buf" 16; scalar "x"; scalar "log" ]
    [
      store64 (v "buf") (i 7);
      Ir.Expr (call "sys_taint_set" [ v "buf"; i 8; i 1 ]);
      set "x" (load64 (v "buf"));
      set "log" (i 0);
      (* the handler falls through: execution resumes after the guard *)
      guard (v "x") [ set "log" (i 1) ];
      ret ((v "log" *: i 1000) +: v "x");
    ]

let guard_tests =
  [
    tc "guard fires on tainted data under SHIFT" (fun () ->
        Util.check_i64 "handler ran" 100L
          (Util.exit_code (Util.run_prog ~mode:Mode.shift_word guard_prog)));
    tc "guard fires at byte granularity too" (fun () ->
        Util.check_i64 "handler ran" 100L
          (Util.exit_code (Util.run_prog ~mode:Mode.shift_byte guard_prog)));
    tc "guard is silent on clean data" (fun () ->
        Util.check_i64 "no handler" 7L
          (Util.exit_code (Util.run_prog ~mode:Mode.shift_word guard_clean_prog)));
    tc "guard cannot fire without the NaT hardware" (fun () ->
        Util.check_i64 "no tags, no guard" 7L
          (Util.exit_code (Util.run_prog ~mode:Mode.Uninstrumented guard_prog)));
    tc "guard handler can fall through and resume" (fun () ->
        Util.check_i64 "logged and resumed" 1007L
          (Util.exit_code (Util.run_prog ~mode:Mode.shift_word guard_fallthrough_prog)));
    tc "guard inside a loop can break out" (fun () ->
        let prog =
          Util.main_returning ~locals:[ array "buf" 16; scalar "k"; scalar "x" ]
            [
              store64 (v "buf") (i 5);
              Ir.Expr (call "sys_taint_set" [ v "buf"; i 8; i 1 ]);
              set "k" (i 0);
              while_ (v "k" <: i 10)
                [
                  when_ (v "k" ==: i 3) [ set "x" (load64 (v "buf")); guard (v "x") [ Ir.Break ] ];
                  set "k" (v "k" +: i 1);
                ];
              ret (v "k");
            ]
        in
        Util.check_i64 "broke at 3" 3L
          (Util.exit_code (Util.run_prog ~mode:Mode.shift_word prog)));
  ]

(* ---------- function pointers ---------- *)

let dispatch_prog =
  {
    Ir.globals = [];
    funcs =
      [
        func "twice" ~params:[ "x" ] ~locals:[] [ ret (v "x" *: i 2) ];
        func "thrice" ~params:[ "x" ] ~locals:[] [ ret (v "x" *: i 3) ];
        func "main" ~params:[] ~locals:[ scalar "f"; scalar "g" ]
          [
            set "f" (fnptr "twice");
            set "g" (fnptr "thrice");
            ret (icall (v "f") [ i 10 ] +: icall (v "g") [ i 10 ]);
          ];
      ];
  }

let fnptr_tests =
  List.map
    (fun mode ->
      tc
        (Printf.sprintf "indirect calls dispatch correctly (%s)" (Mode.to_string mode))
        (fun () ->
          Util.check_i64 "20+30" 50L (Util.exit_code (Util.run_prog ~mode dispatch_prog))))
    Util.all_modes
  @ [
      tc "function pointers stored to memory survive" (fun () ->
          let prog =
            {
              Ir.globals = [];
              funcs =
                [
                  func "inc" ~params:[ "x" ] ~locals:[] [ ret (v "x" +: i 1) ];
                  func "main" ~params:[] ~locals:[ array "slot" 8 ]
                    [
                      store64 (v "slot") (fnptr "inc");
                      ret (icall (load64 (v "slot")) [ i 41 ]);
                    ];
                ];
            }
          in
          Util.check_i64 "through memory" 42L
            (Util.exit_code (Util.run_prog ~mode:Mode.shift_word prog)));
      tc "unknown function pointer is rejected at validation" (fun () ->
          let prog =
            Util.main_returning [ ret (icall (fnptr "nonexistent") []) ]
          in
          match Shift.Session.build ~mode:Mode.Uninstrumented prog with
          | _ -> Alcotest.fail "expected a validation error"
          | exception Shift_compiler.Compile.Error _ -> ());
    ]

(* ---------- untaint ---------- *)

let untaint_tests =
  List.map
    (fun mode ->
      tc
        (Printf.sprintf "untaint clears the value tag (%s)" (Mode.to_string mode))
        (fun () ->
          let prog =
            Util.main_returning ~locals:[ array "a" 8; array "b" 8; scalar "x" ]
              [
                store64 (v "a") (i 9);
                Ir.Expr (call "sys_taint_set" [ v "a"; i 8; i 1 ]);
                set "x" (call "untaint" [ load64 (v "a") ]);
                store64 (v "b") (v "x");
                ret ((call "sys_taint_chk" [ v "b"; i 8 ] *: i 100) +: v "x");
              ]
          in
          Util.check_i64 "clean, value preserved" 9L
            (Util.exit_code (Util.run_prog ~mode prog))))
    Util.all_modes

(* ---------- pointer policy ---------- *)

let with_pointer_policy p f =
  let old = !Instrument.pointer_policy in
  Instrument.pointer_policy := p;
  Fun.protect ~finally:(fun () -> Instrument.pointer_policy := old) f

(* reads a value through a tainted pointer, then feeds the result to a
   string sink *)
let tainted_ptr_prog =
  Util.main_returning ~locals:[ array "slotbuf" 16; array "data" 16; scalar "p"; scalar "x" ]
    [
      Ir.Expr (call "strcpy" [ v "data"; str "payload" ]);
      store64 (v "slotbuf") (v "data");
      Ir.Expr (call "sys_taint_set" [ v "slotbuf"; i 8; i 1 ]);
      set "p" (load64 (v "slotbuf"));
      set "x" (load8 (v "p"));
      store8 (v "data" +: i 8) (v "x");
      ret ((call "sys_taint_chk" [ v "data" +: i 8; i 1 ] *: i 1000) +: v "x");
    ]

let pointer_policy_tests =
  [
    tc "default policy faults on a tainted pointer" (fun () ->
        match (Util.run_prog ~mode:Mode.shift_word tainted_ptr_prog).outcome with
        | Shift.Report.Alert a ->
            Alcotest.(check string) "L1" "L1" a.Shift_policy.Alert.policy
        | o -> Alcotest.failf "expected L1, got %a" Shift.Report.pp_outcome o);
    tc "propagate policy dereferences and taints the result" (fun () ->
        with_pointer_policy Instrument.Propagate_pointer_taint (fun () ->
            (* 1000 * (stored byte tainted) + 'p' *)
            Util.check_i64 "value read, result tainted"
              (Int64.of_int (1000 + Char.code 'p'))
              (Util.exit_code (Util.run_prog ~mode:Mode.shift_word tainted_ptr_prog))));
    tc "propagate policy works at byte granularity" (fun () ->
        with_pointer_policy Instrument.Propagate_pointer_taint (fun () ->
            Util.check_i64 "byte too"
              (Int64.of_int (1000 + Char.code 'p'))
              (Util.exit_code (Util.run_prog ~mode:Mode.shift_byte tainted_ptr_prog))));
    tc "propagate policy with the enhanced ISA" (fun () ->
        with_pointer_policy Instrument.Propagate_pointer_taint (fun () ->
            Util.check_i64 "enh"
              (Int64.of_int (1000 + Char.code 'p'))
              (Util.exit_code
                 (Util.run_prog
                    ~mode:(Mode.Shift { granularity = Shift_mem.Granularity.Word; enh = Mode.enh_both })
                    tainted_ptr_prog))));
    tc "propagate: store through tainted pointer taints the location" (fun () ->
        let prog =
          Util.main_returning ~locals:[ array "slotbuf" 16; array "data" 16; scalar "p" ]
            [
              store64 (v "slotbuf") (v "data");
              Ir.Expr (call "sys_taint_set" [ v "slotbuf"; i 8; i 1 ]);
              set "p" (load64 (v "slotbuf"));
              store64 (v "p") (i 5);
              ret (call "sys_taint_chk" [ v "data"; i 8 ]);
            ]
        in
        with_pointer_policy Instrument.Propagate_pointer_taint (fun () ->
            Util.check_bool "location tainted" true
              (Util.exit_code (Util.run_prog ~mode:Mode.shift_word prog) > 0L)));
    tc "clean pointers are unaffected by the propagate policy" (fun () ->
        with_pointer_policy Instrument.Propagate_pointer_taint (fun () ->
            let prog =
              Util.main_returning ~locals:[ array "data" 16 ]
                [
                  store64 (v "data") (i 11);
                  ret ((call "sys_taint_chk" [ v "data"; i 8 ] *: i 100) +: load64 (v "data"));
                ]
            in
            Util.check_i64 "clean" 11L
              (Util.exit_code (Util.run_prog ~mode:Mode.shift_word prog))));
  ]

let suites =
  [
    ("features.guard", guard_tests);
    ("features.fnptr", fnptr_tests);
    ("features.untaint", untaint_tests);
    ("features.pointer-policy", pointer_policy_tests);
  ]
