(* The remaining §3.3.1 taint sources: keyboard input (stdin) and
   return values of configured functions. *)

open Build
open Build.Infix
module Mode = Shift_compiler.Mode
module World = Shift_os.World

let tc = Util.tc

let stdin_tests =
  [
    tc "stdin data is tainted by default" (fun () ->
        let prog =
          Util.main_returning ~locals:[ array "buf" 32; scalar "n" ]
            [
              set "n" (call "sys_read" [ i 0; v "buf"; i 32 ]);
              ret (call "sys_taint_chk" [ v "buf"; v "n" ]);
            ]
        in
        let r =
          Util.run_prog ~mode:Mode.shift_word
            ~setup:(fun w -> World.set_stdin w "typed!")
            prog
        in
        Util.check_i64 "6 tainted bytes" 6L (Util.exit_code r));
    tc "stdin can be marked trusted" (fun () ->
        let prog =
          Util.main_returning ~locals:[ array "buf" 32; scalar "n" ]
            [
              set "n" (call "sys_read" [ i 0; v "buf"; i 32 ]);
              ret (call "sys_taint_chk" [ v "buf"; v "n" ]);
            ]
        in
        let r =
          Util.run_prog ~mode:Mode.shift_word
            ~setup:(fun w -> World.set_stdin w ~tainted:false "typed!")
            prog
        in
        Util.check_i64 "clean" 0L (Util.exit_code r));
    tc "stdin taint drives detection end to end" (fun () ->
        (* type a pointer at the program; it dereferences it *)
        let prog =
          Util.main_returning ~locals:[ array "buf" 16 ]
            [
              Ir.Expr (call "sys_read" [ i 0; v "buf"; i 8 ]);
              ret (load64 (load64 (v "buf")));
            ]
        in
        let payload =
          let b = Buffer.create 8 in
          Buffer.add_int64_le b (Shift_mem.Addr.in_region 1 0x10000L);
          Buffer.contents b
        in
        match
          (Util.run_prog ~mode:Mode.shift_word
             ~setup:(fun w -> World.set_stdin w payload)
             prog)
            .outcome
        with
        | Shift.Report.Alert a ->
            Alcotest.(check string) "L1" "L1" a.Shift_policy.Alert.policy
        | o -> Alcotest.failf "expected L1, got %a" Shift.Report.pp_outcome o);
  ]

(* a source function whose results the configuration distrusts *)
let reader_prog =
  {
    Ir.globals = [];
    funcs =
      [
        func "read_config_value" ~params:[] ~locals:[] [ ret (i 12345) ];
        func "main" ~params:[] ~locals:[ array "slot" 8; scalar "x" ]
          [
            set "x" (call "read_config_value" []);
            store64 (v "slot") (v "x");
            ret ((call "sys_taint_chk" [ v "slot"; i 8 ] *: i 100000) +: v "x");
          ];
      ];
  }

let return_taint_tests =
  List.map
    (fun mode ->
      tc
        (Printf.sprintf "configured return values are tainted (%s)" (Mode.to_string mode))
        (fun () ->
          Util.check_i64 "tainted word + value" 812345L
            (Util.exit_code
               (Shift.Session.run ~taint_returns:[ "read_config_value" ] ~mode reader_prog))))
    [
      Mode.shift_word;
      Mode.shift_byte;
      Mode.Shift { granularity = Shift_mem.Granularity.Word; enh = Mode.enh1 };
    ]
  @ [
      tc "configured return values are tainted (software DBT, byte count)" (fun () ->
          Util.check_i64 "8 tainted bytes + value" 812345L
            (Util.exit_code
               (Shift.Session.run ~taint_returns:[ "read_config_value" ]
                  ~mode:(Mode.Software_dbt { granularity = Shift_mem.Granularity.Word })
                  reader_prog)));
      tc "without the configuration nothing is tainted" (fun () ->
          Util.check_i64 "clean" 12345L
            (Util.exit_code (Shift.Session.run ~mode:Mode.shift_word reader_prog)));
      tc "uninstrumented code ignores the marker" (fun () ->
          Util.check_i64 "runs normally" 12345L
            (Util.exit_code
               (Shift.Session.run ~taint_returns:[ "read_config_value" ]
                  ~mode:Mode.Uninstrumented reader_prog)));
      tc "tainted returns flow into sinks" (fun () ->
          let prog =
            {
              Ir.globals = [];
              funcs =
                [
                  func "fetch_remote" ~params:[] ~locals:[] [ ret (str "x' OR 'a'='a") ];
                  func "main" ~params:[] ~locals:[ array "q" 256; scalar "s" ]
                    [
                      set "s" (call "fetch_remote" []);
                      (* the *pointer* is tainted; under the propagate
                         pointer policy its dereferences taint the copy *)
                      Ir.Expr (call "sprintf1" [ v "q"; str "SELECT x WHERE id='%s'"; v "s" ]);
                      Ir.Expr (call "sys_sql_exec" [ v "q" ]);
                      ret (i 0);
                    ];
                ];
            }
          in
          let old = !Shift_compiler.Instrument.pointer_policy in
          Shift_compiler.Instrument.pointer_policy :=
            Shift_compiler.Instrument.Propagate_pointer_taint;
          Fun.protect
            ~finally:(fun () -> Shift_compiler.Instrument.pointer_policy := old)
            (fun () ->
              match
                (Shift.Session.run ~taint_returns:[ "fetch_remote" ] ~mode:Mode.shift_byte
                   ~policy:{ Shift_policy.Policy.default with Shift_policy.Policy.h3 = true }
                   prog)
                  .outcome
              with
              | Shift.Report.Alert a ->
                  Alcotest.(check string) "H3" "H3" a.Shift_policy.Alert.policy
              | o -> Alcotest.failf "expected H3, got %a" Shift.Report.pp_outcome o));
    ]

let suites =
  [ ("sources.stdin", stdin_tests); ("sources.taint-returns", return_taint_tests) ]
