(* tiny substring helper shared by tests *)
let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0
