open Build
open Build.Infix

let tc = Util.tc

let validate ?(globals = []) funcs =
  Ir.validate ~externals:Shift_compiler.Codegen.externals { Ir.globals; funcs }

let expect_invalid msg ?globals funcs =
  match validate ?globals funcs with
  | () -> Alcotest.failf "%s: expected Ir.Invalid" msg
  | exception Ir.Invalid _ -> ()

let validate_tests =
  [
    tc "well-formed program passes" (fun () ->
        validate ~globals:[ global_bytes "g" "hi" ]
          [
            func "main" ~params:[] ~locals:[ scalar "x"; array "buf" 16 ]
              [
                set "x" (i 1);
                store8 (v "buf") (v "x");
                when_ (v "x" >: i 0) [ ret (load8 (v "g")) ];
                ret (i 0);
              ];
          ]);
    tc "unbound variable rejected" (fun () ->
        expect_invalid "unbound" [ func "main" ~params:[] ~locals:[] [ ret (v "nope") ] ]);
    tc "assignment to array rejected" (fun () ->
        expect_invalid "array assign"
          [ func "main" ~params:[] ~locals:[ array "a" 8 ] [ set "a" (i 1) ] ]);
    tc "assignment to global rejected" (fun () ->
        expect_invalid "global assign" ~globals:[ global_zeros "g" 8 ]
          [ func "main" ~params:[] ~locals:[] [ set "g" (i 1) ] ]);
    tc "unknown function rejected" (fun () ->
        expect_invalid "unknown call"
          [ func "main" ~params:[] ~locals:[] [ ret (call "mystery" []) ] ]);
    tc "intrinsics are known" (fun () ->
        validate [ func "main" ~params:[] ~locals:[] [ ret (call "sys_sbrk" [ i 8 ]) ] ]);
    tc "arity mismatch rejected" (fun () ->
        expect_invalid "arity"
          [
            func "f" ~params:[ "a"; "b" ] ~locals:[] [ ret (v "a" +: v "b") ];
            func "main" ~params:[] ~locals:[] [ ret (call "f" [ i 1 ]) ];
          ]);
    tc "break outside loop rejected" (fun () ->
        expect_invalid "break" [ func "main" ~params:[] ~locals:[] [ Ir.Break ] ]);
    tc "break inside loop ok" (fun () ->
        validate [ func "main" ~params:[] ~locals:[] [ while_ (i 1) [ Ir.Break ]; ret (i 0) ] ]);
    tc "duplicate local rejected" (fun () ->
        expect_invalid "dup"
          [ func "main" ~params:[] ~locals:[ scalar "x"; scalar "x" ] [ ret (i 0) ] ]);
    tc "local shadowing a global rejected" (fun () ->
        expect_invalid "shadow" ~globals:[ global_zeros "x" 8 ]
          [ func "main" ~params:[] ~locals:[ scalar "x" ] [ ret (i 0) ] ]);
    tc "zero-sized array rejected" (fun () ->
        expect_invalid "empty array"
          [ func "main" ~params:[] ~locals:[ array "a" 0 ] [ ret (i 0) ] ]);
    tc "duplicate function rejected" (fun () ->
        expect_invalid "dup func"
          [
            func "main" ~params:[] ~locals:[] [ ret (i 0) ];
            func "main" ~params:[] ~locals:[] [ ret (i 1) ];
          ]);
  ]

let misc_tests =
  [
    tc "merge concatenates" (fun () ->
        let a = { Ir.globals = [ global_zeros "g1" 8 ]; funcs = [] } in
        let b = { Ir.globals = []; funcs = [ func "f" ~params:[] ~locals:[] [ ret (i 0) ] ] } in
        let p = Ir.merge a b in
        Util.check_int "globals" 1 (List.length p.Ir.globals);
        Util.check_bool "func" true (Ir.find_func p "f" <> None));
    tc "pretty printer produces C-like text" (fun () ->
        let p =
          Util.main_returning
            [ when_ (i 1 <: i 2) [ ret (i 3) ]; ret (i 0) ]
        in
        let s = Format.asprintf "%a" Ir.pp_program p in
        Util.check_bool "has func" true (Str_exists.contains s "func main");
        Util.check_bool "has if" true (Str_exists.contains s "if"));
    tc "for_up builds the canonical loop" (fun () ->
        match for_up "k" (i 0) (i 10) [] with
        | [ Ir.Assign ("k", _); Ir.While (Ir.Binop (Ir.Lt, Ir.Var "k", _), _) ] -> ()
        | _ -> Alcotest.fail "unexpected shape");
  ]

let suites = [ ("ir.validate", validate_tests); ("ir.misc", misc_tests) ]
