open Shift_isa

let tc = Util.tc

let arb_int64 = QCheck.map Int64.of_int QCheck.int

let prop name ?(count = 200) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let cond_tests =
  [
    tc "eq" (fun () ->
        Util.check_bool "3 = 3" true (Cond.eval Cond.Eq 3L 3L);
        Util.check_bool "3 = 4" false (Cond.eval Cond.Eq 3L 4L));
    tc "signed vs unsigned" (fun () ->
        Util.check_bool "-1 < 0 signed" true (Cond.eval Cond.Lt (-1L) 0L);
        Util.check_bool "-1 < 0 unsigned" false (Cond.eval Cond.Ltu (-1L) 0L);
        Util.check_bool "-1 > 0 unsigned" true (Cond.eval Cond.Gtu (-1L) 0L));
    prop "negate flips result" QCheck.(pair arb_int64 arb_int64) (fun (a, b) ->
        List.for_all
          (fun c -> Cond.eval c a b = not (Cond.eval (Cond.negate c) a b))
          Cond.all);
    prop "swap mirrors operands" QCheck.(pair arb_int64 arb_int64) (fun (a, b) ->
        List.for_all (fun c -> Cond.eval c a b = Cond.eval (Cond.swap c) b a) Cond.all);
    prop "negate is an involution" QCheck.unit (fun () ->
        List.for_all (fun c -> Cond.negate (Cond.negate c) = c) Cond.all);
  ]

let instr_tests =
  [
    tc "reads and writes of arith" (fun () ->
        let op = Instr.Arith (Instr.Add, 5, 6, Instr.R 7) in
        Util.check_bool "reads" true (Instr.reads op = [ 6; 7 ]);
        Util.check_bool "writes" true (Instr.writes op = [ 5 ]));
    tc "store reads both registers, writes none" (fun () ->
        let op = Instr.St { width = Instr.W8; addr = 3; src = 4; spill = false } in
        Util.check_bool "reads" true (Instr.reads op = [ 3; 4 ]);
        Util.check_bool "writes" true (Instr.writes op = []));
    tc "call writes the return register" (fun () ->
        Util.check_bool "ret" true (Instr.writes (Instr.Call "f") = [ Reg.ret ]));
    tc "memory classification" (fun () ->
        Util.check_bool "ld" true
          (Instr.is_mem (Instr.Ld { width = Instr.W1; dst = 1; addr = 2; spec = false; fill = false }));
        Util.check_bool "add" false (Instr.is_mem (Instr.Arith (Instr.Add, 1, 2, Instr.Imm 0L))));
    tc "pretty printing mentions the mnemonic" (fun () ->
        let s = Instr.to_string (Instr.mk (Instr.Movi (4, 42L))) in
        Util.check_bool "movl" true
          (String.length s > 0 && String.trim s <> ""
          && Str_exists.contains s "movl"));
    tc "width bytes" (fun () ->
        Util.check_int "w1" 1 (Instr.bytes_of_width Instr.W1);
        Util.check_int "w8" 8 (Instr.bytes_of_width Instr.W8));
  ]

let program_tests =
  [
    tc "assemble resolves labels" (fun () ->
        let p =
          Program.assemble
            [
              Program.Label "a";
              Program.I (Instr.mk Instr.Nop);
              Program.Label "b";
              Program.I (Instr.mk (Instr.Br "a"));
            ]
        in
        Util.check_int "a" 0 (Program.target p "a");
        Util.check_int "b" 1 (Program.target p "b");
        Util.check_int "size" 2 (Program.size p));
    tc "duplicate label rejected" (fun () ->
        Alcotest.check_raises "dup"
          (Program.Assembly_error "duplicate label \"x\"")
          (fun () ->
            ignore (Program.assemble [ Program.Label "x"; Program.Label "x" ])));
    tc "unknown branch target rejected" (fun () ->
        Alcotest.check_raises "unknown"
          (Program.Assembly_error "unknown label \"nowhere\"")
          (fun () -> ignore (Program.assemble [ Program.I (Instr.mk (Instr.Br "nowhere")) ])));
    tc "lea target checked too" (fun () ->
        Alcotest.check_raises "unknown"
          (Program.Assembly_error "unknown label \"f\"")
          (fun () -> ignore (Program.assemble [ Program.I (Instr.mk (Instr.Lea (1, "f"))) ])));
    tc "count_prov" (fun () ->
        let p =
          Program.assemble
            [
              Program.I (Instr.mk ~prov:Prov.Ld_mem Instr.Nop);
              Program.I (Instr.mk Instr.Nop);
              Program.I (Instr.mk ~prov:Prov.Ld_mem Instr.Nop);
            ]
        in
        Util.check_int "ld-mem" 2 (Program.count_prov p Prov.Ld_mem);
        Util.check_int "orig" 1 (Program.count_prov p Prov.Orig));
  ]

let prov_tests =
  [
    tc "index/of_index roundtrip" (fun () ->
        for i = 0 to Prov.card - 1 do
          Util.check_int "roundtrip" i (Prov.index (Prov.of_index i))
        done);
    tc "orig is not instrumentation" (fun () ->
        Util.check_bool "orig" false (Prov.is_instrumentation Prov.Orig);
        Util.check_bool "shadow" true (Prov.is_instrumentation Prov.Shadow));
  ]

let suites =
  [
    ("isa.cond", cond_tests);
    ("isa.instr", instr_tests);
    ("isa.program", program_tests);
    ("isa.prov", prov_tests);
  ]
