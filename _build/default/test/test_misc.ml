(* Coverage for the smaller public surfaces: reports, images, printers,
   OS edge cases, and compiler error paths. *)

open Build
open Build.Infix
module Mode = Shift_compiler.Mode
module Image = Shift_compiler.Image
module Policy = Shift_policy.Policy
module Alert = Shift_policy.Alert

let tc = Util.tc

let report_tests =
  [
    tc "detected is false for clean runs" (fun () ->
        let r = Util.run_prog (Util.main_returning [ ret (i 0) ]) in
        Util.check_bool "clean" false (Shift.Report.detected r);
        Util.check_bool "no alert" true (Shift.Report.alert r = None));
    tc "detected is true for stopping alerts" (fun () ->
        let prog =
          Util.main_returning ~locals:[ array "b" 8 ]
            [
              Ir.Expr (call "sys_taint_set" [ v "b"; i 8; i 1 ]);
              ret (load64 (load64 (v "b")));
            ]
        in
        let r = Util.run_prog ~mode:Mode.shift_word prog in
        Util.check_bool "detected" true (Shift.Report.detected r);
        Util.check_bool "alert present" true (Shift.Report.alert r <> None));
    tc "detected is true for logged alerts too" (fun () ->
        let policy =
          { (Policy.all_on ~document_root:"/www") with Policy.action = Policy.Log_only }
        in
        let prog =
          Util.main_returning
            [
              Ir.Expr (call "sys_taint_set" [ str "/etc/x"; i 6; i 1 ]);
              Ir.Expr (call "sys_open" [ str "/etc/x" ]);
              ret (i 0);
            ]
        in
        let r = Util.run_prog ~policy ~mode:Mode.shift_word prog in
        Util.check_bool "logged" true (Shift.Report.detected r));
    tc "outcomes print readably" (fun () ->
        let s o = Format.asprintf "%a" Shift.Report.pp_outcome o in
        Util.check_bool "exit" true (Str_exists.contains (s (Shift.Report.Exited 3L)) "3");
        Util.check_bool "alert" true
          (Str_exists.contains
             (s (Shift.Report.Alert (Alert.make ~policy:"H1" "boom")))
             "H1");
        Util.check_bool "timeout" true (Str_exists.contains (s Shift.Report.Timeout) "timeout"));
  ]

let image_tests =
  [
    tc "symbols resolve and missing ones raise" (fun () ->
        let prog =
          { Ir.globals = [ global_bytes "greeting" "yo" ];
            funcs = [ func "main" ~params:[] ~locals:[] [ ret (i 0) ] ] }
        in
        let image = Shift.Session.build ~mode:Mode.Uninstrumented prog in
        Util.check_bool "greeting exists" true (Image.symbol image "greeting" <> 0L);
        (match Image.symbol image "missing" with
        | _ -> Alcotest.fail "expected Not_found"
        | exception Not_found -> ());
        Util.check_bool "scratch slot present" true
          (Image.symbol image Shift_compiler.Layout.scratch_symbol <> 0L));
    tc "code size equals the sum of unit sizes" (fun () ->
        let image = Shift.Session.build ~mode:Mode.shift_word (Util.main_returning [ ret (i 0) ]) in
        Util.check_int "sum" (Image.code_size image)
          (List.fold_left (fun a (_, n) -> a + n) 0 image.Image.func_sizes));
    tc "size_of_funcs sums by prefix" (fun () ->
        let image = Shift.Session.build ~mode:Mode.Uninstrumented (Util.main_returning [ ret (i 0) ]) in
        Util.check_bool "str* functions counted" true
          (Image.size_of_funcs image ~prefix:"str" > 0));
  ]

let printer_tests =
  [
    tc "every instruction form prints" (fun () ->
        let open Shift_isa in
        let forms =
          [
            Instr.Nop; Instr.Movi (1, -5L); Instr.Mov (1, 2);
            Instr.Arith (Instr.Andcm, 1, 2, Instr.Imm 3L);
            Instr.Cmp { cond = Cond.Leu; pt = 1; pf = 2; src1 = 3; src2 = Instr.R 4; taint_aware = true };
            Instr.Tnat { pt = 1; pf = 2; src = 3 };
            Instr.Extr { dst = 1; src = 2; pos = 3; len = 3 };
            Instr.Ld { width = Instr.W2; dst = 1; addr = 2; spec = true; fill = false };
            Instr.Ld { width = Instr.W8; dst = 1; addr = 2; spec = false; fill = true };
            Instr.St { width = Instr.W4; addr = 1; src = 2; spill = true };
            Instr.Chk_s { src = 1; recovery = "r" };
            Instr.Lea (1, "f"); Instr.Br "l"; Instr.Br_reg 1; Instr.Call "f";
            Instr.Call_reg 1; Instr.Ret;
            Instr.Fetchadd { dst = 1; addr = 2; inc = 3 };
            Instr.Setnat 1; Instr.Clrnat 1; Instr.Syscall; Instr.Halt;
          ]
        in
        List.iter
          (fun op ->
            Util.check_bool "nonempty" true
              (String.length (Instr.to_string (Instr.mk op)) > 0))
          forms);
    tc "listings include labels" (fun () ->
        let open Shift_isa in
        let p =
          Program.assemble
            [ Program.Label "entry"; Program.I (Instr.mk Instr.Halt) ]
        in
        let s = Format.asprintf "%a" Program.pp_listing p in
        Util.check_bool "label shown" true (Str_exists.contains s "entry:"));
    tc "IR programs pretty-print all construct kinds" (fun () ->
        let prog =
          {
            Ir.globals = [ global_words "w" [ 1L ] ];
            funcs =
              [
                func "f" ~params:[ "a" ] ~locals:[ array "b" 8 ]
                  [
                    guard (v "a") [ ret (i 0 -: i 1) ];
                    Ir.Expr (icall (fnptr "f") [ i 1 ]);
                    while_ (i 1) [ Ir.Break ];
                    ret0;
                  ];
              ];
          }
        in
        let s = Format.asprintf "%a" Ir.pp_program prog in
        List.iter
          (fun frag -> Util.check_bool frag true (Str_exists.contains s frag))
          [ "guard"; "&f"; "while"; "break" ]);
  ]

let os_edge_tests =
  [
    tc "unknown syscall returns -1" (fun () ->
        let open Shift_isa in
        let program =
          Program.assemble
            [
              Program.I (Instr.mk (Instr.Movi (Reg.sysnum, 99L)));
              Program.I (Instr.mk Instr.Syscall);
              Program.I (Instr.mk Instr.Halt);
            ]
        in
        let cpu = Shift_machine.Cpu.create program in
        let world = Shift_os.World.create () in
        cpu.Shift_machine.Cpu.syscall_handler <- Some (Shift_os.World.handler world);
        match Shift_machine.Cpu.run cpu with
        | Shift_machine.Cpu.Exited v -> Util.check_i64 "-1" (-1L) v
        | _ -> Alcotest.fail "expected exit");
    tc "read from a closed fd fails" (fun () ->
        let prog =
          Util.main_returning ~locals:[ scalar "fd"; array "b" 8 ]
            [
              set "fd" (call "sys_open" [ str "f" ]);
              Ir.Expr (call "sys_close" [ v "fd" ]);
              ret (call "sys_read" [ v "fd"; v "b"; i 8 ]);
            ]
        in
        let r =
          Util.run_prog ~setup:(fun w -> Shift_os.World.add_file w "f" "data") prog
        in
        Util.check_i64 "-1" (-1L) (Util.exit_code r));
    tc "sendfile of more than remains sends the rest" (fun () ->
        let prog =
          Util.main_returning ~locals:[ scalar "fd" ]
            [
              set "fd" (call "sys_open" [ str "f" ]);
              ret (call "sys_sendfile" [ i 1; v "fd"; i 100 ]);
            ]
        in
        let r =
          Util.run_prog ~setup:(fun w -> Shift_os.World.add_file w "f" "sixteen bytes ok") prog
        in
        Util.check_i64 "16" 16L (Util.exit_code r));
    tc "exit syscall ends the program with its code" (fun () ->
        let prog =
          Util.main_returning
            [ Ir.Expr (call "sys_exit" [ i 7 ]); ret (i 0) ]
        in
        Util.check_i64 "7" 7L (Util.exit_code (Util.run_prog prog)));
  ]

let prop name ?(count = 300) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let arb_path =
  QCheck.Gen.(
    let seg = oneofl [ "a"; "bb"; "ccc"; "."; ".."; "" ] in
    map (fun (abs, segs) -> (if abs then "/" else "") ^ String.concat "/" segs)
      (pair bool (list_size (int_bound 6) seg)))
  |> QCheck.make ~print:(fun s -> s)

let path_props =
  [
    prop "normalize_path is idempotent" arb_path (fun p ->
        let n = Policy.normalize_path p in
        Policy.normalize_path n = n);
    prop "absolute paths never escape the root" arb_path (fun p ->
        let n = Policy.normalize_path ("/" ^ p) in
        String.length n > 0 && n.[0] = '/'
        && not (String.split_on_char '/' n |> List.exists (( = ) "..")));
    prop "no duplicate separators or dot segments remain" arb_path (fun p ->
        let n = Policy.normalize_path p in
        (not (Str_exists.contains n "//"))
        && (not (Str_exists.contains n "/./"))
        && n <> "");
  ]

let compiler_error_tests =
  [
    tc "too many call arguments is a compile error" (fun () ->
        let args = List.init 9 (fun k -> i k) in
        let prog =
          {
            Ir.globals = [];
            funcs =
              [
                func "many"
                  ~params:(List.init 9 (Printf.sprintf "p%d"))
                  ~locals:[] [ ret (i 0) ];
                func "main" ~params:[] ~locals:[] [ ret (call "many" args) ];
              ];
          }
        in
        match Shift.Session.build ~mode:Mode.Uninstrumented prog with
        | _ -> Alcotest.fail "expected Compile.Error"
        | exception Shift_compiler.Compile.Error _ -> ());
    tc "wrong untaint arity is a compile error" (fun () ->
        let prog = Util.main_returning [ ret (call "untaint" [ i 1; i 2 ]) ] in
        match Shift.Session.build ~mode:Mode.Uninstrumented prog with
        | _ -> Alcotest.fail "expected Compile.Error"
        | exception Shift_compiler.Compile.Error _ -> ());
  ]

let suites =
  [
    ("misc.report", report_tests);
    ("misc.image", image_tests);
    ("misc.printers", printer_tests);
    ("misc.os-edges", os_edge_tests);
    ("misc.path-props", path_props);
    ("misc.compiler-errors", compiler_error_tests);
  ]
