open Build
open Build.Infix
module Mode = Shift_compiler.Mode
module Compile = Shift_compiler.Compile
module Image = Shift_compiler.Image
module Instr = Shift_isa.Instr
module Prov = Shift_isa.Prov

let tc = Util.tc

let compile ?(mode = Mode.Uninstrumented) prog = Compile.compile ~mode prog

let run_main ?mode body =
  Util.exit_code (Util.run_prog ?mode (Util.main_returning body))

(* ---------- random expression semantics: compiled vs reference ---------- *)

type rexpr =
  | RConst of int64
  | RBin of Ir.binop * rexpr * rexpr

let rec reval = function
  | RConst c -> c
  | RBin (op, a, b) ->
      let x = reval a and y = reval b in
      let amt v = Int64.to_int (Int64.logand v 63L) in
      let b2i c = if c then 1L else 0L in
      (match op with
      | Ir.Add -> Int64.add x y
      | Ir.Sub -> Int64.sub x y
      | Ir.Mul -> Int64.mul x y
      | Ir.Band -> Int64.logand x y
      | Ir.Bor -> Int64.logor x y
      | Ir.Bxor -> Int64.logxor x y
      | Ir.Shl -> Int64.shift_left x (amt y)
      | Ir.Shr -> Int64.shift_right_logical x (amt y)
      | Ir.Sar -> Int64.shift_right x (amt y)
      | Ir.Eq -> b2i (x = y)
      | Ir.Ne -> b2i (x <> y)
      | Ir.Lt -> b2i (x < y)
      | Ir.Le -> b2i (x <= y)
      | Ir.Gt -> b2i (x > y)
      | Ir.Ge -> b2i (x >= y)
      | Ir.Ltu -> b2i (Int64.unsigned_compare x y < 0)
      | Ir.Geu -> b2i (Int64.unsigned_compare x y >= 0)
      | Ir.Land -> b2i (x <> 0L && y <> 0L)
      | Ir.Lor -> b2i (x <> 0L || y <> 0L)
      | Ir.Div | Ir.Rem -> assert false)

let rec rexpr_to_ir = function
  | RConst c -> i64 c
  | RBin (op, a, b) -> Ir.Binop (op, rexpr_to_ir a, rexpr_to_ir b)

let ops =
  [ Ir.Add; Ir.Sub; Ir.Mul; Ir.Band; Ir.Bor; Ir.Bxor; Ir.Shl; Ir.Shr; Ir.Sar;
    Ir.Eq; Ir.Ne; Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge; Ir.Ltu; Ir.Geu; Ir.Land; Ir.Lor ]

let gen_rexpr =
  QCheck.Gen.(
    sized_size (int_bound 5) (fix (fun self n ->
        if n = 0 then map (fun c -> RConst (Int64.of_int c)) (int_range (-1000) 1000)
        else
          map3
            (fun op a b -> RBin (op, a, b))
            (oneofl ops) (self (n / 2)) (self (n / 2)))))

let arb_rexpr = QCheck.make ~print:(fun e -> Int64.to_string (reval e)) gen_rexpr

let prop_expr_semantics mode =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:(Printf.sprintf "random expressions match reference (%s)" (Mode.to_string mode))
       ~count:60 arb_rexpr
       (fun e ->
         (* exit codes are compared as full 64-bit values *)
         run_main ~mode [ ret (rexpr_to_ir e) ] = reval e))

(* ---------- structured programs ---------- *)

let fib_body =
  [
    set "a" (i 0);
    set "b" (i 1);
    set "k" (i 0);
    while_ (v "k" <: v "n")
      [
        set "t" (v "a" +: v "b");
        set "a" (v "b");
        set "b" (v "t");
        set "k" (v "k" +: i 1);
      ];
    ret (v "a");
  ]

let fib_prog =
  {
    Ir.globals = [];
    funcs =
      [
        func "fib" ~params:[ "n" ] ~locals:[ scalar "a"; scalar "b"; scalar "t"; scalar "k" ] fib_body;
        func "main" ~params:[] ~locals:[] [ ret (call "fib" [ i 20 ]) ];
      ];
  }

let recursion_prog =
  {
    Ir.globals = [];
    funcs =
      [
        func "fact" ~params:[ "n" ] ~locals:[]
          [
            when_ (v "n" <=: i 1) [ ret (i 1) ];
            ret (v "n" *: call "fact" [ v "n" -: i 1 ]);
          ];
        func "main" ~params:[] ~locals:[] [ ret (call "fact" [ i 10 ]) ];
      ];
  }

let array_prog =
  Util.main_returning
    ~locals:[ array "a" 80; scalar "k"; scalar "sum" ]
    (for_up "k" (i 0) (i 10) [ store64 (v "a" +: (v "k" *: i 8)) (v "k" *: v "k") ]
    @ [ set "sum" (i 0) ]
    @ for_up "k" (i 0) (i 10) [ set "sum" (v "sum" +: load64 (v "a" +: (v "k" *: i 8))) ]
    @ [ ret (v "sum") ])

let global_prog =
  {
    Ir.globals = [ global_words "table" [ 10L; 20L; 30L ] ];
    funcs =
      [
        func "main" ~params:[] ~locals:[]
          [ ret (load64 (v "table") +: load64 (v "table" +: i 16)) ];
      ];
  }

let spill_locals_prog =
  (* more scalars than the 24 register homes: forces frame spills *)
  let names = List.init 30 (Printf.sprintf "x%d") in
  let assigns = List.mapi (fun k name -> set name (i (k + 1))) names in
  let total = List.fold_left (fun acc name -> acc +: v name) (i 0) names in
  Util.main_returning ~locals:(List.map scalar names) (assigns @ [ ret total ])

let semantics_per_mode name prog expected =
  List.map
    (fun mode ->
      tc
        (Printf.sprintf "%s (%s)" name (Mode.to_string mode))
        (fun () -> Util.check_i64 name expected (Util.exit_code (Util.run_prog ~mode prog))))
    Util.all_modes

let program_tests =
  semantics_per_mode "fib 20" fib_prog 6765L
  @ semantics_per_mode "factorial 10 recursive" recursion_prog 3628800L
  @ semantics_per_mode "array sum of squares" array_prog 285L
  @ semantics_per_mode "global words" global_prog 40L
  @ semantics_per_mode "spilled locals" spill_locals_prog 465L
  @ [
      tc "break and continue" (fun () ->
          let prog =
            Util.main_returning ~locals:[ scalar "sum"; scalar "k" ]
              [
                set "sum" (i 0);
                set "k" (i 0);
                while_ (i 1)
                  [
                    set "k" (v "k" +: i 1);
                    when_ (v "k" >: i 10) [ Ir.Break ];
                    when_ ((v "k" %: i 2) ==: i 0) [ Ir.Continue ];
                    set "sum" (v "sum" +: v "k");
                  ];
                ret (v "sum");
              ]
          in
          Util.check_i64 "odd sum" 25L
            (Util.exit_code (Util.run_prog ~mode:Mode.shift_word prog)));
      tc "string literals are interned once" (fun () ->
          let prog =
            Util.main_returning ~locals:[ scalar "a"; scalar "b" ]
              [ set "a" (str "hello"); set "b" (str "hello"); ret (v "a" ==: v "b") ]
          in
          Util.check_i64 "same address" 1L (Util.exit_code (Util.run_prog prog)));
      tc "short-circuit prevents evaluation" (fun () ->
          (* the right operand would dereference null *)
          let prog =
            Util.main_returning ~locals:[ scalar "p" ]
              [
                set "p" (i 0);
                when_ ((v "p" <>: i 0) &&: (load8 (v "p") ==: i 7)) [ ret (i 1) ];
                ret (i 2);
              ]
          in
          List.iter
            (fun mode ->
              Util.check_i64 (Mode.to_string mode) 2L
                (Util.exit_code (Util.run_prog ~mode prog)))
            Util.all_modes);
      tc "missing main rejected" (fun () ->
          match compile { Ir.globals = []; funcs = [] } with
          | _ -> Alcotest.fail "expected error"
          | exception Compile.Error _ -> ());
    ]

(* ---------- instrumentation structure ---------- *)

let count_prov image p = Shift_isa.Program.count_prov image.Image.program p

let structure_tests =
  [
    tc "uninstrumented code has only Orig provenance" (fun () ->
        let image = Shift.Session.build ~mode:Mode.Uninstrumented fib_prog in
        List.iter
          (fun p ->
            if p <> Prov.Orig then Util.check_int (Prov.to_string p) 0 (count_prov image p))
          (List.init Prov.card Prov.of_index));
    tc "shift mode inserts load and store instrumentation" (fun () ->
        let image = Shift.Session.build ~mode:Mode.shift_word array_prog in
        Util.check_bool "ld-mem" true (count_prov image Prov.Ld_mem > 0);
        Util.check_bool "st-mem" true (count_prov image Prov.St_mem > 0);
        Util.check_bool "cmp-relax" true (count_prov image Prov.Cmp_relax > 0);
        Util.check_bool "nat-gen" true (count_prov image Prov.Nat_gen > 0));
    tc "all original stores become spills under shift" (fun () ->
        let image = Shift.Session.build ~mode:Mode.shift_word array_prog in
        Array.iter
          (fun (ins : Instr.t) ->
            match ins.op with
            | Instr.St { spill; _ } when ins.prov = Prov.Orig ->
                Util.check_bool "spill" true spill
            | _ -> ())
          image.Image.program.code);
    tc "enhancement 1 removes NaT generation, adds setnat" (fun () ->
        let base = Shift.Session.build ~mode:Mode.shift_word array_prog in
        let enh =
          Shift.Session.build
            ~mode:(Mode.Shift { granularity = Shift_mem.Granularity.Word; enh = Mode.enh1 })
            array_prog
        in
        let has_setnat img =
          Array.exists
            (fun (ins : Instr.t) -> match ins.Instr.op with Instr.Setnat _ -> true | _ -> false)
            img.Image.program.code
        in
        Util.check_bool "base has no setnat" false (has_setnat base);
        Util.check_bool "enh has setnat" true (has_setnat enh);
        Util.check_bool "enh smaller" true (Image.code_size enh < Image.code_size base));
    tc "enhancement 2 removes relaxation code" (fun () ->
        let enh_both =
          Shift.Session.build
            ~mode:(Mode.Shift { granularity = Shift_mem.Granularity.Word; enh = Mode.enh_both })
            array_prog
        in
        Util.check_int "no relax" 0 (count_prov enh_both Prov.Cmp_relax));
    tc "byte tracking needs more code than word tracking" (fun () ->
        let byte = Shift.Session.build ~mode:Mode.shift_byte array_prog in
        let word = Shift.Session.build ~mode:Mode.shift_word array_prog in
        let orig = Shift.Session.build ~mode:Mode.Uninstrumented array_prog in
        Util.check_bool "byte >= word" true (Image.code_size byte >= Image.code_size word);
        Util.check_bool "word > orig" true (Image.code_size word > Image.code_size orig));
    tc "software DBT instruments everything" (fun () ->
        let image =
          Shift.Session.build
            ~mode:(Mode.Software_dbt { granularity = Shift_mem.Granularity.Word })
            fib_prog
        in
        Util.check_bool "shadow code dominates" true
          (count_prov image Prov.Shadow > count_prov image Prov.Orig));
    tc "function sizes are recorded" (fun () ->
        let image = Shift.Session.build ~mode:Mode.shift_word fib_prog in
        Util.check_bool "has fib" true (List.mem_assoc "fib" image.Image.func_sizes);
        Util.check_bool "has strlen" true (List.mem_assoc "strlen" image.Image.func_sizes);
        Util.check_bool "all positive" true
          (List.for_all (fun (_, n) -> n > 0) image.Image.func_sizes));
  ]

let expr_tests =
  List.map prop_expr_semantics
    [ Mode.Uninstrumented; Mode.shift_word; Mode.shift_byte ]

let suites =
  [
    ("compiler.programs", program_tests);
    ("compiler.expressions", expr_tests);
    ("compiler.structure", structure_tests);
  ]
