(* Control speculation coexisting with taint tracking (paper §3.3.4 and
   Figure 2).

   The combining scheme: speculative code regions are not instrumented;
   the chk.s that guards their results fires on *any* token — a real
   deferred exception or a taint — and redirects to recovery code that
   re-executes non-speculatively with full tracking.  Tainted data thus
   costs a speculation false positive but never wrong results. *)

open Shift_isa
module Cpu = Shift_machine.Cpu

let tc = Util.tc
let m ?qp op = Program.I (Instr.mk ?qp op)
let lbl l = Program.Label l

let valid_addr = Shift_mem.Addr.in_region 1 0x10000L
let invalid_addr = Int64.shift_left 1L 45

let run ?(setup = fun _ -> ()) items =
  let cpu = Cpu.create (Program.assemble items) in
  setup cpu;
  let outcome = Cpu.run ~fuel:100_000 cpu in
  (cpu, outcome)

let exit_of (_, outcome) =
  match outcome with
  | Cpu.Exited v -> v
  | Cpu.Faulted (f, ip) ->
      Alcotest.failf "fault %s at %d" (Shift_machine.Fault.to_string f) ip
  | Cpu.Out_of_fuel -> Alcotest.fail "out of fuel"

(* Figure 2's shape: a load hoisted above its branch.  r13 = address
   (may be garbage when the branch is not taken), r16 = condition. *)
let figure2 ~addr ~cond ~mem_value =
  let setup cpu =
    Cpu.set_value cpu 13 addr;
    Cpu.set_value cpu 16 cond;
    Shift_mem.Memory.write cpu.Cpu.mem valid_addr ~width:8 mem_value
  in
  let items =
    [
      (* speculative region: the load moved up, execution overlapped *)
      m (Instr.Ld { width = Instr.W8; dst = 14; addr = 13; spec = true; fill = false });
      m (Instr.Arith (Instr.And, 15, 14, Instr.Imm 8L));
      (* original home of the load: check the speculation *)
      m (Instr.Cmp { cond = Cond.Ne; pt = 1; pf = 2; src1 = 16; src2 = Instr.Imm 0L; taint_aware = false });
      m ~qp:2 (Instr.Br "skip");
      m (Instr.Chk_s { src = 15; recovery = "recovery" });
      lbl "next";
      m (Instr.Mov (Reg.ret, 15));
      m Instr.Halt;
      lbl "skip";
      m (Instr.Movi (Reg.ret, 999L));
      m Instr.Halt;
      (* recovery: the non-speculative version of the code *)
      lbl "recovery";
      m (Instr.Ld { width = Instr.W8; dst = 14; addr = 13; spec = false; fill = false });
      m (Instr.Arith (Instr.And, 15, 14, Instr.Imm 8L));
      m (Instr.Br "next");
    ]
  in
  run ~setup items

let suite =
  [
    tc "successful speculation commits the hoisted result" (fun () ->
        let cpu, outcome = figure2 ~addr:valid_addr ~cond:1L ~mem_value:0xFFL in
        Util.check_i64 "x & 8" 8L (match outcome with Cpu.Exited v -> v | _ -> -1L);
        (* the recovery path never ran: exactly one load executed *)
        Util.check_int "one load" 1 cpu.Cpu.stats.loads);
    tc "mis-speculated load defers its exception harmlessly" (fun () ->
        (* branch not taken: the bogus address must NOT fault, because
           the original program never executed this load *)
        let _, outcome = figure2 ~addr:invalid_addr ~cond:0L ~mem_value:0L in
        (match outcome with
        | Cpu.Exited v -> Util.check_i64 "skip path" 999L v
        | o ->
            Alcotest.failf "deferred exception leaked: %s"
              (match o with
              | Cpu.Faulted (f, _) -> Shift_machine.Fault.to_string f
              | _ -> "timeout")));
    tc "taken branch with a bad address recovers through chk.s" (fun () ->
        (* branch taken and the speculation failed: chk.s redirects to
           the recovery code, which re-executes the load; here the
           address is genuinely bad, so the non-speculative load faults
           precisely, as the original program would have *)
        let _, outcome = figure2 ~addr:invalid_addr ~cond:1L ~mem_value:0L in
        match outcome with
        | Cpu.Faulted (Shift_machine.Fault.Invalid_address _, _) -> ()
        | o ->
            Alcotest.failf "expected a precise fault, got %s"
              (match o with
              | Cpu.Exited v -> Printf.sprintf "exit %Ld" v
              | Cpu.Faulted (f, _) -> Shift_machine.Fault.to_string f
              | Cpu.Out_of_fuel -> "timeout"));
    tc "tainted data triggers a speculation false positive, not wrong results" (fun () ->
        (* §3.3.4: a taint token reaching the chk.s is indistinguishable
           from a deferred exception; recovery re-runs the computation
           non-speculatively and execution continues correctly *)
        let setup cpu =
          Cpu.set_value cpu 13 valid_addr;
          Shift_mem.Memory.write cpu.Cpu.mem valid_addr ~width:8 12L;
          (* r20 is a tainted operand feeding the speculative region *)
          Cpu.set_value cpu 20 5L;
          Cpu.set_nat cpu 20 true
        in
        let cpu, outcome =
          run ~setup
            [
              (* speculative region: uses the tainted register *)
              m (Instr.Ld { width = Instr.W8; dst = 14; addr = 13; spec = true; fill = false });
              m (Instr.Arith (Instr.Add, 15, 14, Instr.R 20));
              m (Instr.Chk_s { src = 15; recovery = "recovery" });
              lbl "next";
              m (Instr.Mov (Reg.ret, 15));
              m Instr.Halt;
              lbl "recovery";
              (* non-speculative version: plain load plus the tracked
                 add (here the NaT-stripped compute through a scratch
                 slot, as SHIFT's relaxed code would do before a
                 critical use) *)
              m (Instr.Ld { width = Instr.W8; dst = 14; addr = 13; spec = false; fill = false });
              m (Instr.Movi (23, Int64.add valid_addr 64L));
              m (Instr.St { width = Instr.W8; addr = 23; src = 20; spill = true });
              m (Instr.Ld { width = Instr.W8; dst = 21; addr = 23; spec = false; fill = false });
              m (Instr.Arith (Instr.Add, 15, 14, Instr.R 21));
              m (Instr.Br "next");
            ]
        in
        (* the recovery path ran (chk.s counted as a taken branch) and
           the program still computed 12 + 5 *)
        Util.check_i64 "value correct" 17L (exit_of (cpu, outcome));
        Util.check_bool "recovery executed" true (cpu.Cpu.stats.loads > 1));
    tc "clean data pays no speculation penalty" (fun () ->
        let setup cpu =
          Cpu.set_value cpu 13 valid_addr;
          Shift_mem.Memory.write cpu.Cpu.mem valid_addr ~width:8 12L;
          Cpu.set_value cpu 20 5L
        in
        let cpu, outcome =
          run ~setup
            [
              m (Instr.Ld { width = Instr.W8; dst = 14; addr = 13; spec = true; fill = false });
              m (Instr.Arith (Instr.Add, 15, 14, Instr.R 20));
              m (Instr.Chk_s { src = 15; recovery = "recovery" });
              m (Instr.Mov (Reg.ret, 15));
              m Instr.Halt;
              lbl "recovery";
              m (Instr.Movi (Reg.ret, -1L));
              m Instr.Halt;
            ]
        in
        Util.check_i64 "fast path" 17L (exit_of (cpu, outcome));
        Util.check_int "exactly one load" 1 cpu.Cpu.stats.loads);
  ]

let suites = [ ("speculation.figure2", suite) ]
