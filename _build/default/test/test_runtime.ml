open Build
open Build.Infix
module Mode = Shift_compiler.Mode

let tc = Util.tc

let run ?mode ?locals body =
  Util.exit_code (Util.run_prog ?mode (Util.main_returning ?locals body))

let out ?mode ?locals body =
  let r = Util.run_prog ?mode (Util.main_returning ?locals body) in
  (match r.Shift.Report.outcome with
  | Shift.Report.Exited _ -> ()
  | o -> Alcotest.failf "expected exit, got %a" Shift.Report.pp_outcome o);
  r.Shift.Report.output

let string_tests =
  [
    tc "strlen" (fun () -> Util.check_i64 "len" 5L (run [ ret (call "strlen" [ str "hello" ]) ]));
    tc "strlen of empty" (fun () ->
        Util.check_i64 "len" 0L (run [ ret (call "strlen" [ str "" ]) ]));
    tc "strcpy copies and terminates" (fun () ->
        Util.check_i64 "copied" 0L
          (run ~locals:[ array "buf" 32 ]
             [
               Ir.Expr (call "strcpy" [ v "buf"; str "abc" ]);
               ret (call "strcmp" [ v "buf"; str "abc" ]);
             ]));
    tc "strncpy truncates safely" (fun () ->
        Util.check_i64 "truncated" 3L
          (run ~locals:[ array "buf" 8 ]
             [
               Ir.Expr (call "strncpy" [ v "buf"; str "abcdefgh"; i 4 ]);
               ret (call "strlen" [ v "buf" ]);
             ]));
    tc "strcat" (fun () ->
        Util.check_i64 "joined" 0L
          (run ~locals:[ array "buf" 32 ]
             [
               Ir.Expr (call "strcpy" [ v "buf"; str "foo" ]);
               Ir.Expr (call "strcat" [ v "buf"; str "bar" ]);
               ret (call "strcmp" [ v "buf"; str "foobar" ]);
             ]));
    tc "strcmp ordering" (fun () ->
        Util.check_bool "lt" true (run [ ret (call "strcmp" [ str "abc"; str "abd" ]) ] < 0L);
        Util.check_bool "gt" true (run [ ret (call "strcmp" [ str "b"; str "a" ]) ] > 0L);
        Util.check_i64 "eq" 0L (run [ ret (call "strcmp" [ str "same"; str "same" ]) ]);
        Util.check_bool "prefix" true (run [ ret (call "strcmp" [ str "ab"; str "abc" ]) ] < 0L));
    tc "strncmp stops at n" (fun () ->
        Util.check_i64 "prefix equal" 0L (run [ ret (call "strncmp" [ str "abcX"; str "abcY"; i 3 ]) ]));
    tc "strcasecmp ignores case" (fun () ->
        Util.check_i64 "eq" 0L (run [ ret (call "strcasecmp" [ str "HeLLo"; str "hello" ]) ]);
        Util.check_bool "ne" true (run [ ret (call "strcasecmp" [ str "abc"; str "abd" ]) ] <> 0L));
    tc "strchr finds and misses" (fun () ->
        Util.check_i64 "offset" 2L
          (run ~locals:[ scalar "s"; scalar "p" ]
             [
               set "s" (str "hello");
               set "p" (call "strchr" [ v "s"; i (Char.code 'l') ]);
               ret (v "p" -: v "s");
             ]);
        Util.check_i64 "miss" 0L (run [ ret (call "strchr" [ str "hello"; i (Char.code 'z') ]) ]));
    tc "strstr finds substring" (fun () ->
        Util.check_i64 "offset" 6L
          (run ~locals:[ scalar "s"; scalar "p" ]
             [
               set "s" (str "hello world");
               set "p" (call "strstr" [ v "s"; str "world" ]);
               ret (v "p" -: v "s");
             ]);
        Util.check_i64 "miss" 0L (run [ ret (call "strstr" [ str "hello"; str "xyz" ]) ]);
        Util.check_i64 "empty needle" 0L
          (run ~locals:[ scalar "s" ]
             [ set "s" (str "x"); ret (call "strstr" [ v "s"; str "" ] -: v "s") ]));
  ]

let mem_tests =
  [
    tc "memcpy/memcmp" (fun () ->
        Util.check_i64 "equal" 0L
          (run ~locals:[ array "a" 16; array "b" 16 ]
             [
               Ir.Expr (call "strcpy" [ v "a"; str "0123456789" ]);
               Ir.Expr (call "memcpy" [ v "b"; v "a"; i 11 ]);
               ret (call "memcmp" [ v "a"; v "b"; i 11 ]);
             ]));
    tc "memset" (fun () ->
        Util.check_i64 "sum" (Int64.of_int (16 * 7))
          (run ~locals:[ array "a" 16; scalar "k"; scalar "sum" ]
             ([ Ir.Expr (call "memset" [ v "a"; i 7; i 16 ]); set "sum" (i 0) ]
             @ for_up "k" (i 0) (i 16) [ set "sum" (v "sum" +: load8 (v "a" +: v "k")) ]
             @ [ ret (v "sum") ])));
    tc "memchr" (fun () ->
        Util.check_i64 "found" 3L
          (run ~locals:[ array "a" 8; scalar "p" ]
             [
               Ir.Expr (call "strcpy" [ v "a"; str "abcdefg" ]);
               set "p" (call "memchr" [ v "a"; i (Char.code 'd'); i 7 ]);
               ret (v "p" -: v "a");
             ]));
    tc "malloc returns distinct aligned chunks" (fun () ->
        Util.check_i64 "ok" 1L
          (run ~locals:[ scalar "p"; scalar "q" ]
             [
               set "p" (call "malloc" [ i 13 ]);
               set "q" (call "malloc" [ i 5 ]);
               store64 (v "p") (i 11);
               store64 (v "q") (i 22);
               ret
                 ((v "q" >: v "p")
                 &&: ((v "p" &: i 7) ==: i 0)
                 &&: (load64 (v "p") ==: i 11)
                 &&: (load64 (v "q") ==: i 22));
             ]));
  ]

let convert_tests =
  [
    tc "atoi basics" (fun () ->
        Util.check_i64 "42" 42L (run [ ret (call "atoi" [ str "42" ]) ]);
        Util.check_i64 "negative" (-17L) (run [ ret (call "atoi" [ str "-17" ]) ]);
        Util.check_i64 "spaces" 9L (run [ ret (call "atoi" [ str "  +9xyz" ]) ]);
        Util.check_i64 "empty" 0L (run [ ret (call "atoi" [ str "" ]) ]));
    tc "itoa round-trips through atoi" (fun () ->
        List.iter
          (fun n ->
            Util.check_i64 (string_of_int n) (Int64.of_int n)
              (run ~locals:[ array "buf" 32 ]
                 [
                   Ir.Expr (call "itoa" [ i n; v "buf" ]);
                   ret (call "atoi" [ v "buf" ]);
                 ]))
          [ 0; 7; -7; 123456789; -987654321 ]);
    tc "utox renders hex" (fun () ->
        Util.check_i64 "match" 0L
          (run ~locals:[ array "buf" 32 ]
             [
               Ir.Expr (call "utox" [ i 0xdeadbeef; v "buf" ]);
               ret (call "strcmp" [ v "buf"; str "deadbeef" ]);
             ]));
  ]

let format_tests =
  [
    tc "vformat %d %s %c %x %%" (fun () ->
        Util.check_i64 "match" 0L
          (run ~locals:[ array "buf" 128; array "args" 32 ]
             [
               store64 (v "args") (i 42);
               store64 (v "args" +: i 8) (str "world");
               store64 (v "args" +: i 16) (i (Char.code '!'));
               store64 (v "args" +: i 24) (i 255);
               Ir.Expr (call "vformat" [ v "buf"; str "n=%d s=%s c=%c x=%x p=%%"; v "args" ]);
               ret (call "strcmp" [ v "buf"; str "n=42 s=world c=! x=ff p=%" ]);
             ]));
    tc "sprintf2 convenience" (fun () ->
        Util.check_i64 "match" 0L
          (run ~locals:[ array "buf" 64 ]
             [
               Ir.Expr (call "sprintf2" [ v "buf"; str "%s-%d"; str "id"; i 9 ]);
               ret (call "strcmp" [ v "buf"; str "id-9" ]);
             ]));
    tc "%n writes the running length" (fun () ->
        Util.check_i64 "count" 5L
          (run ~locals:[ array "buf" 64; array "args" 8; array "slot" 8 ]
             [
               store64 (v "args") (v "slot");
               Ir.Expr (call "vformat" [ v "buf"; str "12345%n"; v "args" ]);
               ret (load64 (v "slot"));
             ]));
  ]

let io_tests =
  [
    tc "print and println write to stdout" (fun () ->
        Util.check_string "out" "hi\n"
          (out [ ecall "println" [ str "hi" ]; ret (i 0) ]));
    tc "print_int renders decimals" (fun () ->
        Util.check_string "out" "-321"
          (out [ ecall "print_int" [ i (-321) ]; ret (i 0) ]));
    tc "ticket lock is reentrant-free but uncontended-cheap" (fun () ->
        (* single hart: lock/unlock twice must not deadlock and must
           leave the ticket counters consistent *)
        Util.check_i64 "tickets advanced" 2L
          (run ~locals:[ array "m" 16 ]
             [
               ecall "mutex_lock" [ v "m" ];
               ecall "mutex_unlock" [ v "m" ];
               ecall "mutex_lock" [ v "m" ];
               ecall "mutex_unlock" [ v "m" ];
               ret (load64 (v "m" +: i 8));
             ]));
  ]

let taint_flow_tests =
  (* the whole point: taint flows through the *instrumented* runtime *)
  let flow_prog =
    Util.main_returning ~locals:[ array "src" 32; array "dst" 32 ]
      [
        Ir.Expr (call "strcpy" [ v "src"; str "secret" ]);
        Ir.Expr (call "sys_taint_set" [ v "src"; i 6; i 1 ]);
        Ir.Expr (call "strcpy" [ v "dst"; v "src" ]);
        ret (call "sys_taint_chk" [ v "dst"; i 6 ]);
      ]
  in
  [
    tc "taint flows through strcpy (word)" (fun () ->
        Util.check_i64 "all 6 tainted" 6L
          (Util.exit_code (Util.run_prog ~mode:Mode.shift_word flow_prog)));
    tc "taint flows through strcpy (byte)" (fun () ->
        Util.check_i64 "all 6 tainted" 6L
          (Util.exit_code (Util.run_prog ~mode:Mode.shift_byte flow_prog)));
    tc "no flow without instrumentation" (fun () ->
        Util.check_i64 "dst clean" 0L
          (Util.exit_code (Util.run_prog ~mode:Mode.Uninstrumented flow_prog)));
    tc "taint flows through software DBT too" (fun () ->
        Util.check_i64 "all 6 tainted" 6L
          (Util.exit_code
             (Util.run_prog
                ~mode:(Mode.Software_dbt { granularity = Shift_mem.Granularity.Word })
                flow_prog)));
    tc "taint flows through vformat %s" (fun () ->
        let prog =
          Util.main_returning ~locals:[ array "buf" 64; array "name" 16 ]
            [
              Ir.Expr (call "strcpy" [ v "name"; str "evil" ]);
              Ir.Expr (call "sys_taint_set" [ v "name"; i 4; i 1 ]);
              Ir.Expr (call "sprintf1" [ v "buf"; str "hello %s!"; v "name" ]);
              ret (call "sys_taint_chk" [ v "buf"; call "strlen" [ v "buf" ] ]);
            ]
        in
        Util.check_i64 "4 tainted bytes in output" 4L
          (Util.exit_code (Util.run_prog ~mode:Mode.shift_byte prog)));
    tc "arithmetic propagates taint from loaded data" (fun () ->
        let prog =
          Util.main_returning ~locals:[ array "a" 8; array "b" 8; scalar "x" ]
            [
              store64 (v "a") (i 5);
              Ir.Expr (call "sys_taint_set" [ v "a"; i 8; i 1 ]);
              set "x" (load64 (v "a") +: i 1);
              store64 (v "b") (v "x");
              ret (call "sys_taint_chk" [ v "b"; i 8 ]);
            ]
        in
        Util.check_i64 "derived value tainted" 8L
          (Util.exit_code (Util.run_prog ~mode:Mode.shift_word prog)));
    tc "constants overwrite taint" (fun () ->
        let prog =
          Util.main_returning ~locals:[ array "a" 8 ]
            [
              store64 (v "a") (i 5);
              Ir.Expr (call "sys_taint_set" [ v "a"; i 8; i 1 ]);
              store64 (v "a") (i 7);
              ret (call "sys_taint_chk" [ v "a"; i 8 ]);
            ]
        in
        Util.check_i64 "clean again" 0L
          (Util.exit_code (Util.run_prog ~mode:Mode.shift_word prog)));
  ]

let suites =
  [
    ("runtime.string", string_tests);
    ("runtime.mem", mem_tests);
    ("runtime.convert", convert_tests);
    ("runtime.format", format_tests);
    ("runtime.io", io_tests);
    ("runtime.taint-flow", taint_flow_tests);
  ]
