test/test_workloads.ml: Alcotest List Printf Shift Shift_compiler Shift_mem Shift_os Shift_policy Shift_workloads Str_exists String Util
