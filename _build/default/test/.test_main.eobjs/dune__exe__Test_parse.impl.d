test/test_parse.ml: Alcotest Char Int64 Parse Printf Shift Shift_compiler Util
