test/test_machine.ml: Alcotest Cond Instr Int64 List Program Reg Shift_isa Shift_machine Shift_mem Util
