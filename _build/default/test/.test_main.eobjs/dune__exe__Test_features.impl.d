test/test_features.ml: Alcotest Build Char Fun Int64 Ir List Printf Shift Shift_compiler Shift_mem Shift_policy Util
