test/test_misc.ml: Alcotest Build Cond Format Instr Ir List Printf Program QCheck QCheck_alcotest Reg Shift Shift_compiler Shift_isa Shift_machine Shift_os Shift_policy Str_exists String Util
