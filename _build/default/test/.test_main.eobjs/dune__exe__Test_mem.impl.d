test/test_mem.ml: Addr Granularity Int64 List Memory QCheck QCheck_alcotest Shift_mem Taint Util
