test/test_analysis.ml: Build Cond Instr Program Prov Reg Shift Shift_compiler Shift_isa Util
