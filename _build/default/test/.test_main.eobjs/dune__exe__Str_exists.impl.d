test/str_exists.ml: String
