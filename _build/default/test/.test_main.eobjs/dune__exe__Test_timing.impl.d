test/test_timing.ml: Int64 Shift_isa Shift_machine Util
