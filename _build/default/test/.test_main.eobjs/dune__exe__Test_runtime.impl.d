test/test_runtime.ml: Alcotest Build Char Int64 Ir List Shift Shift_compiler Shift_mem Util
