test/test_os.ml: Alcotest Build Ir List Shift Shift_compiler Shift_machine Shift_os Shift_policy String Util
