test/test_attacks.ml: Alcotest List Printf Shift Shift_attacks Shift_compiler Shift_os Shift_policy Str_exists Util
