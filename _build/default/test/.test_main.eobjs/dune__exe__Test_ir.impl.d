test/test_ir.ml: Alcotest Build Format Ir List Shift_compiler Str_exists Util
