test/test_session.ml: Alcotest Build Ir List Shift Shift_compiler Shift_mem Shift_policy Util
