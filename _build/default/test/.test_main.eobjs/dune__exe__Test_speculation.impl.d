test/test_speculation.ml: Alcotest Cond Instr Int64 Printf Program Reg Shift_isa Shift_machine Shift_mem Util
