test/test_isa.ml: Alcotest Cond Instr Int64 List Program Prov QCheck QCheck_alcotest Reg Shift_isa Str_exists String Util
