test/test_random.ml: Array Build Gen Ir List Printf QCheck QCheck_alcotest Random Shift Shift_compiler Shift_mem Util
