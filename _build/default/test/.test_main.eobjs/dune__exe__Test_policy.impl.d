test/test_policy.ml: Alcotest List Printf Shift Shift_attacks Shift_compiler Shift_policy Str_exists Util
