test/test_smp.ml: Alcotest Buffer Build Int64 Ir List Printf Shift Shift_compiler Shift_mem Shift_os Shift_policy String Util
