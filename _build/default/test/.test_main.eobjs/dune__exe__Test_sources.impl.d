test/test_sources.ml: Alcotest Buffer Build Fun Ir List Printf Shift Shift_compiler Shift_mem Shift_os Shift_policy Util
