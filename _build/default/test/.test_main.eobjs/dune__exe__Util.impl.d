test/util.ml: Alcotest Build Ir Shift Shift_compiler Shift_mem
