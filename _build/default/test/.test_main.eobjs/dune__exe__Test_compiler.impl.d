test/test_compiler.ml: Alcotest Array Build Int64 Ir List Printf QCheck QCheck_alcotest Shift Shift_compiler Shift_isa Shift_mem Util
