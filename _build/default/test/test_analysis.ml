(* The static may-taint analysis that drives selective compare
   relaxation. *)

open Shift_isa
module TA = Shift_compiler.Taint_analysis

let tc = Util.tc
let m ?qp op = Program.I (Instr.mk ?qp op)
let lbl l = Program.Label l

(* index the instruction *after* the given prefix of I items *)
let tainted_at items index r = TA.may_be_tainted (TA.analyse items) ~index r

let basic_tests =
  [
    tc "arguments are tainted at entry, fresh registers are not" (fun () ->
        let items = [ lbl "f"; m Instr.Nop ] in
        Util.check_bool "arg0" true (tainted_at items 0 (Reg.arg 0));
        Util.check_bool "r8" true (tainted_at items 0 Reg.ret);
        Util.check_bool "r50" false (tainted_at items 0 50));
    tc "movi cleans, loads taint" (fun () ->
        let items =
          [
            lbl "f";
            m (Instr.Movi (50, 1L));
            m (Instr.Ld { width = Instr.W8; dst = 51; addr = 50; spec = false; fill = false });
            m Instr.Nop;
          ]
        in
        Util.check_bool "r50 clean" false (tainted_at items 2 50);
        Util.check_bool "r51 tainted" true (tainted_at items 2 51));
    tc "taint propagates through arithmetic and mov" (fun () ->
        let items =
          [
            lbl "f";
            m (Instr.Ld { width = Instr.W8; dst = 50; addr = 12; spec = false; fill = false });
            m (Instr.Arith (Instr.Add, 51, 50, Instr.Imm 1L));
            m (Instr.Mov (52, 51));
            m Instr.Nop;
          ]
        in
        Util.check_bool "derived" true (tainted_at items 3 52));
    tc "clrnat (untaint) scrubs" (fun () ->
        let items =
          [
            lbl "f";
            m (Instr.Ld { width = Instr.W8; dst = 50; addr = 12; spec = false; fill = false });
            m (Instr.Clrnat 50);
            m Instr.Nop;
          ]
        in
        Util.check_bool "scrubbed" false (tainted_at items 2 50));
    tc "the clear idiom is recognised" (fun () ->
        let items =
          [
            lbl "f";
            m (Instr.Ld { width = Instr.W8; dst = 50; addr = 12; spec = false; fill = false });
            m (Instr.Arith (Instr.Xor, 50, 50, Instr.R 50));
            m Instr.Nop;
          ]
        in
        Util.check_bool "xor r,r,r" false (tainted_at items 2 50));
    tc "syscalls return clean values, calls do not" (fun () ->
        let items =
          [ lbl "f"; m Instr.Syscall; m Instr.Nop; m (Instr.Call "g"); m Instr.Nop; lbl "g"; m Instr.Ret ]
        in
        Util.check_bool "after syscall" false (tainted_at items 2 Reg.ret);
        Util.check_bool "after call" true (tainted_at items 4 Reg.ret));
    tc "predicated writes merge instead of killing" (fun () ->
        let items =
          [
            lbl "f";
            m (Instr.Ld { width = Instr.W8; dst = 50; addr = 12; spec = false; fill = false });
            m ~qp:3 (Instr.Movi (50, 0L));
            m Instr.Nop;
          ]
        in
        (* the movi may be squashed, so r50 may still be tainted *)
        Util.check_bool "still may-tainted" true (tainted_at items 2 50));
  ]

let loop_items =
  [
    lbl "f";
    m (Instr.Movi (50, 0L));
    lbl "head";
    m (Instr.Arith (Instr.Add, 51, 50, Instr.Imm 0L));
    m (Instr.Ld { width = Instr.W8; dst = 50; addr = 12; spec = false; fill = false });
    m (Instr.Cmp { cond = Cond.Ne; pt = 1; pf = 2; src1 = 51; src2 = Instr.Imm 0L; taint_aware = false });
    m ~qp:1 (Instr.Br "head");
    m Instr.Ret;
  ]

let fixpoint_tests =
  [
    tc "loop-carried taint reaches the loop head" (fun () ->
        (* at the add (index 1), r50 is clean on the first iteration but
           tainted via the back edge; may-analysis must say tainted *)
        Util.check_bool "merged over back edge" true (tainted_at loop_items 1 50));
    tc "branch join merges both paths" (fun () ->
        let items =
          [
            lbl "f";
            m (Instr.Cmp { cond = Cond.Eq; pt = 1; pf = 2; src1 = Reg.zero; src2 = Instr.Imm 0L; taint_aware = false });
            m ~qp:1 (Instr.Br "then");
            m (Instr.Movi (50, 1L));
            m (Instr.Br "join");
            lbl "then";
            m (Instr.Ld { width = Instr.W8; dst = 50; addr = 12; spec = false; fill = false });
            lbl "join";
            m Instr.Nop;
          ]
        in
        Util.check_bool "tainted on one path" true (tainted_at items 6 50));
    tc "chk.s recovery target inherits state" (fun () ->
        let items =
          [
            lbl "f";
            m (Instr.Ld { width = Instr.W8; dst = 50; addr = 12; spec = false; fill = false });
            m (Instr.Chk_s { src = 50; recovery = "rec" });
            m Instr.Ret;
            lbl "rec";
            m Instr.Nop;
          ]
        in
        Util.check_bool "recovery sees taint" true (tainted_at items 3 50));
  ]

(* the pass only relaxes compares the analysis cannot prove clean *)
let selective_relax_tests =
  let open Build in
  let open Build.Infix in
  [
    tc "counter-only loops need no relaxation" (fun () ->
        let prog =
          Util.main_returning ~locals:[ scalar "k"; scalar "sum" ]
            ([ set "sum" (i 0) ]
            @ for_up "k" (i 0) (i 10) [ set "sum" (v "sum" +: v "k") ]
            @ [ ret (v "sum") ])
        in
        let image = Shift.Session.build ~with_runtime:false ~mode:Shift_compiler.Mode.shift_word prog in
        Util.check_int "no relax code" 0
          (Shift_isa.Program.count_prov image.Shift_compiler.Image.program Prov.Cmp_relax));
    tc "loaded data still gets relaxation" (fun () ->
        let prog =
          Util.main_returning ~locals:[ array "a" 8; scalar "x" ]
            [
              store64 (v "a") (i 1);
              set "x" (load64 (v "a"));
              when_ (v "x" ==: i 1) [ ret (i 5) ];
              ret (i 0);
            ]
        in
        let image = Shift.Session.build ~with_runtime:false ~mode:Shift_compiler.Mode.shift_word prog in
        Util.check_bool "relax present" true
          (Shift_isa.Program.count_prov image.Shift_compiler.Image.program Prov.Cmp_relax > 0));
  ]

let suites =
  [
    ("analysis.transfer", basic_tests);
    ("analysis.fixpoint", fixpoint_tests);
    ("analysis.selective-relax", selective_relax_tests);
  ]
