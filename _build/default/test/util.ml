(* Shared helpers for the test suites. *)

let check_i64 msg expected actual = Alcotest.(check int64) msg expected actual
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let tc name f = Alcotest.test_case name `Quick f

(* Run a tiny guest program (with the runtime linked) and return its
   report. *)
let run_prog ?policy ?setup ?(mode = Shift_compiler.Mode.Uninstrumented) prog =
  Shift.Session.run ?policy ?setup ~fuel:200_000_000 ~mode prog

let exit_code (r : Shift.Report.t) =
  match r.outcome with
  | Shift.Report.Exited code -> code
  | o -> Alcotest.failf "expected normal exit, got %a" Shift.Report.pp_outcome o

(* a main() that returns the value of an expression built from the body *)
let main_returning ?(globals = []) ?(locals = []) body =
  { Ir.globals; funcs = [ Build.func "main" ~params:[] ~locals body ] }

let all_modes =
  [
    Shift_compiler.Mode.Uninstrumented;
    Shift_compiler.Mode.shift_word;
    Shift_compiler.Mode.shift_byte;
    Shift_compiler.Mode.Shift
      { granularity = Shift_mem.Granularity.Word; enh = Shift_compiler.Mode.enh1 };
    Shift_compiler.Mode.Shift
      { granularity = Shift_mem.Granularity.Byte; enh = Shift_compiler.Mode.enh_both };
    Shift_compiler.Mode.Software_dbt { granularity = Shift_mem.Granularity.Word };
  ]
