(* shiftc: command-line driver for the SHIFT reproduction.

   - [shiftc list]                      what's runnable
   - [shiftc run gzip --mode word]      run a kernel, print the report
   - [shiftc batch -j 4]                run the kernel suite as a fleet
   - [shiftc attack tar --exploit]      run a Table-2 case
   - [shiftc httpd --size 4096]         run the web-server workload
   - [shiftc disasm gzip --mode word]   instrumented listing
   - [shiftc policies]                  the policy catalogue

   Every run-like command takes [--json] to emit the report through
   lib/core/results (the bench JSON schema) instead of pretty text. *)

open Cmdliner
module Mode = Shift_compiler.Mode
module Spec = Shift_workloads.Spec
module Httpd = Shift_workloads.Httpd
module Policy = Shift_policy.Policy
module Case = Shift_attacks.Attack_case
module Stats = Shift_machine.Stats

(* ---------- shared options ---------- *)

(* mode spellings are parsed by Mode.of_string — one parser shared with
   the serve wire protocol, so the CLI and the daemon can never drift *)
let mode_conv =
  Arg.conv
    ( (fun s -> Result.map_error (fun e -> `Msg e) (Mode.of_string s)),
      fun ppf m -> Mode.pp ppf m )

let mode_arg =
  Arg.(
    value
    & opt mode_conv Mode.shift_word
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:
          "Compilation mode: $(b,none), $(b,word), $(b,byte), optionally with \
           +setclr/+tacmp/+both architectural enhancements, or $(b,dbt) for \
           the software baseline.")

(* backend spellings are parsed by Backend.of_string — the same single
   name table the serve wire protocol and the catalog use *)
let backend_conv =
  Arg.conv
    ( (fun s ->
        Result.map_error (fun e -> `Msg e) (Shift.Backend.of_string s)),
      fun ppf b -> Shift.Backend.pp ppf b )

let backend_arg =
  Arg.(
    value
    & opt backend_conv Shift.Backend.default
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Taint-tracking backend: $(b,nat) (on-core NaT reuse, the paper's \
           design and the default), $(b,coproc) (a decoupled tag coprocessor \
           draining a bounded propagation queue, so checks resolve with a \
           measurable lag), or $(b,none) (uninstrumented baseline).  \
           Non-nat backends run the guest uninstrumented regardless of \
           $(b,--mode).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the run's report as JSON via the bench results schema \
           instead of pretty-printed text.")

let no_superblocks_arg =
  Arg.(
    value & flag
    & info [ "no-superblocks" ]
        ~doc:
          "Run on the pure interpreter, never compiling hot regions to \
           superblocks.  On and off are observationally identical — same \
           counters, alerts, traces and JSON — so this is an escape hatch \
           for differential testing and debugging, not a semantic knob.")

let sb_stats_arg =
  Arg.(
    value & flag
    & info [ "sb-stats" ]
        ~doc:
          "Print the host-side superblock-compiler counters (blocks \
           compiled, cache hits/misses, invalidations, interpreter-fallback \
           instructions) after the report.  With $(b,--json) they form a \
           separate trailing JSON line, so the report itself stays \
           byte-identical with and without $(b,--no-superblocks).")

let sb_stats_json (sb : Stats.superblocks) =
  Shift.Results.Obj
    [
      ( "superblocks",
        Shift.Results.Obj
          [
            ("compiled", Shift.Results.Int sb.Stats.sb_compiled);
            ("hits", Shift.Results.Int sb.Stats.sb_hits);
            ("misses", Shift.Results.Int sb.Stats.sb_misses);
            ("invalidations", Shift.Results.Int sb.Stats.sb_invalidations);
            ("fallback", Shift.Results.Int sb.Stats.sb_fallback);
          ] );
    ]

let print_sb_stats ~json sb =
  if json then print_endline (Shift.Results.to_string (sb_stats_json sb))
  else Format.printf "superblocks:  %a@." Stats.pp_superblocks sb

let print_json (r : Shift.Report.t) =
  print_endline (Shift.Results.to_string (Shift.Results.of_report r))

let print_report (r : Shift.Report.t) =
  Format.printf "outcome:      %a@." Shift.Report.pp_outcome r.Shift.Report.outcome;
  List.iter
    (fun a -> Format.printf "logged alert: %s@." (Shift_policy.Alert.to_string a))
    r.Shift.Report.logged;
  let s = r.Shift.Report.stats in
  Format.printf "instructions: %d@.cycles:       %d@.loads/stores: %d/%d@."
    s.Stats.instructions s.Stats.cycles s.Stats.loads s.Stats.stores;
  Format.printf "io cycles:    %d@." s.Stats.io_cycles;
  Format.printf "cache:        %d hits / %d misses (%.1f%% hit rate)@."
    r.Shift.Report.cache_hits r.Shift.Report.cache_misses
    (100.0 *. Shift.Report.cache_hit_rate r);
  let instr = Stats.instrumentation_slots s in
  if instr > 0 then
    Format.printf "instrumentation slots: %d (%.1f%% of issue slots)@." instr
      (100.0 *. float_of_int instr /. float_of_int (Stats.total_slots s));
  if String.length r.Shift.Report.output > 0 then
    Format.printf "guest output (%d bytes):@.%s@."
      (String.length r.Shift.Report.output)
      (if String.length r.Shift.Report.output > 2048 then
         String.sub r.Shift.Report.output 0 2048 ^ "..."
       else r.Shift.Report.output)

(* ---------- commands ---------- *)

let list_cmd =
  let run () =
    print_endline "kernels (shiftc run NAME):";
    List.iter
      (fun (k : Spec.kernel) ->
        Printf.printf "  %-8s %s (default input %d bytes)\n" k.Spec.name
          k.Spec.description k.Spec.default_size)
      Spec.all;
    print_endline "attack cases (shiftc attack NAME):";
    List.iter
      (fun (c : Case.t) ->
        Printf.printf "  %-22s %-22s %s\n" c.Case.program_name c.Case.attack_type
          c.Case.cve)
      Shift_attacks.Attacks.all;
    print_endline "cross-process attack cases (multi-process OS personality):";
    List.iter
      (fun (c : Case.t) ->
        Printf.printf "  %-22s %-22s %s\n" c.Case.program_name c.Case.attack_type
          c.Case.cve)
      Shift_attacks.Attacks.multiproc;
    print_endline "other: shiftc batch (the kernel suite as a fleet), shiftc httpd";
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List runnable kernels and attack cases")
    Term.(const run $ const ())

let find_kernel name =
  match Spec.find name with
  | Some k -> Ok k
  | None ->
      Error
        (Printf.sprintf "unknown kernel %S; try: %s" name
           (String.concat ", " (List.map (fun (k : Spec.kernel) -> k.Spec.name) Spec.all)))

let run_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc:"Kernel name.")
  in
  let size_arg =
    Arg.(
      value & opt (some int) None
      & info [ "size" ] ~docv:"BYTES" ~doc:"Input size (default: the kernel's).")
  in
  let safe_arg =
    Arg.(value & flag & info [ "safe" ] ~doc:"Leave the input file untainted.")
  in
  let every_arg =
    Arg.(
      value & opt (some int) None
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Checkpoint the session to $(b,--checkpoint-file) after every \
             $(docv) executed instructions.  Slicing never changes the \
             result: counters are byte-identical however a run is cut.")
  in
  let file_arg =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint-file" ] ~docv:"FILE"
          ~doc:"Where to write checkpoints (required with --checkpoint-every).")
  in
  let limit_arg =
    Arg.(
      value & opt (some int) None
      & info [ "checkpoint-limit" ] ~docv:"K"
          ~doc:
            "Stop mid-flight after writing the $(docv)-th checkpoint and \
             exit with status 3, leaving the run resumable with \
             $(b,shiftc resume) — a deterministic stand-in for a crash.")
  in
  let run name mode size safe json every file limit no_sb sb_stats backend =
    match find_kernel name with
    | Error e ->
        prerr_endline e;
        1
    | Ok k -> (
        let mode = Shift.Session.effective_mode ~backend mode in
        let config =
          Shift.Session.Config.make ~policy:Policy.default
            ~setup:(Spec.setup ?size ~tainted:(not safe) k)
            ~superblocks:(not no_sb) ~backend ()
        in
        let finish live =
          let r = Shift.Session.report live in
          if json then print_json r
          else begin
            Format.printf "kernel %s under %a@." k.Spec.name Mode.pp mode;
            print_report r
          end;
          if sb_stats then
            print_sb_stats ~json (Shift.Session.superblock_stats live);
          0
        in
        match (every, file) with
        | None, _ ->
            let live =
              Shift.Session.start ~config (Shift.Session.build ~backend ~mode k.Spec.program)
            in
            (match Shift.Session.advance live ~budget:max_int with
            | `Finished _ | `Yielded -> ());
            finish live
        | Some n, None ->
            ignore n;
            prerr_endline "--checkpoint-every requires --checkpoint-file";
            1
        | Some n, Some path when n > 0 ->
            let meta =
              [
                ("kernel", k.Spec.name);
                ("mode", Format.asprintf "%a" Mode.pp mode);
              ]
            in
            let live =
              Shift.Session.start ~config (Shift.Session.build ~backend ~mode k.Spec.program)
            in
            let written = ref 0 in
            let rec loop () =
              match Shift.Session.advance live ~budget:n with
              | `Finished _ -> finish live
              | `Yielded ->
                  Shift.Snapshot.save path (Shift.Session.checkpoint ~meta live);
                  incr written;
                  if match limit with Some k -> !written >= k | None -> false
                  then begin
                    Printf.eprintf
                      "checkpoint limit reached after %d checkpoints; resume \
                       with: shiftc resume %s\n"
                      !written path;
                    3
                  end
                  else loop ()
            in
            loop ()
        | Some _, Some _ ->
            prerr_endline "--checkpoint-every must be positive";
            1)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a SPEC-like kernel on the simulated machine")
    Term.(
      const run $ name_arg $ mode_arg $ size_arg $ safe_arg $ json_arg
      $ every_arg $ file_arg $ limit_arg $ no_superblocks_arg $ sb_stats_arg
      $ backend_arg)

let resume_cmd =
  let file_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A snapshot written by shiftc run --checkpoint-file.")
  in
  let run path json =
    match Shift.Snapshot.load path with
    | Error e ->
        Printf.eprintf "%s: %s\n" path e;
        1
    | Ok snap ->
        let live = Shift.Session.restore snap in
        (match Shift.Session.advance live ~budget:max_int with
        | `Finished _ | `Yielded -> ());
        let r = Shift.Session.report live in
        if json then print_json r
        else begin
          List.iter
            (fun (k, v) -> Format.printf "%s: %s@." k v)
            snap.Shift.Snapshot.meta;
          print_report r
        end;
        0
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Restore a checkpointed session and run it to completion.  The \
          snapshot is self-contained (it embeds the compiled image), and the \
          resumed run's report is byte-identical to an unbroken run's.")
    Term.(const run $ file_arg $ json_arg)

let batch_cmd =
  let names_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"KERNEL"
          ~doc:"Kernels to batch (default: the whole suite).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Domains to run the sessions on (0 = the runtime's \
             recommendation).  The aggregate output is byte-identical at \
             any $(docv).")
  in
  let size_arg =
    Arg.(
      value & opt (some int) None
      & info [ "size" ] ~docv:"BYTES" ~doc:"Input size (default: each kernel's).")
  in
  let safe_arg =
    Arg.(value & flag & info [ "safe" ] ~doc:"Leave the input files untainted.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Rerun a crashed job up to $(docv) extra times (from its last \
             in-memory checkpoint when --checkpoint-every is set).")
  in
  let every_arg =
    Arg.(
      value & opt (some int) None
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Drive each session in $(docv)-instruction slices and keep an \
             in-memory checkpoint refreshed for crash recovery.")
  in
  let poison_arg =
    Arg.(
      value & flag
      & info [ "poison" ]
          ~doc:
            "Append a job whose image thunk raises, to demonstrate that the \
             supervisor contains the crash while every other job still \
             completes.")
  in
  let run mode names jobs size safe json retries every poison no_sb backend =
    let mode = Shift.Session.effective_mode ~backend mode in
    let kernels =
      match names with
      | [] -> List.map Result.ok Spec.all
      | names -> List.map find_kernel names
    in
    match List.partition_map (function Ok k -> Left k | Error e -> Right e) kernels with
    | _, (e :: _ as errors) ->
        List.iter prerr_endline errors;
        ignore e;
        1
    | kernels, [] ->
        let session_jobs =
          List.map
            (fun (k : Spec.kernel) ->
              Shift.Fleet.job ~name:k.Spec.name
                ~config:
                  (Shift.Session.Config.make ~policy:Policy.default
                     ~setup:(Spec.setup ?size ~tainted:(not safe) k)
                     ~superblocks:(not no_sb) ~backend ())
                (fun () -> Shift.Session.build ~backend ~mode k.Spec.program))
            kernels
        in
        let session_jobs =
          if poison then
            session_jobs
            @ [
                Shift.Fleet.job ~name:"poisoned" (fun () ->
                    failwith "poisoned job: image thunk raised");
              ]
          else session_jobs
        in
        let fleet =
          Shift.Fleet.run ~domains:jobs ~retries ?checkpoint_every:every
            session_jobs
        in
        if json then
          print_endline (Shift.Results.to_string (Shift.Fleet.to_json fleet))
        else begin
          Format.printf "batch: %d sessions under %a@."
            (List.length session_jobs) Mode.pp mode;
          Format.printf "%a@." Shift.Fleet.pp fleet
        end;
        if fleet.Shift.Fleet.exited = List.length kernels then 0 else 1
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run many kernel sessions as a supervised fleet across domains with \
          a deterministic aggregate report")
    Term.(
      const run $ mode_arg $ names_arg $ jobs_arg $ size_arg $ safe_arg
      $ json_arg $ retries_arg $ every_arg $ poison_arg $ no_superblocks_arg
      $ backend_arg)

let attack_cmd =
  let name_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Attack case (prefix of the program name).")
  in
  let benign_arg =
    Arg.(value & flag & info [ "benign" ] ~doc:"Use the benign input instead of the exploit.")
  in
  let run name mode benign json no_sb backend =
    match Shift_attacks.Attacks.find name with
    | None ->
        prerr_endline "unknown attack case; see `shiftc list`";
        1
    | Some c ->
        let input = if benign then c.Case.benign else c.Case.exploit in
        (* Case.run brings a multi-process case's process table and aux
           images along; single-process cases run exactly as before *)
        let r = Case.run ~superblocks:(not no_sb) ~backend ~mode ~input c in
        if json then print_json r
        else begin
          Format.printf "%s (%s) — %s input under %a@." c.Case.program_name
            c.Case.cve
            (if benign then "benign" else "exploit")
            Mode.pp mode;
          Format.printf "policies: %s@." c.Case.detection_policies;
          print_report r
        end;
        0
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run a Table-2 security-evaluation case")
    Term.(
      const run $ name_arg $ mode_arg $ benign_arg $ json_arg
      $ no_superblocks_arg $ backend_arg)

let httpd_cmd =
  let size_arg =
    Arg.(value & opt int 4096 & info [ "size" ] ~docv:"BYTES" ~doc:"Static file size.")
  in
  let requests_arg =
    Arg.(
      value & opt int 10
      & info [ "requests" ] ~docv:"N"
          ~doc:
            "GET requests queued up front for the server to process (the \
             workload replays a canned request stream through the resumable \
             engine; it does not listen for live connections).")
  in
  let workers_arg =
    Arg.(
      value & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker-process mode: the master forks $(docv) workers (clamped \
             to 1..8) that drain the shared request queue under the \
             multi-process OS personality; the master reaps them and exits \
             with the total served.  Incompatible with $(b,--backend coproc).")
  in
  let run mode file_size requests json backend workers =
    if workers <> None && backend = Shift.Backend.Coproc then begin
      prerr_endline "httpd: --workers is incompatible with --backend coproc";
      1
    end
    else begin
      (* driven through the resumable engine in bounded slices, not one
         monolithic run — same counters either way *)
      let r = Httpd.serve ~mode ~file_size ~requests ~backend ?workers () in
      if json then print_json r
      else begin
        Format.printf "httpd%s: %d requests of a %d-byte file under %a@."
          (match workers with
          | Some w -> Printf.sprintf " (%d workers)" w
          | None -> "")
          requests file_size Mode.pp mode;
        let s = r.Shift.Report.stats in
        Format.printf "outcome: %a; cycles/request: %d@." Shift.Report.pp_outcome
          r.Shift.Report.outcome (s.Stats.cycles / max requests 1)
      end;
      0
    end
  in
  Cmd.v
    (Cmd.info "httpd" ~doc:"Run the web-server workload (the Figure-6 substrate)")
    Term.(
      const run $ mode_arg $ size_arg $ requests_arg $ json_arg $ backend_arg
      $ workers_arg)

let disasm_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc:"Kernel name.")
  in
  let run name mode backend =
    match find_kernel name with
    | Error e ->
        prerr_endline e;
        1
    | Ok k ->
        let image = Shift.Session.build ~backend ~mode k.Spec.program in
        Format.printf "%a@." Shift_isa.Program.pp_listing
          image.Shift_compiler.Image.program;
        0
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Print the (instrumented) listing of a kernel")
    Term.(const run $ name_arg $ mode_arg $ backend_arg)

let trace_cmd =
  let name_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"IMAGE"
          ~doc:"What to trace: an attack case (prefix of the program name) or a kernel.")
  in
  let benign_arg =
    Arg.(
      value & flag
      & info [ "benign" ]
          ~doc:"For attack cases: use the benign input instead of the exploit.")
  in
  let ring_arg =
    Arg.(
      value & opt int 4096
      & info [ "ring" ] ~docv:"N"
          ~doc:"Capacity of the event ring buffer (older events are dropped).")
  in
  let events_arg =
    Arg.(
      value & opt (some string) None
      & info [ "events" ] ~docv:"KINDS"
          ~doc:
            "Comma-separated event kinds to record \
             (birth,load,prop,store,purge,check,sink); default all.")
  in
  let parse_kinds = function
    | None -> Ok None
    | Some s ->
        let names = String.split_on_char ',' s in
        let kinds = List.map Shift.Flowtrace.kind_of_string names in
        if List.mem None kinds then
          Error (Printf.sprintf "unknown event kind in %S" s)
        else Ok (Some (List.filter_map Fun.id kinds))
  in
  (* an attack case (policy + canned input) or a kernel (default policy,
     tainted input file) *)
  let resolve name =
    match Shift_attacks.Attacks.find name with
    | Some c ->
        Ok
          (fun ~benign ~trace ~superblocks ~backend ~mode ->
            let input = if benign then c.Case.benign else c.Case.exploit in
            ( c.Case.program_name,
              Case.config ~trace ~superblocks ~backend ~mode ~input c,
              Case.image ~backend ~mode c ))
    | None -> (
        match find_kernel name with
        | Ok k ->
            Ok
              (fun ~benign:_ ~trace ~superblocks ~backend ~mode ->
                let mode = Shift.Session.effective_mode ~backend mode in
                ( k.Spec.name,
                  Shift.Session.Config.make ~policy:Policy.default
                    ~setup:(Spec.setup ~tainted:true k)
                    ~trace ~superblocks ~backend (),
                  Shift.Session.build ~backend ~mode k.Spec.program ))
        | Error _ ->
            Error
              (Printf.sprintf
                 "unknown image %S: not an attack case or kernel (see `shiftc \
                  list`)"
                 name))
  in
  let run name mode benign ring events json no_sb backend =
    match (resolve name, parse_kinds events) with
    | Error e, _ | _, Error e ->
        prerr_endline e;
        1
    | Ok pick, Ok only ->
        (* effective_mode is idempotent, so resolving it here (for the
           printed labels) and again inside the builders agrees *)
        let mode = Shift.Session.effective_mode ~backend mode in
        let label, config, image =
          pick ~benign
            ~trace:{ Shift.Flowtrace.capacity = ring; only }
            ~superblocks:(not no_sb) ~backend ~mode
        in
        let live = Shift.Session.start ~config image in
        (match Shift.Session.advance live ~budget:max_int with
        | `Finished _ | `Yielded -> ());
        let report = Shift.Session.report live in
        let ft = Option.get (Shift.Session.flowtrace live) in
        if json then
          print_string
            (Shift.Flow.jsonl
               ~meta:
                 [
                   ("image", Shift.Results.String label);
                   ("mode", Shift.Results.String (Format.asprintf "%a" Mode.pp mode));
                 ]
               ~outcome:report.Shift.Report.outcome ft)
        else begin
          Format.printf "flow trace of %s under %a@." label Mode.pp mode;
          Format.printf "%a@." Shift.Flow.pp ft;
          Format.printf "outcome: %a@." Shift.Report.pp_outcome
            report.Shift.Report.outcome
        end;
        0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run an attack case or kernel with Flowtrace enabled and dump the \
          taint-flow events (JSONL with --json)")
    Term.(
      const run $ name_arg $ mode_arg $ benign_arg $ ring_arg $ events_arg
      $ json_arg $ no_superblocks_arg $ backend_arg)

let leak_cmd =
  let name_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"CASE"
          ~doc:
            "Side-channel case (prefix of the program name, e.g. aes-table \
             or aes-ct).")
  in
  let clause_conv =
    Arg.conv
      ( (fun s -> Result.map_error (fun e -> `Msg e) (Shift.Leak.clause_of_string s)),
        fun ppf c -> Format.pp_print_string ppf (Shift.Leak.clause_to_string c) )
  in
  let clause_arg =
    Arg.(
      value & opt clause_conv Shift.Leak.Ct_seq
      & info [ "clause" ] ~docv:"CLAUSE"
          ~doc:
            "Speculation-contract clause fixing what the attacker observes: \
             $(b,ct-seq) (the cache-set sequence) or $(b,ct-none) (nothing).")
  in
  let variants_arg =
    Arg.(
      value & opt int 4
      & info [ "variants" ] ~docv:"N"
          ~doc:
            "Input variants to compare (at least 2); they differ only in the \
             case's tainted bytes, variant 0 is the baseline.")
  in
  let trace_out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Also write the baseline variant's hardware trace to $(docv) as \
             JSONL (one access per line, tainted accesses marked).")
  in
  let run name mode clause variants json trace_out no_sb backend =
    if variants < 2 then begin
      prerr_endline "leak: --variants must be at least 2";
      1
    end
    else
      match
        Shift_catalog.Catalog.leak_start ~superblocks:(not no_sb) ~backend
          ~mode name
      with
      | Error e ->
          prerr_endline e;
          1
      | Ok start ->
          let verdict = Shift.Leak.detect ~clause ~count:variants ~start () in
          (match trace_out with
          | None -> ()
          | Some file ->
              (* the detector does not keep its variant sessions; re-run
                 the (deterministic) baseline for the exportable trace *)
              let live = start 0 in
              (match Shift.Session.advance live ~budget:max_int with
              | `Finished _ | `Yielded -> ());
              let oc = open_out file in
              List.iter
                (fun j ->
                  output_string oc (Shift.Results.to_string ~minify:true j);
                  output_char oc '\n')
                (Shift.Leak.trace_json live);
              close_out oc);
          if json then
            print_endline
              (Shift.Results.to_string (Shift.Leak.verdict_to_json verdict))
          else begin
            Format.printf "leak probe of %s under %a@." name Mode.pp mode;
            Format.printf "%a@." Shift.Leak.pp_verdict verdict
          end;
          0
  in
  Cmd.v
    (Cmd.info "leak"
       ~doc:
         "Probe an attack case for cache side-channel leaks: re-run it under \
          inputs differing only in tainted bytes and flag any \
          contract-visible divergence of the hardware trace")
    Term.(
      const run $ name_arg $ mode_arg $ clause_arg $ variants_arg $ json_arg
      $ trace_out_arg $ no_superblocks_arg $ backend_arg)

let exec_cmd =
  let file_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A tinyc source file (see lib/ir/parse.mli).")
  in
  let taint_file_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string string) []
      & info [ "file" ] ~docv:"PATH=CONTENT"
          ~doc:"Install a (tainted) file into the guest's file system; repeatable.")
  in
  let request_arg =
    Arg.(
      value & opt_all string []
      & info [ "request" ] ~docv:"PAYLOAD"
          ~doc:"Queue a network connection the guest can accept; repeatable.")
  in
  let threads_arg =
    Arg.(
      value & flag
      & info [ "threads" ]
          ~doc:"Run with SMP support so the guest may sys_spawn/sys_join.")
  in
  let run path mode files requests threads =
    match Parse.program_of_file path with
    | exception Parse.Parse_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        1
    | prog -> (
        let policy = { Policy.default with Policy.taint_files = true } in
        let setup w =
          List.iter (fun (p, c) -> Shift_os.World.add_file w p c) files;
          List.iter (Shift_os.World.queue_request w) requests
        in
        let runner ~policy ~setup ~mode prog =
          if threads then Shift.Session.run_mt ~policy ~setup ~mode prog
          else Shift.Session.run ~policy ~setup ~mode prog
        in
        match runner ~policy ~setup ~mode prog with
        | r ->
            print_report r;
            0
        | exception Shift_compiler.Compile.Error msg ->
            Printf.eprintf "%s: %s\n" path msg;
            1)
  in
  Cmd.v
    (Cmd.info "exec" ~doc:"Compile and run a tinyc source file under SHIFT")
    Term.(const run $ file_arg $ mode_arg $ taint_file_arg $ request_arg $ threads_arg)

let policies_cmd =
  let run () =
    List.iter print_endline (Policy.describe (Policy.all_on ~document_root:"<root>"));
    0
  in
  Cmd.v (Cmd.info "policies" ~doc:"Show the policy catalogue (paper Table 1)")
    Term.(const run $ const ())

(* ---------- the resident service ---------- *)

module Protocol = Shift.Protocol
module Serve = Shift.Serve

let socket_arg =
  Arg.(
    value
    & opt string Serve.Server.default_config.Serve.Server.socket_path
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on.")

let serve_cmd =
  let workers_arg =
    Arg.(
      value & opt int 0
      & info [ "j"; "workers" ] ~docv:"N"
          ~doc:
            "Worker domains driving the admitted sessions (0 = the runtime's \
             recommendation).  Results are byte-identical at any $(docv).")
  in
  let slice_arg =
    Arg.(
      value & opt int Serve.Server.default_config.Serve.Server.slice
      & info [ "slice" ] ~docv:"N"
          ~doc:
            "Engine budget per advance, in instructions.  Slicing never \
             changes results: counters are byte-identical however a session \
             is cut.")
  in
  let max_bytes_arg =
    Arg.(
      value & opt int Protocol.default_max_request_bytes
      & info [ "max-request-bytes" ] ~docv:"BYTES"
          ~doc:
            "Cap on one request line's length, advertised in the hello ack; \
             longer lines are refused with the $(b,oversized) error.")
  in
  let checkpoint_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:
            "Spill each parked session's snapshot to $(docv)/job-N.snap.json \
             (removed when the job completes) so orphaned work survives a \
             daemon crash and can be picked up with $(b,shiftc resume).")
  in
  let migrate_arg =
    Arg.(
      value & opt (some int) None
      & info [ "migrate-every" ] ~docv:"SLICES"
          ~doc:
            "Default migration cadence: checkpoint each session and hand it \
             to another worker every $(docv) slices, for requests that do \
             not choose their own.  Migration never changes results.")
  in
  let run socket workers slice max_bytes checkpoint_dir migrate =
    let config =
      {
        Serve.Server.socket_path = socket;
        workers;
        slice;
        max_request_bytes = max_bytes;
        checkpoint_dir;
        migrate_every = migrate;
      }
    in
    Serve.Server.run
      ~on_ready:(fun c ->
        Printf.eprintf "shiftc serve: listening on %s\n%!"
          c.Serve.Server.socket_path)
      ~catalog:Shift_catalog.Catalog.standard config;
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident taint-tracking service: admit jobs over a \
          Unix-domain socket (versioned JSONL, see docs/PROTOCOL.md) and \
          drive their sessions in engine slices on a resident domain pool, \
          with deadlines, crash retries and live migration.  Serves until a \
          drain request completes.")
    Term.(
      const run $ socket_arg $ workers_arg $ slice_arg $ max_bytes_arg
      $ checkpoint_dir_arg $ migrate_arg)

(* ---------- the client ---------- *)

(* run one request against the daemon and render the response.

   [project] picks the payload to print from a successful response's
   ["result"]: job commands print result.report (byte-identical to the
   one-shot command's --json output — the determinism gate cmp's the
   two), batch prints the whole aggregate, status/drain the result
   itself.  [--raw] prints the response line as it came off the wire. *)
let client_round ~socket ~raw ~project env =
  match Serve.Client.connect socket with
  | Error e ->
      prerr_endline e;
      1
  | Ok c ->
      let outcome =
        match Serve.Client.request c env with
        | Error e ->
            prerr_endline e;
            1
        | Ok json when raw ->
            print_endline (Protocol.to_line json);
            if Protocol.response_ok json then 0 else 1
        | Ok json when not (Protocol.response_ok json) ->
            prerr_endline (Protocol.to_line json);
            1
        | Ok json -> (
            match Shift.Results.member "result" json with
            | None ->
                prerr_endline "malformed response: no \"result\" field";
                1
            | Some result -> (
                match project result with
                | Some payload ->
                    print_endline (Shift.Results.to_string payload);
                    0
                | None ->
                    prerr_endline "malformed response: unexpected result shape";
                    1))
      in
      Serve.Client.close c;
      outcome

let whole_result = Option.some
let report_field r = Shift.Results.member "report" r

let tenant_arg =
  Arg.(
    value & opt (some string) None
    & info [ "tenant" ] ~docv:"NAME"
        ~doc:"Tenant label echoed in the response (multi-tenant bookkeeping).")

let deadline_arg =
  Arg.(
    value & opt (some int) None
    & info [ "deadline" ] ~docv:"FUEL"
        ~doc:
          "Per-request fuel deadline: the session's instruction budget is \
           capped at $(docv), timing out runaway guests.")

let migrate_every_arg =
  Arg.(
    value & opt (some int) None
    & info [ "migrate-every" ] ~docv:"SLICES"
        ~doc:
          "Checkpoint the session and hand it to another worker every \
           $(docv) slices.  Migration never changes the result.")

let id_arg =
  Arg.(
    value & opt (some string) None
    & info [ "id" ] ~docv:"ID"
        ~doc:
          "Request id echoed in the response (default: derived from the \
           request).")

let raw_arg =
  Arg.(
    value & flag
    & info [ "raw" ]
        ~doc:"Print the raw response line instead of the projected result.")

let envelope ?id ?tenant ?deadline ?migrate_every request =
  { Protocol.id; tenant; deadline; migrate_every; request }

let client_run_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc:"Kernel name.")
  in
  let size_arg =
    Arg.(
      value & opt (some int) None
      & info [ "size" ] ~docv:"BYTES" ~doc:"Input size (default: the kernel's).")
  in
  let safe_arg =
    Arg.(value & flag & info [ "safe" ] ~doc:"Leave the input file untainted.")
  in
  let run socket raw id tenant deadline migrate name mode size safe no_sb
      backend =
    client_round ~socket ~raw ~project:report_field
      (envelope
         ~id:(Option.value id ~default:("run:" ^ name))
         ?tenant ?deadline ?migrate_every:migrate
         (Protocol.Run
            {
              kernel = name;
              mode;
              size;
              safe;
              superblocks = not no_sb;
              backend;
            }))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Submit a kernel run to the daemon and print its report")
    Term.(
      const run $ socket_arg $ raw_arg $ id_arg $ tenant_arg $ deadline_arg
      $ migrate_every_arg $ name_arg $ mode_arg $ size_arg $ safe_arg
      $ no_superblocks_arg $ backend_arg)

let client_attack_cmd =
  let name_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Attack case (prefix of the program name).")
  in
  let benign_arg =
    Arg.(value & flag & info [ "benign" ] ~doc:"Use the benign input instead of the exploit.")
  in
  let run socket raw id tenant deadline migrate name mode benign no_sb backend =
    client_round ~socket ~raw ~project:report_field
      (envelope
         ~id:(Option.value id ~default:("attack:" ^ name))
         ?tenant ?deadline ?migrate_every:migrate
         (Protocol.Attack
            { case = name; mode; benign; superblocks = not no_sb; backend }))
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Submit a Table-2 attack case to the daemon and print its report")
    Term.(
      const run $ socket_arg $ raw_arg $ id_arg $ tenant_arg $ deadline_arg
      $ migrate_every_arg $ name_arg $ mode_arg $ benign_arg
      $ no_superblocks_arg $ backend_arg)

let client_trace_cmd =
  let name_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"IMAGE"
          ~doc:"What to trace: an attack case (prefix of the program name) or a kernel.")
  in
  let benign_arg =
    Arg.(
      value & flag
      & info [ "benign" ]
          ~doc:"For attack cases: use the benign input instead of the exploit.")
  in
  let ring_arg =
    Arg.(
      value & opt int 4096
      & info [ "ring" ] ~docv:"N"
          ~doc:"Capacity of the event ring buffer (older events are dropped).")
  in
  let events_arg =
    Arg.(
      value & opt (some string) None
      & info [ "events" ] ~docv:"KINDS"
          ~doc:
            "Comma-separated event kinds to record \
             (birth,load,prop,store,purge,check,sink); default all.")
  in
  let run socket raw id tenant deadline migrate name mode benign ring events
      no_sb backend =
    client_round ~socket ~raw ~project:report_field
      (envelope
         ~id:(Option.value id ~default:("trace:" ^ name))
         ?tenant ?deadline ?migrate_every:migrate
         (Protocol.Trace
            {
              image = name;
              mode;
              benign;
              ring;
              only = events;
              superblocks = not no_sb;
              backend;
            }))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Submit a traced run to the daemon; the report carries the \
          flow-trace summary (for the full event stream use shiftc trace)")
    Term.(
      const run $ socket_arg $ raw_arg $ id_arg $ tenant_arg $ deadline_arg
      $ migrate_every_arg $ name_arg $ mode_arg $ benign_arg $ ring_arg
      $ events_arg $ no_superblocks_arg $ backend_arg)

let client_batch_cmd =
  let names_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"KERNEL" ~doc:"Kernels to batch (default: the whole suite).")
  in
  let size_arg =
    Arg.(
      value & opt (some int) None
      & info [ "size" ] ~docv:"BYTES" ~doc:"Input size (default: each kernel's).")
  in
  let safe_arg =
    Arg.(value & flag & info [ "safe" ] ~doc:"Leave the input files untainted.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retry a crashed job up to $(docv) extra times from its checkpoint.")
  in
  let run socket raw id tenant deadline migrate names mode size safe retries
      no_sb backend =
    client_round ~socket ~raw ~project:whole_result
      (envelope
         ~id:(Option.value id ~default:"batch")
         ?tenant ?deadline ?migrate_every:migrate
         (Protocol.Batch
            {
              kernels = names;
              mode;
              size;
              safe;
              retries;
              superblocks = not no_sb;
              backend;
            }))
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Submit a kernel batch to the daemon and print the aggregate \
          (byte-identical to shiftc batch --json)")
    Term.(
      const run $ socket_arg $ raw_arg $ id_arg $ tenant_arg $ deadline_arg
      $ migrate_every_arg $ names_arg $ mode_arg $ size_arg $ safe_arg
      $ retries_arg $ no_superblocks_arg $ backend_arg)

let client_status_cmd =
  let run socket raw id tenant =
    client_round ~socket ~raw ~project:whole_result
      (envelope ?id ?tenant Protocol.Status)
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Print the daemon's scheduler counters")
    Term.(const run $ socket_arg $ raw_arg $ id_arg $ tenant_arg)

let client_drain_cmd =
  let run socket raw id tenant =
    client_round ~socket ~raw ~project:whole_result
      (envelope ?id ?tenant Protocol.Drain)
  in
  Cmd.v
    (Cmd.info "drain"
       ~doc:
         "Stop admission, wait for in-flight jobs to finish, then shut the \
          daemon down")
    Term.(const run $ socket_arg $ raw_arg $ id_arg $ tenant_arg)

let client_leak_cmd =
  let name_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"CASE"
          ~doc:"Side-channel case (prefix of the program name).")
  in
  let clause_arg =
    Arg.(
      value & opt string "ct-seq"
      & info [ "clause" ] ~docv:"CLAUSE"
          ~doc:"Contract clause: $(b,ct-seq) or $(b,ct-none).")
  in
  let variants_arg =
    Arg.(
      value & opt int 4
      & info [ "variants" ] ~docv:"N" ~doc:"Input variants to compare (≥ 2).")
  in
  let run socket raw id tenant name mode clause variants no_sb backend =
    match Shift.Leak.clause_of_string clause with
    | Error e ->
        prerr_endline e;
        1
    | Ok clause ->
        client_round ~socket ~raw ~project:whole_result
          (envelope
             ~id:(Option.value id ~default:("leak:" ^ name))
             ?tenant
             (Protocol.Leak
                {
                  case = name;
                  mode;
                  clause;
                  variants;
                  superblocks = not no_sb;
                  backend;
                }))
  in
  Cmd.v
    (Cmd.info "leak"
       ~doc:
         "Submit a side-channel leak probe to the daemon and print its \
          verdict (byte-identical to shiftc leak --json)")
    Term.(
      const run $ socket_arg $ raw_arg $ id_arg $ tenant_arg $ name_arg
      $ mode_arg $ clause_arg $ variants_arg $ no_superblocks_arg
      $ backend_arg)

let client_raw_cmd =
  let line_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"JSON" ~doc:"One request line, sent verbatim after the hello.")
  in
  let run socket line =
    match Serve.Client.connect socket with
    | Error e ->
        prerr_endline e;
        1
    | Ok c ->
        let outcome =
          match Serve.Client.send_line c line with
          | Error e ->
              prerr_endline e;
              1
          | Ok () -> (
              match Serve.Client.read_line c with
              | None ->
                  prerr_endline "server closed the connection";
                  1
              | Some response ->
                  print_endline response;
                  0)
        in
        Serve.Client.close c;
        outcome
  in
  Cmd.v
    (Cmd.info "raw"
       ~doc:
         "Send one raw protocol line and print the first response line \
          (for poking at the wire protocol).")
    Term.(const run $ socket_arg $ line_arg)

let client_cmd =
  Cmd.group
    (Cmd.info "client"
       ~doc:
         "Talk to a running shiftc serve daemon over its socket (see \
          docs/PROTOCOL.md for the wire format)")
    [
      client_run_cmd; client_attack_cmd; client_trace_cmd; client_batch_cmd;
      client_leak_cmd; client_status_cmd; client_drain_cmd; client_raw_cmd;
    ]

let () =
  let doc = "SHIFT: information flow tracking on speculative hardware (ISCA'08 reproduction)" in
  let info = Cmd.info "shiftc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ list_cmd; run_cmd; resume_cmd; batch_cmd; attack_cmd; httpd_cmd;
            disasm_cmd; exec_cmd; trace_cmd; leak_cmd; policies_cmd;
            serve_cmd; client_cmd ]))
