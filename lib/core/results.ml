(* Machine-readable results: a tiny JSON layer (the container has no
   yojson) plus converters from the report/stats types.  The emitted
   documents are versioned so the BENCH_*.json files written by the
   harness can be diffed across PRs. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(* v2: alert messages and chain hops may carry process identity
   ("[pid N, comm]", "(pid N, comm)") under the multi-process OS
   personality, and the backends experiment payload gained the
   coprocessor stall-knee sweep.
   v3: reports carry the L1D "cache" object (hits/misses/hit_rate), and
   the sidechannel experiment emits hardware-trace digests and
   leak-detector verdicts *)
let schema_version = 3

(* ---------- printing ---------- *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Shortest representation that parses back to the same float; JSON has
   no NaN/infinity, so those become null. *)
let add_float b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    let s =
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
      else s ^ ".0"
    in
    Buffer.add_string b s

let to_string ?(minify = false) j =
  let b = Buffer.create 1024 in
  let nl indent =
    if not minify then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f -> add_float b f
    | String s -> add_escaped b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char b ',';
            nl (indent + 2);
            go (indent + 2) item)
          items;
        nl indent;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (key, value) ->
            if i > 0 then Buffer.add_char b ',';
            nl (indent + 2);
            add_escaped b key;
            Buffer.add_char b ':';
            if not minify then Buffer.add_char b ' ';
            go (indent + 2) value)
          fields;
        nl indent;
        Buffer.add_char b '}'
  in
  go 0 j;
  Buffer.contents b

(* ---------- parsing ---------- *)

exception Fail of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8_of_code b code =
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char b '"'; advance ()
           | '\\' -> Buffer.add_char b '\\'; advance ()
           | '/' -> Buffer.add_char b '/'; advance ()
           | 'b' -> Buffer.add_char b '\b'; advance ()
           | 'f' -> Buffer.add_char b '\012'; advance ()
           | 'n' -> Buffer.add_char b '\n'; advance ()
           | 'r' -> Buffer.add_char b '\r'; advance ()
           | 't' -> Buffer.add_char b '\t'; advance ()
           | 'u' -> advance (); utf8_of_code b (parse_hex4 ())
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          loop ()
      | c -> Buffer.add_char b c; advance (); loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail ("bad number " ^ lit)
    else
      match int_of_string_opt lit with
      | Some v -> Int v
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail ("bad number " ^ lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((key, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ---------- converters ---------- *)

let of_stats (s : Shift_machine.Stats.t) =
  Obj
    [
      ("instructions", Int s.Shift_machine.Stats.instructions);
      ("cycles", Int s.Shift_machine.Stats.cycles);
      ("loads", Int s.Shift_machine.Stats.loads);
      ("stores", Int s.Shift_machine.Stats.stores);
      ("branches", Int s.Shift_machine.Stats.branches);
      ("predicated_off", Int s.Shift_machine.Stats.predicated_off);
      ("syscalls", Int s.Shift_machine.Stats.syscalls);
      ("io_cycles", Int s.Shift_machine.Stats.io_cycles);
      ( "slots",
        Obj
          (List.init Shift_isa.Prov.card (fun i ->
               let p = Shift_isa.Prov.of_index i in
               (Shift_isa.Prov.to_string p, Int (Shift_machine.Stats.slots s p))))
      );
    ]

let of_flow (f : Shift_machine.Flowtrace.summary) =
  Obj
    [
      ("births", Int f.Shift_machine.Flowtrace.s_births);
      ("propagations", Int f.s_propagations);
      ("purges", Int f.s_purges);
      ("checks", Int f.s_checks);
      ("sink_hits", Int f.s_sink_hits);
      ("max_depth", Int f.s_max_depth);
      ("events", Int f.s_events);
      ("dropped", Int f.s_dropped);
      ("sources", Int f.s_sources);
    ]

let of_outcome = function
  | Report.Exited v ->
      Obj [ ("kind", String "exited"); ("status", String (Int64.to_string v)) ]
  | Report.Alert a ->
      Obj
        ([
           ("kind", String "alert");
           ("policy", String a.Shift_policy.Alert.policy);
           ("message", String a.Shift_policy.Alert.message);
         ]
        @
        (* only traced runs have chains: untraced output is unchanged *)
        match a.Shift_policy.Alert.chain with
        | [] -> []
        | chain -> [ ("chain", List (List.map (fun h -> String h) chain)) ])
  | Report.Fault f ->
      Obj
        [
          ("kind", String "fault");
          ("fault", String (Shift_machine.Fault.to_string f));
        ]
  | Report.Timeout -> Obj [ ("kind", String "timeout") ]

let of_report (r : Report.t) =
  Obj
    ([
       ("outcome", of_outcome r.Report.outcome);
       ("detected", Bool (Report.detected r));
       ("stats", of_stats r.Report.stats);
       ("logged_alerts", Int (List.length r.Report.logged));
       ("output_bytes", Int (String.length r.Report.output));
       ( "cache",
         Obj
           [
             ("hits", Int r.Report.cache_hits);
             ("misses", Int r.Report.cache_misses);
             ("hit_rate", Float (Report.cache_hit_rate r));
           ] );
     ]
    @
    match r.Report.flow with
    | None -> []
    | Some f -> [ ("flow", of_flow f) ])

let document ~experiment ~domains ~wall_clock_s data =
  Obj
    [
      ("schema_version", Int schema_version);
      ("experiment", String experiment);
      ("domains", Int domains);
      ("wall_clock_s", Float wall_clock_s);
      ("data", data);
    ]
