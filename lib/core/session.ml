module Mode = Shift_compiler.Mode
module Compile = Shift_compiler.Compile
module Image = Shift_compiler.Image
module Cpu = Shift_machine.Cpu
module Smp = Shift_machine.Smp
module Exec = Shift_machine.Exec
module Fault = Shift_machine.Fault
module Prov = Shift_isa.Prov
module Policy = Shift_policy.Policy
module Alert = Shift_policy.Alert
module World = Shift_os.World
module Procs = Shift_os.Process
module Tracking = Shift_tracking.Tracking
module Backend = Shift_tracking.Backend

let default_fuel = 2_000_000_000

module Config = struct
  type threading =
    | Single
    | Threads of { quantum : int option }
    | Processes of { quantum : int option; comm : string option }
        (** the multi-process OS personality: a {!Shift_os.Process}
            table scheduled round-robin; [comm] names pid 1 *)

  type t = {
    policy : Policy.t;
    io_cost : World.io_cost;
    fuel : int;
    setup : World.t -> unit;
    threading : threading;
    trace : Shift_machine.Flowtrace.options option;
    hwtrace : bool;
        (** record the cache-set observation trace on the primary hart
            (see {!Shift_machine.Hwtrace}); off by default — the leak
            detector turns it on *)
    superblocks : bool;
    backend : Backend.t;
    images : (string * Image.t) list;
        (** aux images the guest may [exec] by name (multi-process
            sessions); compiled with the same mode/backend as the main
            image *)
    coproc_capacity : int option;
    coproc_drain_rate : int option;
    coproc_stall_penalty : int option;
        (** tag-coprocessor queue knobs, [None] = the model defaults;
            only meaningful under [Backend.Coproc] *)
  }

  let default =
    {
      policy = Policy.default;
      io_cost = World.default_io_cost;
      fuel = default_fuel;
      setup = (fun _ -> ());
      threading = Single;
      trace = None;
      hwtrace = false;
      superblocks = true;
      backend = Backend.Nat;
      images = [];
      coproc_capacity = None;
      coproc_drain_rate = None;
      coproc_stall_penalty = None;
    }

  let make ?(policy = Policy.default) ?(io_cost = World.default_io_cost)
      ?(fuel = default_fuel) ?(setup = fun _ -> ()) ?(threading = Single)
      ?trace ?(hwtrace = false) ?(superblocks = true) ?(backend = Backend.Nat)
      ?(images = []) ?coproc_capacity ?coproc_drain_rate ?coproc_stall_penalty
      () =
    {
      policy;
      io_cost;
      fuel;
      setup;
      threading;
      trace;
      hwtrace;
      superblocks;
      backend;
      images;
      coproc_capacity;
      coproc_drain_rate;
      coproc_stall_penalty;
    }
end

let gran_of_mode = function
  | Mode.Uninstrumented -> Shift_mem.Granularity.Word
  | Mode.Shift { granularity; _ } | Mode.Software_dbt { granularity } -> granularity

(* Only the nat backend consumes SHIFT's compiled-in instrumentation;
   the coprocessor and the baseline both run the uninstrumented guest.
   Every name-driven entry point (CLI, catalog, bench) routes its mode
   choice through here so the pairing cannot drift. *)
let effective_mode ~backend mode =
  match (backend : Backend.t) with
  | Backend.Nat -> mode
  | Backend.Coproc | Backend.Off -> Mode.Uninstrumented

(* the coprocessor maintains its bitmap (and the OS reads it) at byte
   granularity regardless of the — uninstrumented — guest's mode *)
let gran_for ~backend mode =
  match (backend : Backend.t) with
  | Backend.Coproc -> Shift_mem.Granularity.Byte
  | Backend.Nat | Backend.Off -> gran_of_mode mode

let build ?(with_runtime = true) ?taint_returns ?(backend = Backend.Nat) ~mode
    prog =
  let mode = effective_mode ~backend mode in
  let keep_taint_markers = backend = Backend.Coproc in
  let prog = if with_runtime then Ir.merge Shift_runtime.Runtime.program prog else prog in
  Compile.compile ~mode ?taint_returns ~keep_taint_markers prog

let load (image : Image.t) =
  let cpu = Cpu.create image.program in
  List.iter
    (fun (addr, bytes) -> Shift_mem.Memory.write_bytes cpu.Cpu.mem addr bytes)
    image.data;
  cpu

(* A NaT-consumption fault raised by store-instrumentation code means
   the *store* address was tainted: the bitmap lookup (a load) faulted
   while computing the tag address of a store (Figure 5).  Reattribute
   it so the alert carries the right policy number (L2, not L1). *)
let effective_nat_use (image : Image.t) ip use =
  match use with
  | Fault.Load_address -> (
      if ip < 0 || ip >= Shift_isa.Program.size image.program then use
      else
        match (image.program.code.(ip)).Shift_isa.Instr.prov with
        | Prov.St_compute | Prov.St_mem -> Fault.Store_address
        | _ -> use)
  | _ -> use

let outcome_of image policy (res : Cpu.outcome) : Report.outcome =
  match res with
  | Cpu.Exited code -> Report.Exited code
  | Cpu.Out_of_fuel -> Report.Timeout
  | Cpu.Faulted (Fault.Nat_consumption use, ip) when policy.Policy.low_level -> (
      let use = effective_nat_use image ip use in
      match Policy.alert_of_fault (Fault.nat_use_to_string use) with
      | Some a -> Report.Alert a
      | None -> Report.Fault (Fault.Nat_consumption use))
  | Cpu.Faulted (f, _) -> Report.Fault f

(* ---------- the resumable session ---------- *)

type live = {
  image : Image.t;
  config : Config.t;
  world : World.t;
  engine : Exec.t;
  tracking : Tracking.t;
  procs : Procs.t option;
      (** the process table behind a [Custom] engine, for checkpoint *)
  mutable fuel_left : int;
  mutable result : Report.outcome option;
}

(* the engine closures a process table presents to the session layer *)
let procs_engine procs =
  Exec.of_custom
    {
      Exec.c_run_for = (fun ~budget -> Procs.run_for procs ~budget);
      c_stats = (fun () -> Procs.stats procs);
      c_hart0 = (fun () -> Procs.pid1_cpu procs);
      c_superblock_stats = (fun () -> Procs.superblock_stats procs);
      c_cache_stats = (fun () -> Procs.cache_stats procs);
    }

(* fresh CPUs for images the guest execs by name *)
let image_loader images ~comm = Option.map load (List.assoc_opt comm images)

let start ?(config = Config.default) (image : Image.t) =
  let cpu = load image in
  cpu.Cpu.sb.Cpu.sb_on <- config.Config.superblocks;
  let tracking =
    Tracking.create ~backend:config.Config.backend
      ?capacity:config.Config.coproc_capacity
      ?drain_rate:config.Config.coproc_drain_rate
      ?stall_penalty:config.Config.coproc_stall_penalty
      ~low_level:config.Config.policy.Policy.low_level ~mem:cpu.Cpu.mem ()
  in
  cpu.Cpu.tracking <- tracking;
  (match config.Config.trace with
  | Some options ->
      cpu.Cpu.flowtrace <- Shift_machine.Flowtrace.create ~options ()
  | None -> ());
  if config.Config.hwtrace then
    cpu.Cpu.hwtrace <- Shift_machine.Hwtrace.create ();
  let world =
    World.create ~policy:config.Config.policy
      ~gran:(gran_for ~backend:config.Config.backend image.mode)
      ~io_cost:config.Config.io_cost ~tracking ()
  in
  config.Config.setup world;
  cpu.Cpu.syscall_handler <- Some (World.handler world);
  let engine, procs =
    match config.Config.threading with
    | Config.Single -> (Exec.of_cpu cpu, None)
    | Config.Threads { quantum } ->
        let smp =
          Smp.create ?quantum ~stack_top:Shift_compiler.Layout.stack_top
            ~stack_stride:(Int64.of_int (1 lsl 20))
            cpu
        in
        World.set_threads world
          ~spawn:(fun parent ~entry ~arg -> Smp.spawn smp ~parent ~entry ~arg)
          ~join:(fun tid ->
            match Smp.state_of smp tid with
            | Some Smp.Running -> None
            | Some (Smp.Done v) -> Some v
            | Some (Smp.Crashed _) | None -> Some (-1L));
        (Exec.of_smp smp, None)
    | Config.Processes { quantum; comm } ->
        (* the coprocessor backend binds its tag pipeline to one
           address space; fork's cloned memories would be invisible
           to it *)
        if config.Config.backend = Backend.Coproc then
          invalid_arg
            "Session.start: the coproc backend tracks a single address \
             space; it cannot drive a multi-process personality";
        let procs =
          Procs.create ?quantum ?comm ~world
            ~load:(image_loader config.Config.images)
            cpu
        in
        (procs_engine procs, Some procs)
  in
  {
    image;
    config;
    world;
    engine;
    tracking;
    procs;
    fuel_left = config.Config.fuel;
    result = None;
  }

let world live = live.world
let engine live = live.engine
let outcome live = live.result
let fuel_left live = live.fuel_left
let tracking live = live.tracking

let flowtrace live =
  let ft = (Exec.hart0 live.engine).Cpu.flowtrace in
  if ft.Shift_machine.Flowtrace.enabled then Some ft else None

let superblock_stats live = Exec.superblock_stats live.engine
let cache_stats live = Exec.cache_stats live.engine

let hwtrace live =
  let hw = (Exec.hart0 live.engine).Cpu.hwtrace in
  if hw.Shift_machine.Hwtrace.enabled then Some hw else None

let finish live o =
  live.result <- Some o;
  `Finished o

(* A run that stops with records still in the tag queue must drain it:
   a pending check may only now meet its tainted tag (the detection-lag
   story), and leaving the queue full would make coproc outcomes depend
   on where the run happened to end. *)
let timeout live =
  match Tracking.flush live.tracking with
  | () -> finish live Report.Timeout
  | exception Alert.Violation a -> finish live (Report.Alert a)

let advance live ~budget =
  match live.result with
  | Some o -> `Finished o
  | None ->
      if live.fuel_left <= 0 then timeout live
      else begin
        let slice = min budget live.fuel_left in
        match
          let st = Exec.run_for live.engine ~budget:slice in
          (match st with
          | `Finished _ -> Tracking.flush live.tracking
          | `Yielded -> ());
          st
        with
        | `Finished res ->
            finish live (outcome_of live.image live.config.Config.policy res)
        | `Yielded ->
            live.fuel_left <- live.fuel_left - slice;
            if live.fuel_left <= 0 then timeout live else `Yielded
        | exception Alert.Violation a -> finish live (Report.Alert a)
      end

let report live =
  let outcome =
    match live.result with Some o -> o | None -> Report.Timeout
  in
  {
    Report.outcome;
    stats = Exec.stats live.engine;
    logged = World.alerts live.world;
    output = World.output live.world;
    html = World.html_output live.world;
    sql = World.sql_queries live.world;
    commands = World.system_commands live.world;
    flow = Option.map Shift_machine.Flowtrace.summary (flowtrace live);
    cache_hits = fst (Exec.cache_stats live.engine);
    cache_misses = snd (Exec.cache_stats live.engine);
  }

(* ---------- checkpoint/restore ---------- *)

let snapshot_threading = function
  | Config.Single -> Snapshot.T_single
  | Config.Threads { quantum } -> Snapshot.T_threads quantum
  | Config.Processes { quantum; comm } ->
      Snapshot.T_procs { tp_quantum = quantum; tp_comm = comm }

let session_threading = function
  | Snapshot.T_single -> Config.Single
  | Snapshot.T_threads quantum -> Config.Threads { quantum }
  | Snapshot.T_procs { tp_quantum; tp_comm } ->
      Config.Processes { quantum = tp_quantum; comm = tp_comm }

let snapshot_config config =
  {
    Snapshot.c_policy = config.Config.policy;
    c_io_cost = config.Config.io_cost;
    c_fuel = config.Config.fuel;
    c_threading = snapshot_threading config.Config.threading;
    c_trace = config.Config.trace;
    c_hwtrace = config.Config.hwtrace;
    c_superblocks = config.Config.superblocks;
    c_backend = config.Config.backend;
    c_images = config.Config.images;
  }

let checkpoint ?meta live =
  let tracking =
    if Tracking.per_instr live.tracking then Some (Tracking.export live.tracking)
    else None
  in
  match live.procs with
  | Some procs ->
      Snapshot.capture_procs ?meta ~image:live.image
        ~config:(snapshot_config live.config)
        ?tracking ~fuel_left:live.fuel_left ~result:live.result ~procs
        ~world:live.world ()
  | None ->
      Snapshot.capture ?meta ~image:live.image
        ~config:(snapshot_config live.config)
        ?tracking ~fuel_left:live.fuel_left ~result:live.result
        ~engine:live.engine ~world:live.world ()

let restore (snap : Snapshot.t) =
  let image = snap.Snapshot.image in
  let sc = snap.Snapshot.config in
  (* the original world-setup closure cannot be serialised, and does not
     need to be: its effects are already in the restored world and
     memory state *)
  let config =
    Config.make ~policy:sc.Snapshot.c_policy ~io_cost:sc.Snapshot.c_io_cost
      ~fuel:sc.Snapshot.c_fuel
      ~threading:(session_threading sc.Snapshot.c_threading)
      ?trace:sc.Snapshot.c_trace ~hwtrace:sc.Snapshot.c_hwtrace
      ~superblocks:sc.Snapshot.c_superblocks ~backend:sc.Snapshot.c_backend
      ~images:sc.Snapshot.c_images ()
  in
  let mem = Shift_mem.Memory.create () in
  Snapshot.load_memory mem snap.Snapshot.memory;
  let tracking =
    Tracking.create ~backend:config.Config.backend
      ~low_level:config.Config.policy.Policy.low_level ~mem ()
  in
  (match snap.Snapshot.tracking with
  | Some d -> Tracking.import tracking d
  | None -> ());
  let world =
    World.create ~policy:sc.Snapshot.c_policy
      ~gran:(gran_for ~backend:config.Config.backend image.mode)
      ~io_cost:sc.Snapshot.c_io_cost ~tracking ()
  in
  World.undump world snap.Snapshot.world;
  let flowtrace =
    match snap.Snapshot.flow with
    | Some (d, pages) ->
        let ft = Shift_machine.Flowtrace.of_dump d in
        Snapshot.load_provenance (Shift_machine.Flowtrace.provenance ft) pages;
        Some ft
    | None -> None
  in
  let make_cpu_on mem program hart =
    let cpu = Cpu.create ~mem program in
    cpu.Cpu.sb.Cpu.sb_on <- config.Config.superblocks;
    cpu.Cpu.tracking <- tracking;
    Snapshot.import_cpu hart cpu;
    cpu.Cpu.syscall_handler <- Some (World.handler world);
    (match flowtrace with Some ft -> cpu.Cpu.flowtrace <- ft | None -> ());
    cpu
  in
  let make_cpu hart = make_cpu_on mem image.program hart in
  let engine, procs =
    match snap.Snapshot.machine with
    | Snapshot.M_cpu hart -> (Exec.of_cpu (make_cpu hart), None)
    | Snapshot.M_smp { sm_quantum; sm_harts; sm_round; sm_finished } ->
        let harts =
          List.map (fun (id, state, hart) -> (id, state, make_cpu hart)) sm_harts
        in
        let smp =
          Smp.of_parts ~quantum:sm_quantum
            ~stack_top:Shift_compiler.Layout.stack_top
            ~stack_stride:(Int64.of_int (1 lsl 20))
            ~harts ~round:sm_round ~finished:sm_finished ()
        in
        World.set_threads world
          ~spawn:(fun parent ~entry ~arg -> Smp.spawn smp ~parent ~entry ~arg)
          ~join:(fun tid ->
            match Smp.state_of smp tid with
            | Some Smp.Running -> None
            | Some (Smp.Done v) -> Some v
            | Some (Smp.Crashed _) | None -> Some (-1L));
        (Exec.of_smp smp, None)
    | Snapshot.M_procs
        { pm_quantum; pm_next_pid; pm_procs; pm_round; pm_finished; pm_retired }
      ->
        let parts =
          List.map
            (fun (ps : Snapshot.proc_snap) ->
              let program =
                match ps.Snapshot.ps_image with
                | None -> image.Image.program
                | Some name -> (
                    match List.assoc_opt name sc.Snapshot.c_images with
                    | Some (img : Image.t) -> img.Image.program
                    | None ->
                        invalid_arg
                          (Printf.sprintf
                             "Session.restore: process %d runs unknown image \
                              %S"
                             ps.Snapshot.ps_pid name))
              in
              (* every process owns its address space and provenance
                 shadow; its pages were dumped per-process *)
              let pmem = Shift_mem.Memory.create () in
              Snapshot.load_memory pmem ps.Snapshot.ps_mem;
              let cpu = make_cpu_on pmem program ps.Snapshot.ps_hart in
              let pmap = Shift_mem.Provenance.create () in
              Snapshot.load_provenance pmap ps.Snapshot.ps_prov;
              let ctx =
                if ps.Snapshot.ps_pid = 1 then begin
                  (* pid 1 lives in the world's base context, which the
                     world dump restored already; re-loading is
                     idempotent and keeps the object identity *)
                  let ctx = World.base_ctx world in
                  World.load_ctx_into ctx ps.Snapshot.ps_ctx;
                  ctx
                end
                else World.ctx_of_state ps.Snapshot.ps_ctx
              in
              {
                Procs.p_pid = ps.Snapshot.ps_pid;
                p_parent = ps.Snapshot.ps_parent;
                p_image = ps.Snapshot.ps_image;
                p_state = ps.Snapshot.ps_state;
                p_cpu = cpu;
                p_ctx = ctx;
                p_pmap = pmap;
              })
            pm_procs
        in
        let procs =
          Procs.of_parts ~quantum:pm_quantum ~world
            ~load:(image_loader sc.Snapshot.c_images)
            ~procs:parts ~next_pid:pm_next_pid ~round:pm_round
            ~finished:pm_finished ~retired:pm_retired ()
        in
        (procs_engine procs, Some procs)
  in
  (* the trace buffer itself is not snapshotted: a restored session
     records from here on, so straight trace = pre-checkpoint prefix ++
     post-restore suffix (held by the identity test in test_snapshot) *)
  if config.Config.hwtrace then
    (Exec.hart0 engine).Cpu.hwtrace <- Shift_machine.Hwtrace.create ();
  {
    image;
    config;
    world;
    engine;
    tracking;
    procs;
    fuel_left = snap.Snapshot.fuel_left;
    result = snap.Snapshot.result;
  }

let exec ?config image =
  let live = start ?config image in
  (* one maximal slice: [advance] clamps to the configured fuel and maps
     exhaustion to [Timeout] itself, so this always finishes *)
  (match advance live ~budget:max_int with `Finished _ | `Yielded -> ());
  report live

(* ---------- the historical entry points, as one-line wrappers ---------- *)

let run_image ?policy ?io_cost ?fuel ?setup ?trace ?superblocks ?backend image =
  exec
    ~config:
      (Config.make ?policy ?io_cost ?fuel ?setup ?trace ?superblocks ?backend ())
    image

let run ?with_runtime ?taint_returns ?policy ?io_cost ?fuel ?setup ?trace
    ?superblocks ?backend ~mode prog =
  run_image ?policy ?io_cost ?fuel ?setup ?trace ?superblocks ?backend
    (build ?with_runtime ?taint_returns ?backend ~mode prog)

let run_image_mt ?policy ?io_cost ?fuel ?setup ?quantum ?superblocks ?backend
    image =
  exec
    ~config:
      (Config.make ?policy ?io_cost ?fuel ?setup
         ~threading:(Config.Threads { quantum }) ?superblocks ?backend ())
    image

let run_mt ?with_runtime ?taint_returns ?policy ?io_cost ?fuel ?setup ?quantum
    ?superblocks ?backend ~mode prog =
  run_image_mt ?policy ?io_cost ?fuel ?setup ?quantum ?superblocks ?backend
    (build ?with_runtime ?taint_returns ?backend ~mode prog)
