(* The speculation-contract leakage detector.

   A contract clause fixes what a microarchitectural attacker observes
   about an execution — its view of the hardware trace ({!Hwtrace}).
   A program leaks under a clause when two runs that differ only in
   *tainted* input bytes produce different observations: the secret
   steered the cache footprint, a flow NaT-based DIFT never sees
   because no tainted value reaches a policy sink.

   The detector is differential: run the same session under N input
   variants (variant 0 is the baseline), project each hardware trace
   through the clause, and flag the first divergence.  Because every
   engine in the repo is deterministic, any divergence is attributable
   to the input bytes that changed — and those are exactly the tainted
   ones, by construction of the variant setups.  The diverging access
   is then named precisely: its pc, the two set indexes, and (via the
   Flowtrace id its address register carried) the tainted input bytes
   that steered it. *)

module Hw = Shift_machine.Hwtrace
module Ft = Shift_machine.Flowtrace

type clause =
  | Ct_seq  (* the set-index sequence of loads and stores is observable *)
  | Ct_none (* nothing is observable: the vacuous baseline clause *)

let clause_to_string = function Ct_seq -> "ct-seq" | Ct_none -> "ct-none"

let clause_of_string = function
  | "ct-seq" -> Ok Ct_seq
  | "ct-none" -> Ok Ct_none
  | s -> Error (Printf.sprintf "unknown contract clause %S (try ct-seq)" s)

type divergence = {
  d_variant : int;  (* the variant whose observation split from the baseline *)
  d_index : int;  (* index of the first diverging access *)
  d_pc : int;  (* guest pc of that access *)
  d_store : bool;
  d_set_base : int;  (* set index in the baseline; -1 = access absent *)
  d_set_variant : int;  (* set index in the variant; -1 = access absent *)
  d_tainted : string list;
      (* provenance of the diverging access's address, as
         ["input <channel>[<off>] via <origin>"] hops *)
}

type verdict = {
  v_clause : clause;
  v_variants : int;
  v_accesses : int;  (* baseline accesses visible under the clause *)
  v_dropped : int;  (* baseline accesses past the trace limit *)
  v_leak : bool;
  v_divergence : divergence option;
}

(* ---------- running variants ---------- *)

let run_variant start i =
  let live = start i in
  (match Session.advance live ~budget:max_int with `Finished _ | `Yielded -> ());
  live

let hwtrace_of live =
  match Session.hwtrace live with
  | Some hw -> hw
  | None ->
      invalid_arg "Leak.detect: the variant session has no hardware trace"

(* Resolve the Flowtrace id an access's address register carried into
   human-readable input-byte provenance.  Ids are interned per session,
   so each side resolves against its own trace; the rendered hops are
   comparable across sessions because they name stream offsets. *)
let address_provenance live id =
  if id = 0 then []
  else
    match Session.flowtrace live with
    | None -> []
    | Some ft -> (
        match Ft.source_of_id ft id with
        | None -> []
        | Some src ->
            [
              Printf.sprintf "input %s[%d] via %s" src.Ft.channel
                (Ft.input_offset src id) src.Ft.origin;
            ])

(* ---------- comparing observations ---------- *)

(* Under ct-seq an observation is the (store, set) sequence; under
   ct-none it is empty, so nothing ever diverges. *)
let first_divergence clause ~variant base base_hw live hw =
  match clause with
  | Ct_none -> None
  | Ct_seq ->
      let nb = Hw.length base_hw and nv = Hw.length hw in
      let n = min nb nv in
      let rec scan i =
        if i < n then begin
          let eb = Hw.get base_hw i and ev = Hw.get hw i in
          if eb.Hw.e_set <> ev.Hw.e_set || eb.Hw.e_store <> ev.Hw.e_store then
            Some
              {
                d_variant = variant;
                d_index = i;
                d_pc = ev.Hw.e_pc;
                d_store = ev.Hw.e_store;
                d_set_base = eb.Hw.e_set;
                d_set_variant = ev.Hw.e_set;
                d_tainted =
                  (match address_provenance live ev.Hw.e_prov with
                  | [] -> address_provenance base eb.Hw.e_prov
                  | hops -> hops);
              }
          else scan (i + 1)
        end
        else if nb = nv then None
        else
          (* one run made more accesses: the trace *length* leaked *)
          let longer_live, longer = if nv > nb then (live, hw) else (base, base_hw) in
          let e = Hw.get longer n in
          Some
            {
              d_variant = variant;
              d_index = n;
              d_pc = e.Hw.e_pc;
              d_store = e.Hw.e_store;
              d_set_base = (if nb > n then e.Hw.e_set else -1);
              d_set_variant = (if nv > n then e.Hw.e_set else -1);
              d_tainted = address_provenance longer_live e.Hw.e_prov;
            }
      in
      scan 0

let detect ?(clause = Ct_seq) ~count ~start () =
  if count < 2 then invalid_arg "Leak.detect: need at least 2 variants";
  let base = run_variant start 0 in
  let base_hw = hwtrace_of base in
  let rec probe i =
    if i >= count then None
    else
      let live = run_variant start i in
      match first_divergence clause ~variant:i base base_hw live (hwtrace_of live) with
      | Some d -> Some d
      | None -> probe (i + 1)
  in
  let divergence = probe 1 in
  {
    v_clause = clause;
    v_variants = count;
    v_accesses = (match clause with Ct_seq -> Hw.length base_hw | Ct_none -> 0);
    v_dropped = Hw.dropped base_hw;
    v_leak = divergence <> None;
    v_divergence = divergence;
  }

(* ---------- rendering ---------- *)

let divergence_to_json d =
  Results.Obj
    [
      ("variant", Results.Int d.d_variant);
      ("access", Results.Int d.d_index);
      ("pc", Results.Int d.d_pc);
      ("kind", Results.String (if d.d_store then "store" else "load"));
      ("set_baseline", Results.Int d.d_set_base);
      ("set_variant", Results.Int d.d_set_variant);
      ( "tainted_by",
        Results.List (List.map (fun h -> Results.String h) d.d_tainted) );
    ]

let verdict_to_json v =
  Results.Obj
    ([
       ("clause", Results.String (clause_to_string v.v_clause));
       ("variants", Results.Int v.v_variants);
       ("accesses", Results.Int v.v_accesses);
       ("dropped", Results.Int v.v_dropped);
       ("leak", Results.Bool v.v_leak);
     ]
    @
    match v.v_divergence with
    | None -> []
    | Some d -> [ ("divergence", divergence_to_json d) ])

(* One JSON object per recorded access — the exportable trace.  The
   taint marker rides along so a reader can see which accesses were
   secret-steered without re-running the detector. *)
let trace_json live =
  let hw = hwtrace_of live in
  List.init (Hw.length hw) (fun i ->
      let e = Hw.get hw i in
      Results.Obj
        ([
           ("i", Results.Int i);
           ("pc", Results.Int e.Hw.e_pc);
           ("set", Results.Int e.Hw.e_set);
           ("hit", Results.Bool e.Hw.e_hit);
           ("kind", Results.String (if e.Hw.e_store then "store" else "load"));
         ]
        @
        match address_provenance live e.Hw.e_prov with
        | [] -> []
        | hops ->
            [
              ( "tainted_by",
                Results.List (List.map (fun h -> Results.String h) hops) );
            ]))

(* A short stable digest of the clause-visible observation (FNV-1a over
   the (store, set) sequence): what the bench stores so CI can assert
   superblocks-on/off identity without shipping whole traces. *)
let observation_digest hw =
  let fnv_prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let mix byte =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (byte land 0xff))) fnv_prime
  in
  for i = 0 to Hw.length hw - 1 do
    let e = Hw.get hw i in
    mix (if e.Hw.e_store then 1 else 0);
    mix e.Hw.e_set;
    mix (e.Hw.e_set lsr 8)
  done;
  Printf.sprintf "%016Lx" !h

let pp_verdict ppf v =
  match v.v_divergence with
  | None ->
      Format.fprintf ppf
        "@[<v>clean under %s: %d variants, %d observable accesses, no \
         divergence@]"
        (clause_to_string v.v_clause) v.v_variants v.v_accesses
  | Some d ->
      Format.fprintf ppf
        "@[<v>LEAK under %s: variant %d diverges at access %d@,\
         pc %d %s: cache set %d (baseline) vs %d (variant)"
        (clause_to_string v.v_clause) d.d_variant d.d_index d.d_pc
        (if d.d_store then "store" else "load")
        d.d_set_base d.d_set_variant;
      List.iter (Format.fprintf ppf "@,steered by %s") d.d_tainted;
      Format.fprintf ppf "@]"
