(** The public entry point: compile a guest program, run it under a
    policy, and report what happened.

    {[
      let report =
        Session.run ~mode:Shift_compiler.Mode.shift_word
          ~policy:Shift_policy.Policy.default
          ~setup:(fun world -> Shift_os.World.queue_request world payload)
          my_program
    ]}

    Every run — the historical [run]/[run_mt]/[run_image]/[run_image_mt]
    entry points included — goes through one {!Config.t}-driven engine:
    {!start} builds a {!live} session around
    {!Shift_machine.Exec.run_for}, {!advance} drives it in bounded
    slices, and {!exec} runs it to completion.  Because the engine
    suspends between instruction groups without touching machine state,
    counters are byte-identical however a run is sliced. *)

(** How a session executes: policy, I/O cost model, fuel, world setup,
    and threading. *)
module Config : sig
  (** Machine shape for the run. *)
  type threading =
    | Single  (** one hart; [sys_spawn] fails with [-1] *)
    | Threads of { quantum : int option }
        (** SMP round robin; [quantum] instructions per turn
            (default 50) *)
    | Processes of { quantum : int option; comm : string option }
        (** multi-process OS personality ({!Shift_os.Process}):
            [sys_fork]/[sys_exec]/[sys_wait]/[sys_pipe] live, each
            process in a private address space with its own taint
            bitmap and provenance shadow.  [quantum] instructions per
            scheduler turn (default 50); [comm] names pid 1 (default
            ["main"]).  Incompatible with the [Coproc] backend, which
            binds a single address space. *)

  type t = {
    policy : Shift_policy.Policy.t;  (** policies to enforce *)
    io_cost : Shift_os.World.io_cost;  (** syscall cycle-cost model *)
    fuel : int;  (** total instruction budget for the session *)
    setup : Shift_os.World.t -> unit;
        (** populate files / network requests before execution *)
    threading : threading;  (** machine shape *)
    trace : Shift_machine.Flowtrace.options option;
        (** [Some opts] attaches a {!Shift_machine.Flowtrace} to the
            run: provenance is tracked, events land in the ring, sink
            alerts carry chains, and the report gains a [flow]
            summary.  [None] (the default) costs one branch per
            instrumented op. *)
    hwtrace : bool;
        (** record the cache-set observation trace on the primary hart
            ({!Shift_machine.Hwtrace}): one entry per guest load/store
            naming the L1D set it touched.  Off by default (one branch
            per cache access); the leak detector ({!Leak}) turns it
            on.  The buffer itself is never snapshotted — a restored
            session records from the restore point on. *)
    superblocks : bool;
        (** whether hot guest regions may be compiled to closure chains
            ({!Shift_machine.Superblock}).  On (the default) and off are
            observationally identical — same counters, alerts, traces
            and snapshots — so [false] is an escape hatch for
            differential testing and debugging, not a semantic knob. *)
    backend : Shift_tracking.Backend.t;
        (** taint-tracking backend ({!Shift_tracking.Backend.Nat} by
            default — the paper's on-core scheme, byte-identical to the
            pre-backend repository).  [Coproc] runs the uninstrumented
            guest next to a decoupled tag coprocessor with an async tag
            queue; [Off] is the uninstrumented baseline with sources and
            checks disabled.  Pair non-nat backends with
            {!effective_mode} when compiling by name. *)
    images : (string * Shift_compiler.Image.t) list;
        (** auxiliary images the guest may [sys_exec] by name
            (multi-process sessions only); compile them with the same
            mode/backend as the main image *)
    coproc_capacity : int option;
    coproc_drain_rate : int option;
    coproc_stall_penalty : int option;
        (** tag-coprocessor queue knobs ([None] = the
            {!Shift_tracking.Tracking} model defaults); only meaningful
            under [Backend.Coproc] *)
  }

  val default : t
  (** Default policy and I/O costs, 2e9 fuel, no setup, single hart,
      no tracing, superblocks on, nat backend, no aux images. *)

  val make :
    ?policy:Shift_policy.Policy.t ->
    ?io_cost:Shift_os.World.io_cost ->
    ?fuel:int ->
    ?setup:(Shift_os.World.t -> unit) ->
    ?threading:threading ->
    ?trace:Shift_machine.Flowtrace.options ->
    ?hwtrace:bool ->
    ?superblocks:bool ->
    ?backend:Shift_tracking.Backend.t ->
    ?images:(string * Shift_compiler.Image.t) list ->
    ?coproc_capacity:int ->
    ?coproc_drain_rate:int ->
    ?coproc_stall_penalty:int ->
    unit ->
    t
  (** {!default} with the given fields overridden. *)
end

val gran_of_mode : Shift_compiler.Mode.t -> Shift_mem.Granularity.t
(** The taint granularity a mode tracks at ([Word] for
    [Uninstrumented], whose bitmap is unused). *)

val effective_mode :
  backend:Shift_tracking.Backend.t ->
  Shift_compiler.Mode.t ->
  Shift_compiler.Mode.t
(** The compilation mode actually used under a backend: [nat] keeps the
    requested mode; [coproc] and [none] run the uninstrumented guest
    (their tracking — if any — happens off-core).  The CLI, catalog and
    bench all route through this so the backend/mode pairing cannot
    drift between entry points. *)

val build :
  ?with_runtime:bool ->
  ?taint_returns:string list ->
  ?backend:Shift_tracking.Backend.t ->
  mode:Shift_compiler.Mode.t ->
  Ir.program ->
  Shift_compiler.Image.t
(** Compile and link.  [with_runtime] (default true) merges in the
    {!Shift_runtime.Runtime} library.  [taint_returns] lists functions
    whose return values are taint sources (paper §3.3.1, source 4).
    [backend] (default [nat]) applies {!effective_mode} and, for the
    tag coprocessor, keeps the Orig-provenance taint markers in the
    otherwise-uninstrumented stream so the mirror sees [untaint] and
    tainted-return sources (the machine skips their NaT writes).
    @raise Shift_compiler.Compile.Error on invalid programs. *)

val load : Shift_compiler.Image.t -> Shift_machine.Cpu.t
(** Fresh machine with the image's initialised data written to
    memory. *)

(** {1 Resumable sessions}

    The batch-session substrate: a {!live} session owns a machine, an
    OS world and a fuel budget, and is advanced in bounded slices.  A
    front end can rotate {!advance} across many live sessions to
    multiplex guests. *)

type live
(** A started session: engine, world, and remaining fuel. *)

val start : ?config:Config.t -> Shift_compiler.Image.t -> live
(** Load the image on a fresh machine and world, run the config's
    [setup], and wire the machine shape the config asks for (for
    [Threads], the SMP spawn/join hooks).  No guest instruction has
    executed yet. *)

val advance : live -> budget:int -> [ `Yielded | `Finished of Report.outcome ]
(** Execute at most [budget] instructions (clamped to the remaining
    fuel).  [`Yielded] means the slice was used up with the program
    still live; call again to resume.  Fuel exhaustion finishes with
    {!Report.Timeout}; a policy violation raised by the OS world
    finishes with {!Report.Alert}.  Once finished, further calls return
    the same outcome without executing anything. *)

val world : live -> Shift_os.World.t
(** The session's OS world (for inspecting output mid-run, or feeding
    more input between slices). *)

val engine : live -> Shift_machine.Exec.t
(** The underlying engine (for counter snapshots mid-run). *)

val outcome : live -> Report.outcome option
(** The final outcome, once {!advance} returned [`Finished]. *)

val fuel_left : live -> int
(** Instructions left in the session's budget — what a scheduler or
    status endpoint reports about a run still in flight. *)

val flowtrace : live -> Shift_machine.Flowtrace.t option
(** The session's flow trace, when the config asked for one — query it
    mid-run between slices, or after the run for events and chains. *)

val tracking : live -> Shift_tracking.Tracking.t
(** The session's tracking-backend handle.  Under [coproc] its
    {!Shift_tracking.Tracking.stats} expose queue depth, stalls and
    drain lag — host-side diagnostics, never part of reports or
    snapshots. *)

val cache_stats : live -> int * int
(** L1D [(hits, misses)] summed across harts, live at any point of the
    run (they also land in the final {!Report.t}). *)

val hwtrace : live -> Shift_machine.Hwtrace.t option
(** The primary hart's observation trace, when [Config.hwtrace] asked
    for one. *)

val superblock_stats : live -> Shift_machine.Stats.superblocks
(** Host-side superblock compiler counters aggregated across harts.
    Diagnostics only: never part of the report, the [--json] output or
    snapshots (they differ between superblocks-on and -off runs, which
    must stay byte-identical). *)

val report : live -> Report.t
(** Assemble the session's report: outcome (a session still live
    reports {!Report.Timeout}), aggregated machine counters, and
    everything the guest emitted through the world. *)

val exec : ?config:Config.t -> Shift_compiler.Image.t -> Report.t
(** Run a session to completion: {!start}, {!advance} through the whole
    fuel budget, {!report}.  This is the single implementation behind
    all four historical entry points below. *)

(** {1 Checkpoint/restore}

    A {!live} session can be frozen between {!advance} slices into a
    {!Snapshot.t} — a self-contained, serialisable image of everything
    that determines the rest of the run — and rebuilt later, in the
    same process or a fresh one.  The guarantee: a restored session run
    to completion produces a report byte-identical to the unbroken
    run's, across single-hart, SMP and traced shapes. *)

val checkpoint : ?meta:(string * string) list -> live -> Snapshot.t
(** Freeze the session's complete state.  Call only between {!advance}
    slices (never from inside a syscall handler).  [meta] is free-form
    provenance carried in the snapshot but not consumed by restore. *)

val restore : Snapshot.t -> live
(** Rebuild a live session from a snapshot: fresh machine, memory, OS
    world and (when traced) flow state, all overwritten with the
    snapshot's contents.  The configured world-setup closure is {e not}
    re-run — its effects are already part of the captured state. *)

(** {1 Historical entry points}

    One-line wrappers over {!exec}, kept so no caller breaks. *)

val run_image :
  ?policy:Shift_policy.Policy.t ->
  ?io_cost:Shift_os.World.io_cost ->
  ?fuel:int ->
  ?setup:(Shift_os.World.t -> unit) ->
  ?trace:Shift_machine.Flowtrace.options ->
  ?superblocks:bool ->
  ?backend:Shift_tracking.Backend.t ->
  Shift_compiler.Image.t ->
  Report.t
(** Run a compiled image on a fresh machine and OS world.  [setup] is
    called before execution to populate files and network requests. *)

val run :
  ?with_runtime:bool ->
  ?taint_returns:string list ->
  ?policy:Shift_policy.Policy.t ->
  ?io_cost:Shift_os.World.io_cost ->
  ?fuel:int ->
  ?setup:(Shift_os.World.t -> unit) ->
  ?trace:Shift_machine.Flowtrace.options ->
  ?superblocks:bool ->
  ?backend:Shift_tracking.Backend.t ->
  mode:Shift_compiler.Mode.t ->
  Ir.program ->
  Report.t
(** [build] followed by [run_image].  When [backend] is given, the mode
    is first routed through {!effective_mode}. *)

(** {2 Multi-threaded runs}

    The paper's future-work item (§4.4, §8): guest programs may call
    [sys_spawn(&f, arg)] and [sys_join(tid)]; harts share memory — and
    with it the taint bitmap, whose unserialised updates are the
    documented hazard (see test/test_smp.ml). *)

val run_image_mt :
  ?policy:Shift_policy.Policy.t ->
  ?io_cost:Shift_os.World.io_cost ->
  ?fuel:int ->
  ?setup:(Shift_os.World.t -> unit) ->
  ?quantum:int ->
  ?superblocks:bool ->
  ?backend:Shift_tracking.Backend.t ->
  Shift_compiler.Image.t ->
  Report.t
(** Like {!run_image} with thread support enabled.  [quantum] is the
    round-robin scheduling quantum in instructions (default 50).  The
    report's counters aggregate {e all} harts
    ({!Shift_machine.Stats.concurrent}: events sum, cycles are the
    slowest hart's). *)

val run_mt :
  ?with_runtime:bool ->
  ?taint_returns:string list ->
  ?policy:Shift_policy.Policy.t ->
  ?io_cost:Shift_os.World.io_cost ->
  ?fuel:int ->
  ?setup:(Shift_os.World.t -> unit) ->
  ?quantum:int ->
  ?superblocks:bool ->
  ?backend:Shift_tracking.Backend.t ->
  mode:Shift_compiler.Mode.t ->
  Ir.program ->
  Report.t
(** [build] followed by {!run_image_mt}. *)
