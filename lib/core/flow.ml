module Flowtrace = Shift_machine.Flowtrace

let addr_str a = Format.asprintf "%a" Shift_mem.Addr.pp a
let reg_str r = Shift_isa.Reg.to_string r

let source_json (s : Flowtrace.source) =
  Results.Obj
    [
      ("line", Results.String "source");
      ("sid", Results.Int s.Flowtrace.sid);
      ("channel", Results.String s.channel);
      ("origin", Results.String s.origin);
      ("offset", Results.Int s.offset);
      ("len", Results.Int s.len);
    ]

let detail_fields = function
  | Flowtrace.Ev_birth { src; addr } ->
      ("birth",
       [ ("sid", Results.Int src.Flowtrace.sid) ]
       @ if Int64.equal addr 0L then [] else [ ("addr", Results.String (addr_str addr)) ])
  | Flowtrace.Ev_load { reg; addr; id } ->
      ( "load",
        [
          ("reg", Results.String (reg_str reg));
          ("addr", Results.String (addr_str addr));
          ("id", Results.Int id);
        ] )
  | Flowtrace.Ev_prop { dst; src; id; depth } ->
      ( "prop",
        [
          ("dst", Results.String (reg_str dst));
          ("src", Results.String (reg_str src));
          ("id", Results.Int id);
          ("depth", Results.Int depth);
        ] )
  | Flowtrace.Ev_store { reg; addr; len; id } ->
      ( "store",
        [
          ("reg", Results.String (reg_str reg));
          ("addr", Results.String (addr_str addr));
          ("len", Results.Int len);
          ("id", Results.Int id);
        ] )
  | Flowtrace.Ev_purge { reg } ->
      ("purge", [ ("reg", Results.String (reg_str reg)) ])
  | Flowtrace.Ev_check { reg; tainted } ->
      ( "check",
        [ ("reg", Results.String (reg_str reg)); ("tainted", Results.Bool tainted) ]
      )
  | Flowtrace.Ev_sink { policy; detail } ->
      ( "sink",
        [ ("policy", Results.String policy); ("detail", Results.String detail) ]
      )

let event_json (e : Flowtrace.event) =
  let ev, fields = detail_fields e.Flowtrace.ev in
  Results.Obj
    ([
       ("line", Results.String "event");
       ("seq", Results.Int e.seq);
       ("ip", Results.Int e.ip);
       ("ev", Results.String ev);
     ]
    @ fields)

let jsonl ?(meta = []) ?outcome (ft : Flowtrace.t) =
  let summary = Flowtrace.summary ft in
  let header =
    Results.Obj
      ([
         ("line", Results.String "meta");
         ("v", Results.Int Results.schema_version);
         ("ring", Results.Int ft.Flowtrace.capacity);
         ("events", Results.Int summary.Flowtrace.s_events);
         ("dropped", Results.Int summary.Flowtrace.s_dropped);
       ]
      @ meta)
  in
  let lines =
    (header :: List.map source_json (Flowtrace.sources ft))
    @ List.map event_json (Flowtrace.events ft)
    @ [
        (match Results.of_flow summary with
        | Results.Obj fields -> Results.Obj (("line", Results.String "summary") :: fields)
        | j -> j);
      ]
    @
    match outcome with
    | None -> []
    | Some o -> (
        match Results.of_outcome o with
        | Results.Obj fields -> [ Results.Obj (("line", Results.String "outcome") :: fields) ]
        | j -> [ j ])
  in
  String.concat ""
    (List.map (fun j -> Results.to_string ~minify:true j ^ "\n") lines)

let pp ppf (ft : Flowtrace.t) =
  Format.fprintf ppf "@[<v>";
  (match Flowtrace.sources ft with
  | [] -> Format.fprintf ppf "no taint sources@,"
  | srcs ->
      Format.fprintf ppf "sources:@,";
      List.iter (fun s -> Format.fprintf ppf "  %a@," Flowtrace.pp_source s) srcs);
  (match Flowtrace.events ft with
  | [] -> Format.fprintf ppf "no events@,"
  | evs ->
      Format.fprintf ppf "events:@,";
      List.iter (fun e -> Format.fprintf ppf "  %a@," Flowtrace.pp_event e) evs);
  Format.fprintf ppf "%a@]" Flowtrace.pp_summary (Flowtrace.summary ft)
