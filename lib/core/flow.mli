(** Deterministic JSONL export of a flow trace.

    One JSON object per line, minified, in a fixed order: a [meta]
    header (carrying the {!Results.schema_version}), the interned
    sources, the ring's events oldest-first, the counter [summary], and
    optionally the run's [outcome] (alerts include their provenance
    chain).  Two identical runs produce byte-identical output — the CI
    determinism gate diffs the files with [cmp]. *)

val jsonl :
  ?meta:(string * Results.json) list ->
  ?outcome:Report.outcome ->
  Shift_machine.Flowtrace.t ->
  string
(** The full JSONL document, newline-terminated.  [meta] fields are
    appended to the header line (e.g. the traced image's name and
    mode). *)

val pp : Format.formatter -> Shift_machine.Flowtrace.t -> unit
(** Human-readable rendering: sources, events, summary. *)
