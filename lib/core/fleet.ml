module Stats = Shift_machine.Stats

type job = {
  name : string;
  image : unit -> Shift_compiler.Image.t;
  config : Session.Config.t;
  deadline : int option;
}

let job ?(config = Session.Config.default) ?deadline ~name image =
  { name; image; config; deadline }

type crash = { exn : string; backtrace : string; attempts : int }
type outcome = Finished of Report.t | Crashed of crash
type result = { name : string; outcome : outcome }

type t = {
  results : result list;
  stats : Stats.t;
  exited : int;
  alerted : int;
  faulted : int;
  timed_out : int;
  crashed : int;
}

let count p results = List.length (List.filter p results)

let effective_config (j : job) =
  match j.deadline with
  | None -> j.config
  | Some d -> { j.config with Session.Config.fuel = min j.config.Session.Config.fuel d }

(* Advance a live session to completion in [slice]-sized steps,
   refreshing [last] with an in-memory checkpoint after every yielded
   slice when checkpointing is on. *)
let drive ~checkpointing ~slice live last =
  let rec loop () =
    match Session.advance live ~budget:slice with
    | `Finished _ -> Session.report live
    | `Yielded ->
        if checkpointing then last := Some (Session.checkpoint live);
        loop ()
  in
  loop ()

(* One job under supervision: any exception out of the image thunk, the
   session machinery or a syscall handler is contained as [Crashed]
   instead of tearing down the whole batch.  With [retries], a failed
   attempt restarts from the last checkpoint (or from scratch when
   checkpointing is off or nothing was checkpointed yet). *)
let exec_job ~retries ~checkpoint_every (j : job) =
  let config = effective_config j in
  let checkpointing = checkpoint_every <> None in
  let slice =
    match checkpoint_every with Some n when n > 0 -> n | _ -> max_int
  in
  let last = ref None in
  let rec attempt n =
    match
      let live =
        match !last with
        | Some snap -> Session.restore snap
        | None -> Session.start ~config (j.image ())
      in
      drive ~checkpointing ~slice live last
    with
    | report -> Finished report
    | exception e ->
        let bt = Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ()) in
        if n < retries then attempt (n + 1)
        else
          Crashed
            { exn = Printexc.to_string e; backtrace = bt; attempts = n + 1 }
  in
  attempt 0

let run ?domains ?(retries = 0) ?checkpoint_every jobs =
  let results =
    Pool.map ?domains
      (fun (j : job) ->
        { name = j.name; outcome = exec_job ~retries ~checkpoint_every j })
      jobs
  in
  let reports =
    List.filter_map
      (fun r -> match r.outcome with Finished rep -> Some rep | Crashed _ -> None)
      results
  in
  let of_outcome p =
    count
      (fun r ->
        match r.outcome with
        | Finished rep -> p rep.Report.outcome
        | Crashed _ -> false)
      results
  in
  {
    results;
    stats = Stats.total (List.map (fun (rep : Report.t) -> rep.Report.stats) reports);
    exited = of_outcome (function Report.Exited _ -> true | _ -> false);
    alerted = of_outcome (function Report.Alert _ -> true | _ -> false);
    faulted = of_outcome (function Report.Fault _ -> true | _ -> false);
    timed_out = of_outcome (function Report.Timeout -> true | _ -> false);
    crashed =
      count (fun r -> match r.outcome with Crashed _ -> true | _ -> false) results;
  }

let to_json t =
  Results.Obj
    [
      ("sessions", Results.Int (List.length t.results));
      ("exited", Results.Int t.exited);
      ("alerts", Results.Int t.alerted);
      ("faults", Results.Int t.faulted);
      ("timeouts", Results.Int t.timed_out);
      ("crashed", Results.Int t.crashed);
      ( "totals",
        Results.Obj
          [
            ("instructions", Results.Int t.stats.Stats.instructions);
            ("cycles", Results.Int t.stats.Stats.cycles);
            ("loads", Results.Int t.stats.Stats.loads);
            ("stores", Results.Int t.stats.Stats.stores);
            ("io_cycles", Results.Int t.stats.Stats.io_cycles);
          ] );
      ( "runs",
        Results.List
          (List.map
             (fun r ->
               Results.Obj
                 (("name", Results.String r.name)
                 ::
                 (match r.outcome with
                 | Finished rep -> [ ("report", Results.of_report rep) ]
                 | Crashed c ->
                     (* the backtrace is host-specific, so it stays out
                        of the (diffable) JSON *)
                     [
                       ( "crashed",
                         Results.Obj
                           [
                             ("exn", Results.String c.exn);
                             ("attempts", Results.Int c.attempts);
                           ] );
                     ])))
             t.results) );
    ]

let pp ppf t =
  let line name outcome (s : Stats.t) =
    Format.fprintf ppf "%-14s %-14s %12d %12d %10d %10d@," name outcome
      s.Stats.instructions s.Stats.cycles s.Stats.loads s.Stats.stores
  in
  Format.fprintf ppf "@[<v>%-14s %-14s %12s %12s %10s %10s@," "session" "outcome"
    "instructions" "cycles" "loads" "stores";
  List.iter
    (fun r ->
      match r.outcome with
      | Finished rep ->
          line r.name
            (Format.asprintf "%a" Report.pp_outcome rep.Report.outcome)
            rep.Report.stats
      | Crashed c ->
          Format.fprintf ppf "%-14s crashed (%d attempts): %s@," r.name
            c.attempts c.exn)
    t.results;
  line "TOTAL"
    (Printf.sprintf "%d ok/%d bad" t.exited
       (t.alerted + t.faulted + t.timed_out + t.crashed))
    t.stats;
  Format.fprintf ppf "@]"
