module Stats = Shift_machine.Stats

type job = {
  name : string;
  image : unit -> Shift_compiler.Image.t;
  config : Session.Config.t;
  deadline : int option;
}

let job ?(config = Session.Config.default) ?deadline ~name image =
  { name; image; config; deadline }

let name (j : job) = j.name

let with_deadline d (j : job) =
  {
    j with
    deadline = Some (match j.deadline with None -> d | Some d' -> min d d');
  }

type crash = { exn : string; backtrace : string; attempts : int }
type outcome = Finished of Report.t | Crashed of crash
type result = { name : string; outcome : outcome }

type t = {
  results : result list;
  stats : Stats.t;
  exited : int;
  alerted : int;
  faulted : int;
  timed_out : int;
  crashed : int;
}

let count p results = List.length (List.filter p results)

let effective_config (j : job) =
  match j.deadline with
  | None -> j.config
  | Some d -> { j.config with Session.Config.fuel = min j.config.Session.Config.fuel d }

(* ---------- the single-job supervised driver ---------- *)

type step =
  | Done of Report.t
  | Parked of Snapshot.t
  | Failed of { exn : string; backtrace : string }

(* One supervised stretch of one job's session: start it (or restore it
   from [resume]), advance it in [slice]-sized budgets, and stop at the
   first of (a) the run finishing — [Done], (b) [park_after] yielded
   slices elapsing — the session is frozen and handed back as [Parked],
   which is how the serve scheduler migrates a job between workers, or
   (c) anything raising — contained as [Failed] rather than escaping.
   [checkpoint_slices] refreshes a checkpoint through [on_checkpoint]
   after every yielded slice (the crash-recovery pattern [run] uses);
   [on_slice] observes each [Session.advance] call's host-side wall
   clock, which is how the serve layer measures slice latency.  Slicing,
   parking and restoring never change results: the engine's counters are
   byte-identical however a run is cut (test/test_snapshot.ml). *)
let step ?(slice = max_int) ?park_after ?(checkpoint_slices = false)
    ?on_checkpoint ?resume ?on_slice (j : job) =
  let config = effective_config j in
  let checkpoint live =
    let snap = Session.checkpoint live in
    Option.iter (fun f -> f snap) on_checkpoint;
    snap
  in
  let timed live =
    match on_slice with
    | None -> Session.advance live ~budget:slice
    | Some f ->
        let t0 = Unix.gettimeofday () in
        let r = Session.advance live ~budget:slice in
        f (Unix.gettimeofday () -. t0);
        r
  in
  match
    let live =
      match resume with
      | Some snap -> Session.restore snap
      | None -> Session.start ~config (j.image ())
    in
    let rec loop yields =
      match timed live with
      | `Finished _ -> Done (Session.report live)
      | `Yielded -> (
          let yields = yields + 1 in
          match park_after with
          | Some k when yields >= k -> Parked (checkpoint live)
          | _ ->
              if checkpoint_slices then ignore (checkpoint live);
              loop yields)
    in
    loop 0
  with
  | result -> result
  | exception e ->
      Failed
        {
          exn = Printexc.to_string e;
          backtrace =
            Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ());
        }

(* One job under supervision: any exception out of the image thunk, the
   session machinery or a syscall handler is contained as [Crashed]
   instead of tearing down the whole batch.  With [retries], a failed
   attempt restarts from the last checkpoint (or from scratch when
   checkpointing is off or nothing was checkpointed yet). *)
let exec_job ~retries ~checkpoint_every (j : job) =
  let slice, checkpoint_slices =
    match checkpoint_every with Some n when n > 0 -> (n, true) | _ -> (max_int, false)
  in
  let last = ref None in
  let rec attempt n =
    match
      step ~slice ~checkpoint_slices
        ~on_checkpoint:(fun snap -> last := Some snap)
        ?resume:!last j
    with
    | Done report -> Finished report
    | Parked _ ->
        failwith "Fleet.exec_job: step parked a job with no park_after set"
    | Failed { exn; backtrace } ->
        if n < retries then attempt (n + 1)
        else Crashed { exn; backtrace; attempts = n + 1 }
  in
  attempt 0

let aggregate results =
  let reports =
    List.filter_map
      (fun r -> match r.outcome with Finished rep -> Some rep | Crashed _ -> None)
      results
  in
  let of_outcome p =
    count
      (fun r ->
        match r.outcome with
        | Finished rep -> p rep.Report.outcome
        | Crashed _ -> false)
      results
  in
  {
    results;
    stats = Stats.total (List.map (fun (rep : Report.t) -> rep.Report.stats) reports);
    exited = of_outcome (function Report.Exited _ -> true | _ -> false);
    alerted = of_outcome (function Report.Alert _ -> true | _ -> false);
    faulted = of_outcome (function Report.Fault _ -> true | _ -> false);
    timed_out = of_outcome (function Report.Timeout -> true | _ -> false);
    crashed =
      count (fun r -> match r.outcome with Crashed _ -> true | _ -> false) results;
  }

let run ?domains ?(retries = 0) ?checkpoint_every jobs =
  aggregate
    (Pool.map ?domains
       (fun (j : job) ->
         { name = j.name; outcome = exec_job ~retries ~checkpoint_every j })
       jobs)

let to_json t =
  Results.Obj
    [
      ("sessions", Results.Int (List.length t.results));
      ("exited", Results.Int t.exited);
      ("alerts", Results.Int t.alerted);
      ("faults", Results.Int t.faulted);
      ("timeouts", Results.Int t.timed_out);
      ("crashed", Results.Int t.crashed);
      ( "totals",
        Results.Obj
          [
            ("instructions", Results.Int t.stats.Stats.instructions);
            ("cycles", Results.Int t.stats.Stats.cycles);
            ("loads", Results.Int t.stats.Stats.loads);
            ("stores", Results.Int t.stats.Stats.stores);
            ("io_cycles", Results.Int t.stats.Stats.io_cycles);
          ] );
      ( "runs",
        Results.List
          (List.map
             (fun r ->
               Results.Obj
                 (("name", Results.String r.name)
                 ::
                 (match r.outcome with
                 | Finished rep -> [ ("report", Results.of_report rep) ]
                 | Crashed c ->
                     (* the backtrace is host-specific, so it stays out
                        of the (diffable) JSON *)
                     [
                       ( "crashed",
                         Results.Obj
                           [
                             ("exn", Results.String c.exn);
                             ("attempts", Results.Int c.attempts);
                           ] );
                     ])))
             t.results) );
    ]

let pp ppf t =
  let line name outcome (s : Stats.t) =
    Format.fprintf ppf "%-14s %-14s %12d %12d %10d %10d@," name outcome
      s.Stats.instructions s.Stats.cycles s.Stats.loads s.Stats.stores
  in
  Format.fprintf ppf "@[<v>%-14s %-14s %12s %12s %10s %10s@," "session" "outcome"
    "instructions" "cycles" "loads" "stores";
  List.iter
    (fun r ->
      match r.outcome with
      | Finished rep ->
          line r.name
            (Format.asprintf "%a" Report.pp_outcome rep.Report.outcome)
            rep.Report.stats
      | Crashed c ->
          Format.fprintf ppf "%-14s crashed (%d attempts): %s@," r.name
            c.attempts c.exn)
    t.results;
  line "TOTAL"
    (Printf.sprintf "%d ok/%d bad" t.exited
       (t.alerted + t.faulted + t.timed_out + t.crashed))
    t.stats;
  Format.fprintf ppf "@]"
