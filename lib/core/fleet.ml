module Stats = Shift_machine.Stats

type job = {
  name : string;
  image : unit -> Shift_compiler.Image.t;
  config : Session.Config.t;
}

let job ?(config = Session.Config.default) ~name image = { name; image; config }

type result = { name : string; report : Report.t }

type t = {
  results : result list;
  stats : Stats.t;
  exited : int;
  alerted : int;
  faulted : int;
  timed_out : int;
}

let count p results = List.length (List.filter p results)

let run ?domains jobs =
  let results =
    Pool.map ?domains
      (fun (j : job) ->
        { name = j.name; report = Session.exec ~config:j.config (j.image ()) })
      jobs
  in
  let of_outcome p = count (fun r -> p r.report.Report.outcome) results in
  {
    results;
    stats = Stats.total (List.map (fun r -> r.report.Report.stats) results);
    exited = of_outcome (function Report.Exited _ -> true | _ -> false);
    alerted = of_outcome (function Report.Alert _ -> true | _ -> false);
    faulted = of_outcome (function Report.Fault _ -> true | _ -> false);
    timed_out = of_outcome (function Report.Timeout -> true | _ -> false);
  }

let to_json t =
  Results.Obj
    [
      ("sessions", Results.Int (List.length t.results));
      ("exited", Results.Int t.exited);
      ("alerts", Results.Int t.alerted);
      ("faults", Results.Int t.faulted);
      ("timeouts", Results.Int t.timed_out);
      ( "totals",
        Results.Obj
          [
            ("instructions", Results.Int t.stats.Stats.instructions);
            ("cycles", Results.Int t.stats.Stats.cycles);
            ("loads", Results.Int t.stats.Stats.loads);
            ("stores", Results.Int t.stats.Stats.stores);
            ("io_cycles", Results.Int t.stats.Stats.io_cycles);
          ] );
      ( "runs",
        Results.List
          (List.map
             (fun r ->
               Results.Obj
                 [
                   ("name", Results.String r.name);
                   ("report", Results.of_report r.report);
                 ])
             t.results) );
    ]

let pp ppf t =
  let line name outcome (s : Stats.t) =
    Format.fprintf ppf "%-14s %-14s %12d %12d %10d %10d@," name outcome
      s.Stats.instructions s.Stats.cycles s.Stats.loads s.Stats.stores
  in
  Format.fprintf ppf "@[<v>%-14s %-14s %12s %12s %10s %10s@," "session" "outcome"
    "instructions" "cycles" "loads" "stores";
  List.iter
    (fun r ->
      line r.name
        (Format.asprintf "%a" Report.pp_outcome r.report.Report.outcome)
        r.report.Report.stats)
    t.results;
  line "TOTAL"
    (Printf.sprintf "%d ok/%d bad" t.exited
       (t.alerted + t.faulted + t.timed_out))
    t.stats;
  Format.fprintf ppf "@]"
