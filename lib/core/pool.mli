(** A fixed-size work pool over OCaml 5 domains with deterministic
    result ordering.

    The system's unit of work — compile a guest program under a mode
    and run it to completion on the simulator — is pure given its
    inputs (the simulated machine carries no host-time or randomness),
    so a grid of independent sessions can execute on any number of
    domains and still produce byte-identical output: {!map} always
    returns results in the order of its input list, whatever order the
    items were picked up in.

    Promoted from the bench harness so the core library ({!Fleet}) and
    the CLI can batch sessions across domains; [bench/pool.ml] remains
    as a re-export shim. *)

val set_domains : int -> unit
(** Fix the pool size used by {!map} when no [?domains] override is
    given.  [0] (and any negative value) means
    [Domain.recommended_domain_count ()].  Call once at startup,
    before the first {!map}. *)

val domains : unit -> int
(** The pool size {!map} will use: the {!set_domains} value, defaulting
    to [Domain.recommended_domain_count ()]. *)

(** A resident domain pool for long-lived services.

    {!map} spins its domains up and down per call — right for batch
    grids, wrong for a daemon.  A {!Workers.t} keeps its domains alive
    and feeds them submitted thunks until {!Workers.shutdown}; the
    [shiftc serve] scheduler drives session slices through one. *)
module Workers : sig
  type t

  val create : ?domains:int -> unit -> t
  (** Spawn a pool of [domains] resident workers ([<= 0], the default,
      means [Domain.recommended_domain_count ()]). *)

  val size : t -> int
  (** The number of worker domains. *)

  val submit : t -> (unit -> unit) -> unit
  (** Enqueue a thunk; some worker runs it FIFO.  A raising thunk is
      contained (the worker survives and its exception is dropped), so
      callers that care wrap their own supervision around the task.
      @raise Invalid_argument after {!shutdown}. *)

  val shutdown : t -> unit
  (** Stop accepting work, let the queue run dry, and join every
      worker.  Already-queued tasks complete first. *)
end

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f items] applies [f] to every item and returns the results in
    input order.  Items are distributed over [min domains (length
    items)] domains via a shared atomic cursor; with an effective pool
    size of one, [f] runs in the calling domain with no spawns at all,
    which is the serial path the parallel output is required to match.
    If any application of [f] raises, the pool finishes its other items,
    then re-raises the exception of the earliest failed item. *)
