(** [shiftc serve]: a resident taint-tracking service.

    Three layers, separable so each is testable on its own:

    - a {!catalog} maps protocol names (kernel, attack case, traceable
      image) to {!Fleet.job}s — injected by the caller, because the
      core library cannot depend on the workload/attack suites;
    - a {!Scheduler} admits jobs, drives their sessions in bounded
      engine slices ({!Session.advance} via {!Fleet.step}) on a
      resident {!Pool.Workers} domain pool, migrates a running session
      between workers through {!Snapshot} images, and contains crashes
      with retries-from-checkpoint;
    - a {!Server} speaks {!Protocol} (versioned JSONL) over a
      Unix-domain socket: accept/dispatch, response routing, graceful
      drain.

    The headline invariant, enforced by CI: a job's JSON result is
    byte-identical whether it runs solo ([shiftc run --json]), batched,
    or checkpoint-migrated mid-flight between the daemon's workers —
    sessions are pure given their config, and slicing or migrating
    never perturbs the simulated machine. *)

(** {1 Job catalogues} *)

(** How the server turns protocol names into runnable jobs.  Each
    resolver returns [Error msg] for an unknown name; the server maps
    that to an [unknown_name] protocol error.  The standard catalogue
    over the SPEC-like kernels and the Table-2 attack suite lives in
    [lib/catalog] (the core library cannot depend on those suites). *)
type catalog = {
  kernel_job :
    mode:Shift_compiler.Mode.t ->
    size:int option ->
    safe:bool ->
    superblocks:bool ->
    backend:Shift_tracking.Backend.t ->
    string ->
    (Fleet.job, string) result;
  attack_job :
    mode:Shift_compiler.Mode.t ->
    benign:bool ->
    superblocks:bool ->
    backend:Shift_tracking.Backend.t ->
    string ->
    (Fleet.job, string) result;
  trace_job :
    mode:Shift_compiler.Mode.t ->
    benign:bool ->
    ring:int ->
    only:string option ->
    superblocks:bool ->
    backend:Shift_tracking.Backend.t ->
    string ->
    (Fleet.job, string) result;
  batch_jobs :
    mode:Shift_compiler.Mode.t ->
    size:int option ->
    safe:bool ->
    superblocks:bool ->
    backend:Shift_tracking.Backend.t ->
    string list ->
    (Fleet.job list, string) result;
      (** [[]] means the catalogue's whole suite *)
  leak_job :
    mode:Shift_compiler.Mode.t ->
    clause:Leak.clause ->
    variants:int ->
    superblocks:bool ->
    backend:Shift_tracking.Backend.t ->
    string ->
    (unit -> Leak.verdict, string) result;
      (** The leakage detector over a named attack case's input
          variants; the thunk runs all variant sessions to completion
          (the server answers synchronously — a leak probe is a handful
          of ordinary sessions, not a schedulable long-running job). *)
}

(** {1 The scheduler} *)

module Scheduler : sig
  (** Admits jobs and multiplexes their sessions over a resident domain
      pool.  Each job is driven in [slice]-instruction engine slices;
      with [migrate_every] set, the session is checkpointed after that
      many slices, parked, and re-enqueued — so the next stretch may run
      on a different worker (live migration).  A crashing job is retried
      from its last parked snapshot up to its [retries] budget, then
      reported as {!Fleet.Crashed}.  Results are byte-identical to solo
      runs whatever the slicing, worker count or migration cadence. *)

  type t

  (** A completed job, as handed to [on_done] / {!take_finished}. *)
  type done_job = {
    job : string;  (** the id given to {!submit} *)
    outcome : Fleet.outcome;
    migrations : int;  (** parks survived (worker handoffs) *)
    attempts : int;  (** session runs attempted, retries included *)
  }

  val create :
    ?workers:int ->
    ?slice:int ->
    ?on_slice:(float -> unit) ->
    ?on_done:(done_job -> unit) ->
    ?checkpoint_dir:string ->
    unit ->
    t
  (** [workers] [<= 0] (default) means the runtime's recommendation;
      [slice] is the engine budget per advance (default 50_000
      instructions).  [on_slice] observes every slice's host wall-clock
      seconds and [on_done] every completion; both run on worker
      domains, so shared sinks must synchronise.  [checkpoint_dir]
      additionally persists each parked snapshot to
      [job-<seq>.snap.json] in that directory (created if missing,
      removed when the job completes) so an operator can [shiftc
      resume] orphaned work after a daemon crash. *)

  val workers : t -> int

  val submit :
    t ->
    ?deadline:int ->
    ?migrate_every:int ->
    ?retries:int ->
    id:string ->
    Fleet.job ->
    unit
  (** Admit a job under [id] (unique per scheduler; the same id comes
      back in the {!done_job}).  [deadline] tightens the job's fuel cap
      ({!Fleet.with_deadline}); [migrate_every] parks-and-migrates the
      session every that-many slices; [retries] (default 0) is the
      crash-retry budget. *)

  val in_flight : t -> int
  (** Jobs admitted but not yet completed (queued, running or parked). *)

  val stats : t -> (string * int) list
  (** Counters for the status endpoint: workers, admitted, in_flight,
      running, completed, crashed, migrations — in that order. *)

  val take_finished : t -> done_job list
  (** Completed jobs not yet collected, in completion order. *)

  val drain : t -> unit
  (** Block until every admitted job has completed. *)

  val shutdown : t -> unit
  (** Join the worker pool.  Call {!drain} first: a job still in
      flight when the pool stops is completed as crashed. *)
end

(** {1 The socket server} *)

module Server : sig
  type config = {
    socket_path : string;  (** Unix-domain socket path *)
    workers : int;  (** scheduler workers; [<= 0] = recommended *)
    slice : int;  (** engine slice, instructions *)
    max_request_bytes : int;  (** request-line cap, advertised in hello *)
    checkpoint_dir : string option;  (** parked-snapshot spill directory *)
    migrate_every : int option;
        (** default migration cadence for requests that don't choose *)
  }

  val default_config : config
  (** [shiftc.sock], recommended workers, 50_000-instruction slices,
      {!Protocol.default_max_request_bytes}, no spill dir, no default
      migration. *)

  val run : ?on_ready:(config -> unit) -> catalog:catalog -> config -> unit
  (** Bind the socket (replacing a stale file), call [on_ready], and
      serve until a [drain] request completes: admission stops, in-flight
      jobs finish and their responses flush, drain waiters are answered,
      then the socket is closed and unlinked and the worker pool joined.
      Malformed lines are answered with protocol errors; a client
      disconnecting mid-job never disturbs the job (its result is
      dropped).  Blocks the calling domain for the server's lifetime. *)
end

(** {1 A blocking client}

    The client side of {!Protocol}, used by [shiftc client], the serve
    benchmark and the test suite. *)

module Client : sig
  type t

  val connect : string -> (t, string) result
  (** Connect to the daemon's socket and perform the hello handshake. *)

  val request : t -> Protocol.envelope -> (Results.json, string) result
  (** Send one request and block until the response with the matching
      [id] arrives (responses to other requests are queued aside).
      [Error] means a transport failure, not a protocol-level error
      response — those come back as [Ok json] with ["ok": false]. *)

  val send_line : t -> string -> (unit, string) result
  (** Ship a raw line (for protocol edge-case tests). *)

  val read_line : t -> string option
  (** Next line from the server, [None] at EOF. *)

  val close : t -> unit
end
