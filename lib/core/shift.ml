(** The public face of the library.

    {!Session} compiles and runs guest programs; {!Report} is what you
    get back.  The remaining aliases re-export the pieces a user needs
    to configure a run without hunting through the sub-libraries:

    {[
      let report =
        Shift.Session.run
          ~mode:Shift.Mode.shift_word
          ~policy:{ Shift.Policy.default with h3 = true }
          ~setup:(fun world -> Shift.World.queue_request world payload)
          my_program
      in
      match report.Shift.Report.outcome with
      | Shift.Report.Alert a -> handle a
      | _ -> ...
    ]} *)

module Session = Session
module Report = Report

(** Machine-readable (JSON) results for the benchmark harness. *)
module Results = Results

(** The domain pool behind every parallel grid (deterministic result
    ordering). *)
module Pool = Pool

(** Batch sessions: N independent runs across domains with a
    deterministic aggregate report. *)
module Fleet = Fleet

(** Deterministic checkpoint images of live sessions
    ([Session.checkpoint] / [Session.restore]). *)
module Snapshot = Snapshot

(** The [shiftc serve] wire protocol (versioned JSONL). *)
module Protocol = Protocol

(** The resident service: scheduler, socket server, client. *)
module Serve = Serve

(** The resumable execution engine sessions are driven through. *)
module Exec = Shift_machine.Exec

(** Taint-provenance tracking: sources, propagation events, chains. *)
module Flowtrace = Shift_machine.Flowtrace

(** Taint-tracking backend selection: on-core [nat] (the paper),
    decoupled [coproc], uninstrumented [none]. *)
module Backend = Shift_tracking.Backend

(** The tracking-backend runtime: tag-queue records, lag model,
    per-backend source/check gating. *)
module Tracking = Shift_tracking.Tracking

(** Deterministic JSONL export of a flow trace. *)
module Flow = Flow

(** The cache-set observation trace (the side-channel "hardware
    trace"). *)
module Hwtrace = Shift_machine.Hwtrace

(** The speculation-contract leakage detector: differential runs over
    tainted-byte variants, divergences named via provenance. *)
module Leak = Leak

(** Compilation / instrumentation modes. *)
module Mode = Shift_compiler.Mode

(** Security-policy configuration (paper Table 1). *)
module Policy = Shift_policy.Policy

module Alert = Shift_policy.Alert

(** The simulated OS: files, network, taint sources, sinks. *)
module World = Shift_os.World

(** Compiled executable images. *)
module Image = Shift_compiler.Image

(** Taint granularity (byte or word). *)
module Granularity = Shift_mem.Granularity
