(** The result of running a guest program under SHIFT: how it ended,
    what it touched, and the performance counters the benchmark harness
    turns into the paper's tables (serialise one with
    [Results.of_report]). *)

(** How the run ended. *)
type outcome =
  | Exited of int64
      (** normal termination with the given exit status *)
  | Alert of Shift_policy.Alert.t
      (** a security policy stopped the program *)
  | Fault of Shift_machine.Fault.t
      (** a machine fault not attributable to a policy *)
  | Timeout
      (** fuel exhausted *)

type t = {
  outcome : outcome;     (** how the run ended *)
  stats : Shift_machine.Stats.t;
      (** cycle, instruction and issue-slot counters *)
  logged : Shift_policy.Alert.t list;
      (** alerts recorded under the [Log_only] action *)
  output : string;       (** bytes written to stdout / the network *)
  html : string;         (** bytes emitted through the HTML sink *)
  sql : string list;     (** queries the guest executed *)
  commands : string list;(** shell commands the guest executed *)
  flow : Shift_machine.Flowtrace.summary option;
      (** flow-trace summary when the session was traced
          ([Config.trace]); [None] otherwise *)
  cache_hits : int;
  cache_misses : int;
      (** L1D counters summed over harts; simulated state (they ride
          {!Shift_machine.Cache.snap} through checkpoints), so they are
          identical however the run was sliced *)
}

val detected : t -> bool
(** Whether any policy fired (a stopping alert or a logged one). *)

val alert : t -> Shift_policy.Alert.t option
(** The stopping alert, if the outcome is [Alert]. *)

val cycles : t -> int
(** Total simulated cycles of the run, I/O costs included — the
    numerator (and, for uninstrumented runs, the denominator) of every
    slowdown the harness reports. *)

val cache_hit_rate : t -> float
(** [hits / (hits + misses)], or 0 when the run made no accesses. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** One-line rendering of an {!outcome}. *)

val pp : Format.formatter -> t -> unit
(** Multi-line rendering: outcome, counters, and any logged alerts. *)
