(** Machine-readable experiment results.

    The benchmark harness ([bench/main.exe --json]) serialises every
    experiment into a versioned JSON document, one [BENCH_<experiment>.json]
    file per experiment, so performance trajectories can be diffed across
    commits by machines rather than by reading console tables.  The
    container ships no JSON library, so this module carries a small
    self-contained JSON type with a printer and a parser; the parser
    exists mainly so tests can assert round-trips.

    The document layout (see EXPERIMENTS.md for the full schema) is:

    {[
      {
        "schema_version": 2,
        "experiment": "fig7",
        "domains": 4,
        "wall_clock_s": 12.34,
        "data": { ... experiment-specific payload ... }
      }
    ]} *)

(** A JSON value.  Numbers keep their OCaml representation: [Int] for
    exact counters (cycles, instruction counts), [Float] for derived
    ratios (slowdowns, overheads). *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list  (** fields, in emission order *)

val schema_version : int
(** Version stamped into every {!document}.  Bump it whenever the shape
    of an emitted payload changes incompatibly. *)

val to_string : ?minify:bool -> json -> string
(** Serialise.  Pretty-printed with two-space indentation by default
    (the files are meant to be read in diffs); [minify] drops all
    whitespace.  Non-finite floats become [null], since JSON has no
    representation for them; all other floats are printed with enough
    digits to parse back to the identical value. *)

val of_string : string -> (json, string) result
(** Parse a complete JSON text.  Accepts exactly the constructs
    {!to_string} emits plus standard escapes; the error string carries
    a byte offset. *)

val member : string -> json -> json option
(** [member key j] is the value of field [key] if [j] is an [Obj]
    containing it. *)

val of_stats : Shift_machine.Stats.t -> json
(** Counters of one run: instructions, cycles, loads, stores, branches,
    predicated-off slots, syscalls, I/O cycles, and the per-provenance
    issue-slot breakdown that drives the Figure-9 analysis (keyed by
    {!Shift_isa.Prov.to_string} names). *)

val of_flow : Shift_machine.Flowtrace.summary -> json
(** Flow-trace counters of a traced run: births, propagations, purges,
    checks, sink hits, max chain depth, and ring occupancy. *)

val of_outcome : Report.outcome -> json
(** Tagged object with a ["kind"] of ["exited"], ["alert"], ["fault"]
    or ["timeout"], plus the kind-specific detail.  Alerts from traced
    runs additionally carry their provenance ["chain"]. *)

val of_report : Report.t -> json
(** Outcome, detection flag, {!of_stats} counters, and alert/output
    volume counts, plus a ["flow"] object ({!of_flow}) for traced runs.
    Raw output bytes are deliberately omitted — the documents are
    diffed, not replayed. *)

val document :
  experiment:string -> domains:int -> wall_clock_s:float -> json -> json
(** Wrap an experiment payload in the versioned envelope shown above.
    [domains] is the worker-pool size the harness ran with and
    [wall_clock_s] the host-side wall-clock for the whole experiment,
    the two numbers that make parallel-speedup regressions visible. *)
