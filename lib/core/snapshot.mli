(** Deterministic checkpoint images of a live session.

    A snapshot captures {e everything} that determines the rest of a
    run: the compiled image, the session configuration, every hart's
    architectural and micro-architectural state (registers with NaT
    bits, UNAT, predicates, pipeline scoreboard, cache lines, counters),
    the touched memory pages (which include the taint bitmap — region 0
    of the address space), the OS world (files, fd positions, pending
    requests, buffers, heap break), and — for traced runs — the
    Flowtrace ring plus the provenance shadow pages.

    The headline invariant (enforced by test/test_snapshot.ml and the
    CI resume gate): checkpoint mid-flight, serialise to disk, restore
    in a fresh process, run to completion — and every counter and
    report field is byte-identical to the unbroken run, across single
    hart, SMP and traced shapes.

    The on-disk format is versioned JSON ({!Results.json}); binary
    payloads (memory pages, the marshalled image) are hex-encoded.
    [Session.checkpoint] produces snapshots and [Session.restore]
    rebuilds live sessions from them; this module owns the data model
    and the serialisation. *)

(** {1 The data model} *)

(** Machine shape, mirrored from [Session.Config.threading] (which this
    module cannot name without a dependency cycle). *)
type threading =
  | T_single
  | T_threads of int option
  | T_procs of { tp_quantum : int option; tp_comm : string option }

(** The serialisable part of a session configuration.  The world-setup
    closure is deliberately absent: its effects are already captured in
    the world and memory state, so a restored session runs with a no-op
    setup. *)
type config = {
  c_policy : Shift_policy.Policy.t;
  c_io_cost : Shift_os.World.io_cost;
  c_fuel : int;  (** the configured budget, not what remains *)
  c_threading : threading;
  c_trace : Shift_machine.Flowtrace.options option;
  c_hwtrace : bool;
      (** whether the session records the cache-set observation trace;
          the buffer itself is never snapshotted (a restored session
          records from the restore point on), and the flag is serialised
          only when on so untraced snapshots keep their bytes *)
  c_superblocks : bool;
      (** whether the superblock compiler may run; the block cache itself
          is derived state and never snapshotted (a restored machine
          starts cold with identical simulated counters) *)
  c_backend : Shift_tracking.Backend.t;
      (** tracking backend; serialised only when not the default [Nat],
          so nat snapshots stay byte-identical to pre-backend ones *)
  c_images : (string * Shift_compiler.Image.t) list;
      (** auxiliary exec'able images by program name, multi-process
          sessions only; serialised only when non-empty so every other
          snapshot shape stays byte-identical to version 1 files *)
}

(** One hart's complete execution state. *)
type hart = {
  h_values : int64 array;
  h_nats : bool array;
  h_preds : bool array;
  h_unat : int64;
  h_ip : int;
  h_stats : Shift_machine.Stats.t;
  h_pipe : Shift_machine.Pipeline.snap;
  h_cache : Shift_machine.Cache.snap;
  h_call_stack : (int * int64) list;  (** top of stack first *)
  h_ftregs : (int array * int array) option;
      (** register provenance shadow (ids, depths) for traced runs *)
}

(** One process-table entry: its hart, its private address space and
    provenance shadow (multi-process machines dump pages per process,
    so the top-level [memory] and flow pages stay empty), and its
    kernel context. *)
type proc_snap = {
  ps_pid : int;
  ps_parent : int;
  ps_image : string option;
      (** name of the exec'd auxiliary image; [None] = the main image *)
  ps_state : Shift_os.Process.state;
  ps_hart : hart;
  ps_mem : (int64 * string) list;
  ps_prov : (int64 * string) list;  (** traced runs only, else [[]] *)
  ps_ctx : Shift_os.World.ctx_state;
}

type machine =
  | M_cpu of hart
  | M_smp of {
      sm_quantum : int;
      sm_harts : (int * Shift_machine.Smp.state * hart) list;
          (** in id order, hart 0 first — finished harts included so
              spawn numbering stays deterministic after restore *)
      sm_round : (int * int) list;
          (** suspended round-robin tail: hart id, remaining quantum *)
      sm_finished : Shift_machine.Cpu.outcome option;
    }
  | M_procs of {
      pm_quantum : int;
      pm_next_pid : int;
      pm_procs : proc_snap list;  (** in pid order, pid 1 first *)
      pm_round : (int * int) list;
          (** suspended scheduler tail: pid, remaining quantum *)
      pm_finished : Shift_machine.Cpu.outcome option;
      pm_retired : Shift_machine.Stats.t;
          (** counters of already-reaped processes *)
    }

type t = {
  meta : (string * string) list;
      (** free-form provenance (kernel name, mode, ...); not consumed
          by restore *)
  image : Shift_compiler.Image.t;
      (** embedded so a snapshot is self-contained: [shiftc resume]
          needs nothing but the file *)
  config : config;
  fuel_left : int;
  result : Report.outcome option;  (** set when the run already finished *)
  memory : (int64 * string) list;
      (** touched pages as (page key, {!Shift_mem.Memory.page_size}
          bytes), ascending key order, all-zero pages elided *)
  machine : machine;
  world : Shift_os.World.dump;
  flow : (Shift_machine.Flowtrace.dump * (int64 * string) list) option;
      (** flow-trace state plus provenance shadow pages, traced runs
          only *)
  tracking : Shift_tracking.Tracking.dump option;
      (** tag-coprocessor state — register tag file, pending queue, lag
          clock, uncharged stall — [coproc] sessions only.  The
          coprocessor's memory bitmap needs no separate entry: it lives
          in guest memory and rides the [memory] pages. *)
}

val version : int
(** Format version stamped into every serialised snapshot; loading
    rejects other versions.  Version 2 added the multi-process machine
    shape, auxiliary images and the kernel-object descriptor table. *)

(** {1 Capture and restore helpers}

    [Session.checkpoint]/[Session.restore] are the public entry points;
    these are the building blocks they use. *)

val capture :
  ?meta:(string * string) list ->
  ?tracking:Shift_tracking.Tracking.dump ->
  image:Shift_compiler.Image.t ->
  config:config ->
  fuel_left:int ->
  result:Report.outcome option ->
  engine:Shift_machine.Exec.t ->
  world:Shift_os.World.t ->
  unit ->
  t
(** Deep-copy the machine, memory, world and (when traced) flow state
    out of a live engine.  Safe to call between [run_for] slices only —
    never from inside a syscall handler.
    @raise Invalid_argument on a [Custom] engine — a process-table
    machine checkpoints through {!capture_procs}. *)

val capture_procs :
  ?meta:(string * string) list ->
  ?tracking:Shift_tracking.Tracking.dump ->
  image:Shift_compiler.Image.t ->
  config:config ->
  fuel_left:int ->
  result:Report.outcome option ->
  procs:Shift_os.Process.t ->
  world:Shift_os.World.t ->
  unit ->
  t
(** {!capture} for a multi-process machine: every table entry's hart,
    address space, provenance shadow and kernel context is dumped
    per process ([M_procs]); the top-level [memory] page list is
    empty. *)

val export_cpu : traced:bool -> Shift_machine.Cpu.t -> hart
(** Deep copy of one hart's state ([traced] adds the register
    provenance shadow). *)

val import_cpu : hart -> Shift_machine.Cpu.t -> unit
(** Overwrite a freshly created CPU's state with the hart's.
    @raise Invalid_argument on register-file arity mismatches. *)

val load_memory : Shift_mem.Memory.t -> (int64 * string) list -> unit
val load_provenance : Shift_mem.Provenance.t -> (int64 * string) list -> unit

(** {1 Serialisation} *)

val to_json : t -> Results.json
(** Deterministic: field order is fixed, pages are sorted by key,
    hashtable-backed state is sorted before emission. *)

val of_json : Results.json -> (t, string) result

val save : string -> t -> unit
(** Write [to_json] (pretty-printed) to a file, atomically (write to a
    temporary sibling, then rename). *)

val load : string -> (t, string) result
(** Read and parse a snapshot file. *)
