(* Domain pool with deterministic result ordering: items are claimed
   through an atomic cursor, results land in their input slot. *)

let configured = ref 0

let recommended () = max 1 (Domain.recommended_domain_count ())

let set_domains n = configured := n

let domains () = if !configured <= 0 then recommended () else !configured

(* ---------- persistent workers ---------- *)

(* A resident domain pool: [map] spins domains up and down per call,
   which is right for batch grids but wrong for a long-lived service.
   [Workers] keeps its domains alive, feeding them thunks through a
   mutex-guarded queue, until [shutdown]. *)
module Workers = struct
  type t = {
    lock : Mutex.t;
    work : Condition.t;  (* signalled on submit and on shutdown *)
    queue : (unit -> unit) Queue.t;
    mutable stopping : bool;
    mutable members : unit Domain.t list;
    size : int;
  }

  let worker t () =
    let rec loop () =
      let task =
        Mutex.protect t.lock (fun () ->
            let rec wait () =
              if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
              else if t.stopping then None
              else begin
                Condition.wait t.work t.lock;
                wait ()
              end
            in
            wait ())
      in
      match task with
      | None -> ()
      | Some task ->
          (* a raising task must not take its worker down: the pool is
             shared by every job of the service, so containment happens
             here as well as in the supervisor above *)
          (try task () with _ -> ());
          loop ()
    in
    loop ()

  let create ?(domains = 0) () =
    let size = if domains <= 0 then recommended () else domains in
    let t =
      {
        lock = Mutex.create ();
        work = Condition.create ();
        queue = Queue.create ();
        stopping = false;
        members = [];
        size;
      }
    in
    t.members <- List.init size (fun _ -> Domain.spawn (worker t));
    t

  let size t = t.size

  let submit t task =
    Mutex.protect t.lock (fun () ->
        if t.stopping then invalid_arg "Pool.Workers.submit: pool is shut down";
        Queue.add task t.queue;
        Condition.signal t.work)

  let shutdown t =
    Mutex.protect t.lock (fun () ->
        t.stopping <- true;
        Condition.broadcast t.work);
    List.iter Domain.join t.members;
    t.members <- []
end

let map ?domains:override f items =
  let want =
    match override with
    | Some n when n > 0 -> n
    | Some _ -> recommended ()
    | None -> domains ()
  in
  let tasks = Array.of_list items in
  let n = Array.length tasks in
  let want = max 1 (min want n) in
  if want = 1 then List.map f items
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (results.(i) <-
             Some
               (match f tasks.(i) with
               | v -> Ok v
               | exception e -> Error (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (want - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    (* re-raise the earliest failure, if any, after the pool is quiet *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | _ -> ())
      results;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error _) | None ->
             failwith
               "Pool.map: a result slot was never filled — every worker \
                joined and no error was re-raised, so the claim cursor \
                skipped an index")
  end
