(* Domain pool with deterministic result ordering: items are claimed
   through an atomic cursor, results land in their input slot. *)

let configured = ref 0

let recommended () = max 1 (Domain.recommended_domain_count ())

let set_domains n = configured := n

let domains () = if !configured <= 0 then recommended () else !configured

let map ?domains:override f items =
  let want =
    match override with
    | Some n when n > 0 -> n
    | Some _ -> recommended ()
    | None -> domains ()
  in
  let tasks = Array.of_list items in
  let n = Array.length tasks in
  let want = max 1 (min want n) in
  if want = 1 then List.map f items
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (results.(i) <-
             Some
               (match f tasks.(i) with
               | v -> Ok v
               | exception e -> Error (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (want - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    (* re-raise the earliest failure, if any, after the pool is quiet *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | _ -> ())
      results;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error _) | None ->
             failwith
               "Pool.map: a result slot was never filled — every worker \
                joined and no error was re-raised, so the claim cursor \
                skipped an index")
  end
