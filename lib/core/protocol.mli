(** The [shiftc serve] wire protocol: versioned JSONL over a
    Unix-domain socket.

    Framing is one JSON object per LF-terminated line, in both
    directions.  A connection opens with version negotiation — the
    client's first line must be a {e hello} carrying
    [{"proto_version": 1}], answered by {!hello_ack} — after which the
    client sends request envelopes and the server answers each with a
    response naming the request's [id].  Responses may arrive in any
    order (jobs finish when they finish), which is why every job
    request must carry an [id].

    This module is the single source of truth for the wire format:
    request parsing, response building, the request-kind catalogue
    ({!kinds}) and the error-code catalogue ({!error_codes}).
    [docs/PROTOCOL.md] documents every kind and code, and CI greps that
    document against these two lists so the spec cannot drift from the
    implementation.  The module is pure data — no sockets — so tests
    exercise the full grammar without a daemon. *)

val version : int
(** The protocol version this build speaks.  A hello carrying any other
    value is rejected with [unsupported_version] and the connection is
    closed; clients are expected to reconnect speaking an older
    protocol only if they implement it (there is exactly one so far). *)

val default_max_request_bytes : int
(** Default cap on one request line's length (1 MiB).  The server's
    {!hello_ack} advertises the cap it actually enforces. *)

(** {1 Errors} *)

(** Machine-readable error codes carried in failure responses. *)
type error_code =
  | Bad_json  (** the line did not parse as JSON *)
  | Bad_request  (** parsed, but a field is missing or ill-typed *)
  | Unsupported_version  (** hello carried a version this build lacks *)
  | Unknown_kind  (** a ["kind"] outside {!kinds} *)
  | Unknown_name  (** no such kernel / attack case / traceable image *)
  | Oversized  (** request line longer than the advertised cap *)
  | Draining  (** job refused because the server is draining *)
  | Job_crashed  (** the job's session crashed (retries exhausted) *)

val error_code_to_string : error_code -> string
val error_codes : error_code list

(** A failure: code, human-readable message, and the offending
    request's [id] when it could still be recovered from the line. *)
type error = { code : error_code; message : string; error_id : string option }

(** {1 Requests} *)

val kinds : string list
(** The request-kind catalogue, in documentation order:
    ["run"], ["attack"], ["trace"], ["batch"], ["leak"], ["status"],
    ["drain"]. *)

(** The request body, by kind.  Modes travel as
    {!Shift_compiler.Mode.to_string} names and default to [word].  Job
    kinds carry a [superblocks] flag (wire field ["superblocks"],
    default [true]): [false] runs the session on the pure interpreter —
    observationally identical, so it is a debugging escape hatch, not a
    semantic knob.  Job kinds also carry a [backend] (wire field
    ["backend"], a {!Shift_tracking.Backend.of_string} name, default
    ["nat"]) selecting the taint-tracking backend; non-nat backends run
    the guest uninstrumented regardless of [mode]
    ([Session.effective_mode]). *)
type request =
  | Run of {
      kernel : string;
      mode : Shift_compiler.Mode.t;
      size : int option;  (** input bytes; [None] = the kernel's default *)
      safe : bool;  (** leave the input untainted *)
      superblocks : bool;
      backend : Shift_tracking.Backend.t;
    }
  | Attack of {
      case : string;  (** prefix of the Table-2 program name *)
      mode : Shift_compiler.Mode.t;
      benign : bool;
      superblocks : bool;
      backend : Shift_tracking.Backend.t;
    }
  | Trace of {
      image : string;  (** attack case or kernel, as [shiftc trace] *)
      mode : Shift_compiler.Mode.t;
      benign : bool;
      ring : int;  (** event-ring capacity *)
      only : string option;  (** comma-separated event kinds, or all *)
      superblocks : bool;
      backend : Shift_tracking.Backend.t;
    }
  | Batch of {
      kernels : string list;  (** [[]] = the whole kernel suite *)
      mode : Shift_compiler.Mode.t;
      size : int option;
      safe : bool;
      retries : int;  (** per-job crash retries *)
      superblocks : bool;
      backend : Shift_tracking.Backend.t;
    }
  | Leak of {
      case : string;  (** attack case with input variants *)
      mode : Shift_compiler.Mode.t;
      clause : Leak.clause;  (** wire field ["clause"], default ct-seq *)
      variants : int;  (** variant count ≥ 2 (wire default 4) *)
      superblocks : bool;
      backend : Shift_tracking.Backend.t;
    }
  | Status
  | Drain

(** A parsed request line: routing metadata plus the body.  [id] is
    required for job kinds (the server enforces it — responses are
    correlated by [id]); [deadline] caps the session's fuel;
    [migrate_every] asks the scheduler to checkpoint-and-migrate the
    session between workers every that-many slices. *)
type envelope = {
  id : string option;
  tenant : string option;
  deadline : int option;
  migrate_every : int option;
  request : request;
}

val kind_of_request : request -> string

val hello_of_json : Results.json -> (int, string) result
(** Extract the [proto_version] of a hello line. *)

val request_of_json : Results.json -> (envelope, error) result

val of_line : ?max_bytes:int -> string -> (envelope, error) result
(** Parse one request line: length cap ([Oversized]), JSON parse
    ([Bad_json]), then {!request_of_json}.  [max_bytes] defaults to
    {!default_max_request_bytes}. *)

(** {1 Building lines}

    Every builder returns a {!Results.json}; {!to_line} turns one into
    its single-line wire form (minified — the pretty printer would
    break JSONL framing). *)

val hello : Results.json
(** What a client opens with: [{"proto_version": 1}]. *)

val hello_ack : max_request_bytes:int -> Results.json
(** The server's answer to a well-versioned hello. *)

val request_to_json : envelope -> Results.json
(** Serialise a request envelope (the client side of
    {!request_of_json}; round-trips through it). *)

val ok_response : ?tenant:string -> id:string -> Results.json -> Results.json
(** [{"id": .., "ok": true, ("tenant": ..,) "result": ..}] *)

val error_response : error -> Results.json
(** [{("id": ..,) "ok": false, "error": {"code": .., "message": ..}}] *)

val response_id : Results.json -> string option
val response_ok : Results.json -> bool

val to_line : Results.json -> string
(** Minified single-line serialisation, without the trailing newline. *)
