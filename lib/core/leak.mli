(** The speculation-contract leakage detector.

    A contract clause fixes what a cache-timing attacker observes about
    an execution; the detector re-runs a session under input variants
    that differ only in tainted bytes and flags any clause-visible
    divergence of the hardware trace ({!Shift_machine.Hwtrace}) — a
    secret-dependent cache footprint that NaT-based DIFT alone never
    sees.  Every engine in the repository is deterministic, so a
    divergence is attributable to the changed (tainted) bytes, and the
    diverging access is named precisely: pc, both set indexes, and the
    input bytes its address carried via Flowtrace provenance. *)

(** What the attacker observes. *)
type clause =
  | Ct_seq
      (** the sequence of load/store cache-set indexes is observable
          (the constant-time contract: any divergence is a leak) *)
  | Ct_none  (** nothing is observable; no program ever leaks *)

val clause_to_string : clause -> string
(** ["ct-seq"] / ["ct-none"]. *)

val clause_of_string : string -> (clause, string) result

type divergence = {
  d_variant : int;  (** variant whose observation split from the baseline *)
  d_index : int;  (** index of the first diverging access *)
  d_pc : int;  (** guest pc of that access *)
  d_store : bool;
  d_set_base : int;  (** set index in the baseline; -1 = access absent *)
  d_set_variant : int;  (** set index in the variant; -1 = access absent *)
  d_tainted : string list;
      (** provenance of the diverging access's address:
          ["input <channel>[<off>] via <origin>"] hops naming the exact
          tainted input bytes, when the session was flow-traced *)
}

type verdict = {
  v_clause : clause;
  v_variants : int;
  v_accesses : int;  (** baseline accesses visible under the clause *)
  v_dropped : int;  (** baseline accesses past the trace limit *)
  v_leak : bool;
  v_divergence : divergence option;  (** present exactly when [v_leak] *)
}

val detect :
  ?clause:clause -> count:int -> start:(int -> Session.live) -> unit -> verdict
(** [detect ~count ~start ()] starts [count] variant sessions ([start i]
    for [i = 0..count-1]; variant 0 is the baseline), runs each to
    completion, and compares observations under [clause] (default
    {!Ct_seq}).  Each session must have [Config.hwtrace] on; enable
    [Config.trace] too if the verdict should name tainted bytes.
    @raise Invalid_argument if [count < 2] or a variant session records
    no hardware trace. *)

val verdict_to_json : verdict -> Results.json
val divergence_to_json : divergence -> Results.json

val trace_json : Session.live -> Results.json list
(** One JSON object per recorded access of the session's trace
    (deterministic; for JSONL export). *)

val observation_digest : Shift_machine.Hwtrace.t -> string
(** Stable 16-hex-digit digest of the ct-seq-visible observation, for
    cheap identity assertions (superblocks on vs off) in bench output. *)

val pp_verdict : Format.formatter -> verdict -> unit
