(* The resident taint-tracking service: scheduler (engine slices over a
   persistent domain pool, Snapshot-based migration, crash containment)
   and the JSONL/Unix-socket control plane.  See serve.mli for the
   layering and PROTOCOL.md for the wire format. *)

module J = Results

type catalog = {
  kernel_job :
    mode:Shift_compiler.Mode.t ->
    size:int option ->
    safe:bool ->
    superblocks:bool ->
    backend:Shift_tracking.Backend.t ->
    string ->
    (Fleet.job, string) result;
  attack_job :
    mode:Shift_compiler.Mode.t ->
    benign:bool ->
    superblocks:bool ->
    backend:Shift_tracking.Backend.t ->
    string ->
    (Fleet.job, string) result;
  trace_job :
    mode:Shift_compiler.Mode.t ->
    benign:bool ->
    ring:int ->
    only:string option ->
    superblocks:bool ->
    backend:Shift_tracking.Backend.t ->
    string ->
    (Fleet.job, string) result;
  batch_jobs :
    mode:Shift_compiler.Mode.t ->
    size:int option ->
    safe:bool ->
    superblocks:bool ->
    backend:Shift_tracking.Backend.t ->
    string list ->
    (Fleet.job list, string) result;
  leak_job :
    mode:Shift_compiler.Mode.t ->
    clause:Leak.clause ->
    variants:int ->
    superblocks:bool ->
    backend:Shift_tracking.Backend.t ->
    string ->
    (unit -> Leak.verdict, string) result;
}

(* ---------- the scheduler ---------- *)

module Scheduler = struct
  type done_job = {
    job : string;
    outcome : Fleet.outcome;
    migrations : int;
    attempts : int;
  }

  type ticket = {
    t_id : string;
    t_seq : int;
    t_job : Fleet.job;
    t_migrate_every : int option;
    t_retries : int;
    mutable t_attempts : int;  (* failed attempts so far *)
    mutable t_snap : Snapshot.t option;  (* freshest parked checkpoint *)
    mutable t_migrations : int;
  }

  type t = {
    pool : Pool.Workers.t;
    slice : int;
    on_slice : (float -> unit) option;
    on_done : (done_job -> unit) option;
    checkpoint_dir : string option;
    lock : Mutex.t;
    idle : Condition.t;  (* signalled whenever a job completes *)
    finished : done_job Queue.t;
    mutable admitted : int;
    mutable in_flight : int;
    mutable running : int;
    mutable completed : int;
    mutable crashed : int;
    mutable migrations : int;
  }

  let create ?(workers = 0) ?(slice = 50_000) ?on_slice ?on_done
      ?checkpoint_dir () =
    (match checkpoint_dir with
    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
    | _ -> ());
    {
      pool = Pool.Workers.create ~domains:workers ();
      slice = (if slice > 0 then slice else 50_000);
      on_slice;
      on_done;
      checkpoint_dir;
      lock = Mutex.create ();
      idle = Condition.create ();
      finished = Queue.create ();
      admitted = 0;
      in_flight = 0;
      running = 0;
      completed = 0;
      crashed = 0;
      migrations = 0;
    }

  let workers t = Pool.Workers.size t.pool

  let spill_file t ticket =
    Option.map
      (fun dir ->
        Filename.concat dir (Printf.sprintf "job-%06d.snap.json" ticket.t_seq))
      t.checkpoint_dir

  let finish t ticket outcome =
    (match spill_file t ticket with
    | Some path -> ( try Sys.remove path with Sys_error _ -> ())
    | None -> ());
    let dj =
      {
        job = ticket.t_id;
        outcome;
        migrations = ticket.t_migrations;
        attempts = ticket.t_attempts + 1;
      }
    in
    Mutex.protect t.lock (fun () ->
        t.in_flight <- t.in_flight - 1;
        (match outcome with
        | Fleet.Crashed _ -> t.crashed <- t.crashed + 1
        | Fleet.Finished _ -> t.completed <- t.completed + 1);
        Queue.add dj t.finished;
        Condition.broadcast t.idle);
    Option.iter (fun f -> f dj) t.on_done

  (* One stretch of one job on whichever worker picked it up.  A parked
     or retried ticket goes to the back of the pool's queue, so its next
     stretch may well run on a different domain — that handoff, with the
     state carried in the Snapshot, is the live migration. *)
  let rec stretch t ticket () =
    Mutex.protect t.lock (fun () -> t.running <- t.running + 1);
    let result =
      Fleet.step ~slice:t.slice ?park_after:ticket.t_migrate_every
        ?on_checkpoint:
          (Option.map
             (fun _ snap -> Snapshot.save (Option.get (spill_file t ticket)) snap)
             t.checkpoint_dir)
        ?resume:ticket.t_snap ?on_slice:t.on_slice ticket.t_job
    in
    Mutex.protect t.lock (fun () -> t.running <- t.running - 1);
    match result with
    | Fleet.Done report -> finish t ticket (Fleet.Finished report)
    | Fleet.Parked snap ->
        ticket.t_snap <- Some snap;
        ticket.t_migrations <- ticket.t_migrations + 1;
        Mutex.protect t.lock (fun () -> t.migrations <- t.migrations + 1);
        requeue t ticket
    | Fleet.Failed { exn; backtrace } ->
        ticket.t_attempts <- ticket.t_attempts + 1;
        if ticket.t_attempts <= ticket.t_retries then requeue t ticket
        else
          finish t ticket
            (Fleet.Crashed { exn; backtrace; attempts = ticket.t_attempts })

  and requeue t ticket =
    match Pool.Workers.submit t.pool (stretch t ticket) with
    | () -> ()
    | exception Invalid_argument _ ->
        (* the pool was shut down under a live job (shutdown without
           drain); complete it as crashed rather than losing it *)
        finish t ticket
          (Fleet.Crashed
             {
               exn = "scheduler shut down with the job in flight";
               backtrace = "";
               attempts = ticket.t_attempts + 1;
             })

  let submit t ?deadline ?migrate_every ?(retries = 0) ~id job =
    let job =
      match deadline with Some d -> Fleet.with_deadline d job | None -> job
    in
    let seq =
      Mutex.protect t.lock (fun () ->
          t.admitted <- t.admitted + 1;
          t.in_flight <- t.in_flight + 1;
          t.admitted)
    in
    let ticket =
      {
        t_id = id;
        t_seq = seq;
        t_job = job;
        t_migrate_every = migrate_every;
        t_retries = retries;
        t_attempts = 0;
        t_snap = None;
        t_migrations = 0;
      }
    in
    requeue t ticket

  let in_flight t = Mutex.protect t.lock (fun () -> t.in_flight)

  let stats t =
    Mutex.protect t.lock (fun () ->
        [
          ("workers", Pool.Workers.size t.pool);
          ("admitted", t.admitted);
          ("in_flight", t.in_flight);
          ("running", t.running);
          ("completed", t.completed);
          ("crashed", t.crashed);
          ("migrations", t.migrations);
        ])

  let take_finished t =
    Mutex.protect t.lock (fun () ->
        let out = List.of_seq (Queue.to_seq t.finished) in
        Queue.clear t.finished;
        out)

  let drain t =
    Mutex.lock t.lock;
    while t.in_flight > 0 do
      Condition.wait t.idle t.lock
    done;
    Mutex.unlock t.lock

  let shutdown t = Pool.Workers.shutdown t.pool
end

(* ---------- the socket server ---------- *)

module Server = struct
  type config = {
    socket_path : string;
    workers : int;
    slice : int;
    max_request_bytes : int;
    checkpoint_dir : string option;
    migrate_every : int option;
  }

  let default_config =
    {
      socket_path = "shiftc.sock";
      workers = 0;
      slice = 50_000;
      max_request_bytes = Protocol.default_max_request_bytes;
      checkpoint_dir = None;
      migrate_every = None;
    }

  type conn = {
    fd : Unix.file_descr;
    buf : Buffer.t;
    mutable greeted : bool;
    mutable alive : bool;
  }

  (* where a completed job's response goes *)
  type sink =
    | Single of { s_conn : conn; s_id : string; s_tenant : string option }
    | Member of { m_group : group; m_index : int; m_name : string }

  and group = {
    g_conn : conn;
    g_id : string;
    g_tenant : string option;
    g_total : int;
    mutable g_got : (int * Fleet.result) list;
  }

  let rec write_all fd s off len =
    if len > 0 then begin
      let n = Unix.write_substring fd s off len in
      write_all fd s (off + n) (len - n)
    end

  let run ?(on_ready = fun _ -> ()) ~catalog config =
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    if Sys.file_exists config.socket_path then Sys.remove config.socket_path;
    let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind srv (Unix.ADDR_UNIX config.socket_path);
    Unix.listen srv 64;
    let wake_r, wake_w = Unix.pipe () in
    let sched =
      Scheduler.create ~workers:config.workers ~slice:config.slice
        ?checkpoint_dir:config.checkpoint_dir
        ~on_done:(fun _ ->
          (* wake the select loop; worker-domain side of the self-pipe *)
          try ignore (Unix.write wake_w (Bytes.make 1 'x') 0 1)
          with Unix.Unix_error _ -> ())
        ()
    in
    let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
    let pending : (string, sink) Hashtbl.t = Hashtbl.create 64 in
    let seq = ref 0 in
    let draining = ref false in
    let drain_waiters : (conn * string option * string option) list ref =
      ref []
    in
    let close_conn conn =
      if conn.alive then begin
        conn.alive <- false;
        Hashtbl.remove conns conn.fd;
        try Unix.close conn.fd with Unix.Unix_error _ -> ()
      end
    in
    let send conn json =
      if conn.alive then begin
        let line = Protocol.to_line json ^ "\n" in
        try write_all conn.fd line 0 (String.length line)
        with Unix.Unix_error _ -> close_conn conn
      end
    in
    let send_error conn ?id code message =
      send conn
        (Protocol.error_response
           { Protocol.code; message; error_id = id })
    in
    let reply_ok conn ?id ?tenant result =
      match id with
      | Some id -> send conn (Protocol.ok_response ?tenant ~id result)
      | None ->
          (* id-less status/drain: same shape minus the id field *)
          send conn
            (J.Obj
               ([ ("ok", J.Bool true) ]
               @ (match tenant with
                 | Some t -> [ ("tenant", J.String t) ]
                 | None -> [])
               @ [ ("result", result) ]))
    in
    let status_json () =
      J.Obj
        ([
           ("proto_version", J.Int Protocol.version);
           ("draining", J.Bool !draining);
           ("connections", J.Int (Hashtbl.length conns));
         ]
        @ List.map (fun (k, v) -> (k, J.Int v)) (Scheduler.stats sched))
    in
    let submit_single conn env job =
      let key = (incr seq; Printf.sprintf "#%d" !seq) in
      Hashtbl.replace pending key
        (Single
           {
             s_conn = conn;
             s_id = Option.get env.Protocol.id;
             s_tenant = env.Protocol.tenant;
           });
      Scheduler.submit sched ?deadline:env.Protocol.deadline
        ?migrate_every:
          (match env.Protocol.migrate_every with
          | Some m -> Some m
          | None -> config.migrate_every)
        ~id:key job
    in
    let submit_batch conn env retries jobs =
      let group =
        {
          g_conn = conn;
          g_id = Option.get env.Protocol.id;
          g_tenant = env.Protocol.tenant;
          g_total = List.length jobs;
          g_got = [];
        }
      in
      if group.g_total = 0 then
        reply_ok conn ~id:group.g_id ?tenant:group.g_tenant
          (Fleet.to_json (Fleet.aggregate []))
      else
        List.iteri
          (fun i job ->
            let key = (incr seq; Printf.sprintf "#%d" !seq) in
            Hashtbl.replace pending key
              (Member { m_group = group; m_index = i; m_name = Fleet.name job });
            Scheduler.submit sched ?deadline:env.Protocol.deadline
              ?migrate_every:
                (match env.Protocol.migrate_every with
                | Some m -> Some m
                | None -> config.migrate_every)
              ~retries ~id:key job)
          jobs
    in
    let dispatch conn (env : Protocol.envelope) =
      let refuse_if_draining k =
        if !draining then
          send_error conn ?id:env.id Protocol.Draining
            "the server is draining and admits no new jobs"
        else k ()
      in
      let with_id k =
        match env.id with
        | Some _ -> k ()
        | None ->
            send_error conn Protocol.Bad_request
              "job requests require an \"id\" to correlate the response"
      in
      let resolved k = function
        | Ok v -> k v
        | Error message -> send_error conn ?id:env.id Protocol.Unknown_name message
      in
      match env.request with
      | Protocol.Status -> reply_ok conn ?id:env.id ?tenant:env.tenant (status_json ())
      | Protocol.Drain ->
          draining := true;
          drain_waiters := (conn, env.id, env.tenant) :: !drain_waiters
      | Protocol.Run { kernel; mode; size; safe; superblocks; backend } ->
          refuse_if_draining (fun () ->
              with_id (fun () ->
                  resolved (submit_single conn env)
                    (catalog.kernel_job ~mode ~size ~safe ~superblocks ~backend
                       kernel)))
      | Protocol.Attack { case; mode; benign; superblocks; backend } ->
          refuse_if_draining (fun () ->
              with_id (fun () ->
                  resolved (submit_single conn env)
                    (catalog.attack_job ~mode ~benign ~superblocks ~backend case)))
      | Protocol.Trace { image; mode; benign; ring; only; superblocks; backend }
        ->
          refuse_if_draining (fun () ->
              with_id (fun () ->
                  resolved (submit_single conn env)
                    (catalog.trace_job ~mode ~benign ~ring ~only ~superblocks
                       ~backend image)))
      | Protocol.Batch { kernels; mode; size; safe; retries; superblocks; backend }
        ->
          refuse_if_draining (fun () ->
              with_id (fun () ->
                  resolved
                    (submit_batch conn env retries)
                    (catalog.batch_jobs ~mode ~size ~safe ~superblocks ~backend
                       kernels)))
      | Protocol.Leak { case; mode; clause; variants; superblocks; backend } ->
          (* a leak probe is a handful of ordinary sessions run to
             completion, so it is answered synchronously rather than
             going through the scheduler *)
          refuse_if_draining (fun () ->
              with_id (fun () ->
                  resolved
                    (fun run ->
                      match run () with
                      | verdict ->
                          reply_ok conn ?id:env.id ?tenant:env.tenant
                            (Leak.verdict_to_json verdict)
                      | exception e ->
                          send_error conn ?id:env.id Protocol.Job_crashed
                            (Printexc.to_string e))
                    (catalog.leak_job ~mode ~clause ~variants ~superblocks
                       ~backend case)))
    in
    let process_line conn line =
      if String.length line > 0 then
        if not conn.greeted then begin
          match Result.bind (J.of_string line) Protocol.hello_of_json with
          | exception _ ->
              send_error conn Protocol.Bad_json "hello did not parse";
              close_conn conn
          | Error e ->
              send_error conn Protocol.Bad_request e;
              close_conn conn
          | Ok v when v = Protocol.version ->
              conn.greeted <- true;
              send conn
                (Protocol.hello_ack ~max_request_bytes:config.max_request_bytes)
          | Ok v ->
              send_error conn Protocol.Unsupported_version
                (Printf.sprintf "this server speaks proto_version %d, not %d"
                   Protocol.version v);
              close_conn conn
        end
        else
          match Protocol.of_line ~max_bytes:config.max_request_bytes line with
          | Error e ->
              send conn (Protocol.error_response e);
              if e.Protocol.code = Protocol.Oversized then close_conn conn
          | Ok env -> dispatch conn env
    in
    let feed conn =
      let chunk = Bytes.create 65536 in
      match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
      | 0 -> close_conn conn
      | exception Unix.Unix_error _ -> close_conn conn
      | n ->
          Buffer.add_subbytes conn.buf chunk 0 n;
          let rec lines () =
            if conn.alive then begin
              let s = Buffer.contents conn.buf in
              match String.index_opt s '\n' with
              | None ->
                  (* a line longer than the cap can never complete:
                     refuse it now rather than buffering without bound *)
                  if String.length s > config.max_request_bytes then begin
                    send_error conn Protocol.Oversized
                      (Printf.sprintf
                         "request line exceeds the %d-byte cap"
                         config.max_request_bytes);
                    close_conn conn
                  end
              | Some i ->
                  Buffer.clear conn.buf;
                  Buffer.add_substring conn.buf s (i + 1)
                    (String.length s - i - 1);
                  process_line conn (String.sub s 0 i);
                  lines ()
            end
          in
          lines ()
    in
    let route (dj : Scheduler.done_job) =
      match Hashtbl.find_opt pending dj.Scheduler.job with
      | None -> ()
      | Some sink -> (
          Hashtbl.remove pending dj.Scheduler.job;
          match sink with
          | Single { s_conn; s_id; s_tenant } -> (
              match dj.Scheduler.outcome with
              | Fleet.Finished report ->
                  reply_ok s_conn ~id:s_id ?tenant:s_tenant
                    (J.Obj
                       [
                         ("migrations", J.Int dj.Scheduler.migrations);
                         ("attempts", J.Int dj.Scheduler.attempts);
                         ("report", Results.of_report report);
                       ])
              | Fleet.Crashed c ->
                  send_error s_conn ~id:s_id Protocol.Job_crashed
                    (Printf.sprintf "%s (after %d attempts)" c.Fleet.exn
                       c.Fleet.attempts))
          | Member { m_group = g; m_index; m_name } ->
              g.g_got <-
                (m_index, { Fleet.name = m_name; outcome = dj.Scheduler.outcome })
                :: g.g_got;
              if List.length g.g_got = g.g_total then begin
                let results =
                  List.sort (fun (a, _) (b, _) -> compare a b) g.g_got
                  |> List.map snd
                in
                reply_ok g.g_conn ~id:g.g_id ?tenant:g.g_tenant
                  (Fleet.to_json (Fleet.aggregate results))
              end)
    in
    let collect () = List.iter route (Scheduler.take_finished sched) in
    on_ready config;
    let stop = ref false in
    while not !stop do
      collect ();
      if !draining && Scheduler.in_flight sched = 0 && Hashtbl.length pending = 0
      then begin
        let completed, crashed =
          let s = Scheduler.stats sched in
          (List.assoc "completed" s, List.assoc "crashed" s)
        in
        List.iter
          (fun (conn, id, tenant) ->
            reply_ok conn ?id ?tenant
              (J.Obj
                 [
                   ("drained", J.Bool true);
                   ("completed", J.Int completed);
                   ("crashed", J.Int crashed);
                 ]))
          (List.rev !drain_waiters);
        stop := true
      end
      else begin
        let fds =
          srv :: wake_r :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
        in
        match Unix.select fds [] [] (-1.0) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | readable, _, _ ->
            List.iter
              (fun fd ->
                if fd = srv then begin
                  let cfd, _ = Unix.accept srv in
                  Hashtbl.replace conns cfd
                    { fd = cfd; buf = Buffer.create 256; greeted = false; alive = true }
                end
                else if fd = wake_r then
                  ignore (Unix.read wake_r (Bytes.create 64) 0 64)
                else
                  match Hashtbl.find_opt conns fd with
                  | Some conn -> feed conn
                  | None -> ())
              readable
      end
    done;
    Scheduler.drain sched;
    Scheduler.shutdown sched;
    Hashtbl.iter (fun _ conn -> close_conn conn) (Hashtbl.copy conns);
    (try Unix.close srv with Unix.Unix_error _ -> ());
    (try Unix.close wake_r with Unix.Unix_error _ -> ());
    (try Unix.close wake_w with Unix.Unix_error _ -> ());
    try Sys.remove config.socket_path with Sys_error _ -> ()
end

(* ---------- a blocking client ---------- *)

module Client = struct
  type t = {
    fd : Unix.file_descr;
    rbuf : Buffer.t;
    mutable queued : (string option * J.json) list;
        (* responses read while waiting for a different id *)
  }

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

  let send_line t line =
    let line = line ^ "\n" in
    match Server.write_all t.fd line 0 (String.length line) with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "write: %s" (Unix.error_message e))

  let read_line t =
    let rec go () =
      let s = Buffer.contents t.rbuf in
      match String.index_opt s '\n' with
      | Some i ->
          Buffer.clear t.rbuf;
          Buffer.add_substring t.rbuf s (i + 1) (String.length s - i - 1);
          Some (String.sub s 0 i)
      | None -> (
          let chunk = Bytes.create 65536 in
          match Unix.read t.fd chunk 0 (Bytes.length chunk) with
          | 0 -> None
          | n ->
              Buffer.add_subbytes t.rbuf chunk 0 n;
              go ()
          | exception Unix.Unix_error _ -> None)
    in
    go ()

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (Printf.sprintf "cannot connect to %s: %s" path
             (Unix.error_message e))
    | () -> (
        let t = { fd; rbuf = Buffer.create 256; queued = [] } in
        match send_line t (Protocol.to_line Protocol.hello) with
        | Error e ->
            close t;
            Error e
        | Ok () -> (
            match read_line t with
            | None ->
                close t;
                Error "server closed the connection during the hello handshake"
            | Some line -> (
                match J.of_string line with
                | Error e ->
                    close t;
                    Error ("hello ack did not parse: " ^ e)
                | Ok ack ->
                    if Protocol.response_ok ack then Ok t
                    else begin
                      close t;
                      Error ("hello rejected: " ^ line)
                    end)))

  let request t (env : Protocol.envelope) =
    match send_line t (Protocol.to_line (Protocol.request_to_json env)) with
    | Error e -> Error e
    | Ok () -> (
        let matches id = match env.Protocol.id with None -> true | want -> id = want in
        match
          List.find_opt (fun (id, _) -> matches id) t.queued
        with
        | Some ((_, json) as hit) ->
            t.queued <- List.filter (fun q -> q != hit) t.queued;
            Ok json
        | None ->
            let rec wait () =
              match read_line t with
              | None -> Error "server closed the connection before the response"
              | Some line -> (
                  match J.of_string line with
                  | Error e -> Error ("response did not parse: " ^ e)
                  | Ok json ->
                      let id = Protocol.response_id json in
                      if matches id then Ok json
                      else begin
                        t.queued <- t.queued @ [ (id, json) ];
                        wait ()
                      end)
            in
            wait ())
end
