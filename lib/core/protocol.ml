(* The serve wire protocol: versioned JSONL.  Pure data — parsing and
   building only; the socket loop lives in serve.ml.  docs/PROTOCOL.md
   documents every kind in [kinds] and every code in [error_codes], and
   CI greps it against both lists. *)

module Mode = Shift_compiler.Mode
module Backend = Shift_tracking.Backend

let version = 1
let default_max_request_bytes = 1 lsl 20

type error_code =
  | Bad_json
  | Bad_request
  | Unsupported_version
  | Unknown_kind
  | Unknown_name
  | Oversized
  | Draining
  | Job_crashed

(* the error-code catalogue; keep in sync with docs/PROTOCOL.md (CI
   greps these strings) *)
let error_code_to_string = function
  | Bad_json -> "bad_json"
  | Bad_request -> "bad_request"
  | Unsupported_version -> "unsupported_version"
  | Unknown_kind -> "unknown_kind"
  | Unknown_name -> "unknown_name"
  | Oversized -> "oversized"
  | Draining -> "draining"
  | Job_crashed -> "job_crashed"

let error_codes =
  [
    Bad_json;
    Bad_request;
    Unsupported_version;
    Unknown_kind;
    Unknown_name;
    Oversized;
    Draining;
    Job_crashed;
  ]

type error = { code : error_code; message : string; error_id : string option }

(* the request-kind catalogue; keep in sync with docs/PROTOCOL.md (CI
   greps these strings) *)
let kinds = [ "run"; "attack"; "trace"; "batch"; "leak"; "status"; "drain" ]

type request =
  | Run of {
      kernel : string;
      mode : Mode.t;
      size : int option;
      safe : bool;
      superblocks : bool;
      backend : Backend.t;
    }
  | Attack of {
      case : string;
      mode : Mode.t;
      benign : bool;
      superblocks : bool;
      backend : Backend.t;
    }
  | Trace of {
      image : string;
      mode : Mode.t;
      benign : bool;
      ring : int;
      only : string option;
      superblocks : bool;
      backend : Backend.t;
    }
  | Batch of {
      kernels : string list;
      mode : Mode.t;
      size : int option;
      safe : bool;
      retries : int;
      superblocks : bool;
      backend : Backend.t;
    }
  | Leak of {
      case : string;
      mode : Mode.t;
      clause : Leak.clause;
      variants : int;
      superblocks : bool;
      backend : Backend.t;
    }
  | Status
  | Drain

type envelope = {
  id : string option;
  tenant : string option;
  deadline : int option;
  migrate_every : int option;
  request : request;
}

let kind_of_request = function
  | Run _ -> "run"
  | Attack _ -> "attack"
  | Trace _ -> "trace"
  | Batch _ -> "batch"
  | Leak _ -> "leak"
  | Status -> "status"
  | Drain -> "drain"

(* ---------- typed field extraction ---------- *)

let ( let* ) = Result.bind

let opt_field name conv ty j =
  match Results.member name j with
  | None | Some Results.Null -> Ok None
  | Some v -> (
      match conv v with
      | Some x -> Ok (Some x)
      | None -> Error (Printf.sprintf "field %S must be %s" name ty))

let string_field name =
  opt_field name (function Results.String s -> Some s | _ -> None) "a string"

let int_field name =
  opt_field name (function Results.Int i -> Some i | _ -> None) "an integer"

let bool_field name =
  opt_field name (function Results.Bool b -> Some b | _ -> None) "a boolean"

let string_list_field name =
  opt_field name
    (function
      | Results.List items ->
          let strings =
            List.filter_map
              (function Results.String s -> Some s | _ -> None)
              items
          in
          if List.length strings = List.length items then Some strings else None
      | _ -> None)
    "a list of strings"

let mode_field j =
  let* s = string_field "mode" j in
  match s with
  | None -> Ok Mode.shift_word
  | Some s -> Mode.of_string s

let backend_field j =
  let* s = string_field "backend" j in
  match s with
  | None -> Ok Backend.Nat
  | Some s -> Backend.of_string s

let positive name v =
  match v with
  | Some n when n <= 0 -> Error (Printf.sprintf "field %S must be positive" name)
  | v -> Ok v

(* ---------- hello ---------- *)

let hello_of_json j =
  match j with
  | Results.Obj _ -> (
      match Results.member "proto_version" j with
      | Some (Results.Int v) -> Ok v
      | Some _ -> Error "\"proto_version\" must be an integer"
      | None -> Error "the first line must be a hello carrying \"proto_version\"")
  | _ -> Error "hello must be a JSON object"

(* ---------- requests ---------- *)

let body_of_json kind j =
  match kind with
  | "run" ->
      let* kernel = string_field "kernel" j in
      let* kernel =
        Option.to_result ~none:"run requires a \"kernel\"" kernel
      in
      let* mode = mode_field j in
      let* size = int_field "size" j in
      let* size = positive "size" size in
      let* safe = bool_field "safe" j in
      let* superblocks = bool_field "superblocks" j in
      let* backend = backend_field j in
      Ok
        (Run
           {
             kernel;
             mode;
             size;
             safe = Option.value ~default:false safe;
             superblocks = Option.value ~default:true superblocks;
             backend;
           })
  | "attack" ->
      let* case = string_field "case" j in
      let* case = Option.to_result ~none:"attack requires a \"case\"" case in
      let* mode = mode_field j in
      let* benign = bool_field "benign" j in
      let* superblocks = bool_field "superblocks" j in
      let* backend = backend_field j in
      Ok
        (Attack
           {
             case;
             mode;
             benign = Option.value ~default:false benign;
             superblocks = Option.value ~default:true superblocks;
             backend;
           })
  | "trace" ->
      let* image = string_field "image" j in
      let* image = Option.to_result ~none:"trace requires an \"image\"" image in
      let* mode = mode_field j in
      let* benign = bool_field "benign" j in
      let* ring = int_field "ring" j in
      let* ring = positive "ring" ring in
      let* only = string_field "events" j in
      let* superblocks = bool_field "superblocks" j in
      let* backend = backend_field j in
      Ok
        (Trace
           {
             image;
             mode;
             benign = Option.value ~default:false benign;
             ring = Option.value ~default:4096 ring;
             only;
             superblocks = Option.value ~default:true superblocks;
             backend;
           })
  | "batch" ->
      let* kernels = string_list_field "kernels" j in
      let* mode = mode_field j in
      let* size = int_field "size" j in
      let* size = positive "size" size in
      let* safe = bool_field "safe" j in
      let* retries = int_field "retries" j in
      let* () =
        match retries with
        | Some n when n < 0 -> Error "field \"retries\" must be non-negative"
        | _ -> Ok ()
      in
      let* superblocks = bool_field "superblocks" j in
      let* backend = backend_field j in
      Ok
        (Batch
           {
             kernels = Option.value ~default:[] kernels;
             mode;
             size;
             safe = Option.value ~default:false safe;
             retries = Option.value ~default:0 retries;
             superblocks = Option.value ~default:true superblocks;
             backend;
           })
  | "leak" ->
      let* case = string_field "case" j in
      let* case = Option.to_result ~none:"leak requires a \"case\"" case in
      let* mode = mode_field j in
      let* clause = string_field "clause" j in
      let* clause =
        match clause with
        | None -> Ok Leak.Ct_seq
        | Some s -> Leak.clause_of_string s
      in
      let* variants = int_field "variants" j in
      let* () =
        match variants with
        | Some n when n < 2 -> Error "field \"variants\" must be at least 2"
        | _ -> Ok ()
      in
      let* superblocks = bool_field "superblocks" j in
      let* backend = backend_field j in
      Ok
        (Leak
           {
             case;
             mode;
             clause;
             variants = Option.value ~default:4 variants;
             superblocks = Option.value ~default:true superblocks;
             backend;
           })
  | "status" -> Ok Status
  | "drain" -> Ok Drain
  | kind ->
      invalid_arg
        (Printf.sprintf
           "Protocol.body_of_json: kind %S passed the catalogue test but has \
            no parser"
           kind)

let request_of_json j =
  match j with
  | Results.Obj _ -> (
      let id = match string_field "id" j with Ok v -> v | Error _ -> None in
      let fail code message = Error { code; message; error_id = id } in
      match string_field "kind" j with
      | Error e -> fail Bad_request e
      | Ok None -> fail Bad_request "request requires a \"kind\""
      | Ok (Some kind) when not (List.mem kind kinds) ->
          fail Unknown_kind
            (Printf.sprintf "unknown kind %S (try: %s)" kind
               (String.concat ", " kinds))
      | Ok (Some kind) -> (
          let parsed =
            let* id = string_field "id" j in
            let* tenant = string_field "tenant" j in
            let* deadline = int_field "deadline" j in
            let* deadline = positive "deadline" deadline in
            let* migrate_every = int_field "migrate_every" j in
            let* migrate_every = positive "migrate_every" migrate_every in
            let* request = body_of_json kind j in
            Ok { id; tenant; deadline; migrate_every; request }
          in
          match parsed with
          | Ok env -> Ok env
          | Error message -> fail Bad_request message))
  | _ ->
      Error
        { code = Bad_request; message = "request must be a JSON object"; error_id = None }

let of_line ?(max_bytes = default_max_request_bytes) line =
  if String.length line > max_bytes then
    Error
      {
        code = Oversized;
        message =
          Printf.sprintf "request line of %d bytes exceeds the %d-byte cap"
            (String.length line) max_bytes;
        error_id = None;
      }
  else
    match Results.of_string line with
    | Error e ->
        Error { code = Bad_json; message = "not JSON: " ^ e; error_id = None }
    | Ok j -> request_of_json j

(* ---------- building lines ---------- *)

let hello = Results.Obj [ ("proto_version", Results.Int version) ]

let hello_ack ~max_request_bytes =
  Results.Obj
    [
      ("proto_version", Results.Int version);
      ("ok", Results.Bool true);
      ("server", Results.String "shiftc serve");
      ("max_request_bytes", Results.Int max_request_bytes);
    ]

let request_to_json (env : envelope) =
  let opt name v f = match v with None -> [] | Some x -> [ (name, f x) ] in
  let str s = Results.String s in
  let common =
    opt "id" env.id str
    @ [ ("kind", str (kind_of_request env.request)) ]
    @ opt "tenant" env.tenant str
    @ opt "deadline" env.deadline (fun d -> Results.Int d)
    @ opt "migrate_every" env.migrate_every (fun m -> Results.Int m)
  in
  let mode m = ("mode", str (Mode.to_string m)) in
  let bk b = ("backend", str (Backend.to_string b)) in
  let body =
    match env.request with
    | Run { kernel; mode = m; size; safe; superblocks; backend } ->
        [ ("kernel", str kernel); mode m ]
        @ opt "size" size (fun s -> Results.Int s)
        @ [
            ("safe", Results.Bool safe);
            ("superblocks", Results.Bool superblocks);
            bk backend;
          ]
    | Attack { case; mode = m; benign; superblocks; backend } ->
        [
          ("case", str case);
          mode m;
          ("benign", Results.Bool benign);
          ("superblocks", Results.Bool superblocks);
          bk backend;
        ]
    | Trace { image; mode = m; benign; ring; only; superblocks; backend } ->
        [
          ("image", str image);
          mode m;
          ("benign", Results.Bool benign);
          ("ring", Results.Int ring);
        ]
        @ opt "events" only str
        @ [ ("superblocks", Results.Bool superblocks); bk backend ]
    | Batch { kernels; mode = m; size; safe; retries; superblocks; backend } ->
        [ ("kernels", Results.List (List.map str kernels)); mode m ]
        @ opt "size" size (fun s -> Results.Int s)
        @ [
            ("safe", Results.Bool safe);
            ("retries", Results.Int retries);
            ("superblocks", Results.Bool superblocks);
            bk backend;
          ]
    | Leak { case; mode = m; clause; variants; superblocks; backend } ->
        [
          ("case", str case);
          mode m;
          ("clause", str (Leak.clause_to_string clause));
          ("variants", Results.Int variants);
          ("superblocks", Results.Bool superblocks);
          bk backend;
        ]
    | Status | Drain -> []
  in
  Results.Obj (common @ body)

let ok_response ?tenant ~id result =
  Results.Obj
    ([ ("id", Results.String id); ("ok", Results.Bool true) ]
    @ (match tenant with
      | Some t -> [ ("tenant", Results.String t) ]
      | None -> [])
    @ [ ("result", result) ])

let error_response (e : error) =
  Results.Obj
    ((match e.error_id with
     | Some id -> [ ("id", Results.String id) ]
     | None -> [])
    @ [
        ("ok", Results.Bool false);
        ( "error",
          Results.Obj
            [
              ("code", Results.String (error_code_to_string e.code));
              ("message", Results.String e.message);
            ] );
      ])

let response_id j =
  match Results.member "id" j with Some (Results.String s) -> Some s | _ -> None

let response_ok j =
  match Results.member "ok" j with Some (Results.Bool b) -> b | _ -> false

let to_line j = Results.to_string ~minify:true j
