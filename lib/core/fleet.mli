(** Batch sessions: run N independent guest sessions across domains and
    aggregate their reports deterministically — under supervision.

    Each {!job} compiles its image and runs its session inside a worker
    domain of {!Pool}; results come back in job order whatever the pool
    size, and a session is pure given its job (the simulated machine
    carries no host time or randomness), so the whole aggregate —
    including its {!to_json} serialisation — is byte-identical at any
    [?domains].  This is the substrate behind [shiftc batch] and the
    bench harness's [fleet] experiment.

    {!run} is a {e supervisor}: a job whose image thunk or session
    raises is contained as a structured {!Crashed} result instead of
    tearing down the rest of the batch, a per-job [?deadline] bounds a
    runaway guest independently of its configured fuel, and [?retries]
    restarts a crashed job — from its last in-memory checkpoint when
    [?checkpoint_every] is set, from scratch otherwise. *)

type job
(** One batch unit: a named image factory plus the session config to
    run it under.  The image is built {e inside} the worker domain so
    compilation parallelises along with execution. *)

val job :
  ?config:Session.Config.t ->
  ?deadline:int ->
  name:string ->
  (unit -> Shift_compiler.Image.t) ->
  job
(** [job ~name make] with [config] defaulting to
    {!Session.Config.default}.  [deadline] caps the session's
    instruction budget at [min config.fuel deadline] — a per-job fuel
    deadline the supervisor enforces regardless of the job's own
    configuration. *)

val name : job -> string
(** The job's display name. *)

val with_deadline : int -> job -> job
(** Tighten the job's fuel deadline to [min existing given] — how the
    serve layer applies a per-request (per-tenant) deadline on top of
    whatever the job was built with. *)

(** Why a job produced no report. *)
type crash = {
  exn : string;  (** printed exception *)
  backtrace : string;  (** host-specific; absent from {!to_json} *)
  attempts : int;  (** runs attempted, retries included *)
}

type outcome = Finished of Report.t | Crashed of crash

(** One job's outcome, in job order. *)
type result = { name : string; outcome : outcome }

(** The aggregated fleet report. *)
type t = {
  results : result list;  (** in job order *)
  stats : Shift_machine.Stats.t;
      (** {!Shift_machine.Stats.total} over the sessions that finished *)
  exited : int;  (** sessions that exited normally *)
  alerted : int;  (** sessions stopped by a policy alert *)
  faulted : int;  (** sessions ended by a machine fault *)
  timed_out : int;  (** sessions that exhausted their fuel *)
  crashed : int;  (** jobs whose thunk or session raised *)
}

(** {1 The single-job supervised driver}

    {!step} is the unit the batch supervisor and the [shiftc serve]
    scheduler are both built from: one supervised stretch of one job's
    session. *)

(** How a stretch ended. *)
type step =
  | Done of Report.t  (** the session ran to completion *)
  | Parked of Snapshot.t
      (** [park_after] slices elapsed; the session is frozen in the
          snapshot and can be resumed — by any worker — via
          [step ~resume] *)
  | Failed of { exn : string; backtrace : string }
      (** the image thunk, the session machinery or a syscall handler
          raised; contained here rather than escaping *)

val step :
  ?slice:int ->
  ?park_after:int ->
  ?checkpoint_slices:bool ->
  ?on_checkpoint:(Snapshot.t -> unit) ->
  ?resume:Snapshot.t ->
  ?on_slice:(float -> unit) ->
  job ->
  step
(** Start the job's session (or restore it from [resume]) and advance
    it in [slice]-instruction budgets (default: one maximal slice).
    [park_after] freezes and returns the session after that many
    yielded slices — the serve scheduler's migration point.
    [checkpoint_slices] refreshes a checkpoint through [on_checkpoint]
    after every yielded slice (crash recovery).  [on_slice] observes
    each advance call's host-side wall-clock seconds; it runs on
    whatever domain drives the job, so a shared sink must synchronise.
    Slicing, parking and restoring never change results: counters are
    byte-identical however a run is cut. *)

val run :
  ?domains:int -> ?retries:int -> ?checkpoint_every:int -> job list -> t
(** Run every job through the domain pool ({!Pool.map} semantics for
    [?domains]) under supervision and fold the aggregate.  A raising
    job yields [Crashed] and never disturbs its siblings.  [retries]
    (default 0) reruns a crashed job up to that many extra times;
    [checkpoint_every] drives each session in slices of that many
    instructions and keeps an in-memory {!Snapshot.t} refreshed after
    every slice, so a retry resumes from the last good checkpoint
    instead of from scratch.  Checkpoint slicing never changes results:
    the engine's counters are byte-identical however a run is sliced. *)

val aggregate : result list -> t
(** Fold per-job results (in job order) into the fleet report — the
    aggregation {!run} applies after its pool pass, exposed so the
    serve layer can batch jobs it scheduled itself and still emit the
    same aggregate as [shiftc batch]. *)

val to_json : t -> Results.json
(** Deterministic serialisation: session counts, aggregate counters,
    and each run's {!Results.of_report} payload (or its crash, minus
    the host-specific backtrace), in job order.  Carries no host time,
    so it is diffable across pool sizes and commits. *)

val pp : Format.formatter -> t -> unit
(** A fixed-width table: one row per session plus a TOTAL row. *)
