(** Batch sessions: run N independent guest sessions across domains and
    aggregate their reports deterministically.

    Each {!job} compiles its image and runs its session inside a worker
    domain of {!Pool}; results come back in job order whatever the pool
    size, and a session is pure given its job (the simulated machine
    carries no host time or randomness), so the whole aggregate —
    including its {!to_json} serialisation — is byte-identical at any
    [?domains].  This is the substrate behind [shiftc batch] and the
    bench harness's [fleet] experiment. *)

type job
(** One batch unit: a named image factory plus the session config to
    run it under.  The image is built {e inside} the worker domain so
    compilation parallelises along with execution. *)

val job :
  ?config:Session.Config.t ->
  name:string ->
  (unit -> Shift_compiler.Image.t) ->
  job
(** [job ~name make] with [config] defaulting to
    {!Session.Config.default}. *)

(** One job's outcome. *)
type result = { name : string; report : Report.t }

(** The aggregated fleet report. *)
type t = {
  results : result list;  (** in job order *)
  stats : Shift_machine.Stats.t;
      (** {!Shift_machine.Stats.total} over all sessions *)
  exited : int;  (** sessions that exited normally *)
  alerted : int;  (** sessions stopped by a policy alert *)
  faulted : int;  (** sessions ended by a machine fault *)
  timed_out : int;  (** sessions that exhausted their fuel *)
}

val run : ?domains:int -> job list -> t
(** Run every job through the domain pool ({!Pool.map} semantics for
    [?domains]) and fold the aggregate. *)

val to_json : t -> Results.json
(** Deterministic serialisation: session counts, aggregate counters,
    and each run's {!Results.of_report} payload, in job order.  Carries
    no host time, so it is diffable across pool sizes and commits. *)

val pp : Format.formatter -> t -> unit
(** A fixed-width table: one row per session plus a TOTAL row. *)
