module Image = Shift_compiler.Image
module Cpu = Shift_machine.Cpu
module Smp = Shift_machine.Smp
module Exec = Shift_machine.Exec
module Fault = Shift_machine.Fault
module Stats = Shift_machine.Stats
module Pipeline = Shift_machine.Pipeline
module Cache = Shift_machine.Cache
module Flowtrace = Shift_machine.Flowtrace
module Policy = Shift_policy.Policy
module Alert = Shift_policy.Alert
module World = Shift_os.World
module Process = Shift_os.Process
module Ospipe = Shift_os.Pipe
module Memory = Shift_mem.Memory
module Provenance = Shift_mem.Provenance
module Tracking = Shift_tracking.Tracking
module Backend = Shift_tracking.Backend

type threading =
  | T_single
  | T_threads of int option
  | T_procs of { tp_quantum : int option; tp_comm : string option }

type config = {
  c_policy : Policy.t;
  c_io_cost : World.io_cost;
  c_fuel : int;
  c_threading : threading;
  c_trace : Flowtrace.options option;
  c_hwtrace : bool;
  c_superblocks : bool;
  c_backend : Backend.t;
  c_images : (string * Image.t) list;
}

type hart = {
  h_values : int64 array;
  h_nats : bool array;
  h_preds : bool array;
  h_unat : int64;
  h_ip : int;
  h_stats : Stats.t;
  h_pipe : Pipeline.snap;
  h_cache : Cache.snap;
  h_call_stack : (int * int64) list;
  h_ftregs : (int array * int array) option;
}

type proc_snap = {
  ps_pid : int;
  ps_parent : int;
  ps_image : string option;
  ps_state : Process.state;
  ps_hart : hart;
  ps_mem : (int64 * string) list;
  ps_prov : (int64 * string) list;
  ps_ctx : World.ctx_state;
}

type machine =
  | M_cpu of hart
  | M_smp of {
      sm_quantum : int;
      sm_harts : (int * Smp.state * hart) list;
      sm_round : (int * int) list;
      sm_finished : Cpu.outcome option;
    }
  | M_procs of {
      pm_quantum : int;
      pm_next_pid : int;
      pm_procs : proc_snap list;
      pm_round : (int * int) list;
      pm_finished : Cpu.outcome option;
      pm_retired : Stats.t;
    }

type t = {
  meta : (string * string) list;
  image : Image.t;
  config : config;
  fuel_left : int;
  result : Report.outcome option;
  memory : (int64 * string) list;
  machine : machine;
  world : World.dump;
  flow : (Flowtrace.dump * (int64 * string) list) option;
  tracking : Tracking.dump option;
      (** tag-coprocessor state (queue, tag file, lag clock); [None]
          under the nat and none backends *)
}

let version = 2

(* ---------- capture ---------- *)

let export_cpu ~traced (cpu : Cpu.t) =
  {
    h_values = Array.copy cpu.Cpu.values;
    h_nats = Array.copy cpu.Cpu.nats;
    h_preds = Array.copy cpu.Cpu.preds;
    h_unat = cpu.Cpu.unat;
    h_ip = cpu.Cpu.ip;
    h_stats = Stats.copy cpu.Cpu.stats;
    h_pipe = Pipeline.export cpu.Cpu.pipe;
    h_cache = Cache.export cpu.Cpu.cache;
    h_call_stack = List.of_seq (Stack.to_seq cpu.Cpu.call_stack);
    h_ftregs =
      (if traced then
         Some
           ( Array.copy cpu.Cpu.ftregs.Flowtrace.id,
             Array.copy cpu.Cpu.ftregs.Flowtrace.depth )
       else None);
  }

let import_stats (src : Stats.t) (dst : Stats.t) =
  dst.Stats.instructions <- src.Stats.instructions;
  dst.Stats.cycles <- src.Stats.cycles;
  dst.Stats.loads <- src.Stats.loads;
  dst.Stats.stores <- src.Stats.stores;
  dst.Stats.branches <- src.Stats.branches;
  dst.Stats.predicated_off <- src.Stats.predicated_off;
  dst.Stats.syscalls <- src.Stats.syscalls;
  dst.Stats.io_cycles <- src.Stats.io_cycles;
  if
    Array.length dst.Stats.slots_by_prov
    <> Array.length src.Stats.slots_by_prov
  then invalid_arg "Snapshot.import_cpu: issue-slot provenance arity mismatch";
  Array.blit src.Stats.slots_by_prov 0 dst.Stats.slots_by_prov 0
    (Array.length src.Stats.slots_by_prov)

let import_cpu hart (cpu : Cpu.t) =
  if Array.length hart.h_values <> Array.length cpu.Cpu.values then
    invalid_arg "Snapshot.import_cpu: register file arity mismatch";
  if Array.length hart.h_nats <> Array.length cpu.Cpu.nats then
    invalid_arg "Snapshot.import_cpu: NaT file arity mismatch";
  if Array.length hart.h_preds <> Array.length cpu.Cpu.preds then
    invalid_arg "Snapshot.import_cpu: predicate file arity mismatch";
  Array.blit hart.h_values 0 cpu.Cpu.values 0 (Array.length hart.h_values);
  Array.blit hart.h_nats 0 cpu.Cpu.nats 0 (Array.length hart.h_nats);
  Array.blit hart.h_preds 0 cpu.Cpu.preds 0 (Array.length hart.h_preds);
  cpu.Cpu.unat <- hart.h_unat;
  cpu.Cpu.ip <- hart.h_ip;
  import_stats hart.h_stats cpu.Cpu.stats;
  Pipeline.import cpu.Cpu.pipe hart.h_pipe;
  Cache.import cpu.Cpu.cache hart.h_cache;
  Stack.clear cpu.Cpu.call_stack;
  List.iter
    (fun frame -> Stack.push frame cpu.Cpu.call_stack)
    (List.rev hart.h_call_stack);
  match hart.h_ftregs with
  | None -> ()
  | Some (ids, depths) ->
      let regs = cpu.Cpu.ftregs in
      if
        Array.length ids <> Array.length regs.Flowtrace.id
        || Array.length depths <> Array.length regs.Flowtrace.depth
      then invalid_arg "Snapshot.import_cpu: ftregs arity mismatch";
      Array.blit ids 0 regs.Flowtrace.id 0 (Array.length ids);
      Array.blit depths 0 regs.Flowtrace.depth 0 (Array.length depths)

let dump_memory mem =
  Memory.fold_pages mem ~init:[] ~f:(fun acc key page ->
      (key, Bytes.to_string page) :: acc)
  |> List.rev

let dump_provenance pmap =
  Provenance.fold_pages pmap ~init:[] ~f:(fun acc key page ->
      (key, Bytes.to_string page) :: acc)
  |> List.rev

let load_memory mem pages =
  List.iter (fun (key, data) -> Memory.load_page mem key data) pages

let load_provenance pmap pages =
  List.iter (fun (key, data) -> Provenance.load_page pmap key data) pages

let capture ?(meta = []) ?tracking ~image ~config ~fuel_left ~result ~engine
    ~world () =
  let traced = config.c_trace <> None in
  let hart0 = Exec.hart0 engine in
  let machine =
    match Exec.machine engine with
    | Exec.Custom _ ->
        (* a process-table engine checkpoints through capture_procs *)
        invalid_arg "Snapshot.capture: custom engines have their own capture"
    | Exec.Cpu cpu -> M_cpu (export_cpu ~traced cpu)
    | Exec.Smp smp ->
        M_smp
          {
            sm_quantum = Smp.quantum smp;
            sm_harts =
              List.map
                (fun (id, state, cpu) -> (id, state, export_cpu ~traced cpu))
                (Smp.harts smp);
            sm_round = Smp.round smp;
            sm_finished = Smp.finished smp;
          }
  in
  let flow =
    if traced then
      let ft = hart0.Cpu.flowtrace in
      Some (Flowtrace.dump ft, dump_provenance (Flowtrace.provenance ft))
    else None
  in
  {
    meta;
    image;
    config;
    fuel_left;
    result;
    memory = dump_memory hart0.Cpu.mem;
    machine;
    world = World.dump world;
    flow;
    tracking;
  }

(* Like [capture], for a process-table machine: every process carries
   its own address space and provenance shadow, so the pages live
   per-process and the top-level [memory] (and the flow entry's page
   list) stay empty. *)
let capture_procs ?(meta = []) ?tracking ~image ~config ~fuel_left ~result
    ~(procs : Process.t) ~world () =
  let traced = config.c_trace <> None in
  let pm_procs =
    List.map
      (fun (p : Process.part) ->
        {
          ps_pid = p.Process.p_pid;
          ps_parent = p.Process.p_parent;
          ps_image = p.Process.p_image;
          ps_state = p.Process.p_state;
          ps_hart = export_cpu ~traced p.Process.p_cpu;
          ps_mem = dump_memory p.Process.p_cpu.Cpu.mem;
          ps_prov = (if traced then dump_provenance p.Process.p_pmap else []);
          ps_ctx = World.dump_ctx p.Process.p_ctx;
        })
      (Process.parts procs)
  in
  let flow =
    if traced then
      Some (Flowtrace.dump (Process.pid1_cpu procs).Cpu.flowtrace, [])
    else None
  in
  {
    meta;
    image;
    config;
    fuel_left;
    result;
    memory = [];
    machine =
      M_procs
        {
          pm_quantum = Process.quantum procs;
          pm_next_pid = Process.next_pid procs;
          pm_procs;
          pm_round = Process.round procs;
          pm_finished = Process.finished procs;
          pm_retired = Stats.copy (Process.retired procs);
        };
    world = World.dump world;
    flow;
    tracking;
  }

(* ---------- JSON serialisation ---------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let hex_encode s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  let digit k =
    Char.chr (if k < 10 then Char.code '0' + k else Char.code 'a' + k - 10)
  in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set b (2 * i) (digit (c lsr 4));
    Bytes.set b ((2 * i) + 1) (digit (c land 0xf))
  done;
  Bytes.to_string b

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then bad "odd-length hex payload";
  let v c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> bad "invalid hex digit %C" c
  in
  String.init (n / 2) (fun i ->
      Char.chr ((v s.[2 * i] lsl 4) lor v s.[(2 * i) + 1]))

(* int64 values are serialised as decimal strings: [Results.Int] is a
   native OCaml int, which cannot represent the full register range. *)
let j64 v = Results.String (Int64.to_string v)

let jbool b = Results.Bool b
let jint n = Results.Int n
let jstr s = Results.String s
let jopt f = function None -> Results.Null | Some v -> f v

let jbits a =
  Results.String (String.init (Array.length a) (fun i -> if a.(i) then '1' else '0'))

let jints a = Results.List (Array.to_list a |> List.map jint)
let ji64s a = Results.List (Array.to_list a |> List.map j64)

(* ---- decoding primitives ---- *)

let field name j =
  match Results.member name j with
  | Some v -> v
  | None -> bad "missing field %S" name

let as_int = function Results.Int n -> n | _ -> bad "expected an integer"
let as_bool = function Results.Bool b -> b | _ -> bad "expected a boolean"
let as_string = function Results.String s -> s | _ -> bad "expected a string"
let as_list = function Results.List l -> l | _ -> bad "expected a list"

let as_i64 = function
  | Results.String s -> (
      match Int64.of_string_opt s with
      | Some v -> v
      | None -> bad "expected an int64 string, got %S" s)
  | Results.Int n -> Int64.of_int n
  | _ -> bad "expected an int64"

let as_opt f = function Results.Null -> None | j -> Some (f j)

let as_bits j =
  let s = as_string j in
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | '1' -> true
      | '0' -> false
      | c -> bad "invalid bit %C" c)

let as_ints j = as_list j |> List.map as_int |> Array.of_list
let as_i64s j = as_list j |> List.map as_i64 |> Array.of_list

let ifield name j = as_int (field name j)
let sfield name j = as_string (field name j)
let bfield name j = as_bool (field name j)
let i64field name j = as_i64 (field name j)

(* ---- faults, alerts, outcomes ---- *)

let nat_use_to_json (u : Fault.nat_use) =
  jstr
    (match u with
    | Fault.Load_address -> "load_address"
    | Fault.Store_address -> "store_address"
    | Fault.Store_value -> "store_value"
    | Fault.Branch_target -> "branch_target"
    | Fault.Call_target -> "call_target")

let nat_use_of_json j : Fault.nat_use =
  match as_string j with
  | "load_address" -> Fault.Load_address
  | "store_address" -> Fault.Store_address
  | "store_value" -> Fault.Store_value
  | "branch_target" -> Fault.Branch_target
  | "call_target" -> Fault.Call_target
  | s -> bad "unknown NaT use %S" s

let fault_to_json (f : Fault.t) =
  Results.Obj
    (match f with
    | Fault.Nat_consumption u ->
        [ ("fault", jstr "nat_consumption"); ("use", nat_use_to_json u) ]
    | Fault.Invalid_address a ->
        [ ("fault", jstr "invalid_address"); ("addr", j64 a) ]
    | Fault.Invalid_branch a ->
        [ ("fault", jstr "invalid_branch"); ("target", j64 a) ]
    | Fault.Div_by_zero -> [ ("fault", jstr "div_by_zero") ]
    | Fault.Call_stack_overflow -> [ ("fault", jstr "call_stack_overflow") ]
    | Fault.Call_stack_underflow -> [ ("fault", jstr "call_stack_underflow") ])

let fault_of_json j : Fault.t =
  match sfield "fault" j with
  | "nat_consumption" -> Fault.Nat_consumption (nat_use_of_json (field "use" j))
  | "invalid_address" -> Fault.Invalid_address (i64field "addr" j)
  | "invalid_branch" -> Fault.Invalid_branch (i64field "target" j)
  | "div_by_zero" -> Fault.Div_by_zero
  | "call_stack_overflow" -> Fault.Call_stack_overflow
  | "call_stack_underflow" -> Fault.Call_stack_underflow
  | s -> bad "unknown fault %S" s

let alert_to_json (a : Alert.t) =
  Results.Obj
    [
      ("policy", jstr a.Alert.policy);
      ("message", jstr a.Alert.message);
      ("signature", jopt jstr a.Alert.signature);
      ("chain", Results.List (List.map jstr a.Alert.chain));
    ]

let alert_of_json j : Alert.t =
  {
    Alert.policy = sfield "policy" j;
    message = sfield "message" j;
    signature = as_opt as_string (field "signature" j);
    chain = as_list (field "chain" j) |> List.map as_string;
  }

let outcome_to_json (o : Report.outcome) =
  Results.Obj
    (match o with
    | Report.Exited code -> [ ("kind", jstr "exited"); ("code", j64 code) ]
    | Report.Alert a -> [ ("kind", jstr "alert"); ("alert", alert_to_json a) ]
    | Report.Fault f -> [ ("kind", jstr "fault"); ("fault", fault_to_json f) ]
    | Report.Timeout -> [ ("kind", jstr "timeout") ])

let outcome_of_json j : Report.outcome =
  match sfield "kind" j with
  | "exited" -> Report.Exited (i64field "code" j)
  | "alert" -> Report.Alert (alert_of_json (field "alert" j))
  | "fault" -> Report.Fault (fault_of_json (field "fault" j))
  | "timeout" -> Report.Timeout
  | s -> bad "unknown outcome kind %S" s

let cpu_outcome_to_json (o : Cpu.outcome) =
  Results.Obj
    (match o with
    | Cpu.Exited v -> [ ("kind", jstr "exited"); ("value", j64 v) ]
    | Cpu.Faulted (f, ip) ->
        [ ("kind", jstr "faulted"); ("fault", fault_to_json f); ("ip", jint ip) ]
    | Cpu.Out_of_fuel -> [ ("kind", jstr "out_of_fuel") ])

let cpu_outcome_of_json j : Cpu.outcome =
  match sfield "kind" j with
  | "exited" -> Cpu.Exited (i64field "value" j)
  | "faulted" -> Cpu.Faulted (fault_of_json (field "fault" j), ifield "ip" j)
  | "out_of_fuel" -> Cpu.Out_of_fuel
  | s -> bad "unknown machine outcome %S" s

let hart_state_to_json (s : Smp.state) =
  Results.Obj
    (match s with
    | Smp.Running -> [ ("state", jstr "running") ]
    | Smp.Done v -> [ ("state", jstr "done"); ("value", j64 v) ]
    | Smp.Crashed (f, ip) ->
        [ ("state", jstr "crashed"); ("fault", fault_to_json f); ("ip", jint ip) ])

let hart_state_of_json j : Smp.state =
  match sfield "state" j with
  | "running" -> Smp.Running
  | "done" -> Smp.Done (i64field "value" j)
  | "crashed" -> Smp.Crashed (fault_of_json (field "fault" j), ifield "ip" j)
  | s -> bad "unknown hart state %S" s

let proc_state_to_json (s : Process.state) =
  Results.Obj
    (match s with
    | Process.Run -> [ ("state", jstr "run") ]
    | Process.Zombie v -> [ ("state", jstr "zombie"); ("value", j64 v) ]
    | Process.Crashed (f, ip) ->
        [ ("state", jstr "crashed"); ("fault", fault_to_json f); ("ip", jint ip) ])

let proc_state_of_json j : Process.state =
  match sfield "state" j with
  | "run" -> Process.Run
  | "zombie" -> Process.Zombie (i64field "value" j)
  | "crashed" -> Process.Crashed (fault_of_json (field "fault" j), ifield "ip" j)
  | s -> bad "unknown process state %S" s

(* ---- configuration ---- *)

let policy_to_json (p : Policy.t) =
  Results.Obj
    [
      ("taint_network", jbool p.Policy.taint_network);
      ("taint_files", jbool p.Policy.taint_files);
      ("h1", jbool p.Policy.h1);
      ("h2", jopt jstr p.Policy.h2);
      ("h3", jbool p.Policy.h3);
      ("h4", jbool p.Policy.h4);
      ("h5", jbool p.Policy.h5);
      ("low_level", jbool p.Policy.low_level);
      ( "action",
        jstr
          (match p.Policy.action with
          | Policy.Halt_program -> "halt"
          | Policy.Log_only -> "log") );
    ]

let policy_of_json j : Policy.t =
  {
    Policy.taint_network = bfield "taint_network" j;
    taint_files = bfield "taint_files" j;
    h1 = bfield "h1" j;
    h2 = as_opt as_string (field "h2" j);
    h3 = bfield "h3" j;
    h4 = bfield "h4" j;
    h5 = bfield "h5" j;
    low_level = bfield "low_level" j;
    action =
      (match sfield "action" j with
      | "halt" -> Policy.Halt_program
      | "log" -> Policy.Log_only
      | s -> bad "unknown policy action %S" s);
  }

let io_cost_to_json (c : World.io_cost) =
  Results.Obj
    [
      ("per_call", jint c.World.per_call);
      ("per_byte", jint c.World.per_byte);
      ("sendfile_per_byte", jint c.World.sendfile_per_byte);
    ]

let io_cost_of_json j : World.io_cost =
  {
    World.per_call = ifield "per_call" j;
    per_byte = ifield "per_byte" j;
    sendfile_per_byte = ifield "sendfile_per_byte" j;
  }

let threading_to_json = function
  | T_single -> Results.Obj [ ("kind", jstr "single") ]
  | T_threads q ->
      Results.Obj [ ("kind", jstr "threads"); ("quantum", jopt jint q) ]
  | T_procs { tp_quantum; tp_comm } ->
      Results.Obj
        [
          ("kind", jstr "procs");
          ("quantum", jopt jint tp_quantum);
          ("comm", jopt jstr tp_comm);
        ]

let threading_of_json j =
  match sfield "kind" j with
  | "single" -> T_single
  | "threads" -> T_threads (as_opt as_int (field "quantum" j))
  | "procs" ->
      T_procs
        {
          tp_quantum = as_opt as_int (field "quantum" j);
          tp_comm = as_opt as_string (field "comm" j);
        }
  | s -> bad "unknown threading kind %S" s

let trace_options_to_json (o : Flowtrace.options) =
  Results.Obj
    [
      ("capacity", jint o.Flowtrace.capacity);
      ( "only",
        jopt
          (fun ks ->
            Results.List (List.map (fun k -> jstr (Flowtrace.kind_to_string k)) ks))
          o.Flowtrace.only );
    ]

let trace_options_of_json j : Flowtrace.options =
  {
    Flowtrace.capacity = ifield "capacity" j;
    only =
      as_opt
        (fun l ->
          as_list l
          |> List.map (fun k ->
                 let s = as_string k in
                 match Flowtrace.kind_of_string s with
                 | Some k -> k
                 | None -> bad "unknown event kind %S" s))
        (field "only" j);
  }

let config_to_json c =
  Results.Obj
    ([
       ("policy", policy_to_json c.c_policy);
       ("io_cost", io_cost_to_json c.c_io_cost);
       ("fuel", jint c.c_fuel);
       ("threading", threading_to_json c.c_threading);
       ("trace", jopt trace_options_to_json c.c_trace);
       ("superblocks", jbool c.c_superblocks);
     ]
    (* appended only when on, so untraced snapshots stay byte-identical
       to those taken before the observation channel existed *)
    @ (if c.c_hwtrace then [ ("hwtrace", jbool true) ] else [])
    (* appended only off the default so nat snapshots stay byte-identical
       to those taken before backends existed *)
    @ (match c.c_backend with
      | Backend.Nat -> []
      | b -> [ ("backend", jstr (Backend.to_string b)) ])
    (* likewise appended only when the session carries exec'able aux
       images (multi-process runs) *)
    @
    match c.c_images with
    | [] -> []
    | images ->
        [
          ( "images",
            Results.List
              (List.map
                 (fun (name, img) ->
                   Results.Obj
                     [
                       ("name", jstr name);
                       ("image", jstr (hex_encode (Marshal.to_string img [])));
                     ])
                 images) );
        ])

let config_of_json j =
  {
    c_policy = policy_of_json (field "policy" j);
    c_io_cost = io_cost_of_json (field "io_cost" j);
    c_fuel = ifield "fuel" j;
    c_threading = threading_of_json (field "threading" j);
    c_trace = as_opt trace_options_of_json (field "trace" j);
    (* absent means the observation channel is off — true of every
       snapshot taken before it existed *)
    c_hwtrace =
      (match Results.member "hwtrace" j with
      | Some v -> as_bool v
      | None -> false);
    (* absent in snapshots taken before the superblock compiler existed:
       those ran with the interpreter-equivalent default *)
    c_superblocks =
      (match Results.member "superblocks" j with
      | Some v -> as_bool v
      | None -> true);
    (* absent means the default backend, in old and new snapshots alike *)
    c_backend =
      (match Results.member "backend" j with
      | Some v -> (
          match Backend.of_string (as_string v) with
          | Ok b -> b
          | Error e -> bad "%s" e)
      | None -> Backend.Nat);
    c_images =
      (match Results.member "images" j with
      | None -> []
      | Some v ->
          as_list v
          |> List.map (fun e ->
                 let img : Image.t =
                   try Marshal.from_string (hex_decode (sfield "image" e)) 0
                   with Failure _ -> bad "corrupt embedded aux image"
                 in
                 (sfield "name" e, img)));
  }

(* ---- pages and world ---- *)

let pages_to_json pages =
  Results.List
    (List.map
       (fun (key, data) ->
         Results.Obj [ ("key", j64 key); ("data", jstr (hex_encode data)) ])
       pages)

let pages_of_json j =
  as_list j
  |> List.map (fun p -> (i64field "key" p, hex_decode (sfield "data" p)))

let fd_entry_to_json (e : World.fd_entry) =
  Results.Obj
    (match e with
    | World.Fstream oid -> [ ("kind", jstr "stream"); ("oid", jint oid) ]
    | World.Fpipe_r oid -> [ ("kind", jstr "pipe_r"); ("oid", jint oid) ]
    | World.Fpipe_w oid -> [ ("kind", jstr "pipe_w"); ("oid", jint oid) ])

let fd_entry_of_json j : World.fd_entry =
  let oid = ifield "oid" j in
  match sfield "kind" j with
  | "stream" -> World.Fstream oid
  | "pipe_r" -> World.Fpipe_r oid
  | "pipe_w" -> World.Fpipe_w oid
  | s -> bad "unknown fd entry kind %S" s

let arg_value_to_json (a : World.arg_value) =
  Results.Obj
    [
      ("bytes", jstr (hex_encode a.World.a_bytes));
      ("taints", jbits a.World.a_taints);
      ("provs", jints a.World.a_provs);
    ]

let arg_value_of_json j : World.arg_value =
  {
    World.a_bytes = hex_decode (sfield "bytes" j);
    a_taints = as_bits (field "taints" j);
    a_provs = as_ints (field "provs" j);
  }

let pipe_seg_to_json (s : Ospipe.seg_state) =
  Results.Obj
    [
      ("data", jstr (hex_encode s.Ospipe.sg_data));
      ("taints", jbits s.Ospipe.sg_taints);
      ("provs", jints s.Ospipe.sg_provs);
      ("pid", jint s.Ospipe.sg_pid);
      ("comm", jstr s.Ospipe.sg_comm);
      ("off", jint s.Ospipe.sg_off);
    ]

let pipe_seg_of_json j : Ospipe.seg_state =
  {
    Ospipe.sg_data = hex_decode (sfield "data" j);
    sg_taints = as_bits (field "taints" j);
    sg_provs = as_ints (field "provs" j);
    sg_pid = ifield "pid" j;
    sg_comm = sfield "comm" j;
    sg_off = ifield "off" j;
  }

let obj_state_to_json (o : World.obj_state) =
  Results.Obj
    (match o with
    | World.Os_stream s ->
        [
          ("kind", jstr "stream");
          ("content", jstr s.World.fd_content);
          ("pos", jint s.World.fd_pos);
          ("tainted", jbool s.World.fd_tainted);
          ("path", jopt jstr s.World.fd_path);
        ]
    | World.Os_pipe p ->
        [
          ("kind", jstr "pipe");
          ("segs", Results.List (List.map pipe_seg_to_json p.Ospipe.st_segs));
          ("readers", jint p.Ospipe.st_readers);
          ("writers", jint p.Ospipe.st_writers);
        ])

let obj_state_of_json j : World.obj_state =
  match sfield "kind" j with
  | "stream" ->
      World.Os_stream
        {
          World.fd_content = sfield "content" j;
          fd_pos = ifield "pos" j;
          fd_tainted = bfield "tainted" j;
          fd_path = as_opt as_string (field "path" j);
        }
  | "pipe" ->
      World.Os_pipe
        {
          Ospipe.st_segs = as_list (field "segs" j) |> List.map pipe_seg_of_json;
          st_readers = ifield "readers" j;
          st_writers = ifield "writers" j;
        }
  | s -> bad "unknown object kind %S" s

let ctx_to_json (c : World.ctx_state) =
  Results.Obj
    [
      ("pid", jint c.World.cx_pid);
      ("comm", jstr c.World.cx_comm);
      ( "fds",
        Results.List
          (List.map
             (fun (fd, e) ->
               Results.Obj [ ("fd", jint fd); ("entry", fd_entry_to_json e) ])
             c.World.cx_fds) );
      ("next_fd", jint c.World.cx_next_fd);
      ("brk", j64 c.World.cx_brk);
      ("crumbs", Results.List (List.map jstr c.World.cx_crumbs));
      ("argv", Results.List (List.map arg_value_to_json c.World.cx_argv));
    ]

let ctx_of_json j : World.ctx_state =
  {
    World.cx_pid = ifield "pid" j;
    cx_comm = sfield "comm" j;
    cx_fds =
      as_list (field "fds" j)
      |> List.map (fun f -> (ifield "fd" f, fd_entry_of_json (field "entry" f)));
    cx_next_fd = ifield "next_fd" j;
    cx_brk = i64field "brk" j;
    cx_crumbs = as_list (field "crumbs" j) |> List.map as_string;
    cx_argv = as_list (field "argv" j) |> List.map arg_value_of_json;
  }

let world_to_json (d : World.dump) =
  Results.Obj
    [
      ( "files",
        Results.List
          (List.map
             (fun (path, content, tainted) ->
               Results.Obj
                 [
                   ("path", jstr path);
                   ("content", jstr content);
                   ("tainted", jbool tainted);
                 ])
             d.World.d_files) );
      ( "objs",
        Results.List
          (List.map
             (fun (oid, refs, st) ->
               Results.Obj
                 [
                   ("oid", jint oid);
                   ("refs", jint refs);
                   ("state", obj_state_to_json st);
                 ])
             d.World.d_objs) );
      ("next_oid", jint d.World.d_next_oid);
      ("ctx", ctx_to_json d.World.d_ctx);
      ("pending", Results.List (List.map jstr d.World.d_pending));
      ("output", jstr d.World.d_output);
      ("html", jstr d.World.d_html);
      ("sql", Results.List (List.map jstr d.World.d_sql));
      ("commands", Results.List (List.map jstr d.World.d_commands));
      ("alerts", Results.List (List.map alert_to_json d.World.d_alerts));
    ]

let world_of_json j : World.dump =
  {
    World.d_files =
      as_list (field "files" j)
      |> List.map (fun f ->
             (sfield "path" f, sfield "content" f, bfield "tainted" f));
    d_objs =
      as_list (field "objs" j)
      |> List.map (fun o ->
             (ifield "oid" o, ifield "refs" o, obj_state_of_json (field "state" o)));
    d_next_oid = ifield "next_oid" j;
    d_ctx = ctx_of_json (field "ctx" j);
    d_pending = as_list (field "pending" j) |> List.map as_string;
    d_output = sfield "output" j;
    d_html = sfield "html" j;
    d_sql = as_list (field "sql" j) |> List.map as_string;
    d_commands = as_list (field "commands" j) |> List.map as_string;
    d_alerts = as_list (field "alerts" j) |> List.map alert_of_json;
  }

(* ---- machine state ---- *)

let stats_to_json (s : Stats.t) =
  Results.Obj
    [
      ("instructions", jint s.Stats.instructions);
      ("cycles", jint s.Stats.cycles);
      ("loads", jint s.Stats.loads);
      ("stores", jint s.Stats.stores);
      ("branches", jint s.Stats.branches);
      ("predicated_off", jint s.Stats.predicated_off);
      ("syscalls", jint s.Stats.syscalls);
      ("io_cycles", jint s.Stats.io_cycles);
      ("slots_by_prov", jints s.Stats.slots_by_prov);
    ]

let stats_of_json j : Stats.t =
  let s = Stats.create () in
  s.Stats.instructions <- ifield "instructions" j;
  s.Stats.cycles <- ifield "cycles" j;
  s.Stats.loads <- ifield "loads" j;
  s.Stats.stores <- ifield "stores" j;
  s.Stats.branches <- ifield "branches" j;
  s.Stats.predicated_off <- ifield "predicated_off" j;
  s.Stats.syscalls <- ifield "syscalls" j;
  s.Stats.io_cycles <- ifield "io_cycles" j;
  let slots = as_ints (field "slots_by_prov" j) in
  if Array.length slots <> Array.length s.Stats.slots_by_prov then
    bad "issue-slot provenance arity mismatch";
  Array.blit slots 0 s.Stats.slots_by_prov 0 (Array.length slots);
  s

let pipe_to_json (p : Pipeline.snap) =
  Results.Obj
    [
      ("cycle", jint p.Pipeline.s_cycle);
      ("slots_used", jint p.Pipeline.s_slots_used);
      ("mem_used", jint p.Pipeline.s_mem_used);
      ("reg_ready", jints p.Pipeline.s_reg_ready);
      ("pred_ready", jints p.Pipeline.s_pred_ready);
    ]

let pipe_of_json j : Pipeline.snap =
  {
    Pipeline.s_cycle = ifield "cycle" j;
    s_slots_used = ifield "slots_used" j;
    s_mem_used = ifield "mem_used" j;
    s_reg_ready = as_ints (field "reg_ready" j);
    s_pred_ready = as_ints (field "pred_ready" j);
  }

let cache_to_json (c : Cache.snap) =
  Results.Obj
    [
      ("lines", ji64s c.Cache.s_lines);
      ("hits", jint c.Cache.s_hits);
      ("misses", jint c.Cache.s_misses);
      ("line_shift", jint c.Cache.s_line_shift);
    ]

let cache_of_json j : Cache.snap =
  {
    Cache.s_lines = as_i64s (field "lines" j);
    s_hits = ifield "hits" j;
    s_misses = ifield "misses" j;
    (* absent in images written before the geometry check: those were
       all taken under the default 64-byte lines *)
    s_line_shift =
      (match Results.member "line_shift" j with
      | Some (Results.Int n) -> n
      | _ -> 6);
  }

let hart_to_json h =
  Results.Obj
    [
      ("values", ji64s h.h_values);
      ("nats", jbits h.h_nats);
      ("preds", jbits h.h_preds);
      ("unat", j64 h.h_unat);
      ("ip", jint h.h_ip);
      ("stats", stats_to_json h.h_stats);
      ("pipe", pipe_to_json h.h_pipe);
      ("cache", cache_to_json h.h_cache);
      ( "call_stack",
        Results.List
          (List.map
             (fun (ret, sp) -> Results.List [ jint ret; j64 sp ])
             h.h_call_stack) );
      ( "ftregs",
        jopt
          (fun (ids, depths) ->
            Results.Obj [ ("id", jints ids); ("depth", jints depths) ])
          h.h_ftregs );
    ]

let hart_of_json j =
  {
    h_values = as_i64s (field "values" j);
    h_nats = as_bits (field "nats" j);
    h_preds = as_bits (field "preds" j);
    h_unat = i64field "unat" j;
    h_ip = ifield "ip" j;
    h_stats = stats_of_json (field "stats" j);
    h_pipe = pipe_of_json (field "pipe" j);
    h_cache = cache_of_json (field "cache" j);
    h_call_stack =
      as_list (field "call_stack" j)
      |> List.map (function
           | Results.List [ ret; sp ] -> (as_int ret, as_i64 sp)
           | _ -> bad "malformed call-stack frame");
    h_ftregs =
      as_opt
        (fun o -> (as_ints (field "id" o), as_ints (field "depth" o)))
        (field "ftregs" j);
  }

let machine_to_json = function
  | M_cpu h -> Results.Obj [ ("shape", jstr "cpu"); ("hart", hart_to_json h) ]
  | M_smp { sm_quantum; sm_harts; sm_round; sm_finished } ->
      Results.Obj
        [
          ("shape", jstr "smp");
          ("quantum", jint sm_quantum);
          ( "harts",
            Results.List
              (List.map
                 (fun (id, state, h) ->
                   Results.Obj
                     [
                       ("id", jint id);
                       ("state", hart_state_to_json state);
                       ("hart", hart_to_json h);
                     ])
                 sm_harts) );
          ( "round",
            Results.List
              (List.map
                 (fun (id, rem) -> Results.List [ jint id; jint rem ])
                 sm_round) );
          ("finished", jopt cpu_outcome_to_json sm_finished);
        ]
  | M_procs { pm_quantum; pm_next_pid; pm_procs; pm_round; pm_finished; pm_retired }
    ->
      Results.Obj
        [
          ("shape", jstr "procs");
          ("quantum", jint pm_quantum);
          ("next_pid", jint pm_next_pid);
          ( "procs",
            Results.List
              (List.map
                 (fun p ->
                   Results.Obj
                     [
                       ("pid", jint p.ps_pid);
                       ("parent", jint p.ps_parent);
                       ("image", jopt jstr p.ps_image);
                       ("state", proc_state_to_json p.ps_state);
                       ("hart", hart_to_json p.ps_hart);
                       ("memory", pages_to_json p.ps_mem);
                       ("provenance_pages", pages_to_json p.ps_prov);
                       ("ctx", ctx_to_json p.ps_ctx);
                     ])
                 pm_procs) );
          ( "round",
            Results.List
              (List.map
                 (fun (pid, rem) -> Results.List [ jint pid; jint rem ])
                 pm_round) );
          ("finished", jopt cpu_outcome_to_json pm_finished);
          ("retired", stats_to_json pm_retired);
        ]

let machine_of_json j =
  match sfield "shape" j with
  | "cpu" -> M_cpu (hart_of_json (field "hart" j))
  | "smp" ->
      M_smp
        {
          sm_quantum = ifield "quantum" j;
          sm_harts =
            as_list (field "harts" j)
            |> List.map (fun h ->
                   ( ifield "id" h,
                     hart_state_of_json (field "state" h),
                     hart_of_json (field "hart" h) ));
          sm_round =
            as_list (field "round" j)
            |> List.map (function
                 | Results.List [ id; rem ] -> (as_int id, as_int rem)
                 | _ -> bad "malformed round entry");
          sm_finished = as_opt cpu_outcome_of_json (field "finished" j);
        }
  | "procs" ->
      M_procs
        {
          pm_quantum = ifield "quantum" j;
          pm_next_pid = ifield "next_pid" j;
          pm_procs =
            as_list (field "procs" j)
            |> List.map (fun p ->
                   {
                     ps_pid = ifield "pid" p;
                     ps_parent = ifield "parent" p;
                     ps_image = as_opt as_string (field "image" p);
                     ps_state = proc_state_of_json (field "state" p);
                     ps_hart = hart_of_json (field "hart" p);
                     ps_mem = pages_of_json (field "memory" p);
                     ps_prov = pages_of_json (field "provenance_pages" p);
                     ps_ctx = ctx_of_json (field "ctx" p);
                   });
          pm_round =
            as_list (field "round" j)
            |> List.map (function
                 | Results.List [ pid; rem ] -> (as_int pid, as_int rem)
                 | _ -> bad "malformed round entry");
          pm_finished = as_opt cpu_outcome_of_json (field "finished" j);
          pm_retired = stats_of_json (field "retired" j);
        }
  | s -> bad "unknown machine shape %S" s

(* ---- flow ---- *)

let source_to_json (s : Flowtrace.source) =
  Results.Obj
    [
      ("sid", jint s.Flowtrace.sid);
      ("channel", jstr s.Flowtrace.channel);
      ("origin", jstr s.Flowtrace.origin);
      ("offset", jint s.Flowtrace.offset);
      ("len", jint s.Flowtrace.len);
    ]

let source_of_json j : Flowtrace.source =
  {
    Flowtrace.sid = ifield "sid" j;
    channel = sfield "channel" j;
    origin = sfield "origin" j;
    offset = ifield "offset" j;
    len = ifield "len" j;
  }

let detail_to_json (d : Flowtrace.detail) =
  Results.Obj
    (match d with
    | Flowtrace.Ev_birth { src; addr } ->
        [ ("t", jstr "birth"); ("src", source_to_json src); ("addr", j64 addr) ]
    | Flowtrace.Ev_load { reg; addr; id } ->
        [ ("t", jstr "load"); ("reg", jint reg); ("addr", j64 addr); ("id", jint id) ]
    | Flowtrace.Ev_prop { dst; src; id; depth } ->
        [
          ("t", jstr "prop");
          ("dst", jint dst);
          ("src", jint src);
          ("id", jint id);
          ("depth", jint depth);
        ]
    | Flowtrace.Ev_store { reg; addr; len; id } ->
        [
          ("t", jstr "store");
          ("reg", jint reg);
          ("addr", j64 addr);
          ("len", jint len);
          ("id", jint id);
        ]
    | Flowtrace.Ev_purge { reg } -> [ ("t", jstr "purge"); ("reg", jint reg) ]
    | Flowtrace.Ev_check { reg; tainted } ->
        [ ("t", jstr "check"); ("reg", jint reg); ("tainted", jbool tainted) ]
    | Flowtrace.Ev_sink { policy; detail } ->
        [ ("t", jstr "sink"); ("policy", jstr policy); ("detail", jstr detail) ])

let detail_of_json j : Flowtrace.detail =
  match sfield "t" j with
  | "birth" ->
      Flowtrace.Ev_birth
        { src = source_of_json (field "src" j); addr = i64field "addr" j }
  | "load" ->
      Flowtrace.Ev_load
        { reg = ifield "reg" j; addr = i64field "addr" j; id = ifield "id" j }
  | "prop" ->
      Flowtrace.Ev_prop
        {
          dst = ifield "dst" j;
          src = ifield "src" j;
          id = ifield "id" j;
          depth = ifield "depth" j;
        }
  | "store" ->
      Flowtrace.Ev_store
        {
          reg = ifield "reg" j;
          addr = i64field "addr" j;
          len = ifield "len" j;
          id = ifield "id" j;
        }
  | "purge" -> Flowtrace.Ev_purge { reg = ifield "reg" j }
  | "check" ->
      Flowtrace.Ev_check { reg = ifield "reg" j; tainted = bfield "tainted" j }
  | "sink" ->
      Flowtrace.Ev_sink
        { policy = sfield "policy" j; detail = sfield "detail" j }
  | s -> bad "unknown event type %S" s

let event_to_json (e : Flowtrace.event) =
  Results.Obj
    [
      ("seq", jint e.Flowtrace.seq);
      ("ip", jint e.Flowtrace.ip);
      ("ev", detail_to_json e.Flowtrace.ev);
    ]

let event_of_json j : Flowtrace.event =
  {
    Flowtrace.seq = ifield "seq" j;
    ip = ifield "ip" j;
    ev = detail_of_json (field "ev" j);
  }

let flow_to_json (d : Flowtrace.dump) pages =
  Results.Obj
    [
      ("enabled", jbool d.Flowtrace.d_enabled);
      ("capacity", jint d.Flowtrace.d_capacity);
      ("keep", jbits d.Flowtrace.d_keep);
      ("count", jint d.Flowtrace.d_count);
      ("window", Results.List (List.map event_to_json d.Flowtrace.d_window));
      ("sources", Results.List (List.map source_to_json d.Flowtrace.d_sources));
      ("next_id", jint d.Flowtrace.d_next_id);
      ( "spec",
        Results.List
          (List.map
             (fun (ip, sid) -> Results.List [ jint ip; jint sid ])
             d.Flowtrace.d_spec) );
      ("births", jint d.Flowtrace.d_births);
      ("propagations", jint d.Flowtrace.d_propagations);
      ("purges", jint d.Flowtrace.d_purges);
      ("checks", jint d.Flowtrace.d_checks);
      ("sink_hits", jint d.Flowtrace.d_sink_hits);
      ("max_depth", jint d.Flowtrace.d_max_depth);
      ("provenance_pages", pages_to_json pages);
    ]

let flow_of_json j =
  let d =
    {
      Flowtrace.d_enabled = bfield "enabled" j;
      d_capacity = ifield "capacity" j;
      d_keep = as_bits (field "keep" j);
      d_count = ifield "count" j;
      d_window = as_list (field "window" j) |> List.map event_of_json;
      d_sources = as_list (field "sources" j) |> List.map source_of_json;
      d_next_id = ifield "next_id" j;
      d_spec =
        as_list (field "spec" j)
        |> List.map (function
             | Results.List [ ip; sid ] -> (as_int ip, as_int sid)
             | _ -> bad "malformed spec-source entry");
      d_births = ifield "births" j;
      d_propagations = ifield "propagations" j;
      d_purges = ifield "purges" j;
      d_checks = ifield "checks" j;
      d_sink_hits = ifield "sink_hits" j;
      d_max_depth = ifield "max_depth" j;
    }
  in
  (d, pages_of_json (field "provenance_pages" j))

(* ---- tag-coprocessor state ---- *)

let tracking_record_to_json (r : Tracking.record) =
  Results.Obj
    (match r with
    | Tracking.Set { dst; tainted } ->
        [ ("op", jstr "set"); ("dst", jint dst); ("tainted", jbool tainted) ]
    | Tracking.Move { dst; src } ->
        [ ("op", jstr "move"); ("dst", jint dst); ("src", jint src) ]
    | Tracking.Union { dst; s1; s2 } ->
        [ ("op", jstr "union"); ("dst", jint dst); ("s1", jint s1); ("s2", jint s2) ]
    | Tracking.Load { dst; addr; len } ->
        [ ("op", jstr "load"); ("dst", jint dst); ("addr", j64 addr); ("len", jint len) ]
    | Tracking.Store { addr; len; src } ->
        [ ("op", jstr "store"); ("addr", j64 addr); ("len", jint len); ("src", jint src) ]
    | Tracking.Check { what; reg } ->
        [
          ("op", jstr "check");
          ("what", jstr (Tracking.check_to_string what));
          ("reg", jint reg);
        ])

let tracking_record_of_json j : Tracking.record =
  match sfield "op" j with
  | "set" -> Tracking.Set { dst = ifield "dst" j; tainted = as_bool (field "tainted" j) }
  | "move" -> Tracking.Move { dst = ifield "dst" j; src = ifield "src" j }
  | "union" ->
      Tracking.Union { dst = ifield "dst" j; s1 = ifield "s1" j; s2 = ifield "s2" j }
  | "load" ->
      Tracking.Load
        { dst = ifield "dst" j; addr = as_i64 (field "addr" j); len = ifield "len" j }
  | "store" ->
      Tracking.Store
        { addr = as_i64 (field "addr" j); len = ifield "len" j; src = ifield "src" j }
  | "check" -> (
      match Tracking.check_of_string (sfield "what" j) with
      | Some what -> Tracking.Check { what; reg = ifield "reg" j }
      | None -> bad "unknown check kind %S" (sfield "what" j))
  | op -> bad "unknown tag record %S" op

let tracking_to_json (d : Tracking.dump) =
  Results.Obj
    [
      ("regs", jbits d.Tracking.d_regs);
      ( "queue",
        Results.List
          (List.map
             (fun (r, at) ->
               Results.Obj
                 [ ("record", tracking_record_to_json r); ("at", jint at) ])
             d.Tracking.d_queue) );
      ("retired", jint d.Tracking.d_retired);
      ("pending_stall", jint d.Tracking.d_pending_stall);
    ]

let tracking_of_json j : Tracking.dump =
  {
    Tracking.d_regs = as_bits (field "regs" j);
    d_queue =
      List.map
        (fun e -> (tracking_record_of_json (field "record" e), ifield "at" e))
        (as_list (field "queue" j));
    d_retired = ifield "retired" j;
    d_pending_stall = ifield "pending_stall" j;
  }

(* ---- the envelope ---- *)

let to_json t =
  Results.Obj
    ([
       ("snapshot_version", jint version);
       ("kind", jstr "shift-snapshot");
       ("meta", Results.Obj (List.map (fun (k, v) -> (k, jstr v)) t.meta));
       ("config", config_to_json t.config);
       ("fuel_left", jint t.fuel_left);
       ("result", jopt outcome_to_json t.result);
       ("image", jstr (hex_encode (Marshal.to_string t.image [])));
       ("memory", pages_to_json t.memory);
       ("machine", machine_to_json t.machine);
       ("world", world_to_json t.world);
       ("flow", jopt (fun (d, pages) -> flow_to_json d pages) t.flow);
     ]
    (* appended only for the coproc backend: nat snapshots keep the
       exact envelope of earlier versions *)
    @
    match t.tracking with
    | None -> []
    | Some d -> [ ("tracking", tracking_to_json d) ])

let of_json j =
  try
    (match Results.member "kind" j with
    | Some (Results.String "shift-snapshot") -> ()
    | _ -> bad "not a shift snapshot");
    let v = ifield "snapshot_version" j in
    if v <> version then bad "unsupported snapshot version %d (expected %d)" v version;
    let meta =
      match field "meta" j with
      | Results.Obj fields -> List.map (fun (k, v) -> (k, as_string v)) fields
      | _ -> bad "malformed meta"
    in
    let image : Image.t =
      try Marshal.from_string (hex_decode (sfield "image" j)) 0
      with Failure _ -> bad "corrupt embedded image"
    in
    Ok
      {
        meta;
        image;
        config = config_of_json (field "config" j);
        fuel_left = ifield "fuel_left" j;
        result = as_opt outcome_of_json (field "result" j);
        memory = pages_of_json (field "memory" j);
        machine = machine_of_json (field "machine" j);
        world = world_of_json (field "world" j);
        flow = as_opt flow_of_json (field "flow" j);
        tracking =
          (match Results.member "tracking" j with
          | Some v -> Some (tracking_of_json v)
          | None -> None);
      }
  with Bad msg -> Error msg

let save path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Results.to_string (to_json t));
      output_char oc '\n');
  Sys.rename tmp path

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Results.of_string text with
      | Error msg -> Error ("invalid JSON: " ^ msg)
      | Ok j -> of_json j)
