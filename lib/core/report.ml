type outcome =
  | Exited of int64
  | Alert of Shift_policy.Alert.t
  | Fault of Shift_machine.Fault.t
  | Timeout

type t = {
  outcome : outcome;
  stats : Shift_machine.Stats.t;
  logged : Shift_policy.Alert.t list;
  output : string;
  html : string;
  sql : string list;
  commands : string list;
  flow : Shift_machine.Flowtrace.summary option;
  cache_hits : int;
  cache_misses : int;
      (** L1D counters summed over harts; simulated state, so they ride
          checkpoints and are identical however the run was sliced *)
}

let detected t =
  match t.outcome with Alert _ -> true | _ -> t.logged <> []

let alert t = match t.outcome with Alert a -> Some a | _ -> None
let cycles t = t.stats.Shift_machine.Stats.cycles

let cache_hit_rate t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int total

let pp_outcome ppf = function
  | Exited code -> Format.fprintf ppf "exited(%Ld)" code
  | Alert a -> Format.fprintf ppf "ALERT %a" Shift_policy.Alert.pp a
  | Fault f -> Format.fprintf ppf "fault: %a" Shift_machine.Fault.pp f
  | Timeout -> Format.pp_print_string ppf "timeout"

let pp ppf t =
  Format.fprintf ppf "@[<v>outcome: %a@ cycles: %d@ instructions: %d@]" pp_outcome
    t.outcome t.stats.Shift_machine.Stats.cycles
    t.stats.Shift_machine.Stats.instructions
