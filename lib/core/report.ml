type outcome =
  | Exited of int64
  | Alert of Shift_policy.Alert.t
  | Fault of Shift_machine.Fault.t
  | Timeout

type t = {
  outcome : outcome;
  stats : Shift_machine.Stats.t;
  logged : Shift_policy.Alert.t list;
  output : string;
  html : string;
  sql : string list;
  commands : string list;
  flow : Shift_machine.Flowtrace.summary option;
}

let detected t =
  match t.outcome with Alert _ -> true | _ -> t.logged <> []

let alert t = match t.outcome with Alert a -> Some a | _ -> None
let cycles t = t.stats.Shift_machine.Stats.cycles

let pp_outcome ppf = function
  | Exited code -> Format.fprintf ppf "exited(%Ld)" code
  | Alert a -> Format.fprintf ppf "ALERT %a" Shift_policy.Alert.pp a
  | Fault f -> Format.fprintf ppf "fault: %a" Shift_machine.Fault.pp f
  | Timeout -> Format.pp_print_string ppf "timeout"

let pp ppf t =
  Format.fprintf ppf "@[<v>outcome: %a@ cycles: %d@ instructions: %d@]" pp_outcome
    t.outcome t.stats.Shift_machine.Stats.cycles
    t.stats.Shift_machine.Stats.instructions
