open Shift_isa
module Provenance = Shift_mem.Provenance

type source = {
  sid : int;
  channel : string;
  origin : string;
  offset : int;
  len : int;
}

type kind = Birth | Load | Prop | Store | Purge | Check | Sink

type detail =
  | Ev_birth of { src : source; addr : int64 }
  | Ev_load of { reg : Reg.t; addr : int64; id : int }
  | Ev_prop of { dst : Reg.t; src : Reg.t; id : int; depth : int }
  | Ev_store of { reg : Reg.t; addr : int64; len : int; id : int }
  | Ev_purge of { reg : Reg.t }
  | Ev_check of { reg : Reg.t; tainted : bool }
  | Ev_sink of { policy : string; detail : string }

type event = { seq : int; ip : int; ev : detail }

let kind_of = function
  | Ev_birth _ -> Birth
  | Ev_load _ -> Load
  | Ev_prop _ -> Prop
  | Ev_store _ -> Store
  | Ev_purge _ -> Purge
  | Ev_check _ -> Check
  | Ev_sink _ -> Sink

let kind_index = function
  | Birth -> 0
  | Load -> 1
  | Prop -> 2
  | Store -> 3
  | Purge -> 4
  | Check -> 5
  | Sink -> 6

let kind_count = 7

let kind_to_string = function
  | Birth -> "birth"
  | Load -> "load"
  | Prop -> "prop"
  | Store -> "store"
  | Purge -> "purge"
  | Check -> "check"
  | Sink -> "sink"

let kind_of_string = function
  | "birth" -> Some Birth
  | "load" -> Some Load
  | "prop" -> Some Prop
  | "store" -> Some Store
  | "purge" -> Some Purge
  | "check" -> Some Check
  | "sink" -> Some Sink
  | _ -> None

let all_kinds = [ Birth; Load; Prop; Store; Purge; Check; Sink ]

type t = {
  mutable enabled : bool;
  capacity : int;
  mask : int;  (* capacity - 1 when capacity is a power of two, else -1 *)
  ring : event array;
  mutable count : int;
  keep : bool array;
  mutable batching : bool;
  scratch : event array;  (* block-local staging while [batching] *)
  mutable scratch_len : int;
  (* Mutable so a multi-process kernel can swap in the running process's
     own shadow at context-switch time: sources and the ring are shared
     machine-wide (ids stay valid in every address space), the per-byte
     map is per-process. *)
  mutable pmap : Provenance.t;
  mutable sources : source list;
  mutable next_id : int;
  spec_sources : (int, source) Hashtbl.t;
  mutable births : int;
  mutable propagations : int;
  mutable purges : int;
  mutable checks : int;
  mutable sink_hits : int;
  mutable max_depth : int;
}

type options = { capacity : int; only : kind list option }

let default_options = { capacity = 4096; only = None }

let dummy_event = { seq = -1; ip = -1; ev = Ev_purge { reg = Reg.zero } }

let make ~enabled { capacity; only } =
  let capacity = max 1 capacity in
  let keep =
    match only with
    | None -> Array.make kind_count true
    | Some ks ->
        let keep = Array.make kind_count false in
        List.iter (fun k -> keep.(kind_index k) <- true) ks;
        keep
  in
  {
    enabled;
    capacity;
    mask = (if capacity land (capacity - 1) = 0 then capacity - 1 else -1);
    ring = Array.make capacity dummy_event;
    count = 0;
    keep;
    batching = false;
    scratch = Array.make 128 dummy_event;
    scratch_len = 0;
    pmap = Provenance.create ();
    sources = [];
    next_id = 1;
    spec_sources = Hashtbl.create 16;
    births = 0;
    propagations = 0;
    purges = 0;
    checks = 0;
    sink_hits = 0;
    max_depth = 0;
  }

let create ?(options = default_options) () = make ~enabled:true options
let disabled () = make ~enabled:false { capacity = 1; only = None }

type regs = { id : int array; depth : int array; washed : int array }

let fresh_regs () =
  {
    id = Array.make Reg.count 0;
    depth = Array.make Reg.count 0;
    washed = Array.make Reg.count 0;
  }

let copy_regs src dst =
  Array.blit src.id 0 dst.id 0 Reg.count;
  Array.blit src.depth 0 dst.depth 0 Reg.count;
  Array.blit src.washed 0 dst.washed 0 Reg.count

(* The ring slot of sequence number [seq]: a power-of-two capacity (the
   default 4096 is one) turns the division into a mask. *)
let slot t seq = if t.mask >= 0 then seq land t.mask else seq mod t.capacity

let flush_scratch t =
  for i = 0 to t.scratch_len - 1 do
    let e = t.scratch.(i) in
    t.ring.(slot t e.seq) <- e
  done;
  t.scratch_len <- 0

let emit t ip ev =
  if t.keep.(kind_index (kind_of ev)) then begin
    let e = { seq = t.count; ip; ev } in
    t.count <- t.count + 1;
    if t.batching then begin
      if t.scratch_len = Array.length t.scratch then flush_scratch t;
      t.scratch.(t.scratch_len) <- e;
      t.scratch_len <- t.scratch_len + 1
    end
    else t.ring.(slot t e.seq) <- e
  end

(* Per-superblock batching: between [begin_batch] and [end_batch] events
   stage in the scratch buffer and land in the ring in one flush.  Slots
   are computed from each event's own [seq], so the ring contents after
   the flush are identical to unbatched emission. *)
let begin_batch t = t.batching <- true

let end_batch t =
  flush_scratch t;
  t.batching <- false

let intern t ~channel ~origin ~offset ~len =
  let src = { sid = t.next_id; channel; origin; offset; len } in
  t.next_id <- t.next_id + len;
  t.sources <- src :: t.sources;
  src

(* ---------- hooks ---------- *)

let on_input t ~ip ~channel ~origin ~offset ~addr ~len ~tainted =
  if len > 0 then
    if tainted then begin
      let src = intern t ~channel ~origin ~offset ~len in
      Provenance.set_span t.pmap ~addr ~len ~first:src.sid;
      t.births <- t.births + 1;
      emit t ip (Ev_birth { src; addr })
    end
    else Provenance.set_range t.pmap ~addr ~len ~id:0

let on_spec_nat t regs ~ip ~dst =
  if dst <> Reg.zero then begin
    let src =
      match Hashtbl.find_opt t.spec_sources ip with
      | Some s -> s
      | None ->
          let s =
            intern t ~channel:"spec"
              ~origin:(Printf.sprintf "speculative load @%d" ip)
              ~offset:0 ~len:1
          in
          Hashtbl.add t.spec_sources ip s;
          s
    in
    regs.id.(dst) <- src.sid;
    regs.depth.(dst) <- 1;
    regs.washed.(dst) <- 0;
    t.births <- t.births + 1;
    emit t ip (Ev_birth { src; addr = 0L })
  end

let on_load t regs ~ip ~dst ~addr ~len =
  if dst <> Reg.zero then begin
    let id = Provenance.first_id t.pmap ~addr ~len in
    regs.id.(dst) <- id;
    regs.depth.(dst) <- (if id = 0 then 0 else 1);
    regs.washed.(dst) <- 0;
    if id <> 0 then begin
      t.propagations <- t.propagations + 1;
      emit t ip (Ev_load { reg = dst; addr; id })
    end
  end

let on_store t regs ~ip ~src ~addr ~len =
  let id = if src = Reg.zero then 0 else regs.id.(src) in
  if id = 0 then Provenance.set_range t.pmap ~addr ~len ~id:0
  else begin
    Provenance.set_range t.pmap ~addr ~len ~id;
    t.propagations <- t.propagations + 1;
    emit t ip (Ev_store { reg = src; addr; len; id })
  end

let on_move t regs ~ip ~dst ~src =
  if dst <> Reg.zero then begin
    let id = if src = Reg.zero then 0 else regs.id.(src) in
    regs.id.(dst) <- id;
    regs.depth.(dst) <- (if src = Reg.zero then 0 else regs.depth.(src));
    regs.washed.(dst) <-
      (if src = Reg.zero || id <> 0 then 0 else regs.washed.(src));
    if id <> 0 then begin
      t.propagations <- t.propagations + 1;
      emit t ip (Ev_prop { dst; src; id; depth = regs.depth.(dst) })
    end
  end

let on_const _t regs ~dst =
  if dst <> Reg.zero then begin
    regs.id.(dst) <- 0;
    regs.depth.(dst) <- 0;
    regs.washed.(dst) <- 0
  end

let on_arith t regs ~ip ~dst ~src1 ~src2 ~clear =
  if dst <> Reg.zero then
    if clear then begin
      if regs.id.(dst) <> 0 then begin
        t.purges <- t.purges + 1;
        emit t ip (Ev_purge { reg = dst })
      end;
      regs.id.(dst) <- 0;
      regs.depth.(dst) <- 0;
      regs.washed.(dst) <- 0
    end
    else begin
      let id1 = regs.id.(src1) in
      let d1 = regs.depth.(src1) in
      let id2, d2 =
        match src2 with None -> (0, 0) | Some r -> (regs.id.(r), regs.depth.(r))
      in
      (* OR-propagation: the destination inherits the first contributing
         source (matching the paper's any-tainted-operand rule). *)
      let id = if id1 <> 0 then id1 else id2 in
      if id = 0 then begin
        regs.id.(dst) <- 0;
        regs.depth.(dst) <- 0;
        (* declassified provenance rides the arithmetic: an address
           computed from an untainted-after-bounds-check index still
           remembers which input bytes steered it (for the side-channel
           detector only; taint semantics are unchanged) *)
        let w1 = regs.washed.(src1) in
        let w2 = match src2 with None -> 0 | Some r -> regs.washed.(r) in
        regs.washed.(dst) <- (if w1 <> 0 then w1 else w2)
      end
      else begin
        let from = if id1 <> 0 then src1 else Option.get src2 in
        let depth = 1 + max d1 d2 in
        regs.id.(dst) <- id;
        regs.depth.(dst) <- depth;
        regs.washed.(dst) <- 0;
        if depth > t.max_depth then t.max_depth <- depth;
        t.propagations <- t.propagations + 1;
        emit t ip (Ev_prop { dst; src = from; id; depth })
      end
    end

let on_check t _regs ~ip ~src ~tainted =
  t.checks <- t.checks + 1;
  if tainted then emit t ip (Ev_check { reg = src; tainted })

let on_setnat t regs ~ip ~reg =
  if reg <> Reg.zero then begin
    let src =
      match Hashtbl.find_opt t.spec_sources ip with
      | Some s -> s
      | None ->
          let s =
            intern t ~channel:"setnat"
              ~origin:(Printf.sprintf "setnat @%d" ip)
              ~offset:0 ~len:1
          in
          Hashtbl.add t.spec_sources ip s;
          s
    in
    regs.id.(reg) <- src.sid;
    regs.depth.(reg) <- 1;
    regs.washed.(reg) <- 0;
    t.births <- t.births + 1;
    emit t ip (Ev_birth { src; addr = 0L })
  end

let on_clrnat t regs ~ip ~reg =
  if reg <> Reg.zero then begin
    if regs.id.(reg) <> 0 then begin
      t.purges <- t.purges + 1;
      emit t ip (Ev_purge { reg });
      (* the purged id survives as declassified provenance: the value is
         no longer tainted, but the side-channel detector can still name
         the input bytes it was derived from *)
      regs.washed.(reg) <- regs.id.(reg)
    end;
    regs.id.(reg) <- 0;
    regs.depth.(reg) <- 0
  end

let on_sink t ~ip ~policy ~detail =
  t.sink_hits <- t.sink_hits + 1;
  emit t ip (Ev_sink { policy; detail })

(* ---------- queries ---------- *)

let byte_id t a = Provenance.get t.pmap a

let source_of_id t id =
  if id = 0 then None
  else List.find_opt (fun s -> s.sid <= id && id < s.sid + s.len) t.sources

let input_offset s id = s.offset + (id - s.sid)

let hop s ~lo ~hi =
  if lo = hi then Printf.sprintf "input %s[%d] via %s" s.channel lo s.origin
  else Printf.sprintf "input %s[%d..%d] via %s" s.channel lo hi s.origin

let chain t ~addr ~positions =
  (* resolve each position, then collapse runs of consecutive positions
     that carry consecutive offsets of the same source *)
  let resolved =
    List.filter_map
      (fun p ->
        let id = byte_id t (Int64.add addr (Int64.of_int p)) in
        match source_of_id t id with
        | Some s -> Some (p, s, input_offset s id)
        | None -> None)
      positions
  in
  let groups =
    (* accumulator entries: (source, lo_off, hi_pos, hi_off) *)
    let rec go acc = function
      | [] -> List.rev acc
      | (p, s, off) :: rest -> (
          match acc with
          | (s', lo, hi_p, hi_off) :: acc'
            when s'.sid = s.sid && p = hi_p + 1 && off = hi_off + 1 ->
              go ((s', lo, p, off) :: acc') rest
          | _ -> go ((s, off, p, off) :: acc) rest)
    in
    go [] resolved
  in
  let hops = List.map (fun (s, lo, _, hi) -> hop s ~lo ~hi) groups in
  (* drop adjacent duplicates (e.g. the same span hit twice) *)
  let rec dedupe = function
    | a :: b :: rest when String.equal a b -> dedupe (b :: rest)
    | a :: rest -> a :: dedupe rest
    | [] -> []
  in
  dedupe hops

let events t =
  let n = min t.count t.capacity in
  List.init n (fun i -> t.ring.((t.count - n + i) mod t.capacity))

let dropped t = max 0 (t.count - t.capacity)
let sources t = List.rev t.sources

type summary = {
  s_births : int;
  s_propagations : int;
  s_purges : int;
  s_checks : int;
  s_sink_hits : int;
  s_max_depth : int;
  s_events : int;
  s_dropped : int;
  s_sources : int;
}

let summary t =
  {
    s_births = t.births;
    s_propagations = t.propagations;
    s_purges = t.purges;
    s_checks = t.checks;
    s_sink_hits = t.sink_hits;
    s_max_depth = t.max_depth;
    s_events = t.count;
    s_dropped = dropped t;
    s_sources = List.length t.sources;
  }

(* ---------- checkpoint/restore ---------- *)

let provenance t = t.pmap
let set_provenance t pmap = t.pmap <- pmap

type dump = {
  d_enabled : bool;
  d_capacity : int;
  d_keep : bool array;
  d_count : int;
  d_window : event list;
  d_sources : source list;
  d_next_id : int;
  d_spec : (int * int) list;
  d_births : int;
  d_propagations : int;
  d_purges : int;
  d_checks : int;
  d_sink_hits : int;
  d_max_depth : int;
}

let dump t =
  {
    d_enabled = t.enabled;
    d_capacity = t.capacity;
    d_keep = Array.copy t.keep;
    d_count = t.count;
    d_window = events t;
    d_sources = t.sources;
    d_next_id = t.next_id;
    d_spec =
      Hashtbl.fold (fun ip src acc -> (ip, src.sid) :: acc) t.spec_sources []
      |> List.sort compare;
    d_births = t.births;
    d_propagations = t.propagations;
    d_purges = t.purges;
    d_checks = t.checks;
    d_sink_hits = t.sink_hits;
    d_max_depth = t.max_depth;
  }

let of_dump d =
  if Array.length d.d_keep <> kind_count then
    invalid_arg "Flowtrace.of_dump: keep filter arity mismatch";
  let capacity = max 1 d.d_capacity in
  let ring = Array.make capacity dummy_event in
  (* the live window is the last [min count capacity] events; re-seating
     each at [seq mod capacity] reproduces the exact ring layout (older
     slots hold the dummy, which [events] never reads) *)
  List.iter (fun e -> ring.(e.seq mod capacity) <- e) d.d_window;
  let spec_sources = Hashtbl.create 16 in
  List.iter
    (fun (ip, sid) ->
      match List.find_opt (fun s -> s.sid = sid) d.d_sources with
      | Some src -> Hashtbl.add spec_sources ip src
      | None ->
          invalid_arg "Flowtrace.of_dump: spec source not in the source list")
    d.d_spec;
  {
    enabled = d.d_enabled;
    capacity;
    mask = (if capacity land (capacity - 1) = 0 then capacity - 1 else -1);
    ring;
    count = d.d_count;
    keep = Array.copy d.d_keep;
    batching = false;
    scratch = Array.make 128 dummy_event;
    scratch_len = 0;
    pmap = Provenance.create ();
    sources = d.d_sources;
    next_id = d.d_next_id;
    spec_sources;
    births = d.d_births;
    propagations = d.d_propagations;
    purges = d.d_purges;
    checks = d.d_checks;
    sink_hits = d.d_sink_hits;
    max_depth = d.d_max_depth;
  }

(* ---------- printing ---------- *)

let pp_source ppf s =
  Format.fprintf ppf "#%d %s[%d..%d] via %s" s.sid s.channel s.offset
    (s.offset + s.len - 1)
    s.origin

let pp_addr ppf a = Shift_mem.Addr.pp ppf a

let pp_detail ppf = function
  | Ev_birth { src; addr } ->
      if Int64.equal addr 0L then Format.fprintf ppf "birth %a" pp_source src
      else Format.fprintf ppf "birth %a at %a" pp_source src pp_addr addr
  | Ev_load { reg; addr; id } ->
      Format.fprintf ppf "load  %a <- %a (id %d)" Reg.pp reg pp_addr addr id
  | Ev_prop { dst; src; id; depth } ->
      Format.fprintf ppf "prop  %a <- %a (id %d, depth %d)" Reg.pp dst Reg.pp
        src id depth
  | Ev_store { reg; addr; len; id } ->
      Format.fprintf ppf "store %a -> %a+%d (id %d)" Reg.pp reg pp_addr addr
        len id
  | Ev_purge { reg } -> Format.fprintf ppf "purge %a" Reg.pp reg
  | Ev_check { reg; tainted } ->
      Format.fprintf ppf "check %a (%s)" Reg.pp reg
        (if tainted then "tainted" else "clean")
  | Ev_sink { policy; detail } ->
      Format.fprintf ppf "sink  %s: %s" policy detail

let pp_event ppf e =
  Format.fprintf ppf "[%6d] ip=%-6d %a" e.seq e.ip pp_detail e.ev

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>births        %d@,propagations  %d@,purges        %d@,checks        \
     %d@,sink hits     %d@,max depth     %d@,events        %d (%d dropped)@,\
     sources       %d@]"
    s.s_births s.s_propagations s.s_purges s.s_checks s.s_sink_hits
    s.s_max_depth s.s_events s.s_dropped s.s_sources
