(** The resumable execution engine: one suspend/resume interface over
    both machine shapes.

    Every run loop in the system — single-hart runs, the SMP round
    robin, the session layer, batch fleets, the CLI — drives a machine
    through this module's {!run_for}, which executes a bounded number
    of instructions and suspends at an instruction-group boundary.
    Suspension touches no machine state, so the instruction stream, and
    with it every {!Stats} counter, is byte-identical however a run is
    sliced into budgets; cycle accounting is preserved by construction
    because the pipeline model only ever sees the same issue sequence.

    This is the substrate for request-level multiplexing and
    checkpointing: a host can interleave many guests by rotating
    [run_for] slices across their engines. *)

(** A machine shape defined by its driver, for schedulers that live
    above this library (the multi-process OS personality in
    [Shift_os.Process]).  The closures must satisfy the same contract
    as the built-in shapes: [c_run_for] suspends without touching
    machine state, [c_hart0] is the primary CPU, [c_stats] and
    [c_superblock_stats] aggregate across the machine. *)
type custom = {
  c_run_for : budget:int -> Cpu.status;
  c_stats : unit -> Stats.t;
  c_hart0 : unit -> Cpu.t;
  c_superblock_stats : unit -> Stats.superblocks;
  c_cache_stats : unit -> int * int;  (** (hits, misses) over the machine *)
}

(** The machine shapes an engine can drive. *)
type machine =
  | Cpu of Cpu.t  (** a single hart *)
  | Smp of Smp.t  (** a deterministic round robin over shared memory *)
  | Custom of custom  (** an externally scheduled machine *)

type t
(** An engine instance: a machine plus its memoised terminal outcome. *)

val of_cpu : Cpu.t -> t
(** Drive a single-hart machine. *)

val of_smp : Smp.t -> t
(** Drive a multi-hart machine (hart 0's outcome terminates the run). *)

val of_custom : custom -> t
(** Drive an externally scheduled machine through its closures. *)

val machine : t -> machine
(** The underlying machine. *)

val hart0 : t -> Cpu.t
(** The primary hart: the CPU itself, or hart 0 of an SMP machine.
    @raise Invalid_argument if an SMP machine has no hart 0 (cannot
    happen for machines built with {!Smp.create}). *)

val stats : t -> Stats.t
(** The run's counters: the CPU's own (live, shared) for a single hart;
    a fresh {!Stats.concurrent} aggregate over all harts for SMP. *)

val superblock_stats : t -> Stats.superblocks
(** A fresh aggregate of the host-side superblock counters across all
    harts (see {!Stats.superblocks}: never part of simulated state). *)

val cache_stats : t -> int * int
(** L1D [(hits, misses)] summed across all harts.  The counters are
    simulated state (they ride {!Cache.snap} through checkpoints), so
    unlike {!superblock_stats} they are deterministic per run. *)

val finished : t -> Cpu.outcome option
(** The memoised terminal outcome, once a {!run_for} call returned
    [`Finished]. *)

val run_for : t -> budget:int -> Cpu.status
(** Execute at most [budget] instructions and suspend.  Resume by
    calling again; once finished, the memoised outcome is returned
    without stepping the machine further.  A non-positive budget yields
    immediately. *)

val run : ?fuel:int -> t -> Cpu.outcome
(** Run to completion or fuel exhaustion (default 2e9): one {!run_for}
    slice, with [`Yielded] surfaced as {!Cpu.Out_of_fuel}. *)
