(** In-order issue timing model.

    Approximates an Itanium-2-like EPIC core: 6 issue slots per cycle,
    two memory ports, in-order issue with register scoreboarding, and
    predication (a predicated-off instruction occupies its slot but
    neither waits for nor produces operands).  This is what lets the
    instrumentation code overlap with program computation, which is the
    mechanism behind the paper's modest slowdowns: the deferred-exception
    hardware tracks register taint for free, and the inserted bitmap code
    competes mainly for memory ports and issue slots. *)

type t
(** Mutable timing state of one core: the current issue group, the
    register/predicate scoreboard, and the cycle counter. *)

val create : unit -> t
(** A core at cycle zero with an empty scoreboard. *)

(** Issue slots per cycle (6). *)
val width : int

(** Memory operations per cycle (2). *)
val mem_ports : int

val issue :
  t ->
  executing:bool ->
  reads:Shift_isa.Reg.t array ->
  writes:Shift_isa.Reg.t array ->
  pred_writes:Shift_isa.Pred.t array ->
  qp:Shift_isa.Pred.t ->
  is_mem:bool ->
  latency:int ->
  unit
(** Account one instruction.  [executing] is false when the qualifying
    predicate was false.  [latency] is the cycles until the destination
    registers are ready (1 for ALU, 2 for loads, ...).  Operands are the
    pre-decoded arrays of {!Decode.info} — the hot loop issues one of
    these per dynamic instruction, so no lists are allocated here. *)

val compile_issue :
  reads:Shift_isa.Reg.t array ->
  writes:Shift_isa.Reg.t array ->
  pred_writes:Shift_isa.Pred.t array ->
  qp:Shift_isa.Pred.t ->
  is_mem:bool ->
  t ->
  int ->
  unit
(** [compile_issue ~reads ~writes ~pred_writes ~qp ~is_mem] is a closure
    [fun t latency -> ...] performing exactly
    [issue t ~executing:true ... ~latency]'s scoreboard transitions,
    with the operand shape specialised at closure-build time (dead r0/p0
    destinations filtered, loops unrolled, the qp wait dropped for p0).
    Built once per instruction by the superblock compiler
    ({!Superblock}); byte-identical timing to {!issue} is what keeps
    superblock runs indistinguishable from interpreter runs. *)

val compile_issue_off : qp:Shift_isa.Pred.t -> t -> unit
(** The [executing:false] counterpart: a closure accounting a
    predicated-off slot ([latency] is irrelevant — nothing is
    produced). *)

val redirect : t -> penalty:int -> unit
(** A taken control transfer: close the current issue group and charge a
    front-end redirect penalty. *)

val stall : t -> int -> unit
(** Charge [n] cycles of dead time (system-call I/O costs). *)

val cycles : t -> int
(** Cycles elapsed so far. *)

(** {1 Checkpoint/restore}

    The complete timing state of a core, as plain data.  Restoring an
    exported snapshot into a fresh core reproduces the exact issue
    behaviour of the original: the scoreboard, the current issue group
    and the cycle counter all carry over, so cycle counts after a
    restore are byte-identical to an unbroken run. *)

type snap = {
  s_cycle : int;
  s_slots_used : int;
  s_mem_used : int;
  s_reg_ready : int array;
  s_pred_ready : int array;
}

val export : t -> snap
(** A deep copy of the timing state. *)

val import : t -> snap -> unit
(** Overwrite the core's timing state with a previously exported snap.
    @raise Invalid_argument on a scoreboard size mismatch. *)
