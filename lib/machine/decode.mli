(** Pre-decoded programs: the interpreter's fast-path representation.

    [Cpu.step] used to recompute, for every dynamic instruction, facts
    that only depend on the static instruction: operand lists (allocated
    as fresh lists by {!Shift_isa.Instr.reads}/[writes]), the latency
    class, the memory-port flag, the provenance index, and — for
    branches, calls, [lea] and [chk.s] — the label-table lookup of the
    target.  [of_program] computes all of that once per static
    instruction; the per-instruction {!info} records are what the hot
    loop and {!Pipeline.issue} consume.

    Decoding is pure bookkeeping: it never changes what an instruction
    does or costs, so cycle counts and faults are identical to the
    undecoded interpreter. *)

type info = {
  op : Shift_isa.Instr.op;
  qp : Shift_isa.Pred.t;       (** qualifying predicate *)
  prov_index : int;            (** dense {!Shift_isa.Prov.index} *)
  latency : int;               (** base latency class (cache misses add on top) *)
  is_mem : bool;               (** uses a memory port *)
  reads : Shift_isa.Reg.t array;
  writes : Shift_isa.Reg.t array;
  pred_writes : Shift_isa.Pred.t array;
  target : int;
      (** resolved label target of [Br]/[Call]/[Lea]/[Chk_s]; -1 when the
          instruction has no label operand *)
}

type t = info array
(** One record per instruction, indexed like [Program.code]. *)

val of_program : Shift_isa.Program.t -> t
(** Decode every instruction.  Assembly already checked all referenced
    labels, so target resolution cannot fail. *)

val latency_of : Shift_isa.Instr.op -> int
(** The latency class (1 ALU, 2 load, 3 multiply, 12 divide). *)
