(** Taint-provenance tracking and flow-trace observability.

    SHIFT's alerts say {e that} tainted data reached a sink; Flowtrace
    records {e where} the taint entered and {e how} it flowed there.  It
    keeps two shadows next to the architectural taint state:

    - a per-byte {e provenance map} over guest memory
      ({!Shift_mem.Provenance}): each byte carries a small id interned
      to a {!source} record (input channel, stream offset, syscall or
      world origin);
    - a per-register id/depth shadow ({!regs}), one per hart, updated by
      the propagation hooks the CPU calls alongside the NaT lifecycle.

    Every hook emits a structured {!event} into a fixed-capacity ring
    buffer.  All hooks sit behind the single {!field-enabled} flag: with
    tracing off the cost in the interpreter hot loop is one
    load-and-branch per instrumented operation, which is why the record
    type is exposed — treat every field other than [enabled] as
    private. *)

open Shift_isa

(** {1 Sources and events} *)

type source = {
  sid : int;  (** id of the span's first byte; bytes get [sid..sid+len-1] *)
  channel : string;  (** e.g. ["file:archive.tar"], ["socket"], ["stdin"] *)
  origin : string;  (** the syscall or mechanism that introduced the taint *)
  offset : int;  (** input-stream offset of the span's first byte *)
  len : int;
}

type kind = Birth | Load | Prop | Store | Purge | Check | Sink

type detail =
  | Ev_birth of { src : source; addr : int64 }
      (** taint-in: an input span landed in guest memory *)
  | Ev_load of { reg : Reg.t; addr : int64; id : int }
      (** a tainted load pulled provenance [id] into [reg] *)
  | Ev_prop of { dst : Reg.t; src : Reg.t; id : int; depth : int }
      (** register→register OR-propagation ([depth] = chain length) *)
  | Ev_store of { reg : Reg.t; addr : int64; len : int; id : int }
      (** store-out: register provenance written back to memory *)
  | Ev_purge of { reg : Reg.t }
      (** a clear idiom (or [clrnat]) dropped the register's taint *)
  | Ev_check of { reg : Reg.t; tainted : bool }
      (** [tnat]/[chk.s] consumed the register's NaT state *)
  | Ev_sink of { policy : string; detail : string }
      (** tainted data reached a policy sink *)

type event = { seq : int; ip : int; ev : detail }

val kind_of : detail -> kind
val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list

(** {1 The trace} *)

type t = {
  mutable enabled : bool;
  capacity : int;
  mask : int;  (** [capacity - 1] when capacity is a power of two, else -1 *)
  ring : event array;
  mutable count : int;  (** events emitted (post-filter); seq of the next one *)
  keep : bool array;  (** event-kind filter, indexed by kind *)
  mutable batching : bool;  (** events staging in [scratch] (superblock mode) *)
  scratch : event array;
  mutable scratch_len : int;
  mutable pmap : Shift_mem.Provenance.t;
      (** swappable so a multi-process kernel can install the running
          process's shadow — see {!set_provenance} *)
  mutable sources : source list;  (** newest first *)
  mutable next_id : int;
  spec_sources : (int, source) Hashtbl.t;  (** per-ip speculative births *)
  mutable births : int;
  mutable propagations : int;
  mutable purges : int;
  mutable checks : int;
  mutable sink_hits : int;
  mutable max_depth : int;
}

type options = { capacity : int; only : kind list option }

val default_options : options
(** 4096-event ring, no kind filter. *)

val create : ?options:options -> unit -> t
(** A live trace ([enabled = true]). *)

val disabled : unit -> t
(** The inert trace every CPU starts with: [enabled = false], minimal
    ring, never written to. *)

(** {1 Per-hart register shadow} *)

type regs = {
  id : int array;       (** live source id per register (0 = untainted) *)
  depth : int array;    (** propagation-chain depth per register *)
  washed : int array;
      (** declassified provenance: the source id a register carried
          before an [untaint]/bounds-check cleared its tag, propagated
          through moves and arithmetic over untainted values.  Taint
          semantics never read it — it exists so the side-channel
          detector ({!Shift.Leak}) can name the input bytes steering a
          cache access whose address was deliberately untainted. *)
}

val fresh_regs : unit -> regs

val copy_regs : regs -> regs -> unit
(** [copy_regs src dst] — used by {!Smp.spawn} so a child hart inherits
    its parent's register provenance. *)

(** {1 Hooks}

    Callers are expected to test {!field-enabled} first; the hooks
    themselves assume the trace is live. *)

val on_input :
  t ->
  ip:int ->
  channel:string ->
  origin:string ->
  offset:int ->
  addr:int64 ->
  len:int ->
  tainted:bool ->
  unit
(** An input syscall wrote [len] bytes at [addr].  Tainted input interns
    a fresh source span and emits a birth; clean input clears any stale
    provenance under the range. *)

val on_spec_nat : t -> regs -> ip:int -> dst:Reg.t -> unit
(** A speculative load deferred a fault into [dst]'s NaT bit.  The birth
    source is interned once per instruction address. *)

val on_load : t -> regs -> ip:int -> dst:Reg.t -> addr:int64 -> len:int -> unit
val on_store : t -> regs -> ip:int -> src:Reg.t -> addr:int64 -> len:int -> unit
val on_move : t -> regs -> ip:int -> dst:Reg.t -> src:Reg.t -> unit
val on_const : t -> regs -> dst:Reg.t -> unit

val on_arith :
  t ->
  regs ->
  ip:int ->
  dst:Reg.t ->
  src1:Reg.t ->
  src2:Reg.t option ->
  clear:bool ->
  unit
(** [clear] is the recognised clear idiom ([xor r = s, s] / [sub r = s,
    s]): the destination's provenance is purged rather than
    propagated. *)

val on_check : t -> regs -> ip:int -> src:Reg.t -> tainted:bool -> unit
val on_setnat : t -> regs -> ip:int -> reg:Reg.t -> unit
val on_clrnat : t -> regs -> ip:int -> reg:Reg.t -> unit
val on_sink : t -> ip:int -> policy:string -> detail:string -> unit

(** {1 Batched emission}

    The superblock driver brackets each compiled block with
    [begin_batch]/[end_batch]: events stage in a block-local scratch
    buffer and land in the ring in one flush.  Each event keeps the
    sequence number it was emitted with, so ring contents, [count] and
    drop accounting are identical to unbatched emission.  Queries must
    not run between the brackets; the driver guarantees [end_batch] on
    every exit path, including faults. *)

val begin_batch : t -> unit
val end_batch : t -> unit

(** {1 Queries} *)

val byte_id : t -> int64 -> int
(** Provenance id of a guest byte ([0] = none). *)

val source_of_id : t -> int -> source option
(** The interned source a byte id belongs to. *)

val input_offset : source -> int -> int
(** [input_offset s id] is the input-stream offset behind byte id [id]
    of span [s]. *)

val chain : t -> addr:int64 -> positions:int list -> string list
(** Provenance chain for the given byte [positions] of the string at
    [addr]: consecutive positions carrying consecutive offsets of the
    same source collapse into one
    ["input <channel>[<lo>..<hi>] via <origin>"] hop. *)

val events : t -> event list
(** Ring contents, oldest first. *)

val dropped : t -> int
(** Events that fell off the ring ([count - capacity], clamped). *)

val sources : t -> source list
(** Interned sources in id order. *)

type summary = {
  s_births : int;
  s_propagations : int;
  s_purges : int;
  s_checks : int;
  s_sink_hits : int;
  s_max_depth : int;
  s_events : int;
  s_dropped : int;
  s_sources : int;
}

val summary : t -> summary

(** {1 Checkpoint/restore} *)

val provenance : t -> Shift_mem.Provenance.t
(** The per-byte provenance shadow map (for page-level serialisation —
    see {!Shift_mem.Provenance.fold_pages}). *)

val set_provenance : t -> Shift_mem.Provenance.t -> unit
(** Swap the per-byte shadow.  A multi-process kernel keeps one shadow
    per address space and installs the running process's map at each
    context switch; interned sources and the event ring stay shared, so
    ids remain valid across every process. *)

(** The trace state as plain data: ring window, interned sources,
    filters and counters.  The provenance shadow is {e not} included —
    dump and reload it separately through {!provenance}. *)
type dump = {
  d_enabled : bool;
  d_capacity : int;
  d_keep : bool array;  (** kept kinds, indexed by {!kind_index} order *)
  d_count : int;  (** total events ever emitted *)
  d_window : event list;  (** live ring window, oldest first *)
  d_sources : source list;  (** internal (newest-first) order *)
  d_next_id : int;
  d_spec : (int * int) list;  (** interned speculative sources: ip, sid *)
  d_births : int;
  d_propagations : int;
  d_purges : int;
  d_checks : int;
  d_sink_hits : int;
  d_max_depth : int;
}

val dump : t -> dump

val of_dump : dump -> t
(** Rebuild a trace whose ring, counters and interning state are
    exactly the dumped ones (the provenance map starts empty — reload
    its pages through {!provenance}).
    @raise Invalid_argument on malformed dumps. *)

val pp_source : Format.formatter -> source -> unit
val pp_event : Format.formatter -> event -> unit
val pp_summary : Format.formatter -> summary -> unit
