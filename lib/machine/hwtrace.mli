(** The hardware observation trace for the side-channel detector.

    Records, per architecturally executed guest load/store, the L1D
    cache-set index the access mapped to and the hit/miss bit — the
    "hardware trace" of a speculation contract.  Emitted identically
    from the interpreter and the superblock closures, so the trace is a
    property of the guest execution, not of the engine that ran it. *)

type entry = {
  e_pc : int;  (** guest pc of the load/store *)
  e_set : int;  (** cache-set index the address mapped to *)
  e_hit : bool;
  e_store : bool;
  e_prov : int;
      (** Flowtrace id of the address register at access time; 0 when the
          address was clean (or flow tracing was off) *)
}

type t = {
  mutable enabled : bool;
  mutable buf : entry array;  (** first [len] slots are live *)
  mutable len : int;
  mutable dropped : int;  (** entries past [limit], counted not stored *)
  limit : int;
}

val disabled : unit -> t
(** The default on every CPU: recording off, zero cost beyond one
    boolean test per cache access. *)

val create : ?limit:int -> unit -> t
(** A live trace.  Past [limit] entries (default 2^20) recording stops
    and [dropped] counts the overflow, keeping memory bounded on long
    runs. *)

val record :
  t -> pc:int -> set:int -> hit:bool -> store:bool -> prov:int -> unit

val length : t -> int
val dropped : t -> int
val get : t -> int -> entry
val entries : t -> entry array

val clear : t -> unit
(** Forget recorded entries (keeps [enabled] as is). *)
