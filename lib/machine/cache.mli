(** A small direct-mapped L1 data cache model.

    Only load latency depends on it (stores are assumed write-buffered
    but allocate their line).  Its role in the reproduction: the
    byte-level taint bitmap has 8x the footprint of the word-level one
    (one bit per byte vs. one bit per 8-byte word), so byte-level
    tracking suffers more bitmap misses — one of the reasons byte-level
    SHIFT is slower in the paper's Figure 7. *)

type t

val create : ?size_kb:int -> ?line_bytes:int -> unit -> t
(** Defaults: 16 KB, 64-byte lines (Itanium-2-like L1D). *)

val access : t -> int64 -> bool
(** Look up the line containing the address and allocate it; [true] on
    hit. *)

val hits : t -> int
val misses : t -> int

val miss_penalty : int
(** Extra load-use latency on a miss (cycles). *)

(** {1 Checkpoint/restore}

    The resident line per set plus the hit/miss counters, as plain
    data.  Restoring reproduces the exact hit/miss sequence — and so
    the exact load latencies — of the unbroken run. *)

type snap = { s_lines : int64 array; s_hits : int; s_misses : int }

val export : t -> snap

val import : t -> snap -> unit
(** @raise Invalid_argument if the set counts differ (the restored
    cache must be created with the same geometry). *)
