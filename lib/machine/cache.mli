(** A small direct-mapped L1 data cache model.

    Only load latency depends on it (stores are assumed write-buffered
    but allocate their line).  Its role in the reproduction: the
    byte-level taint bitmap has 8x the footprint of the word-level one
    (one bit per byte vs. one bit per 8-byte word), so byte-level
    tracking suffers more bitmap misses — one of the reasons byte-level
    SHIFT is slower in the paper's Figure 7. *)

type t

val create : ?size_kb:int -> ?line_bytes:int -> unit -> t
(** Defaults: 16 KB, 64-byte lines (Itanium-2-like L1D).

    @raise Invalid_argument on degenerate geometry: zero or negative
    sizes, a non-power-of-two [line_bytes] (which would silently
    misattribute addresses to lines), or [line_bytes] larger than the
    whole cache (which would leave zero sets and defer a
    [Division_by_zero] to the first access). *)

val access : t -> int64 -> bool
(** Look up the line containing the address and allocate it; [true] on
    hit. *)

val set_of : t -> int64 -> int
(** The set index the address maps to — what a cache-set side channel
    observes.  Pure: does not touch the resident lines or counters. *)

val hits : t -> int
val misses : t -> int

val miss_penalty : int
(** Extra load-use latency on a miss (cycles). *)

(** {1 Checkpoint/restore}

    The resident line per set plus the hit/miss counters, as plain
    data.  Restoring reproduces the exact hit/miss sequence — and so
    the exact load latencies — of the unbroken run. *)

type snap = {
  s_lines : int64 array;
  s_hits : int;
  s_misses : int;
  s_line_shift : int;  (** log2 of the line size the snap was taken under *)
}

val export : t -> snap

val import : t -> snap -> unit
(** @raise Invalid_argument if the set counts or line sizes differ (the
    restored cache must be created with the same geometry — a snap taken
    under different [line_bytes] would silently diverge the hit/miss
    sequence after restore). *)
