(** The CPU simulator: functional semantics plus pipeline timing.

    Implements the deferred-exception lifecycle SHIFT builds on
    (paper §2.2):

    - every general register carries a NaT bit;
    - NaT bits propagate OR-wise through computation;
    - a speculative load from an invalid address sets the target's NaT
      bit instead of faulting;
    - [chk.s] redirects to recovery code when it meets a NaT bit;
    - consuming a NaT bit in a memory address, a stored value (non-spill)
      or a control-transfer target raises a NaT-consumption fault — the
      hardware half of policies L1-L3;
    - [st.spill]/[ld.fill] round-trip the NaT bit through UNAT, and UNAT
      is preserved across calls (as the Itanium ABI does);
    - compares with a NaT source clear both target predicates unless the
      compare is the §6.3 taint-aware variant. *)

type t = {
  program : Shift_isa.Program.t;
  decoded : Decode.t;  (** per-instruction fast-path records, see {!Decode} *)
  mem : Shift_mem.Memory.t;
  values : int64 array;
  nats : bool array;
  preds : bool array;
  mutable unat : int64;
  mutable ip : int;
  stats : Stats.t;
  pipe : Pipeline.t;
  cache : Cache.t;
  mutable syscall_handler : (t -> unit) option;
  mutable trace : (t -> int -> Shift_isa.Instr.t -> unit) option;
      (** Raw per-instruction callback, fired before every instruction
          (including predicated-off ones).  Kept for back-compat and
          ad-hoc debugging; for structured taint-flow observation prefer
          {!Flowtrace} via the {!field-flowtrace} field — it survives
          suspension, costs one branch when disabled, and produces
          machine-readable events. *)
  mutable flowtrace : Flowtrace.t;
      (** Taint-provenance trace; {!Flowtrace.disabled} by default. *)
  ftregs : Flowtrace.regs;  (** this hart's register provenance shadow *)
  mutable hwtrace : Hwtrace.t;
      (** Cache-set observation trace; {!Hwtrace.disabled} by default.
          When live, every cache access recorded via {!touch_cache}
          appends an entry — from either execution engine. *)
  call_stack : (int * int64) Stack.t;
  sb : sb;  (** superblock compiler state; a derived cache, never snapshotted *)
  mutable tracking : Shift_tracking.Tracking.t;
      (** Taint-tracking backend handle ({!Shift_tracking.Tracking.default}
          — an inert [nat] handle — until a session installs its own).
          Under the [coproc] backend the hot loop mirrors each retiring
          instruction into a tag-queue record; under [nat]/[none] the
          hook is a single never-taken branch.  SMP harts share one
          handle (one coprocessor per machine). *)
}

(** State of the dynamic superblock compiler (driven by {!Superblock}).
    Everything here is derivable from the program and the run so far:
    snapshots skip it, and a restored machine starts with a cold block
    cache yet byte-identical simulated counters. *)
and sb = {
  mutable sb_on : bool;
      (** master switch ([Session.Config.superblocks] lands here) *)
  sb_hot : int array;                 (** per-entry-pc execution counts *)
  sb_blocks : sb_block option array;  (** compiled block per entry pc *)
  mutable sb_watched : bool;  (** code-region write watch registered *)
  sb_stats : Stats.superblocks;
}

(** One compiled superblock: a single-entry straight-line region ending
    at the first control transfer (or the length cap), with operands,
    predicates and trace hooks resolved at compile time. *)
and sb_block = {
  sb_entry : int;
  sb_len : int;
  sb_ft : bool;  (** flowtrace.enabled value the body was specialised for *)
  sb_provs : int array;
  sb_prov_counts : int array;
  sb_body : t -> unit;
}

type outcome =
  | Exited of int64            (** [halt] reached; exit status from r8 *)
  | Faulted of Fault.t * int   (** fault and the faulting instruction index *)
  | Out_of_fuel                (** fuel exhausted before termination *)

exception Exit_requested of int64
(** A syscall handler raises this to terminate the program (exit(2)). *)

exception Fault_exn of Fault.t
(** Internal control flow for faults; {!step} converts it to
    {!Faulted}.  Exposed for {!Superblock}, whose compiled bodies must
    raise and observe exactly what the interpreter does. *)

exception Halt_exn of int64
(** Internal control flow for [halt]; {!step} converts it to {!Exited}. *)

val create : ?entry:string -> ?mem:Shift_mem.Memory.t -> Shift_isa.Program.t -> t
(** Fresh machine with zeroed registers and [ip] at [entry] (default
    ["_start"], or instruction 0 if absent).  [mem] shares an existing
    memory (SMP harts); by default the machine gets its own. *)

val get_value : t -> Shift_isa.Reg.t -> int64
val set_value : t -> Shift_isa.Reg.t -> int64 -> unit
val get_nat : t -> Shift_isa.Reg.t -> bool
val set_nat : t -> Shift_isa.Reg.t -> bool -> unit

val add_io_cycles : t -> int -> unit
(** Charge I/O time from a syscall handler. *)

type status = [ `Yielded | `Finished of outcome ]
(** Result of one bounded engine slice: [`Yielded] means the budget ran
    out with the program still live; [`Finished] carries the terminal
    outcome. *)

val run_for : t -> budget:int -> status
(** The resumable stepping engine: execute at most [budget] instructions
    and suspend.  A machine suspended by [`Yielded] can be resumed by
    calling [run_for] again; the instruction stream (and with it every
    counter in [t.stats]) is independent of how a run is sliced into
    budgets, because suspension happens between instruction groups and
    touches no machine state.  Cycle counts are finalised into [t.stats]
    on every return, including when a syscall handler raises (the policy
    engine propagates alerts as exceptions).  A non-positive budget
    yields immediately. *)

val run : ?fuel:int -> t -> outcome
(** Execute until halt, fault or fuel exhaustion (default fuel 2e9
    instructions): one {!run_for} slice of [fuel] instructions, with
    [`Yielded] surfaced as {!Out_of_fuel}.  Cycle counts are finalised
    into [t.stats] on return.  Exceptions raised by the syscall handler
    other than {!Exit_requested} propagate (the policy engine uses this
    for alerts). *)

val step : t -> outcome option
(** Execute a single instruction; [None] while the program is still
    running. *)

(** {1 Execution internals}

    Exposed so {!Superblock} can compile instruction bodies that are
    observably identical to {!step}.  Not a stable user API. *)

val branch_penalty : int
val chk_penalty : int
val syscall_overhead : int

val eval_arith : Shift_isa.Instr.arith -> int64 -> int64 -> int64
(** Arithmetic semantics; raises {!Fault_exn} on division by zero. *)

val touch_cache : t -> pc:int -> store:bool -> areg:Shift_isa.Reg.t -> int64 -> bool
(** The single gateway for guest loads/stores into the L1D model:
    performs {!Cache.access} and, when {!field-hwtrace} is live, records
    the set index, hit bit and the address register's provenance id.
    [true] on hit.  Superblock closures must call this rather than
    {!Cache.access} so both engines emit identical hardware traces. *)

val set_pred : t -> Shift_isa.Pred.t -> bool -> unit
(** Write a predicate register (writes to p0 are discarded). *)

val unat_bit : int64 -> int
(** UNAT bit index covering an 8-byte-aligned spill address. *)

val goto : t -> int -> unit
(** Taken control transfer: set [ip], count the branch, redirect the
    pipeline with {!branch_penalty}. *)

val exec_op : t -> Decode.info -> unit
(** The functional effect of one instruction whose qualifying predicate
    is true (advances [ip]; may raise {!Fault_exn}, {!Halt_exn} or the
    syscall handler's exceptions).  Timing and statistics other than
    per-op event counters are the caller's job, exactly as in
    {!step}. *)
