type t = {
  mutable cycle : int;
  mutable slots_used : int;
  mutable mem_used : int;
  reg_ready : int array;
  pred_ready : int array;
}

let width = 6
let mem_ports = 2

let create () =
  {
    cycle = 0;
    slots_used = 0;
    mem_used = 0;
    reg_ready = Array.make Shift_isa.Reg.count 0;
    pred_ready = Array.make Shift_isa.Pred.count 0;
  }

let next_cycle t =
  t.cycle <- t.cycle + 1;
  t.slots_used <- 0;
  t.mem_used <- 0

let advance_to t c =
  if c > t.cycle then begin
    t.cycle <- c;
    t.slots_used <- 0;
    t.mem_used <- 0
  end

let issue t ~executing ~reads ~writes ~pred_writes ~qp ~is_mem ~latency =
  advance_to t t.pred_ready.(qp);
  if executing then
    for k = 0 to Array.length reads - 1 do
      advance_to t t.reg_ready.(Array.unsafe_get reads k)
    done;
  while
    t.slots_used >= width || (executing && is_mem && t.mem_used >= mem_ports)
  do
    next_cycle t
  done;
  t.slots_used <- t.slots_used + 1;
  if executing && is_mem then t.mem_used <- t.mem_used + 1;
  if executing then begin
    for k = 0 to Array.length writes - 1 do
      let r = Array.unsafe_get writes k in
      if r <> Shift_isa.Reg.zero then t.reg_ready.(r) <- t.cycle + latency
    done;
    for k = 0 to Array.length pred_writes - 1 do
      let p = Array.unsafe_get pred_writes k in
      if p <> Shift_isa.Pred.p0 then t.pred_ready.(p) <- t.cycle + 1
    done
  end

(* ---------- specialised issue, for compiled superblocks ----------

   [compile_issue] bakes one instruction's operand shape into a closure
   that performs exactly [issue ~executing:true]'s scoreboard
   transitions: dead destination writes (r0 / p0) are filtered out at
   compile time, the qualifying-predicate wait is dropped for qp = p0
   (p0 is never scoreboarded, so its ready cycle is always 0), the
   operand loops are unrolled for the common arities, and the
   issue-group while loop is an if (one [next_cycle] resets both
   counters below their limits).  [latency] stays a run-time argument —
   loads only know theirs after the cache lookup. *)

let compile_issue ~reads ~writes ~pred_writes ~qp ~is_mem =
  let live_writes =
    Array.of_list
      (List.filter (fun r -> r <> Shift_isa.Reg.zero) (Array.to_list writes))
  in
  let live_preds =
    Array.of_list
      (List.filter (fun p -> p <> Shift_isa.Pred.p0) (Array.to_list pred_writes))
  in
  let qp_live = qp <> Shift_isa.Pred.p0 in
  let group t =
    if t.slots_used >= width || (is_mem && t.mem_used >= mem_ports) then
      next_cycle t;
    t.slots_used <- t.slots_used + 1;
    if is_mem then t.mem_used <- t.mem_used + 1
  in
  let finish t latency =
    for k = 0 to Array.length live_writes - 1 do
      t.reg_ready.(Array.unsafe_get live_writes k) <- t.cycle + latency
    done;
    for k = 0 to Array.length live_preds - 1 do
      t.pred_ready.(Array.unsafe_get live_preds k) <- t.cycle + 1
    done
  in
  match
    (qp_live, Array.length reads, Array.length live_writes,
     Array.length live_preds)
  with
  | false, 0, 0, 0 -> fun t _latency -> group t
  | false, 1, 1, 0 ->
      let r0 = reads.(0) and w0 = live_writes.(0) in
      fun t latency ->
        advance_to t t.reg_ready.(r0);
        group t;
        t.reg_ready.(w0) <- t.cycle + latency
  | false, 2, 1, 0 ->
      let r0 = reads.(0) and r1 = reads.(1) and w0 = live_writes.(0) in
      fun t latency ->
        advance_to t t.reg_ready.(r0);
        advance_to t t.reg_ready.(r1);
        group t;
        t.reg_ready.(w0) <- t.cycle + latency
  | false, 0, 1, 0 ->
      let w0 = live_writes.(0) in
      fun t latency ->
        group t;
        t.reg_ready.(w0) <- t.cycle + latency
  | false, 1, 0, 0 ->
      let r0 = reads.(0) in
      fun t _latency ->
        advance_to t t.reg_ready.(r0);
        group t
  | false, 2, 0, 0 ->
      let r0 = reads.(0) and r1 = reads.(1) in
      fun t _latency ->
        advance_to t t.reg_ready.(r0);
        advance_to t t.reg_ready.(r1);
        group t
  | false, _, _, _ ->
      fun t latency ->
        for k = 0 to Array.length reads - 1 do
          advance_to t t.reg_ready.(Array.unsafe_get reads k)
        done;
        group t;
        finish t latency
  | true, _, _, _ ->
      fun t latency ->
        advance_to t t.pred_ready.(qp);
        for k = 0 to Array.length reads - 1 do
          advance_to t t.reg_ready.(Array.unsafe_get reads k)
        done;
        group t;
        finish t latency

(* The predicated-off half of [issue]: the slot is occupied after the
   qualifying predicate is ready, but no operand is waited for or
   produced (and a memory port is not consumed). *)
let compile_issue_off ~qp =
  fun t ->
    advance_to t t.pred_ready.(qp);
    if t.slots_used >= width then next_cycle t;
    t.slots_used <- t.slots_used + 1

let redirect t ~penalty =
  t.cycle <- t.cycle + penalty;
  t.slots_used <- 0;
  t.mem_used <- 0

let stall t n =
  if n > 0 then begin
    t.cycle <- t.cycle + n;
    t.slots_used <- 0;
    t.mem_used <- 0
  end

let cycles t = t.cycle

(* ---------- checkpoint/restore ---------- *)

type snap = {
  s_cycle : int;
  s_slots_used : int;
  s_mem_used : int;
  s_reg_ready : int array;
  s_pred_ready : int array;
}

let export t =
  {
    s_cycle = t.cycle;
    s_slots_used = t.slots_used;
    s_mem_used = t.mem_used;
    s_reg_ready = Array.copy t.reg_ready;
    s_pred_ready = Array.copy t.pred_ready;
  }

let import t s =
  if
    Array.length s.s_reg_ready <> Array.length t.reg_ready
    || Array.length s.s_pred_ready <> Array.length t.pred_ready
  then invalid_arg "Pipeline.import: scoreboard size mismatch";
  t.cycle <- s.s_cycle;
  t.slots_used <- s.s_slots_used;
  t.mem_used <- s.s_mem_used;
  Array.blit s.s_reg_ready 0 t.reg_ready 0 (Array.length t.reg_ready);
  Array.blit s.s_pred_ready 0 t.pred_ready 0 (Array.length t.pred_ready)
