type t = {
  line_shift : int;
  set_count : int;
  set_mask : int;  (* set_count - 1 when a power of two, else -1 *)
  lines : int64 array;  (* line address per set; -1 = invalid *)
  mutable hit_count : int;
  mutable miss_count : int;
}

let miss_penalty = 12

let log2 n =
  let rec go k acc = if acc >= n then k else go (k + 1) (acc * 2) in
  go 0 1

let create ?(size_kb = 16) ?(line_bytes = 64) () =
  if size_kb <= 0 then
    invalid_arg (Printf.sprintf "Cache.create: size_kb must be positive (got %d)" size_kb);
  if line_bytes <= 0 then
    invalid_arg
      (Printf.sprintf "Cache.create: line_bytes must be positive (got %d)" line_bytes);
  if line_bytes land (line_bytes - 1) <> 0 then
    invalid_arg
      (Printf.sprintf "Cache.create: line_bytes must be a power of two (got %d)"
         line_bytes);
  if line_bytes > size_kb * 1024 then
    invalid_arg
      (Printf.sprintf "Cache.create: line_bytes %d exceeds the %d KB cache" line_bytes
         size_kb);
  let set_count = size_kb * 1024 / line_bytes in
  {
    line_shift = log2 line_bytes;
    set_count;
    set_mask = (if set_count land (set_count - 1) = 0 then set_count - 1 else -1);
    lines = Array.make set_count (-1L);
    hit_count = 0;
    miss_count = 0;
  }

(* the power-of-two geometry (the default) indexes with a mask; the
   unsigned remainder below computes the same set, one division
   slower, for exotic sizes *)
let set_of t addr =
  let line = Int64.shift_right_logical addr t.line_shift in
  if t.set_mask >= 0 then Int64.to_int line land t.set_mask
  else Int64.to_int (Int64.unsigned_rem line (Int64.of_int t.set_count))

let access t addr =
  let line = Int64.shift_right_logical addr t.line_shift in
  let set =
    if t.set_mask >= 0 then Int64.to_int line land t.set_mask
    else Int64.to_int (Int64.unsigned_rem line (Int64.of_int t.set_count))
  in
  if Int64.equal t.lines.(set) line then begin
    t.hit_count <- t.hit_count + 1;
    true
  end
  else begin
    t.lines.(set) <- line;
    t.miss_count <- t.miss_count + 1;
    false
  end

let hits t = t.hit_count
let misses t = t.miss_count

(* ---------- checkpoint/restore ---------- *)

type snap = {
  s_lines : int64 array;
  s_hits : int;
  s_misses : int;
  s_line_shift : int;
}

let export t =
  {
    s_lines = Array.copy t.lines;
    s_hits = t.hit_count;
    s_misses = t.miss_count;
    s_line_shift = t.line_shift;
  }

let import t s =
  if Array.length s.s_lines <> t.set_count then
    invalid_arg "Cache.import: set count mismatch";
  if s.s_line_shift <> t.line_shift then
    invalid_arg "Cache.import: line size mismatch";
  Array.blit s.s_lines 0 t.lines 0 t.set_count;
  t.hit_count <- s.s_hits;
  t.miss_count <- s.s_misses
