type t = {
  mutable instructions : int;
  mutable cycles : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable predicated_off : int;
  mutable syscalls : int;
  mutable io_cycles : int;
  slots_by_prov : int array;
}

let create () =
  {
    instructions = 0;
    cycles = 0;
    loads = 0;
    stores = 0;
    branches = 0;
    predicated_off = 0;
    syscalls = 0;
    io_cycles = 0;
    slots_by_prov = Array.make Shift_isa.Prov.card 0;
  }

let copy t = { t with slots_by_prov = Array.copy t.slots_by_prov }

let add_events ~into t =
  into.instructions <- into.instructions + t.instructions;
  into.loads <- into.loads + t.loads;
  into.stores <- into.stores + t.stores;
  into.branches <- into.branches + t.branches;
  into.predicated_off <- into.predicated_off + t.predicated_off;
  into.syscalls <- into.syscalls + t.syscalls;
  into.io_cycles <- into.io_cycles + t.io_cycles;
  Array.iteri
    (fun i v -> into.slots_by_prov.(i) <- into.slots_by_prov.(i) + v)
    t.slots_by_prov

let total = function
  | [] -> create ()
  | first :: rest ->
      let acc = copy first in
      List.iter
        (fun t ->
          add_events ~into:acc t;
          acc.cycles <- acc.cycles + t.cycles)
        rest;
      acc

let concurrent = function
  | [] -> create ()
  | first :: rest ->
      let acc = copy first in
      List.iter
        (fun t ->
          add_events ~into:acc t;
          acc.cycles <- max acc.cycles t.cycles)
        rest;
      acc

let slots t p = t.slots_by_prov.(Shift_isa.Prov.index p)
let total_slots t = Array.fold_left ( + ) 0 t.slots_by_prov

let instrumentation_slots t =
  total_slots t - slots t Shift_isa.Prov.Orig

let pp ppf t =
  Format.fprintf ppf
    "@[<v>instructions: %d@ cycles: %d@ loads: %d@ stores: %d@ branches: %d@ \
     predicated-off: %d@ syscalls: %d@ io-cycles: %d@ %a@]"
    t.instructions t.cycles t.loads t.stores t.branches t.predicated_off
    t.syscalls t.io_cycles
    (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf i ->
         Format.fprintf ppf "%s-slots: %d"
           (Shift_isa.Prov.to_string (Shift_isa.Prov.of_index i))
           t.slots_by_prov.(i)))
    (List.init Shift_isa.Prov.card Fun.id)
