type t = {
  mutable instructions : int;
  mutable cycles : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable predicated_off : int;
  mutable syscalls : int;
  mutable io_cycles : int;
  slots_by_prov : int array;
}

let create () =
  {
    instructions = 0;
    cycles = 0;
    loads = 0;
    stores = 0;
    branches = 0;
    predicated_off = 0;
    syscalls = 0;
    io_cycles = 0;
    slots_by_prov = Array.make Shift_isa.Prov.card 0;
  }

let copy t = { t with slots_by_prov = Array.copy t.slots_by_prov }

let add_events ~into t =
  into.instructions <- into.instructions + t.instructions;
  into.loads <- into.loads + t.loads;
  into.stores <- into.stores + t.stores;
  into.branches <- into.branches + t.branches;
  into.predicated_off <- into.predicated_off + t.predicated_off;
  into.syscalls <- into.syscalls + t.syscalls;
  into.io_cycles <- into.io_cycles + t.io_cycles;
  Array.iteri
    (fun i v -> into.slots_by_prov.(i) <- into.slots_by_prov.(i) + v)
    t.slots_by_prov

let total = function
  | [] -> create ()
  | first :: rest ->
      let acc = copy first in
      List.iter
        (fun t ->
          add_events ~into:acc t;
          acc.cycles <- acc.cycles + t.cycles)
        rest;
      acc

let concurrent = function
  | [] -> create ()
  | first :: rest ->
      let acc = copy first in
      List.iter
        (fun t ->
          add_events ~into:acc t;
          acc.cycles <- max acc.cycles t.cycles)
        rest;
      acc

let slots t p = t.slots_by_prov.(Shift_isa.Prov.index p)
let total_slots t = Array.fold_left ( + ) 0 t.slots_by_prov

let instrumentation_slots t =
  total_slots t - slots t Shift_isa.Prov.Orig

(* ---------- superblock compiler counters ----------

   Kept out of [t] on purpose: these describe how the host executed the
   guest (block-cache behaviour), not what the guest did, so they must
   not leak into snapshots or the default report JSON — runs with and
   without the compiler stay byte-identical there. *)

type superblocks = {
  mutable sb_compiled : int;
  mutable sb_hits : int;
  mutable sb_misses : int;
  mutable sb_invalidations : int;
  mutable sb_fallback : int;
}

let sb_create () =
  { sb_compiled = 0; sb_hits = 0; sb_misses = 0; sb_invalidations = 0;
    sb_fallback = 0 }

let sb_add ~into t =
  into.sb_compiled <- into.sb_compiled + t.sb_compiled;
  into.sb_hits <- into.sb_hits + t.sb_hits;
  into.sb_misses <- into.sb_misses + t.sb_misses;
  into.sb_invalidations <- into.sb_invalidations + t.sb_invalidations;
  into.sb_fallback <- into.sb_fallback + t.sb_fallback

let sb_total l =
  let acc = sb_create () in
  List.iter (fun t -> sb_add ~into:acc t) l;
  acc

let pp_superblocks ppf t =
  Format.fprintf ppf
    "@[<v>blocks compiled: %d@ block hits: %d@ block misses: %d@ \
     invalidations: %d@ interpreted fallback: %d@]"
    t.sb_compiled t.sb_hits t.sb_misses t.sb_invalidations t.sb_fallback

let pp ppf t =
  Format.fprintf ppf
    "@[<v>instructions: %d@ cycles: %d@ loads: %d@ stores: %d@ branches: %d@ \
     predicated-off: %d@ syscalls: %d@ io-cycles: %d@ %a@]"
    t.instructions t.cycles t.loads t.stores t.branches t.predicated_off
    t.syscalls t.io_cycles
    (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf i ->
         Format.fprintf ppf "%s-slots: %d"
           (Shift_isa.Prov.to_string (Shift_isa.Prov.of_index i))
           t.slots_by_prov.(i)))
    (List.init Shift_isa.Prov.card Fun.id)
