type custom = {
  c_run_for : budget:int -> Cpu.status;
  c_stats : unit -> Stats.t;
  c_hart0 : unit -> Cpu.t;
  c_superblock_stats : unit -> Stats.superblocks;
  c_cache_stats : unit -> int * int;
}

type machine =
  | Cpu of Cpu.t
  | Smp of Smp.t
  | Custom of custom

type t = { machine : machine; mutable finished : Cpu.outcome option }

let of_cpu cpu = { machine = Cpu cpu; finished = None }
let of_smp smp = { machine = Smp smp; finished = None }
let of_custom c = { machine = Custom c; finished = None }
let machine t = t.machine
let finished t = t.finished

let hart0 t =
  match t.machine with
  | Cpu cpu -> cpu
  | Smp smp -> (
      match Smp.cpu_of smp 0 with
      | Some cpu -> cpu
      | None -> invalid_arg "Exec.hart0: SMP machine without hart 0")
  | Custom c -> c.c_hart0 ()

let stats t =
  match t.machine with
  | Cpu cpu -> cpu.Cpu.stats
  | Smp smp -> Smp.stats smp
  | Custom c -> c.c_stats ()

let superblock_stats t =
  match t.machine with
  | Cpu cpu -> Stats.sb_total [ Superblock.stats cpu ]
  | Smp smp ->
      Stats.sb_total
        (List.map (fun (_, _, cpu) -> Superblock.stats cpu) (Smp.harts smp))
  | Custom c -> c.c_superblock_stats ()

let cache_stats t =
  match t.machine with
  | Cpu cpu -> (Cache.hits cpu.Cpu.cache, Cache.misses cpu.Cpu.cache)
  | Smp smp ->
      List.fold_left
        (fun (h, m) (_, _, cpu) ->
          (h + Cache.hits cpu.Cpu.cache, m + Cache.misses cpu.Cpu.cache))
        (0, 0) (Smp.harts smp)
  | Custom c -> c.c_cache_stats ()

let run_for t ~budget =
  match t.finished with
  | Some o -> `Finished o
  | None ->
      let status =
        match t.machine with
        | Cpu cpu -> Superblock.run_for cpu ~budget
        | Smp smp -> Smp.run_for smp ~budget
        | Custom c -> c.c_run_for ~budget
      in
      (match status with
      | `Finished o -> t.finished <- Some o
      | `Yielded -> ());
      status

let run ?(fuel = 2_000_000_000) t =
  match run_for t ~budget:fuel with
  | `Finished o -> o
  | `Yielded -> Cpu.Out_of_fuel
