(** Execution statistics.

    [cycles] comes from the pipeline timing model; slowdowns in the
    paper's Figures 6-8 are ratios of instrumented to baseline cycles.
    Issue slots are accounted per instruction provenance, which drives
    the Figure-9 overhead breakdown. *)

type t = {
  mutable instructions : int;   (** dynamically executed instructions *)
  mutable cycles : int;         (** total cycles incl. I/O costs *)
  mutable loads : int;          (** executed (non-predicated-off) loads *)
  mutable stores : int;
  mutable branches : int;       (** taken control transfers *)
  mutable predicated_off : int; (** slots spent on false-predicate instructions *)
  mutable syscalls : int;
  mutable io_cycles : int;      (** cycles charged by syscall handlers *)
  slots_by_prov : int array;    (** issue slots per {!Shift_isa.Prov.t} index *)
}

val create : unit -> t
(** Fresh, all-zero counters. *)

val copy : t -> t
(** Snapshot (the slot array is duplicated, not shared). *)

val total : t list -> t
(** Fresh counters that are the element-wise sum of the inputs, cycles
    included — the aggregate for {e sequential} composition (a fleet of
    independent sessions).  [total []] is all zeroes. *)

val concurrent : t list -> t
(** Like {!total}, but [cycles] is the {e maximum} over the inputs:
    SMP harts execute in parallel, so events sum while elapsed time is
    the slowest hart's pipeline.  [concurrent []] is all zeroes. *)

val slots : t -> Shift_isa.Prov.t -> int
(** Issue slots charged to instructions of the given provenance. *)

val total_slots : t -> int
(** Issue slots over all provenances. *)

val instrumentation_slots : t -> int
(** Slots spent on non-[Orig] instructions. *)

val pp : Format.formatter -> t -> unit

(** {1 Superblock compiler counters}

    Host-side block-cache behaviour ({!Superblock}).  Deliberately not
    part of {!t}: these depend on how the host executed the guest (block
    cache warmth, fuel slicing), so folding them into the simulated
    counters would break the guarantee that superblocks-on and
    superblocks-off runs produce byte-identical reports and snapshots. *)

type superblocks = {
  mutable sb_compiled : int;       (** superblocks compiled *)
  mutable sb_hits : int;           (** block-cache hits (blocks entered) *)
  mutable sb_misses : int;         (** lookups that found no usable block *)
  mutable sb_invalidations : int;  (** blocks dropped (code writes, trace flips) *)
  mutable sb_fallback : int;       (** instructions run by the interpreter fallback *)
}

val sb_create : unit -> superblocks
(** Fresh, all-zero counters. *)

val sb_add : into:superblocks -> superblocks -> unit
(** Element-wise accumulate. *)

val sb_total : superblocks list -> superblocks
(** Fresh element-wise sum (aggregating SMP harts). *)

val pp_superblocks : Format.formatter -> superblocks -> unit
