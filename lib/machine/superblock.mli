(** Superblock compilation of the guest hot loop.

    Hot single-entry, straight-line regions of the guest program are
    compiled into chains of pre-resolved OCaml closures and executed
    block-to-block without touching the generic decode/dispatch
    interpreter.  Per-entry-pc execution counters discover hot code;
    regions are cut at the first control transfer ([br], [br.reg],
    [call], [call.reg], [ret], [chk.s], [syscall], [halt]), at program
    end, or at {!max_block_len} instructions.

    The invariant is {e counter identity}: with superblocks on, every
    piece of simulated state — {!Stats.t}, pipeline cycles, cache
    state, taint bits, Flowtrace ring and counters, alerts, snapshots —
    is byte-identical to a pure-interpreter run.  The compiler only
    drops host-side work whose absence is unobservable (decode dispatch,
    provably-true predicate reads, NaT reads of immediates, disabled
    flow-trace hooks), and the driver enters a compiled block only when
    the remaining fuel covers its whole length, so slice boundaries,
    checkpoints and serve migration stay instruction-exact.

    The block cache is {e derived} state: it is never snapshotted, a
    restored machine starts cold, and guest stores into the watched
    code region (region 2) invalidate every block covering a written
    instruction slot.  Blocks are additionally specialised for the
    current [flowtrace.enabled] flag and recompiled when it flips.

    Machines with a raw trace hook installed ([Cpu.trace]) always run on
    the interpreter — the hook must fire before every instruction. *)

val hot_threshold : int
(** Times an entry pc must be dispatched before its block is compiled. *)

val max_block_len : int
(** Upper bound on instructions per compiled block. *)

val code_base : int64
(** Base of the synthetic code region (region 2). *)

val code_addr : int -> int64
(** [code_addr pc] is the address of instruction slot [pc]: 8 bytes per
    slot in the synthetic code region.  Guest stores inside a slot's
    bytes invalidate every compiled block covering it. *)

val usable : Cpu.t -> bool
(** Whether the compiled fast path may run on this machine:
    superblocks enabled and no raw trace hook installed. *)

val stats : Cpu.t -> Stats.superblocks
(** The machine's host-side superblock counters (never part of
    simulated state). *)

val steps : Cpu.t -> limit:int -> int * Cpu.outcome option
(** Run up to [limit] instructions through the block cache, falling
    back to interpretation per instruction when the machine is not
    {!usable}, a region is cold, or the remaining budget cannot cover a
    whole compiled block.  Returns the instructions actually retired
    (exact — engine slicing depends on it) and the terminal outcome, if
    any.  Cycle-count finalisation on the non-terminal path is the
    caller's job, as with {!Cpu.step}. *)

val run_for : Cpu.t -> budget:int -> Cpu.status
(** Drop-in replacement for {!Cpu.run_for} with the compiled fast path;
    delegates to it entirely when the machine is not {!usable}. *)
