(** Multi-hart execution over shared memory — the paper's future-work
    item ("extend SHIFT for multi-threaded applications", §4.4 and §8).

    Harts share the memory image (and with it the taint bitmap) but have
    private register files, pipelines and caches.  Scheduling is a
    deterministic round robin with a configurable quantum; instructions
    never interleave mid-operation, so [fetchadd] is atomic and guest
    ticket locks work.

    This layer is exactly where the paper's §4.4 caveat lives: the
    instrumentation's bitmap read-modify-write sequences are {e not}
    serialised, so two harts updating tag bits that share a bitmap byte
    can lose an update (see test/test_smp.ml, which demonstrates the
    race the paper cites). *)

(** Lifecycle of one hart. *)
type state =
  | Running                     (** scheduled; has not finished yet *)
  | Done of int64               (** returned (or halted) with this value *)
  | Crashed of Fault.t * int
      (** faulted; the [int] is the faulting instruction's address *)

type t
(** A machine of one or more harts sharing a memory image. *)

val create : ?quantum:int -> stack_top:int64 -> stack_stride:int64 -> Cpu.t -> t
(** Wrap an initialised machine as hart 0.  New harts get stacks at
    [stack_top - id * stack_stride].  [quantum] (default 50) is how many
    instructions a hart runs before the next takes over. *)

val spawn : t -> parent:Cpu.t -> entry:int64 -> arg:int64 -> int
(** Start a new hart at code address [entry] with [arg] in the first
    argument register.  The register file is copied from [parent] (so
    the reserved instrumentation registers are inherited), then the
    stack pointer is rebased.  Returns the hart id. *)

val state_of : t -> int -> state option
(** [None] for an unknown hart id. *)

val cpu_of : t -> int -> Cpu.t option

val stats : t -> Stats.t
(** Fresh aggregated counters over all harts
    ({!Stats.concurrent}: events sum, [cycles] is the slowest hart's
    pipeline).  Spawned-hart work is therefore visible in the
    aggregate, not just hart 0's share. *)

val run_for : t -> budget:int -> Cpu.status
(** The resumable scheduler: run the deterministic round robin for at
    most [budget] instructions (summed over all harts) and suspend.
    Suspension can land mid-quantum; the suspended hart resumes with
    the remainder of its quantum, so the instruction interleaving — and
    with it every counter — is byte-identical however a run is sliced
    into budgets.  Returns [`Finished] with hart 0's outcome once it is
    done (further calls return the same outcome without stepping).
    Per-hart cycle counters are finalised on every return, including
    when a syscall handler raises.  A non-positive budget yields
    immediately. *)

(** {1 Checkpoint/restore}

    The scheduler state as plain data, so a multi-hart machine can be
    serialised mid-round and rebuilt in a fresh process.  The per-hart
    CPUs are exported by reference; serialising their contents is the
    caller's job (see [Shift.Snapshot]). *)

val quantum : t -> int

val harts : t -> (int * state * Cpu.t) list
(** All harts in id order, including finished and crashed ones (ids
    must stay stable so future spawns keep numbering deterministic). *)

val round : t -> (int * int) list
(** The tail of the current round-robin round as [(hart id, remaining
    quantum)] pairs — the head may be mid-quantum. *)

val finished : t -> Cpu.outcome option

val of_parts :
  ?quantum:int ->
  stack_top:int64 ->
  stack_stride:int64 ->
  harts:(int * state * Cpu.t) list ->
  round:(int * int) list ->
  finished:Cpu.outcome option ->
  unit ->
  t
(** Rebuild a machine from exported parts.  [harts] must be in id order
    with hart 0 first; [round] must reference known hart ids.
    @raise Invalid_argument otherwise. *)

val run : ?fuel:int -> t -> Cpu.outcome
(** Schedule all harts until hart 0 finishes (its outcome is returned),
    a fault escapes, or the combined instruction budget runs out: one
    {!run_for} slice of [fuel] instructions, with [`Yielded] surfaced
    as {!Cpu.Out_of_fuel}.  A hart that returns from its entry function
    simply finishes with its result; other harts keep running only as
    long as hart 0 does. *)
