(* The hardware observation trace: one entry per architecturally
   executed guest load/store that touches the L1D model, recording the
   cache-set index the access mapped to (what a prime+probe attacker
   observes) plus the hit/miss bit.  Both execution engines — the
   interpreter step in cpu.ml and the fused superblock closures — emit
   through [record] at the same program points, so the trace is
   identical with the compiler on or off; the QCheck gate in
   test_superblock.ml holds that invariant.

   Entries also carry the Flowtrace id of the *address* register at the
   moment of the access.  When a trace divergence is found, that id is
   what lets the leak detector walk the provenance chain back to the
   exact tainted input bytes that steered the access (Leak.detect). *)

type entry = {
  e_pc : int;  (* guest pc of the load/store *)
  e_set : int;  (* cache-set index the address mapped to *)
  e_hit : bool;
  e_store : bool;
  e_prov : int;  (* Flowtrace id of the address register; 0 = clean *)
}

type t = {
  mutable enabled : bool;
  mutable buf : entry array;
  mutable len : int;
  mutable dropped : int;
  limit : int;
}

let default_limit = 1 lsl 20

let none = { e_pc = 0; e_set = 0; e_hit = false; e_store = false; e_prov = 0 }

let disabled () =
  { enabled = false; buf = [||]; len = 0; dropped = 0; limit = 0 }

let create ?(limit = default_limit) () =
  { enabled = true; buf = Array.make 256 none; len = 0; dropped = 0; limit }

let record t ~pc ~set ~hit ~store ~prov =
  if t.len >= t.limit then t.dropped <- t.dropped + 1
  else begin
    if t.len = Array.length t.buf then begin
      let grown = Array.make (max 256 (2 * t.len)) none in
      Array.blit t.buf 0 grown 0 t.len;
      t.buf <- grown
    end;
    t.buf.(t.len) <- { e_pc = pc; e_set = set; e_hit = hit; e_store = store; e_prov = prov };
    t.len <- t.len + 1
  end

let length t = t.len
let dropped t = t.dropped
let get t i = t.buf.(i)

let entries t = Array.sub t.buf 0 t.len

let clear t =
  t.len <- 0;
  t.dropped <- 0
