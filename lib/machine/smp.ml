type state =
  | Running
  | Done of int64
  | Crashed of Fault.t * int

type hart = { id : int; cpu : Cpu.t; mutable state : state }

type t = {
  quantum : int;
  stack_top : int64;
  stack_stride : int64;
  mutable harts : hart list; (* kept in id order *)
  (* resumable scheduler state: the tail of the current round-robin
     round.  The head's [int] is what remains of its quantum, so a
     budget boundary can suspend mid-quantum and resume later without
     perturbing the instruction interleaving. *)
  mutable round : (hart * int) list;
  mutable finished : Cpu.outcome option;
}

let create ?(quantum = 50) ~stack_top ~stack_stride cpu =
  {
    quantum;
    stack_top;
    stack_stride;
    harts = [ { id = 0; cpu; state = Running } ];
    round = [];
    finished = None;
  }

let spawn t ~parent ~entry ~arg =
  let id = List.length t.harts in
  let cpu = Cpu.create ~mem:parent.Cpu.mem parent.Cpu.program in
  (* inherit the register file: the reserved instrumentation constants
     (implemented-bits mask, scratch slot, NaT source) must be live in
     the child too *)
  Array.blit parent.Cpu.values 0 cpu.Cpu.values 0 (Array.length parent.Cpu.values);
  Array.blit parent.Cpu.nats 0 cpu.Cpu.nats 0 (Array.length parent.Cpu.nats);
  cpu.Cpu.syscall_handler <- parent.Cpu.syscall_handler;
  (* share the parent's flow trace (one ring per machine) and inherit
     its register provenance alongside the register file *)
  cpu.Cpu.flowtrace <- parent.Cpu.flowtrace;
  Flowtrace.copy_regs parent.Cpu.ftregs cpu.Cpu.ftregs;
  (* the child compiles its own superblocks (the block cache is
     per-hart) but follows the parent's enable switch; sharing the
     parent's memory means code-region stores invalidate across harts *)
  cpu.Cpu.sb.Cpu.sb_on <- parent.Cpu.sb.Cpu.sb_on;
  (* one tag coprocessor per machine: harts share the backend handle *)
  cpu.Cpu.tracking <- parent.Cpu.tracking;
  Cpu.set_value cpu Shift_isa.Reg.sp
    (Int64.sub t.stack_top (Int64.mul (Int64.of_int id) t.stack_stride));
  Cpu.set_nat cpu Shift_isa.Reg.sp false;
  Cpu.set_value cpu (Shift_isa.Reg.arg 0) arg;
  Cpu.set_nat cpu (Shift_isa.Reg.arg 0) false;
  cpu.Cpu.ip <- Int64.to_int entry;
  (* the new hart enters the schedule at the next round: [t.round] holds
     only harts that were runnable when the round started *)
  t.harts <- t.harts @ [ { id; cpu; state = Running } ];
  id

let state_of t id =
  List.find_opt (fun h -> h.id = id) t.harts |> Option.map (fun h -> h.state)

let cpu_of t id =
  List.find_opt (fun h -> h.id = id) t.harts |> Option.map (fun h -> h.cpu)

let stats t =
  Stats.concurrent (List.map (fun h -> h.cpu.Cpu.stats) t.harts)

(* run up to [n] instructions on a hart; returns the instructions
   actually spent.  Stops early only when the hart leaves [Running].
   Execution goes through the superblock driver, which interprets
   per-instruction whenever the fast path does not apply, so the
   interleaving is instruction-exact either way. *)
let run_steps hart n =
  if hart.state <> Running then 0
  else begin
    let spent, out = Superblock.steps hart.cpu ~limit:n in
    (match out with
    | None -> ()
    | Some (Cpu.Exited v) -> hart.state <- Done v
    | Some (Cpu.Faulted (Fault.Call_stack_underflow, _)) when hart.id > 0 ->
        (* a secondary hart returning from its entry function is a
           normal thread exit; its result is in r8 *)
        hart.state <- Done (Cpu.get_value hart.cpu Shift_isa.Reg.ret)
    | Some (Cpu.Faulted (f, ip)) -> hart.state <- Crashed (f, ip)
    | Some Cpu.Out_of_fuel ->
        (* the driver executes at most [n] instructions and carries no
           fuel of its own; only the bounded run loops can report
           exhaustion *)
        failwith
          "Smp.run_steps: Superblock.steps reported Out_of_fuel, but \
           single-slice execution is unfueled");
    spent
  end

let finalize_cycles t =
  List.iter
    (fun h -> h.cpu.Cpu.stats.Stats.cycles <- Pipeline.cycles h.cpu.Cpu.pipe)
    t.harts

let run_for t ~budget =
  match t.finished with
  | Some o -> `Finished o
  | None ->
      let spent = ref 0 in
      let yielded = ref false in
      (* keep per-hart cycle counts consistent even when a syscall
         handler raises (policy violations propagate as exceptions) *)
      Fun.protect ~finally:(fun () -> finalize_cycles t) @@ fun () ->
      while t.finished = None && not !yielded do
        match t.round with
        | [] -> (
            match
              List.filter_map
                (fun h -> if h.state = Running then Some (h, t.quantum) else None)
                t.harts
            with
            | [] ->
                (* every hart is finished or crashed but hart 0 was not:
                   cannot happen (hart 0 Running always progresses), but
                   stay safe *)
                t.finished <- Some Cpu.Out_of_fuel
            | runnable -> t.round <- runnable)
        | (hart, remaining) :: rest ->
            if hart.state <> Running then t.round <- rest
            else begin
              let allowance = min remaining (budget - !spent) in
              if allowance <= 0 then yielded := true
              else begin
                let used = run_steps hart allowance in
                spent := !spent + used;
                if hart.state = Running && remaining - used > 0 then
                  (* the budget cut the quantum short: stay at the head
                     so the schedule is independent of budget slicing *)
                  t.round <- (hart, remaining - used) :: rest
                else t.round <- rest;
                if hart.id = 0 then
                  match hart.state with
                  | Done v -> t.finished <- Some (Cpu.Exited v)
                  | Crashed (f, ip) -> t.finished <- Some (Cpu.Faulted (f, ip))
                  | Running -> ()
              end
            end
      done;
      (match t.finished with Some o -> `Finished o | None -> `Yielded)

let run ?(fuel = 2_000_000_000) t =
  match run_for t ~budget:fuel with
  | `Finished o -> o
  | `Yielded -> Cpu.Out_of_fuel

(* ---------- checkpoint/restore ---------- *)

let quantum t = t.quantum
let harts t = List.map (fun h -> (h.id, h.state, h.cpu)) t.harts
let round t = List.map (fun (h, rem) -> (h.id, rem)) t.round
let finished t = t.finished

let of_parts ?(quantum = 50) ~stack_top ~stack_stride ~harts ~round ~finished ()
    =
  let harts =
    List.map (fun (id, state, cpu) -> { id; state; cpu }) harts
  in
  (match harts with
  | { id = 0; _ } :: _ -> ()
  | _ -> invalid_arg "Smp.of_parts: hart 0 must be first");
  let round =
    List.map
      (fun (id, rem) ->
        match List.find_opt (fun h -> h.id = id) harts with
        | Some h -> (h, rem)
        | None -> invalid_arg "Smp.of_parts: round references an unknown hart")
      round
  in
  { quantum; stack_top; stack_stride; harts; round; finished }
