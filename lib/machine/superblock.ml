(* The dynamic superblock compiler.

   Hot single-entry straight-line regions of the guest program are
   compiled into chains of pre-resolved OCaml closures: operand indices,
   immediates, branch targets, Extr masks, predicate liveness and
   flow-trace hooks are all bound at compile time, so the steady state
   executes block-to-block through the block cache without touching the
   generic decode/dispatch interpreter.

   The contract is *counter identity*: a run with superblocks on must
   produce exactly the simulated state a pure-interpreter run produces —
   every Stats field, pipeline cycle, cache line, taint bit, Flowtrace
   ring slot and alert.  Consequently no guest instruction is ever
   elided or merged; the compiler only removes host-side work whose
   absence is unobservable:

   - decode dispatch and operand resolution (bound in the closure);
   - the qualifying-predicate read for qp = p0 (p0 is architecturally
     always true, so the predicated-off path is provably dead);
   - NaT reads of immediate operands (an immediate's NaT is false);
   - arithmetic on a discarded destination when it cannot fault;
   - the per-instruction flowtrace enabled check (each block is
     specialised for one value of [flowtrace.enabled] and refused when
     the flag no longer matches);
   - per-instruction [instructions]/[slots_by_prov] bumps (batched per
     block and unwound exactly on faults).

   Fuel accounting stays precise: a block is only entered when the
   remaining budget covers its whole length, otherwise the tail is
   interpreted instruction-at-a-time.  Engine slicing, checkpoints and
   serve migration therefore see the same instruction boundaries as the
   interpreter.

   Blocks are invalidated when a guest store hits the synthetic code
   region (region 2, 8 bytes per instruction slot, watched via
   {!Shift_mem.Memory.watch}) — the conservative flush any translator
   performs on writes to code pages — and when [flowtrace.enabled]
   flips under a compiled block. *)

open Shift_isa
module Memory = Shift_mem.Memory
module Addr = Shift_mem.Addr

let hot_threshold = 8
let max_block_len = 64

(* The code region: instruction slot [pc] occupies the 8 bytes at
   [code_addr pc].  Region 2 is otherwise unused (0 = taint bitmap,
   1 = data/heap/stack, 3 = provenance shadow). *)
let code_base = Addr.in_region 2 0L
let code_addr pc = Addr.in_region 2 (Int64.of_int (pc * 8))

let is_terminator (op : Instr.op) =
  match op with
  | Instr.Br _ | Instr.Br_reg _ | Instr.Call _ | Instr.Call_reg _ | Instr.Ret
  | Instr.Chk_s _ | Instr.Halt | Instr.Syscall ->
      true
  | _ -> false

let stats (t : Cpu.t) = t.Cpu.sb.Cpu.sb_stats

let ft_enabled (t : Cpu.t) = t.Cpu.flowtrace.Flowtrace.enabled

(* The raw trace hook must fire before every instruction, so any machine
   with one runs on the interpreter. *)
let usable (t : Cpu.t) =
  t.Cpu.sb.Cpu.sb_on
  && (match t.Cpu.trace with None -> true | Some _ -> false)
  (* compiled blocks bypass the per-instruction hook, so a decoupled
     tracking backend forces interpretation *)
  && not (Shift_tracking.Tracking.per_instr t.Cpu.tracking)

(* ---------- instruction bodies ----------

   [compile_exec] returns the functional effect of one instruction whose
   qualifying predicate is true — the closure-compiled mirror of
   [Cpu.exec_op], specialised for [ft] (the flowtrace.enabled value the
   enclosing block is compiled for).  Instructions with no specialised
   shape fall back to [Cpu.exec_op], which is identical by
   construction. *)

let compile_exec (d : Decode.info) ~ft : Cpu.t -> unit =
  let generic = fun t -> Cpu.exec_op t d in
  match d.Decode.op with
  | Instr.Nop -> fun t -> t.Cpu.ip <- t.Cpu.ip + 1
  | Instr.Halt -> fun t -> raise (Cpu.Halt_exn t.Cpu.values.(Reg.ret))
  | Instr.Movi (dst, v) ->
      if dst = Reg.zero then fun t -> t.Cpu.ip <- t.Cpu.ip + 1
      else if ft then fun t ->
        t.Cpu.values.(dst) <- v;
        t.Cpu.nats.(dst) <- false;
        Flowtrace.on_const t.Cpu.flowtrace t.Cpu.ftregs ~dst;
        t.Cpu.ip <- t.Cpu.ip + 1
      else fun t ->
        t.Cpu.values.(dst) <- v;
        t.Cpu.nats.(dst) <- false;
        t.Cpu.ip <- t.Cpu.ip + 1
  | Instr.Mov (dst, src) ->
      if dst = Reg.zero then fun t -> t.Cpu.ip <- t.Cpu.ip + 1
      else if ft then fun t ->
        t.Cpu.values.(dst) <- t.Cpu.values.(src);
        t.Cpu.nats.(dst) <- t.Cpu.nats.(src);
        Flowtrace.on_move t.Cpu.flowtrace t.Cpu.ftregs ~ip:t.Cpu.ip ~dst ~src;
        t.Cpu.ip <- t.Cpu.ip + 1
      else fun t ->
        t.Cpu.values.(dst) <- t.Cpu.values.(src);
        t.Cpu.nats.(dst) <- t.Cpu.nats.(src);
        t.Cpu.ip <- t.Cpu.ip + 1
  | Instr.Lea (dst, _) ->
      let v = Int64.of_int d.Decode.target in
      if dst = Reg.zero then fun t -> t.Cpu.ip <- t.Cpu.ip + 1
      else if ft then fun t ->
        t.Cpu.values.(dst) <- v;
        t.Cpu.nats.(dst) <- false;
        Flowtrace.on_const t.Cpu.flowtrace t.Cpu.ftregs ~dst;
        t.Cpu.ip <- t.Cpu.ip + 1
      else fun t ->
        t.Cpu.values.(dst) <- v;
        t.Cpu.nats.(dst) <- false;
        t.Cpu.ip <- t.Cpu.ip + 1
  | Instr.Arith (a, dst, s1, o) ->
      let clear_idiom =
        match (a, o) with
        | (Instr.Xor | Instr.Sub), Instr.R s2 -> s1 = s2
        | _ -> false
      in
      let can_fault = match a with Instr.Div | Instr.Rem -> true | _ -> false in
      if dst = Reg.zero then
        if not can_fault then fun t -> t.Cpu.ip <- t.Cpu.ip + 1
        else generic
      else begin
        let src2 = match o with Instr.R r -> Some r | Instr.Imm _ -> None in
        match o with
        | Instr.Imm imm ->
            (* an immediate operand carries no NaT: the operand_nat read
               is dropped *)
            if ft then fun t ->
              let v = Cpu.eval_arith a t.Cpu.values.(s1) imm in
              t.Cpu.values.(dst) <- v;
              t.Cpu.nats.(dst) <- t.Cpu.nats.(s1);
              Flowtrace.on_arith t.Cpu.flowtrace t.Cpu.ftregs ~ip:t.Cpu.ip ~dst
                ~src1:s1 ~src2 ~clear:false;
              t.Cpu.ip <- t.Cpu.ip + 1
            else fun t ->
              let v = Cpu.eval_arith a t.Cpu.values.(s1) imm in
              t.Cpu.values.(dst) <- v;
              t.Cpu.nats.(dst) <- t.Cpu.nats.(s1);
              t.Cpu.ip <- t.Cpu.ip + 1
        | Instr.R s2 ->
            if clear_idiom then
              if ft then fun t ->
                let v = Cpu.eval_arith a t.Cpu.values.(s1) t.Cpu.values.(s2) in
                t.Cpu.values.(dst) <- v;
                t.Cpu.nats.(dst) <- false;
                Flowtrace.on_arith t.Cpu.flowtrace t.Cpu.ftregs ~ip:t.Cpu.ip
                  ~dst ~src1:s1 ~src2 ~clear:true;
                t.Cpu.ip <- t.Cpu.ip + 1
              else fun t ->
                let v = Cpu.eval_arith a t.Cpu.values.(s1) t.Cpu.values.(s2) in
                t.Cpu.values.(dst) <- v;
                t.Cpu.nats.(dst) <- false;
                t.Cpu.ip <- t.Cpu.ip + 1
            else if ft then fun t ->
              let v = Cpu.eval_arith a t.Cpu.values.(s1) t.Cpu.values.(s2) in
              t.Cpu.values.(dst) <- v;
              t.Cpu.nats.(dst) <- t.Cpu.nats.(s1) || t.Cpu.nats.(s2);
              Flowtrace.on_arith t.Cpu.flowtrace t.Cpu.ftregs ~ip:t.Cpu.ip ~dst
                ~src1:s1 ~src2 ~clear:false;
              t.Cpu.ip <- t.Cpu.ip + 1
            else fun t ->
              let v = Cpu.eval_arith a t.Cpu.values.(s1) t.Cpu.values.(s2) in
              t.Cpu.values.(dst) <- v;
              t.Cpu.nats.(dst) <- t.Cpu.nats.(s1) || t.Cpu.nats.(s2);
              t.Cpu.ip <- t.Cpu.ip + 1
      end
  | Instr.Cmp { cond; pt; pf; src1; src2; taint_aware } -> (
      match src2 with
      | Instr.Imm imm ->
          if taint_aware then fun t ->
            let r = Cond.eval cond t.Cpu.values.(src1) imm in
            Cpu.set_pred t pt r;
            Cpu.set_pred t pf (not r);
            t.Cpu.ip <- t.Cpu.ip + 1
          else fun t ->
            if t.Cpu.nats.(src1) then begin
              Cpu.set_pred t pt false;
              Cpu.set_pred t pf false
            end
            else begin
              let r = Cond.eval cond t.Cpu.values.(src1) imm in
              Cpu.set_pred t pt r;
              Cpu.set_pred t pf (not r)
            end;
            t.Cpu.ip <- t.Cpu.ip + 1
      | Instr.R s2 ->
          if taint_aware then fun t ->
            let r = Cond.eval cond t.Cpu.values.(src1) t.Cpu.values.(s2) in
            Cpu.set_pred t pt r;
            Cpu.set_pred t pf (not r);
            t.Cpu.ip <- t.Cpu.ip + 1
          else fun t ->
            if t.Cpu.nats.(src1) || t.Cpu.nats.(s2) then begin
              Cpu.set_pred t pt false;
              Cpu.set_pred t pf false
            end
            else begin
              let r = Cond.eval cond t.Cpu.values.(src1) t.Cpu.values.(s2) in
              Cpu.set_pred t pt r;
              Cpu.set_pred t pf (not r)
            end;
            t.Cpu.ip <- t.Cpu.ip + 1)
  | Instr.Tnat { pt; pf; src } ->
      if ft then fun t ->
        let n = t.Cpu.nats.(src) in
        Cpu.set_pred t pt n;
        Cpu.set_pred t pf (not n);
        Flowtrace.on_check t.Cpu.flowtrace t.Cpu.ftregs ~ip:t.Cpu.ip ~src
          ~tainted:n;
        t.Cpu.ip <- t.Cpu.ip + 1
      else fun t ->
        let n = t.Cpu.nats.(src) in
        Cpu.set_pred t pt n;
        Cpu.set_pred t pf (not n);
        t.Cpu.ip <- t.Cpu.ip + 1
  | Instr.Extr { dst; src; pos; len } ->
      if dst = Reg.zero then fun t -> t.Cpu.ip <- t.Cpu.ip + 1
      else begin
        let mask =
          if len >= 64 then -1L
          else Int64.sub (Int64.shift_left 1L (len land 63)) 1L
        in
        let sh = pos land 63 in
        if ft then fun t ->
          t.Cpu.values.(dst) <-
            Int64.logand (Int64.shift_right_logical t.Cpu.values.(src) sh) mask;
          t.Cpu.nats.(dst) <- t.Cpu.nats.(src);
          Flowtrace.on_move t.Cpu.flowtrace t.Cpu.ftregs ~ip:t.Cpu.ip ~dst ~src;
          t.Cpu.ip <- t.Cpu.ip + 1
        else fun t ->
          t.Cpu.values.(dst) <-
            Int64.logand (Int64.shift_right_logical t.Cpu.values.(src) sh) mask;
          t.Cpu.nats.(dst) <- t.Cpu.nats.(src);
          t.Cpu.ip <- t.Cpu.ip + 1
      end
  | Instr.Ld _ | Instr.St _ ->
      (* loads and stores are compiled by the fused builders in
         [compile_instr], which bind the cache consultation, the issue
         and the access in one closure; this arm is only reached for the
         shapes those builders decline (dst = r0, spill) *)
      generic
  | Instr.Chk_s { src; _ } ->
      let target = d.Decode.target in
      if ft then fun t ->
        let n = t.Cpu.nats.(src) in
        Flowtrace.on_check t.Cpu.flowtrace t.Cpu.ftregs ~ip:t.Cpu.ip ~src
          ~tainted:n;
        if n then begin
          t.Cpu.ip <- target;
          t.Cpu.stats.Stats.branches <- t.Cpu.stats.Stats.branches + 1;
          Pipeline.redirect t.Cpu.pipe ~penalty:Cpu.chk_penalty
        end
        else t.Cpu.ip <- t.Cpu.ip + 1
      else fun t ->
        if t.Cpu.nats.(src) then begin
          t.Cpu.ip <- target;
          t.Cpu.stats.Stats.branches <- t.Cpu.stats.Stats.branches + 1;
          Pipeline.redirect t.Cpu.pipe ~penalty:Cpu.chk_penalty
        end
        else t.Cpu.ip <- t.Cpu.ip + 1
  | Instr.Br _ ->
      let target = d.Decode.target in
      fun t -> Cpu.goto t target
  | Instr.Br_reg _ | Instr.Call _ | Instr.Call_reg _ | Instr.Ret
  | Instr.Fetchadd _ | Instr.Setnat _ | Instr.Clrnat _ | Instr.Syscall ->
      generic

(* ---------- timing prologue and memory fusion ----------

   [compile_instr] wraps an instruction body with exactly [Cpu.step]'s
   timing work — predicated-off accounting, the cache consultation for
   valid memory accesses, the pipeline issue — through a
   {!Pipeline.compile_issue} closure specialised for the instruction's
   operand shape.  Loads and stores are *fused*: the address read, the
   NaT/validity test, the cache lookup, the issue and the access itself
   are one closure, so the machine state each stage needs is read once
   (the interpreter reads it once in the timing prologue and again in
   [exec_op]). *)

let compile_instr (decoded : Decode.t) ~ft pc : Cpu.t -> unit =
  let d = decoded.(pc) in
  (* hooks fire only for original-program instructions: the SHIFT
     instrumentation (non-Orig provenance) is transparent to the
     provenance shadow, exactly as in [Cpu.exec_op] *)
  let ft = ft && d.Decode.prov_index = 0 in
  let qp = d.Decode.qp in
  let lat0 = d.Decode.latency in
  let issue =
    Pipeline.compile_issue ~reads:d.Decode.reads ~writes:d.Decode.writes
      ~pred_writes:d.Decode.pred_writes ~qp ~is_mem:d.Decode.is_mem
  in
  let hot =
    match d.Decode.op with
    | Instr.Ld { width; dst; addr; spec; fill } when dst <> Reg.zero ->
        let w = Instr.bytes_of_width width in
        let invalid t a =
          (* mirrors [Cpu.exec_op]'s invalid-load path; runs after the
             issue, like the fault raised from [exec_op] *)
          if spec then begin
            t.Cpu.values.(dst) <- 0L;
            t.Cpu.nats.(dst) <- true;
            if ft then
              Flowtrace.on_spec_nat t.Cpu.flowtrace t.Cpu.ftregs ~ip:t.Cpu.ip
                ~dst;
            t.Cpu.ip <- t.Cpu.ip + 1
          end
          else if t.Cpu.nats.(addr) then
            raise (Cpu.Fault_exn (Fault.Nat_consumption Fault.Load_address))
          else raise (Cpu.Fault_exn (Fault.Invalid_address a))
        in
        if ft then fun t ->
          let a = t.Cpu.values.(addr) in
          let ok = (not t.Cpu.nats.(addr)) && Addr.is_valid a in
          issue t.Cpu.pipe
            (if ok then
               if Cpu.touch_cache t ~pc ~store:false ~areg:addr a then lat0
               else lat0 + Cache.miss_penalty
             else lat0);
          if ok then begin
            t.Cpu.values.(dst) <- Memory.read t.Cpu.mem a ~width:w;
            t.Cpu.nats.(dst) <-
              fill
              && Int64.logand
                   (Int64.shift_right_logical t.Cpu.unat (Cpu.unat_bit a))
                   1L
                 = 1L;
            t.Cpu.stats.Stats.loads <- t.Cpu.stats.Stats.loads + 1;
            Flowtrace.on_load t.Cpu.flowtrace t.Cpu.ftregs ~ip:t.Cpu.ip ~dst
              ~addr:a ~len:w;
            t.Cpu.ip <- t.Cpu.ip + 1
          end
          else invalid t a
        else if fill then fun t ->
          let a = t.Cpu.values.(addr) in
          let ok = (not t.Cpu.nats.(addr)) && Addr.is_valid a in
          issue t.Cpu.pipe
            (if ok then
               if Cpu.touch_cache t ~pc ~store:false ~areg:addr a then lat0
               else lat0 + Cache.miss_penalty
             else lat0);
          if ok then begin
            t.Cpu.values.(dst) <- Memory.read t.Cpu.mem a ~width:w;
            t.Cpu.nats.(dst) <-
              Int64.logand
                (Int64.shift_right_logical t.Cpu.unat (Cpu.unat_bit a))
                1L
              = 1L;
            t.Cpu.stats.Stats.loads <- t.Cpu.stats.Stats.loads + 1;
            t.Cpu.ip <- t.Cpu.ip + 1
          end
          else invalid t a
        else fun t ->
          let a = t.Cpu.values.(addr) in
          let ok = (not t.Cpu.nats.(addr)) && Addr.is_valid a in
          issue t.Cpu.pipe
            (if ok then
               if Cpu.touch_cache t ~pc ~store:false ~areg:addr a then lat0
               else lat0 + Cache.miss_penalty
             else lat0);
          if ok then begin
            t.Cpu.values.(dst) <- Memory.read t.Cpu.mem a ~width:w;
            t.Cpu.nats.(dst) <- false;
            t.Cpu.stats.Stats.loads <- t.Cpu.stats.Stats.loads + 1;
            t.Cpu.ip <- t.Cpu.ip + 1
          end
          else invalid t a
    | Instr.St { width; addr; src; spill = false } ->
        let w = Instr.bytes_of_width width in
        if ft then fun t ->
          let a = t.Cpu.values.(addr) in
          let addr_nat = t.Cpu.nats.(addr) in
          let valid = Addr.is_valid a in
          if (not addr_nat) && valid then
            ignore (Cpu.touch_cache t ~pc ~store:true ~areg:addr a);
          issue t.Cpu.pipe lat0;
          if addr_nat then
            raise (Cpu.Fault_exn (Fault.Nat_consumption Fault.Store_address));
          if not valid then raise (Cpu.Fault_exn (Fault.Invalid_address a));
          if t.Cpu.nats.(src) then
            raise (Cpu.Fault_exn (Fault.Nat_consumption Fault.Store_value));
          Memory.write t.Cpu.mem a ~width:w t.Cpu.values.(src);
          t.Cpu.stats.Stats.stores <- t.Cpu.stats.Stats.stores + 1;
          Flowtrace.on_store t.Cpu.flowtrace t.Cpu.ftregs ~ip:t.Cpu.ip ~src
            ~addr:a ~len:w;
          t.Cpu.ip <- t.Cpu.ip + 1
        else fun t ->
          let a = t.Cpu.values.(addr) in
          let addr_nat = t.Cpu.nats.(addr) in
          let valid = Addr.is_valid a in
          if (not addr_nat) && valid then
            ignore (Cpu.touch_cache t ~pc ~store:true ~areg:addr a);
          issue t.Cpu.pipe lat0;
          if addr_nat then
            raise (Cpu.Fault_exn (Fault.Nat_consumption Fault.Store_address));
          if not valid then raise (Cpu.Fault_exn (Fault.Invalid_address a));
          if t.Cpu.nats.(src) then
            raise (Cpu.Fault_exn (Fault.Nat_consumption Fault.Store_value));
          Memory.write t.Cpu.mem a ~width:w t.Cpu.values.(src);
          t.Cpu.stats.Stats.stores <- t.Cpu.stats.Stats.stores + 1;
          t.Cpu.ip <- t.Cpu.ip + 1
    | Instr.Ld { addr; _ } ->
        (* dst = r0: the load still times like a load (cache lookup,
           latency) but executes through the generic interpreter body *)
        let exec = compile_exec d ~ft in
        fun t ->
          let a = t.Cpu.values.(addr) in
          let ok = (not t.Cpu.nats.(addr)) && Addr.is_valid a in
          issue t.Cpu.pipe
            (if ok then
               if Cpu.touch_cache t ~pc ~store:false ~areg:addr a then lat0
               else lat0 + Cache.miss_penalty
             else lat0);
          exec t
    | Instr.St { addr; _ } ->
        (* spill stores execute generically but time like stores *)
        let exec = compile_exec d ~ft in
        fun t ->
          if (not t.Cpu.nats.(addr)) && Addr.is_valid t.Cpu.values.(addr) then
            ignore
              (Cpu.touch_cache t ~pc ~store:true ~areg:addr t.Cpu.values.(addr));
          issue t.Cpu.pipe lat0;
          exec t
    | _ ->
        let exec = compile_exec d ~ft in
        fun t ->
          issue t.Cpu.pipe lat0;
          exec t
  in
  if qp = Pred.p0 then
    (* p0 is architecturally always true: the predicate read and the
       predicated-off path are dropped *)
    hot
  else begin
    let off = Pipeline.compile_issue_off ~qp in
    fun t ->
      if t.Cpu.preds.(qp) then hot t
      else begin
        t.Cpu.stats.Stats.predicated_off <-
          t.Cpu.stats.Stats.predicated_off + 1;
        off t.Cpu.pipe;
        t.Cpu.ip <- t.Cpu.ip + 1
      end
  end

(* Compose the per-instruction closures into one body, four at a time so
   a 64-instruction block costs ~16 nested frames instead of 64. *)
let rec seq (fs : (Cpu.t -> unit) array) i n : Cpu.t -> unit =
  match n - i with
  | 1 -> fs.(i)
  | 2 ->
      let a = fs.(i) and b = fs.(i + 1) in
      fun t -> a t; b t
  | 3 ->
      let a = fs.(i) and b = fs.(i + 1) and c = fs.(i + 2) in
      fun t -> a t; b t; c t
  | _ ->
      let a = fs.(i) and b = fs.(i + 1) and c = fs.(i + 2) and d = fs.(i + 3) in
      if n - i = 4 then fun t -> a t; b t; c t; d t
      else
        let rest = seq fs (i + 4) n in
        fun t -> a t; b t; c t; d t; rest t

(* ---------- invalidation ---------- *)

let invalidate_range (t : Cpu.t) ~p0 ~p1 =
  let sb = t.Cpu.sb in
  let blocks = sb.Cpu.sb_blocks in
  let hi = min p1 (Array.length blocks - 1) in
  let lo = max 0 (p0 - max_block_len + 1) in
  for e = lo to hi do
    match blocks.(e) with
    | Some b when b.Cpu.sb_entry + b.Cpu.sb_len > p0 ->
        blocks.(e) <- None;
        sb.Cpu.sb_stats.Stats.sb_invalidations <-
          sb.Cpu.sb_stats.Stats.sb_invalidations + 1
    | _ -> ()
  done

(* A store landed in [a, a+len) inside the watched code region: drop
   every compiled block whose instruction span covers a written slot. *)
let on_code_write (t : Cpu.t) a len =
  let off0 =
    if Int64.unsigned_compare a code_base < 0 then 0L
    else Int64.sub a code_base
  in
  let off1 = Int64.add (Int64.sub a code_base) (Int64.of_int (len - 1)) in
  let p0 = Int64.to_int (Int64.shift_right_logical off0 3) in
  let p1 = Int64.to_int (Int64.shift_right_logical off1 3) in
  invalidate_range t ~p0 ~p1

let ensure_watch (t : Cpu.t) =
  let sb = t.Cpu.sb in
  if not sb.Cpu.sb_watched then begin
    sb.Cpu.sb_watched <- true;
    let size = Program.size t.Cpu.program in
    if size > 0 then
      Memory.watch t.Cpu.mem ~lo:code_base ~hi:(code_addr size)
        (fun a len -> on_code_write t a len)
  end

(* ---------- block discovery and compilation ---------- *)

let compile_block (t : Cpu.t) entry =
  ensure_watch t;
  let sb = t.Cpu.sb in
  let decoded = t.Cpu.decoded in
  let size = Program.size t.Cpu.program in
  let ft = ft_enabled t in
  let len = ref 0 in
  let stop = ref false in
  while (not !stop) && !len < max_block_len && entry + !len < size do
    let d = decoded.(entry + !len) in
    incr len;
    if is_terminator d.Decode.op then stop := true
  done;
  let len = !len in
  let fs = Array.init len (fun i -> compile_instr decoded ~ft (entry + i)) in
  let provs =
    Array.init len (fun i -> decoded.(entry + i).Decode.prov_index)
  in
  let prov_counts = Array.make Prov.card 0 in
  Array.iter (fun p -> prov_counts.(p) <- prov_counts.(p) + 1) provs;
  sb.Cpu.sb_blocks.(entry) <-
    Some
      {
        Cpu.sb_entry = entry;
        sb_len = len;
        sb_ft = ft;
        sb_provs = provs;
        sb_prov_counts = prov_counts;
        sb_body = seq fs 0 len;
      };
  sb.Cpu.sb_stats.Stats.sb_compiled <- sb.Cpu.sb_stats.Stats.sb_compiled + 1

(* ---------- the block driver ---------- *)

(* Execute one compiled block.  [instructions] and [slots_by_prov] are
   bumped for the whole block up front; if an exception cuts the block
   short, the unexecuted tail is unwound using the block's
   straight-line shape (the faulting instruction is [t.ip], so exactly
   [ip - entry + 1] instructions retired).  Returns the instructions
   spent and the terminal outcome, if any. *)
let exec_block (t : Cpu.t) (b : Cpu.sb_block) =
  let st = t.Cpu.stats in
  st.Stats.instructions <- st.Stats.instructions + b.Cpu.sb_len;
  let sp = st.Stats.slots_by_prov in
  let pc = b.Cpu.sb_prov_counts in
  for i = 0 to Array.length pc - 1 do
    sp.(i) <- sp.(i) + Array.unsafe_get pc i
  done;
  let ft = t.Cpu.flowtrace in
  let batching = b.Cpu.sb_ft in
  if batching then Flowtrace.begin_batch ft;
  match b.Cpu.sb_body t with
  | () ->
      if batching then Flowtrace.end_batch ft;
      (b.Cpu.sb_len, None)
  | exception e ->
      if batching then Flowtrace.end_batch ft;
      let executed = t.Cpu.ip - b.Cpu.sb_entry + 1 in
      if executed < b.Cpu.sb_len then begin
        st.Stats.instructions <- st.Stats.instructions - (b.Cpu.sb_len - executed);
        for k = executed to b.Cpu.sb_len - 1 do
          let p = b.Cpu.sb_provs.(k) in
          sp.(p) <- sp.(p) - 1
        done
      end;
      (match e with
      | Cpu.Fault_exn f -> (executed, Some (Cpu.Faulted (f, t.Cpu.ip)))
      | Cpu.Halt_exn v | Cpu.Exit_requested v -> (executed, Some (Cpu.Exited v))
      | e -> raise e)

(* Interpret from the current ip up to and including the next block
   terminator (or until the budget, a terminal outcome, or a pc with a
   compiled block).  Used when a region is not hot yet and when the
   remaining budget cannot cover a whole compiled block. *)
let interp_to_boundary (t : Cpu.t) ~limit spent out =
  let sb = t.Cpu.sb in
  let size = Program.size t.Cpu.program in
  let stop = ref false in
  while (not !stop) && !out = None && !spent < limit do
    let ip = t.Cpu.ip in
    let boundary =
      ip < 0 || ip >= size || is_terminator t.Cpu.decoded.(ip).Decode.op
    in
    (match Cpu.step t with Some o -> out := Some o | None -> ());
    incr spent;
    sb.Cpu.sb_stats.Stats.sb_fallback <- sb.Cpu.sb_stats.Stats.sb_fallback + 1;
    if boundary then stop := true
    else begin
      let ip' = t.Cpu.ip in
      if
        ip' >= 0 && ip' < size
        && match sb.Cpu.sb_blocks.(ip') with Some _ -> true | None -> false
      then stop := true
    end
  done

(* Run up to [limit] instructions through the block cache.  Returns the
   instructions actually spent (exact, for engine slicing) and the
   terminal outcome if one occurred.  Falls back to pure interpretation
   when the machine is not [usable].  Cycle finalisation is the
   caller's job, as with [Cpu.step]. *)
let steps (t : Cpu.t) ~limit =
  let spent = ref 0 in
  let out = ref None in
  (try
     if not (usable t) then
       while !out = None && !spent < limit do
         incr spent;
         match Cpu.step t with Some o -> out := Some o | None -> ()
       done
     else begin
       let sb = t.Cpu.sb in
       let size = Program.size t.Cpu.program in
       while !out = None && !spent < limit do
         let ip = t.Cpu.ip in
         if ip < 0 || ip >= size then begin
           (* out of range: one interpreter step produces the fault *)
           incr spent;
           match Cpu.step t with Some o -> out := Some o | None -> ()
         end
         else begin
           match sb.Cpu.sb_blocks.(ip) with
           | Some b when b.Cpu.sb_ft <> ft_enabled t ->
               (* tracing was toggled under a compiled block: recompile *)
               sb.Cpu.sb_blocks.(ip) <- None;
               sb.Cpu.sb_stats.Stats.sb_invalidations <-
                 sb.Cpu.sb_stats.Stats.sb_invalidations + 1
           | Some b when b.Cpu.sb_len <= limit - !spent ->
               sb.Cpu.sb_stats.Stats.sb_hits <-
                 sb.Cpu.sb_stats.Stats.sb_hits + 1;
               let n, o = exec_block t b in
               spent := !spent + n;
               out := o
           | Some _ ->
               (* the budget cannot cover the block: interpret the tail
                  so the slice boundary is instruction-exact *)
               interp_to_boundary t ~limit spent out
           | None ->
               sb.Cpu.sb_stats.Stats.sb_misses <-
                 sb.Cpu.sb_stats.Stats.sb_misses + 1;
               let c = sb.Cpu.sb_hot.(ip) + 1 in
               sb.Cpu.sb_hot.(ip) <- c;
               if c >= hot_threshold then compile_block t ip
               else interp_to_boundary t ~limit spent out
         end
       done
     end
   with Cpu.Exit_requested v -> out := Some (Cpu.Exited v));
  (* [Cpu.step] finalises the cycle count on terminal outcomes (via
     [finish]); mirror that for outcomes produced by compiled blocks *)
  (match !out with
  | Some _ -> t.Cpu.stats.Stats.cycles <- Pipeline.cycles t.Cpu.pipe
  | None -> ());
  (!spent, !out)

let run_for (t : Cpu.t) ~budget =
  if not (usable t) then Cpu.run_for t ~budget
  else
    Fun.protect
      ~finally:(fun () ->
        t.Cpu.stats.Stats.cycles <- Pipeline.cycles t.Cpu.pipe)
      (fun () ->
        let _spent, out = steps t ~limit:budget in
        match out with Some o -> `Finished o | None -> `Yielded)
